// dtpipeline makes the paper's Figure 3 observable: it traces every CPU and
// NIC-port activity interval while one large vector message crosses the
// fabric, once under the Generic (basic pack/unpack) scheme and once under
// BC-SPUP, and prints both timelines. Under Generic, pack, wire transfer and
// unpack appear strictly one after another; under BC-SPUP the sender's CPU
// packs segment k+1 while the wire carries segment k and the receiver's CPU
// unpacks segment k-1.
//
//	go run ./cmd/dtpipeline -columns 1024 -width 100
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/mpi"
	"repro/internal/trace"
)

func main() {
	columns := flag.Int("columns", 1024, "vector columns (message size = 512*columns bytes)")
	width := flag.Int("width", 100, "chart width in characters")
	chrome := flag.String("chrome", "", "also write a Chrome trace-event JSON file per scheme to this directory")
	flag.Parse()

	for _, s := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"Generic (basic pack/unpack — serialized)", core.SchemeGeneric},
		{"BC-SPUP (segment pipeline — overlapped)", core.SchemeBCSPUP},
		{"RWG-UP (gather writes + segment unpack)", core.SchemeRWGUP},
		{"Multi-W (zero copy)", core.SchemeMultiW},
	} {
		rec, raw, err := traceOne(*columns, s.scheme, *width)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n%s\n", s.name, rec)
		if *chrome != "" {
			path := filepath.Join(*chrome, fmt.Sprintf("pipeline-%v.json", s.scheme))
			if err := os.WriteFile(path, raw.ChromeTrace(), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

func traceOne(columns int, scheme core.Scheme, width int) (string, *trace.Recorder, error) {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = 2
	cfg.MemBytes = 192 << 20
	cfg.Core.Scheme = scheme

	world, err := mpi.NewWorld(cfg)
	if err != nil {
		return "", nil, err
	}
	dt := exper.VectorType(columns)
	rec := trace.New()

	err = world.Run(func(p *mpi.Proc) error {
		span := dt.TrueExtent()
		buf := p.Mem().MustAlloc(span)
		// Trace only the measured message, not the warmup.
		if p.Rank() == 0 {
			if err := p.Send(buf, 1, dt, 1, 0); err != nil { // warmup
				return err
			}
			if _, err := p.Recv(buf, 1, dt, 1, 0); err != nil {
				return err
			}
			world.Fabric().SetTracer(rec)
			return p.Send(buf, 1, dt, 1, 1)
		}
		if _, err := p.Recv(buf, 1, dt, 0, 0); err != nil { // warmup
			return err
		}
		if err := p.Send(buf, 1, dt, 0, 0); err != nil {
			return err
		}
		_, err := p.Recv(buf, 1, dt, 0, 1)
		return err
	})
	if err != nil {
		return "", nil, err
	}
	out := rec.Gantt(width)
	out += fmt.Sprintf("sender cpu busy %.0f%% | wire busy %.0f%% | receiver cpu busy %.0f%%\n",
		100*rec.Utilization("rank0", trace.LaneCPU),
		100*rec.Utilization("rank0", trace.LaneTx),
		100*rec.Utilization("rank1", trace.LaneCPU))
	return out, rec, nil
}
