// doclint enforces the repository's documentation floor with go/ast — no
// external tooling:
//
//   - every package under internal/ must open with a real package comment
//     (more than one line of actual prose, not a lint pragma);
//   - in the packages that form the public surface of the datatype engine
//     and its hot path (internal/pack, internal/verbs, internal/core,
//     internal/qos, internal/perfgate), every exported top-level symbol and
//     every exported method must carry a doc comment.
//
// `make doclint` runs it over the module; a bare exported symbol fails CI.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strictPkgs are the directories where every exported symbol needs a doc
// comment, not just the package clause.
var strictPkgs = map[string]bool{
	"internal/core":     true,
	"internal/pack":     true,
	"internal/perfgate": true,
	"internal/qos":      true,
	"internal/verbs":    true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var dirs []string
	err := filepath.WalkDir(filepath.Join(root, "internal"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}
	sort.Strings(dirs)

	var problems []string
	for _, dir := range dirs {
		rel, _ := filepath.Rel(root, dir)
		problems = append(problems, lintDir(dir, rel, strictPkgs[filepath.ToSlash(rel)])...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
}

// lintDir checks one package directory. Test files never count: they are
// internal narrative, not API surface.
func lintDir(dir, rel string, strict bool) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", rel, err)}
	}
	var problems []string
	for _, pkg := range pkgs {
		if !hasPackageComment(pkg) {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", rel, pkg.Name))
		}
		if !strict {
			continue
		}
		for _, f := range pkg.Files {
			problems = append(problems, lintFile(fset, f)...)
		}
	}
	return problems
}

// hasPackageComment reports whether any file of the package documents the
// package clause with real prose.
func hasPackageComment(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 20 {
			return true
		}
	}
	return false
}

// lintFile reports every exported, undocumented top-level symbol and method.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	complain := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s is undocumented", p.Filename, p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || documented(d.Doc) {
				continue
			}
			if d.Recv != nil && !receiverExported(d.Recv) {
				continue // method on an unexported type: not API surface
			}
			kind := "function " + d.Name.Name
			if d.Recv != nil {
				kind = "method " + d.Name.Name
			}
			complain(d.Pos(), kind)
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !documented(d.Doc) && !documented(s.Doc) {
						complain(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						// A doc comment on the grouped decl covers the group
						// (the idiomatic "// The transfer schemes." pattern).
						if name.IsExported() && !documented(d.Doc) && !documented(s.Doc) &&
							s.Comment == nil {
							complain(name.Pos(), "value "+name.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverExported reports whether a method's receiver type is exported.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// documented reports whether a comment group holds real text.
func documented(doc *ast.CommentGroup) bool {
	return doc != nil && strings.TrimSpace(doc.Text()) != ""
}
