// fabsim exercises the simulated InfiniBand fabric at the Verbs level,
// independent of MPI: it prints the cost-model parameters and sweeps raw
// RDMA write/read latency, bandwidth, and gather-descriptor costs — the
// "Contig" reference numbers the paper's figures are judged against.
//
//	go run ./cmd/fabsim
package main

import (
	"fmt"

	"repro/internal/ib"
	"repro/internal/mem"
	"repro/internal/simtime"
)

func main() {
	model := ib.DefaultModel()
	fmt.Println("# cost model (DESIGN.md section 5)")
	fmt.Printf("wire latency        %v\n", model.WireLatency)
	fmt.Printf("link bandwidth      %.2f GB/s\n", model.LinkGBps)
	fmt.Printf("copy bandwidth      %.2f GB/s (+%v per contiguous run)\n", model.CopyGBps, model.CopyBlockStartup)
	fmt.Printf("descriptor post     %v (list entries %v, per SGE %v)\n", model.PostCost, model.ListPostEntry, model.SGEPost)
	fmt.Printf("NIC per descriptor  %v (per SGE %v)\n", model.NICDescCost, model.NICSGECost)
	fmt.Printf("registration        %v + %v/page; dereg %v + %v/page\n",
		model.RegBase, model.RegPerPage, model.DeregBase, model.DeregPerPage)
	fmt.Printf("malloc              %v + %v/page\n", model.MallocBase, model.MallocPerPage)
	fmt.Printf("RDMA read turnaround %v; max SGE %d\n\n", model.ReadTurnaround, model.MaxSGE)

	fmt.Println("# raw RDMA write/read completion latency and effective bandwidth")
	fmt.Printf("%10s %14s %14s %14s\n", "bytes", "write (us)", "read (us)", "write MB/s")
	for _, size := range []int64{256, 4 << 10, 64 << 10, 512 << 10, 4 << 20} {
		w := oneOp(model, ib.OpRDMAWrite, size, 1)
		r := oneOp(model, ib.OpRDMARead, size, 1)
		mbps := float64(size) / (1 << 20) / w.Seconds()
		fmt.Printf("%10d %14.2f %14.2f %14.1f\n", size, w.Micros(), r.Micros(), mbps)
	}

	fmt.Println("\n# gather write: one descriptor, varying SGE count (64 KB total)")
	fmt.Printf("%6s %14s\n", "SGEs", "latency (us)")
	for _, n := range []int{1, 4, 16, 64} {
		d := oneOp(model, ib.OpRDMAWrite, 64<<10, n)
		fmt.Printf("%6d %14.2f\n", n, d.Micros())
	}
}

// oneOp measures the virtual completion time of a single RDMA operation of
// the given total size split across n scatter/gather entries.
func oneOp(model ib.Model, op ib.Opcode, size int64, n int) simtime.Duration {
	eng := simtime.NewEngine()
	fab := ib.NewFabric(eng, model)
	ma := mem.NewMemory("a", size*2+8<<20)
	mb := mem.NewMemory("b", size*2+8<<20)
	ha := fab.AddHCA("a", ma, nil)
	hb := fab.AddHCA("b", mb, nil)
	aSend, aRecv := ib.NewCQ(ha), ib.NewCQ(ha)
	bSend, bRecv := ib.NewCQ(hb), ib.NewCQ(hb)
	qa, _ := ib.Connect(ha, hb, aSend, aRecv, bSend, bRecv)

	per := size / int64(n)
	sgl := make([]ib.SGE, n)
	for i := range sgl {
		a := ma.MustAlloc(per)
		reg, err := ma.Reg().Register(a, per)
		if err != nil {
			panic(err)
		}
		sgl[i] = ib.SGE{Addr: a, Len: per, Key: reg.LKey}
	}
	remote := mb.MustAlloc(size)
	rreg, err := mb.Reg().Register(remote, size)
	if err != nil {
		panic(err)
	}

	var done simtime.Time
	aSend.SetHandler(func(e ib.CQE) {
		if e.Err != nil {
			panic(e.Err)
		}
		done = eng.Now()
	})
	if err := qa.PostSend(ib.SendWR{Op: op, SGL: sgl, RemoteAddr: remote, RKey: rreg.RKey}); err != nil {
		panic(err)
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return done.Sub(0)
}
