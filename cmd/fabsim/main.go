// fabsim exercises the fabric at the Verbs level, independent of MPI: it
// prints the cost-model parameters and sweeps raw RDMA write/read latency,
// bandwidth, and gather-descriptor costs — the "Contig" reference numbers
// the paper's figures are judged against.
//
//	go run ./cmd/fabsim                # deterministic simulator (virtual time)
//	go run ./cmd/fabsim -backend rt    # real-time concurrent fabric (wall time)
//
// With -fault-soak it instead drives every transfer scheme end to end under
// seeded fault injection and reports per-scheme delivery results, retry
// counts, and injector statistics (also available on either backend):
//
//	go run ./cmd/fabsim -fault-soak -seed 7 -cqe-rate 0.1 -delay-rate 0.2
//	go run ./cmd/fabsim -fault-soak -backend rt
//	go run ./cmd/fabsim -fault-soak -perm-rate 1 -cqe-rate 1   # forced aborts
//
// With -qos-soak it runs the deterministic service-mode traffic mix
// (internal/traffic) with the QoS layer on and reports per-class latency
// plus the admission/lane counters; -no-qos disables the service layer for
// an A/B comparison:
//
//	go run ./cmd/fabsim -qos-soak
//	go run ./cmd/fabsim -qos-soak -backend rt
//	go run ./cmd/fabsim -qos-soak -backend rt -no-qos
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/qos"
	"repro/internal/rtfab"
	"repro/internal/shmfab"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/tuner"
	"repro/internal/verbs"
)

var (
	backend   = flag.String("backend", "sim", `fabric backend: "sim" (deterministic), "rt" (real-time concurrent), or "shm" (shared-memory intra-node)`)
	faultSoak = flag.Bool("fault-soak", false, "run a fault-injected pass over every transfer scheme")
	seed      = flag.Int64("seed", 1, "fault injector seed")
	msgs      = flag.Int("msgs", 4, "messages per scheme in the fault soak")
	postRate  = flag.Float64("post-rate", 0.05, "probability a descriptor post fails")
	cqeRate   = flag.Float64("cqe-rate", 0.08, "probability a descriptor completes with an error CQE")
	regRate   = flag.Float64("reg-rate", 0.05, "probability a memory registration fails")
	delayRate = flag.Float64("delay-rate", 0.10, "probability a completion is delayed")
	permRate  = flag.Float64("perm-rate", 0.0, "probability an injected fault is permanent (not retryable)")
	doTrace   = flag.Bool("trace", false, "record activity traces and print a busy-time summary at the end")
	traceOut  = flag.String("trace-out", "", "with -trace: also write Chrome trace-event JSON here")
	tunerSoak = flag.Bool("tuner", false, "with -fault-soak: add an Auto row driven by the adaptive tuner")
	qosSoak   = flag.Bool("qos-soak", false, "run the service-mode traffic soak and report per-class latency + QoS counters")
	noQoS     = flag.Bool("no-qos", false, "with -qos-soak: disable the QoS layer (A/B baseline)")
	soakSeed  = flag.Int64("qos-seed", 1, "with -qos-soak: workload seed")
)

// tracer is non-nil when -trace is set; the measurement helpers attach it to
// every fabric they build.
var tracer *trace.Recorder

func main() {
	flag.Parse()
	if *backend != "sim" && *backend != "rt" && *backend != "shm" {
		fmt.Fprintf(os.Stderr, "fabsim: unknown backend %q (want sim, rt or shm)\n", *backend)
		os.Exit(2)
	}
	if *doTrace {
		tracer = trace.New()
	}
	if *faultSoak {
		ok := runFaultSoak()
		flushTrace()
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *qosSoak {
		if err := runQoSSoak(); err != nil {
			fmt.Fprintln(os.Stderr, "fabsim:", err)
			os.Exit(1)
		}
		flushTrace()
		return
	}
	if *backend == "rt" {
		runRTSweep()
		flushTrace()
		return
	}
	if *backend == "shm" {
		runSHMSweep()
		flushTrace()
		return
	}

	model := ib.DefaultModel()
	fmt.Println("# cost model (DESIGN.md section 5)")
	fmt.Printf("wire latency        %v\n", model.WireLatency)
	fmt.Printf("link bandwidth      %.2f GB/s\n", model.LinkGBps)
	fmt.Printf("copy bandwidth      %.2f GB/s (+%v per contiguous run)\n", model.CopyGBps, model.CopyBlockStartup)
	fmt.Printf("descriptor post     %v (list entries %v, per SGE %v)\n", model.PostCost, model.ListPostEntry, model.SGEPost)
	fmt.Printf("NIC per descriptor  %v (per SGE %v)\n", model.NICDescCost, model.NICSGECost)
	fmt.Printf("registration        %v + %v/page; dereg %v + %v/page\n",
		model.RegBase, model.RegPerPage, model.DeregBase, model.DeregPerPage)
	fmt.Printf("malloc              %v + %v/page\n", model.MallocBase, model.MallocPerPage)
	fmt.Printf("RDMA read turnaround %v; max SGE %d\n\n", model.ReadTurnaround, model.MaxSGE)

	fmt.Println("# raw RDMA write/read completion latency and effective bandwidth")
	fmt.Printf("%10s %14s %14s %14s\n", "bytes", "write (us)", "read (us)", "write MB/s")
	for _, size := range []int64{256, 4 << 10, 64 << 10, 512 << 10, 4 << 20} {
		w := oneOp(model, ib.OpRDMAWrite, size, 1)
		r := oneOp(model, ib.OpRDMARead, size, 1)
		mbps := float64(size) / (1 << 20) / w.Seconds()
		fmt.Printf("%10d %14.2f %14.2f %14.1f\n", size, w.Micros(), r.Micros(), mbps)
	}

	fmt.Println("\n# gather write: one descriptor, varying SGE count (64 KB total)")
	fmt.Printf("%6s %14s\n", "SGEs", "latency (us)")
	for _, n := range []int{1, 4, 16, 64} {
		d := oneOp(model, ib.OpRDMAWrite, 64<<10, n)
		fmt.Printf("%6d %14.2f\n", n, d.Micros())
	}
	flushTrace()
}

// flushTrace prints the busy-time summary (and writes the Chrome JSON) when
// -trace was requested.
func flushTrace() {
	if tracer == nil {
		return
	}
	fmt.Println("\n# busy-time summary (-trace)")
	fmt.Print(tracer.Summary())
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, tracer.ChromeTrace(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fabsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d events; load via chrome://tracing or ui.perfetto.dev)\n",
			*traceOut, tracer.Len())
	}
}

// runQoSSoak drives the default service-mode traffic mix over an MPI world
// on the selected backend and prints per-class latency quantiles plus the
// aggregate counters (including the QoS admission/lane lines).
func runQoSSoak() error {
	spec := traffic.DefaultSpec()
	spec.Seed = *soakSeed
	cfg := mpi.DefaultConfig()
	cfg.Ranks = spec.Ranks
	cfg.Backend = *backend
	cfg.RTTimeout = 2 * time.Minute
	if !*noQoS {
		pol := qos.DefaultPolicy()
		cfg.Core.QoS = &pol
	}
	if tracer != nil {
		cfg.Trace = tracer
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return err
	}
	reg := stats.NewRegistry()
	r := traffic.NewRunner(spec, reg)
	fmt.Printf("# qos soak: backend=%s qos=%v seed=%d ranks=%d comms=%d flows=%d msgs/flow=%d\n",
		*backend, !*noQoS, spec.Seed, spec.Ranks, spec.Comms,
		spec.EagerFlows+spec.BulkFlows, spec.Msgs)
	start := time.Now()
	if err := r.Run(w); err != nil {
		return err
	}
	wall := time.Since(start)
	if ef, bf := r.Failures(); ef != 0 || bf != 0 {
		return fmt.Errorf("qos soak: %d eager / %d bulk request failures", ef, bf)
	}
	fmt.Printf("%8s %8s %12s %12s %12s\n", "class", "msgs", "p50 us", "p99 us", "max us")
	for _, cl := range []struct {
		name string
		hist *stats.Histogram
	}{
		{"eager", reg.Histogram(traffic.HistEager)},
		{"bulk", reg.Histogram(traffic.HistBulk)},
	} {
		fmt.Printf("%8s %8d %12.2f %12.2f %12.2f\n", cl.name, cl.hist.Count(),
			float64(cl.hist.Quantile(0.50))/1e3,
			float64(cl.hist.Quantile(0.99))/1e3,
			float64(cl.hist.Quantile(1))/1e3)
	}
	ctr := traffic.AggregateCounters(w)
	fmt.Printf("\nwall time %v\n# aggregate counters\n%s", wall.Round(time.Millisecond), ctr.String())
	return nil
}

// runSHMSweep is the raw RDMA sweep on the shared-memory backend: the same
// write/read and gather measurements as the simulator path, in deterministic
// virtual time under the zero-link cost profile. With no responder
// turnaround, write and read columns coincide.
func runSHMSweep() {
	model := shmfab.DefaultModel()
	fmt.Println("# shared-memory cost model (DESIGN.md section 15)")
	fmt.Printf("copy bandwidth      %.2f GB/s (+%v per contiguous run)\n", model.CopyGBps, model.CopyBlockStartup)
	fmt.Printf("descriptor post     %v (list entries %v, per SGE %v)\n", model.PostCost, model.ListPostEntry, model.SGEPost)
	fmt.Printf("registration        %v + %v/page; dereg %v + %v/page\n",
		model.RegBase, model.RegPerPage, model.DeregBase, model.DeregPerPage)
	fmt.Printf("no link terms: wire latency %v, link bandwidth %.0f, read turnaround %v; max SGE %d\n\n",
		model.WireLatency, model.LinkGBps, model.ReadTurnaround, model.MaxSGE)

	fmt.Println("# raw copy-transfer completion latency and effective bandwidth")
	fmt.Printf("%10s %14s %14s %14s\n", "bytes", "write (us)", "read (us)", "write MB/s")
	for _, size := range []int64{256, 4 << 10, 64 << 10, 512 << 10, 4 << 20} {
		w := shmOneOp(model, verbs.OpRDMAWrite, size, 1)
		r := shmOneOp(model, verbs.OpRDMARead, size, 1)
		mbps := float64(size) / (1 << 20) / w.Seconds()
		fmt.Printf("%10d %14.2f %14.2f %14.1f\n", size, w.Micros(), r.Micros(), mbps)
	}

	fmt.Println("\n# gather write: one descriptor, varying SGE count (64 KB total)")
	fmt.Printf("%6s %14s\n", "SGEs", "latency (us)")
	for _, n := range []int{1, 4, 16, 64} {
		d := shmOneOp(model, verbs.OpRDMAWrite, 64<<10, n)
		fmt.Printf("%6d %14.2f\n", n, d.Micros())
	}
}

// shmOneOp measures the virtual completion time of one RDMA operation on a
// two-partition shared-memory fabric.
func shmOneOp(model verbs.Model, op verbs.Opcode, size int64, n int) simtime.Duration {
	eng := simtime.NewEngine()
	fab := shmfab.New(eng, model, 2, size*2+8<<20)
	if tracer != nil {
		tracer.SetPrefix(fmt.Sprintf("shm/%v-%dB-%dsge/", op, size, n))
		fab.SetTracer(tracer)
	}
	na := fab.AddNode("a", nil)
	nb := fab.AddNode("b", nil)
	aSend, aRecv := na.NewCQ(), na.NewCQ()
	bSend, bRecv := nb.NewCQ(), nb.NewCQ()
	qa, _ := na.Connect(nb, aSend, aRecv, bSend, bRecv)

	ma, mb := na.Mem(), nb.Mem()
	per := size / int64(n)
	sgl := make([]verbs.SGE, n)
	for i := range sgl {
		a := ma.MustAlloc(per)
		reg, err := ma.Reg().Register(a, per)
		if err != nil {
			panic(err)
		}
		sgl[i] = verbs.SGE{Addr: a, Len: per, Key: reg.LKey}
	}
	remote := mb.MustAlloc(size)
	rreg, err := mb.Reg().Register(remote, size)
	if err != nil {
		panic(err)
	}

	var done simtime.Time
	aSend.SetHandler(func(e verbs.CQE) {
		if e.Err != nil {
			panic(e.Err)
		}
		done = eng.Now()
	})
	if err := qa.PostSend(verbs.SendWR{Op: op, SGL: sgl, RemoteAddr: remote, RKey: rreg.RKey}); err != nil {
		panic(err)
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return done.Sub(0)
}

// runRTSweep is the raw RDMA sweep on the real-time backend: the same
// write/read and gather measurements as the simulator path, but timed with
// the wall clock over many iterated operations.
func runRTSweep() {
	model := ib.DefaultModel()
	const iters = 400
	fmt.Printf("# raw RDMA wall-clock latency on the real-time backend (%d ops averaged)\n", iters)
	fmt.Printf("%10s %14s %14s %14s\n", "bytes", "write (us)", "read (us)", "write MB/s")
	for _, size := range []int64{256, 4 << 10, 64 << 10, 512 << 10, 4 << 20} {
		w := rtOneOp(model, verbs.OpRDMAWrite, size, 1, iters)
		r := rtOneOp(model, verbs.OpRDMARead, size, 1, iters)
		mbps := float64(size) / (1 << 20) / w.Seconds()
		fmt.Printf("%10d %14.2f %14.2f %14.1f\n", size,
			float64(w.Nanoseconds())/1e3, float64(r.Nanoseconds())/1e3, mbps)
	}

	fmt.Println("\n# gather write: one descriptor, varying SGE count (64 KB total)")
	fmt.Printf("%6s %14s\n", "SGEs", "latency (us)")
	for _, n := range []int{1, 4, 16, 64} {
		d := rtOneOp(model, verbs.OpRDMAWrite, 64<<10, n, iters)
		fmt.Printf("%6d %14.2f\n", n, float64(d.Nanoseconds())/1e3)
	}
}

// rtOneOp measures the average wall-clock completion time of an RDMA
// operation on a two-node real-time fabric, amortized over iters sequential
// posts so that fabric start/stop cost drops out of the per-op number.
func rtOneOp(model verbs.Model, op verbs.Opcode, size int64, n, iters int) time.Duration {
	f := rtfab.New(model)
	if tracer != nil {
		tracer.SetPrefix(fmt.Sprintf("rt/%v-%dB-%dsge/", op, size, n))
		f.SetTracer(tracer)
	}
	ma := mem.NewMemory("a", size*2+8<<20)
	mb := mem.NewMemory("b", size*2+8<<20)
	na := f.AddNode("a", ma, nil)
	nb := f.AddNode("b", mb, nil)
	aSend, aRecv := na.NewCQ(), na.NewCQ()
	bSend, bRecv := nb.NewCQ(), nb.NewCQ()
	qa, _ := na.Connect(nb, aSend, aRecv, bSend, bRecv)

	per := size / int64(n)
	sgl := make([]verbs.SGE, n)
	for i := range sgl {
		a := ma.MustAlloc(per)
		reg, err := ma.Reg().Register(a, per)
		if err != nil {
			panic(err)
		}
		sgl[i] = verbs.SGE{Addr: a, Len: per, Key: reg.LKey}
	}
	remote := mb.MustAlloc(size)
	rreg, err := mb.Reg().Register(remote, size)
	if err != nil {
		panic(err)
	}

	na.Engine().Spawn("driver", func(p *simtime.Process) {
		for i := 0; i < iters; i++ {
			wr := verbs.SendWR{Op: op, SGL: sgl, RemoteAddr: remote, RKey: rreg.RKey}
			if err := qa.PostSend(wr); err != nil {
				panic(err)
			}
			if e := aSend.WaitPoll(p); e.Err != nil {
				panic(e.Err)
			}
		}
	})
	start := time.Now()
	if err := f.Run(time.Minute); err != nil {
		panic(err)
	}
	return time.Since(start) / time.Duration(iters)
}

// runFaultSoak drives every scheme through a two-rank fault-injected
// exchange and reports delivery outcomes on the selected backend. Returns
// false if any scheme corrupted data or (with perm-rate 0) failed a request.
func runFaultSoak() bool {
	fc := fault.Config{
		Seed:          *seed,
		PostFailRate:  *postRate,
		CQEErrorRate:  *cqeRate,
		RegFailRate:   *regRate,
		DelayRate:     *delayRate,
		MaxDelay:      20 * simtime.Microsecond,
		PermanentRate: *permRate,
	}
	fmt.Printf("# fault soak: backend=%s seed=%d post=%.2f cqe=%.2f reg=%.2f delay=%.2f perm=%.2f msgs=%d\n",
		*backend, *seed, *postRate, *cqeRate, *regRate, *delayRate, *permRate, *msgs)
	fmt.Printf("%-10s %8s %8s %8s %8s %8s %12s\n",
		"scheme", "ok", "failed", "corrupt", "retries", "aborts", "end (ms)")

	type soakRow struct {
		label  string
		scheme core.Scheme
		sel    core.SchemeSelector
	}
	rows := []soakRow{
		{"Generic", core.SchemeGeneric, nil},
		{"BC-SPUP", core.SchemeBCSPUP, nil},
		{"RWG-UP", core.SchemeRWGUP, nil},
		{"P-RRS", core.SchemePRRS, nil},
		{"Multi-W", core.SchemeMultiW, nil},
	}
	if *tunerSoak {
		// Adaptive selection under fire: the same tuner instance is shared
		// by both endpoints, and fault-inflated latencies feed its arms.
		tcfg := tuner.DefaultConfig()
		tcfg.Backend = *backend
		rows = append(rows, soakRow{"Auto+tuner", core.SchemeAuto, tuner.New(tcfg)})
	}
	vec := datatype.Must(datatype.TypeVector(128, 16, 64, datatype.Int32))
	const count = 160
	allGood := true

	for _, row := range rows {
		scheme := row.scheme
		inj := fault.New(fc)
		var (
			eng *simtime.Engine
			rtf *rtfab.Fabric
			fab *ib.Fabric
		)
		var shmf *shmfab.Fabric
		switch *backend {
		case "rt":
			rtf = rtfab.New(ib.DefaultModel())
			rtf.SetInjector(inj)
		case "shm":
			eng = simtime.NewEngine()
			shmf = shmfab.New(eng, shmfab.DefaultModel(), 2, 64<<20)
			shmf.SetInjector(inj)
		default:
			eng = simtime.NewEngine()
			fab = ib.NewFabric(eng, ib.DefaultModel())
			fab.SetInjector(inj)
		}
		cfg := core.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Selector = row.sel
		cfg.PoolSize = 4 << 20
		if tracer != nil {
			tracer.SetPrefix(*backend + "/" + row.label + "/")
			switch {
			case rtf != nil:
				rtf.SetTracer(tracer)
				cfg.TraceClock = rtf.WallClock
			case shmf != nil:
				shmf.SetTracer(tracer)
			default:
				fab.SetTracer(tracer)
			}
			cfg.Tracer = tracer
		}
		eps := make([]*core.Endpoint, 2)
		hcas := make([]verbs.HCA, 2)
		for i := range eps {
			switch {
			case rtf != nil:
				hcas[i] = rtf.AddNode(fmt.Sprintf("n%d", i), mem.NewMemory(fmt.Sprintf("n%d", i), 64<<20), nil)
			case shmf != nil:
				hcas[i] = shmf.AddNode(fmt.Sprintf("n%d", i), nil)
			default:
				hcas[i] = fab.AddHCA(fmt.Sprintf("n%d", i), mem.NewMemory(fmt.Sprintf("n%d", i), 64<<20), nil)
			}
			ep, err := core.NewEndpoint(i, hcas[i], cfg)
			if err != nil {
				panic(err)
			}
			eps[i] = ep
		}
		core.ConnectPeers(eps)

		size := vec.Size() * int64(count)
		sent := make([][]byte, *msgs)
		got := make([][]byte, *msgs)
		var sendErrs, recvErrs int
		for _, ep := range eps {
			ep := ep
			hcas[ep.Rank()].Engine().Spawn(fmt.Sprintf("rank%d", ep.Rank()), func(p *simtime.Process) {
				for m := 0; m < *msgs; m++ {
					span := vec.TrueExtent() + int64(count-1)*vec.Extent()
					a := ep.Mem().MustAlloc(span)
					buf := mem.Addr(int64(a) - vec.TrueLB())
					if ep.Rank() == 0 {
						data := make([]byte, size)
						for i := range data {
							data[i] = byte(m+1) ^ byte(i*31+7)
						}
						u := pack.NewUnpacker(ep.Mem(), buf, vec, count)
						u.UnpackFrom(data)
						sent[m] = data
						if err := ep.Send(p, buf, count, vec, 1, m); err != nil {
							sendErrs++
						}
					} else {
						_, err := ep.Recv(p, buf, count, vec, 0, m)
						if err != nil {
							recvErrs++
							continue
						}
						out := make([]byte, size)
						pk := pack.NewPacker(ep.Mem(), buf, vec, count)
						pk.PackTo(out)
						got[m] = out
					}
				}
			})
		}
		start := time.Now()
		var runErr error
		if rtf != nil {
			runErr = rtf.Run(time.Minute)
		} else {
			runErr = eng.Run()
		}
		if runErr != nil {
			fmt.Printf("%-10s engine error: %v\n", row.label, runErr)
			allGood = false
			continue
		}
		endMS := float64(time.Since(start).Microseconds()) / 1000
		if eng != nil {
			endMS = float64(eng.Now().Sub(0).Micros()) / 1000
		}

		okCount, corrupt := 0, 0
		for m := 0; m < *msgs; m++ {
			switch {
			case got[m] == nil:
				// failed receive; counted in recvErrs
			case bytes.Equal(sent[m], got[m]):
				okCount++
			default:
				corrupt++
			}
		}
		var retries, aborts int64
		for _, ep := range eps {
			retries += ep.Counters().FaultRetries
			aborts += ep.Counters().RequestsFailed
		}
		fmt.Printf("%-10s %8d %8d %8d %8d %8d %12.2f\n",
			row.label, okCount, recvErrs, corrupt, retries, aborts, endMS)
		if corrupt > 0 {
			allGood = false
		}
		if *permRate == 0 && (sendErrs > 0 || recvErrs > 0) {
			allGood = false
		}
	}
	fmt.Println()
	if allGood {
		fmt.Println("fault soak: PASS (all schemes delivered byte-identical data or aborted cleanly)")
	} else {
		fmt.Println("fault soak: FAIL")
	}
	return allGood
}

// oneOp measures the virtual completion time of a single RDMA operation of
// the given total size split across n scatter/gather entries.
func oneOp(model ib.Model, op ib.Opcode, size int64, n int) simtime.Duration {
	eng := simtime.NewEngine()
	fab := ib.NewFabric(eng, model)
	if tracer != nil {
		tracer.SetPrefix(fmt.Sprintf("sim/%v-%dB-%dsge/", op, size, n))
		fab.SetTracer(tracer)
	}
	ma := mem.NewMemory("a", size*2+8<<20)
	mb := mem.NewMemory("b", size*2+8<<20)
	ha := fab.AddHCA("a", ma, nil)
	hb := fab.AddHCA("b", mb, nil)
	aSend, aRecv := ib.NewCQ(ha), ib.NewCQ(ha)
	bSend, bRecv := ib.NewCQ(hb), ib.NewCQ(hb)
	qa, _ := ib.Connect(ha, hb, aSend, aRecv, bSend, bRecv)

	per := size / int64(n)
	sgl := make([]ib.SGE, n)
	for i := range sgl {
		a := ma.MustAlloc(per)
		reg, err := ma.Reg().Register(a, per)
		if err != nil {
			panic(err)
		}
		sgl[i] = ib.SGE{Addr: a, Len: per, Key: reg.LKey}
	}
	remote := mb.MustAlloc(size)
	rreg, err := mb.Reg().Register(remote, size)
	if err != nil {
		panic(err)
	}

	var done simtime.Time
	aSend.SetHandler(func(e ib.CQE) {
		if e.Err != nil {
			panic(e.Err)
		}
		done = eng.Now()
	})
	if err := qa.PostSend(ib.SendWR{Op: op, SGL: sgl, RemoteAddr: remote, RKey: rreg.RKey}); err != nil {
		panic(err)
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return done.Sub(0)
}
