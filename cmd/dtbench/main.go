// dtbench regenerates the paper's evaluation tables and figures on the
// simulated InfiniBand fabric.
//
// Usage:
//
//	dtbench                  # run everything
//	dtbench -fig 8           # one figure (2, 8, 9, 11, 12, 13, 14)
//	dtbench -headline        # abstract's improvement factors (runs 8, 9, 11)
//	dtbench -backend rt      # wall-clock backend benchmark -> BENCH_backends.json
//	dtbench -zoo all         # layout zoo over sim/rt/shm -> BENCH_zoo.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exper"
	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to reproduce (0 = all)")
	headline := flag.Bool("headline", false, "print the headline improvement factors")
	ablations := flag.Bool("ablations", false, "run this reproduction's extra ablation studies")
	counters := flag.Bool("counters", false, "print per-scheme operation counters for one transfer")
	backend := flag.String("backend", "", `wall-clock backend benchmark: "sim", "rt", "shm", "both", or "all"`)
	benchOut := flag.String("bench-out", "BENCH_backends.json", "output path for the -backend benchmark")
	benchIters := flag.Int("bench-iters", 50, "ping-pong round trips per (scheme, backend) in -backend")
	workers := flag.Int("workers", 0, "with -backend: pack/unpack worker count (0 = config default)")
	batch := flag.Int("batch", 0, "with -backend: doorbell batch for segmented schemes (0 = config default)")
	parallel := flag.String("parallel", "", `parallel segment-engine sweep: "sim", "rt", or "both" -> BENCH_parallel.json`)
	parallelOut := flag.String("parallel-out", "BENCH_parallel.json", "output path for the -parallel sweep")
	parallelGuard := flag.Bool("parallel-guard", false, "regenerate the -parallel sim rows and verify them against -parallel-out")
	scale := flag.String("scale", "", `world-size scale sweep: "sim", "rt", or "both" -> BENCH_scale.json`)
	scaleOut := flag.String("scale-out", "BENCH_scale.json", "output path for the -scale sweep")
	scaleGuard := flag.Bool("scale-guard", false, "regenerate the -scale sim rows and verify them against -scale-out")
	zoo := flag.String("zoo", "", `layout-zoo sweep: "sim", "rt", "shm", "both", or "all" -> BENCH_zoo.json`)
	zooOut := flag.String("zoo-out", "BENCH_zoo.json", "output path for the -zoo sweep")
	zooGuard := flag.Bool("zoo-guard", false, "regenerate the -zoo modeled rows (sim + shm) and verify them against -zoo-out")
	traceOut := flag.String("trace", "", "with -backend: write Chrome trace-event JSON (chrome://tracing, Perfetto) here and print per-scheme histograms")
	tunerRun := flag.Bool("tuner", false, "run the adversarial adaptive-tuner sweep -> BENCH_tuner.json")
	tunerMsgs := flag.Int("tuner-msgs", 160, "messages per mode in the -tuner sweep")
	tunerOut := flag.String("tuner-out", "BENCH_tuner.json", "output path for the -tuner report")
	tuneOut := flag.String("tune-out", "", "with -tuner: also write the learned tuning table (JSON) here")
	tuneIn := flag.String("tune-in", "", "warm-start: replay the workload with this tuning table, exploration off")
	qosRun := flag.String("qos", "", `service-mode QoS sweep: "sim", "rt", or "both" -> BENCH_qos.json`)
	qosOut := flag.String("qos-out", "BENCH_qos.json", "output path for the -qos sweep")
	soak := flag.Bool("soak", false, "deterministic two-phase traffic soak (sim) -> SOAK_traffic.json")
	soakOut := flag.String("soak-out", "SOAK_traffic.json", "output path for the -soak golden snapshot")
	soakGuard := flag.Bool("soak-guard", false, "regenerate the traffic soak and verify it against -soak-out byte-for-byte")
	compile := flag.Bool("compile", false, "datatype-compiler pack sweep (modeled sim rows + host wall-clock rows) -> BENCH_compile.json")
	compileOut := flag.String("compile-out", "BENCH_compile.json", "output path for the -compile sweep")
	compileGuard := flag.Bool("compile-guard", false, "regenerate the -compile sim rows and verify them against -compile-out")
	flag.Parse()

	figs := map[int]func() *exper.Result{
		2: exper.Fig2, 8: exper.Fig8, 9: exper.Fig9, 11: exper.Fig11,
		12: exper.Fig12, 13: exper.Fig13, 14: exper.Fig14,
	}

	backendList := func(arg string) []string {
		switch arg {
		case "sim", "rt", "shm":
			return []string{arg}
		case "both":
			return []string{"sim", "rt"}
		case "all":
			return mpi.AllBackends
		}
		fmt.Fprintf(os.Stderr, "dtbench: unknown backend %q (want sim, rt, shm, both, or all)\n", arg)
		os.Exit(2)
		return nil
	}

	if *soakGuard {
		committed, err := os.ReadFile(*soakOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := exper.SoakGuard(committed); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Printf("soak guard: %s reproduces byte-for-byte\n", *soakOut)
		return
	}
	if *soak {
		doc, err := exper.SoakRun()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		out, err := exper.SoakJSON(doc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*soakOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		for _, ph := range doc.Phases {
			fmt.Printf("phase %-16s pool highs pack=%d unpack=%d regpages=%d\n",
				ph.Name, ph.PoolPackHigh, ph.PoolUnpackHigh, ph.RegPagesHigh)
		}
		fmt.Printf("wrote %s\n", *soakOut)
		return
	}
	if *qosRun != "" {
		rows, err := exper.QoSSweep(backendList(*qosRun))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		doc, err := exper.QoSJSON(rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*qosOut, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Print(exper.QoSTable(rows))
		fmt.Printf("wrote %s\n", *qosOut)
		return
	}
	if *compileGuard {
		committed, err := os.ReadFile(*compileOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := exper.CompileGuard(committed); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Printf("compile guard: sim rows of %s reproduce byte-for-byte\n", *compileOut)
		return
	}
	if *compile {
		rows, err := exper.CompilerSweep(true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		doc, err := exper.CompileJSON(rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*compileOut, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Print(exper.CompileTable(rows))
		fmt.Printf("wrote %s\n", *compileOut)
		return
	}
	if *zooGuard {
		committed, err := os.ReadFile(*zooOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := exper.ZooGuard(committed); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Printf("zoo guard: modeled rows of %s reproduce byte-for-byte\n", *zooOut)
		return
	}
	if *zoo != "" {
		rows, err := exper.ZooSweep(backendList(*zoo))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		doc, err := exper.ZooJSON(rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*zooOut, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Print(exper.ZooTable(rows))
		fmt.Printf("wrote %s\n", *zooOut)
		return
	}
	if *scaleGuard {
		committed, err := os.ReadFile(*scaleOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := exper.ScaleGuard(committed); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Printf("scale guard: sim rows of %s reproduce byte-for-byte\n", *scaleOut)
		return
	}
	if *scale != "" {
		rows, err := exper.ScaleSweep(backendList(*scale))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		doc, err := exper.ScaleJSON(rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*scaleOut, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Print(exper.ScaleTable(rows))
		fmt.Printf("wrote %s\n", *scaleOut)
		return
	}
	if *parallelGuard {
		committed, err := os.ReadFile(*parallelOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := exper.ParallelGuard(committed); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Printf("parallel guard: sim rows of %s reproduce byte-for-byte\n", *parallelOut)
		return
	}
	if *parallel != "" {
		rows, err := exper.ParallelSweep(backendList(*parallel))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		doc, err := exper.ParallelJSON(rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*parallelOut, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Print(exper.ParallelTable(rows))
		fmt.Printf("wrote %s\n", *parallelOut)
		return
	}
	if *backend != "" {
		backends := backendList(*backend)
		var rec *trace.Recorder
		var reg *stats.Registry
		if *traceOut != "" {
			rec = trace.New()
			reg = stats.NewRegistry()
		}
		var mut func(*mpi.Config)
		if *workers > 0 || *batch > 0 {
			mut = func(c *mpi.Config) {
				if *workers > 0 {
					c.Core.PackWorkers = *workers
				}
				if *batch > 0 {
					c.Core.PostBatch = *batch
				}
			}
		}
		rows, err := exper.BenchBackendsOpts(backends, *benchIters, rec, reg, mut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		doc, err := exper.BackendsJSON(rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchOut, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Print(exper.BackendsTable(rows))
		fmt.Printf("wrote %s\n", *benchOut)
		if rec != nil {
			if err := os.WriteFile(*traceOut, rec.ChromeTrace(), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "dtbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d events; load via chrome://tracing or ui.perfetto.dev)\n",
				*traceOut, rec.Len())
			fmt.Println("\n# per-scheme histograms (lat_ns = one-way latency; mbps = payload bandwidth)")
			fmt.Print(reg.String())
		}
		return
	}
	if *tuneIn != "" {
		table, err := os.ReadFile(*tuneIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		row, err := exper.TunerWarmRun(table, *tunerMsgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Printf("warm start from %s: %d messages, mean %.2f us (last quartile %.2f us), %d exploitations, regret %.2f ms\n",
			*tuneIn, row.Msgs, row.MeanUS, row.LastQMeanUS, row.Exploitations, row.RegretMS)
		return
	}
	if *tunerRun {
		rep, table, err := exper.TunerSweep(*tunerMsgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		doc, err := exper.TunerJSON(rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*tunerOut, append(doc, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Print(exper.TunerTable(rep))
		fmt.Printf("wrote %s\n", *tunerOut)
		if *tuneOut != "" {
			if err := os.WriteFile(*tuneOut, append(table, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "dtbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (tuning table; replay with -tune-in)\n", *tuneOut)
		}
		return
	}
	if *counters {
		rep, err := exper.CountersReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		return
	}
	if *ablations {
		for _, f := range []func() *exper.Result{
			exper.AblationSegmentSize, exper.AblationOGR,
			exper.AblationPindown, exper.AblationEagerPath, exper.AblationAuto,
			exper.AblationSensitivity, exper.AblationOneSided, exper.AblationParIO,
		} {
			fmt.Print(f().Table())
			fmt.Println()
		}
		return
	}
	if *headline {
		f8, f9, f11 := exper.Fig8(), exper.Fig9(), exper.Fig11()
		fmt.Print(f8.Table(), "\n", f9.Table(), "\n", f11.Table(), "\n")
		fmt.Print(exper.HeadlineSummary(f8, f9, f11))
		return
	}
	if *fig != 0 {
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "dtbench: no figure %d (have 2, 8, 9, 11, 12, 13, 14)\n", *fig)
			os.Exit(2)
		}
		fmt.Print(f().Table())
		return
	}
	for _, n := range []int{2, 8, 9, 11, 12, 13, 14} {
		fmt.Print(figs[n]().Table())
		fmt.Println()
	}
	f8, f9, f11 := exper.Fig8(), exper.Fig9(), exper.Fig11()
	fmt.Print(exper.HeadlineSummary(f8, f9, f11))
}
