// dtbench regenerates the paper's evaluation tables and figures on the
// simulated InfiniBand fabric.
//
// Usage:
//
//	dtbench                  # run everything
//	dtbench -fig 8           # one figure (2, 8, 9, 11, 12, 13, 14)
//	dtbench -headline        # abstract's improvement factors (runs 8, 9, 11)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exper"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to reproduce (0 = all)")
	headline := flag.Bool("headline", false, "print the headline improvement factors")
	ablations := flag.Bool("ablations", false, "run this reproduction's extra ablation studies")
	counters := flag.Bool("counters", false, "print per-scheme operation counters for one transfer")
	flag.Parse()

	figs := map[int]func() *exper.Result{
		2: exper.Fig2, 8: exper.Fig8, 9: exper.Fig9, 11: exper.Fig11,
		12: exper.Fig12, 13: exper.Fig13, 14: exper.Fig14,
	}

	if *counters {
		rep, err := exper.CountersReport()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtbench:", err)
			os.Exit(1)
		}
		fmt.Print(rep)
		return
	}
	if *ablations {
		for _, f := range []func() *exper.Result{
			exper.AblationSegmentSize, exper.AblationOGR,
			exper.AblationPindown, exper.AblationEagerPath, exper.AblationAuto,
			exper.AblationSensitivity, exper.AblationOneSided, exper.AblationParIO,
		} {
			fmt.Print(f().Table())
			fmt.Println()
		}
		return
	}
	if *headline {
		f8, f9, f11 := exper.Fig8(), exper.Fig9(), exper.Fig11()
		fmt.Print(f8.Table(), "\n", f9.Table(), "\n", f11.Table(), "\n")
		fmt.Print(exper.HeadlineSummary(f8, f9, f11))
		return
	}
	if *fig != 0 {
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "dtbench: no figure %d (have 2, 8, 9, 11, 12, 13, 14)\n", *fig)
			os.Exit(2)
		}
		fmt.Print(f().Table())
		return
	}
	for _, n := range []int{2, 8, 9, 11, 12, 13, 14} {
		fmt.Print(figs[n]().Table())
		fmt.Println()
	}
	f8, f9, f11 := exper.Fig8(), exper.Fig9(), exper.Fig11()
	fmt.Print(exper.HeadlineSummary(f8, f9, f11))
}
