// Command perfgate runs the pinned performance micro-suite
// (internal/perfgate) and either refreshes the committed baseline or checks
// the current build against it.
//
// Usage:
//
//	perfgate -update          # run suite, rewrite BENCH_perf.json
//	perfgate -check           # run suite, compare against BENCH_perf.json
//	perfgate -file path ...   # use a different baseline artifact
//
// -check exits nonzero on any fatal finding: a zero-alloc row that
// allocates, an allocation count past tolerance, a virtual-time latency
// regression, or a row missing from the current suite. Wall-clock drift and
// rows not yet in the baseline are printed as advisory notes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/perfgate"
)

func main() {
	file := flag.String("file", "BENCH_perf.json", "baseline artifact path")
	update := flag.Bool("update", false, "run the suite and rewrite the baseline")
	check := flag.Bool("check", false, "run the suite and compare against the baseline")
	flag.Parse()
	if *update == *check {
		fmt.Fprintln(os.Stderr, "perfgate: exactly one of -update or -check is required")
		os.Exit(2)
	}

	cur, err := perfgate.Suite()
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate: suite failed:", err)
		os.Exit(1)
	}

	if *update {
		if err := cur.Save(*file); err != nil {
			fmt.Fprintln(os.Stderr, "perfgate:", err)
			os.Exit(1)
		}
		fmt.Printf("perfgate: wrote %d rows to %s\n", len(cur.Rows), *file)
		return
	}

	base, err := perfgate.Load(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate: loading baseline:", err)
		os.Exit(1)
	}
	problems := perfgate.Compare(base, cur)
	for _, p := range problems {
		fmt.Println(p)
	}
	if perfgate.Fatal(problems) {
		fmt.Fprintf(os.Stderr, "perfgate: FAIL against %s\n", *file)
		os.Exit(1)
	}
	fmt.Printf("perfgate: ok (%d rows against %s)\n", len(cur.Rows), *file)
}
