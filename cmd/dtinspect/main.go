// dtinspect builds a derived datatype from a small command-line spec and
// prints its layout: size/extent semantics, contiguous-run statistics, the
// adaptive tuner's layout signature, the flattened block list, and the
// wire-encoding size used by the Multi-W layout exchange.
//
// Specs:
//
//	vector:COUNT,BLOCKLEN,STRIDE[,BASE]     MPI_Type_vector
//	contig:COUNT[,BASE]                     MPI_Type_contiguous
//	indexed:LEN@DISPL,LEN@DISPL,...[;BASE]  MPI_Type_indexed
//	paperstruct:LASTINTS                    the paper's Figure 10 struct
//
// BASE is one of int32 (default), float64, byte.
//
//	go run ./cmd/dtinspect 'vector:128,2,4096'
//	go run ./cmd/dtinspect -count 4 -blocks 8 'paperstruct:8192'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/datatype"
	"repro/internal/exper"
	"repro/internal/tuner"
)

func main() {
	count := flag.Int("count", 1, "datatype count (instances in the message)")
	maxBlocks := flag.Int("blocks", 16, "flattened blocks to print")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dtinspect [-count N] [-blocks N] SPEC")
		os.Exit(2)
	}
	dt, err := parse(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("type:        %v\n", dt)
	fmt.Printf("size:        %d bytes of data per instance\n", dt.Size())
	fmt.Printf("extent:      %d (lb %d, ub %d)\n", dt.Extent(), dt.LB(), dt.UB())
	fmt.Printf("true extent: %d (true lb %d)\n", dt.TrueExtent(), dt.TrueLB())
	fmt.Printf("contiguous:  %v   density: %.3f\n", dt.Contig(), dt.Density())

	s := datatype.LayoutStats(dt, *count, 1<<20)
	fmt.Printf("message:     count=%d -> %d bytes in %d runs (min %d / median %d / avg %.1f / max %d)\n",
		*count, s.Bytes, s.Runs, s.MinRun, s.MedianRun, s.AvgRun, s.MaxRun)

	sig := tuner.SignatureOf(s.Runs, int64(s.AvgRun), s.Bytes)
	fmt.Printf("tuner sig:   %s\n", sig)

	prog := datatype.Compile(dt, *count)
	fmt.Printf("compiled:    %s\n", prog)

	enc := datatype.Encode(dt)
	fmt.Printf("wire layout: %d bytes encoded\n", len(enc))
	fmt.Printf("dataloop tree:\n%s", indentLines(dt.Tree()))

	blocks, trunc := datatype.Flatten(dt, *count, *maxBlocks)
	fmt.Printf("flattened runs%s:\n", map[bool]string{true: " (truncated)", false: ""}[trunc])
	for _, b := range blocks {
		fmt.Printf("  [%8d, +%d)\n", b.Off, b.Len)
	}
}

func parse(spec string) (*datatype.Type, error) {
	kind, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("spec %q: want KIND:ARGS", spec)
	}
	switch kind {
	case "vector":
		args, base, err := intArgs(rest, 3)
		if err != nil {
			return nil, err
		}
		return datatype.TypeVector(args[0], args[1], args[2], base)
	case "contig":
		args, base, err := intArgs(rest, 1)
		if err != nil {
			return nil, err
		}
		return datatype.TypeContiguous(args[0], base)
	case "indexed":
		body, baseName, _ := strings.Cut(rest, ";")
		base, err := baseType(baseName)
		if err != nil {
			return nil, err
		}
		var lens, displs []int
		for _, part := range strings.Split(body, ",") {
			l, d, ok := strings.Cut(part, "@")
			if !ok {
				return nil, fmt.Errorf("indexed part %q: want LEN@DISPL", part)
			}
			li, err1 := strconv.Atoi(l)
			di, err2 := strconv.Atoi(d)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("indexed part %q: bad numbers", part)
			}
			lens = append(lens, li)
			displs = append(displs, di)
		}
		return datatype.TypeIndexed(lens, displs, base)
	case "paperstruct":
		last, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("paperstruct: %w", err)
		}
		return exper.StructType(last), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func intArgs(rest string, n int) ([]int, *datatype.Type, error) {
	parts := strings.Split(rest, ",")
	if len(parts) < n || len(parts) > n+1 {
		return nil, nil, fmt.Errorf("want %d integers and an optional base type, got %q", n, rest)
	}
	args := make([]int, n)
	for i := 0; i < n; i++ {
		v, err := strconv.Atoi(strings.TrimSpace(parts[i]))
		if err != nil {
			return nil, nil, fmt.Errorf("bad integer %q", parts[i])
		}
		args[i] = v
	}
	baseName := ""
	if len(parts) == n+1 {
		baseName = parts[n]
	}
	base, err := baseType(baseName)
	return args, base, err
}

func baseType(name string) (*datatype.Type, error) {
	switch strings.TrimSpace(name) {
	case "", "int32", "int":
		return datatype.Int32, nil
	case "float64", "double":
		return datatype.Float64, nil
	case "byte", "char":
		return datatype.Byte, nil
	default:
		return nil, fmt.Errorf("unknown base type %q", name)
	}
}

func indentLines(s string) string {
	out := ""
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out += "  " + line + "\n"
	}
	return out
}
