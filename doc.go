// Package repro is a from-scratch Go reproduction of "High Performance
// Implementation of MPI Derived Datatype Communication over InfiniBand"
// (Wu, Wyckoff, Panda — OSU-CISRC-10/03-TR58 / IPDPS 2004).
//
// The paper's InfiniBand hardware is replaced by a deterministic
// discrete-event fabric simulation (see DESIGN.md for the substitution
// argument); everything above it — registered memory, Verbs, MPI derived
// datatypes, the Eager/Rendezvous protocols, and the paper's five datatype
// transfer schemes — is implemented in the internal packages:
//
//	simtime   event engine and coroutine processes
//	mem       simulated memory, registration, pin-down cache, OGR
//	ib        software Verbs over the cost-modeled fabric
//	datatype  MPI derived datatypes, dataloops, partial processing
//	pack      segment pack/unpack engines
//	core      the paper's transfer schemes and protocols
//	mpi       mini-MPI: communicators, collectives, one-sided windows
//	pario     noncontiguous parallel I/O over the same substrate
//	trace     activity recording and timeline rendering
//	exper     the evaluation harness, one driver per paper figure
//
// This root package holds only the benchmark suite (bench_test.go), one
// testing.B benchmark per table and figure of the paper's evaluation.
package repro
