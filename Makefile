# Development entry points. `make check` is the tier-1 gate: formatting,
# vet, build, and the full test suite under the race detector (which
# includes one short fault-injected soak pass).

GO ?= go

# The packages the observability Recorder/Registry reach; `make race` runs
# just these under the race detector for a fast concurrency gate.
RACE_PKGS = ./internal/core/ ./internal/mpi/ ./internal/rtfab/ ./internal/shmfab/ ./internal/stats/ ./internal/trace/ ./internal/traffic/

.PHONY: check fmt vet build test race conformance fault-soak bench bench-backends tune tune-guard doclint par par-guard compile compile-guard qos soak soak-guard scale scale-guard zoo zoo-guard perf perf-guard

check: fmt vet build test doclint tune-guard par-guard compile-guard soak-guard scale-guard zoo-guard perf-guard

# Fails (and lists the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

race:
	$(GO) test -race -count=1 $(RACE_PKGS)

# The cross-backend conformance suite on its own: every datatype shape over
# every transfer scheme must deliver byte-identical data on both the
# deterministic simulator and the real-time concurrent fabric.
conformance:
	$(GO) test -race -count=1 -run TestCrossBackend ./internal/mpi/

# A longer, visible fault-injection pass over every transfer scheme, on both
# backends.
fault-soak:
	$(GO) run ./cmd/fabsim -fault-soak
	$(GO) run ./cmd/fabsim -fault-soak -backend rt
	$(GO) run ./cmd/fabsim -fault-soak -perm-rate 1 -cqe-rate 1

# Adversarial adaptive-tuner sweep -> BENCH_tuner.json, plus the learned
# tuning table for warm starts (replay it with `dtbench -tune-in`).
tune:
	$(GO) run ./cmd/dtbench -tuner -tune-out TUNE_table.json

# CI-style guard: the sweep runs on virtual time with a seeded RNG, so the
# checked-in BENCH_tuner.json must regenerate byte-identically.
tune-guard:
	@$(GO) run ./cmd/dtbench -tuner -tuner-out BENCH_tuner.json >/dev/null
	@git diff --exit-code -- BENCH_tuner.json || \
		{ echo "BENCH_tuner.json drifted from 'make tune' output"; exit 1; }

# Documentation floor: package comments everywhere under internal/, and a
# doc comment on every exported symbol of the strict packages (core, pack,
# perfgate, qos, verbs).
doclint:
	$(GO) run ./cmd/doclint

# Parallel segment-engine sweep (workers x backend) -> BENCH_parallel.json.
# The rt rows are wall-clock and machine-dependent; regenerate them when the
# engine changes, on the machine the numbers are quoted for.
par:
	$(GO) run ./cmd/dtbench -parallel both

# CI-style guard: the sweep's sim rows run on virtual time, so the
# checked-in BENCH_parallel.json must regenerate them byte-identically.
# (rt rows are exempt: they are wall-clock measurements.)
par-guard:
	@$(GO) run ./cmd/dtbench -parallel-guard

# Datatype-compiler pack sweep -> BENCH_compile.json: compiled program
# replay vs interpreted cursor walk vs the raw copy() upper bound. Sim rows
# are modeled and deterministic; host rows are wall-clock on this machine.
compile:
	$(GO) run ./cmd/dtbench -compile

# CI-style guard: the sweep's sim rows are pure cost-model arithmetic, so
# the checked-in BENCH_compile.json must regenerate them byte-identically.
# (host rows are exempt: they are wall-clock measurements.)
compile-guard:
	@$(GO) run ./cmd/dtbench -compile-guard

# Service-mode QoS contention sweep -> BENCH_qos.json: eager-class latency
# under concurrent Multi-W bulk load, with the lanes+windows layer off and
# on. The rt rows (and the headline eager-p99 improvement) are wall-clock;
# regenerate on the machine the numbers are quoted for.
qos:
	$(GO) run ./cmd/dtbench -qos both

# Deterministic two-phase traffic soak on the simulator -> SOAK_traffic.json
# (counters, windowed pool high-waters, per-class latency buckets).
soak:
	$(GO) run ./cmd/dtbench -soak

# CI-style guard: the soak runs entirely on virtual time with seeded flows,
# so the checked-in SOAK_traffic.json must regenerate byte-identically.
soak-guard:
	@$(GO) run ./cmd/dtbench -soak-guard

# World-size scale sweep -> BENCH_scale.json: alltoall (scheme x layout up
# to 256 ranks), the 2-D halo exchange up to 1024 ranks, and the 1024-rank
# eager alltoall matching-stress row (a million messages through one world).
# The rt rows are small-world wall-clock spot-checks of the real-time fabric.
scale:
	$(GO) run ./cmd/dtbench -scale both

# CI-style guard: the sweep's sim rows run on virtual time, so the
# checked-in BENCH_scale.json must regenerate them byte-identically.
# (rt rows are exempt: they are wall-clock measurements.)
scale-guard:
	@$(GO) run ./cmd/dtbench -scale-guard

# Layout-zoo sweep -> BENCH_zoo.json: Eijkhout's irregular/nested/strided/
# tiny-run layouts (plus a contiguous control) under every scheme on all
# three backends, with per-backend winners and cross-backend flips. The rt
# rows are wall-clock spot-checks.
zoo:
	$(GO) run ./cmd/dtbench -zoo all

# CI-style guard: the sweep's modeled rows (sim + shm) run on virtual time,
# so the checked-in BENCH_zoo.json must regenerate them byte-identically.
# (rt rows are exempt: they are wall-clock measurements.)
zoo-guard:
	@$(GO) run ./cmd/dtbench -zoo-guard

# Performance floor: rerun the pinned hot-path micro-suite and rewrite
# BENCH_perf.json. Do this deliberately, after a change that moves the
# numbers for a reason you can name — wall rows on the machine they are
# quoted for.
perf:
	$(GO) run ./cmd/perfgate -update

# CI-style guard: compare the current build against BENCH_perf.json.
# Zero-alloc rows must stay at exactly zero allocs/op; virtual-time latency
# rows (sim + shm) must stay within tolerance; wall-clock rows are advisory.
perf-guard:
	@$(GO) run ./cmd/perfgate -check

# Wall-clock scheme bandwidth/latency on all backends -> BENCH_backends.json.
bench-backends:
	$(GO) run ./cmd/dtbench -backend all

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
