# Development entry points. `make check` is the tier-1 gate: vet, build,
# and the full test suite under the race detector (which includes one short
# fault-injected soak pass).

GO ?= go

.PHONY: check vet build test fault-soak bench

check: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# A longer, visible fault-injection pass over every transfer scheme.
fault-soak:
	$(GO) run ./cmd/fabsim -fault-soak
	$(GO) run ./cmd/fabsim -fault-soak -perm-rate 1 -cqe-rate 1

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
