package mem

import (
	"fmt"
)

// Region is a registered memory region, the simulation's equivalent of an
// InfiniBand memory region (MR). RDMA operations must name a region key whose
// range covers the accessed bytes.
type Region struct {
	Addr  Addr
	Len   int64
	LKey  uint32
	RKey  uint32
	Pages int64

	valid bool
}

// Valid reports whether the region is still registered.
func (r *Region) Valid() bool { return r.valid }

// Covers reports whether the region covers the byte range [a, a+n).
func (r *Region) Covers(a Addr, n int64) bool {
	return r.valid && a >= r.Addr && int64(a)+n <= int64(r.Addr)+r.Len
}

// RegTable tracks the registered regions of one node's memory.
type RegTable struct {
	mem     *Memory
	nextKey uint32
	regions map[uint32]*Region

	// Totals for accounting and tests.
	TotalRegistrations   int64
	TotalDeregistrations int64
	PinnedBytes          int64
	PinnedPages          int64
}

func newRegTable(m *Memory) *RegTable {
	return &RegTable{mem: m, nextKey: 1, regions: make(map[uint32]*Region)}
}

// Register pins the byte range [a, a+n) and returns the new region.
// Overlapping registrations are permitted, as on hardware.
func (t *RegTable) Register(a Addr, n int64) (*Region, error) {
	if err := t.mem.CheckRange(a, n); err != nil {
		return nil, fmt.Errorf("register: %w", err)
	}
	if n <= 0 {
		return nil, fmt.Errorf("register: empty range at %#x", a)
	}
	r := &Region{
		Addr:  a,
		Len:   n,
		LKey:  t.nextKey,
		RKey:  t.nextKey,
		Pages: PageSpan(a, n),
		valid: true,
	}
	t.nextKey++
	t.regions[r.LKey] = r
	t.TotalRegistrations++
	t.PinnedBytes += n
	t.PinnedPages += r.Pages
	return r, nil
}

// Deregister unpins a region. Deregistering twice is an error.
func (t *RegTable) Deregister(r *Region) error {
	if r == nil || !r.valid {
		return fmt.Errorf("deregister: region not registered")
	}
	if _, ok := t.regions[r.LKey]; !ok {
		return fmt.Errorf("deregister: unknown key %d", r.LKey)
	}
	delete(t.regions, r.LKey)
	r.valid = false
	t.TotalDeregistrations++
	t.PinnedBytes -= r.Len
	t.PinnedPages -= r.Pages
	return nil
}

// Lookup returns the region for a key, or nil.
func (t *RegTable) Lookup(key uint32) *Region {
	return t.regions[key]
}

// CheckAccess validates that key authorizes access to [a, a+n), returning a
// descriptive error otherwise. It is used by the ib layer to validate both
// local (lkey) and remote (rkey) accesses.
func (t *RegTable) CheckAccess(key uint32, a Addr, n int64) error {
	r := t.regions[key]
	if r == nil {
		return fmt.Errorf("mem %s: access with invalid key %d", t.mem.Name(), key)
	}
	if !r.Covers(a, n) {
		return fmt.Errorf("mem %s: key %d region [%#x,+%d) does not cover access [%#x,+%d)",
			t.mem.Name(), key, r.Addr, r.Len, a, n)
	}
	return nil
}

// Covered reports whether some registered region covers [a, a+n).
func (t *RegTable) Covered(a Addr, n int64) bool {
	for _, r := range t.regions {
		if r.Covers(a, n) {
			return true
		}
	}
	return false
}

// RegionCount reports the number of live regions.
func (t *RegTable) RegionCount() int { return len(t.regions) }
