package mem

import "fmt"

// RegOps summarizes the real registration work performed by a cache
// operation, so callers can charge the corresponding virtual time and bump
// counters. A cache hit performs no work.
type RegOps struct {
	Registrations   int64
	RegisteredPages int64
	RegisteredBytes int64
	Dereg           int64
	DeregPages      int64
	Hits            int64
	Misses          int64
	Evictions       int64
}

// Add accumulates o into ops.
func (ops *RegOps) Add(o RegOps) {
	ops.Registrations += o.Registrations
	ops.RegisteredPages += o.RegisteredPages
	ops.RegisteredBytes += o.RegisteredBytes
	ops.Dereg += o.Dereg
	ops.DeregPages += o.DeregPages
	ops.Hits += o.Hits
	ops.Misses += o.Misses
	ops.Evictions += o.Evictions
}

type cacheEntry struct {
	region *Region
	refs   int
	lru    int64 // last-use stamp; larger is more recent
}

// RegCache is a pin-down cache: registrations are kept after release and
// reused when a later request falls inside a cached region, trading pinned
// memory for registration cost. Unreferenced entries are evicted in LRU order
// when cached pinned bytes exceed the capacity.
type RegCache struct {
	tab      *RegTable
	capBytes int64
	entries  []*cacheEntry
	stamp    int64
	enabled  bool
	faultFn  func() error // sampled before real registrations (fault injection)
}

// NewRegCache creates a pin-down cache over t holding at most capBytes of
// pinned memory across unreferenced entries. If enabled is false the cache
// degenerates to register/deregister on every Acquire/Release pair, which
// models the paper's worst-case buffer usage experiments.
func NewRegCache(t *RegTable, capBytes int64, enabled bool) *RegCache {
	return &RegCache{tab: t, capBytes: capBytes, enabled: enabled}
}

// Enabled reports whether caching is active.
func (c *RegCache) Enabled() bool { return c.enabled }

// SetEnabled toggles caching. Disabling does not flush existing entries;
// call Flush for that.
func (c *RegCache) SetEnabled(on bool) { c.enabled = on }

// SetFaultFn installs a hook sampled before every real registration (a cache
// miss); a non-nil return fails the Acquire without registering anything.
// Cache hits do no hardware work and are never failed. Used for fault
// injection; pass nil to disable.
func (c *RegCache) SetFaultFn(fn func() error) { c.faultFn = fn }

// Acquire returns a region covering [a, a+n), reusing a cached registration
// when possible. The returned RegOps describes the real work performed.
func (c *RegCache) Acquire(a Addr, n int64) (*Region, RegOps, error) {
	var ops RegOps
	if c.enabled {
		for _, e := range c.entries {
			if e.region.Covers(a, n) {
				e.refs++
				c.stamp++
				e.lru = c.stamp
				ops.Hits = 1
				return e.region, ops, nil
			}
		}
		ops.Misses = 1
	}
	if c.faultFn != nil {
		if err := c.faultFn(); err != nil {
			return nil, ops, fmt.Errorf("register [%#x,+%d): %w", a, n, err)
		}
	}
	r, err := c.tab.Register(a, n)
	if err != nil {
		return nil, ops, err
	}
	ops.Registrations = 1
	ops.RegisteredPages = r.Pages
	ops.RegisteredBytes = n
	c.stamp++
	c.entries = append(c.entries, &cacheEntry{region: r, refs: 1, lru: c.stamp})
	return r, ops, nil
}

// Release drops a reference obtained from Acquire. With caching enabled the
// registration is retained (subject to eviction); otherwise it is
// deregistered immediately. Eviction work is reported in RegOps.
func (c *RegCache) Release(r *Region) (RegOps, error) {
	var ops RegOps
	idx := -1
	for i, e := range c.entries {
		if e.region == r {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ops, fmt.Errorf("regcache: release of unknown region [%#x,+%d)", r.Addr, r.Len)
	}
	e := c.entries[idx]
	if e.refs <= 0 {
		return ops, fmt.Errorf("regcache: over-release of region [%#x,+%d)", r.Addr, r.Len)
	}
	e.refs--
	if e.refs > 0 {
		return ops, nil
	}
	if !c.enabled {
		c.entries = append(c.entries[:idx], c.entries[idx+1:]...)
		ops.Dereg = 1
		ops.DeregPages = e.region.Pages
		if err := c.tab.Deregister(e.region); err != nil {
			return ops, err
		}
		return ops, nil
	}
	evicted, err := c.evictOver(c.capBytes)
	ops.Add(evicted)
	return ops, err
}

// cachedIdleBytes reports pinned bytes held by unreferenced entries.
func (c *RegCache) cachedIdleBytes() int64 {
	var t int64
	for _, e := range c.entries {
		if e.refs == 0 {
			t += e.region.Len
		}
	}
	return t
}

// evictOver deregisters unreferenced LRU entries until idle pinned bytes are
// within limit.
func (c *RegCache) evictOver(limit int64) (RegOps, error) {
	var ops RegOps
	for c.cachedIdleBytes() > limit {
		// Find LRU unreferenced entry.
		best := -1
		for i, e := range c.entries {
			if e.refs != 0 {
				continue
			}
			if best < 0 || e.lru < c.entries[best].lru {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := c.entries[best]
		c.entries = append(c.entries[:best], c.entries[best+1:]...)
		ops.Evictions++
		ops.Dereg++
		ops.DeregPages += e.region.Pages
		if err := c.tab.Deregister(e.region); err != nil {
			return ops, err
		}
	}
	return ops, nil
}

// Flush deregisters every unreferenced cached entry.
func (c *RegCache) Flush() (RegOps, error) { return c.evictOver(0) }

// Entries reports the number of cached entries (referenced or not).
func (c *RegCache) Entries() int { return len(c.entries) }
