// Package mem models the registered memory of one simulated node.
//
// Each simulated rank owns a Memory: a flat byte-addressable address space
// with a first-fit allocator, a 4 KiB page structure, and a registration
// table that mirrors InfiniBand memory-region semantics (lkey/rkey protection,
// page pinning). RDMA operations in the ib package validate their targets
// against the registration table, so protocol code that forgets to register a
// buffer fails here just as it would on hardware.
//
// The package also provides the two registration optimizations the paper
// relies on: a pin-down cache (Tezuka et al.) for reusing registrations, and
// Optimistic Group Registration (Wu et al.) for registering a list of
// noncontiguous blocks with a cost-model-driven tradeoff between the number
// of registration operations and the total pinned size.
package mem

import (
	"fmt"
	"runtime"
	"sort"
)

// PageSize is the virtual-memory page size of the simulated nodes.
const PageSize = 4096

// Addr is an address within one node's simulated memory.
type Addr uint64

// Align returns the smallest multiple of align that is >= a.
// align must be a power of two.
func (a Addr) Align(align int) Addr {
	mask := Addr(align - 1)
	return (a + mask) &^ mask
}

// PageSpan reports how many distinct pages the byte range [addr, addr+n)
// touches. A zero-length range touches no pages.
func PageSpan(addr Addr, n int64) int64 {
	if n <= 0 {
		return 0
	}
	first := int64(addr) / PageSize
	last := (int64(addr) + n - 1) / PageSize
	return last - first + 1
}

type span struct {
	off Addr
	len int64
}

// Memory is one node's simulated address space. It is not goroutine-safe;
// the single-threaded simulation engine serializes all access.
type Memory struct {
	name   string
	data   []byte
	mapped []byte // non-nil when data is an anonymous mapping (backing_mmap.go)
	free   []span // sorted by offset, coalesced
	inUse  map[Addr]int64
	reg    *RegTable
	arena  *Arena // non-nil for shared-arena partitions; keeps the mapping alive
}

// NewMemory creates an address space of the given size in bytes. The first
// page is kept unusable so that Addr(0) can serve as a nil address. Large
// spaces are backed lazily where the platform allows: pages materialize on
// first touch, so a big world of mostly-idle arenas costs what it uses, not
// what it reserves.
func NewMemory(name string, size int64) *Memory {
	if size < 2*PageSize {
		size = 2 * PageSize
	}
	m := &Memory{
		name:  name,
		free:  []span{{off: PageSize, len: size - PageSize}},
		inUse: make(map[Addr]int64),
	}
	m.data, m.mapped = newBacking(size)
	if m.mapped != nil {
		runtime.SetFinalizer(m, func(mm *Memory) { releaseBacking(mm.mapped) })
	}
	m.reg = newRegTable(m)
	return m
}

// Name returns the label given at creation.
func (m *Memory) Name() string { return m.name }

// Size returns the total size of the address space.
func (m *Memory) Size() int64 { return int64(len(m.data)) }

// Reg returns the node's registration table.
func (m *Memory) Reg() *RegTable { return m.reg }

// Alloc allocates n bytes with 8-byte alignment.
func (m *Memory) Alloc(n int64) (Addr, error) { return m.AllocAligned(n, 8) }

// AllocPage allocates n bytes aligned to a page boundary, as the paper's
// pre-registered pack/unpack pools are.
func (m *Memory) AllocPage(n int64) (Addr, error) { return m.AllocAligned(n, PageSize) }

// AllocAligned allocates n bytes aligned to align (a power of two) using
// first-fit. It returns an error when the address space is exhausted.
func (m *Memory) AllocAligned(n int64, align int) (Addr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem %s: alloc of %d bytes", m.name, n)
	}
	if align <= 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("mem %s: alignment %d is not a power of two", m.name, align)
	}
	for i, s := range m.free {
		start := s.off.Align(align)
		pad := int64(start - s.off)
		if pad+n > s.len {
			continue
		}
		// Carve [start, start+n) out of the free span.
		rest := m.free[i+1:]
		head := m.free[:i]
		var mid []span
		if pad > 0 {
			mid = append(mid, span{off: s.off, len: pad})
		}
		if tail := s.len - pad - n; tail > 0 {
			mid = append(mid, span{off: start + Addr(n), len: tail})
		}
		newFree := make([]span, 0, len(m.free)+1)
		newFree = append(newFree, head...)
		newFree = append(newFree, mid...)
		newFree = append(newFree, rest...)
		m.free = newFree
		m.inUse[start] = n
		return start, nil
	}
	return 0, fmt.Errorf("mem %s: out of memory allocating %d bytes", m.name, n)
}

// MustAlloc allocates like Alloc and panics on failure; simulation setup code
// uses it where exhaustion indicates a configuration bug.
func (m *Memory) MustAlloc(n int64) Addr {
	a, err := m.Alloc(n)
	if err != nil {
		panic(err)
	}
	return a
}

// Free releases an allocation made by one of the Alloc functions.
func (m *Memory) Free(a Addr) error {
	n, ok := m.inUse[a]
	if !ok {
		return fmt.Errorf("mem %s: free of unallocated address %#x", m.name, a)
	}
	delete(m.inUse, a)
	// Insert and coalesce.
	i := sort.Search(len(m.free), func(i int) bool { return m.free[i].off > a })
	m.free = append(m.free, span{})
	copy(m.free[i+1:], m.free[i:])
	m.free[i] = span{off: a, len: n}
	// Coalesce with next, then previous.
	if i+1 < len(m.free) && m.free[i].off+Addr(m.free[i].len) == m.free[i+1].off {
		m.free[i].len += m.free[i+1].len
		m.free = append(m.free[:i+1], m.free[i+2:]...)
	}
	if i > 0 && m.free[i-1].off+Addr(m.free[i-1].len) == m.free[i].off {
		m.free[i-1].len += m.free[i].len
		m.free = append(m.free[:i], m.free[i+1:]...)
	}
	return nil
}

// AllocatedBytes reports the total bytes currently allocated.
func (m *Memory) AllocatedBytes() int64 {
	var t int64
	for _, n := range m.inUse {
		t += n
	}
	return t
}

// Bytes returns the byte slice backing [a, a+n). It panics on out-of-range
// access, which in the simulation indicates a protocol bug.
func (m *Memory) Bytes(a Addr, n int64) []byte {
	if a == 0 || int64(a)+n > int64(len(m.data)) || n < 0 {
		panic(fmt.Sprintf("mem %s: access [%#x,+%d) out of range", m.name, a, n))
	}
	return m.data[a : int64(a)+n : int64(a)+n]
}

// CheckRange validates [a, a+n) without returning the data.
func (m *Memory) CheckRange(a Addr, n int64) error {
	if a == 0 || n < 0 || int64(a)+n > int64(len(m.data)) {
		return fmt.Errorf("mem %s: range [%#x,+%d) out of bounds", m.name, a, n)
	}
	return nil
}
