package mem

import (
	"fmt"
	"runtime"
)

// Arena is one shared backing store partitioned into equal per-rank address
// spaces. The shared-memory fabric (internal/shmfab) uses it to model an
// intra-node communicator: every rank's Memory is a window into the same
// mapping, so an "RDMA" transfer between two ranks is literally a copy within
// one allocation — while each partition keeps its own allocator and
// registration table, preserving the lkey/rkey protection checks the
// protocols rely on.
type Arena struct {
	data    []byte
	mapped  []byte // non-nil when data is an anonymous mapping
	perPart int64
	parts   int
}

// NewArena creates a shared backing store of parts equal partitions of
// perPart bytes each. Large arenas are backed lazily where the platform
// allows, like NewMemory.
func NewArena(parts int, perPart int64) *Arena {
	if parts <= 0 {
		panic(fmt.Sprintf("mem: arena with %d partitions", parts))
	}
	if perPart < 2*PageSize {
		perPart = 2 * PageSize
	}
	a := &Arena{perPart: perPart, parts: parts}
	a.data, a.mapped = newBacking(int64(parts) * perPart)
	if a.mapped != nil {
		runtime.SetFinalizer(a, func(x *Arena) { releaseBacking(x.mapped) })
	}
	return a
}

// Parts returns the number of partitions.
func (a *Arena) Parts() int { return a.parts }

// PartSize returns the size of one partition in bytes.
func (a *Arena) PartSize() int64 { return a.perPart }

// Size returns the total size of the shared backing store.
func (a *Arena) Size() int64 { return int64(len(a.data)) }

// Partition returns partition i as a Memory with its own allocator and
// registration table. Addresses are partition-local (the first page is
// reserved so Addr 0 stays a nil address, exactly as in NewMemory), but the
// bytes live in the shared mapping. The returned Memory pins the arena: the
// backing store is released only after every partition becomes unreachable.
func (a *Arena) Partition(i int, name string) *Memory {
	if i < 0 || i >= a.parts {
		panic(fmt.Sprintf("mem: partition %d of %d", i, a.parts))
	}
	lo := int64(i) * a.perPart
	m := &Memory{
		name:  name,
		data:  a.data[lo : lo+a.perPart : lo+a.perPart],
		free:  []span{{off: PageSize, len: a.perPart - PageSize}},
		inUse: make(map[Addr]int64),
		arena: a,
	}
	m.reg = newRegTable(m)
	return m
}
