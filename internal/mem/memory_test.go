package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAllocBasic(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	a, err := m.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 {
		t.Fatal("allocated nil address")
	}
	if a%8 != 0 {
		t.Fatalf("addr %#x not 8-byte aligned", a)
	}
	b, err := m.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Fatal("duplicate allocation")
	}
	if got := m.AllocatedBytes(); got != 300 {
		t.Fatalf("AllocatedBytes = %d, want 300", got)
	}
}

func TestAllocPageAlignment(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	if _, err := m.Alloc(13); err != nil {
		t.Fatal(err)
	}
	a, err := m.AllocPage(100)
	if err != nil {
		t.Fatal(err)
	}
	if a%PageSize != 0 {
		t.Fatalf("addr %#x not page aligned", a)
	}
}

func TestAllocBadAlignment(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	if _, err := m.AllocAligned(10, 3); err == nil {
		t.Fatal("expected error for non-power-of-two alignment")
	}
	if _, err := m.Alloc(0); err == nil {
		t.Fatal("expected error for zero-size alloc")
	}
}

func TestAllocExhaustion(t *testing.T) {
	m := NewMemory("n0", 4*PageSize)
	if _, err := m.Alloc(16 * PageSize); err == nil {
		t.Fatal("expected out-of-memory")
	}
}

func TestFreeAndCoalesce(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	a, _ := m.Alloc(1000)
	b, _ := m.Alloc(1000)
	c, _ := m.Alloc(1000)
	if err := m.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(c); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(a); err == nil {
		t.Fatal("double free not detected")
	}
	// After freeing everything the space must coalesce enough to satisfy a
	// large allocation again.
	if _, err := m.Alloc(1 << 19); err != nil {
		t.Fatalf("post-free large alloc failed: %v", err)
	}
}

func TestBytesAccess(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	a, _ := m.Alloc(64)
	bs := m.Bytes(a, 64)
	for i := range bs {
		bs[i] = byte(i)
	}
	again := m.Bytes(a, 64)
	for i := range again {
		if again[i] != byte(i) {
			t.Fatalf("byte %d = %d, want %d", i, again[i], i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Bytes did not panic")
		}
	}()
	m.Bytes(Addr(m.Size()-10), 100)
}

func TestNilAddressRejected(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	if err := m.CheckRange(0, 8); err == nil {
		t.Fatal("nil address accepted")
	}
}

func TestPageSpan(t *testing.T) {
	cases := []struct {
		a    Addr
		n    int64
		want int64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, PageSize, 1},
		{0, PageSize + 1, 2},
		{PageSize - 1, 2, 2},
		{PageSize, PageSize, 1},
		{100, 3 * PageSize, 4},
	}
	for _, c := range cases {
		if got := PageSpan(c.a, c.n); got != c.want {
			t.Errorf("PageSpan(%d, %d) = %d, want %d", c.a, c.n, got, c.want)
		}
	}
}

// Property: an arbitrary interleaving of allocs and frees never hands out
// overlapping ranges, and freeing everything restores full capacity.
func TestAllocatorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemory("p", 1<<20)
		type alloc struct {
			a Addr
			n int64
		}
		var live []alloc
		overlaps := func(x alloc) bool {
			for _, y := range live {
				if x.a < y.a+Addr(y.n) && y.a < x.a+Addr(x.n) {
					return true
				}
			}
			return false
		}
		for i := 0; i < 200; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(live))
				if err := m.Free(live[k].a); err != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
				continue
			}
			n := int64(rng.Intn(5000) + 1)
			a, err := m.Alloc(n)
			if err != nil {
				continue // exhaustion is acceptable
			}
			na := alloc{a, n}
			if overlaps(na) {
				return false
			}
			live = append(live, na)
		}
		for _, x := range live {
			if err := m.Free(x.a); err != nil {
				return false
			}
		}
		// All space (minus the reserved first page) must be reusable.
		_, err := m.Alloc(1<<20 - PageSize - 64)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
