package mem

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

var testCost = RegCost{Base: 30000, PerPage: 350} // ~ the paper-era defaults

func TestGroupRegionsEmpty(t *testing.T) {
	if got := GroupRegions(nil, testCost); got != nil {
		t.Fatalf("GroupRegions(nil) = %v", got)
	}
	if got := GroupRegions([]Block{{Addr: 100, Len: 0}}, testCost); got != nil {
		t.Fatalf("zero-length blocks should vanish, got %v", got)
	}
}

func TestGroupRegionsSingle(t *testing.T) {
	got := GroupRegions([]Block{{Addr: 4096, Len: 100}}, testCost)
	if len(got) != 1 || got[0].Addr != 4096 || got[0].Len != 100 {
		t.Fatalf("got %v", got)
	}
}

func TestGroupRegionsSmallGapsMerge(t *testing.T) {
	// Vector-like layout: 16-byte blocks every 512 bytes. Gap pages are far
	// cheaper than extra registrations, so everything merges into one region.
	var blocks []Block
	for i := 0; i < 64; i++ {
		blocks = append(blocks, Block{Addr: Addr(8192 + i*512), Len: 16})
	}
	got := GroupRegions(blocks, testCost)
	if len(got) != 1 {
		t.Fatalf("expected 1 region, got %d: %v", len(got), got)
	}
	if got[0].Addr != 8192 || got[0].End() != Addr(8192+63*512+16) {
		t.Fatalf("region bounds wrong: %v", got[0])
	}
}

func TestGroupRegionsHugeGapsSplit(t *testing.T) {
	// Two blocks separated by 100 MB: pinning the gap costs far more than a
	// second registration, so they must stay separate.
	blocks := []Block{
		{Addr: 4096, Len: 1000},
		{Addr: 4096 + 100*1024*1024, Len: 1000},
	}
	got := GroupRegions(blocks, testCost)
	if len(got) != 2 {
		t.Fatalf("expected 2 regions, got %v", got)
	}
}

func TestGroupRegionsAdjacentCoalesce(t *testing.T) {
	blocks := []Block{
		{Addr: 1000, Len: 100},
		{Addr: 1100, Len: 100}, // exactly adjacent
		{Addr: 1150, Len: 200}, // overlapping
	}
	got := GroupRegions(blocks, testCost)
	if len(got) != 1 || got[0].Addr != 1000 || got[0].End() != 1350 {
		t.Fatalf("got %v", got)
	}
}

func TestGroupRegionsUnsortedInput(t *testing.T) {
	blocks := []Block{
		{Addr: 9000, Len: 10},
		{Addr: 1000, Len: 10},
		{Addr: 5000, Len: 10},
	}
	got := GroupRegions(blocks, testCost)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Addr < got[j].Addr }) {
		t.Fatalf("regions not sorted: %v", got)
	}
}

func TestGroupRegionsCostThreshold(t *testing.T) {
	// With Base = 0 any gap page is pure loss, so nothing merges across gaps
	// that add pages.
	cheap := RegCost{Base: 0, PerPage: 100}
	blocks := []Block{
		{Addr: 0 + 4096, Len: 100},
		{Addr: 3*4096 + 8, Len: 100}, // different page, gap adds pages
	}
	got := GroupRegions(blocks, cheap)
	if len(got) != 2 {
		t.Fatalf("zero-base model must not merge, got %v", got)
	}
	// With a massive Base, everything merges.
	exp := RegCost{Base: 1 << 40, PerPage: 1}
	got = GroupRegions(blocks, exp)
	if len(got) != 1 {
		t.Fatalf("huge-base model must merge, got %v", got)
	}
}

func TestCoverAll(t *testing.T) {
	blocks := []Block{
		{Addr: 5000, Len: 10},
		{Addr: 1000, Len: 20},
		{Addr: 9000, Len: 30},
	}
	got := CoverAll(blocks)
	if len(got) != 1 || got[0].Addr != 1000 || got[0].End() != 9030 {
		t.Fatalf("got %v", got)
	}
	if CoverAll(nil) != nil {
		t.Fatal("CoverAll(nil) should be nil")
	}
}

// Property: OGR output covers every input block, regions are sorted and
// disjoint, and the modeled cost never exceeds either the per-block or the
// cover-all strategies (OGR is at least as good as both endpoints it
// interpolates between).
func TestGroupRegionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		blocks := make([]Block, n)
		addr := Addr(4096)
		for i := range blocks {
			addr += Addr(rng.Intn(1 << 18))
			blocks[i] = Block{Addr: addr, Len: int64(rng.Intn(8192) + 1)}
			addr += Addr(blocks[i].Len)
		}
		rng.Shuffle(n, func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })

		cost := RegCost{Base: int64(rng.Intn(100000)), PerPage: int64(rng.Intn(1000) + 1)}
		regions := GroupRegions(blocks, cost)

		// Sorted, disjoint.
		for i := 1; i < len(regions); i++ {
			if regions[i].Addr < regions[i-1].End() {
				return false
			}
		}
		// Coverage.
		covered := func(b Block) bool {
			for _, r := range regions {
				if b.Addr >= r.Addr && b.End() <= r.End() {
					return true
				}
			}
			return false
		}
		for _, b := range blocks {
			if !covered(b) {
				return false
			}
		}
		// Cost dominance over both trivial strategies.
		ogr := TotalCost(regions, cost)
		perBlock := TotalCost(GroupRegions(blocks, RegCost{Base: 0, PerPage: 0}), cost)
		// per-block baseline: coalesce only adjacent/overlapping blocks
		all := TotalCost(CoverAll(blocks), cost)
		if ogr > perBlock || ogr > all {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionCostAndAlign(t *testing.T) {
	c := RegCost{Base: 100, PerPage: 10}
	if got := c.RegionCost(0, PageSize); got != 110 {
		t.Fatalf("one-page cost = %d", got)
	}
	if got := c.RegionCost(PageSize-1, 2); got != 120 { // straddles two pages
		t.Fatalf("straddle cost = %d", got)
	}
	if Addr(1).Align(8) != 8 || Addr(8).Align(8) != 8 || Addr(0).Align(4096) != 0 {
		t.Fatal("Align wrong")
	}
	b := Block{Addr: 100, Len: 20}
	if b.End() != 120 {
		t.Fatal("Block.End wrong")
	}
}

// TestGroupRegionsSortedMatches checks the sort-skipping fast path used for
// compiled ascending programs: on already-sorted input (including
// zero-length blocks, which both entry points must drop) it returns exactly
// what GroupRegions does, across random layouts and cost models.
func TestGroupRegionsSortedMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 500; trial++ {
		var blocks []Block
		pos := int64(4096)
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			pos += int64(rng.Intn(1 << 16))
			ln := int64(rng.Intn(4096)) // includes zero-length blocks
			blocks = append(blocks, Block{Addr: Addr(pos), Len: ln})
			pos += ln
		}
		cost := RegCost{Base: int64(1 + rng.Intn(100000)), PerPage: int64(1 + rng.Intn(1000))}
		want := GroupRegions(append([]Block(nil), blocks...), cost)
		got := GroupRegionsSorted(append([]Block(nil), blocks...), cost)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d regions, GroupRegions %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: region %d = %v, GroupRegions %v", trial, i, got[i], want[i])
			}
		}
	}
}
