//go:build linux || darwin

package mem

import "syscall"

// lazyThreshold is the arena size above which backing memory comes from an
// anonymous mapping instead of the Go heap. Heap slices are zeroed eagerly
// at allocation — a 1024-rank world of 32 MB arenas would spend tens of
// seconds clearing memory nobody ever touches — while mapped pages fault in
// zeroed on first access, so an idle rank's arena costs nothing.
const lazyThreshold = 16 << 20

// newBacking returns a zeroed address space of the given size. The second
// result is the mapping to hand back to releaseBacking when the owning
// Memory is collected, or nil when the space came from the Go heap.
func newBacking(size int64) ([]byte, []byte) {
	if size < lazyThreshold {
		return make([]byte, size), nil
	}
	b, err := syscall.Mmap(-1, 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
	if err != nil {
		// Address space pressure or a locked-down environment: fall back to
		// the eager heap slice, which is always correct.
		return make([]byte, size), nil
	}
	return b, b
}

// releaseBacking returns an anonymous mapping to the OS.
func releaseBacking(mapped []byte) {
	_ = syscall.Munmap(mapped)
}
