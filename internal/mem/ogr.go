package mem

import "sort"

// Block is one contiguous piece of a datatype message buffer.
type Block struct {
	Addr Addr
	Len  int64
}

// End returns the first address past the block.
func (b Block) End() Addr { return b.Addr + Addr(b.Len) }

// RegCost parameterizes the cost model for Optimistic Group Registration:
// registering a region costs Base + Pages*PerPage (in virtual nanoseconds).
// The absolute unit does not matter to the grouping decision, only the
// Base/PerPage ratio.
type RegCost struct {
	Base    int64
	PerPage int64
}

// RegionCost returns the modeled cost of registering [a, a+n).
func (c RegCost) RegionCost(a Addr, n int64) int64 {
	return c.Base + PageSpan(a, n)*c.PerPage
}

// GroupRegions implements Optimistic Group Registration (Wu, Wyckoff, Panda):
// given the contiguous blocks of a datatype message buffer, it returns a set
// of covering regions to register, merging neighbouring blocks across their
// gaps whenever pinning the gap pages is cheaper than paying another
// registration operation. Large gaps that would null the benefit are left as
// region boundaries.
//
// The returned regions are sorted by address, non-overlapping, and cover
// every input block. Input blocks may be unsorted; overlapping or adjacent
// blocks are coalesced first.
func GroupRegions(blocks []Block, cost RegCost) []Block {
	if len(blocks) == 0 {
		return nil
	}
	sorted := make([]Block, 0, len(blocks))
	for _, b := range blocks {
		if b.Len > 0 {
			sorted = append(sorted, b)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Addr < sorted[j].Addr })
	return groupSorted(sorted, cost)
}

// GroupRegionsSorted is GroupRegions for blocks already in non-decreasing
// address order, skipping the sort. Compiled layout programs know their
// emission order (Program.Ascending), which makes this the grouping entry
// for program-fed registration. Zero-length blocks are dropped; passing
// unsorted blocks is a contract violation (the result would under-merge).
func GroupRegionsSorted(blocks []Block, cost RegCost) []Block {
	sorted := make([]Block, 0, len(blocks))
	for _, b := range blocks {
		if b.Len > 0 {
			sorted = append(sorted, b)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	return groupSorted(sorted, cost)
}

// groupSorted merges address-sorted positive-length blocks under the OGR
// gap-versus-registration trade.
func groupSorted(sorted []Block, cost RegCost) []Block {
	regions := make([]Block, 0, len(sorted))
	cur := sorted[0]
	for _, b := range sorted[1:] {
		if b.Addr <= cur.End() {
			// Overlapping or adjacent: coalesce unconditionally.
			if b.End() > cur.End() {
				cur.Len = int64(b.End() - cur.Addr)
			}
			continue
		}
		// Candidate merge across the gap. Compare the extra pages the
		// merged region pins against the cost of a separate region.
		mergedLen := int64(b.End() - cur.Addr)
		extraPages := PageSpan(cur.Addr, mergedLen) - PageSpan(cur.Addr, cur.Len)
		mergeCost := extraPages * cost.PerPage
		separateCost := cost.RegionCost(b.Addr, b.Len)
		if mergeCost < separateCost {
			cur.Len = mergedLen
			continue
		}
		regions = append(regions, cur)
		cur = b
	}
	regions = append(regions, cur)
	return regions
}

// TotalCost returns the modeled registration cost of a region set.
func TotalCost(regions []Block, cost RegCost) int64 {
	var t int64
	for _, r := range regions {
		t += cost.RegionCost(r.Addr, r.Len)
	}
	return t
}

// CoverAll returns the single region spanning from the first block to the
// last — the paper's "register the whole buffer including gaps" strategy,
// used as a comparison point in ablation benchmarks.
func CoverAll(blocks []Block) []Block {
	if len(blocks) == 0 {
		return nil
	}
	lo, hi := blocks[0].Addr, blocks[0].End()
	for _, b := range blocks[1:] {
		if b.Addr < lo {
			lo = b.Addr
		}
		if b.End() > hi {
			hi = b.End()
		}
	}
	return []Block{{Addr: lo, Len: int64(hi - lo)}}
}
