//go:build !linux && !darwin

package mem

// newBacking returns a zeroed address space of the given size from the Go
// heap; platforms without the anonymous-mapping fast path pay eager zeroing.
func newBacking(size int64) ([]byte, []byte) {
	return make([]byte, size), nil
}

// releaseBacking is a no-op for heap-backed address spaces.
func releaseBacking([]byte) {}
