package mem

import "testing"

func TestRegisterAndCheckAccess(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	a, _ := m.Alloc(10000)
	r, err := m.Reg().Register(a, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Valid() {
		t.Fatal("fresh region invalid")
	}
	if r.Pages != PageSpan(a, 10000) {
		t.Fatalf("Pages = %d, want %d", r.Pages, PageSpan(a, 10000))
	}
	if err := m.Reg().CheckAccess(r.RKey, a, 10000); err != nil {
		t.Fatal(err)
	}
	if err := m.Reg().CheckAccess(r.RKey, a+100, 500); err != nil {
		t.Fatal(err)
	}
	if err := m.Reg().CheckAccess(r.RKey, a, 10001); err == nil {
		t.Fatal("access past region accepted")
	}
	if err := m.Reg().CheckAccess(r.RKey+99, a, 8); err == nil {
		t.Fatal("bogus key accepted")
	}
}

func TestDeregister(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	a, _ := m.Alloc(4096)
	r, _ := m.Reg().Register(a, 4096)
	if m.Reg().PinnedBytes != 4096 {
		t.Fatalf("PinnedBytes = %d", m.Reg().PinnedBytes)
	}
	if err := m.Reg().Deregister(r); err != nil {
		t.Fatal(err)
	}
	if m.Reg().PinnedBytes != 0 {
		t.Fatalf("PinnedBytes after dereg = %d", m.Reg().PinnedBytes)
	}
	if err := m.Reg().CheckAccess(r.RKey, a, 8); err == nil {
		t.Fatal("access through deregistered key accepted")
	}
	if err := m.Reg().Deregister(r); err == nil {
		t.Fatal("double deregister accepted")
	}
}

func TestRegisterOutOfRange(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	if _, err := m.Reg().Register(Addr(m.Size()-8), 64); err == nil {
		t.Fatal("out-of-range registration accepted")
	}
	if _, err := m.Reg().Register(0, 64); err == nil {
		t.Fatal("nil-address registration accepted")
	}
	a, _ := m.Alloc(64)
	if _, err := m.Reg().Register(a, 0); err == nil {
		t.Fatal("empty registration accepted")
	}
}

func TestCovered(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	a, _ := m.Alloc(8192)
	if m.Reg().Covered(a, 100) {
		t.Fatal("unregistered range reported covered")
	}
	r, _ := m.Reg().Register(a, 8192)
	if !m.Reg().Covered(a+10, 100) {
		t.Fatal("registered range not covered")
	}
	m.Reg().Deregister(r)
	if m.Reg().Covered(a+10, 100) {
		t.Fatal("coverage survived deregistration")
	}
}

func TestRegCacheHitAndMiss(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	c := NewRegCache(m.Reg(), 1<<19, true)
	a, _ := m.Alloc(10000)

	r1, ops, err := c.Acquire(a, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if ops.Misses != 1 || ops.Registrations != 1 {
		t.Fatalf("first acquire ops = %+v", ops)
	}
	// Sub-range hit while referenced.
	r2, ops, err := c.Acquire(a+1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if ops.Hits != 1 || ops.Registrations != 0 {
		t.Fatalf("hit acquire ops = %+v", ops)
	}
	if r2 != r1 {
		t.Fatal("hit returned a different region")
	}
	if ops, err := c.Release(r2); err != nil || ops.Dereg != 0 {
		t.Fatalf("release: %v ops=%+v", err, ops)
	}
	if ops, err := c.Release(r1); err != nil || ops.Dereg != 0 {
		t.Fatalf("release kept entry should not dereg: %v ops=%+v", err, ops)
	}
	// Released entry still usable: hit again.
	_, ops, err = c.Acquire(a, 10000)
	if err != nil || ops.Hits != 1 {
		t.Fatalf("post-release acquire: %v ops=%+v", err, ops)
	}
}

func TestRegCacheDisabled(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	c := NewRegCache(m.Reg(), 1<<19, false)
	a, _ := m.Alloc(10000)
	r, ops, err := c.Acquire(a, 10000)
	if err != nil || ops.Registrations != 1 {
		t.Fatalf("acquire: %v ops=%+v", err, ops)
	}
	ops, err = c.Release(r)
	if err != nil {
		t.Fatal(err)
	}
	if ops.Dereg != 1 {
		t.Fatalf("disabled cache must dereg on release, ops=%+v", ops)
	}
	if m.Reg().RegionCount() != 0 {
		t.Fatal("region leaked")
	}
}

func TestRegCacheEviction(t *testing.T) {
	m := NewMemory("n0", 1<<22)
	c := NewRegCache(m.Reg(), 3*PageSize, true) // tiny capacity
	var regions []*Region
	var addrs []Addr
	for i := 0; i < 4; i++ {
		a, _ := m.AllocPage(2 * PageSize)
		addrs = append(addrs, a)
		r, _, err := c.Acquire(a, 2*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	// While referenced, nothing can be evicted.
	if m.Reg().RegionCount() != 4 {
		t.Fatalf("RegionCount = %d, want 4", m.Reg().RegionCount())
	}
	var totalEvict int64
	for _, r := range regions {
		ops, err := c.Release(r)
		if err != nil {
			t.Fatal(err)
		}
		totalEvict += ops.Evictions
	}
	// Idle pinned bytes must now be within capacity (<= 3 pages => at most
	// one 2-page entry cached).
	if got := c.cachedIdleBytes(); got > 3*PageSize {
		t.Fatalf("idle pinned bytes %d exceed capacity", got)
	}
	if totalEvict == 0 {
		t.Fatal("expected at least one eviction")
	}
	// The survivor should be the most recently used (the last released).
	_, ops, err := c.Acquire(addrs[3], PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if ops.Hits != 1 {
		t.Fatalf("expected MRU survivor hit, ops = %+v", ops)
	}
}

func TestRegCacheFlush(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	c := NewRegCache(m.Reg(), 1<<19, true)
	a, _ := m.Alloc(4096)
	r, _, _ := c.Acquire(a, 4096)
	c.Release(r)
	ops, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if ops.Dereg != 1 || c.Entries() != 0 || m.Reg().RegionCount() != 0 {
		t.Fatalf("flush incomplete: ops=%+v entries=%d regions=%d",
			ops, c.Entries(), m.Reg().RegionCount())
	}
}

func TestRegCacheOverRelease(t *testing.T) {
	m := NewMemory("n0", 1<<20)
	c := NewRegCache(m.Reg(), 1<<19, true)
	a, _ := m.Alloc(4096)
	r, _, _ := c.Acquire(a, 4096)
	if _, err := c.Release(r); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Release(r); err == nil {
		t.Fatal("over-release accepted")
	}
}
