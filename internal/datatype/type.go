// Package datatype implements MPI derived datatypes: constructors mirroring
// the MPI type-creation calls, size/extent semantics, a normalized dataloop
// representation (after Ross, Miller & Gropp), a stack-based cursor for
// partial pack/unpack processing (after Träff's flattening-on-the-fly), full
// flattening with adjacent-block coalescing, layout statistics used by the
// scheme-selection heuristics, and a compact wire codec for shipping a
// receiver's layout to a sender (the Multi-W scheme's datatype exchange).
package datatype

import (
	"errors"
	"fmt"
)

// Kind discriminates the datatype constructors.
type Kind int

// Datatype kinds.
const (
	KindBase Kind = iota
	KindContiguous
	KindVector   // element-stride vector (MPI_Type_vector)
	KindHvector  // byte-stride vector (MPI_Type_create_hvector)
	KindIndexed  // element displacements (MPI_Type_indexed)
	KindHindexed // byte displacements (MPI_Type_create_hindexed)
	KindStruct   // byte displacements + per-block types (MPI_Type_create_struct)
	KindResized  // MPI_Type_create_resized
)

func (k Kind) String() string {
	switch k {
	case KindBase:
		return "base"
	case KindContiguous:
		return "contiguous"
	case KindVector:
		return "vector"
	case KindHvector:
		return "hvector"
	case KindIndexed:
		return "indexed"
	case KindHindexed:
		return "hindexed"
	case KindStruct:
		return "struct"
	case KindResized:
		return "resized"
	}
	return "unknown"
}

// Type is an immutable MPI datatype. Construct one with the Type* functions;
// the zero value is not valid.
type Type struct {
	kind   Kind
	name   string
	size   int64 // bytes of actual data per instance
	lb, ub int64 // lower bound and upper bound; extent = ub - lb
	trueLB int64 // first byte of actual data
	trueUB int64 // one past the last byte of actual data

	loop    *loop // normalized dataloop (traversal form)
	nblocks int64 // contiguous blocks per instance
}

// Predefined base types, mirroring the MPI named types used in the paper's
// benchmarks.
var (
	Byte    = base("MPI_BYTE", 1)
	Char    = base("MPI_CHAR", 1)
	Int32   = base("MPI_INT", 4)
	Int64   = base("MPI_LONG_LONG", 8)
	Float32 = base("MPI_FLOAT", 4)
	Float64 = base("MPI_DOUBLE", 8)
)

func base(name string, size int64) *Type {
	lp := &loop{kind: loopContig, bytes: size, dataBytes: size, blocks: 1}
	return &Type{
		kind: KindBase, name: name,
		size: size, lb: 0, ub: size, trueLB: 0, trueUB: size,
		loop: lp, nblocks: 1,
	}
}

// Kind returns the constructor kind.
func (t *Type) Kind() Kind { return t.kind }

// Size returns the number of bytes of actual data in one instance.
func (t *Type) Size() int64 { return t.size }

// Extent returns ub - lb, the stride between consecutive instances.
func (t *Type) Extent() int64 { return t.ub - t.lb }

// LB returns the lower bound.
func (t *Type) LB() int64 { return t.lb }

// UB returns the upper bound.
func (t *Type) UB() int64 { return t.ub }

// TrueLB returns the offset of the first actual data byte.
func (t *Type) TrueLB() int64 { return t.trueLB }

// TrueExtent returns the span of actual data bytes.
func (t *Type) TrueExtent() int64 { return t.trueUB - t.trueLB }

// Blocks returns the number of contiguous blocks in one instance after
// dataloop normalization (adjacent pieces coalesce).
func (t *Type) Blocks() int64 { return t.nblocks }

// Contig reports whether one instance is a single contiguous block whose
// size equals its extent (so count>1 instances are also contiguous).
func (t *Type) Contig() bool {
	return t.loop.kind == loopContig && t.size == t.Extent() && t.lb == 0
}

// Density returns size/trueExtent: the fraction of touched address space
// that is actual data. 1.0 means fully dense.
func (t *Type) Density() float64 {
	te := t.TrueExtent()
	if te <= 0 {
		return 1
	}
	return float64(t.size) / float64(te)
}

func (t *Type) String() string {
	if t.kind == KindBase {
		return t.name
	}
	return fmt.Sprintf("%s(size=%d extent=%d blocks=%d)", t.kind, t.size, t.Extent(), t.nblocks)
}

var errNilType = errors.New("datatype: nil element type")

// TypeContiguous mirrors MPI_Type_contiguous: count consecutive olds.
func TypeContiguous(count int, old *Type) (*Type, error) {
	if old == nil {
		return nil, errNilType
	}
	if count < 0 {
		return nil, fmt.Errorf("datatype: contiguous count %d < 0", count)
	}
	return TypeVector(count, 1, 1, old)
}

// TypeVector mirrors MPI_Type_vector: count blocks of blocklen olds, the
// start of each block separated by stride old-extents.
func TypeVector(count, blocklen, stride int, old *Type) (*Type, error) {
	if old == nil {
		return nil, errNilType
	}
	return TypeHvector(count, blocklen, int64(stride)*old.Extent(), old)
}

// TypeHvector mirrors MPI_Type_create_hvector: stride is in bytes.
func TypeHvector(count, blocklen int, strideBytes int64, old *Type) (*Type, error) {
	if old == nil {
		return nil, errNilType
	}
	if count < 0 || blocklen < 0 {
		return nil, fmt.Errorf("datatype: hvector count=%d blocklen=%d", count, blocklen)
	}
	displs := make([]int64, count)
	blocklens := make([]int, count)
	for i := range displs {
		displs[i] = int64(i) * strideBytes
		blocklens[i] = blocklen
	}
	t, err := buildIndexed(KindHvector, blocklens, displs, old)
	if err != nil {
		return nil, err
	}
	// Replace the generic indexed loop with a vector loop for compactness.
	t.loop = vectorLoop(count, strideBytes, blocklen, old)
	t.nblocks = t.loop.blocks
	return t, nil
}

// TypeIndexed mirrors MPI_Type_indexed: displacements in old extents.
func TypeIndexed(blocklens []int, displs []int, old *Type) (*Type, error) {
	if old == nil {
		return nil, errNilType
	}
	if len(blocklens) != len(displs) {
		return nil, fmt.Errorf("datatype: indexed lens %d != displs %d", len(blocklens), len(displs))
	}
	bd := make([]int64, len(displs))
	for i, d := range displs {
		bd[i] = int64(d) * old.Extent()
	}
	return buildIndexed(KindIndexed, blocklens, bd, old)
}

// TypeHindexed mirrors MPI_Type_create_hindexed: displacements in bytes.
func TypeHindexed(blocklens []int, displs []int64, old *Type) (*Type, error) {
	if old == nil {
		return nil, errNilType
	}
	if len(blocklens) != len(displs) {
		return nil, fmt.Errorf("datatype: hindexed lens %d != displs %d", len(blocklens), len(displs))
	}
	return buildIndexed(KindHindexed, blocklens, append([]int64(nil), displs...), old)
}

// TypeIndexedBlock mirrors MPI_Type_create_indexed_block: constant blocklen.
func TypeIndexedBlock(blocklen int, displs []int, old *Type) (*Type, error) {
	lens := make([]int, len(displs))
	for i := range lens {
		lens[i] = blocklen
	}
	return TypeIndexed(lens, displs, old)
}

// TypeStruct mirrors MPI_Type_create_struct: per-block types and byte
// displacements.
func TypeStruct(blocklens []int, displs []int64, types []*Type) (*Type, error) {
	n := len(blocklens)
	if len(displs) != n || len(types) != n {
		return nil, fmt.Errorf("datatype: struct arrays disagree: %d/%d/%d",
			len(blocklens), len(displs), len(types))
	}
	if n == 0 {
		return nil, errors.New("datatype: empty struct")
	}
	var size int64
	first := true
	var lb, ub, tlb, tub int64
	blocks := make([]loopBlock, 0, n)
	for i := 0; i < n; i++ {
		old := types[i]
		if old == nil {
			return nil, errNilType
		}
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("datatype: struct blocklen %d < 0", blocklens[i])
		}
		if blocklens[i] == 0 {
			continue
		}
		bl := int64(blocklens[i])
		size += bl * old.size
		lo := displs[i] + old.lb
		hi := displs[i] + (bl-1)*old.Extent() + old.ub
		tlo := displs[i] + old.trueLB
		thi := displs[i] + (bl-1)*old.Extent() + old.trueUB
		if first {
			lb, ub, tlb, tub = lo, hi, tlo, thi
			first = false
		} else {
			lb = min64(lb, lo)
			ub = max64(ub, hi)
			tlb = min64(tlb, tlo)
			tub = max64(tub, thi)
		}
		child := vectorLoop(1, 0, blocklens[i], old)
		blocks = append(blocks, loopBlock{off: displs[i], child: child})
	}
	if first {
		// All blocks empty.
		return &Type{kind: KindStruct, size: 0, loop: emptyLoop(), nblocks: 0}, nil
	}
	lp := indexedLoop(blocks)
	return &Type{
		kind: KindStruct, size: size,
		lb: lb, ub: ub, trueLB: tlb, trueUB: tub,
		loop: lp, nblocks: lp.blocks,
	}, nil
}

// TypeResized mirrors MPI_Type_create_resized: overrides lb and extent
// without changing the data layout.
func TypeResized(old *Type, lb, extent int64) (*Type, error) {
	if old == nil {
		return nil, errNilType
	}
	t := *old
	t.kind = KindResized
	t.lb = lb
	t.ub = lb + extent
	return &t, nil
}

// buildIndexed constructs hindexed-style types (shared by indexed/hindexed).
func buildIndexed(kind Kind, blocklens []int, displs []int64, old *Type) (*Type, error) {
	var size int64
	first := true
	var lb, ub, tlb, tub int64
	blocks := make([]loopBlock, 0, len(blocklens))
	for i := range blocklens {
		if blocklens[i] < 0 {
			return nil, fmt.Errorf("datatype: blocklen %d < 0", blocklens[i])
		}
		if blocklens[i] == 0 {
			continue
		}
		bl := int64(blocklens[i])
		size += bl * old.size
		lo := displs[i] + old.lb
		hi := displs[i] + (bl-1)*old.Extent() + old.ub
		tlo := displs[i] + old.trueLB
		thi := displs[i] + (bl-1)*old.Extent() + old.trueUB
		if first {
			lb, ub, tlb, tub = lo, hi, tlo, thi
			first = false
		} else {
			lb = min64(lb, lo)
			ub = max64(ub, hi)
			tlb = min64(tlb, tlo)
			tub = max64(tub, thi)
		}
		blocks = append(blocks, loopBlock{off: displs[i], child: vectorLoop(1, 0, blocklens[i], old)})
	}
	if first {
		return &Type{kind: kind, size: 0, loop: emptyLoop(), nblocks: 0}, nil
	}
	lp := indexedLoop(blocks)
	return &Type{
		kind: kind, size: size,
		lb: lb, ub: ub, trueLB: tlb, trueUB: tub,
		loop: lp, nblocks: lp.blocks,
	}, nil
}

// Must panics if err is non-nil; intended for static type construction in
// tests and examples.
func Must(t *Type, err error) *Type {
	if err != nil {
		panic(err)
	}
	return t
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Tree renders the type's normalized dataloop as an indented tree, the form
// the traversal machinery actually walks. Intended for inspection tools.
func (t *Type) Tree() string {
	var b []byte
	b = append(b, fmt.Sprintf("%s size=%d extent=%d lb=%d\n", t.kind, t.size, t.Extent(), t.lb)...)
	t.loop.treeString("  ", &b)
	return string(b)
}

// Equal reports whether two types have identical layout semantics: the same
// size, bounds and normalized dataloop. Types that Equal pack, unpack and
// flatten identically (the constructor path taken to build them does not
// matter).
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.size != b.size || a.lb != b.lb || a.ub != b.ub ||
		a.trueLB != b.trueLB || a.trueUB != b.trueUB {
		return false
	}
	return loopEqual(a.loop, b.loop)
}

func loopEqual(x, y *loop) bool {
	if x.kind != y.kind {
		return false
	}
	switch x.kind {
	case loopContig:
		return x.bytes == y.bytes
	case loopVector:
		return x.count == y.count && x.stride == y.stride && loopEqual(x.child, y.child)
	case loopIndexed:
		if len(x.parts) != len(y.parts) {
			return false
		}
		for i := range x.parts {
			if x.parts[i].off != y.parts[i].off || !loopEqual(x.parts[i].child, y.parts[i].child) {
				return false
			}
		}
		return true
	}
	return false
}
