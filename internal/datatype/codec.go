package datatype

import (
	"encoding/binary"
	"fmt"
)

// The wire codec ships a datatype's layout between ranks, as the Multi-W
// scheme requires (the receiver's datatype has only local semantics, so its
// flattened form travels with the rendezvous reply). The dataloop form is
// shipped rather than a fully flattened <offset,length> list: a vector of a
// million blocks encodes in a handful of bytes, which is the "light-weight
// representation" the paper cites from Träff and Ross et al.

const (
	wireContig  = 0
	wireVector  = 1
	wireIndexed = 2

	// maxWireDepth bounds decoder recursion against corrupt input.
	maxWireDepth = 64
	// maxWireParts bounds indexed fan-out against corrupt input.
	maxWireParts = 1 << 22
)

// Encode serializes the type's layout. Decode reconstructs an equivalent
// Type (same size, extent, bounds and traversal; kind becomes KindHindexed
// as the constructor identity does not survive the wire).
func Encode(t *Type) []byte {
	buf := make([]byte, 0, 64)
	buf = binary.AppendVarint(buf, t.size)
	buf = binary.AppendVarint(buf, t.lb)
	buf = binary.AppendVarint(buf, t.ub)
	buf = binary.AppendVarint(buf, t.trueLB)
	buf = binary.AppendVarint(buf, t.trueUB)
	return appendLoop(buf, t.loop)
}

func appendLoop(buf []byte, lp *loop) []byte {
	switch lp.kind {
	case loopContig:
		buf = append(buf, wireContig)
		buf = binary.AppendVarint(buf, lp.bytes)
	case loopVector:
		buf = append(buf, wireVector)
		buf = binary.AppendUvarint(buf, uint64(lp.count))
		buf = binary.AppendVarint(buf, lp.stride)
		buf = appendLoop(buf, lp.child)
	case loopIndexed:
		buf = append(buf, wireIndexed)
		buf = binary.AppendUvarint(buf, uint64(len(lp.parts)))
		for _, p := range lp.parts {
			buf = binary.AppendVarint(buf, p.off)
			buf = appendLoop(buf, p.child)
		}
	}
	return buf
}

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("datatype: truncated varint at %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("datatype: truncated uvarint at %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("datatype: truncated tag at %d", d.pos)
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

// Decode reconstructs a Type from Encode's output.
func Decode(data []byte) (*Type, error) {
	d := &decoder{buf: data}
	size, err := d.varint()
	if err != nil {
		return nil, err
	}
	lb, err := d.varint()
	if err != nil {
		return nil, err
	}
	ub, err := d.varint()
	if err != nil {
		return nil, err
	}
	tlb, err := d.varint()
	if err != nil {
		return nil, err
	}
	tub, err := d.varint()
	if err != nil {
		return nil, err
	}
	lp, err := d.loop(0)
	if err != nil {
		return nil, err
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("datatype: %d trailing bytes", len(data)-d.pos)
	}
	if lp.dataBytes != size {
		return nil, fmt.Errorf("datatype: loop bytes %d != declared size %d", lp.dataBytes, size)
	}
	return &Type{
		kind: KindHindexed, name: "decoded",
		size: size, lb: lb, ub: ub, trueLB: tlb, trueUB: tub,
		loop: lp, nblocks: lp.blocks,
	}, nil
}

func (d *decoder) loop(depth int) (*loop, error) {
	if depth > maxWireDepth {
		return nil, fmt.Errorf("datatype: loop nesting exceeds %d", maxWireDepth)
	}
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case wireContig:
		bytes, err := d.varint()
		if err != nil {
			return nil, err
		}
		if bytes < 0 {
			return nil, fmt.Errorf("datatype: negative contig length %d", bytes)
		}
		return contigLoop(bytes), nil
	case wireVector:
		count, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if count == 0 || count > maxWireParts {
			return nil, fmt.Errorf("datatype: bad vector count %d", count)
		}
		stride, err := d.varint()
		if err != nil {
			return nil, err
		}
		child, err := d.loop(depth + 1)
		if err != nil {
			return nil, err
		}
		return &loop{
			kind: loopVector, count: int(count), stride: stride, child: child,
			dataBytes: int64(count) * child.dataBytes,
			blocks:    int64(count) * child.blocks,
		}, nil
	case wireIndexed:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n == 0 || n > maxWireParts {
			return nil, fmt.Errorf("datatype: bad indexed part count %d", n)
		}
		lp := &loop{kind: loopIndexed, parts: make([]loopBlock, 0, n)}
		for i := uint64(0); i < n; i++ {
			off, err := d.varint()
			if err != nil {
				return nil, err
			}
			child, err := d.loop(depth + 1)
			if err != nil {
				return nil, err
			}
			lp.parts = append(lp.parts, loopBlock{off: off, child: child})
			lp.dataBytes += child.dataBytes
			lp.blocks += child.blocks
		}
		return lp, nil
	default:
		return nil, fmt.Errorf("datatype: unknown loop tag %d", tag)
	}
}
