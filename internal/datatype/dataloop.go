package datatype

import "fmt"

// The dataloop is the normalized traversal form of a datatype, after Ross,
// Miller & Gropp's reusable datatype-processing component for MPICH2. It has
// three node kinds — a contiguous run, a counted strided loop, and an
// offset-indexed list — and is built once at type construction, with
// contiguity folded away: a vector whose stride equals its block span
// becomes a single contiguous run, a block of contiguous children becomes
// one run, and adjacent indexed parts merge.

type loopKind int

const (
	loopContig loopKind = iota
	loopVector
	loopIndexed
)

// loopBlock is one displaced child of an indexed loop.
type loopBlock struct {
	off   int64
	child *loop
}

type loop struct {
	kind loopKind

	// loopContig
	bytes int64

	// loopVector
	count  int
	stride int64
	child  *loop

	// loopIndexed
	parts []loopBlock

	// Derived totals for one traversal.
	dataBytes int64
	blocks    int64 // contiguous runs emitted per traversal (upper bound:
	// cross-iteration adjacency is coalesced by the cursor, not here)
}

func emptyLoop() *loop {
	return &loop{kind: loopContig, bytes: 0, dataBytes: 0, blocks: 0}
}

func contigLoop(bytes int64) *loop {
	if bytes <= 0 {
		return emptyLoop()
	}
	return &loop{kind: loopContig, bytes: bytes, dataBytes: bytes, blocks: 1}
}

// typeContigFull reports whether one instance of old is a single run whose
// size equals its extent starting at its origin, so consecutive instances
// at extent stride form one larger run.
func typeContigFull(old *Type) bool {
	return old.loop.kind == loopContig && old.loop.bytes == old.Extent() && old.lb == 0
}

// blockLoop returns the loop for blocklen consecutive instances of old
// (each at old.Extent() stride from the previous).
func blockLoop(blocklen int, old *Type) *loop {
	if blocklen <= 0 || old.size == 0 {
		return emptyLoop()
	}
	if typeContigFull(old) {
		return contigLoop(int64(blocklen) * old.size)
	}
	if blocklen == 1 {
		return old.loop
	}
	child := old.loop
	lp := &loop{
		kind: loopVector, count: blocklen, stride: old.Extent(), child: child,
		dataBytes: int64(blocklen) * child.dataBytes,
		blocks:    int64(blocklen) * child.blocks,
	}
	return lp
}

// vectorLoop returns the loop for count blocks of blocklen olds with the
// given byte stride between block starts.
func vectorLoop(count int, strideBytes int64, blocklen int, old *Type) *loop {
	inner := blockLoop(blocklen, old)
	if count <= 0 || inner.dataBytes == 0 {
		return emptyLoop()
	}
	if count == 1 {
		return inner
	}
	// Consecutive blocks that touch coalesce into one contiguous run.
	if inner.kind == loopContig && strideBytes == inner.bytes {
		return contigLoop(int64(count) * inner.bytes)
	}
	return &loop{
		kind: loopVector, count: count, stride: strideBytes, child: inner,
		dataBytes: int64(count) * inner.dataBytes,
		blocks:    int64(count) * inner.blocks,
	}
}

// indexedLoop builds an indexed loop from displaced children, merging
// adjacent contiguous parts and unwrapping the trivial single-part case.
func indexedLoop(parts []loopBlock) *loop {
	merged := make([]loopBlock, 0, len(parts))
	for _, p := range parts {
		if p.child.dataBytes == 0 {
			continue
		}
		if n := len(merged); n > 0 {
			last := &merged[n-1]
			if last.child.kind == loopContig && p.child.kind == loopContig &&
				last.off+last.child.bytes == p.off {
				last.child = contigLoop(last.child.bytes + p.child.bytes)
				continue
			}
		}
		merged = append(merged, p)
	}
	if len(merged) == 0 {
		return emptyLoop()
	}
	if len(merged) == 1 && merged[0].off == 0 {
		return merged[0].child
	}
	lp := &loop{kind: loopIndexed, parts: merged}
	for _, p := range merged {
		lp.dataBytes += p.child.dataBytes
		lp.blocks += p.child.blocks
	}
	return lp
}

// messageLoop returns the loop for count instances of t, consecutive
// instances separated by t's extent — the layout of an MPI (buf, count,
// datatype) triple.
func messageLoop(t *Type, count int) *loop {
	if count <= 0 || t.size == 0 {
		return emptyLoop()
	}
	if count == 1 {
		return t.loop
	}
	if typeContigFull(t) {
		return contigLoop(int64(count) * t.size)
	}
	return &loop{
		kind: loopVector, count: count, stride: t.Extent(), child: t.loop,
		dataBytes: int64(count) * t.loop.dataBytes,
		blocks:    int64(count) * t.loop.blocks,
	}
}

// loopDepth reports the nesting depth (for codec sanity limits).
func loopDepth(lp *loop) int {
	switch lp.kind {
	case loopContig:
		return 1
	case loopVector:
		return 1 + loopDepth(lp.child)
	case loopIndexed:
		d := 0
		for _, p := range lp.parts {
			if c := loopDepth(p.child); c > d {
				d = c
			}
		}
		return 1 + d
	}
	return 1
}

// treeString renders the dataloop as an indented tree (dtinspect's view).
func (lp *loop) treeString(indent string, b *[]byte) {
	switch lp.kind {
	case loopContig:
		*b = append(*b, fmt.Sprintf("%scontig %d bytes\n", indent, lp.bytes)...)
	case loopVector:
		*b = append(*b, fmt.Sprintf("%svector count=%d stride=%d\n", indent, lp.count, lp.stride)...)
		lp.child.treeString(indent+"  ", b)
	case loopIndexed:
		*b = append(*b, fmt.Sprintf("%sindexed parts=%d\n", indent, len(lp.parts))...)
		for _, p := range lp.parts {
			*b = append(*b, fmt.Sprintf("%s  @%d:\n", indent, p.off)...)
			p.child.treeString(indent+"    ", b)
		}
	}
}
