package datatype

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCursorWholeMessage(t *testing.T) {
	v := Must(TypeVector(3, 2, 5, Int32))
	c := NewCursor(v, 1)
	if c.Remaining() != 24 {
		t.Fatalf("remaining = %d", c.Remaining())
	}
	var got []Block
	for {
		off, n, ok := c.Next(1 << 30)
		if !ok {
			break
		}
		got = append(got, Block{off, n})
	}
	want := []Block{{0, 8}, {20, 8}, {40, 8}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if !c.Done() {
		t.Fatal("cursor not done")
	}
}

func TestCursorPartialWithinRun(t *testing.T) {
	ct := Must(TypeContiguous(100, Int32)) // one 400-byte run
	c := NewCursor(ct, 1)
	var total int64
	var prevEnd int64
	for i := 0; ; i++ {
		off, n, ok := c.Next(64)
		if !ok {
			break
		}
		if i > 0 && off != prevEnd {
			t.Fatalf("partial pieces not consecutive: off=%d prevEnd=%d", off, prevEnd)
		}
		if n > 64 {
			t.Fatalf("piece longer than max: %d", n)
		}
		prevEnd = off + n
		total += n
	}
	if total != 400 {
		t.Fatalf("total = %d", total)
	}
}

func TestCursorCountInstances(t *testing.T) {
	v := Must(TypeVector(2, 1, 3, Int32)) // extent 16, two 4-byte runs at 0, 12
	// The run at 12 abuts the next instance's run at 16 (and 28 abuts 32),
	// so the cursor emits maximal coalesced runs.
	blocks, _ := Flatten(v, 3, 0)
	want := []Block{{0, 4}, {12, 8}, {28, 8}, {44, 4}}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", blocks, want)
		}
	}
}

func TestCursorCrossInstanceCoalesce(t *testing.T) {
	// A type whose data fills its whole extent: consecutive message
	// instances must coalesce into a single run at the cursor level.
	ct := Must(TypeContiguous(4, Int32))
	blocks, _ := Flatten(ct, 5, 0)
	if len(blocks) != 1 || blocks[0] != (Block{0, 80}) {
		t.Fatalf("blocks = %v, want one 80-byte run", blocks)
	}
}

func TestCursorCrossIterationCoalesce(t *testing.T) {
	// Vector whose last block of instance i abuts the first block of
	// instance i+1 via the resized extent.
	v := Must(TypeVector(2, 2, 4, Int32)) // runs at [0,8) [16,24), extent 24... data ends at 24
	// second instance starts at extent 24: runs [24,32) [40,48): run [16,24)+[24,32) coalesce
	blocks, _ := Flatten(v, 2, 0)
	want := []Block{{0, 8}, {16, 16}, {40, 8}}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v, want %v", blocks, want)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", blocks, want)
		}
	}
}

func TestCursorEmpty(t *testing.T) {
	v := Must(TypeVector(0, 2, 5, Int32))
	c := NewCursor(v, 1)
	if !c.Done() {
		t.Fatal("empty type cursor not done")
	}
	if _, _, ok := c.Next(100); ok {
		t.Fatal("empty cursor produced a run")
	}
	c2 := NewCursor(Int32, 0)
	if !c2.Done() {
		t.Fatal("count=0 cursor not done")
	}
}

func TestCursorNextPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Next(0) did not panic")
		}
	}()
	NewCursor(Int32, 1).Next(0)
}

func TestLayoutStats(t *testing.T) {
	v := Must(TypeVector(128, 2, 4096, Int32))
	s := LayoutStats(v, 1, 0)
	if s.Runs != 128 || s.Bytes != 1024 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinRun != 8 || s.MaxRun != 8 || s.MedianRun != 8 || s.AvgRun != 8 {
		t.Fatalf("stats = %+v", s)
	}
	// Struct with mixed sizes.
	st := Must(TypeStruct([]int{1, 4}, []int64{0, 8}, []*Type{Int32, Int32}))
	s2 := LayoutStats(st, 1, 0)
	if s2.Runs != 2 || s2.MinRun != 4 || s2.MaxRun != 16 || s2.MedianRun != 16 {
		t.Fatalf("stats = %+v", s2)
	}
}

func TestFlattenLimit(t *testing.T) {
	v := Must(TypeVector(1000, 1, 2, Int32))
	blocks, trunc := Flatten(v, 1, 10)
	if len(blocks) != 10 || !trunc {
		t.Fatalf("len=%d trunc=%v", len(blocks), trunc)
	}
}

// randomType builds a random type tree for property testing.
func randomType(rng *rand.Rand, depth int) *Type {
	bases := []*Type{Byte, Int32, Float64}
	if depth <= 0 || rng.Intn(3) == 0 {
		return bases[rng.Intn(len(bases))]
	}
	child := randomType(rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return Must(TypeContiguous(rng.Intn(4)+1, child))
	case 1:
		bl := rng.Intn(3) + 1
		stride := bl + rng.Intn(4) // stride >= blocklen: no self-overlap
		return Must(TypeVector(rng.Intn(4)+1, bl, stride, child))
	case 2:
		n := rng.Intn(3) + 1
		lens := make([]int, n)
		displs := make([]int, n)
		pos := 0
		for i := 0; i < n; i++ {
			lens[i] = rng.Intn(3) + 1
			displs[i] = pos
			pos += lens[i] + rng.Intn(4)
		}
		return Must(TypeIndexed(lens, displs, child))
	default:
		n := rng.Intn(3) + 1
		lens := make([]int, n)
		displs := make([]int64, n)
		types := make([]*Type, n)
		var pos int64
		for i := 0; i < n; i++ {
			lens[i] = rng.Intn(2) + 1
			types[i] = bases[rng.Intn(len(bases))]
			displs[i] = pos
			pos += int64(lens[i])*types[i].Extent() + int64(rng.Intn(16))
		}
		return Must(TypeStruct(lens, displs, types))
	}
}

// Property: flattened runs carry exactly Size()*count bytes, lie within the
// true bounds, and are non-overlapping when sorted by offset (for the
// non-self-overlapping constructors used here).
func TestFlattenCoversSizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := randomType(rng, 3)
		count := rng.Intn(3) + 1
		blocks, trunc := Flatten(dt, count, 0)
		if trunc {
			return false
		}
		var total int64
		for _, b := range blocks {
			if b.Len <= 0 {
				return false
			}
			total += b.Len
		}
		if total != dt.Size()*int64(count) {
			return false
		}
		lo := dt.TrueLB()
		hi := dt.TrueLB() + dt.TrueExtent() + int64(count-1)*dt.Extent()
		for _, b := range blocks {
			if b.Off < lo || b.End() > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: consuming the cursor in random-size bites produces exactly the
// same byte coverage as one whole-message flatten.
func TestCursorSplitInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := randomType(rng, 3)
		count := rng.Intn(3) + 1
		whole, _ := Flatten(dt, count, 0)

		c := NewCursor(dt, count)
		var pieces []Block
		for {
			max := int64(rng.Intn(37) + 1)
			off, n, ok := c.Next(max)
			if !ok {
				break
			}
			pieces = append(pieces, Block{off, n})
		}
		// Coalesce consecutive pieces and compare to whole.
		var merged []Block
		for _, p := range pieces {
			if len(merged) > 0 && merged[len(merged)-1].End() == p.Off {
				merged[len(merged)-1].Len += p.Len
			} else {
				merged = append(merged, p)
			}
		}
		if len(merged) != len(whole) {
			return false
		}
		for i := range whole {
			if merged[i] != whole[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LayoutStats totals agree with Flatten.
func TestLayoutStatsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := randomType(rng, 2)
		count := rng.Intn(4) + 1
		s := LayoutStats(dt, count, 0)
		blocks, _ := Flatten(dt, count, 0)
		if s.Runs != int64(len(blocks)) {
			return false
		}
		if s.Bytes != dt.Size()*int64(count) {
			return false
		}
		if s.Runs > 0 && (s.MinRun > s.MedianRun || s.MedianRun > s.MaxRun) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
