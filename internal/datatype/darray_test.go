package datatype

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteDarrayOwned computes, straight from the HPF distribution definitions,
// the byte offsets process rank owns in the global array.
func bruteDarrayOwned(size, rank int, gsizes, distribs, dargs, psizes []int, order int, elem int64) map[int64]bool {
	n := len(gsizes)
	coords := make([]int, n)
	r := rank
	for i := 0; i < n; i++ {
		procs := 1
		for j := i + 1; j < n; j++ {
			procs *= psizes[j]
		}
		coords[i] = r / procs
		r %= procs
	}
	owns := func(d, j int) bool {
		switch distribs[d] {
		case DistributeNone:
			return true
		case DistributeBlock:
			blk := dargs[d]
			if blk == DfltDarg {
				blk = (gsizes[d] + psizes[d] - 1) / psizes[d]
			}
			return j/blk == coords[d]
		case DistributeCyclic:
			k := dargs[d]
			if k == DfltDarg {
				k = 1
			}
			return (j/k)%psizes[d] == coords[d]
		}
		return false
	}
	// Strides per dimension in elements (storage order).
	dims := make([]int, n)
	for i := range dims {
		dims[i] = i
	}
	if order == OrderFortran {
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			dims[i], dims[j] = dims[j], dims[i]
		}
	}
	strides := make([]int64, n)
	s := int64(1)
	for k := n - 1; k >= 0; k-- {
		strides[dims[k]] = s
		s *= int64(gsizes[dims[k]])
	}
	out := map[int64]bool{}
	var walk func(d int, off int64)
	walk = func(d int, off int64) {
		if d == n {
			out[off*elem] = true
			return
		}
		for j := 0; j < gsizes[d]; j++ {
			if owns(d, j) {
				walk(d+1, off+int64(j)*strides[d])
			}
		}
	}
	walk(0, 0)
	return out
}

func TestDarrayBlock2D(t *testing.T) {
	// 8x8 ints over a 2x2 grid, block x block.
	gs := []int{8, 8}
	ds := []int{DistributeBlock, DistributeBlock}
	da := []int{DfltDarg, DfltDarg}
	ps := []int{2, 2}
	var total int64
	for rank := 0; rank < 4; rank++ {
		dt := Must(TypeDarray(4, rank, gs, ds, da, ps, OrderC, Int32))
		if dt.Extent() != 8*8*4 {
			t.Fatalf("rank %d extent = %d", rank, dt.Extent())
		}
		want := bruteDarrayOwned(4, rank, gs, ds, da, ps, OrderC, 4)
		if !sameSet(coveredOffsets(dt, 4), want) {
			t.Fatalf("rank %d coverage mismatch", rank)
		}
		total += dt.Size()
	}
	if total != 8*8*4 {
		t.Fatalf("ranks' pieces total %d, want full array", total)
	}
}

func TestDarrayCyclic(t *testing.T) {
	// 1-D cyclic(1): round robin of 10 elements over 3 processes.
	gs := []int{10}
	ds := []int{DistributeCyclic}
	da := []int{DfltDarg}
	ps := []int{3}
	var total int64
	for rank := 0; rank < 3; rank++ {
		dt := Must(TypeDarray(3, rank, gs, ds, da, ps, OrderC, Int32))
		want := bruteDarrayOwned(3, rank, gs, ds, da, ps, OrderC, 4)
		if !sameSet(coveredOffsets(dt, 4), want) {
			t.Fatalf("rank %d cyclic coverage mismatch: got %v", rank, coveredOffsets(dt, 4))
		}
		total += dt.Size()
	}
	if total != 40 {
		t.Fatalf("total = %d", total)
	}
}

func TestDarrayCyclicBlockK(t *testing.T) {
	// cyclic(3) of 17 elements over 2 processes: partial final block.
	gs := []int{17}
	ds := []int{DistributeCyclic}
	da := []int{3}
	ps := []int{2}
	var total int64
	for rank := 0; rank < 2; rank++ {
		dt := Must(TypeDarray(2, rank, gs, ds, da, ps, OrderC, Int32))
		want := bruteDarrayOwned(2, rank, gs, ds, da, ps, OrderC, 4)
		if !sameSet(coveredOffsets(dt, 4), want) {
			t.Fatalf("rank %d cyclic(3) coverage mismatch", rank)
		}
		total += dt.Size()
	}
	if total != 17*4 {
		t.Fatalf("total = %d", total)
	}
}

func TestDarrayMixedDistribs(t *testing.T) {
	// 2-D: block rows, cyclic(2) columns, 2x2 grid, Fortran order.
	gs := []int{6, 8}
	ds := []int{DistributeBlock, DistributeCyclic}
	da := []int{DfltDarg, 2}
	ps := []int{2, 2}
	for rank := 0; rank < 4; rank++ {
		dt := Must(TypeDarray(4, rank, gs, ds, da, ps, OrderFortran, Float64))
		want := bruteDarrayOwned(4, rank, gs, ds, da, ps, OrderFortran, 8)
		if !sameSet(coveredOffsets(dt, 8), want) {
			t.Fatalf("rank %d mixed coverage mismatch", rank)
		}
	}
}

func TestDarrayUnevenBlock(t *testing.T) {
	// 10 elements, block over 3 processes: 4/4/2.
	gs := []int{10}
	ds := []int{DistributeBlock}
	da := []int{DfltDarg}
	ps := []int{3}
	sizes := []int64{16, 16, 8}
	for rank := 0; rank < 3; rank++ {
		dt := Must(TypeDarray(3, rank, gs, ds, da, ps, OrderC, Int32))
		if dt.Size() != sizes[rank] {
			t.Fatalf("rank %d size = %d, want %d", rank, dt.Size(), sizes[rank])
		}
	}
}

func TestDarrayErrors(t *testing.T) {
	if _, err := TypeDarray(4, 0, []int{8}, []int{DistributeBlock}, []int{DfltDarg}, []int{2}, OrderC, Int32); err == nil {
		t.Error("grid/size mismatch accepted")
	}
	if _, err := TypeDarray(2, 5, []int{8}, []int{DistributeBlock}, []int{DfltDarg}, []int{2}, OrderC, Int32); err == nil {
		t.Error("rank out of range accepted")
	}
	if _, err := TypeDarray(2, 0, []int{8}, []int{DistributeNone}, []int{DfltDarg}, []int{2}, OrderC, Int32); err == nil {
		t.Error("DistributeNone with psize>1 accepted")
	}
	if _, err := TypeDarray(2, 0, []int{8}, []int{DistributeBlock}, []int{2}, []int{2}, OrderC, Int32); err == nil {
		t.Error("undersized block accepted")
	}
}

// Property: over random shapes, the per-rank pieces are disjoint, cover the
// whole array, and each matches the brute-force ownership set.
func TestDarrayPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2) + 1
		gs := make([]int, n)
		ds := make([]int, n)
		da := make([]int, n)
		ps := make([]int, n)
		size := 1
		for i := 0; i < n; i++ {
			gs[i] = rng.Intn(9) + 1
			switch rng.Intn(3) {
			case 0:
				ds[i] = DistributeNone
				da[i] = DfltDarg
				ps[i] = 1
			case 1:
				ds[i] = DistributeBlock
				da[i] = DfltDarg
				ps[i] = rng.Intn(3) + 1
			default:
				ds[i] = DistributeCyclic
				if rng.Intn(2) == 0 {
					da[i] = DfltDarg
				} else {
					da[i] = rng.Intn(3) + 1
				}
				ps[i] = rng.Intn(3) + 1
			}
			size *= ps[i]
		}
		order := OrderC
		if rng.Intn(2) == 1 {
			order = OrderFortran
		}
		union := map[int64]bool{}
		var total int64
		for rank := 0; rank < size; rank++ {
			dt, err := TypeDarray(size, rank, gs, ds, da, ps, order, Int32)
			if err != nil {
				return false
			}
			got := coveredOffsets(dt, 4)
			want := bruteDarrayOwned(size, rank, gs, ds, da, ps, order, 4)
			if !sameSet(got, want) {
				return false
			}
			for o := range got {
				if union[o] {
					return false // overlap between ranks
				}
				union[o] = true
			}
			total += dt.Size()
		}
		var full int64 = 4
		for _, g := range gs {
			full *= int64(g)
		}
		return total == full && int64(len(union))*4 == full
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
