package datatype

import (
	"testing"
)

func TestBaseTypes(t *testing.T) {
	cases := []struct {
		dt   *Type
		size int64
	}{
		{Byte, 1}, {Char, 1}, {Int32, 4}, {Int64, 8}, {Float32, 4}, {Float64, 8},
	}
	for _, c := range cases {
		if c.dt.Size() != c.size || c.dt.Extent() != c.size {
			t.Errorf("%v: size=%d extent=%d, want %d", c.dt, c.dt.Size(), c.dt.Extent(), c.size)
		}
		if !c.dt.Contig() {
			t.Errorf("%v: base type not contiguous", c.dt)
		}
		if c.dt.Blocks() != 1 {
			t.Errorf("%v: blocks=%d", c.dt, c.dt.Blocks())
		}
	}
}

func TestContiguous(t *testing.T) {
	ct := Must(TypeContiguous(10, Int32))
	if ct.Size() != 40 || ct.Extent() != 40 {
		t.Fatalf("size=%d extent=%d", ct.Size(), ct.Extent())
	}
	if !ct.Contig() || ct.Blocks() != 1 {
		t.Fatalf("contiguous-of-base should fold into one block, got %d", ct.Blocks())
	}
	// Contiguous of contiguous also folds.
	cc := Must(TypeContiguous(3, ct))
	if !cc.Contig() || cc.Size() != 120 {
		t.Fatalf("nested contiguous: contig=%v size=%d", cc.Contig(), cc.Size())
	}
}

func TestVectorSemantics(t *testing.T) {
	// The paper's motivating type: x columns of a 128x4096 int array is
	// MPI_Type_vector(128, x, 4096, MPI_INT).
	v := Must(TypeVector(128, 2, 4096, Int32))
	if v.Size() != 128*2*4 {
		t.Fatalf("size = %d, want %d", v.Size(), 128*2*4)
	}
	wantExtent := int64((127*4096 + 2) * 4)
	if v.Extent() != wantExtent {
		t.Fatalf("extent = %d, want %d", v.Extent(), wantExtent)
	}
	if v.LB() != 0 {
		t.Fatalf("lb = %d, want 0", v.LB())
	}
	if v.Blocks() != 128 {
		t.Fatalf("blocks = %d, want 128", v.Blocks())
	}
	if v.Contig() {
		t.Fatal("strided vector reported contiguous")
	}
}

func TestVectorUnitStrideFolds(t *testing.T) {
	v := Must(TypeVector(16, 3, 3, Int32))
	if !v.Contig() || v.Blocks() != 1 {
		t.Fatalf("stride==blocklen vector should fold: contig=%v blocks=%d", v.Contig(), v.Blocks())
	}
	if v.Size() != 16*3*4 {
		t.Fatalf("size = %d", v.Size())
	}
}

func TestHvector(t *testing.T) {
	hv := Must(TypeHvector(4, 1, 100, Float64))
	if hv.Size() != 32 {
		t.Fatalf("size = %d", hv.Size())
	}
	if hv.Extent() != 3*100+8 {
		t.Fatalf("extent = %d, want %d", hv.Extent(), 3*100+8)
	}
	if hv.Blocks() != 4 {
		t.Fatalf("blocks = %d", hv.Blocks())
	}
}

func TestIndexed(t *testing.T) {
	// Blocks of 2,1 ints at element displacements 0, 10.
	ix := Must(TypeIndexed([]int{2, 1}, []int{0, 10}, Int32))
	if ix.Size() != 12 {
		t.Fatalf("size = %d", ix.Size())
	}
	if ix.Extent() != 44 { // displacement 10*4 + 1*4
		t.Fatalf("extent = %d, want 44", ix.Extent())
	}
	blocks, _ := Flatten(ix, 1, 0)
	want := []Block{{Off: 0, Len: 8}, {Off: 40, Len: 4}}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", blocks, want)
		}
	}
}

func TestIndexedAdjacentCoalesce(t *testing.T) {
	// Two blocks that abut must merge at construction.
	ix := Must(TypeIndexed([]int{2, 3}, []int{0, 2}, Int32))
	if ix.Blocks() != 1 || !ix.Contig() {
		t.Fatalf("adjacent indexed blocks: blocks=%d contig=%v", ix.Blocks(), ix.Contig())
	}
}

func TestHindexedNegativeDisplacement(t *testing.T) {
	hx := Must(TypeHindexed([]int{1, 1}, []int64{0, -16}, Float64))
	if hx.LB() != -16 {
		t.Fatalf("lb = %d, want -16", hx.LB())
	}
	if hx.Extent() != 24 { // from -16 to +8
		t.Fatalf("extent = %d, want 24", hx.Extent())
	}
	blocks, _ := Flatten(hx, 1, 0)
	if blocks[0].Off != 0 || blocks[1].Off != -16 {
		t.Fatalf("blocks = %v (datatype order, not address order)", blocks)
	}
}

func TestStruct(t *testing.T) {
	// The paper's Figure 10 struct: blocks of growing size with gaps.
	st := Must(TypeStruct(
		[]int{1, 2, 4},
		[]int64{0, 8, 24},
		[]*Type{Int32, Int32, Int32},
	))
	if st.Size() != (1+2+4)*4 {
		t.Fatalf("size = %d", st.Size())
	}
	if st.Extent() != 40 {
		t.Fatalf("extent = %d, want 40", st.Extent())
	}
	if st.Blocks() != 3 {
		t.Fatalf("blocks = %d", st.Blocks())
	}
}

func TestStructMixedTypes(t *testing.T) {
	inner := Must(TypeVector(2, 1, 3, Int32))
	st := Must(TypeStruct(
		[]int{1, 1},
		[]int64{0, 100},
		[]*Type{Float64, inner},
	))
	if st.Size() != 8+8 {
		t.Fatalf("size = %d", st.Size())
	}
	blocks, _ := Flatten(st, 1, 0)
	want := []Block{{0, 8}, {100, 4}, {112, 4}}
	if len(blocks) != 3 {
		t.Fatalf("blocks = %v", blocks)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", blocks, want)
		}
	}
}

func TestStructZeroBlocksSkipped(t *testing.T) {
	st := Must(TypeStruct(
		[]int{0, 3},
		[]int64{0, 16},
		[]*Type{Float64, Int32},
	))
	if st.Size() != 12 {
		t.Fatalf("size = %d", st.Size())
	}
	if st.LB() != 16 {
		t.Fatalf("lb = %d, want 16 (zero block must not contribute)", st.LB())
	}
}

func TestResized(t *testing.T) {
	v := Must(TypeVector(2, 1, 4, Int32))
	r := Must(TypeResized(v, 0, 64))
	if r.Extent() != 64 {
		t.Fatalf("extent = %d", r.Extent())
	}
	if r.Size() != v.Size() {
		t.Fatalf("size changed: %d", r.Size())
	}
	// count=2 of the resized type must place the second instance at 64.
	blocks, _ := Flatten(r, 2, 0)
	want := []Block{{0, 4}, {16, 4}, {64, 4}, {80, 4}}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", blocks, want)
		}
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := TypeVector(-1, 1, 1, Int32); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := TypeVector(1, -1, 1, Int32); err == nil {
		t.Error("negative blocklen accepted")
	}
	if _, err := TypeContiguous(4, nil); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := TypeIndexed([]int{1}, []int{0, 1}, Int32); err == nil {
		t.Error("mismatched arrays accepted")
	}
	if _, err := TypeStruct([]int{1}, []int64{0}, []*Type{nil}); err == nil {
		t.Error("nil struct member accepted")
	}
	if _, err := TypeStruct(nil, nil, nil); err == nil {
		t.Error("empty struct accepted")
	}
}

func TestDensity(t *testing.T) {
	v := Must(TypeVector(4, 1, 2, Int32)) // 16 data bytes over 28-byte true extent
	d := v.Density()
	if d < 0.5 || d > 0.65 {
		t.Fatalf("density = %f", d)
	}
	if c := Must(TypeContiguous(8, Int32)); c.Density() != 1.0 {
		t.Fatalf("contiguous density = %f", c.Density())
	}
}

func TestEqual(t *testing.T) {
	a := Must(TypeVector(4, 2, 8, Int32))
	b := Must(TypeHvector(4, 2, 32, Int32)) // same layout, different constructor
	if !Equal(a, b) {
		t.Fatal("equivalent vector/hvector not Equal")
	}
	c := Must(TypeVector(4, 2, 9, Int32))
	if Equal(a, c) {
		t.Fatal("different strides Equal")
	}
	// Contiguous built two ways.
	d := Must(TypeContiguous(8, Int32))
	e := Must(TypeVector(8, 1, 1, Int32))
	if !Equal(d, e) {
		t.Fatal("contiguous equivalents not Equal")
	}
	if Equal(d, nil) || Equal(nil, d) {
		t.Fatal("nil comparison")
	}
	if !Equal(nil, nil) {
		t.Fatal("nil/nil should be Equal")
	}
	// Codec round trip preserves equality.
	dec, err := Decode(Encode(a))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, dec) {
		t.Fatal("decode not Equal to original")
	}
	// Resized differs.
	r := Must(TypeResized(a, 0, a.Extent()*2))
	if Equal(a, r) {
		t.Fatal("resized type Equal to original")
	}
}

func TestTree(t *testing.T) {
	v := Must(TypeVector(4, 2, 8, Int32))
	tree := v.Tree()
	for _, want := range []string{"vector count=4", "stride=32", "contig 8 bytes"} {
		if !containsStr(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	st := Must(TypeStruct([]int{1, 1}, []int64{0, 16}, []*Type{Int32, Float64}))
	tree2 := st.Tree()
	if !containsStr(tree2, "indexed parts=2") || !containsStr(tree2, "@16") {
		t.Fatalf("struct tree wrong:\n%s", tree2)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
