package datatype

import "slices"

// Cursor walks the contiguous runs of a (type, count) message in datatype
// order, supporting partial processing: a caller may consume any number of
// bytes and resume later from the exact same point. This is the capability
// the paper's segment pack/unpack pipelines require ("partial datatype
// processing", after Ross et al. and Träff's flattening on the fly).
//
// The walk is iterative over an explicit frame stack — no recursion — and
// coalesces runs that happen to abut across loop iterations, so the runs a
// Cursor reports are maximal.
type Cursor struct {
	remaining int64 // data bytes not yet consumed

	stack []cframe

	// pending is the current maximal run being consumed.
	pendingOff int64
	pendingLen int64

	// peek is a lookahead run pulled during coalescing.
	peekOff   int64
	peekLen   int64
	peekValid bool
}

type cframe struct {
	lp   *loop
	base int64
	idx  int
}

// NewCursor returns a cursor over count instances of t. Offsets it reports
// are byte displacements from the message buffer pointer (they can be
// negative when the type's lower bound is).
func NewCursor(t *Type, count int) *Cursor {
	lp := messageLoop(t, count)
	c := &Cursor{remaining: lp.dataBytes}
	if lp.dataBytes > 0 {
		c.stack = append(c.stack, cframe{lp: lp})
	}
	return c
}

// Remaining reports the data bytes not yet returned by Next.
func (c *Cursor) Remaining() int64 { return c.remaining }

// Done reports whether the whole message has been consumed.
func (c *Cursor) Done() bool { return c.remaining == 0 }

// nextRaw pulls the next (pre-coalescing) contiguous run off the stack.
func (c *Cursor) nextRaw() (off, n int64, ok bool) {
	for len(c.stack) > 0 {
		f := &c.stack[len(c.stack)-1]
		switch f.lp.kind {
		case loopContig:
			off, n = f.base, f.lp.bytes
			c.stack = c.stack[:len(c.stack)-1]
			if n > 0 {
				return off, n, true
			}
		case loopVector:
			if f.idx >= f.lp.count {
				c.stack = c.stack[:len(c.stack)-1]
				continue
			}
			childBase := f.base + int64(f.idx)*f.lp.stride
			f.idx++
			c.stack = append(c.stack, cframe{lp: f.lp.child, base: childBase})
		case loopIndexed:
			if f.idx >= len(f.lp.parts) {
				c.stack = c.stack[:len(c.stack)-1]
				continue
			}
			p := f.lp.parts[f.idx]
			f.idx++
			c.stack = append(c.stack, cframe{lp: p.child, base: f.base + p.off})
		}
	}
	return 0, 0, false
}

// fill loads pending with the next maximal run.
func (c *Cursor) fill() bool {
	if c.peekValid {
		c.pendingOff, c.pendingLen = c.peekOff, c.peekLen
		c.peekValid = false
	} else {
		off, n, ok := c.nextRaw()
		if !ok {
			return false
		}
		c.pendingOff, c.pendingLen = off, n
	}
	// Coalesce abutting raw runs.
	for {
		off, n, ok := c.nextRaw()
		if !ok {
			return true
		}
		if off == c.pendingOff+c.pendingLen {
			c.pendingLen += n
			continue
		}
		c.peekOff, c.peekLen, c.peekValid = off, n, true
		return true
	}
}

// Next returns up to max bytes of the current contiguous run: its buffer
// offset and length. Runs longer than max are returned in consecutive
// pieces. ok is false when the message is exhausted. max must be positive.
func (c *Cursor) Next(max int64) (off, n int64, ok bool) {
	if max <= 0 {
		panic("datatype: Cursor.Next with non-positive max")
	}
	if c.pendingLen == 0 {
		if !c.fill() {
			return 0, 0, false
		}
	}
	off = c.pendingOff
	n = c.pendingLen
	if n > max {
		n = max
	}
	c.pendingOff += n
	c.pendingLen -= n
	c.remaining -= n
	return off, n, true
}

// Block is one contiguous run of a flattened message: a byte offset from the
// buffer pointer and a length.
type Block struct {
	Off int64
	Len int64
}

// End returns the offset one past the run.
func (b Block) End() int64 { return b.Off + b.Len }

// Flatten returns the maximal contiguous runs of a (type, count) message in
// datatype order, up to limit runs (0 means no limit). The second result
// reports whether the flattening was truncated at the limit.
func Flatten(t *Type, count, limit int) ([]Block, bool) {
	c := NewCursor(t, count)
	var out []Block
	for {
		if limit > 0 && len(out) >= limit {
			return out, !c.Done()
		}
		off, n, ok := c.Next(1 << 62)
		if !ok {
			return out, false
		}
		out = append(out, Block{Off: off, Len: n})
	}
}

// Stats summarizes the run-length distribution of a message layout; the
// scheme-selection heuristics of Section 6 key off these numbers.
type Stats struct {
	Runs      int64 // number of maximal contiguous runs
	Bytes     int64 // total data bytes
	MinRun    int64
	MaxRun    int64
	AvgRun    float64
	MedianRun int64
	Truncated bool // statistics computed over a truncated prefix of runs
}

// Extrapolate scales a truncated Stats up to a message of totalBytes data
// bytes, assuming the sampled prefix is representative: the run count is
// scaled to preserve the observed average run length, while Min/Max/Median
// remain the prefix's. It is the explicit way to consume a truncated flatten
// (the result still reports Truncated, because it is an estimate, not a
// walk). Untruncated stats are returned unchanged.
func (s Stats) Extrapolate(totalBytes int64) Stats {
	if !s.Truncated || s.Bytes <= 0 || s.AvgRun <= 0 || totalBytes <= s.Bytes {
		return s
	}
	out := s
	out.Bytes = totalBytes
	out.Runs = int64(float64(totalBytes) / s.AvgRun)
	if out.Runs < s.Runs {
		out.Runs = s.Runs
	}
	return out
}

// LayoutStats computes Stats over at most limit runs (0 means all).
func LayoutStats(t *Type, count, limit int) Stats {
	blocks, trunc := Flatten(t, count, limit)
	s := Stats{Truncated: trunc}
	if len(blocks) == 0 {
		return s
	}
	lens := make([]int64, len(blocks))
	for i, b := range blocks {
		lens[i] = b.Len
		s.Bytes += b.Len
		if i == 0 || b.Len < s.MinRun {
			s.MinRun = b.Len
		}
		if b.Len > s.MaxRun {
			s.MaxRun = b.Len
		}
	}
	s.Runs = int64(len(blocks))
	s.AvgRun = float64(s.Bytes) / float64(s.Runs)
	slices.Sort(lens)
	s.MedianRun = lens[len(lens)/2]
	return s
}
