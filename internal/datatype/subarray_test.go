package datatype

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteSubarrayOffsets enumerates the expected element byte offsets of a
// subarray directly from its definition.
func bruteSubarrayOffsets(sizes, subsizes, starts []int, order int, elem int64) map[int64]bool {
	n := len(sizes)
	dims := make([]int, n)
	for i := range dims {
		dims[i] = i
	}
	if order == OrderFortran {
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			dims[i], dims[j] = dims[j], dims[i]
		}
	}
	// strides[d] in elements, with dims[n-1] fastest.
	strides := make([]int64, n)
	s := int64(1)
	for k := n - 1; k >= 0; k-- {
		strides[dims[k]] = s
		s *= int64(sizes[dims[k]])
	}
	offsets := map[int64]bool{}
	idx := make([]int, n)
	var walk func(d int)
	walk = func(d int) {
		if d == n {
			var off int64
			for i := 0; i < n; i++ {
				off += int64(starts[i]+idx[i]) * strides[i]
			}
			offsets[off*elem] = true
			return
		}
		for idx[d] = 0; idx[d] < subsizes[d]; idx[d]++ {
			walk(d + 1)
		}
	}
	walk(0)
	return offsets
}

func coveredOffsets(t *Type, elem int64) map[int64]bool {
	blocks, _ := Flatten(t, 1, 0)
	out := map[int64]bool{}
	for _, b := range blocks {
		for o := b.Off; o < b.End(); o += elem {
			out[o] = true
		}
	}
	return out
}

func sameSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestSubarray2DC(t *testing.T) {
	// 4x6 array, 2x3 sub-block at (1,2), C order.
	sub := Must(TypeSubarray([]int{4, 6}, []int{2, 3}, []int{1, 2}, OrderC, Int32))
	if sub.Size() != 2*3*4 {
		t.Fatalf("size = %d", sub.Size())
	}
	if sub.Extent() != 4*6*4 {
		t.Fatalf("extent = %d, want whole array", sub.Extent())
	}
	if sub.LB() != 0 {
		t.Fatalf("lb = %d", sub.LB())
	}
	want := bruteSubarrayOffsets([]int{4, 6}, []int{2, 3}, []int{1, 2}, OrderC, 4)
	if !sameSet(coveredOffsets(sub, 4), want) {
		t.Fatalf("coverage mismatch: %v", coveredOffsets(sub, 4))
	}
	// Rows of 3 ints: 2 contiguous runs.
	if blocks, _ := Flatten(sub, 1, 0); len(blocks) != 2 {
		t.Fatalf("runs = %d, want 2", len(blocks))
	}
}

func TestSubarrayFortranOrder(t *testing.T) {
	sizes, subsizes, starts := []int{4, 6}, []int{2, 3}, []int{1, 2}
	sub := Must(TypeSubarray(sizes, subsizes, starts, OrderFortran, Float64))
	want := bruteSubarrayOffsets(sizes, subsizes, starts, OrderFortran, 8)
	if !sameSet(coveredOffsets(sub, 8), want) {
		t.Fatal("fortran-order coverage mismatch")
	}
	// Column-major: dimension 0 is fastest, so runs are 2 elements long.
	blocks, _ := Flatten(sub, 1, 0)
	if blocks[0].Len != 16 {
		t.Fatalf("first run = %d bytes, want 16", blocks[0].Len)
	}
}

func TestSubarray3D(t *testing.T) {
	sizes, subsizes, starts := []int{3, 4, 5}, []int{2, 2, 3}, []int{1, 0, 1}
	sub := Must(TypeSubarray(sizes, subsizes, starts, OrderC, Int32))
	if sub.Size() != 2*2*3*4 {
		t.Fatalf("size = %d", sub.Size())
	}
	want := bruteSubarrayOffsets(sizes, subsizes, starts, OrderC, 4)
	if !sameSet(coveredOffsets(sub, 4), want) {
		t.Fatal("3-D coverage mismatch")
	}
}

func TestSubarrayFullIsContig(t *testing.T) {
	sub := Must(TypeSubarray([]int{4, 8}, []int{4, 8}, []int{0, 0}, OrderC, Int32))
	if !sub.Contig() {
		t.Fatalf("full subarray should be contiguous: %v blocks=%d", sub, sub.Blocks())
	}
}

func TestSubarrayTilesWithCount(t *testing.T) {
	// count=2 must place the second sub-block exactly one array later.
	sizes, subsizes, starts := []int{2, 4}, []int{1, 2}, []int{1, 1}
	sub := Must(TypeSubarray(sizes, subsizes, starts, OrderC, Int32))
	blocks, _ := Flatten(sub, 2, 0)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	if blocks[1].Off != blocks[0].Off+int64(2*4)*4 {
		t.Fatalf("second instance misplaced: %v", blocks)
	}
}

func TestSubarrayErrors(t *testing.T) {
	if _, err := TypeSubarray([]int{4}, []int{5}, []int{0}, OrderC, Int32); err == nil {
		t.Error("oversized subsize accepted")
	}
	if _, err := TypeSubarray([]int{4}, []int{2}, []int{3}, OrderC, Int32); err == nil {
		t.Error("overflowing start accepted")
	}
	if _, err := TypeSubarray([]int{4}, []int{2}, []int{0}, 99, Int32); err == nil {
		t.Error("bad order accepted")
	}
	if _, err := TypeSubarray([]int{4, 4}, []int{2}, []int{0}, OrderC, Int32); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := TypeSubarray(nil, nil, nil, OrderC, Int32); err == nil {
		t.Error("zero dims accepted")
	}
}

// Property: for random shapes and both orders, the subarray covers exactly
// the brute-force offset set.
func TestSubarrayCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 1
		sizes := make([]int, n)
		subsizes := make([]int, n)
		starts := make([]int, n)
		for i := 0; i < n; i++ {
			sizes[i] = rng.Intn(6) + 1
			subsizes[i] = rng.Intn(sizes[i]) + 1
			starts[i] = rng.Intn(sizes[i] - subsizes[i] + 1)
		}
		order := OrderC
		if rng.Intn(2) == 1 {
			order = OrderFortran
		}
		sub, err := TypeSubarray(sizes, subsizes, starts, order, Int32)
		if err != nil {
			return false
		}
		want := bruteSubarrayOffsets(sizes, subsizes, starts, order, 4)
		return sameSet(coveredOffsets(sub, 4), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
