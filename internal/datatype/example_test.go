package datatype_test

import (
	"fmt"

	"repro/internal/datatype"
)

// Building the paper's motivating type: two columns of a 128x4096 integer
// matrix, and inspecting its layout.
func ExampleTypeVector() {
	cols := datatype.Must(datatype.TypeVector(128, 2, 4096, datatype.Int32))
	fmt.Println("data bytes:", cols.Size())
	fmt.Println("extent:    ", cols.Extent())
	fmt.Println("blocks:    ", cols.Blocks())
	fmt.Println("contiguous:", cols.Contig())
	// Output:
	// data bytes: 1024
	// extent:     2080776
	// blocks:     128
	// contiguous: false
}

// Flattening produces the maximal contiguous runs of a message; abutting
// pieces coalesce.
func ExampleFlatten() {
	ix := datatype.Must(datatype.TypeIndexed(
		[]int{2, 3, 1}, []int{0, 2, 10}, datatype.Int32))
	runs, _ := datatype.Flatten(ix, 1, 0)
	for _, r := range runs {
		fmt.Printf("[%d,+%d)\n", r.Off, r.Len)
	}
	// The first two blocks are adjacent (elements 0-1 and 2-4) and merge.
	// Output:
	// [0,+20)
	// [40,+4)
}

// The cursor supports partial processing: stop after any number of bytes and
// resume exactly there — what segment pipelines need.
func ExampleCursor() {
	v := datatype.Must(datatype.TypeVector(3, 2, 4, datatype.Int32))
	c := datatype.NewCursor(v, 1)
	for {
		off, n, ok := c.Next(6) // at most 6 bytes per bite
		if !ok {
			break
		}
		fmt.Printf("copy %d bytes at offset %d\n", n, off)
	}
	// Output:
	// copy 6 bytes at offset 0
	// copy 2 bytes at offset 6
	// copy 6 bytes at offset 16
	// copy 2 bytes at offset 22
	// copy 6 bytes at offset 32
	// copy 2 bytes at offset 38
}

// Layouts travel between ranks in compact dataloop form (the Multi-W
// datatype exchange); a million-block vector costs a handful of bytes.
func ExampleEncode() {
	v := datatype.Must(datatype.TypeVector(1_000_000, 1, 2, datatype.Float64))
	wire := datatype.Encode(v)
	fmt.Println("blocks:", v.Blocks())
	fmt.Println("encoded bytes:", len(wire))
	dec, _ := datatype.Decode(wire)
	fmt.Println("round trip size match:", dec.Size() == v.Size())
	// Output:
	// blocks: 1000000
	// encoded bytes: 21
	// round trip size match: true
}

// A 2-D subarray: the interior tile of a matrix with a halo ring.
func ExampleTypeSubarray() {
	interior := datatype.Must(datatype.TypeSubarray(
		[]int{6, 6}, // full local array
		[]int{4, 4}, // interior
		[]int{1, 1}, // halo offset
		datatype.OrderC, datatype.Float64))
	fmt.Println("data bytes:", interior.Size())
	fmt.Println("runs:", interior.Blocks())
	// Output:
	// data bytes: 128
	// runs: 4
}
