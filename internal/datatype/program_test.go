package datatype

import (
	"math/rand"
	"testing"
)

// testShapes spans every program kind plus the cursor edge cases.
func testShapes(t *testing.T) []struct {
	name  string
	dt    *Type
	count int
	kind  ProgKind
} {
	t.Helper()
	v1 := Must(TypeVector(16, 64, 128, Int32))
	zero := Must(TypeResized(Int32, 0, 0)) // zero extent, size > 0
	return []struct {
		name  string
		dt    *Type
		count int
		kind  ProgKind
	}{
		{"contig", Must(TypeContiguous(1024, Int32)), 1, ProgContig},
		{"contig-counted", Int32, 64, ProgContig},
		{"vector-1d", Must(TypeVector(128, 2, 32, Int32)), 1, ProgStrided},
		{"vector-2d", Must(TypeHvector(8, 1, 16384, v1)), 1, ProgStrided},
		// An unpadded counted vector abuts at every instance boundary (its
		// extent ends at the last block), so the cursor coalesces across the
		// wrap and a strided program would over-count runs: must be indexed.
		{"vector-counted-abut", Must(TypeVector(8, 2, 16, Int32)), 3, ProgIndexed},
		// Padding the extent restores the gap: a true counted 2D shape.
		{"vector-2d-counted", Must(TypeResized(Must(TypeVector(8, 2, 16, Int32)), 0, 512)), 3, ProgStrided},
		{"vector-abutting", Must(TypeVector(4, 8, 8, Int32)), 2, ProgContig},
		{"indexed", Must(TypeIndexed([]int{3, 1, 7}, []int{0, 5, 10}, Int32)), 4, ProgIndexed},
		{"indexed-block", Must(TypeIndexedBlock(4, []int{0, 16, 40}, Int32)), 2, ProgIndexed},
		{"struct", mustFig10(t), 4, ProgIndexed},
		// A single-part indexed type coalesces into one maximal run per
		// message; the compiler materializes it rather than claiming strided.
		{"single-part-indexed", Must(TypeIndexed([]int{2}, []int{5}, Int32)), 3, ProgIndexed},
		{"zero-count", Int32, 0, ProgContig},
		{"zero-extent", zero, 5, ProgStrided},
		{"negative-stride", Must(TypeVector(8, 1, -4, Int32)), 1, ProgStrided},
	}
}

func mustFig10(t *testing.T) *Type {
	t.Helper()
	var lens []int
	var displs []int64
	var types []*Type
	pos := int64(0)
	for b := 1; b <= 64; b *= 2 {
		lens = append(lens, b)
		displs = append(displs, pos)
		types = append(types, Int32)
		pos += int64(b)*4 + 4
	}
	return Must(TypeStruct(lens, displs, types))
}

// TestCompileKinds pins the program kind the compiler chooses per shape —
// including the coalescing vector that must NOT compile to strided (its runs
// abut across iterations) and the zero-extent type that must.
func TestCompileKinds(t *testing.T) {
	for _, sh := range testShapes(t) {
		p := Compile(sh.dt, sh.count)
		if p.Kind() != sh.kind {
			t.Errorf("%s: kind = %v, want %v (program: %s)", sh.name, p.Kind(), sh.kind, p)
		}
	}
}

// TestCompileGenericFallback drives the materialization cap: more maximal
// runs than maxProgRuns on a non-strided shape must fall back to generic.
func TestCompileGenericFallback(t *testing.T) {
	idx := Must(TypeIndexed([]int{1, 1, 1}, []int{0, 3, 7}, Int32))
	v := Must(TypeVector(128, 1, 2, idx))
	p := Compile(v, 200) // 76800 runs > maxProgRuns, indexed child blocks strided form
	if p.Kind() != ProgGeneric {
		t.Fatalf("kind = %v, want generic", p.Kind())
	}
	if p.Runs() != -1 {
		t.Fatalf("generic Runs() = %d, want -1", p.Runs())
	}
	// The generic cursor must still replay the exact cursor sequence.
	pc := p.Cursor()
	cur := NewCursor(v, 200)
	for {
		o1, n1, ok1 := pc.Next(1 << 20)
		o2, n2, ok2 := cur.Next(1 << 20)
		if o1 != o2 || n1 != n2 || ok1 != ok2 {
			t.Fatalf("generic replay diverged: (%d,%d,%v) vs (%d,%d,%v)", o1, n1, ok1, o2, n2, ok2)
		}
		if !ok1 {
			break
		}
	}
}

// TestProgramMatchesFlatten is the compiler's core invariant: the program's
// run sequence must be exactly the cursor's maximal coalesced run sequence —
// same offsets, same lengths, same order.
func TestProgramMatchesFlatten(t *testing.T) {
	for _, sh := range testShapes(t) {
		blocks, trunc := Flatten(sh.dt, sh.count, 0)
		if trunc {
			t.Fatalf("%s: unexpected truncation", sh.name)
		}
		p := Compile(sh.dt, sh.count)
		if p.Kind() == ProgGeneric {
			continue // covered by TestCompileGenericFallback
		}
		if p.Runs() != int64(len(blocks)) {
			t.Errorf("%s: program runs %d, flatten %d", sh.name, p.Runs(), len(blocks))
			continue
		}
		asc := true
		for i, b := range blocks {
			off, n := p.RunAt(int64(i))
			if off != b.Off || n != b.Len {
				t.Errorf("%s: run %d = (%d,%d), flatten (%d,%d)", sh.name, i, off, n, b.Off, b.Len)
				break
			}
			if i > 0 && b.Off < blocks[i-1].Off {
				asc = false
			}
		}
		if p.Ascending() && !asc {
			t.Errorf("%s: program claims ascending emission but flatten disagrees", sh.name)
		}
	}
}

// TestProgCursorMatchesCursor replays every shape through both cursors with
// randomized step sizes: the streaming sequences must be identical for any
// split of the byte stream.
func TestProgCursorMatchesCursor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range testShapes(t) {
		for trial := 0; trial < 20; trial++ {
			p := Compile(sh.dt, sh.count)
			pc := p.Cursor()
			cur := NewCursor(sh.dt, sh.count)
			if pc.Remaining() != cur.Remaining() {
				t.Fatalf("%s: Remaining %d vs %d", sh.name, pc.Remaining(), cur.Remaining())
			}
			for {
				max := int64(1 + rng.Intn(400))
				o1, n1, ok1 := pc.Next(max)
				o2, n2, ok2 := cur.Next(max)
				if o1 != o2 || n1 != n2 || ok1 != ok2 {
					t.Fatalf("%s trial %d: diverged at remaining %d: (%d,%d,%v) vs (%d,%d,%v)",
						sh.name, trial, cur.Remaining(), o1, n1, ok1, o2, n2, ok2)
				}
				if pc.Remaining() != cur.Remaining() || pc.Done() != cur.Done() {
					t.Fatalf("%s: state diverged: remaining %d/%d done %v/%v",
						sh.name, pc.Remaining(), cur.Remaining(), pc.Done(), cur.Done())
				}
				if !ok1 {
					break
				}
			}
		}
	}
}

// TestProgCursorReset pins that Reset rewinds to an identical replay.
func TestProgCursorReset(t *testing.T) {
	p := Compile(Must(TypeVector(16, 2, 8, Int32)), 3)
	pc := p.Cursor()
	first, _ := drain(pc)
	pc.Reset(p)
	second, _ := drain(pc)
	if len(first) != len(second) {
		t.Fatalf("run counts differ after Reset: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run %d differs after Reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func drain(w RunWalker) ([]Block, int64) {
	var out []Block
	var total int64
	for {
		off, n, ok := w.Next(1 << 62)
		if !ok {
			return out, total
		}
		out = append(out, Block{Off: off, Len: n})
		total += n
	}
}

// TestCompileRandomDifferential fuzzes random nested types against the
// cursor: whatever the compiler decides, the replay must match.
func TestCompileRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randType := func() *Type {
		dt := Int32
		depth := 1 + rng.Intn(3)
		for d := 0; d < depth; d++ {
			switch rng.Intn(3) {
			case 0:
				dt = Must(TypeContiguous(1+rng.Intn(4), dt))
			case 1:
				cnt := 1 + rng.Intn(5)
				bl := 1 + rng.Intn(3)
				stride := bl + rng.Intn(4) // >= blocklen: no overlap
				dt = Must(TypeVector(cnt, bl, stride, dt))
			case 2:
				n := 1 + rng.Intn(3)
				lens := make([]int, n)
				displs := make([]int, n)
				pos := 0
				for i := 0; i < n; i++ {
					lens[i] = 1 + rng.Intn(3)
					displs[i] = pos + rng.Intn(3)
					pos = displs[i] + lens[i] + rng.Intn(2)
				}
				dt = Must(TypeIndexed(lens, displs, dt))
			}
		}
		return dt
	}
	for trial := 0; trial < 200; trial++ {
		dt := randType()
		count := rng.Intn(4) // includes zero-count
		p := Compile(dt, count)
		pc := p.Cursor()
		cur := NewCursor(dt, count)
		for {
			max := int64(1 + rng.Intn(64))
			o1, n1, ok1 := pc.Next(max)
			o2, n2, ok2 := cur.Next(max)
			if o1 != o2 || n1 != n2 || ok1 != ok2 {
				t.Fatalf("trial %d (%v, count %d, kind %v): (%d,%d,%v) vs (%d,%d,%v)",
					trial, dt, count, p.Kind(), o1, n1, ok1, o2, n2, ok2)
			}
			if !ok1 {
				break
			}
		}
	}
}

// TestRunAtMatchesSequence pins random access against sequential emission.
func TestRunAtMatchesSequence(t *testing.T) {
	for _, sh := range testShapes(t) {
		p := Compile(sh.dt, sh.count)
		if p.Kind() == ProgGeneric {
			continue
		}
		seq, _ := drain(p.Cursor())
		if int64(len(seq)) != p.Runs() {
			t.Fatalf("%s: cursor drained %d runs, program claims %d", sh.name, len(seq), p.Runs())
		}
		for i, b := range seq {
			off, n := p.RunAt(int64(i))
			if off != b.Off || n != b.Len {
				t.Errorf("%s: RunAt(%d) = (%d,%d), sequence (%d,%d)", sh.name, i, off, n, b.Off, b.Len)
			}
		}
	}
}
