package datatype

import "fmt"

// Array storage orders for TypeSubarray, mirroring MPI_ORDER_C and
// MPI_ORDER_FORTRAN.
const (
	OrderC = iota
	OrderFortran
)

// TypeSubarray mirrors MPI_Type_create_subarray: an n-dimensional sub-block
// of an n-dimensional array. sizes gives the full array's extent in each
// dimension (in elements of old), subsizes the sub-block's, and starts the
// sub-block's origin. With OrderC dimension 0 varies slowest; OrderFortran
// reverses that. The resulting type has lower bound 0 and extent equal to
// the whole array, so consecutive counts tile consecutive arrays — exactly
// the layout a multi-dimensional domain decomposition exchanges (the
// (de)composition workloads the paper's introduction motivates).
func TypeSubarray(sizes, subsizes, starts []int, order int, old *Type) (*Type, error) {
	if old == nil {
		return nil, errNilType
	}
	n := len(sizes)
	if n == 0 || len(subsizes) != n || len(starts) != n {
		return nil, fmt.Errorf("datatype: subarray dims disagree: %d/%d/%d",
			len(sizes), len(subsizes), len(starts))
	}
	for i := 0; i < n; i++ {
		if sizes[i] <= 0 {
			return nil, fmt.Errorf("datatype: subarray size[%d]=%d", i, sizes[i])
		}
		if subsizes[i] <= 0 || subsizes[i] > sizes[i] {
			return nil, fmt.Errorf("datatype: subarray subsize[%d]=%d of %d", i, subsizes[i], sizes[i])
		}
		if starts[i] < 0 || starts[i]+subsizes[i] > sizes[i] {
			return nil, fmt.Errorf("datatype: subarray start[%d]=%d overflows", i, starts[i])
		}
	}
	dims := make([]int, n)
	for i := range dims {
		dims[i] = i
	}
	switch order {
	case OrderC:
		// dims[n-1] is fastest-varying already.
	case OrderFortran:
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			dims[i], dims[j] = dims[j], dims[i]
		}
	default:
		return nil, fmt.Errorf("datatype: bad subarray order %d", order)
	}

	// Build from the fastest-varying dimension outward. After processing a
	// dimension d, t describes subsizes[d] rows positioned at starts[d],
	// resized to span the full sizes[d] rows.
	t := old
	rowExtent := old.Extent() // extent of one element of the current dim
	for k := n - 1; k >= 0; k-- {
		d := dims[k]
		var err error
		if k == n-1 {
			// Fastest dimension: a contiguous run of elements.
			t, err = TypeContiguous(subsizes[d], old)
		} else {
			t, err = TypeHvector(subsizes[d], 1, rowExtent, t)
		}
		if err != nil {
			return nil, err
		}
		// Shift to the start index and pad to the full dimension.
		if starts[d] > 0 {
			t, err = TypeHindexed([]int{1}, []int64{int64(starts[d]) * rowExtent}, t)
			if err != nil {
				return nil, err
			}
		}
		rowExtent *= int64(sizes[d])
		t, err = TypeResized(t, 0, rowExtent)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}
