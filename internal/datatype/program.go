package datatype

import "fmt"

// This file is the datatype compiler: Compile canonicalizes a (type, count)
// message into a layout *program* — a handful of nested-stride descriptors or
// an explicit run table — that pack/unpack engines replay instead of
// re-walking the dataloop tree through the interpreted Cursor. TEMPI
// (Pearson et al.) showed order-of-magnitude pack gains from exactly this
// canonicalization; the contract here is stricter than TEMPI's: a compiled
// program must emit the *identical* maximal-run sequence the Cursor emits
// (same offsets, same lengths, same order), so staging bytes, run counts and
// therefore the simulator's virtual cost are bit-for-bit unchanged. Shapes
// whose run sequence the compiler cannot reproduce exactly (cross-boundary
// run coalescing, very deep nesting with very many runs) fall back to
// ProgGeneric, which replays through the interpreted Cursor.

// ProgKind classifies a compiled layout program.
type ProgKind int

// The program kinds, from most to least canonical.
const (
	// ProgContig is a single contiguous run: pack is one memcpy.
	ProgContig ProgKind = iota
	// ProgStrided is a fixed-length block replicated under up to
	// maxProgDims nested uniform strides (1D vectors, 2D matrix columns,
	// deeper subarray nests). Run i's offset is a mixed-radix sum; the
	// sequential cursor advances with two integer adds per run.
	ProgStrided
	// ProgIndexed is an explicit run table (offset, length), the
	// canonical form of indexed/struct layouts; a uniform block length is
	// detected so fixed-block replay needs no length lookup.
	ProgIndexed
	// ProgGeneric marks a shape the compiler does not canonicalize; its
	// cursor wraps the interpreted datatype Cursor.
	ProgGeneric
)

func (k ProgKind) String() string {
	switch k {
	case ProgContig:
		return "contig"
	case ProgStrided:
		return "strided"
	case ProgIndexed:
		return "indexed"
	case ProgGeneric:
		return "generic"
	}
	return "unknown"
}

const (
	// maxProgDims bounds the stride nesting a ProgStrided program carries;
	// deeper nests are materialized into a run table or left generic.
	maxProgDims = 8
	// maxProgRuns bounds the run table a ProgIndexed program materializes;
	// beyond it the shape stays generic (the table would cost more memory
	// than the walk it saves).
	maxProgRuns = 1 << 16
)

// progDim is one stride level of a ProgStrided program, outermost first.
type progDim struct {
	n      int64 // iterations at this level
	stride int64 // byte stride between consecutive iterations
}

// Program is a compiled layout: the canonical replay form of one
// (type, count) message. Programs are immutable and safe to share; obtain a
// cursor per concurrent walk. The zero value is not valid — use Compile.
type Program struct {
	kind  ProgKind
	t     *Type
	count int

	bytes int64 // total data bytes of the message
	runs  int64 // maximal contiguous runs; -1 when unknown (ProgGeneric)

	off0   int64 // first-run offset (ProgContig / ProgStrided)
	runLen int64 // uniform run length (ProgContig / ProgStrided / uniform ProgIndexed)

	dims []progDim // ProgStrided stride levels, outermost first

	offs []int64 // ProgIndexed run offsets in traversal order
	lens []int64 // ProgIndexed run lengths; nil when uniform (runLen applies)

	ascending bool // runs are emitted in non-decreasing offset order
}

// Compile canonicalizes count instances of t into a layout program. It never
// fails: shapes the compiler cannot canonicalize compile to a ProgGeneric
// program whose cursor replays the interpreted walk. Compile is pure and
// deterministic; callers cache programs keyed by (type, count).
func Compile(t *Type, count int) *Program {
	p := &Program{t: t, count: count, ascending: true}
	lp := messageLoop(t, count)
	p.bytes = lp.dataBytes
	if p.bytes == 0 {
		// Empty message: a contig program of zero runs.
		p.kind = ProgContig
		return p
	}
	if off, block, dims, ok := stridedShape(lp, 0); ok {
		dims = foldDims(dims)
		if runs, fits := dimRuns(dims); fits && stridedCanonical(dims, block) {
			p.off0 = off
			p.runLen = block
			p.dims = dims
			p.runs = runs
			p.ascending = stridedAscending(dims, block)
			if len(dims) == 0 {
				p.kind = ProgContig
			} else {
				p.kind = ProgStrided
			}
			return p
		}
	}
	// Materialize the exact maximal-run sequence. Flatten IS the cursor
	// walk, so equality with the interpreted path holds by construction.
	blocks, trunc := Flatten(t, count, maxProgRuns)
	if trunc {
		p.kind = ProgGeneric
		p.runs = -1
		p.ascending = false
		return p
	}
	p.kind = ProgIndexed
	p.runs = int64(len(blocks))
	p.offs = make([]int64, len(blocks))
	uniform := true
	for i, b := range blocks {
		p.offs[i] = b.Off
		if i == 0 {
			p.runLen = b.Len
		} else {
			if b.Len != p.runLen {
				uniform = false
			}
			if b.Off < p.offs[i-1] {
				p.ascending = false
			}
		}
	}
	if !uniform {
		p.lens = make([]int64, len(blocks))
		for i, b := range blocks {
			p.lens[i] = b.Len
		}
		p.runLen = 0
	}
	return p
}

// stridedShape extracts (origin offset, block length, stride dims) from a
// dataloop that is a pure nest of vectors over one contiguous block,
// tolerating single-part indexed wrappers (which only displace the origin).
func stridedShape(lp *loop, depth int) (off, block int64, dims []progDim, ok bool) {
	if depth > maxProgDims {
		return 0, 0, nil, false
	}
	switch lp.kind {
	case loopContig:
		return 0, lp.bytes, nil, true
	case loopVector:
		cOff, cBlock, cDims, cOK := stridedShape(lp.child, depth+1)
		if !cOK {
			return 0, 0, nil, false
		}
		dims = append([]progDim{{n: int64(lp.count), stride: lp.stride}}, cDims...)
		return cOff, cBlock, dims, true
	case loopIndexed:
		if len(lp.parts) != 1 {
			return 0, 0, nil, false
		}
		cOff, cBlock, cDims, cOK := stridedShape(lp.parts[0].child, depth+1)
		if !cOK {
			return 0, 0, nil, false
		}
		return lp.parts[0].off + cOff, cBlock, cDims, true
	}
	return 0, 0, nil, false
}

// foldDims drops degenerate single-iteration levels; they contribute nothing
// to run enumeration.
func foldDims(dims []progDim) []progDim {
	out := dims[:0]
	for _, d := range dims {
		if d.n > 1 {
			out = append(out, d)
		}
	}
	return out
}

// dimRuns returns the total run count of a stride nest, refusing degenerate
// or absurdly large products.
func dimRuns(dims []progDim) (int64, bool) {
	runs := int64(1)
	for _, d := range dims {
		if d.n <= 0 || runs > maxRunProduct/d.n {
			return 0, false
		}
		runs *= d.n
	}
	return runs, true
}

const maxRunProduct = int64(1) << 40

// stridedCanonical reports whether the stride nest emits exactly the
// cursor's maximal runs — i.e. no two consecutive runs abut. Consecutive
// runs that increment level j (all deeper levels wrapping) are separated by
// stride_j minus the span the deeper levels walked; they abut exactly when
// that delta equals the block length, in which case the cursor would
// coalesce them and the program must not claim the shape.
func stridedCanonical(dims []progDim, block int64) bool {
	sumInner := int64(0)
	for j := len(dims) - 1; j >= 0; j-- {
		if dims[j].stride-sumInner == block {
			return false
		}
		sumInner += (dims[j].n - 1) * dims[j].stride
	}
	return true
}

// stridedAscending reports whether the mixed-radix enumeration emits runs in
// non-decreasing offset order: every consecutive-run delta must be
// non-negative.
func stridedAscending(dims []progDim, block int64) bool {
	sumInner := int64(0)
	for j := len(dims) - 1; j >= 0; j-- {
		if dims[j].stride-sumInner < 0 {
			return false
		}
		sumInner += (dims[j].n - 1) * dims[j].stride
	}
	return true
}

// Kind returns the program's canonical class.
func (p *Program) Kind() ProgKind { return p.kind }

// Type returns the datatype the program was compiled from.
func (p *Program) Type() *Type { return p.t }

// Count returns the instance count the program was compiled for.
func (p *Program) Count() int { return p.count }

// Bytes returns the total data bytes of the message.
func (p *Program) Bytes() int64 { return p.bytes }

// Runs returns the exact maximal contiguous run count, or -1 for a
// ProgGeneric program (whose run count is only known by walking).
func (p *Program) Runs() int64 { return p.runs }

// Dims returns the stride nesting depth: 0 for contig, 1 for a 1D vector,
// 2 for a 2D nest, and so on. Indexed and generic programs report 0.
func (p *Program) Dims() int { return len(p.dims) }

// Ascending reports whether the program emits runs in non-decreasing offset
// order, letting consumers skip sorting (OGR grouping).
func (p *Program) Ascending() bool { return p.ascending }

// RunAt returns run i's (offset, length) by random access, the replay form
// the parallel engine shards. It panics on ProgGeneric programs (use a
// cursor) and on out-of-range i.
func (p *Program) RunAt(i int64) (off, length int64) {
	if i < 0 || i >= p.runs {
		panic("datatype: Program.RunAt out of range")
	}
	switch p.kind {
	case ProgContig:
		return p.off0, p.runLen
	case ProgStrided:
		off = p.off0
		q := i
		for j := len(p.dims) - 1; j >= 0; j-- {
			d := p.dims[j]
			off += (q % d.n) * d.stride
			q /= d.n
		}
		return off, p.runLen
	case ProgIndexed:
		if p.lens != nil {
			return p.offs[i], p.lens[i]
		}
		return p.offs[i], p.runLen
	}
	panic("datatype: RunAt on generic program")
}

// String renders the program compactly (dtinspect's view).
func (p *Program) String() string {
	switch p.kind {
	case ProgContig:
		if p.runs == 0 {
			return "contig empty"
		}
		return fmt.Sprintf("contig [%d,+%d)", p.off0, p.runLen)
	case ProgStrided:
		s := fmt.Sprintf("strided block=%dB off=%d runs=%d", p.runLen, p.off0, p.runs)
		for _, d := range p.dims {
			s += fmt.Sprintf(" [n=%d stride=%d]", d.n, d.stride)
		}
		return s
	case ProgIndexed:
		if p.lens == nil {
			return fmt.Sprintf("indexed fixed-block runs=%d block=%dB", p.runs, p.runLen)
		}
		return fmt.Sprintf("indexed runs=%d (varied lengths)", p.runs)
	case ProgGeneric:
		return "generic (interpreted cursor walk)"
	}
	return "unknown"
}

// RunWalker is the streaming contract shared by the interpreted Cursor and
// the compiled ProgCursor: maximal contiguous runs in datatype order, any
// number of bytes at a time. Both implementations emit the identical
// sequence for the same (type, count).
type RunWalker interface {
	// Next returns up to max bytes of the current run; see Cursor.Next.
	Next(max int64) (off, n int64, ok bool)
	// Remaining reports data bytes not yet returned by Next.
	Remaining() int64
	// Done reports whether the whole message has been consumed.
	Done() bool
}

var (
	_ RunWalker = (*Cursor)(nil)
	_ RunWalker = (*ProgCursor)(nil)
)

// ProgCursor replays a compiled program with the Cursor's streaming
// contract. For canonical programs the advance is O(1) with no allocation;
// for ProgGeneric it wraps an interpreted Cursor. The zero value is not
// valid — use Program.Cursor or Reset.
type ProgCursor struct {
	p         *Program
	remaining int64
	runIdx    int64
	pos       int64 // next byte's offset within the current run
	left      int64 // bytes left in the current run
	base      int64 // current run's start offset (ProgStrided bookkeeping)
	idx       [maxProgDims]int64
	gen       *Cursor // ProgGeneric fallback
}

// Cursor returns a fresh cursor over the program, positioned at the start.
func (p *Program) Cursor() *ProgCursor {
	c := &ProgCursor{}
	c.Reset(p)
	return c
}

// Reset rewinds the cursor to the start of prog. Resetting onto a canonical
// program allocates nothing, which is what makes warm packers
// allocation-free; resetting onto a ProgGeneric program rebuilds the
// interpreted cursor.
func (c *ProgCursor) Reset(prog *Program) {
	*c = ProgCursor{p: prog, remaining: prog.bytes}
	if prog.kind == ProgGeneric {
		c.gen = NewCursor(prog.t, prog.count)
		return
	}
	if prog.runs == 0 {
		return
	}
	off, n := prog.RunAt(0)
	c.pos, c.left, c.base = off, n, off
}

// Remaining reports the data bytes not yet returned by Next.
func (c *ProgCursor) Remaining() int64 {
	if c.gen != nil {
		return c.gen.Remaining()
	}
	return c.remaining
}

// Done reports whether the whole message has been consumed.
func (c *ProgCursor) Done() bool { return c.Remaining() == 0 }

// Next returns up to max bytes of the current contiguous run, with exactly
// Cursor.Next's contract. max must be positive.
func (c *ProgCursor) Next(max int64) (off, n int64, ok bool) {
	if max <= 0 {
		panic("datatype: ProgCursor.Next with non-positive max")
	}
	if c.gen != nil {
		return c.gen.Next(max)
	}
	if c.remaining == 0 {
		return 0, 0, false
	}
	if c.left == 0 && !c.advance() {
		return 0, 0, false
	}
	off = c.pos
	n = c.left
	if n > max {
		n = max
	}
	c.pos += n
	c.left -= n
	c.remaining -= n
	return off, n, true
}

// advance steps to the next run. The ProgStrided path is the compiled inner
// loop: one counter increment and one add per run, with wrap propagation
// amortizing to O(1).
func (c *ProgCursor) advance() bool {
	c.runIdx++
	if c.runIdx >= c.p.runs {
		return false
	}
	switch c.p.kind {
	case ProgStrided:
		d := c.p.dims
		for j := len(d) - 1; ; j-- {
			c.idx[j]++
			c.base += d[j].stride
			if c.idx[j] < d[j].n {
				break
			}
			c.idx[j] = 0
			c.base -= d[j].n * d[j].stride
			if j == 0 {
				return false // unreachable: runIdx guard fires first
			}
		}
		c.pos, c.left = c.base, c.p.runLen
		return true
	case ProgIndexed:
		c.pos = c.p.offs[c.runIdx]
		if c.p.lens != nil {
			c.left = c.p.lens[c.runIdx]
		} else {
			c.left = c.p.runLen
		}
		return true
	}
	return false // ProgContig has a single run
}
