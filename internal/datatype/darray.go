package datatype

import "fmt"

// Distribution kinds for TypeDarray, mirroring MPI_DISTRIBUTE_*.
const (
	DistributeNone = iota
	DistributeBlock
	DistributeCyclic
)

// DfltDarg selects the default distribution argument
// (MPI_DISTRIBUTE_DFLT_DARG).
const DfltDarg = -1

// TypeDarray mirrors MPI_Type_create_darray: the local piece of an
// ndims-dimensional global array of gsizes[...] elements distributed over a
// process grid of psizes[...] (HPF-style), as seen by process rank of size.
// distribs selects DistributeNone, DistributeBlock or DistributeCyclic per
// dimension; dargs gives the block/cyclic size (DfltDarg for the default).
// The type's extent equals the whole global array, so reading a file written
// with counts of this type round-robins correctly — its principal MPI-IO use.
func TypeDarray(size, rank int, gsizes, distribs, dargs, psizes []int, order int, old *Type) (*Type, error) {
	if old == nil {
		return nil, errNilType
	}
	n := len(gsizes)
	if n == 0 || len(distribs) != n || len(dargs) != n || len(psizes) != n {
		return nil, fmt.Errorf("datatype: darray dims disagree: %d/%d/%d/%d",
			len(gsizes), len(distribs), len(dargs), len(psizes))
	}
	if order != OrderC && order != OrderFortran {
		return nil, fmt.Errorf("datatype: bad darray order %d", order)
	}
	grid := 1
	for i := 0; i < n; i++ {
		if gsizes[i] <= 0 || psizes[i] <= 0 {
			return nil, fmt.Errorf("datatype: darray gsize[%d]=%d psize[%d]=%d",
				i, gsizes[i], i, psizes[i])
		}
		if distribs[i] == DistributeNone && psizes[i] != 1 {
			return nil, fmt.Errorf("datatype: darray dim %d: DistributeNone needs psize 1", i)
		}
		grid *= psizes[i]
	}
	if grid != size {
		return nil, fmt.Errorf("datatype: darray process grid %d != size %d", grid, size)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("datatype: darray rank %d of %d", rank, size)
	}

	// Process coordinates, C-ordered over psizes (dimension 0 slowest).
	coords := make([]int, n)
	r := rank
	for i := 0; i < n; i++ {
		procs := 1
		for j := i + 1; j < n; j++ {
			procs *= psizes[j]
		}
		coords[i] = r / procs
		r %= procs
	}

	// Storage order: build from the fastest-varying dimension outward.
	dims := make([]int, n)
	for i := range dims {
		dims[i] = i
	}
	if order == OrderC {
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			dims[i], dims[j] = dims[j], dims[i]
		}
	}

	t := old
	ext := old.Extent()
	for _, d := range dims {
		gsize, psize, coord := gsizes[d], psizes[d], coords[d]
		var err error
		switch distribs[d] {
		case DistributeNone:
			t, err = dimBlock(t, ext, gsize, 0, gsize)
		case DistributeBlock:
			blk := dargs[d]
			if blk == DfltDarg {
				blk = (gsize + psize - 1) / psize
			}
			if blk <= 0 || blk*psize < gsize {
				return nil, fmt.Errorf("datatype: darray dim %d: block size %d too small for %d/%d",
					d, blk, gsize, psize)
			}
			start := coord * blk
			mysize := gsize - start
			if mysize > blk {
				mysize = blk
			}
			if mysize < 0 {
				mysize = 0
			}
			t, err = dimBlock(t, ext, gsize, start, mysize)
		case DistributeCyclic:
			k := dargs[d]
			if k == DfltDarg {
				k = 1
			}
			if k <= 0 {
				return nil, fmt.Errorf("datatype: darray dim %d: cyclic size %d", d, k)
			}
			t, err = dimCyclic(t, ext, gsize, psize, coord, k)
		default:
			return nil, fmt.Errorf("datatype: darray dim %d: bad distribution %d", d, distribs[d])
		}
		if err != nil {
			return nil, err
		}
		ext *= int64(gsize)
	}
	return t, nil
}

// dimBlock builds one dimension's layout: mysize consecutive elements (each
// an instance of child with extent ext) starting at index start, resized to
// span the full gsize elements.
func dimBlock(child *Type, ext int64, gsize, start, mysize int) (*Type, error) {
	var t *Type
	var err error
	if mysize <= 0 {
		// Empty contribution in this dimension.
		t, err = TypeHvector(0, 1, ext, child)
	} else {
		t, err = TypeHvector(mysize, 1, ext, child)
	}
	if err != nil {
		return nil, err
	}
	if start > 0 && mysize > 0 {
		t, err = TypeHindexed([]int{1}, []int64{int64(start) * ext}, t)
		if err != nil {
			return nil, err
		}
	}
	return TypeResized(t, 0, int64(gsize)*ext)
}

// dimCyclic builds one dimension's cyclic(k) layout for process coord of
// psize, resized to the full gsize elements.
func dimCyclic(child *Type, ext int64, gsize, psize, coord, k int) (*Type, error) {
	stride := int64(psize) * int64(k) * ext
	first := coord * k
	if first >= gsize {
		t, err := TypeHvector(0, 1, ext, child)
		if err != nil {
			return nil, err
		}
		return TypeResized(t, 0, int64(gsize)*ext)
	}
	nb := (gsize - first + psize*k - 1) / (psize * k) // blocks (last may be short)
	lastLen := gsize - (first + (nb-1)*psize*k)
	if lastLen > k {
		lastLen = k
	}
	var t *Type
	var err error
	if lastLen == k {
		t, err = TypeHvector(nb, k, stride, child)
	} else {
		lens := make([]int, nb)
		displs := make([]int64, nb)
		for i := 0; i < nb; i++ {
			lens[i] = k
			displs[i] = int64(i) * stride
		}
		lens[nb-1] = lastLen
		t, err = TypeHindexed(lens, displs, child)
	}
	if err != nil {
		return nil, err
	}
	if first > 0 {
		t, err = TypeHindexed([]int{1}, []int64{int64(first) * ext}, t)
		if err != nil {
			return nil, err
		}
	}
	return TypeResized(t, 0, int64(gsize)*ext)
}
