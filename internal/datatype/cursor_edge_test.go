package datatype

import "testing"

// TestCursorZeroEdges is the table-driven audit of the degenerate (type,
// count) combinations: zero count, zero-size types, zero-extent types, and
// their nestings. Every case must report Done immediately when it carries no
// data, emit exactly its Size()*count bytes otherwise, and never emit a
// zero-length run.
func TestCursorZeroEdges(t *testing.T) {
	zeroExtent := Must(TypeResized(Int32, 0, 0))
	zeroSize := Must(TypeContiguous(0, Int32))
	cases := []struct {
		name     string
		dt       *Type
		count    int
		bytes    int64
		wantRuns int64 // -1 = don't check
	}{
		{"zero-count-basic", Int32, 0, 0, 0},
		{"zero-count-vector", Must(TypeVector(4, 2, 8, Int32)), 0, 0, 0},
		{"zero-size-contig", zeroSize, 3, 0, 0},
		{"zero-size-vector", Must(TypeVector(5, 0, 8, Int32)), 2, 0, 0},
		{"zero-size-indexed", Must(TypeIndexed([]int{0, 0}, []int{0, 4}, Int32)), 2, 0, 0},
		{"zero-size-child", Must(TypeVector(4, 2, 8, zeroSize)), 3, 0, 0},
		{"zero-extent-counted", zeroExtent, 4, 16, -1},
		{"zero-extent-child", Must(TypeVector(3, 2, 5, zeroExtent)), 1, 24, -1},
		{"mixed-zero-len-parts", Must(TypeIndexed([]int{2, 0, 3}, []int{0, 4, 8}, Int32)), 2, 40, -1},
		{"resized-negative-lb", Must(TypeResized(Int32, -8, 24)), 3, 12, 3},
	}
	for _, tc := range cases {
		c := NewCursor(tc.dt, tc.count)
		if c.Remaining() != tc.bytes {
			t.Errorf("%s: Remaining = %d, want %d", tc.name, c.Remaining(), tc.bytes)
		}
		if tc.bytes == 0 && !c.Done() {
			t.Errorf("%s: empty message not Done at construction", tc.name)
		}
		var total, runs int64
		for {
			_, n, ok := c.Next(1 << 30)
			if !ok {
				break
			}
			if n <= 0 {
				t.Fatalf("%s: emitted non-positive run length %d", tc.name, n)
			}
			total += n
			runs++
		}
		if total != tc.bytes {
			t.Errorf("%s: walked %d bytes, want %d", tc.name, total, tc.bytes)
		}
		if tc.wantRuns >= 0 && runs != tc.wantRuns {
			t.Errorf("%s: %d runs, want %d", tc.name, runs, tc.wantRuns)
		}
		if !c.Done() {
			t.Errorf("%s: cursor not Done after drain", tc.name)
		}

		// Flatten must agree with the walk, and Compile must replay it even
		// for the degenerate shapes.
		blocks, trunc := Flatten(tc.dt, tc.count, 0)
		if trunc {
			t.Errorf("%s: unexpected truncation", tc.name)
		}
		var fbytes int64
		for _, b := range blocks {
			fbytes += b.Len
		}
		if fbytes != tc.bytes {
			t.Errorf("%s: flatten covers %d bytes, want %d", tc.name, fbytes, tc.bytes)
		}
		prog, _ := drain(Compile(tc.dt, tc.count).Cursor())
		if len(prog) != len(blocks) {
			t.Errorf("%s: program %d runs, flatten %d", tc.name, len(prog), len(blocks))
			continue
		}
		for i := range blocks {
			if prog[i] != blocks[i] {
				t.Errorf("%s: program run %d = %+v, flatten %+v", tc.name, i, prog[i], blocks[i])
			}
		}
	}
}

// TestFlattenExactLimit pins the (blocks, complete) contract at the
// boundaries: a limit equal to the true run count must return the full
// layout and report it as complete, not truncated.
func TestFlattenExactLimit(t *testing.T) {
	v := Must(TypeVector(8, 2, 5, Int32)) // exactly 8 runs per instance
	full, trunc := Flatten(v, 2, 0)
	if trunc {
		t.Fatal("unlimited flatten reported truncated")
	}
	n := len(full) // 16

	for limit := 1; limit <= n+2; limit++ {
		blocks, trunc := Flatten(v, 2, limit)
		wantLen := limit
		if wantLen > n {
			wantLen = n
		}
		if len(blocks) != wantLen {
			t.Fatalf("limit %d: got %d blocks, want %d", limit, len(blocks), wantLen)
		}
		wantTrunc := limit < n
		if trunc != wantTrunc {
			t.Fatalf("limit %d (of %d runs): truncated = %v, want %v", limit, n, trunc, wantTrunc)
		}
		for i := range blocks {
			if blocks[i] != full[i] {
				t.Fatalf("limit %d: block %d = %+v, want %+v", limit, i, blocks[i], full[i])
			}
		}
	}
}

// TestLayoutStatsExactLimit mirrors the Flatten boundary for the stats path:
// at exactly the run count the stats must not be marked Truncated.
func TestLayoutStatsExactLimit(t *testing.T) {
	v := Must(TypeVector(8, 2, 5, Int32))
	full := LayoutStats(v, 2, 0)
	if full.Truncated {
		t.Fatal("unlimited stats reported truncated")
	}
	at := LayoutStats(v, 2, int(full.Runs))
	if at.Truncated {
		t.Fatalf("stats at exact limit %d reported truncated", full.Runs)
	}
	if at != full {
		t.Fatalf("stats at exact limit differ: %+v vs %+v", at, full)
	}
	under := LayoutStats(v, 2, int(full.Runs)-1)
	if !under.Truncated {
		t.Fatal("stats one under the run count not reported truncated")
	}
}

// TestStatsExtrapolate covers the explicit consumption path for truncated
// flattens: scaling preserves the observed average run length, never shrinks
// the run count, and leaves complete stats untouched.
func TestStatsExtrapolate(t *testing.T) {
	// Pad the extent so instances do not abut: every run is exactly 8 bytes
	// and the extrapolated run count can land exactly.
	v := Must(TypeResized(Must(TypeVector(64, 2, 5, Int32)), 0, 1280))
	full := LayoutStats(v, 4, 0)
	sample := LayoutStats(v, 4, 16)
	if !sample.Truncated {
		t.Fatal("sample not truncated")
	}

	ex := sample.Extrapolate(full.Bytes)
	if !ex.Truncated {
		t.Fatal("extrapolated stats must stay marked Truncated (they are an estimate)")
	}
	if ex.Bytes != full.Bytes {
		t.Fatalf("extrapolated bytes = %d, want %d", ex.Bytes, full.Bytes)
	}
	if ex.Runs != full.Runs {
		// This layout is uniform, so the estimate should land exactly.
		t.Fatalf("extrapolated runs = %d, want %d", ex.Runs, full.Runs)
	}
	if ex.AvgRun != sample.AvgRun || ex.MinRun != sample.MinRun || ex.MaxRun != sample.MaxRun {
		t.Fatalf("extrapolation changed the per-run shape: %+v", ex)
	}

	// Complete stats pass through unchanged.
	if got := full.Extrapolate(full.Bytes * 2); got != full {
		t.Fatalf("untruncated stats changed: %+v", got)
	}
	// Shrinking targets never reduce the observed run count.
	if got := sample.Extrapolate(sample.Bytes / 2); got.Runs < sample.Runs {
		t.Fatalf("extrapolate shrank runs: %d < %d", got.Runs, sample.Runs)
	}
	// Degenerate inputs are returned unchanged rather than divided by zero.
	empty := Stats{Truncated: true}
	if got := empty.Extrapolate(100); got != empty {
		t.Fatalf("empty stats changed: %+v", got)
	}
}
