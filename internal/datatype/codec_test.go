package datatype

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripVector(t *testing.T) {
	v := Must(TypeVector(128, 2, 4096, Int32))
	enc := Encode(v)
	// A vector of 128 blocks must encode compactly, not as a block list.
	if len(enc) > 64 {
		t.Fatalf("vector encoding is %d bytes; want compact dataloop form", len(enc))
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Size() != v.Size() || dec.Extent() != v.Extent() ||
		dec.LB() != v.LB() || dec.TrueLB() != v.TrueLB() {
		t.Fatalf("decoded %+v != original %+v", dec, v)
	}
	a, _ := Flatten(v, 3, 0)
	b, _ := Flatten(dec, 3, 0)
	if len(a) != len(b) {
		t.Fatalf("flatten mismatch: %d vs %d runs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCodecErrors(t *testing.T) {
	v := Must(TypeVector(4, 1, 2, Int32))
	enc := Encode(v)
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Error("truncated encoding accepted")
	}
	if _, err := Decode(append(append([]byte{}, enc...), 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := Decode([]byte{}); err == nil {
		t.Error("empty encoding accepted")
	}
	// Corrupt the loop tag.
	bad := append([]byte{}, enc...)
	bad[len(bad)-1] = 0xEE
	if _, err := Decode(bad); err == nil {
		// The tag may not be the last byte; only complain if decode also
		// reproduces the original, which would mean corruption went unseen
		// AND changed nothing — impossible for a tail byte.
		t.Error("corrupted encoding accepted")
	}
}

// Property: Encode/Decode round-trips layout and bounds for random trees.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := randomType(rng, 3)
		dec, err := Decode(Encode(dt))
		if err != nil {
			return false
		}
		if dec.Size() != dt.Size() || dec.Extent() != dt.Extent() ||
			dec.LB() != dt.LB() || dec.UB() != dt.UB() ||
			dec.TrueLB() != dt.TrueLB() || dec.TrueExtent() != dt.TrueExtent() {
			return false
		}
		count := rng.Intn(3) + 1
		a, _ := Flatten(dt, count, 0)
		b, _ := Flatten(dec, count, 0)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding random bytes never panics; it either fails or yields a
// consistent type.
func TestCodecFuzzNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := Decode(data)
		if err != nil {
			return true
		}
		// If it decoded, flattening a small count must not panic and must
		// match the declared size.
		blocks, trunc := Flatten(dec, 1, 1<<16)
		if trunc {
			return true
		}
		var total int64
		for _, b := range blocks {
			total += b.Len
		}
		return total == dec.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
