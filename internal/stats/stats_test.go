package stats

import (
	"strings"
	"testing"
)

func TestBytesCopied(t *testing.T) {
	c := &Counters{BytesPacked: 10, BytesUnpacked: 20, BytesStaged: 5}
	if got := c.BytesCopied(); got != 35 {
		t.Fatalf("BytesCopied = %d, want 35", got)
	}
}

func TestAddAccumulates(t *testing.T) {
	a := &Counters{BytesPacked: 1, Registrations: 2, RDMAWritesPosted: 3,
		TypeLayoutsSent: 4, SegmentsPipelined: 5}
	b := &Counters{BytesPacked: 10, Registrations: 20, RDMAWritesPosted: 30,
		TypeLayoutsSent: 40, SegmentsPipelined: 50}
	a.Add(b)
	if a.BytesPacked != 11 || a.Registrations != 22 || a.RDMAWritesPosted != 33 ||
		a.TypeLayoutsSent != 44 || a.SegmentsPipelined != 55 {
		t.Fatalf("Add wrong: %+v", a)
	}
	// The source must be untouched.
	if b.BytesPacked != 10 {
		t.Fatal("Add mutated its argument")
	}
}

func TestReset(t *testing.T) {
	c := &Counters{BytesPacked: 1, Completions: 9, PoolExhausted: 3, PoolDisabled: 2}
	c.Reset()
	if *c != (Counters{}) {
		t.Fatalf("Reset incomplete: %+v", c)
	}
}

func TestStringShowsOnlyNonZero(t *testing.T) {
	c := &Counters{BytesPacked: 7, RegCacheHits: 2}
	out := c.String()
	if !strings.Contains(out, "BytesPacked=7") || !strings.Contains(out, "RegCacheHits=2") {
		t.Fatalf("missing fields:\n%s", out)
	}
	if strings.Contains(out, "BytesUnpacked") {
		t.Fatalf("zero field rendered:\n%s", out)
	}
	// Sorted output: BytesPacked before RegCacheHits.
	if strings.Index(out, "BytesPacked") > strings.Index(out, "RegCacheHits") {
		t.Fatalf("output not sorted:\n%s", out)
	}
	if (&Counters{}).String() != "" {
		t.Fatal("zero counters should render empty")
	}
}

// Add must cover every field: accumulating a struct filled with ones twice
// must yield twos everywhere String reports.
func TestAddCoversAllFields(t *testing.T) {
	ones := Counters{
		BytesPacked: 1, BytesUnpacked: 1, BytesStaged: 1,
		Registrations: 1, RegisteredBytes: 1, RegisteredPages: 1,
		Deregistrations: 1, DeregisteredPages: 1,
		RegCacheHits: 1, RegCacheMisses: 1, RegCacheEvictions: 1,
		DynamicAllocs: 1, DynamicFrees: 1,
		PoolDisabled: 1, PoolOverflow: 1, PoolExhausted: 1,
		SendsPosted: 1, RDMAWritesPosted: 1, RDMAReadsPosted: 1,
		DescriptorsPosted: 1, ListPosts: 1, SGEsPosted: 1, RecvsPosted: 1,
		Completions: 1, ImmediatesSent: 1,
		EagerSends: 1, RendezvousSends: 1, CtrlMessages: 1,
		TypeLayoutsSent: 1, TypeCacheHits: 1, TypeCacheReplaced: 1,
		SegmentsPipelined: 1,
	}
	var sum Counters
	sum.Add(&ones)
	sum.Add(&ones)
	out := sum.String()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasSuffix(line, "=2") {
			t.Fatalf("field not accumulated twice: %q", line)
		}
	}
	if got := strings.Count(out, "\n"); got != 32 {
		t.Fatalf("expected 32 reported fields, got %d:\n%s", got, out)
	}
}
