package stats

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// Histogram is a log2-bucketed histogram of non-negative int64 observations
// (latencies in nanoseconds, bandwidths in MB/s, ...). Bucket i holds values
// v with bitlen(v) == i, i.e. [2^(i-1), 2^i); bucket 0 holds zero. All
// methods are safe for concurrent use, and a nil *Histogram is a valid
// no-op sink.
type Histogram struct {
	mu       sync.Mutex
	counts   [64]int64
	n        int64
	sum      int64
	min, max int64
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.counts[bits.Len64(uint64(v))]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean reports the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the log bucket the quantile rank falls in: the k-th of a bucket's c
// observations is placed k/c of the way between the bucket's edges. The
// estimate is clamped to the observed min/max, so Quantile(1) is exactly the
// maximum. Zero when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.n-1) // 0-indexed fractional rank
	var seen int64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if rank >= float64(seen+c) {
			seen += c
			continue
		}
		if i == 0 {
			return 0 // bucket 0 holds only zeros
		}
		lo := int64(1) << (i - 1) // bucket i holds [2^(i-1), 2^i)
		hi := int64(1) << i
		frac := (rank - float64(seen) + 1) / float64(c)
		v := int64(float64(lo) + frac*float64(hi-lo))
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// Buckets returns the non-empty buckets as (upper-edge, count) pairs in
// ascending order — the raw material for external plotting.
func (h *Histogram) Buckets() (edges []int64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		hi := int64(1) << i
		if i == 0 {
			hi = 0
		}
		edges = append(edges, hi)
		counts = append(counts, c)
	}
	return edges, counts
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	if h == nil {
		return "n=0"
	}
	n := h.Count()
	if n == 0 {
		return "n=0"
	}
	h.mu.Lock()
	min, max := h.min, h.max
	h.mu.Unlock()
	return fmt.Sprintf("n=%d min=%d mean=%.0f p50~%d p99~%d max=%d",
		n, min, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), max)
}

// Gauge is a concurrency-safe instantaneous value that also remembers its
// high-water mark (pool occupancy, pinned pages). A nil *Gauge is a valid
// no-op sink.
type Gauge struct {
	mu   sync.Mutex
	v    int64
	high int64
}

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += d
	if g.v > g.high {
		g.high = g.v
	}
	g.mu.Unlock()
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	if v > g.high {
		g.high = v
	}
	g.mu.Unlock()
}

// Value reports the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// High reports the high-water mark.
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.high
}

// Reset zeroes both the value and the high-water mark.
func (g *Gauge) Reset() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = 0
	g.high = 0
	g.mu.Unlock()
}

// ResetHigh re-bases the high-water mark at the current value, opening a new
// observation window. Long soaks call this between phases so a phase
// snapshot reports that phase's peak, not an earlier phase's.
func (g *Gauge) ResetHigh() {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.high = g.v
	g.mu.Unlock()
}

// Registry is a named collection of histograms and gauges — the metrics
// side of the observability layer. Histogram and Gauge get-or-create their
// instrument, so call sites stay one-liners. All methods are safe for
// concurrent use, and a nil *Registry hands out nil (no-op) instruments.
type Registry struct {
	mu     sync.Mutex
	hists  map[string]*Histogram
	gauges map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:  make(map[string]*Histogram),
		gauges: make(map[string]*Gauge),
	}
}

// Histogram returns the named histogram, creating it on first use. A nil
// registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// ResetHighs re-bases the high-water mark of every registered gauge at its
// current value (see Gauge.ResetHigh) — one call per soak phase boundary.
func (r *Registry) ResetHighs() {
	if r == nil {
		return
	}
	r.mu.Lock()
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	r.mu.Unlock()
	for _, g := range gauges {
		g.ResetHigh()
	}
}

// Histograms returns the registered histogram names, sorted.
func (r *Registry) Histograms() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders every instrument, one per line, sorted by name.
func (r *Registry) String() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	r.mu.Unlock()

	var names []string
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-40s %s\n", n, hists[n])
	}
	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := gauges[n]
		fmt.Fprintf(&b, "%-40s value=%d high=%d\n", n, g.Value(), g.High())
	}
	return b.String()
}

// ObserveBatch records every value in vs under one lock acquisition — the
// bulk form of Observe for callers that buffer samples (see GetSampleBuf).
func (h *Histogram) ObserveBatch(vs []int64) {
	if h == nil || len(vs) == 0 {
		return
	}
	h.mu.Lock()
	for _, v := range vs {
		if v < 0 {
			v = 0
		}
		h.counts[bits.Len64(uint64(v))]++
		if h.n == 0 || v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
		h.n++
		h.sum += v
	}
	h.mu.Unlock()
}

// samplePool recycles the sample buffers handed out by GetSampleBuf so hot
// paths can batch observations without allocating a slice per flush.
var samplePool = sync.Pool{
	New: func() any { s := make([]int64, 0, 256); return &s },
}

// GetSampleBuf returns an empty pooled sample buffer (capacity >= 256).
// Return it with PutSampleBuf once flushed into a histogram.
func GetSampleBuf() *[]int64 {
	return samplePool.Get().(*[]int64)
}

// PutSampleBuf recycles a buffer obtained from GetSampleBuf.
func PutSampleBuf(s *[]int64) {
	*s = (*s)[:0]
	samplePool.Put(s)
}

// NumSizeClasses is the number of distinct SizeClassIndex values: index 0
// for non-positive counts plus one per power-of-two bucket of an int64.
const NumSizeClasses = 65

// sizeClassLabels interns every size-class label once so SizeClass is a
// table lookup (no formatting, no allocation) on the hot observation path.
var sizeClassLabels = func() [NumSizeClasses]string {
	var t [NumSizeClasses]string
	t[0] = "<=0B"
	for p := 0; p < NumSizeClasses-1; p++ {
		v := int64(1) << p
		switch {
		case v >= 1<<30:
			t[p+1] = fmt.Sprintf("<=%dGiB", v>>30)
		case v >= 1<<20:
			t[p+1] = fmt.Sprintf("<=%dMiB", v>>20)
		case v >= 1<<10:
			t[p+1] = fmt.Sprintf("<=%dKiB", v>>10)
		default:
			t[p+1] = fmt.Sprintf("<=%dB", v)
		}
	}
	return t
}()

// SizeClassIndex buckets a byte count into a dense small-integer class:
// 0 for n <= 0, else 1 + ceil(log2(n)). Hot paths key per-class caches by
// this index and only materialize the string label (SizeClassLabel) when
// naming an instrument.
func SizeClassIndex(n int64) int {
	if n <= 0 {
		return 0
	}
	return int(bits.Len64(uint64(n-1))) + 1
}

// SizeClassLabel returns the interned label for a SizeClassIndex value.
func SizeClassLabel(i int) string {
	return sizeClassLabels[i]
}

// SizeClass buckets a byte count into a power-of-two label ("<=32KiB"),
// the message-size dimension of the scheme histograms. The label is
// interned: repeated calls return the same string without allocating.
func SizeClass(n int64) string {
	return sizeClassLabels[SizeClassIndex(n)]
}
