package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	// -5 clamps to 0; sum = 0+1+2+3+100+1000+0 = 1106.
	if got := h.Mean(); got < 157 || got > 159 {
		t.Fatalf("mean = %v", got)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Fatalf("p100 = %d, want clamp to max 1000", q)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("p0 = %d", q)
	}
	edges, counts := h.Buckets()
	if len(edges) != len(counts) || len(edges) == 0 {
		t.Fatalf("buckets: %v %v", edges, counts)
	}
	var n int64
	for _, c := range counts {
		n += c
	}
	if n != 7 {
		t.Fatalf("bucket counts sum to %d", n)
	}
	if s := h.String(); !strings.Contains(s, "n=7") {
		t.Fatalf("String = %q", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	// 1000 uniform observations in [1024, 2048): all land in one log bucket.
	// The upper-edge rule would report 2048 for every quantile; interpolation
	// must spread estimates across the bucket.
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		h.Observe(1024 + int64(i))
	}
	p50 := h.Quantile(0.50)
	if p50 < 1300 || p50 > 1700 {
		t.Fatalf("p50 = %d, want an interior estimate near 1536", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 1950 || p99 > 2023 {
		t.Fatalf("p99 = %d, want near 2013", p99)
	}
	if p50 >= p99 {
		t.Fatalf("p50 %d >= p99 %d", p50, p99)
	}
	if got, max := h.Quantile(1), int64(2023); got != max {
		t.Fatalf("p100 = %d, want observed max %d", got, max)
	}
	// Out-of-range q clamps instead of panicking.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Fatal("out-of-range q not clamped")
	}
}

func TestQuantileAcrossBuckets(t *testing.T) {
	// 90 small values and 10 large ones: p50 must come from the small
	// bucket, p99 from the large one.
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000)
	}
	if p50 := h.Quantile(0.50); p50 < 64 || p50 > 128 {
		t.Fatalf("p50 = %d, want inside [64,128)", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 65536 || p99 > 100000 {
		t.Fatalf("p99 = %d, want inside the large bucket clamped to max", p99)
	}
}

func TestGaugeHighWater(t *testing.T) {
	g := &Gauge{}
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if g.Value() != 2 || g.High() != 7 {
		t.Fatalf("value=%d high=%d", g.Value(), g.High())
	}
	g.Set(10)
	if g.Value() != 10 || g.High() != 10 {
		t.Fatalf("after Set: value=%d high=%d", g.Value(), g.High())
	}
}

func TestGaugeResetWindows(t *testing.T) {
	g := &Gauge{}
	g.Set(100) // phase 1 peak
	g.Set(5)
	g.ResetHigh() // phase boundary: new window starts at the current value
	if g.Value() != 5 || g.High() != 5 {
		t.Fatalf("after ResetHigh: value=%d high=%d", g.Value(), g.High())
	}
	g.Add(10)
	if g.High() != 15 {
		t.Fatalf("phase-2 high = %d, want 15 (not phase-1's 100)", g.High())
	}
	g.Reset()
	if g.Value() != 0 || g.High() != 0 {
		t.Fatalf("after Reset: value=%d high=%d", g.Value(), g.High())
	}
	var nilG *Gauge
	nilG.Reset() // must not panic
	nilG.ResetHigh()

	r := NewRegistry()
	r.Gauge("a").Set(50)
	r.Gauge("a").Set(1)
	r.Gauge("b").Set(9)
	r.ResetHighs()
	if r.Gauge("a").High() != 1 || r.Gauge("b").High() != 9 {
		t.Fatalf("ResetHighs: a=%d b=%d", r.Gauge("a").High(), r.Gauge("b").High())
	}
	var nilReg *Registry
	nilReg.ResetHighs()
}

func TestRegistryNilAndGetOrCreate(t *testing.T) {
	var nilReg *Registry
	nilReg.Histogram("x").Observe(1) // must not panic
	nilReg.Gauge("y").Add(1)
	if nilReg.String() != "" || nilReg.Histograms() != nil {
		t.Fatal("nil registry not empty")
	}

	r := NewRegistry()
	h := r.Histogram("lat_ns/Generic/<=64KiB")
	if r.Histogram("lat_ns/Generic/<=64KiB") != h {
		t.Fatal("Histogram not memoized")
	}
	h.Observe(42)
	r.Gauge("pool_used/pack").Set(3)
	out := r.String()
	for _, want := range []string{"lat_ns/Generic/<=64KiB", "n=1", "pool_used/pack", "value=3 high=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry dump missing %q:\n%s", want, out)
		}
	}
	if names := r.Histograms(); len(names) != 1 || names[0] != "lat_ns/Generic/<=64KiB" {
		t.Fatalf("Histograms() = %v", names)
	}
}

func TestSizeClass(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "<=0B"}, {1, "<=1B"}, {512, "<=512B"}, {513, "<=1KiB"},
		{1024, "<=1KiB"}, {65536, "<=64KiB"}, {65537, "<=128KiB"},
		{1 << 20, "<=1MiB"}, {4 << 20, "<=4MiB"}, {1 << 30, "<=1GiB"},
	}
	for _, c := range cases {
		if got := SizeClass(c.n); got != c.want {
			t.Fatalf("SizeClass(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

// The registry and its instruments are shared across rank goroutines on the
// real-time backend; everything must survive -race (mirrors stats_race_test.go).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Histogram("shared").Observe(int64(w*iters + i))
				r.Gauge("occupancy").Add(1)
				r.Gauge("occupancy").Add(-1)
				if i%50 == 0 {
					_ = r.String()
					_ = r.Histogram("shared").Quantile(0.99)
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Histogram("shared").Count(); got != workers*iters {
		t.Fatalf("observations = %d, want %d", got, workers*iters)
	}
	if v := r.Gauge("occupancy").Value(); v != 0 {
		t.Fatalf("gauge drifted: %d", v)
	}
}
