package stats

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Counters must tolerate concurrent writers (the real-time backend's node
// goroutines) alongside aggregate readers. Run with -race.
func TestCountersConcurrent(t *testing.T) {
	var c Counters
	const writers = 8
	const perWriter = 2000

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				atomic.AddInt64(&c.BytesPacked, 3)
				atomic.AddInt64(&c.Completions, 1)
				atomic.AddInt64(&c.DescriptorsPosted, 1)
			}
		}()
	}
	// Aggregate readers run while the writers hammer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var agg Counters
		for i := 0; i < 200; i++ {
			_ = c.String()
			_ = c.BytesCopied()
			_ = c.Snapshot()
			agg.Add(&c)
		}
	}()
	wg.Wait()

	snap := c.Snapshot()
	if got, want := snap.BytesPacked, int64(writers*perWriter*3); got != want {
		t.Fatalf("BytesPacked = %d, want %d", got, want)
	}
	if got, want := snap.Completions, int64(writers*perWriter); got != want {
		t.Fatalf("Completions = %d, want %d", got, want)
	}
	if got := c.BytesCopied(); got != snap.BytesPacked {
		t.Fatalf("BytesCopied = %d, want %d", got, snap.BytesPacked)
	}
	c.Reset()
	if s := c.String(); s != "" {
		t.Fatalf("after Reset, String() = %q, want empty", s)
	}
}

// Snapshot and fields must cover every field, so Add/Reset cannot silently
// miss a counter added later.
func TestCountersSnapshotCoversAllFields(t *testing.T) {
	var c Counters
	for i, f := range c.fields() {
		*f.p = int64(i + 1)
	}
	snap := c.Snapshot()
	for i, f := range snap.fields() {
		if *f.p != int64(i+1) {
			t.Fatalf("field %s not copied by Snapshot", f.name)
		}
	}
	var sum Counters
	sum.Add(&c)
	sum.Add(&c)
	for i, f := range sum.fields() {
		if *f.p != 2*int64(i+1) {
			t.Fatalf("field %s not accumulated by Add", f.name)
		}
	}
}
