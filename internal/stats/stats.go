// Package stats collects per-rank operation counters for the simulated MPI
// stack. Tests use counters to assert scheme contracts (for example, that the
// Multi-W scheme copies zero payload bytes) and the benchmark harness reports
// them alongside timing figures.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counters accumulates per-rank event counts. All fields count occurrences
// unless the name says Bytes. The zero value is ready to use.
//
// Concurrency: every writer (both backends' fabrics and the protocol layers)
// increments fields with atomic.AddInt64, so one Counters value may be shared
// across the real-time fabric's node goroutines. Aggregate readers
// (BytesCopied, Add, Snapshot, String) load atomically and are safe to call
// while writers run; direct field reads are safe only after the run's
// goroutines have been joined.
type Counters struct {
	// Host memory-copy traffic, split by purpose.
	BytesPacked   int64 // user buffer -> staging (pack)
	BytesUnpacked int64 // staging -> user buffer (unpack)
	BytesStaged   int64 // staging -> staging (e.g. pack buffer -> eager buffer)

	// Memory registration activity.
	Registrations     int64
	RegisteredBytes   int64
	RegisteredPages   int64
	Deregistrations   int64
	DeregisteredPages int64
	RegCacheHits      int64
	RegCacheMisses    int64
	RegCacheEvictions int64

	// Dynamic staging-buffer management.
	DynamicAllocs int64
	DynamicFrees  int64
	PoolDisabled  int64 // staging was needed while segment pools were disabled
	PoolOverflow  int64 // a message needed more slots than the whole pool holds
	PoolExhausted int64 // a pool genuinely ran dry and a transfer parked waiting

	// Verbs-level activity.
	SendsPosted       int64 // channel-semantics sends
	RDMAWritesPosted  int64
	RDMAReadsPosted   int64
	DescriptorsPosted int64 // total descriptors, counting each list element
	ListPosts         int64 // list-post operations (each covers >=1 descriptor)
	SGEsPosted        int64
	RecvsPosted       int64
	Completions       int64
	ImmediatesSent    int64

	// Protocol-level activity.
	EagerSends        int64
	RendezvousSends   int64
	CtrlMessages      int64
	TypeLayoutsSent   int64 // Multi-W datatype representations shipped
	TypeCacheHits     int64 // Multi-W sender-side datatype cache hits
	TypeCacheReplaced int64 // stale versions replaced
	SegmentsPipelined int64 // segments sent through BC-SPUP/RWG-UP pipelines

	// Parallel segment engine and doorbell batching.
	ParallelPacks   int64 // pack steps that fanned out across >1 worker shard
	ParallelUnpacks int64 // unpack steps that fanned out across >1 worker shard
	BatchedWRs      int64 // descriptors posted through multi-descriptor doorbells

	// Fault handling.
	FaultRetries   int64 // transient-fault retries (descriptors, registrations)
	RequestsFailed int64 // requests completed with a fault error
	PeerAborts     int64 // abort notifications received from a peer rank

	// Adaptive scheme tuning (internal/tuner via core.SchemeSelector).
	TunerExplorations  int64 // decisions taken to gather data, not because best
	TunerExploitations int64 // decisions following the current best estimate
	TunerRegretNs      int64 // summed latency paid above the best arm's estimate

	// Service-mode QoS (internal/qos wired through the endpoint).
	QoSAdmitted      int64 // bulk transfers admitted immediately
	QoSParked        int64 // bulk transfers parked by admission control
	QoSRejected      int64 // bulk transfers rejected (parking lot full)
	QoSLaneDeferrals int64 // bulk descriptor batches deferred for window room
	QoSLaneBypass    int64 // latency-lane posts that bypassed a busy bulk queue
	LaneBulkDescs    int64 // descriptors posted tagged with the bulk lane
}

// field pairs a counter's name with a pointer to its value.
type field struct {
	name string
	p    *int64
}

// fields lists every counter field in declaration order. Both c's methods and
// the race tests iterate it so no accessor can miss a field.
func (c *Counters) fields() []field {
	return []field{
		{"BytesPacked", &c.BytesPacked},
		{"BytesUnpacked", &c.BytesUnpacked},
		{"BytesStaged", &c.BytesStaged},
		{"Registrations", &c.Registrations},
		{"RegisteredBytes", &c.RegisteredBytes},
		{"RegisteredPages", &c.RegisteredPages},
		{"Deregistrations", &c.Deregistrations},
		{"DeregisteredPages", &c.DeregisteredPages},
		{"RegCacheHits", &c.RegCacheHits},
		{"RegCacheMisses", &c.RegCacheMisses},
		{"RegCacheEvictions", &c.RegCacheEvictions},
		{"DynamicAllocs", &c.DynamicAllocs},
		{"DynamicFrees", &c.DynamicFrees},
		{"PoolDisabled", &c.PoolDisabled},
		{"PoolOverflow", &c.PoolOverflow},
		{"PoolExhausted", &c.PoolExhausted},
		{"SendsPosted", &c.SendsPosted},
		{"RDMAWritesPosted", &c.RDMAWritesPosted},
		{"RDMAReadsPosted", &c.RDMAReadsPosted},
		{"DescriptorsPosted", &c.DescriptorsPosted},
		{"ListPosts", &c.ListPosts},
		{"SGEsPosted", &c.SGEsPosted},
		{"RecvsPosted", &c.RecvsPosted},
		{"Completions", &c.Completions},
		{"ImmediatesSent", &c.ImmediatesSent},
		{"EagerSends", &c.EagerSends},
		{"RendezvousSends", &c.RendezvousSends},
		{"CtrlMessages", &c.CtrlMessages},
		{"TypeLayoutsSent", &c.TypeLayoutsSent},
		{"TypeCacheHits", &c.TypeCacheHits},
		{"TypeCacheReplaced", &c.TypeCacheReplaced},
		{"SegmentsPipelined", &c.SegmentsPipelined},
		{"ParallelPacks", &c.ParallelPacks},
		{"ParallelUnpacks", &c.ParallelUnpacks},
		{"BatchedWRs", &c.BatchedWRs},
		{"FaultRetries", &c.FaultRetries},
		{"RequestsFailed", &c.RequestsFailed},
		{"PeerAborts", &c.PeerAborts},
		{"TunerExplorations", &c.TunerExplorations},
		{"TunerExploitations", &c.TunerExploitations},
		{"TunerRegretNs", &c.TunerRegretNs},
		{"QoSAdmitted", &c.QoSAdmitted},
		{"QoSParked", &c.QoSParked},
		{"QoSRejected", &c.QoSRejected},
		{"QoSLaneDeferrals", &c.QoSLaneDeferrals},
		{"QoSLaneBypass", &c.QoSLaneBypass},
		{"LaneBulkDescs", &c.LaneBulkDescs},
	}
}

// BytesCopied reports total host copy traffic (pack + unpack + staging).
func (c *Counters) BytesCopied() int64 {
	return atomic.LoadInt64(&c.BytesPacked) +
		atomic.LoadInt64(&c.BytesUnpacked) +
		atomic.LoadInt64(&c.BytesStaged)
}

// Add accumulates o into c. o may be written concurrently; c gains a
// consistent per-field (not cross-field) snapshot of it.
func (c *Counters) Add(o *Counters) {
	of := o.fields()
	for i, f := range c.fields() {
		atomic.AddInt64(f.p, atomic.LoadInt64(of[i].p))
	}
}

// Snapshot returns a plain copy of the counters, loading each field
// atomically so it can be taken while writers run.
func (c *Counters) Snapshot() Counters {
	var out Counters
	of := out.fields()
	for i, f := range c.fields() {
		*of[i].p = atomic.LoadInt64(f.p)
	}
	return out
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	for _, f := range c.fields() {
		atomic.StoreInt64(f.p, 0)
	}
}

// String renders the non-zero counters, one per line, sorted by name.
func (c *Counters) String() string {
	fs := c.fields()
	names := make([]string, 0, len(fs))
	vals := make(map[string]int64, len(fs))
	for _, f := range fs {
		if v := atomic.LoadInt64(f.p); v != 0 {
			names = append(names, f.name)
			vals[f.name] = v
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%s=%d\n", k, vals[k])
	}
	return b.String()
}
