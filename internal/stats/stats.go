// Package stats collects per-rank operation counters for the simulated MPI
// stack. Tests use counters to assert scheme contracts (for example, that the
// Multi-W scheme copies zero payload bytes) and the benchmark harness reports
// them alongside timing figures.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters accumulates per-rank event counts. All fields count occurrences
// unless the name says Bytes. The zero value is ready to use.
type Counters struct {
	// Host memory-copy traffic, split by purpose.
	BytesPacked   int64 // user buffer -> staging (pack)
	BytesUnpacked int64 // staging -> user buffer (unpack)
	BytesStaged   int64 // staging -> staging (e.g. pack buffer -> eager buffer)

	// Memory registration activity.
	Registrations     int64
	RegisteredBytes   int64
	RegisteredPages   int64
	Deregistrations   int64
	DeregisteredPages int64
	RegCacheHits      int64
	RegCacheMisses    int64
	RegCacheEvictions int64

	// Dynamic staging-buffer management.
	DynamicAllocs int64
	DynamicFrees  int64
	PoolExhausted int64 // times a segment pool ran dry and fell back

	// Verbs-level activity.
	SendsPosted       int64 // channel-semantics sends
	RDMAWritesPosted  int64
	RDMAReadsPosted   int64
	DescriptorsPosted int64 // total descriptors, counting each list element
	ListPosts         int64 // list-post operations (each covers >=1 descriptor)
	SGEsPosted        int64
	RecvsPosted       int64
	Completions       int64
	ImmediatesSent    int64

	// Protocol-level activity.
	EagerSends        int64
	RendezvousSends   int64
	CtrlMessages      int64
	TypeLayoutsSent   int64 // Multi-W datatype representations shipped
	TypeCacheHits     int64 // Multi-W sender-side datatype cache hits
	TypeCacheReplaced int64 // stale versions replaced
	SegmentsPipelined int64 // segments sent through BC-SPUP/RWG-UP pipelines

	// Fault handling.
	FaultRetries   int64 // transient-fault retries (descriptors, registrations)
	RequestsFailed int64 // requests completed with a fault error
	PeerAborts     int64 // abort notifications received from a peer rank
}

// BytesCopied reports total host copy traffic (pack + unpack + staging).
func (c *Counters) BytesCopied() int64 {
	return c.BytesPacked + c.BytesUnpacked + c.BytesStaged
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.BytesPacked += o.BytesPacked
	c.BytesUnpacked += o.BytesUnpacked
	c.BytesStaged += o.BytesStaged
	c.Registrations += o.Registrations
	c.RegisteredBytes += o.RegisteredBytes
	c.RegisteredPages += o.RegisteredPages
	c.Deregistrations += o.Deregistrations
	c.DeregisteredPages += o.DeregisteredPages
	c.RegCacheHits += o.RegCacheHits
	c.RegCacheMisses += o.RegCacheMisses
	c.RegCacheEvictions += o.RegCacheEvictions
	c.DynamicAllocs += o.DynamicAllocs
	c.DynamicFrees += o.DynamicFrees
	c.PoolExhausted += o.PoolExhausted
	c.SendsPosted += o.SendsPosted
	c.RDMAWritesPosted += o.RDMAWritesPosted
	c.RDMAReadsPosted += o.RDMAReadsPosted
	c.DescriptorsPosted += o.DescriptorsPosted
	c.ListPosts += o.ListPosts
	c.SGEsPosted += o.SGEsPosted
	c.RecvsPosted += o.RecvsPosted
	c.Completions += o.Completions
	c.ImmediatesSent += o.ImmediatesSent
	c.EagerSends += o.EagerSends
	c.RendezvousSends += o.RendezvousSends
	c.CtrlMessages += o.CtrlMessages
	c.TypeLayoutsSent += o.TypeLayoutsSent
	c.TypeCacheHits += o.TypeCacheHits
	c.TypeCacheReplaced += o.TypeCacheReplaced
	c.SegmentsPipelined += o.SegmentsPipelined
	c.FaultRetries += o.FaultRetries
	c.RequestsFailed += o.RequestsFailed
	c.PeerAborts += o.PeerAborts
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// String renders the non-zero counters, one per line, sorted by name.
func (c *Counters) String() string {
	entries := map[string]int64{
		"BytesPacked":       c.BytesPacked,
		"BytesUnpacked":     c.BytesUnpacked,
		"BytesStaged":       c.BytesStaged,
		"Registrations":     c.Registrations,
		"RegisteredBytes":   c.RegisteredBytes,
		"RegisteredPages":   c.RegisteredPages,
		"Deregistrations":   c.Deregistrations,
		"DeregisteredPages": c.DeregisteredPages,
		"RegCacheHits":      c.RegCacheHits,
		"RegCacheMisses":    c.RegCacheMisses,
		"RegCacheEvictions": c.RegCacheEvictions,
		"DynamicAllocs":     c.DynamicAllocs,
		"DynamicFrees":      c.DynamicFrees,
		"PoolExhausted":     c.PoolExhausted,
		"SendsPosted":       c.SendsPosted,
		"RDMAWritesPosted":  c.RDMAWritesPosted,
		"RDMAReadsPosted":   c.RDMAReadsPosted,
		"DescriptorsPosted": c.DescriptorsPosted,
		"ListPosts":         c.ListPosts,
		"SGEsPosted":        c.SGEsPosted,
		"RecvsPosted":       c.RecvsPosted,
		"Completions":       c.Completions,
		"ImmediatesSent":    c.ImmediatesSent,
		"EagerSends":        c.EagerSends,
		"RendezvousSends":   c.RendezvousSends,
		"CtrlMessages":      c.CtrlMessages,
		"TypeLayoutsSent":   c.TypeLayoutsSent,
		"TypeCacheHits":     c.TypeCacheHits,
		"TypeCacheReplaced": c.TypeCacheReplaced,
		"SegmentsPipelined": c.SegmentsPipelined,
		"FaultRetries":      c.FaultRetries,
		"RequestsFailed":    c.RequestsFailed,
		"PeerAborts":        c.PeerAborts,
	}
	names := make([]string, 0, len(entries))
	for k, v := range entries {
		if v != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		fmt.Fprintf(&b, "%s=%d\n", k, entries[k])
	}
	return b.String()
}
