package tuner

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
)

// TestSharedTablesCollapsePeers drives identical shapes from many peers and
// checks they all land in one tuning context under the default (shared)
// policy, and in per-peer contexts only on demand.
func TestSharedTablesCollapsePeers(t *testing.T) {
	shared := New(DefaultConfig())
	cfg := DefaultConfig()
	cfg.PerPeerTables = true
	perPeer := New(cfg)

	for peer := 0; peer < 64; peer++ {
		in := noncontig()
		in.Peer = peer
		shared.Choose(in)
		shared.Observe(in, core.SchemeBCSPUP, 1000)
		perPeer.Choose(in)
		perPeer.Observe(in, core.SchemeBCSPUP, 1000)
	}
	if got := shared.Keys(); got != 1 {
		t.Errorf("shared tuner holds %d keys for one shape from 64 peers, want 1", got)
	}
	if got := perPeer.Keys(); got != 64 {
		t.Errorf("per-peer tuner holds %d keys, want 64", got)
	}
	// All 64 peers' samples pooled under the shared key.
	e := shared.entries[Key{Peer: SharedPeer, Class: KeyFor(noncontig()).Class,
		SRun: KeyFor(noncontig()).SRun, RRun: KeyFor(noncontig()).RRun, RRuns: KeyFor(noncontig()).RRuns}]
	if e == nil {
		t.Fatal("shared entry not found under SharedPeer key")
	}
	if a := e.find(core.SchemeBCSPUP); a == nil || a.n != 64 {
		t.Fatalf("shared arm pooled %v samples, want 64", a)
	}
}

// TestMaxKeysCapFallsBackToStatic fills the table to its cap and checks that
// unseen shapes stop growing it and fall back to the static decision.
func TestMaxKeysCapFallsBackToStatic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxKeys = 4
	cfg.PerPeerTables = true // peer axis gives us cheap distinct keys
	tu := New(cfg)
	for peer := 0; peer < 4; peer++ {
		in := noncontig()
		in.Peer = peer
		tu.Choose(in)
	}
	if got := tu.Keys(); got != 4 {
		t.Fatalf("table holds %d keys, want 4", got)
	}
	over := noncontig()
	over.Peer = 99
	d := tu.Choose(over)
	if d.Scheme != over.Static {
		t.Errorf("over-cap choice = %v, want static %v", d.Scheme, over.Static)
	}
	if tu.Observe(over, core.SchemeBCSPUP, 1000) != 0 {
		t.Error("over-cap observe reported regret")
	}
	if got := tu.Keys(); got != 4 {
		t.Errorf("table grew to %d keys past the cap", got)
	}
	// Known keys keep learning at the cap.
	in := noncontig()
	in.Peer = 2
	if d := tu.Choose(in); d.Rationale == "table at key cap, static fallback" {
		t.Error("known key hit the cap fallback")
	}
}

// TestImportV1MigratesPerPeerTables feeds a handcrafted v1 (per-peer) table
// to a shared-table tuner and checks peers merge arm-by-arm: samples and
// sums add, the first prior wins, and the table round-trips as v2.
func TestImportV1MigratesPerPeerTables(t *testing.T) {
	k := KeyFor(noncontig())
	mk := func(peer int) Key { k2 := k; k2.Peer = peer; return k2 }
	v1 := tableDoc{
		Version: 1,
		Entries: []entryDoc{
			{Key: mk(0), Arms: []armDoc{
				{Scheme: core.SchemeBCSPUP.String(), PriorNs: 100, N: 3, SumNs: 3000},
				{Scheme: core.SchemeMultiW.String(), PriorNs: 200, N: 1, SumNs: 9000},
			}},
			{Key: mk(1), Arms: []armDoc{
				{Scheme: core.SchemeBCSPUP.String(), PriorNs: 150, N: 2, SumNs: 2000},
			}},
			{Key: mk(2), Arms: []armDoc{
				{Scheme: core.SchemeGeneric.String(), PriorNs: 400, N: 5, SumNs: 50000},
			}},
		},
	}
	data, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}

	tu := New(DefaultConfig())
	if err := tu.ImportJSON(data); err != nil {
		t.Fatalf("v1 import: %v", err)
	}
	if got := tu.Keys(); got != 1 {
		t.Fatalf("migrated table holds %d keys, want 1 (peers collapsed)", got)
	}
	e := tu.entries[tu.normalizeKey(mk(0))]
	if e == nil {
		t.Fatal("migrated entry missing")
	}
	bc := e.find(core.SchemeBCSPUP)
	if bc == nil || bc.n != 5 || bc.sum != 5000 || bc.prior != 100 {
		t.Fatalf("BC-SPUP merge: got %+v, want n=5 sum=5000 prior=100", bc)
	}
	if g := e.find(core.SchemeGeneric); g == nil || g.n != 5 {
		t.Fatal("Generic arm from third peer not merged in")
	}

	// Round-trip: the migrated table exports as v2 and re-imports cleanly.
	out, err := tu.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc tableDoc
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Version != 2 {
		t.Fatalf("exported version %d, want 2", doc.Version)
	}
	if len(doc.Entries) != 1 || doc.Entries[0].Key.Peer != SharedPeer {
		t.Fatalf("exported entries %+v, want one SharedPeer entry", doc.Entries)
	}
	tu2 := New(DefaultConfig())
	if err := tu2.ImportJSON(out); err != nil {
		t.Fatalf("v2 re-import: %v", err)
	}
	if tu2.Keys() != 1 {
		t.Fatal("v2 re-import changed cardinality")
	}

	// A per-peer tuner importing the same v1 doc keeps peers separate.
	cfg := DefaultConfig()
	cfg.PerPeerTables = true
	tp := New(cfg)
	if err := tp.ImportJSON(data); err != nil {
		t.Fatal(err)
	}
	if got := tp.Keys(); got != 3 {
		t.Fatalf("per-peer import holds %d keys, want 3", got)
	}
}

// TestImportRejectsUnknownVersion keeps forward compatibility honest.
func TestImportRejectsUnknownVersion(t *testing.T) {
	tu := New(DefaultConfig())
	if err := tu.ImportJSON([]byte(`{"version":3,"entries":[]}`)); err == nil {
		t.Fatal("version 3 accepted")
	}
}
