package tuner

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
)

// Tuning tables persist as JSON so a calibration sweep (dtbench -tune-out)
// can warm-start later runs (dtbench -tune-in, usually with exploration
// off). The document stores each arm's prior, sample count, and raw latency
// sum, so a re-imported table reproduces the exporting tuner's blended means
// — and therefore its selections — exactly.
//
// Version history:
//   - v1: per-peer keys only (Key.Peer is a concrete rank).
//   - v2: keys may carry Peer = SharedPeer (-1) when the exporting tuner
//     shared tables across peers (the current default). v2 documents may
//     also carry a "backend" tag naming the verbs backend the measurements
//     come from; tables without the tag (exported before it existed) still
//     import — see Config.Backend for the mismatch rule.
//
// Import accepts both. Keys are normalized through the importing tuner's
// sharing policy: loading a v1 per-peer table into a shared-table tuner
// collapses its peers onto SharedPeer, merging duplicate entries arm-by-arm
// (samples and sums add; the first-seen prior wins, and eliminations are
// recomputed from the merged estimates). That is the migration path for
// tables calibrated before peer sharing existed.

const tableVersion = 2

type tableDoc struct {
	Version int `json:"version"`
	// Backend tags which verbs backend produced the measurements; import
	// rejects a mismatch (see Config.Backend). Empty in tables exported
	// before the tag existed — those import anywhere.
	Backend string     `json:"backend,omitempty"`
	Entries []entryDoc `json:"entries"`
}

type entryDoc struct {
	Key  Key      `json:"key"`
	Arms []armDoc `json:"arms"`
}

type armDoc struct {
	Scheme     string  `json:"scheme"`
	PriorNs    float64 `json:"prior_ns"`
	N          int64   `json:"n"`
	SumNs      float64 `json:"sum_ns"`
	MeanNs     float64 `json:"mean_ns"` // informational: blended estimate at export
	Eliminated bool    `json:"eliminated,omitempty"`
}

var schemeNames = map[string]core.Scheme{
	core.SchemeGeneric.String(): core.SchemeGeneric,
	core.SchemeBCSPUP.String():  core.SchemeBCSPUP,
	core.SchemeRWGUP.String():   core.SchemeRWGUP,
	core.SchemePRRS.String():    core.SchemePRRS,
	core.SchemeMultiW.String():  core.SchemeMultiW,
}

// ExportJSON serializes the tuning table, entries sorted by key so equal
// tables produce byte-equal documents.
func (t *Tuner) ExportJSON() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	doc := tableDoc{Version: tableVersion, Backend: t.cfg.Backend}
	keys := make([]Key, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	for _, k := range keys {
		e := t.entries[k]
		ed := entryDoc{Key: k}
		for _, a := range e.arms {
			ed.Arms = append(ed.Arms, armDoc{
				Scheme:     a.scheme.String(),
				PriorNs:    a.prior,
				N:          a.n,
				SumNs:      a.sum,
				MeanNs:     a.mean(t.cfg.PriorWeight),
				Eliminated: a.eliminated,
			})
		}
		doc.Entries = append(doc.Entries, ed)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// ImportJSON replaces the tuning table with the document's contents,
// normalizing keys through the importing tuner's sharing policy (see the
// version history above for the v1 migration semantics).
func (t *Tuner) ImportJSON(data []byte) error {
	var doc tableDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("tuner: bad table: %w", err)
	}
	if doc.Version != 1 && doc.Version != tableVersion {
		return fmt.Errorf("tuner: table version %d, want 1 or %d", doc.Version, tableVersion)
	}
	if doc.Backend != "" && t.cfg.Backend != "" && doc.Backend != t.cfg.Backend {
		return fmt.Errorf("tuner: table learned on backend %q cannot warm-start %q",
			doc.Backend, t.cfg.Backend)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	entries := make(map[Key]*entry, len(doc.Entries))
	for _, ed := range doc.Entries {
		k := t.normalizeKey(ed.Key)
		e := entries[k]
		merging := e != nil
		if e == nil {
			e = &entry{}
			entries[k] = e
		}
		for _, ad := range ed.Arms {
			s, ok := schemeNames[ad.Scheme]
			if !ok {
				return fmt.Errorf("tuner: unknown scheme %q in table", ad.Scheme)
			}
			a := e.find(s)
			switch {
			case a == nil:
				e.arms = append(e.arms, &arm{
					scheme:     s,
					prior:      ad.PriorNs,
					n:          ad.N,
					sum:        ad.SumNs,
					eliminated: ad.Eliminated,
				})
			case merging:
				// Same shape observed from a different peer in a per-peer
				// table: pool the evidence. The first-seen prior stands (all
				// peers of one shape price identically under one model).
				a.n += ad.N
				a.sum += ad.SumNs
			default:
				return fmt.Errorf("tuner: duplicate arm %q under key %+v", ad.Scheme, ed.Key)
			}
		}
		if merging {
			// Merged means moved; eliminations must reflect the pooled view.
			e.reEliminate(&t.cfg)
		}
	}
	t.entries = entries
	return nil
}

// SaveFile writes the table to path.
func (t *Tuner) SaveFile(path string) error {
	data, err := t.ExportJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadFile reads a table previously written by SaveFile.
func (t *Tuner) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return t.ImportJSON(data)
}

func keyLess(a, b Key) bool {
	if a.Peer != b.Peer {
		return a.Peer < b.Peer
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.SRun != b.SRun {
		return a.SRun < b.SRun
	}
	if a.RRun != b.RRun {
		return a.RRun < b.RRun
	}
	return a.RRuns < b.RRuns
}
