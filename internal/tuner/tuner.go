// Package tuner provides measurement-driven per-message transfer-scheme
// selection, replacing the static Section 6 thresholds of SchemeAuto.
//
// Which datatype path wins is machine- and layout-dependent (Hunold et al.,
// "MPI Derived Datatypes: Performance Expectations and Status Quo"; Eijkhout,
// "Performance of MPI sends of non-contiguous data"), so instead of trusting
// seed-time constants the Tuner learns the crossovers online: it keys
// decisions by (peer rank, layout-signature buckets, size class), keeps one
// bandit arm per eligible scheme seeded with a cost-model prior, and updates
// the arms from the completion-path latency feedback core.Endpoint already
// measures. Selection is epsilon-greedy with a decaying exploration rate and
// successive elimination of far-worse arms; the RNG is seeded, and on the
// sim backend (single-threaded event loop, virtual time) the whole decision
// sequence is deterministic and replayable.
//
// Tables export/import as JSON so a calibration sweep can warm-start
// production runs (dtbench -tune-out / -tune-in).
package tuner

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/verbs"
)

// Key identifies one tuning context: which peer the message comes from and
// the bucketed shape of the transfer. Bucketing by log2 of the average run
// lengths and the receiver run count keeps the table small while separating
// the regimes where different schemes win.
type Key struct {
	Peer  int    `json:"peer"`
	Class string `json:"class"` // stats.SizeClass of the payload
	SRun  uint8  `json:"srun"`  // log2 bucket of sender average run length
	RRun  uint8  `json:"rrun"`  // log2 bucket of receiver average run length
	RRuns uint8  `json:"rruns"` // log2 bucket of receiver run count
}

// SharedPeer is the Key.Peer value used when tables are shared across peers
// (the default): every peer's feedback folds into one arm set per shape.
const SharedPeer = -1

// DefaultMaxKeys bounds the tuning-table cardinality when Config.MaxKeys is
// zero. With shared tables the key space is (size class × run buckets) and
// stays far below this; the cap is a backstop for per-peer tables at large
// world sizes.
const DefaultMaxKeys = 4096

// bucket maps a positive quantity to its log2 bucket (bits.Len64); zero and
// negative values share bucket 0.
func bucket(v int64) uint8 {
	if v <= 0 {
		return 0
	}
	return uint8(bits.Len64(uint64(v)))
}

// KeyFor derives the tuning key for one message shape.
func KeyFor(in core.SelectorInput) Key {
	return Key{
		Peer:  in.Peer,
		Class: stats.SizeClass(in.Bytes),
		SRun:  bucket(in.SAvg),
		RRun:  bucket(in.RAvg),
		RRuns: bucket(in.RRuns),
	}
}

// Signature is the human-readable layout signature dtinspect prints so users
// can correlate tuning-table keys with their datatypes.
type Signature struct {
	Runs      int64  // flattened contiguous run count
	AvgRun    int64  // average run length in bytes
	Bytes     int64  // total payload bytes
	RunBucket uint8  // log2 bucket of AvgRun (Key.SRun / Key.RRun)
	CntBucket uint8  // log2 bucket of Runs (Key.RRuns)
	Class     string // size class (Key.Class)
}

// SignatureOf computes the layout signature for a flattened layout summary.
func SignatureOf(runs, avgRun, bytes int64) Signature {
	return Signature{
		Runs: runs, AvgRun: avgRun, Bytes: bytes,
		RunBucket: bucket(avgRun),
		CntBucket: bucket(runs),
		Class:     stats.SizeClass(bytes),
	}
}

func (s Signature) String() string {
	return fmt.Sprintf("runs=%d avg_run=%dB bytes=%d class=%s run_bucket=%d cnt_bucket=%d",
		s.Runs, s.AvgRun, s.Bytes, s.Class, s.RunBucket, s.CntBucket)
}

// Config holds the tuner's policy knobs. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Seed seeds the exploration RNG. Equal seeds over equal decision
	// sequences reproduce equal choices (the sim backend guarantees the
	// sequence itself is deterministic).
	Seed int64

	// Epsilon is the initial exploration probability; the effective rate
	// decays as Epsilon·DecayN/(DecayN+n) with n the key's sample count, so
	// converged keys almost always exploit.
	Epsilon float64
	DecayN  int

	// PriorWeight is how many pseudo-samples the cost-model prior counts
	// for; real measurements quickly dominate it.
	PriorWeight float64

	// Successive elimination: an arm with at least ElimSamples real samples
	// whose mean exceeds ElimFactor times the best arm's mean stops being
	// explored (it can still win back if later samples pull its mean down).
	ElimFactor  float64
	ElimSamples int

	// Explore enables exploration; disabled, the tuner always plays the
	// current best arm (warm-started tables run pure exploitation).
	Explore bool

	// PerPeerTables keys tuning contexts by peer rank. Off by default: on a
	// homogeneous fabric every peer behaves identically, and at 1024 peers a
	// per-peer table multiplies cardinality by the world size for no signal.
	// Turn it on for heterogeneous fabrics where link costs differ per peer.
	PerPeerTables bool

	// MaxKeys caps the number of tuning contexts the table may hold; zero
	// means DefaultMaxKeys. Once full, unseen shapes fall back to the static
	// threshold decision instead of growing the table — learning stops
	// before bookkeeping swamps the host at scale.
	MaxKeys int

	// Model prices the per-scheme priors; nil uses verbs.DefaultModel.
	Model *verbs.Model

	// Quiet suppresses the human-readable Rationale strings on decisions.
	// Decision logic (including the exploration RNG stream) is unchanged;
	// quiet mode only skips the formatting, making a warm Choose
	// allocation-free — the mode the perfgate micro-suite pins.
	Quiet bool

	// Backend names the verbs backend the table's measurements come from
	// ("sim", "rt", "shm"). Exported tables carry it, and import refuses a
	// table tagged with a different backend: scheme crossover points are
	// backend-specific (a zero-link shared-memory profile prices descriptors
	// and copies nothing like the wire fabrics do), so a table learned on one
	// must never warm-start another. Empty means unspecified — such tuners
	// accept any table and such tables import anywhere, which keeps tables
	// exported before the tag existed usable.
	Backend string
}

// DefaultConfig returns the tuning policy used by dtbench and the tests.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Epsilon:     0.25,
		DecayN:      12,
		PriorWeight: 2,
		ElimFactor:  3,
		ElimSamples: 3,
		Explore:     true,
	}
}

// arm is one scheme's running estimate under a key.
type arm struct {
	scheme     core.Scheme
	prior      float64 // cost-model latency estimate, ns
	n          int64   // real samples observed
	sum        float64 // summed observed latency, ns
	eliminated bool
}

// mean blends the prior (as priorWeight pseudo-samples) with the observations.
func (a *arm) mean(priorWeight float64) float64 {
	return (a.prior*priorWeight + a.sum) / (priorWeight + float64(a.n))
}

// entry is the per-key arm set.
type entry struct {
	arms []*arm
}

func (e *entry) find(s core.Scheme) *arm {
	for _, a := range e.arms {
		if a.scheme == s {
			return a
		}
	}
	return nil
}

func (e *entry) samples() int64 {
	var n int64
	for _, a := range e.arms {
		n += a.n
	}
	return n
}

// best returns the arm with the lowest blended mean (all arms considered —
// elimination only stops exploration, never exploitation of a recovered arm).
func (e *entry) best(priorWeight float64) *arm {
	var b *arm
	for _, a := range e.arms {
		if b == nil || a.mean(priorWeight) < b.mean(priorWeight) {
			b = a
		}
	}
	return b
}

// reEliminate refreshes every arm's eliminated flag against the current best.
func (e *entry) reEliminate(cfg *Config) {
	b := e.best(cfg.PriorWeight)
	if b == nil {
		return
	}
	limit := cfg.ElimFactor * b.mean(cfg.PriorWeight)
	for _, a := range e.arms {
		a.eliminated = a != b && a.n >= int64(cfg.ElimSamples) && a.mean(cfg.PriorWeight) > limit
	}
}

// Tuner is a core.SchemeSelector learning per-key scheme latencies online.
// Safe for concurrent use; share one Tuner across all ranks of a world so
// every endpoint's feedback lands in one table.
type Tuner struct {
	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	entries map[Key]*entry
}

// New builds a Tuner with the given policy.
func New(cfg Config) *Tuner {
	if cfg.Model == nil {
		m := verbs.DefaultModel()
		cfg.Model = &m
	}
	if cfg.PriorWeight <= 0 {
		cfg.PriorWeight = 1
	}
	if cfg.DecayN <= 0 {
		cfg.DecayN = 1
	}
	return &Tuner{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		entries: make(map[Key]*entry),
	}
}

// SetExplore toggles exploration (off for warm-started production runs).
func (t *Tuner) SetExplore(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Explore = on
}

// Keys reports how many tuning contexts the table currently holds.
func (t *Tuner) Keys() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// keyFor derives the table key for a shape under the current sharing policy:
// shared tables collapse the peer dimension to SharedPeer. Callers hold t.mu.
func (t *Tuner) keyFor(in core.SelectorInput) Key {
	k := KeyFor(in)
	if !t.cfg.PerPeerTables {
		k.Peer = SharedPeer
	}
	return k
}

// normalizeKey applies the sharing policy to an externally supplied key
// (table import). Callers hold t.mu.
func (t *Tuner) normalizeKey(k Key) Key {
	if !t.cfg.PerPeerTables {
		k.Peer = SharedPeer
	}
	return k
}

func (t *Tuner) maxKeys() int {
	if t.cfg.MaxKeys > 0 {
		return t.cfg.MaxKeys
	}
	return DefaultMaxKeys
}

// entryFor returns (creating on first sight) the arm set for this shape,
// with each eligible scheme's arm seeded from the cost-model prior. It
// returns nil when the table is at its key cap and the shape is unseen.
func (t *Tuner) entryFor(k Key, in core.SelectorInput) *entry {
	e, ok := t.entries[k]
	if ok {
		// A warm-started table may predate an eligibility change (for
		// example BuffersReused flipping); grow missing arms on demand.
		for _, s := range in.Eligible {
			if e.find(s) == nil {
				e.arms = append(e.arms, &arm{scheme: s, prior: priorNs(t.cfg.Model, in, s)})
			}
		}
		return e
	}
	if len(t.entries) >= t.maxKeys() {
		return nil
	}
	e = &entry{}
	for _, s := range in.Eligible {
		e.arms = append(e.arms, &arm{scheme: s, prior: priorNs(t.cfg.Model, in, s)})
	}
	t.entries[k] = e
	return e
}

// Choose implements core.SchemeSelector: epsilon-greedy over the key's arms.
func (t *Tuner) Choose(in core.SelectorInput) core.SchemeDecision {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := t.keyFor(in)
	e := t.entryFor(k, in)
	if e == nil {
		return core.SchemeDecision{Scheme: in.Static, Rationale: "table at key cap, static fallback"}
	}
	best := e.best(t.cfg.PriorWeight)
	if best == nil {
		return core.SchemeDecision{Scheme: in.Static, Rationale: "no arms, static fallback"}
	}
	if len(e.arms) > 1 && t.cfg.Explore {
		n := e.samples()
		eps := t.cfg.Epsilon * float64(t.cfg.DecayN) / float64(t.cfg.DecayN+int(n))
		if t.rng.Float64() < eps {
			// Explore the least-sampled live arm that is not the current
			// best; eliminated arms stay retired.
			var pick *arm
			for _, a := range e.arms {
				if a == best || a.eliminated {
					continue
				}
				if pick == nil || a.n < pick.n {
					pick = a
				}
			}
			if pick != nil {
				d := core.SchemeDecision{Scheme: pick.scheme, Explored: true}
				if !t.cfg.Quiet {
					d.Rationale = fmt.Sprintf("explore %s (eps=%.3f, n=%d); %s",
						pick.scheme, eps, n, e.describe(t.cfg.PriorWeight))
				}
				return d
			}
		}
	}
	d := core.SchemeDecision{Scheme: best.scheme}
	if !t.cfg.Quiet {
		d.Rationale = fmt.Sprintf("exploit %s mean %.1fus; %s",
			best.scheme, best.mean(t.cfg.PriorWeight)/1e3, e.describe(t.cfg.PriorWeight))
	}
	return d
}

// describe renders the current arm estimates ("Generic=210.4us/3 ...", with
// a trailing ! marking eliminated arms) for decision rationales.
func (e *entry) describe(priorWeight float64) string {
	var b strings.Builder
	b.WriteString("arms")
	for _, a := range e.arms {
		fmt.Fprintf(&b, " %s=%.1fus/%d", a.scheme, a.mean(priorWeight)/1e3, a.n)
		if a.eliminated {
			b.WriteString("!")
		}
	}
	return b.String()
}

// Observe implements core.SchemeSelector: fold one measured completion
// latency into the chosen arm, refresh eliminations, and report the regret
// proxy — how far above the best arm's current estimate this transfer landed.
func (t *Tuner) Observe(in core.SelectorInput, chosen core.Scheme, latencyNs int64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := t.keyFor(in)
	e := t.entryFor(k, in)
	if e == nil {
		return 0
	}
	a := e.find(chosen)
	if a == nil {
		// The endpoint fell back to a scheme outside the eligible set (it
		// never should); learn nothing rather than corrupt an arm.
		return 0
	}
	a.n++
	a.sum += float64(latencyNs)
	e.reEliminate(&t.cfg)
	best := e.best(t.cfg.PriorWeight)
	if r := float64(latencyNs) - best.mean(t.cfg.PriorWeight); r > 0 {
		return int64(r)
	}
	return 0
}

// --- Cost-model priors -------------------------------------------------------

// priorNs estimates one scheme's receive-side completion latency in
// nanoseconds from the fabric cost model. The estimates are deliberately
// coarse — they only have to rank the schemes sensibly until real samples
// (PriorWeight pseudo-samples' worth) take over.
func priorNs(m *verbs.Model, in core.SelectorInput, s core.Scheme) float64 {
	b := in.Bytes
	sRuns := runsFor(b, in.SAvg)
	rRuns := in.RRuns
	if rRuns <= 0 {
		rRuns = runsFor(b, in.RAvg)
	}
	wire := float64(m.WireTime(b))
	packC := float64(m.CopyTime(b, int(sRuns)))
	unpackC := float64(m.CopyTime(b, int(rRuns)))
	pages := (b + mem.PageSize - 1) / mem.PageSize
	sge := float64(m.SGEPost + m.NICSGECost)
	desc := float64(m.PostCost + m.NICDescCost + m.CompletionCost)

	switch s {
	case core.SchemeGeneric:
		// Whole-message staging on both sides: malloc + registration + pack,
		// then the wire, then unpack — fully sequential.
		setup := 2 * float64(m.MallocTime(b)+m.RegTime(pages))
		return setup + packC + wire + unpackC + desc
	case core.SchemeBCSPUP:
		// Segmented pipeline over pre-registered pools: the three stages
		// overlap, so the slowest dominates, plus per-segment descriptors.
		segs := 2.0
		return maxf(packC, wire, unpackC) + segs*desc
	case core.SchemeRWGUP:
		// Gather straight from the sender's registered user blocks: no pack,
		// but every sender run costs an SGE on host and NIC.
		gather := float64(sRuns)*sge + float64(sRuns/int64(m.MaxSGE)+1)*desc
		return gather + maxf(wire, unpackC)
	case core.SchemePRRS:
		// Sender packs; receiver pulls with RDMA reads and scatters into its
		// runs — reads pay the responder turnaround.
		reads := float64(rRuns)*sge + 2*float64(m.ReadTurnaround) + desc
		return packC + wire + reads
	case core.SchemeMultiW:
		// Zero copy: one write per contiguous intersection of the two
		// layouts (at least max of the two run counts).
		nW := sRuns
		if rRuns > nW {
			nW = rRuns
		}
		return float64(nW)*(float64(m.ListPostEntry)+sge+float64(m.NICDescCost)) + wire + desc
	default:
		return wire + packC + unpackC
	}
}

func runsFor(bytes, avg int64) int64 {
	if avg <= 0 {
		return 1
	}
	n := bytes / avg
	if n < 1 {
		n = 1
	}
	return n
}

func maxf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
