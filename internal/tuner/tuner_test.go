package tuner

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// noncontig is a typical vector shape: 16 KiB spread over 256-byte runs on
// both sides.
func noncontig() core.SelectorInput {
	in := core.SelectorInput{
		Peer: 1, Bytes: 16 << 10,
		SAvg: 256, RAvg: 256, RRuns: 64,
		Eligible: []core.Scheme{core.SchemeGeneric, core.SchemeBCSPUP,
			core.SchemeRWGUP, core.SchemePRRS, core.SchemeMultiW},
		Static: core.SchemeRWGUP,
	}
	return in
}

func TestBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want uint8
	}{{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9}, {4096, 13}}
	for _, c := range cases {
		if got := bucket(c.v); got != c.want {
			t.Errorf("bucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestKeyForSeparatesRegimes(t *testing.T) {
	small := noncontig()
	large := noncontig()
	large.SAvg, large.RAvg = 8192, 8192
	large.RRuns = 2
	if KeyFor(small) == KeyFor(large) {
		t.Fatal("shapes in different run-length regimes share a key")
	}
	same := noncontig()
	same.SAvg = 300 // same log2 bucket as 256
	same.RAvg = 300
	if KeyFor(small) != KeyFor(same) {
		t.Fatal("shapes in the same buckets got different keys")
	}
}

func TestSignatureOf(t *testing.T) {
	s := SignatureOf(64, 256, 16<<10)
	if s.RunBucket != 9 || s.CntBucket != 7 {
		t.Fatalf("signature buckets = %d/%d, want 9/7", s.RunBucket, s.CntBucket)
	}
	if s.Class != stats.SizeClass(16<<10) {
		t.Fatalf("signature class = %q", s.Class)
	}
	if s.String() == "" {
		t.Fatal("empty signature string")
	}
}

// TestPriorOrdering sanity-checks the cost-model priors: fine-grained layouts
// should not rank Multi-W first, and coarse layouts should not rank the
// staged pipeline above the zero-copy write path.
func TestPriorOrdering(t *testing.T) {
	cfg := DefaultConfig()
	tu := New(cfg)
	fine := noncontig()
	fine.SAvg, fine.RAvg, fine.RRuns = 16, 16, 1024
	if p1, p2 := priorNs(tu.cfg.Model, fine, core.SchemeBCSPUP), priorNs(tu.cfg.Model, fine, core.SchemeMultiW); p1 >= p2 {
		t.Fatalf("16B runs: BC-SPUP prior %.0f >= Multi-W prior %.0f", p1, p2)
	}
	coarse := noncontig()
	coarse.SAvg, coarse.RAvg, coarse.RRuns = 64<<10, 64<<10, 4
	coarse.Bytes = 256 << 10
	if p1, p2 := priorNs(tu.cfg.Model, coarse, core.SchemeMultiW), priorNs(tu.cfg.Model, coarse, core.SchemeGeneric); p1 >= p2 {
		t.Fatalf("64KiB runs: Multi-W prior %.0f >= Generic prior %.0f", p1, p2)
	}
}

// synthetic latencies per scheme: BC-SPUP is the clear winner.
var synthLat = map[core.Scheme]int64{
	core.SchemeGeneric: 400_000,
	core.SchemeBCSPUP:  60_000,
	core.SchemeRWGUP:   1_800_000,
	core.SchemePRRS:    250_000,
	core.SchemeMultiW:  900_000,
}

// drive feeds n synthetic messages through the tuner and returns every
// decision in order.
func drive(tu *Tuner, in core.SelectorInput, n int) []core.Scheme {
	out := make([]core.Scheme, 0, n)
	for i := 0; i < n; i++ {
		d := tu.Choose(in)
		out = append(out, d.Scheme)
		tu.Observe(in, d.Scheme, synthLat[d.Scheme])
	}
	return out
}

func TestConvergesToBestArm(t *testing.T) {
	tu := New(DefaultConfig())
	in := noncontig()
	picks := drive(tu, in, 200)
	// Last quartile must be (almost) all BC-SPUP; with the decayed epsilon
	// and eliminations a stray exploration is possible but rare.
	wrong := 0
	for _, s := range picks[150:] {
		if s != core.SchemeBCSPUP {
			wrong++
		}
	}
	if wrong > 2 {
		t.Fatalf("last quartile picked non-best arm %d/50 times: %v", wrong, picks[150:])
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	in := noncontig()
	a := drive(New(DefaultConfig()), in, 120)
	b := drive(New(DefaultConfig()), in, 120)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs under equal seeds: %v vs %v", i, a[i], b[i])
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	c := drive(New(cfg), in, 120)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical 120-decision sequences (exploration inert?)")
	}
}

func TestEliminationStopsExploringBadArm(t *testing.T) {
	tu := New(DefaultConfig())
	in := noncontig()
	drive(tu, in, 40)
	// Hand the 1.8ms RWG-UP arm enough samples to cross ElimSamples; from
	// then on it must never be played again.
	for i := 0; i < DefaultConfig().ElimSamples; i++ {
		tu.Observe(in, core.SchemeRWGUP, synthLat[core.SchemeRWGUP])
	}
	rwg := 0
	for _, s := range drive(tu, in, 200) {
		if s == core.SchemeRWGUP {
			rwg++
		}
	}
	if rwg != 0 {
		t.Fatalf("eliminated arm still explored %d/200 times", rwg)
	}
}

func TestSingleEligibleScheme(t *testing.T) {
	tu := New(DefaultConfig())
	in := noncontig()
	in.Eligible = []core.Scheme{core.SchemeGeneric}
	in.Static = core.SchemeGeneric
	for i := 0; i < 50; i++ {
		d := tu.Choose(in)
		if d.Scheme != core.SchemeGeneric {
			t.Fatalf("single-arm key chose %v", d.Scheme)
		}
		if d.Explored {
			t.Fatal("single-arm key claims exploration")
		}
		tu.Observe(in, d.Scheme, synthLat[d.Scheme])
	}
}

func TestObserveIgnoresForeignScheme(t *testing.T) {
	tu := New(DefaultConfig())
	in := noncontig()
	in.Eligible = []core.Scheme{core.SchemeGeneric, core.SchemeBCSPUP}
	if r := tu.Observe(in, core.SchemeMultiW, 1_000_000); r != 0 {
		t.Fatalf("foreign-scheme observation produced regret %d", r)
	}
}

func TestRegretProxy(t *testing.T) {
	tu := New(DefaultConfig())
	in := noncontig()
	drive(tu, in, 100) // converge
	if r := tu.Observe(in, core.SchemeBCSPUP, 60_000); r > 10_000 {
		t.Fatalf("near-best latency reported regret %d", r)
	}
	if r := tu.Observe(in, core.SchemeGeneric, 400_000); r < 300_000 {
		t.Fatalf("bad-arm latency reported regret %d, want >=300000", r)
	}
}

// TestRoundTrip pins the acceptance criterion: an exported table re-imported
// into a fresh tuner reproduces the same selections with exploration off.
func TestRoundTrip(t *testing.T) {
	tu := New(DefaultConfig())
	in := noncontig()
	in2 := noncontig()
	in2.Peer = 3
	in2.SAvg, in2.RAvg, in2.RRuns = 8192, 8192, 2
	drive(tu, in, 150)
	drive(tu, in2, 150)

	data, err := tu.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Explore = false
	fresh := New(cfg)
	if err := fresh.ImportJSON(data); err != nil {
		t.Fatal(err)
	}
	tu.SetExplore(false)
	if fresh.Keys() != tu.Keys() {
		t.Fatalf("imported %d keys, exported %d", fresh.Keys(), tu.Keys())
	}
	for i := 0; i < 50; i++ {
		for _, shape := range []core.SelectorInput{in, in2} {
			want := tu.Choose(shape)
			got := fresh.Choose(shape)
			if got.Scheme != want.Scheme {
				t.Fatalf("round-tripped tuner chose %v, original %v (shape peer=%d)",
					got.Scheme, want.Scheme, shape.Peer)
			}
			// Keep the two tables in lockstep.
			tu.Observe(shape, want.Scheme, synthLat[want.Scheme])
			fresh.Observe(shape, got.Scheme, synthLat[got.Scheme])
		}
	}

	// Export of the re-imported (and equally updated) table matches a fresh
	// export of the original byte for byte: persistence is lossless.
	d1, err := tu.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := fresh.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("re-exported table differs from the original's export")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	tu := New(DefaultConfig())
	if err := tu.ImportJSON([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if err := tu.ImportJSON([]byte(`{"version":99,"entries":[]}`)); err == nil {
		t.Fatal("wrong version accepted")
	}
	if err := tu.ImportJSON([]byte(`{"version":1,"entries":[{"key":{"peer":0,"class":"x","srun":1,"rrun":1,"rruns":1},"arms":[{"scheme":"Bogus","n":1,"sum_ns":5}]}]}`)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tu := New(DefaultConfig())
	in := noncontig()
	drive(tu, in, 40)
	path := t.TempDir() + "/table.json"
	if err := tu.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	fresh := New(DefaultConfig())
	if err := fresh.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if fresh.Keys() != tu.Keys() {
		t.Fatalf("loaded %d keys, saved %d", fresh.Keys(), tu.Keys())
	}
}

// TestEligibilityGrowth: a table imported from a run without buffer reuse
// (two arms) must grow arms when the same key later sees the full set.
func TestEligibilityGrowth(t *testing.T) {
	tu := New(DefaultConfig())
	in := noncontig()
	in.Eligible = []core.Scheme{core.SchemeGeneric, core.SchemeBCSPUP}
	drive(tu, in, 30)
	full := noncontig()
	d := tu.Choose(full)
	found := false
	for _, s := range full.Eligible {
		if d.Scheme == s {
			found = true
		}
	}
	if !found {
		t.Fatalf("choice %v outside eligible set after arm growth", d.Scheme)
	}
}

// TestBackendTagRoundTrip pins the per-backend table contract: a v2 export
// carries the exporting tuner's backend tag, a same-backend tuner imports it
// losslessly, a different-backend tuner refuses it, and untagged v2 tables
// (exported before the tag existed) still import anywhere.
func TestBackendTagRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Backend = "shm"
	tu := New(cfg)
	drive(tu, noncontig(), 50)

	data, err := tu.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"backend": "shm"`)) {
		t.Fatalf("export does not carry the backend tag:\n%s", data)
	}

	// Same backend: lossless round trip.
	same := New(cfg)
	if err := same.ImportJSON(data); err != nil {
		t.Fatal(err)
	}
	d2, err := same.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, d2) {
		t.Fatal("same-backend re-export differs")
	}

	// Different backend: refused.
	rtCfg := DefaultConfig()
	rtCfg.Backend = "rt"
	if err := New(rtCfg).ImportJSON(data); err == nil {
		t.Fatal("table learned on shm warm-started an rt tuner")
	}

	// Untagged importer accepts any table (it declared no backend).
	if err := New(DefaultConfig()).ImportJSON(data); err != nil {
		t.Fatalf("untagged tuner rejected a tagged table: %v", err)
	}

	// Untagged v2 table (pre-tag export) imports into a tagged tuner.
	untagged, err := New(DefaultConfig()).ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(untagged, []byte(`"backend"`)) {
		t.Fatal("untagged export grew a backend field")
	}
	if err := New(rtCfg).ImportJSON(untagged); err != nil {
		t.Fatalf("tagged tuner rejected an untagged v2 table: %v", err)
	}
}
