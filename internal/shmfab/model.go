package shmfab

import (
	"repro/internal/simtime"
	"repro/internal/verbs"
)

// DefaultModel returns the shared-memory cost profile: the same host as the
// paper's testbed (so copy bandwidth and block startup match ib.DefaultModel
// exactly), with every NIC and link term removed.
//
//   - LinkGBps is zero, which makes Model.WireTime identically zero: there is
//     no serialization bottleneck between ranks, only memory bandwidth.
//   - WireLatency and ReadTurnaround are zero: a transfer completes when the
//     copy finishes; there is no first-bit flight time and no responder
//     round trip, so RDMA read costs the same as write.
//   - NICDescCost/NICSGECost are zero: a descriptor is a software queue entry,
//     priced only by the (smaller) host-side PostCost/ListPostEntry/SGEPost.
//   - Registration is cheaper — pinning for a CPU copy only has to guard
//     against the partition map changing, not program an IOMMU — but not
//     free, so registration-avoidance schemes still matter.
//   - MaxSGE doubles to 128: the gather loop is software, bounded by batch
//     bookkeeping rather than NIC descriptor format.
//
// The net effect on scheme selection: paying extra copies to reduce
// descriptor count (the pack-based schemes' bargain) buys much less here,
// while descriptor-heavy zero-copy schemes (Multi-W, RWG-UP) lose their NIC
// processing penalty. Crossover points — and therefore tuner tables — are
// genuinely backend-specific, which is why persisted tuner tables carry a
// backend tag.
func DefaultModel() verbs.Model {
	return verbs.Model{
		WireLatency:      0,
		LinkGBps:         0, // no link: WireTime is identically zero
		CopyGBps:         0.75,
		CopyBlockStartup: 60 * simtime.Nanosecond,
		PostCost:         250 * simtime.Nanosecond,
		ListPostEntry:    80 * simtime.Nanosecond,
		SGEPost:          60 * simtime.Nanosecond,
		NICDescCost:      0,
		NICSGECost:       0,
		CompletionCost:   200 * simtime.Nanosecond,
		ReadTurnaround:   0,
		RegBase:          10 * simtime.Microsecond,
		RegPerPage:       150 * simtime.Nanosecond,
		DeregBase:        4 * simtime.Microsecond,
		DeregPerPage:     60 * simtime.Nanosecond,
		MallocBase:       2 * simtime.Microsecond,
		MallocPerPage:    1 * simtime.Microsecond,
		FreeCost:         800 * simtime.Nanosecond,
		MaxSGE:           128,
		MaxPostBatch:     64,
		ParallelFanOut:   500 * simtime.Nanosecond,
	}
}
