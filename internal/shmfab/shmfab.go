// Package shmfab is the shared-memory intra-node backend of the verbs
// contract: the third fabric next to the discrete-event simulator
// (internal/ib) and the real-time concurrent fabric (internal/rtfab).
//
// It models ranks co-resident on one node, communicating through a single
// shared memory arena (mem.Arena) partitioned per rank. The verbs semantics
// are unchanged — registration checks, receive credits, completion queues,
// fault injection — but the transport is: an RDMA write or read is a direct
// copy() between partitions of the same mapping, priced purely as host CPU
// time by the cost model. There is no NIC, no per-descriptor wire
// serialization and no link latency, so the Model a shm fabric runs carries
// zero link terms (DefaultModel) and scheme crossover points land in
// genuinely different places than on the wire backends: schemes that pay
// copies to save descriptors lose their advantage, and schemes that pay
// descriptors to save copies gain one.
//
// Like internal/ib, the fabric is deterministic: one engine drives every
// node, all costs come from the model, and runs are bit-for-bit
// reproducible — which is what lets the zoo guard pin shm benchmark rows
// byte-for-byte next to the simulator's.
package shmfab

import (
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// Model aliases the backend-neutral cost model.
type Model = verbs.Model

// Fabric is one node's worth of ranks sharing a memory arena. The only
// contention point is each rank's host CPU — there are no ports.
type Fabric struct {
	eng      *simtime.Engine
	model    Model
	arena    *mem.Arena
	nodes    []*Node
	tracer   *trace.Recorder
	injector *fault.Injector
}

// New creates a shared-memory fabric on the given engine: one arena of ranks
// partitions of perRankBytes each. Nodes are attached with AddNode, which
// hands out the partitions in order.
func New(eng *simtime.Engine, model Model, ranks int, perRankBytes int64) *Fabric {
	if model.MaxSGE <= 0 {
		model.MaxSGE = 1
	}
	return &Fabric{
		eng:   eng,
		model: model,
		arena: mem.NewArena(ranks, perRankBytes),
	}
}

// SetTracer attaches an activity recorder; all nodes' CPU intervals are
// recorded into it. Pass nil to disable (the default).
func (f *Fabric) SetTracer(r *trace.Recorder) { f.tracer = r }

// SetInjector attaches a fault injector. Injection covers RDMA descriptors
// (post failures, error completions, delayed completions) on every node;
// channel-semantics sends are exempt so control traffic keeps the
// transport's reliable ordering. Pass nil to disable (the default).
func (f *Fabric) SetInjector(in *fault.Injector) { f.injector = in }

// Injector returns the attached fault injector, or nil.
func (f *Fabric) Injector() *fault.Injector { return f.injector }

// Engine returns the shared simulation engine.
func (f *Fabric) Engine() *simtime.Engine { return f.eng }

// Model returns the fabric's cost model.
func (f *Fabric) Model() *Model { return &f.model }

// Arena returns the shared backing store (for partition-layout tests).
func (f *Fabric) Arena() *mem.Arena { return f.arena }

// Node is one rank's view of the shared-memory fabric: its arena partition
// and its host CPU. It satisfies verbs.HCA so protocol code cannot tell it
// from an adapter — except through the cost profile.
type Node struct {
	fab      *Fabric
	idx      int
	name     string
	mem      *mem.Memory
	cpu      *simtime.Resource
	counters *stats.Counters
	nextQP   int
	nextWRID uint64
}

// AddNode attaches the next rank to the fabric, carving its partition out of
// the shared arena. counters may be nil.
func (f *Fabric) AddNode(name string, counters *stats.Counters) *Node {
	if counters == nil {
		counters = &stats.Counters{}
	}
	n := &Node{
		fab:      f,
		idx:      len(f.nodes),
		name:     name,
		mem:      f.arena.Partition(len(f.nodes), name),
		cpu:      simtime.NewResource(name + ".cpu"),
		counters: counters,
	}
	f.nodes = append(f.nodes, n)
	return n
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Index returns the node's position in the fabric.
func (n *Node) Index() int { return n.idx }

// Mem returns the node's arena partition.
func (n *Node) Mem() *mem.Memory { return n.mem }

// CPU returns the node's host CPU resource.
func (n *Node) CPU() *simtime.Resource { return n.cpu }

// Counters returns the node's statistics counters.
func (n *Node) Counters() *stats.Counters { return n.counters }

// Model returns the fabric cost model.
func (n *Node) Model() *Model { return &n.fab.model }

// Injector returns the fabric's fault injector, or nil when fault injection
// is off.
func (n *Node) Injector() *fault.Injector { return n.fab.injector }

// Engine returns the shared simulation engine.
func (n *Node) Engine() *simtime.Engine { return n.fab.eng }

// WRID returns a fresh work-request ID, unique per node.
func (n *Node) WRID() uint64 {
	n.nextWRID++
	return n.nextWRID
}

// ChargeCPU reserves the host CPU for d starting no earlier than now and
// returns the time the work finishes.
func (n *Node) ChargeCPU(d simtime.Duration) simtime.Time {
	return n.ChargeCPUNamed(d, "host")
}

// ChargeCPUNamed is ChargeCPU with an activity label for the tracer.
func (n *Node) ChargeCPUNamed(d simtime.Duration, name string) simtime.Time {
	start, end := n.cpu.Acquire(n.fab.eng.Now(), d)
	n.fab.tracer.Add(n.name, trace.LaneCPU, name, start, end)
	return end
}

// NewCQ creates a completion queue on this node (verbs.HCA).
func (n *Node) NewCQ() verbs.CQ { return NewCQ(n) }

// Connect implements verbs.HCA: it creates a connected queue pair between
// this node and peer, which must be a shmfab.Node on the same fabric.
func (n *Node) Connect(peer verbs.HCA, sendCQ, recvCQ, peerSendCQ, peerRecvCQ verbs.CQ) (verbs.QP, verbs.QP) {
	p, ok := peer.(*Node)
	if !ok {
		panic("shmfab: Connect to a non-shared-memory HCA")
	}
	return Connect(n, p, sendCQ.(*CQ), recvCQ.(*CQ), peerSendCQ.(*CQ), peerRecvCQ.(*CQ))
}

// Connect creates a connected queue pair between two nodes. Each side gets
// its own QP whose send and receive completions are delivered to the given
// CQs. A CQ may be shared among QPs.
func Connect(a, b *Node, aSendCQ, aRecvCQ, bSendCQ, bRecvCQ *CQ) (*QP, *QP) {
	if a.fab != b.fab {
		panic("shmfab: Connect across fabrics")
	}
	qa := &QP{node: a, num: a.nextQP, sendCQ: aSendCQ, recvCQ: aRecvCQ}
	a.nextQP++
	qb := &QP{node: b, num: b.nextQP, sendCQ: bSendCQ, recvCQ: bRecvCQ}
	b.nextQP++
	qa.peer, qb.peer = qb, qa
	return qa, qb
}

// Compile-time checks that the shared-memory fabric satisfies the verbs
// contract.
var (
	_ verbs.HCA = (*Node)(nil)
	_ verbs.QP  = (*QP)(nil)
	_ verbs.CQ  = (*CQ)(nil)
)
