package shmfab

import (
	"fmt"
	"sync/atomic"

	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// SGE, SendWR, RecvWR, Opcode and CQE alias the backend-neutral types in
// internal/verbs, like the other fabrics.
type (
	// SGE is a scatter/gather element.
	SGE = verbs.SGE
	// SendWR is a send-queue work request.
	SendWR = verbs.SendWR
	// RecvWR is a receive credit.
	RecvWR = verbs.RecvWR
	// Opcode identifies a work-request operation.
	Opcode = verbs.Opcode
	// CQE is a completion queue entry.
	CQE = verbs.CQE
)

// Work-request opcodes.
const (
	// OpSend is the channel-semantics send.
	OpSend = verbs.OpSend
	// OpRDMAWrite is the one-sided write (a cross-partition copy here).
	OpRDMAWrite = verbs.OpRDMAWrite
	// OpRDMAWriteImm is a write that also consumes a remote receive credit.
	OpRDMAWriteImm = verbs.OpRDMAWriteImm
	// OpRDMARead is the one-sided read.
	OpRDMARead = verbs.OpRDMARead
	// OpRecv marks receive-side completions.
	OpRecv = verbs.OpRecv
)

// arrival is payload/notification waiting for a receive credit.
type arrival struct {
	op     Opcode
	data   []byte
	bytes  int64
	imm    uint32
	hasImm bool
}

// QP is one end of a connection between two partitions of the shared arena.
type QP struct {
	node    *Node
	num     int
	peer    *QP
	sendCQ  *CQ
	recvCQ  *CQ
	recvQ   []RecvWR
	stalled []arrival

	userData int
}

// Node returns the owning node.
func (qp *QP) Node() *Node { return qp.node }

// Peer returns the connected remote QP.
func (qp *QP) Peer() *QP { return qp.peer }

// Num returns the QP number (unique per node).
func (qp *QP) Num() int { return qp.num }

// UserData returns the tag stored with SetUserData.
func (qp *QP) UserData() int { return qp.userData }

// SetUserData stores an integer tag on the QP for the owning protocol layer.
func (qp *QP) SetUserData(v int) { qp.userData = v }

// PostRecv posts a receive credit. If arrivals were stalled waiting for
// credits they are delivered now, in arrival order.
func (qp *QP) PostRecv(wr RecvWR) {
	atomic.AddInt64(&qp.node.counters.RecvsPosted, 1)
	qp.recvQ = append(qp.recvQ, wr)
	for len(qp.stalled) > 0 && len(qp.recvQ) > 0 {
		a := qp.stalled[0]
		qp.stalled = qp.stalled[1:]
		qp.completeArrival(a)
	}
}

// RecvCredits reports the number of posted, unconsumed receive credits.
func (qp *QP) RecvCredits() int { return len(qp.recvQ) }

// PostSend posts one work request.
func (qp *QP) PostSend(wr SendWR) error {
	return qp.post([]SendWR{wr}, false)
}

// PostSendList posts a list of work requests in one operation; descriptors
// after the first are cheaper to post. On this backend the "descriptor" is a
// software queue entry, so list amortization reflects loop overhead rather
// than doorbell batching — but the structural limit (MaxPostBatch) is
// enforced identically so protocol chunking is exercised the same way.
func (qp *QP) PostSendList(wrs []SendWR) error {
	return qp.post(wrs, true)
}

func (qp *QP) post(wrs []SendWR, list bool) error {
	if len(wrs) == 0 {
		return nil
	}
	n := qp.node
	m := n.Model()
	eng := n.Engine()

	if list && m.MaxPostBatch > 0 && len(wrs) > m.MaxPostBatch {
		return fmt.Errorf("shmfab %s qp%d: list post of %d descriptors exceeds MaxPostBatch %d",
			n.name, qp.num, len(wrs), m.MaxPostBatch)
	}

	// Validate everything before charging any time, so a bad descriptor in a
	// list fails the whole post (as ibv_post_send does).
	for i := range wrs {
		if err := qp.validate(&wrs[i]); err != nil {
			return fmt.Errorf("shmfab %s qp%d: %w", n.name, qp.num, err)
		}
	}

	// Injected post failures; channel-semantics sends are exempt, matching
	// the other fabrics, so control traffic keeps its reliable ordering.
	if inj := n.fab.injector; inj != nil && wrs[0].Op != OpSend {
		if err := inj.PostFault(); err != nil {
			return fmt.Errorf("shmfab %s qp%d: post: %w", n.name, qp.num, err)
		}
	}

	c := n.counters
	if list {
		atomic.AddInt64(&c.ListPosts, 1)
	}
	for i := range wrs {
		wr := &wrs[i]
		atomic.AddInt64(&c.DescriptorsPosted, 1)
		atomic.AddInt64(&c.SGEsPosted, int64(len(wr.SGL)))
		if wr.Lane != 0 {
			atomic.AddInt64(&c.LaneBulkDescs, 1)
		}
		switch wr.Op {
		case OpSend:
			atomic.AddInt64(&c.SendsPosted, 1)
		case OpRDMAWrite, OpRDMAWriteImm:
			atomic.AddInt64(&c.RDMAWritesPosted, 1)
			if wr.Op == OpRDMAWriteImm {
				atomic.AddInt64(&c.ImmediatesSent, 1)
			}
		case OpRDMARead:
			atomic.AddInt64(&c.RDMAReadsPosted, 1)
		}
		if !list {
			atomic.AddInt64(&c.ListPosts, 1)
		}
		cpuStart, cpuEnd := n.cpu.Acquire(eng.Now(), m.PostTime(i, len(wr.SGL), list))
		n.fab.tracer.Add(n.name, trace.LaneCPU, "doorbell", cpuStart, cpuEnd)
		qp.launch(*wr, cpuEnd)
	}
	return nil
}

func (qp *QP) validate(wr *SendWR) error {
	n := qp.node
	switch wr.Op {
	case OpSend:
		if len(wr.SGL) != 0 {
			return fmt.Errorf("OpSend carries inline payloads only")
		}
		return nil
	case OpRDMAWrite, OpRDMAWriteImm:
		total, err := validateSGL(n, wr.SGL)
		if err != nil {
			return err
		}
		// Remote access rights are checked at delivery; the target range must
		// at least fall inside the peer's partition.
		if err := qp.peer.node.mem.CheckRange(wr.RemoteAddr, total); err != nil {
			return err
		}
		return nil
	case OpRDMARead:
		if _, err := validateSGL(n, wr.SGL); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("bad opcode %v", wr.Op)
	}
}

// validateSGL checks every SGE against the local registration table and
// returns the total byte length.
func validateSGL(n *Node, sgl []SGE) (int64, error) {
	var total int64
	for _, s := range sgl {
		if s.Len < 0 {
			return 0, fmt.Errorf("shmfab %s: negative SGE length", n.name)
		}
		if s.Len == 0 {
			continue
		}
		if err := n.mem.Reg().CheckAccess(s.Key, s.Addr, s.Len); err != nil {
			return 0, err
		}
		total += s.Len
	}
	return total, nil
}

// launch models the host-side transfer of one descriptor that becomes
// eligible at time ready. There is no NIC and no wire: the initiator's CPU
// performs the gather and the cross-partition copy, so the whole transfer is
// one CopyTime charge — the shared-memory backend's defining property.
func (qp *QP) launch(wr SendWR, ready simtime.Time) {
	n := qp.node
	m := n.Model()
	eng := n.Engine()

	// Injected CQE errors: the descriptor is consumed but the copy never
	// runs, and the initiator sees an error completion. Channel-semantics
	// sends are exempt (see post).
	if inj := n.fab.injector; inj != nil && wr.Op != OpSend {
		if ferr := inj.CQEFault(); ferr != nil {
			err := fmt.Errorf("shmfab %s qp%d: %v failed: %w", n.name, qp.num, wr.Op, ferr)
			wrid, op := wr.WRID, wr.Op
			eng.At(ready, func() {
				qp.sendCQ.push(CQE{QP: qp, WRID: wrid, Op: op, Err: err})
			})
			return
		}
	}

	switch wr.Op {
	case OpSend:
		// Control message: the payload is copied into the peer's mailbox by
		// the sending CPU.
		payload := append([]byte(nil), wr.Inline...)
		size := int64(len(payload))
		cs, ce := n.cpu.AcquireAt(ready, m.CopyTime(size, 1))
		n.fab.tracer.Add(n.name, trace.LaneCPU, "shm:ctrl", cs, ce)
		wrid := wr.WRID
		imm := wr.Imm
		eng.At(ce, func() {
			qp.peer.arrive(arrival{op: OpSend, data: payload, bytes: size, imm: imm, hasImm: true})
			qp.sendCQ.push(CQE{QP: qp, WRID: wrid, Op: OpSend, Bytes: size})
		})

	case OpRDMAWrite, OpRDMAWriteImm:
		// Snapshot the gather list at launch; the source must stay stable
		// until completion, exactly as on the wire fabrics.
		var size int64
		for _, s := range wr.SGL {
			size += s.Len
		}
		payload := make([]byte, 0, size)
		for _, s := range wr.SGL {
			if s.Len > 0 {
				payload = append(payload, n.mem.Bytes(s.Addr, s.Len)...)
			}
		}
		cs, ce := n.cpu.AcquireAt(ready, m.CopyTime(size, len(wr.SGL)))
		n.fab.tracer.Add(n.name, trace.LaneCPU, "shm:write", cs, ce)
		wrcopy := wr
		eng.At(ce, func() { qp.deliverWrite(wrcopy, payload, size) })

	case OpRDMARead:
		var size int64
		for _, s := range wr.SGL {
			size += s.Len
		}
		// The initiator's CPU pulls straight out of the peer's partition —
		// no responder turnaround, no round trip.
		cs, ce := n.cpu.AcquireAt(ready, m.CopyTime(size, len(wr.SGL)))
		n.fab.tracer.Add(n.name, trace.LaneCPU, "shm:read", cs, ce)
		wrcopy := wr
		eng.At(ce, func() { qp.completeRead(wrcopy, size) })
	}
}

// deliverWrite lands a cross-partition write at the peer: protection check
// against the peer's registration table, then one copy within the shared
// arena.
func (qp *QP) deliverWrite(wr SendWR, payload []byte, size int64) {
	peer := qp.peer
	if err := peer.node.mem.Reg().CheckAccess(wr.RKey, wr.RemoteAddr, size); err != nil {
		qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: wr.Op, Bytes: size,
			Err: fmt.Errorf("remote access error: %w", err)})
		return
	}
	copy(peer.node.mem.Bytes(wr.RemoteAddr, size), payload)
	if wr.Op == OpRDMAWriteImm {
		peer.arrive(arrival{op: OpRDMAWriteImm, bytes: size, imm: wr.Imm, hasImm: true})
	}
	// Completion is immediate — there is no ack to wait for — but injected
	// delays still model a congested completion path.
	if inj := qp.node.fab.injector; inj != nil {
		if delay := inj.Delay(); delay > 0 {
			qp.node.Engine().Schedule(delay, func() {
				qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: wr.Op, Bytes: size})
			})
			return
		}
	}
	qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: wr.Op, Bytes: size})
}

// completeRead lands read data at the initiator after the protection check
// against the peer's registration table.
func (qp *QP) completeRead(wr SendWR, size int64) {
	peer := qp.peer
	if err := peer.node.mem.Reg().CheckAccess(wr.RKey, wr.RemoteAddr, size); err != nil {
		qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: OpRDMARead, Bytes: size,
			Err: fmt.Errorf("remote access error: %w", err)})
		return
	}
	src := peer.node.mem.Bytes(wr.RemoteAddr, size)
	var off int64
	for _, s := range wr.SGL {
		if s.Len <= 0 {
			continue
		}
		copy(qp.node.mem.Bytes(s.Addr, s.Len), src[off:off+s.Len])
		off += s.Len
	}
	if inj := qp.node.fab.injector; inj != nil {
		if delay := inj.Delay(); delay > 0 {
			qp.node.Engine().Schedule(delay, func() {
				qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: OpRDMARead, Bytes: size})
			})
			return
		}
	}
	qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: OpRDMARead, Bytes: size})
}

// arrive delivers a channel-semantics payload or an immediate notification,
// consuming a receive credit or stalling until one is posted.
func (qp *QP) arrive(a arrival) {
	if len(qp.recvQ) == 0 {
		qp.stalled = append(qp.stalled, a)
		return
	}
	qp.completeArrival(a)
}

func (qp *QP) completeArrival(a arrival) {
	rwr := qp.recvQ[0]
	qp.recvQ = qp.recvQ[1:]
	qp.recvCQ.push(CQE{
		QP:     qp,
		WRID:   rwr.WRID,
		Op:     OpRecv,
		Bytes:  a.bytes,
		Imm:    a.imm,
		HasImm: a.hasImm,
		Data:   a.data,
	})
}

// CQ is a completion queue. A CQ either queues entries for polling
// (Poll/WaitPoll) or dispatches them to a handler; protocol engines use the
// handler form so completion processing charges the host CPU and serializes
// with other host work.
type CQ struct {
	node    *Node
	queue   []CQE
	handler func(CQE)
	sig     simtime.Signal
}

// NewCQ creates a completion queue on a node.
func NewCQ(n *Node) *CQ { return &CQ{node: n} }

// SetHandler switches the CQ to handler dispatch. Each entry is delivered in
// its own event after reserving CompletionCost on the node's CPU. Must be
// set before any completion arrives.
func (cq *CQ) SetHandler(fn func(CQE)) {
	if len(cq.queue) > 0 {
		panic("shmfab: SetHandler on non-empty CQ")
	}
	cq.handler = fn
}

// push delivers a completion at the current virtual time.
func (cq *CQ) push(e CQE) {
	atomic.AddInt64(&cq.node.counters.Completions, 1)
	if cq.handler != nil {
		eng := cq.node.Engine()
		end := cq.node.ChargeCPUNamed(cq.node.Model().CompletionCost, "cqe")
		eng.At(end, func() { cq.handler(e) })
		return
	}
	cq.queue = append(cq.queue, e)
	cq.sig.Broadcast()
}

// Poll removes and returns the oldest completion, if any.
func (cq *CQ) Poll() (CQE, bool) {
	if len(cq.queue) == 0 {
		return CQE{}, false
	}
	e := cq.queue[0]
	cq.queue = cq.queue[1:]
	return e, true
}

// WaitPoll blocks the process until a completion is available, then returns
// it, charging the completion-handling CPU cost.
func (cq *CQ) WaitPoll(p *simtime.Process) CQE {
	for len(cq.queue) == 0 {
		p.Wait(&cq.sig)
	}
	e := cq.queue[0]
	cq.queue = cq.queue[1:]
	end := cq.node.ChargeCPU(cq.node.Model().CompletionCost)
	p.WaitUntil(end)
	return e
}

// Len reports the number of queued completions (always 0 in handler mode).
func (cq *CQ) Len() int { return len(cq.queue) }
