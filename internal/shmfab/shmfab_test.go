package shmfab

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/simtime"
	"repro/internal/stats"
)

type pair struct {
	eng    *simtime.Engine
	fab    *Fabric
	a, b   *Node
	qa, qb *QP
	aSend  *CQ
	aRecv  *CQ
	bSend  *CQ
	bRecv  *CQ
	ca, cb *stats.Counters
}

func newPair(t *testing.T, model Model) *pair {
	t.Helper()
	eng := simtime.NewEngine()
	fab := New(eng, model, 2, 1<<22)
	ca, cb := &stats.Counters{}, &stats.Counters{}
	a := fab.AddNode("a", ca)
	b := fab.AddNode("b", cb)
	p := &pair{
		eng: eng, fab: fab, a: a, b: b,
		aSend: NewCQ(a), aRecv: NewCQ(a),
		bSend: NewCQ(b), bRecv: NewCQ(b),
		ca: ca, cb: cb,
	}
	p.qa, p.qb = Connect(a, b, p.aSend, p.aRecv, p.bSend, p.bRecv)
	return p
}

func TestChannelSendRoundTrip(t *testing.T) {
	p := newPair(t, DefaultModel())
	payload := []byte("shared-memory control traffic")
	p.qb.PostRecv(RecvWR{WRID: 7})
	if err := p.qa.PostSend(SendWR{WRID: 1, Op: OpSend, Inline: payload, Imm: 42}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	se, ok := p.aSend.Poll()
	if !ok || se.WRID != 1 || se.Err != nil {
		t.Fatalf("send completion = %+v ok=%v", se, ok)
	}
	re, ok := p.bRecv.Poll()
	if !ok || re.WRID != 7 || re.Err != nil || !bytes.Equal(re.Data, payload) {
		t.Fatalf("recv completion = %+v ok=%v", re, ok)
	}
	if re.Imm != 42 || !re.HasImm {
		t.Fatalf("imm = %d hasImm=%v", re.Imm, re.HasImm)
	}
}

// TestWriteReadAcrossPartitions moves bytes both ways through the shared
// arena with registered regions and checks the data lands exactly where
// addressed — and that read costs the same virtual time as write, the
// backend's defining no-round-trip property.
func TestWriteReadAcrossPartitions(t *testing.T) {
	p := newPair(t, DefaultModel())
	const n = 8192
	src := p.a.Mem().MustAlloc(n)
	dst := p.b.Mem().MustAlloc(n)
	srcReg, err := p.a.Mem().Reg().Register(src, n)
	if err != nil {
		t.Fatal(err)
	}
	dstReg, err := p.b.Mem().Reg().Register(dst, n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, n)
	for i := range want {
		want[i] = byte(i*7 + 3)
	}
	copy(p.a.Mem().Bytes(src, n), want)

	var writeDone, readDone simtime.Time
	p.aSend.SetHandler(func(e CQE) {
		if e.Err != nil {
			t.Errorf("completion error: %v", e.Err)
		}
		switch e.Op {
		case OpRDMAWrite:
			writeDone = p.eng.Now()
		case OpRDMARead:
			readDone = p.eng.Now()
		}
	})
	if err := p.qa.PostSend(SendWR{
		WRID: 1, Op: OpRDMAWrite,
		SGL:        []SGE{{Addr: src, Len: n, Key: srcReg.LKey}},
		RemoteAddr: dst, RKey: dstReg.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.b.Mem().Bytes(dst, n), want) {
		t.Fatal("write did not land in the peer partition")
	}

	// Read the same bytes back into a fresh local buffer.
	back := p.a.Mem().MustAlloc(n)
	backReg, err := p.a.Mem().Reg().Register(back, n)
	if err != nil {
		t.Fatal(err)
	}
	t0 := p.eng.Now()
	if err := p.qa.PostSend(SendWR{
		WRID: 2, Op: OpRDMARead,
		SGL:        []SGE{{Addr: back, Len: n, Key: backReg.LKey}},
		RemoteAddr: dst, RKey: dstReg.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.a.Mem().Bytes(back, n), want) {
		t.Fatal("read did not pull the peer partition's bytes")
	}
	if writeDone == 0 || readDone == 0 {
		t.Fatal("missing completions")
	}
	if got, want := readDone.Sub(t0), writeDone.Sub(0); got != want {
		t.Fatalf("read took %v, write took %v; with no responder turnaround they must match", got, want)
	}
}

// TestRegistrationViolation is the shared-arena protection test: a write
// whose rkey does not cover the target must fail with a remote access error
// and must not move a single byte, even though physically the source and
// target live in one mapping.
func TestRegistrationViolation(t *testing.T) {
	p := newPair(t, DefaultModel())
	const n = 4096
	src := p.a.Mem().MustAlloc(n)
	dst := p.b.Mem().MustAlloc(2 * n)
	srcReg, err := p.a.Mem().Reg().Register(src, n)
	if err != nil {
		t.Fatal(err)
	}
	// Register only the first half of the destination; target the second.
	dstReg, err := p.b.Mem().Reg().Register(dst, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.a.Mem().Bytes(src, n) {
		p.a.Mem().Bytes(src, n)[i] = 0xAB
	}
	if err := p.qa.PostSend(SendWR{
		WRID: 1, Op: OpRDMAWrite,
		SGL:        []SGE{{Addr: src, Len: n, Key: srcReg.LKey}},
		RemoteAddr: dst + n, RKey: dstReg.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	e, ok := p.aSend.Poll()
	if !ok || e.Err == nil || !strings.Contains(e.Err.Error(), "remote access error") {
		t.Fatalf("completion = %+v ok=%v, want remote access error", e, ok)
	}
	for _, b := range p.b.Mem().Bytes(dst, 2*n) {
		if b != 0 {
			t.Fatal("faulted write leaked bytes into the peer partition")
		}
	}

	// An unregistered local source must be rejected at post time.
	err = p.qa.PostSend(SendWR{
		WRID: 2, Op: OpRDMAWrite,
		SGL:        []SGE{{Addr: src, Len: n, Key: 9999}},
		RemoteAddr: dst, RKey: dstReg.RKey,
	})
	if err == nil {
		t.Fatal("post with a bogus lkey succeeded")
	}
}

// TestPartitionIsolation pins the arena geometry: every rank's Memory is a
// disjoint window of one backing store, addresses are partition-local, and a
// write between two ranks leaves every other partition untouched.
func TestPartitionIsolation(t *testing.T) {
	eng := simtime.NewEngine()
	fab := New(eng, DefaultModel(), 4, 1<<20)
	nodes := make([]*Node, 4)
	for i := range nodes {
		nodes[i] = fab.AddNode(string(rune('a'+i)), nil)
	}
	if got := fab.Arena().Size(); got != 4<<20 {
		t.Fatalf("arena size = %d, want %d", got, 4<<20)
	}
	sCQ, rCQ := NewCQ(nodes[0]), NewCQ(nodes[0])
	pSCQ, pRCQ := NewCQ(nodes[2]), NewCQ(nodes[2])
	qa, _ := Connect(nodes[0], nodes[2], sCQ, rCQ, pSCQ, pRCQ)

	const n = 2048
	src := nodes[0].Mem().MustAlloc(n)
	dst := nodes[2].Mem().MustAlloc(n)
	srcReg, _ := nodes[0].Mem().Reg().Register(src, n)
	dstReg, _ := nodes[2].Mem().Reg().Register(dst, n)
	for i := int64(0); i < n; i++ {
		nodes[0].Mem().Bytes(src, n)[i] = 0x5A
	}
	if err := qa.PostSend(SendWR{
		WRID: 1, Op: OpRDMAWrite,
		SGL:        []SGE{{Addr: src, Len: n, Key: srcReg.LKey}},
		RemoteAddr: dst, RKey: dstReg.RKey,
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nodes[2].Mem().Bytes(dst, n), nodes[0].Mem().Bytes(src, n)) {
		t.Fatal("write missed the target partition")
	}
	// The same partition-local address in every *other* partition is clean.
	for _, i := range []int{1, 3} {
		for _, b := range nodes[i].Mem().Bytes(dst, n) {
			if b != 0 {
				t.Fatalf("partition %d dirtied by a transfer between 0 and 2", i)
			}
		}
	}
}

// TestDeterminism runs the same transfer twice on fresh fabrics and demands
// bit-identical virtual completion times — the property the zoo guard's
// byte-for-byte golden comparison rests on.
func TestDeterminism(t *testing.T) {
	run := func() simtime.Time {
		p := newPair(t, DefaultModel())
		const n = 32768
		src := p.a.Mem().MustAlloc(n)
		dst := p.b.Mem().MustAlloc(n)
		srcReg, _ := p.a.Mem().Reg().Register(src, n)
		dstReg, _ := p.b.Mem().Reg().Register(dst, n)
		if err := p.qa.PostSend(SendWR{
			WRID: 1, Op: OpRDMAWriteImm,
			SGL:        []SGE{{Addr: src, Len: n, Key: srcReg.LKey}},
			RemoteAddr: dst, RKey: dstReg.RKey, Imm: 5,
		}); err != nil {
			t.Fatal(err)
		}
		p.qb.PostRecv(RecvWR{WRID: 9})
		if err := p.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return p.eng.Now()
	}
	if t1, t2 := run(), run(); t1 != t2 {
		t.Fatalf("same transfer, different virtual end times: %v vs %v", t1, t2)
	}
}

// TestFaultInjection drives enough RDMA posts through an always-failing
// injector to see both the post-failure and the error-completion paths, and
// checks channel sends stay exempt.
func TestFaultInjection(t *testing.T) {
	p := newPair(t, DefaultModel())
	p.fab.SetInjector(fault.New(fault.Config{Seed: 1, PostFailRate: 1}))
	const n = 512
	src := p.a.Mem().MustAlloc(n)
	dst := p.b.Mem().MustAlloc(n)
	srcReg, _ := p.a.Mem().Reg().Register(src, n)
	dstReg, _ := p.b.Mem().Reg().Register(dst, n)
	wr := SendWR{
		WRID: 1, Op: OpRDMAWrite,
		SGL:        []SGE{{Addr: src, Len: n, Key: srcReg.LKey}},
		RemoteAddr: dst, RKey: dstReg.RKey,
	}
	if err := p.qa.PostSend(wr); err == nil {
		t.Fatal("post under PostFailRate=1 succeeded")
	}
	// Channel-semantics control traffic is exempt from injection.
	p.qb.PostRecv(RecvWR{WRID: 2})
	if err := p.qa.PostSend(SendWR{WRID: 3, Op: OpSend, Inline: []byte("ok")}); err != nil {
		t.Fatalf("OpSend rejected under injection: %v", err)
	}

	p.fab.SetInjector(fault.New(fault.Config{Seed: 1, CQEErrorRate: 1}))
	if err := p.qa.PostSend(wr); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for {
		e, ok := p.aSend.Poll()
		if !ok {
			break
		}
		if e.Err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("CQEErrorRate=1 produced no error completion")
	}
}
