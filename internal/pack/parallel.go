package pack

import (
	"runtime"
	"sync"

	"repro/internal/datatype"
	"repro/internal/mem"
)

// This file is the parallel segment engine: pack/unpack of one segment split
// across N worker shards. The run list is collected sequentially from the
// (stateful) datatype cursor — a cheap metadata walk — and only the copies
// fan out, so the staging bytes produced are identical for every worker
// count and every Executor. On the simulator the SerialExec keeps execution
// single-threaded and deterministic while the cost model charges the
// max-over-shards copy time; on the real-time fabric GoExec uses real
// goroutines and real copy().

// DefaultMinShard is the smallest worker shard worth fanning out: below
// ~32 KB per worker, goroutine dispatch costs more than the copy it saves.
const DefaultMinShard = 32 << 10

// Executor runs a batch of independent copy tasks and returns when all of
// them have finished. Tasks touch pairwise-disjoint memory, so an Executor
// may run them in any order or concurrently.
type Executor interface {
	Run(tasks []func())
}

// SerialExec runs tasks in order on the calling goroutine. It is the
// deterministic executor of the simulator backend: byte-identical output and
// no real concurrency, while the caller charges modeled fan-out cost.
type SerialExec struct{}

// Run executes the tasks sequentially.
func (SerialExec) Run(tasks []func()) {
	for _, t := range tasks {
		t()
	}
}

// GoExec fans tasks out across real goroutines and joins them before
// returning. It is the real-time backend's executor. Fan-out is capped at
// the host's CPU count: goroutines beyond the cores they could run on buy
// no copy bandwidth and cost scheduling churn, so on a single-core host the
// tasks run inline (the shard *statistics* — and thus the cost model — are
// unchanged; only the execution strategy adapts).
type GoExec struct{}

// Run executes the tasks concurrently (at most NumCPU at once) and waits
// for all of them.
func (GoExec) Run(tasks []func()) {
	lanes := runtime.NumCPU()
	if lanes > len(tasks) {
		lanes = len(tasks)
	}
	if lanes <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(lanes - 1)
	for l := 1; l < lanes; l++ {
		go func(l int) {
			defer wg.Done()
			for i := l; i < len(tasks); i += lanes {
				tasks[i]()
			}
		}(l)
	}
	for i := 0; i < len(tasks); i += lanes {
		tasks[i]()
	}
	wg.Wait()
}

// ShardStat describes one worker's share of a parallel pack or unpack.
type ShardStat struct {
	Bytes int64
	Runs  int
}

// ParStats reports one parallel pack/unpack step: the totals (identical to
// what the serial engine would report) plus the per-shard split the cost
// model and the utilization histograms consume. len(Shards) == 1 means the
// step ran serially. Shards aliases the engine's reusable buffer and is
// only valid until the engine's next Pack/Unpack call; callers that keep
// it must copy.
type ParStats struct {
	Bytes  int64
	Runs   int
	Shards []ShardStat
}

// Par configures a parallel packer or unpacker.
type Par struct {
	// Workers is the shard fan-out limit; <= 1 packs serially.
	Workers int
	// Exec runs the shard copies; nil packs serially.
	Exec Executor
	// MinShard is the minimum bytes per worker shard (0 = DefaultMinShard):
	// a step smaller than 2*MinShard is not worth splitting.
	MinShard int64
}

func (o Par) minShard() int64 {
	if o.MinShard > 0 {
		return o.MinShard
	}
	return DefaultMinShard
}

// parallel reports whether this configuration ever fans out.
func (o Par) parallel() bool { return o.Workers > 1 && o.Exec != nil }

// runRef is one contiguous run of a pack/unpack step: user-buffer address,
// offset into the contiguous staging span, and length.
type runRef struct {
	addr mem.Addr
	off  int64
	n    int64
}

// collectRuns advances the layout walk by up to want bytes, appending the
// contiguous runs in layout order to refs (reusing its capacity), and
// returns the extended slice plus the bytes consumed. The Next sequence is
// exactly the serial engine's — whether the walker is an interpreted Cursor
// or a compiled ProgCursor — so the run count (and thus the modeled per-run
// cost) is identical to PackTo/UnpackFrom.
func collectRuns(w datatype.RunWalker, base mem.Addr, want int64, refs []runRef) ([]runRef, int64) {
	var n int64
	for want-n > 0 {
		off, k, ok := w.Next(want - n)
		if !ok {
			break
		}
		refs = append(refs, runRef{addr: addrAt(base, off), off: n, n: k})
		n += k
	}
	return refs, n
}

// shardRuns partitions runs into at most workers contiguous shards of
// roughly equal byte counts without splitting a run, honoring the minimum
// shard size, appending the shards to out (reusing its capacity). The
// partition is a pure function of its inputs, so shard statistics — and
// the virtual cost derived from them — are deterministic.
func shardRuns(refs []runRef, total int64, workers int, minShard int64, out [][]runRef) [][]runRef {
	if minShard < 1 {
		// Defensive: callers normalize via Par.minShard(), but a zero
		// divisor here must never take the whole engine down.
		minShard = 1
	}
	n := workers
	if byMin := int(total / minShard); byMin < n {
		n = byMin
	}
	if n < 1 {
		n = 1
	}
	if n > len(refs) {
		n = len(refs)
	}
	if n <= 1 {
		return append(out, refs)
	}
	target := (total + int64(n) - 1) / int64(n)
	start, bytes := 0, int64(0)
	for i, r := range refs {
		bytes += r.n
		// Close the shard once it reaches its byte target, but keep enough
		// runs behind it to populate the remaining shards.
		if bytes >= target && len(out) < n-1 && len(refs)-(i+1) >= n-1-len(out) {
			out = append(out, refs[start:i+1])
			start, bytes = i+1, 0
		}
	}
	out = append(out, refs[start:])
	return out
}

// ParallelPacker is a Packer whose per-step copies fan out across worker
// shards (the parallel segment engine). With Workers <= 1 or a nil Executor
// it behaves exactly like the serial Packer.
type ParallelPacker struct {
	*Packer
	opt Par

	// Reusable per-step state: once warm, a Pack step allocates nothing.
	// The pre-built task closures read shards/dst through the receiver, so
	// they are created once per shard index and reused across steps.
	refs   []runRef
	shards [][]runRef
	stats  []ShardStat
	tasks  []func()
	dst    []byte
}

// task returns the reusable copy closure for shard index i, creating the
// missing closures on first use of that fan-out width.
func (p *ParallelPacker) task(i int) func() {
	for len(p.tasks) <= i {
		j := len(p.tasks)
		p.tasks = append(p.tasks, func() {
			for _, r := range p.shards[j] {
				copy(p.dst[r.off:r.off+r.n], p.mem.Bytes(r.addr, r.n))
			}
		})
	}
	return p.tasks[i]
}

// NewParallelPacker creates a parallel packer over the message
// (base, count, t) in m using the interpreted cursor walk.
func NewParallelPacker(m *mem.Memory, base mem.Addr, t *datatype.Type, count int, opt Par) *ParallelPacker {
	return &ParallelPacker{Packer: NewPacker(m, base, t, count), opt: opt}
}

// NewParallelProgramPacker creates a parallel packer over the message
// (base, prog) in m that replays the compiled layout program.
func NewParallelProgramPacker(m *mem.Memory, base mem.Addr, prog *datatype.Program, opt Par) *ParallelPacker {
	return &ParallelPacker{Packer: NewProgramPacker(m, base, prog), opt: opt}
}

// Pack fills dst with the next len(dst) bytes of the message (or fewer if
// the message ends), splitting the copies across worker shards, and reports
// totals plus the per-shard split.
func (p *ParallelPacker) Pack(dst []byte) ParStats {
	if !p.opt.parallel() || int64(len(dst)) < 2*p.opt.minShard() {
		n, runs := p.PackTo(dst)
		p.stats = append(p.stats[:0], ShardStat{Bytes: n, Runs: runs})
		return ParStats{Bytes: n, Runs: runs, Shards: p.stats}
	}
	refs, n := collectRuns(p.walker(), p.base, int64(len(dst)), p.refs[:0])
	p.refs = refs
	p.shards = shardRuns(refs, n, p.opt.Workers, p.opt.minShard(), p.shards[:0])
	p.stats = p.stats[:0]
	p.dst = dst
	for i, sh := range p.shards {
		var b int64
		for _, r := range sh {
			b += r.n
		}
		p.stats = append(p.stats, ShardStat{Bytes: b, Runs: len(sh)})
		p.task(i)
	}
	p.opt.Exec.Run(p.tasks[:len(p.shards)])
	p.dst = nil
	return ParStats{Bytes: n, Runs: len(refs), Shards: p.stats}
}

// ParallelUnpacker is an Unpacker whose per-step copies fan out across
// worker shards. With Workers <= 1 or a nil Executor it behaves exactly like
// the serial Unpacker.
type ParallelUnpacker struct {
	*Unpacker
	opt Par

	// Reusable per-step state, mirroring ParallelPacker.
	refs   []runRef
	shards [][]runRef
	stats  []ShardStat
	tasks  []func()
	src    []byte
}

// task returns the reusable copy closure for shard index i, creating the
// missing closures on first use of that fan-out width.
func (u *ParallelUnpacker) task(i int) func() {
	for len(u.tasks) <= i {
		j := len(u.tasks)
		u.tasks = append(u.tasks, func() {
			for _, r := range u.shards[j] {
				copy(u.mem.Bytes(r.addr, r.n), u.src[r.off:r.off+r.n])
			}
		})
	}
	return u.tasks[i]
}

// NewParallelUnpacker creates a parallel unpacker over the message
// (base, count, t) in m using the interpreted cursor walk.
func NewParallelUnpacker(m *mem.Memory, base mem.Addr, t *datatype.Type, count int, opt Par) *ParallelUnpacker {
	return &ParallelUnpacker{Unpacker: NewUnpacker(m, base, t, count), opt: opt}
}

// NewParallelProgramUnpacker creates a parallel unpacker over the message
// (base, prog) in m that replays the compiled layout program.
func NewParallelProgramUnpacker(m *mem.Memory, base mem.Addr, prog *datatype.Program, opt Par) *ParallelUnpacker {
	return &ParallelUnpacker{Unpacker: NewProgramUnpacker(m, base, prog), opt: opt}
}

// Unpack scatters src into the next len(src) bytes' worth of message
// positions, splitting the copies across worker shards, and reports totals
// plus the per-shard split.
func (u *ParallelUnpacker) Unpack(src []byte) ParStats {
	if !u.opt.parallel() || int64(len(src)) < 2*u.opt.minShard() {
		n, runs := u.UnpackFrom(src)
		u.stats = append(u.stats[:0], ShardStat{Bytes: n, Runs: runs})
		return ParStats{Bytes: n, Runs: runs, Shards: u.stats}
	}
	refs, n := collectRuns(u.walker(), u.base, int64(len(src)), u.refs[:0])
	u.refs = refs
	u.shards = shardRuns(refs, n, u.opt.Workers, u.opt.minShard(), u.shards[:0])
	u.stats = u.stats[:0]
	u.src = src
	for i, sh := range u.shards {
		var b int64
		for _, r := range sh {
			b += r.n
		}
		u.stats = append(u.stats, ShardStat{Bytes: b, Runs: len(sh)})
		u.task(i)
	}
	u.opt.Exec.Run(u.tasks[:len(u.shards)])
	u.src = nil
	return ParStats{Bytes: n, Runs: len(refs), Shards: u.stats}
}
