package pack

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mem"
)

// progTestShapes covers every program kind the compiler emits: contiguous,
// 1D and 2D strided, fixed-block and varied-length indexed, and the generic
// fallback for shapes that exceed the materialization cap.
func progTestShapes(t *testing.T) map[string]struct {
	dt    *datatype.Type
	count int
} {
	t.Helper()
	must := datatype.Must
	v1 := must(datatype.TypeVector(64, 2, 8, datatype.Int32))
	idx := must(datatype.TypeIndexed([]int{1, 1, 1}, []int{0, 3, 7}, datatype.Int32))
	return map[string]struct {
		dt    *datatype.Type
		count int
	}{
		"contig":     {must(datatype.TypeContiguous(4096, datatype.Int32)), 1},
		"vector-1d":  {must(datatype.TypeVector(128, 2, 32, datatype.Int32)), 1},
		"vector-2d":  {must(datatype.TypeHvector(8, 1, 4096, v1)), 1},
		"indexed":    {must(datatype.TypeIndexed([]int{3, 1, 7}, []int{0, 5, 10}, datatype.Int32)), 8},
		"idx-block":  {must(datatype.TypeIndexedBlock(4, []int{0, 16, 40}, datatype.Int32)), 6},
		"generic":    {must(datatype.TypeVector(128, 1, 2, idx)), 200},
		"zero-count": {datatype.Int32, 0},
	}
}

func messageSpan(dt *datatype.Type, count int) int64 {
	if count == 0 {
		return 0
	}
	return dt.TrueExtent() + int64(count-1)*dt.Extent()
}

// TestProgramPackMatchesInterpreted checks byte equality of the compiled
// replay against the interpreted cursor walk, for whole-message packs and
// for awkward segment sizes that split runs mid-block.
func TestProgramPackMatchesInterpreted(t *testing.T) {
	for name, tc := range progTestShapes(t) {
		span := messageSpan(tc.dt, tc.count)
		m := mem.NewMemory("n", 2*span+(64<<10))
		base := m.MustAlloc(span + 1)
		fillPattern(m, base, span, 5)
		size := tc.dt.Size() * int64(tc.count)

		want := make([]byte, size)
		NewPacker(m, base, tc.dt, tc.count).PackTo(want)

		prog := datatype.Compile(tc.dt, tc.count)
		got := make([]byte, size)
		n, _ := NewProgramPacker(m, base, prog).PackTo(got)
		if n != size {
			t.Fatalf("%s: program packed %d of %d bytes", name, n, size)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: compiled whole-message pack differs from interpreted", name)
		}

		for _, seg := range []int{1, 7, 13, 100, 4096} {
			p := NewProgramPacker(m, base, prog)
			var pieced []byte
			buf := make([]byte, seg)
			for !p.Done() {
				k, _ := p.PackTo(buf)
				pieced = append(pieced, buf[:k]...)
			}
			if !bytes.Equal(pieced, want) {
				t.Fatalf("%s: compiled pack differs at segment size %d", name, seg)
			}
		}

		// Round trip: unpack the packed bytes through the compiled program
		// into a scratch region and re-pack; the stream must be unchanged.
		scratch := m.MustAlloc(span + 1)
		u := NewProgramUnpacker(m, scratch, prog)
		if k, _ := u.UnpackFrom(want); k != size || !u.Done() {
			t.Fatalf("%s: program unpack consumed %d of %d bytes", name, k, size)
		}
		back := make([]byte, size)
		NewProgramPacker(m, scratch, prog).PackTo(back)
		if !bytes.Equal(back, want) {
			t.Fatalf("%s: compiled unpack/pack round trip differs", name)
		}
	}
}

// TestParallelProgramMatchesInterpreted checks the parallel engine: for
// every worker count and segment size, the compiled-program parallel pack
// and unpack produce bytes identical to the interpreted serial engine, with
// identical run totals (the invariant the virtual-time cost model rests on).
func TestParallelProgramMatchesInterpreted(t *testing.T) {
	for name, tc := range progTestShapes(t) {
		if tc.count == 0 {
			continue // nothing to shard
		}
		span := messageSpan(tc.dt, tc.count)
		m := mem.NewMemory("n", 2*span+(1<<20))
		base := m.MustAlloc(span + 1)
		fillPattern(m, base, span, 11)
		size := tc.dt.Size() * int64(tc.count)

		want := make([]byte, size)
		_, wantRuns := NewPacker(m, base, tc.dt, tc.count).PackTo(want)

		dst := m.MustAlloc(span + 1)
		prog := datatype.Compile(tc.dt, tc.count)
		for _, workers := range []int{1, 2, 3, 8} {
			opt := Par{Workers: workers, Exec: GoExec{}, MinShard: 64}
			for _, seg := range []int64{129, 1 << 12, size} {
				t.Run(fmt.Sprintf("%s/w%d/seg%d", name, workers, seg), func(t *testing.T) {
					p := NewParallelProgramPacker(m, base, prog, opt)
					var pieced []byte
					runs := 0
					buf := make([]byte, seg)
					for !p.Done() {
						st := p.Pack(buf)
						pieced = append(pieced, buf[:st.Bytes]...)
						runs += st.Runs
					}
					if !bytes.Equal(pieced, want) {
						t.Fatal("parallel compiled pack differs from interpreted serial")
					}
					if seg >= size && runs != wantRuns {
						t.Fatalf("run total %d, interpreted %d", runs, wantRuns)
					}

					clear(m.Bytes(dst, span))
					u := NewParallelProgramUnpacker(m, dst, prog, opt)
					for off := int64(0); off < size; {
						end := off + seg
						if end > size {
							end = size
						}
						st := u.Unpack(want[off:end])
						off += st.Bytes
					}
					back := make([]byte, size)
					NewProgramPacker(m, dst, prog).PackTo(back)
					if !bytes.Equal(back, want) {
						t.Fatal("parallel compiled unpack differs")
					}
				})
			}
		}
	}
}

// TestProgramPackerZeroAlloc is the steady-state allocation contract: once a
// canonical program is compiled and its packer warm, Reset + whole-message
// PackTo/UnpackFrom must not allocate at all.
func TestProgramPackerZeroAlloc(t *testing.T) {
	must := datatype.Must
	for name, dt := range map[string]*datatype.Type{
		"contig":  must(datatype.TypeContiguous(4096, datatype.Int32)),
		"strided": must(datatype.TypeVector(128, 2, 32, datatype.Int32)),
		"indexed": must(datatype.TypeIndexedBlock(4, []int{0, 16, 40}, datatype.Int32)),
	} {
		span := messageSpan(dt, 1)
		m := mem.NewMemory("n", span+(16<<10))
		base := m.MustAlloc(span + 1)
		fillPattern(m, base, span, 3)
		prog := datatype.Compile(dt, 1)
		if prog.Kind() == datatype.ProgGeneric {
			t.Fatalf("%s: expected a canonical program", name)
		}
		buf := make([]byte, dt.Size())
		p := NewProgramPacker(m, base, prog)
		u := NewProgramUnpacker(m, base, prog)
		p.PackTo(buf) // warm
		u.UnpackFrom(buf)

		if allocs := testing.AllocsPerRun(50, func() {
			p.Reset()
			p.PackTo(buf)
		}); allocs != 0 {
			t.Errorf("%s: pack allocates %.1f per run, want 0", name, allocs)
		}
		if allocs := testing.AllocsPerRun(50, func() {
			u.Reset()
			u.UnpackFrom(buf)
		}); allocs != 0 {
			t.Errorf("%s: unpack allocates %.1f per run, want 0", name, allocs)
		}
	}
}

// TestProgramBlocks checks the block-enumeration path used for registration
// grouping: ProgramBlocks must agree with MessageBlocks on canonical
// programs, honor the limit contract, and fall back for generic programs.
func TestProgramBlocks(t *testing.T) {
	for name, tc := range progTestShapes(t) {
		prog := datatype.Compile(tc.dt, tc.count)
		base := mem.Addr(1 << 20)
		want, wantTrunc := MessageBlocks(base, tc.dt, tc.count, 0)
		got, trunc := ProgramBlocks(base, prog, 0)
		if trunc != wantTrunc || len(got) != len(want) {
			t.Fatalf("%s: %d blocks trunc=%v, want %d trunc=%v", name, len(got), trunc, len(want), wantTrunc)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: block %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
		if len(want) > 1 {
			lim, trunc := ProgramBlocks(base, prog, len(want)-1)
			if !trunc || len(lim) != len(want)-1 {
				t.Fatalf("%s: limited call returned %d blocks trunc=%v", name, len(lim), trunc)
			}
			atLim, trunc := ProgramBlocks(base, prog, len(want))
			if trunc || len(atLim) != len(want) {
				t.Fatalf("%s: at-limit call returned %d blocks trunc=%v", name, len(atLim), trunc)
			}
		}
	}
}

// TestShardRunsBoundary is the straddling-run satellite: a minimum shard
// smaller than a single run must never cause a mid-run split, a zero
// minimum must not panic, and random run lists must always concatenate back
// in order.
func TestShardRunsBoundary(t *testing.T) {
	// One run far larger than minShard sitting across the even split point:
	// the run must land whole in one shard.
	refs := []runRef{
		{addr: 0x1000, off: 0, n: 100},
		{addr: 0x2000, off: 100, n: 10000}, // straddles any boundary
		{addr: 0x3000, off: 10100, n: 100},
	}
	shards := shardRuns(refs, 10200, 4, 64, nil)
	var flat []runRef
	for _, sh := range shards {
		flat = append(flat, sh...)
	}
	if len(flat) != len(refs) {
		t.Fatalf("straddling run split: %d refs after sharding, want %d", len(flat), len(refs))
	}
	for i := range refs {
		if flat[i] != refs[i] {
			t.Fatalf("run %d altered by sharding: %+v vs %+v", i, flat[i], refs[i])
		}
	}

	// minShard 0 (and negative) must clamp, not panic or loop.
	for _, ms := range []int64{0, -5} {
		sh := shardRuns(refs, 10200, 4, ms, nil)
		if len(sh) == 0 || len(sh) > 4 {
			t.Fatalf("minShard=%d: %d shards", ms, len(sh))
		}
	}

	// Randomized property: concatenation invariant, shard-count bound, no
	// empty shards, for arbitrary run lists and parameters.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		nruns := 1 + rng.Intn(40)
		var refs []runRef
		var total int64
		for i := 0; i < nruns; i++ {
			n := int64(1 + rng.Intn(1<<14))
			refs = append(refs, runRef{addr: mem.Addr(rng.Int63n(1 << 30)), off: total, n: n})
			total += n
		}
		workers := 1 + rng.Intn(12)
		minShard := int64(rng.Intn(1 << 15)) // includes 0
		shards := shardRuns(refs, total, workers, minShard, nil)
		if len(shards) > workers {
			t.Fatalf("trial %d: %d shards for %d workers", trial, len(shards), workers)
		}
		var flat []runRef
		for _, sh := range shards {
			if len(sh) == 0 {
				t.Fatalf("trial %d: empty shard", trial)
			}
			flat = append(flat, sh...)
		}
		if len(flat) != len(refs) {
			t.Fatalf("trial %d: %d runs after sharding, want %d", trial, len(flat), len(refs))
		}
		for i := range refs {
			if flat[i] != refs[i] {
				t.Fatalf("trial %d: run %d split or reordered", trial, i)
			}
		}
	}
}
