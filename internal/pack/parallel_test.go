package pack

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mem"
)

// parTestTypes are layout shapes with very different run structures: regular
// runs, irregular runs, and runs far larger than the minimum shard.
func parTestTypes(t *testing.T) map[string]struct {
	dt    *datatype.Type
	count int
} {
	t.Helper()
	vector, err := datatype.TypeVector(256, 64, 128, datatype.Int32)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := datatype.TypeIndexed(
		[]int{300, 1, 77, 5, 1024, 2, 63},
		[]int{0, 305, 310, 400, 410, 1440, 1450},
		datatype.Int32)
	if err != nil {
		t.Fatal(err)
	}
	bigruns, err := datatype.TypeVector(8, 4096, 5000, datatype.Int32)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]struct {
		dt    *datatype.Type
		count int
	}{
		"vector":  {vector, 3},
		"indexed": {indexed, 11},
		"bigruns": {bigruns, 2},
	}
}

// TestParallelPackMatchesSerial is the determinism contract of the parallel
// segment engine: for every worker count, executor, and segment size, the
// packed bytes are identical to the serial engine's, and the reported totals
// match run for run.
func TestParallelPackMatchesSerial(t *testing.T) {
	for name, tc := range parTestTypes(t) {
		size := tc.dt.Size() * int64(tc.count)
		span := tc.dt.TrueExtent() + int64(tc.count-1)*tc.dt.Extent()
		m := mem.NewMemory("n", span+(4<<20))
		base := m.MustAlloc(span)
		fillPattern(m, base, span, 7)

		want := make([]byte, size)
		wantN, wantRuns := NewPacker(m, base, tc.dt, tc.count).PackTo(want)
		if wantN != size {
			t.Fatalf("%s: serial packed %d of %d bytes", name, wantN, size)
		}

		for _, workers := range []int{1, 2, 3, 4, 8} {
			for _, exec := range []Executor{SerialExec{}, GoExec{}} {
				for _, segSize := range []int64{size, 32 << 10, 13000} {
					label := fmt.Sprintf("%s/w%d/%T/seg%d", name, workers, exec, segSize)
					opt := Par{Workers: workers, Exec: exec, MinShard: 4 << 10}
					p := NewParallelPacker(m, base, tc.dt, tc.count, opt)
					got := make([]byte, size)
					var runs int
					for off := int64(0); off < size; {
						end := off + segSize
						if end > size {
							end = size
						}
						st := p.Pack(got[off:end])
						if st.Bytes != end-off {
							t.Fatalf("%s: step packed %d, want %d", label, st.Bytes, end-off)
						}
						var shardBytes int64
						var shardRuns int
						for _, sh := range st.Shards {
							shardBytes += sh.Bytes
							shardRuns += sh.Runs
						}
						if shardBytes != st.Bytes || shardRuns != st.Runs {
							t.Fatalf("%s: shard stats (%d B, %d runs) disagree with totals (%d B, %d runs)",
								label, shardBytes, shardRuns, st.Bytes, st.Runs)
						}
						runs += st.Runs
						off = end
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s: parallel pack differs from serial", label)
					}
					// Whole-message packs must also report the serial run count
					// (segmented packs may split a run across two steps).
					if segSize == size && runs != wantRuns {
						t.Fatalf("%s: %d runs, serial reports %d", label, runs, wantRuns)
					}
				}
			}
		}
	}
}

// TestParallelUnpackMatchesSerial round-trips through the parallel unpacker
// at every worker count and compares the scattered layout bytes with the
// serial unpacker's result.
func TestParallelUnpackMatchesSerial(t *testing.T) {
	for name, tc := range parTestTypes(t) {
		size := tc.dt.Size() * int64(tc.count)
		span := tc.dt.TrueExtent() + int64(tc.count-1)*tc.dt.Extent()
		src := make([]byte, size)
		for i := range src {
			src[i] = byte(i*31 + 11)
		}

		wantMem := mem.NewMemory("want", span+(4<<20))
		wantBase := wantMem.MustAlloc(span)
		if n, _ := NewUnpacker(wantMem, wantBase, tc.dt, tc.count).UnpackFrom(src); n != size {
			t.Fatalf("%s: serial unpacked %d of %d", name, n, size)
		}
		want := wantMem.Bytes(wantBase, span)

		for _, workers := range []int{1, 2, 4, 8} {
			for _, exec := range []Executor{SerialExec{}, GoExec{}} {
				label := fmt.Sprintf("%s/w%d/%T", name, workers, exec)
				m := mem.NewMemory("n", span+(4<<20))
				base := m.MustAlloc(span)
				opt := Par{Workers: workers, Exec: exec, MinShard: 4 << 10}
				u := NewParallelUnpacker(m, base, tc.dt, tc.count, opt)
				for off := int64(0); off < size; {
					end := off + 24<<10
					if end > size {
						end = size
					}
					st := u.Unpack(src[off:end])
					if st.Bytes != end-off {
						t.Fatalf("%s: step unpacked %d, want %d", label, st.Bytes, end-off)
					}
					off = end
				}
				if !bytes.Equal(m.Bytes(base, span), want) {
					t.Fatalf("%s: parallel unpack differs from serial", label)
				}
			}
		}
	}
}

// TestShardRunsProperties checks the partitioner's invariants directly:
// shards are contiguous and cover every run exactly once, no run is split,
// the shard count honors workers and the minimum shard size, and the split
// is deterministic.
func TestShardRunsProperties(t *testing.T) {
	mkRefs := func(lens ...int64) ([]runRef, int64) {
		var refs []runRef
		var off int64
		for i, n := range lens {
			refs = append(refs, runRef{addr: mem.Addr(1000 * (i + 1)), off: off, n: n})
			off += n
		}
		return refs, off
	}

	check := func(name string, refs []runRef, total int64, workers int, minShard int64, wantMax int) {
		t.Helper()
		shards := shardRuns(refs, total, workers, minShard, nil)
		if len(shards) > wantMax {
			t.Fatalf("%s: %d shards, want <= %d", name, len(shards), wantMax)
		}
		var flat []runRef
		for _, sh := range shards {
			if len(sh) == 0 {
				t.Fatalf("%s: empty shard", name)
			}
			flat = append(flat, sh...)
		}
		if len(flat) != len(refs) {
			t.Fatalf("%s: %d runs after sharding, want %d", name, len(flat), len(refs))
		}
		for i := range flat {
			if flat[i] != refs[i] {
				t.Fatalf("%s: run %d reordered or split", name, i)
			}
		}
		again := shardRuns(refs, total, workers, minShard, nil)
		if len(again) != len(shards) {
			t.Fatalf("%s: nondeterministic shard count", name)
		}
	}

	refs, total := mkRefs(8<<10, 8<<10, 8<<10, 8<<10, 8<<10, 8<<10, 8<<10, 8<<10)
	check("even", refs, total, 4, 4<<10, 4)

	// minShard limits the fan-out: 64 KB at a 32 KB floor is at most 2 shards.
	check("minshard", refs, total, 8, 32<<10, 2)

	// One giant run cannot be split no matter the worker count.
	refs, total = mkRefs(1 << 20)
	check("giant", refs, total, 8, 4<<10, 1)

	// Skewed runs: every run lands in exactly one shard.
	refs, total = mkRefs(100<<10, 1<<10, 1<<10, 1<<10, 60<<10, 2<<10)
	check("skewed", refs, total, 4, 4<<10, 4)

	// Fewer runs than workers: one shard per run at most.
	refs, total = mkRefs(16<<10, 16<<10)
	check("fewruns", refs, total, 8, 1<<10, 2)
}

// TestGoExecRunsAllTasks makes sure the capped-lane executor executes every
// task exactly once for task counts around the lane count.
func TestGoExecRunsAllTasks(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33} {
		ran := make([]int32, n)
		tasks := make([]func(), n)
		for i := range tasks {
			i := i
			tasks[i] = func() { ran[i]++ }
		}
		GoExec{}.Run(tasks)
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("n=%d: task %d ran %d times", n, i, c)
			}
		}
	}
}
