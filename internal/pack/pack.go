// Package pack implements segment pack and unpack engines over datatype
// layouts: resumable copies between a noncontiguous user buffer in simulated
// memory and contiguous staging storage. The engines report how many bytes
// and how many contiguous runs each step touched so callers can charge the
// modeled copy cost (bandwidth plus per-run startup).
//
// An engine walks its layout one of two ways: the interpreted datatype
// Cursor (re-walking the dataloop tree) or a compiled layout Program
// replayed through a ProgCursor (O(1) advance, no allocation on reset).
// Both emit the identical run sequence, so staging bytes and run statistics
// do not depend on which walk a caller picked.
package pack

import (
	"repro/internal/datatype"
	"repro/internal/mem"
)

// Packer copies a (type, count) message out of a user buffer into contiguous
// destinations, any number of bytes at a time.
type Packer struct {
	mem   *mem.Memory
	base  mem.Addr
	t     *datatype.Type
	count int

	prog *datatype.Program   // non-nil: replay the compiled program
	pc   datatype.ProgCursor // compiled walk state (valid when prog != nil)
	cur  *datatype.Cursor    // interpreted walk state (when prog == nil)
}

// NewPacker creates a packer over the message (base, count, t) in m using
// the interpreted cursor walk.
func NewPacker(m *mem.Memory, base mem.Addr, t *datatype.Type, count int) *Packer {
	return &Packer{mem: m, base: base, t: t, count: count, cur: datatype.NewCursor(t, count)}
}

// NewProgramPacker creates a packer over the message (base, prog) in m that
// replays the compiled layout program instead of walking the dataloop tree.
// The program is shared and immutable; the packer keeps private cursor state.
func NewProgramPacker(m *mem.Memory, base mem.Addr, prog *datatype.Program) *Packer {
	p := &Packer{mem: m, base: base, t: prog.Type(), count: prog.Count(), prog: prog}
	p.pc.Reset(prog)
	return p
}

// Reset rewinds the packer to the start of its message so it can be reused.
// Resetting a program packer over a canonical program allocates nothing.
func (p *Packer) Reset() {
	if p.prog != nil {
		p.pc.Reset(p.prog)
		return
	}
	p.cur = datatype.NewCursor(p.t, p.count)
}

// walker returns the packer's layout walk as the shared streaming interface.
func (p *Packer) walker() datatype.RunWalker {
	if p.prog != nil {
		return &p.pc
	}
	return p.cur
}

// Remaining reports unpacked bytes left.
func (p *Packer) Remaining() int64 { return p.walker().Remaining() }

// Done reports whether the whole message has been packed.
func (p *Packer) Done() bool { return p.walker().Done() }

// PackTo fills dst with the next len(dst) bytes of the message (or fewer if
// the message ends), returning the bytes written and the number of
// contiguous runs touched.
func (p *Packer) PackTo(dst []byte) (n int64, runs int) {
	if p.prog != nil {
		// Compiled replay: the concrete cursor advance is a counter
		// increment plus an add per run (see datatype.ProgCursor).
		for int64(len(dst))-n > 0 {
			off, k, ok := p.pc.Next(int64(len(dst)) - n)
			if !ok {
				break
			}
			copy(dst[n:n+k], p.mem.Bytes(addrAt(p.base, off), k))
			n += k
			runs++
		}
		return n, runs
	}
	for int64(len(dst))-n > 0 {
		off, k, ok := p.cur.Next(int64(len(dst)) - n)
		if !ok {
			break
		}
		src := p.mem.Bytes(addrAt(p.base, off), k)
		copy(dst[n:n+k], src)
		n += k
		runs++
	}
	return n, runs
}

// Unpacker copies contiguous staging bytes back into a noncontiguous user
// buffer, any number of bytes at a time.
type Unpacker struct {
	mem   *mem.Memory
	base  mem.Addr
	t     *datatype.Type
	count int

	prog *datatype.Program
	pc   datatype.ProgCursor
	cur  *datatype.Cursor
}

// NewUnpacker creates an unpacker over the message (base, count, t) in m
// using the interpreted cursor walk.
func NewUnpacker(m *mem.Memory, base mem.Addr, t *datatype.Type, count int) *Unpacker {
	return &Unpacker{mem: m, base: base, t: t, count: count, cur: datatype.NewCursor(t, count)}
}

// NewProgramUnpacker creates an unpacker over the message (base, prog) in m
// that replays the compiled layout program.
func NewProgramUnpacker(m *mem.Memory, base mem.Addr, prog *datatype.Program) *Unpacker {
	u := &Unpacker{mem: m, base: base, t: prog.Type(), count: prog.Count(), prog: prog}
	u.pc.Reset(prog)
	return u
}

// Reset rewinds the unpacker to the start of its message so it can be
// reused. Resetting a program unpacker over a canonical program allocates
// nothing.
func (u *Unpacker) Reset() {
	if u.prog != nil {
		u.pc.Reset(u.prog)
		return
	}
	u.cur = datatype.NewCursor(u.t, u.count)
}

// walker returns the unpacker's layout walk as the shared streaming
// interface.
func (u *Unpacker) walker() datatype.RunWalker {
	if u.prog != nil {
		return &u.pc
	}
	return u.cur
}

// Remaining reports bytes left to unpack.
func (u *Unpacker) Remaining() int64 { return u.walker().Remaining() }

// Done reports whether the whole message has been unpacked.
func (u *Unpacker) Done() bool { return u.walker().Done() }

// UnpackFrom scatters src into the next len(src) bytes' worth of message
// positions, returning bytes consumed and contiguous runs touched.
func (u *Unpacker) UnpackFrom(src []byte) (n int64, runs int) {
	if u.prog != nil {
		for int64(len(src))-n > 0 {
			off, k, ok := u.pc.Next(int64(len(src)) - n)
			if !ok {
				break
			}
			copy(u.mem.Bytes(addrAt(u.base, off), k), src[n:n+k])
			n += k
			runs++
		}
		return n, runs
	}
	for int64(len(src))-n > 0 {
		off, k, ok := u.cur.Next(int64(len(src)) - n)
		if !ok {
			break
		}
		dst := u.mem.Bytes(addrAt(u.base, off), k)
		copy(dst, src[n:n+k])
		n += k
		runs++
	}
	return n, runs
}

// addrAt applies a possibly negative datatype offset to a base address.
func addrAt(base mem.Addr, off int64) mem.Addr {
	return mem.Addr(int64(base) + off)
}

// MessageBlocks returns the absolute-address contiguous blocks of a message,
// the form the registration machinery (OGR) consumes. limit bounds the
// number of runs (0 = no limit); the bool reports truncation.
func MessageBlocks(base mem.Addr, t *datatype.Type, count, limit int) ([]mem.Block, bool) {
	runs, trunc := datatype.Flatten(t, count, limit)
	out := make([]mem.Block, len(runs))
	for i, r := range runs {
		out[i] = mem.Block{Addr: addrAt(base, r.Off), Len: r.Len}
	}
	return out, trunc
}

// ProgramBlocks is MessageBlocks from a compiled program: canonical programs
// emit their run table directly (no re-flatten); generic programs fall back
// to the flatten walk. limit bounds the number of runs (0 = no limit); the
// bool reports truncation.
func ProgramBlocks(base mem.Addr, prog *datatype.Program, limit int) ([]mem.Block, bool) {
	if prog.Kind() == datatype.ProgGeneric {
		return MessageBlocks(base, prog.Type(), prog.Count(), limit)
	}
	runs := prog.Runs()
	trunc := false
	if limit > 0 && runs > int64(limit) {
		runs = int64(limit)
		trunc = true
	}
	out := make([]mem.Block, runs)
	for i := int64(0); i < runs; i++ {
		off, n := prog.RunAt(i)
		out[i] = mem.Block{Addr: addrAt(base, off), Len: n}
	}
	return out, trunc
}
