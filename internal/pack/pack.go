// Package pack implements segment pack and unpack engines over datatype
// cursors: resumable copies between a noncontiguous user buffer in simulated
// memory and contiguous staging storage. The engines report how many bytes
// and how many contiguous runs each step touched so callers can charge the
// modeled copy cost (bandwidth plus per-run startup).
package pack

import (
	"repro/internal/datatype"
	"repro/internal/mem"
)

// Packer copies a (type, count) message out of a user buffer into contiguous
// destinations, any number of bytes at a time.
type Packer struct {
	mem  *mem.Memory
	base mem.Addr
	cur  *datatype.Cursor
}

// NewPacker creates a packer over the message (base, count, t) in m.
func NewPacker(m *mem.Memory, base mem.Addr, t *datatype.Type, count int) *Packer {
	return &Packer{mem: m, base: base, cur: datatype.NewCursor(t, count)}
}

// Remaining reports unpacked bytes left.
func (p *Packer) Remaining() int64 { return p.cur.Remaining() }

// Done reports whether the whole message has been packed.
func (p *Packer) Done() bool { return p.cur.Done() }

// PackTo fills dst with the next len(dst) bytes of the message (or fewer if
// the message ends), returning the bytes written and the number of
// contiguous runs touched.
func (p *Packer) PackTo(dst []byte) (n int64, runs int) {
	for int64(len(dst))-n > 0 {
		off, k, ok := p.cur.Next(int64(len(dst)) - n)
		if !ok {
			break
		}
		src := p.mem.Bytes(addrAt(p.base, off), k)
		copy(dst[n:n+k], src)
		n += k
		runs++
	}
	return n, runs
}

// Unpacker copies contiguous staging bytes back into a noncontiguous user
// buffer, any number of bytes at a time.
type Unpacker struct {
	mem  *mem.Memory
	base mem.Addr
	cur  *datatype.Cursor
}

// NewUnpacker creates an unpacker over the message (base, count, t) in m.
func NewUnpacker(m *mem.Memory, base mem.Addr, t *datatype.Type, count int) *Unpacker {
	return &Unpacker{mem: m, base: base, cur: datatype.NewCursor(t, count)}
}

// Remaining reports bytes left to unpack.
func (u *Unpacker) Remaining() int64 { return u.cur.Remaining() }

// Done reports whether the whole message has been unpacked.
func (u *Unpacker) Done() bool { return u.cur.Done() }

// UnpackFrom scatters src into the next len(src) bytes' worth of message
// positions, returning bytes consumed and contiguous runs touched.
func (u *Unpacker) UnpackFrom(src []byte) (n int64, runs int) {
	for int64(len(src))-n > 0 {
		off, k, ok := u.cur.Next(int64(len(src)) - n)
		if !ok {
			break
		}
		dst := u.mem.Bytes(addrAt(u.base, off), k)
		copy(dst, src[n:n+k])
		n += k
		runs++
	}
	return n, runs
}

// addrAt applies a possibly negative datatype offset to a base address.
func addrAt(base mem.Addr, off int64) mem.Addr {
	return mem.Addr(int64(base) + off)
}

// MessageBlocks returns the absolute-address contiguous blocks of a message,
// the form the registration machinery (OGR) consumes. limit bounds the
// number of runs (0 = no limit); the bool reports truncation.
func MessageBlocks(base mem.Addr, t *datatype.Type, count, limit int) ([]mem.Block, bool) {
	runs, trunc := datatype.Flatten(t, count, limit)
	out := make([]mem.Block, len(runs))
	for i, r := range runs {
		out[i] = mem.Block{Addr: addrAt(base, r.Off), Len: r.Len}
	}
	return out, trunc
}
