package pack

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datatype"
	"repro/internal/mem"
)

// fillPattern writes a deterministic pattern over a range.
func fillPattern(m *mem.Memory, a mem.Addr, n int64, seed byte) {
	bs := m.Bytes(a, n)
	for i := range bs {
		bs[i] = seed + byte(i*13)
	}
}

func TestPackVector(t *testing.T) {
	m := mem.NewMemory("n", 1<<20)
	v := datatype.Must(datatype.TypeVector(4, 2, 5, datatype.Int32))
	base := m.MustAlloc(v.TrueExtent())
	fillPattern(m, base, v.TrueExtent(), 1)

	p := NewPacker(m, base, v, 1)
	dst := make([]byte, v.Size())
	n, runs := p.PackTo(dst)
	if n != v.Size() || runs != 4 {
		t.Fatalf("n=%d runs=%d", n, runs)
	}
	if !p.Done() {
		t.Fatal("packer not done")
	}
	// Verify against a manual gather.
	var want []byte
	for i := 0; i < 4; i++ {
		off := int64(i) * 20
		want = append(want, m.Bytes(base+mem.Addr(off), 8)...)
	}
	if !bytes.Equal(dst, want) {
		t.Fatal("packed bytes mismatch")
	}
}

func TestPackInSegments(t *testing.T) {
	m := mem.NewMemory("n", 1<<20)
	v := datatype.Must(datatype.TypeVector(16, 3, 7, datatype.Int32))
	base := m.MustAlloc(v.TrueExtent())
	fillPattern(m, base, v.TrueExtent(), 9)

	whole := make([]byte, v.Size())
	NewPacker(m, base, v, 1).PackTo(whole)

	p := NewPacker(m, base, v, 1)
	var pieced []byte
	seg := make([]byte, 13) // awkward segment size crossing run boundaries
	for !p.Done() {
		n, _ := p.PackTo(seg)
		pieced = append(pieced, seg[:n]...)
	}
	if !bytes.Equal(pieced, whole) {
		t.Fatal("segment pack differs from whole pack")
	}
}

func TestUnpackRoundTrip(t *testing.T) {
	m := mem.NewMemory("n", 1<<20)
	st := datatype.Must(datatype.TypeStruct(
		[]int{1, 2, 4}, []int64{0, 8, 24}, []*datatype.Type{datatype.Int32, datatype.Int32, datatype.Int32}))
	src := m.MustAlloc(st.TrueExtent())
	dst := m.MustAlloc(st.TrueExtent())
	fillPattern(m, src, st.TrueExtent(), 3)

	packed := make([]byte, st.Size())
	NewPacker(m, src, st, 1).PackTo(packed)

	u := NewUnpacker(m, dst, st, 1)
	n, runs := u.UnpackFrom(packed)
	if n != st.Size() || runs != 3 {
		t.Fatalf("n=%d runs=%d", n, runs)
	}
	// Compare only the datatype-covered bytes.
	srcPacked := make([]byte, st.Size())
	NewPacker(m, src, st, 1).PackTo(srcPacked)
	dstPacked := make([]byte, st.Size())
	NewPacker(m, dst, st, 1).PackTo(dstPacked)
	if !bytes.Equal(srcPacked, dstPacked) {
		t.Fatal("unpack did not reproduce source data")
	}
}

func TestUnpackSegmented(t *testing.T) {
	m := mem.NewMemory("n", 1<<20)
	v := datatype.Must(datatype.TypeVector(8, 1, 3, datatype.Float64))
	src := m.MustAlloc(v.TrueExtent())
	dst := m.MustAlloc(v.TrueExtent())
	fillPattern(m, src, v.TrueExtent(), 77)

	packed := make([]byte, v.Size())
	NewPacker(m, src, v, 1).PackTo(packed)

	u := NewUnpacker(m, dst, v, 1)
	for off := 0; off < len(packed); off += 10 {
		end := off + 10
		if end > len(packed) {
			end = len(packed)
		}
		u.UnpackFrom(packed[off:end])
	}
	if !u.Done() {
		t.Fatal("unpacker not done")
	}
	a := make([]byte, v.Size())
	NewPacker(m, dst, v, 1).PackTo(a)
	if !bytes.Equal(a, packed) {
		t.Fatal("segmented unpack mismatch")
	}
}

func TestMessageBlocks(t *testing.T) {
	m := mem.NewMemory("n", 1<<20)
	v := datatype.Must(datatype.TypeVector(3, 1, 4, datatype.Int32))
	base := m.MustAlloc(256)
	blocks, trunc := MessageBlocks(base, v, 1, 0)
	if trunc || len(blocks) != 3 {
		t.Fatalf("blocks=%v trunc=%v", blocks, trunc)
	}
	for i, b := range blocks {
		want := base + mem.Addr(i*16)
		if b.Addr != want || b.Len != 4 {
			t.Fatalf("block %d = %+v, want addr %#x len 4", i, b, want)
		}
	}
}

// Property: pack ∘ unpack is the identity on the datatype-covered bytes for
// random types, counts and segment sizes, and bytes outside the datatype are
// untouched.
func TestPackUnpackIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := randomType(rng, 3)
		count := rng.Intn(3) + 1
		span := dt.TrueExtent() + int64(count-1)*dt.Extent()
		if span <= 0 || span > 1<<18 {
			return true // degenerate or oversized; skip
		}
		m := mem.NewMemory("p", span*4+1<<16)
		src := m.MustAlloc(span)
		dst := m.MustAlloc(span)
		fillPattern(m, src, span, byte(seed))
		// Sentinel pattern in dst to detect stray writes.
		sent := m.Bytes(dst, span)
		for i := range sent {
			sent[i] = 0xEE
		}

		adjSrc := mem.Addr(int64(src) - dt.TrueLB())
		adjDst := mem.Addr(int64(dst) - dt.TrueLB())

		packed := make([]byte, dt.Size()*int64(count))
		p := NewPacker(m, adjSrc, dt, count)
		var n int64
		for !p.Done() {
			k := rng.Intn(63) + 1
			end := n + int64(k)
			if end > int64(len(packed)) {
				end = int64(len(packed))
			}
			w, _ := p.PackTo(packed[n:end])
			n += w
		}
		if n != int64(len(packed)) {
			return false
		}
		u := NewUnpacker(m, adjDst, dt, count)
		var c int64
		for !u.Done() {
			k := int64(rng.Intn(63) + 1)
			if c+k > int64(len(packed)) {
				k = int64(len(packed)) - c
			}
			r, _ := u.UnpackFrom(packed[c : c+k])
			c += r
		}
		// Covered bytes equal; uncovered bytes still sentinel.
		repacked := make([]byte, len(packed))
		NewPacker(m, adjDst, dt, count).PackTo(repacked)
		if !bytes.Equal(repacked, packed) {
			return false
		}
		covered := make(map[int64]bool)
		blocks, _ := datatype.Flatten(dt, count, 0)
		for _, b := range blocks {
			for i := int64(0); i < b.Len; i++ {
				covered[b.Off+i-dt.TrueLB()] = true
			}
		}
		dstBytes := m.Bytes(dst, span)
		for i := int64(0); i < span; i++ {
			if !covered[i] && dstBytes[i] != 0xEE {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// randomType mirrors the generator in the datatype package tests (kept local
// to avoid exporting test helpers).
func randomType(rng *rand.Rand, depth int) *datatype.Type {
	bases := []*datatype.Type{datatype.Byte, datatype.Int32, datatype.Float64}
	if depth <= 0 || rng.Intn(3) == 0 {
		return bases[rng.Intn(len(bases))]
	}
	child := randomType(rng, depth-1)
	switch rng.Intn(3) {
	case 0:
		return datatype.Must(datatype.TypeContiguous(rng.Intn(4)+1, child))
	case 1:
		bl := rng.Intn(3) + 1
		return datatype.Must(datatype.TypeVector(rng.Intn(4)+1, bl, bl+rng.Intn(4), child))
	default:
		n := rng.Intn(3) + 1
		lens := make([]int, n)
		displs := make([]int, n)
		pos := 0
		for i := 0; i < n; i++ {
			lens[i] = rng.Intn(3) + 1
			displs[i] = pos
			pos += lens[i] + rng.Intn(4)
		}
		return datatype.Must(datatype.TypeIndexed(lens, displs, child))
	}
}
