package mpi

import (
	"repro/internal/mem"
)

// Scan computes an inclusive prefix reduction: rank i receives op applied
// over ranks 0..i (MPI_Scan). Linear-chain algorithm.
func (c *Comm) Scan(sbuf, rbuf mem.Addr, count int, op Op) error {
	dt, err := opType(op)
	if err != nil {
		return err
	}
	bytes := int64(count) * op.Elem
	copy(c.p.Mem().Bytes(rbuf, bytes), c.p.Mem().Bytes(sbuf, bytes))
	if c.Rank() > 0 {
		tmp := c.p.Mem().MustAlloc(bytes)
		defer c.p.Mem().Free(tmp)
		if _, err := c.collRecv(tmp, count, dt, c.Rank()-1, tagScan); err != nil {
			return err
		}
		c.combine(op, rbuf, tmp, count)
	}
	if c.Rank() < c.Size()-1 {
		return c.collSend(rbuf, count, dt, c.Rank()+1, tagScan)
	}
	return nil
}

// Scan over the world communicator.
func (p *Proc) Scan(sbuf, rbuf mem.Addr, count int, op Op) error {
	return p.World().Scan(sbuf, rbuf, count, op)
}
