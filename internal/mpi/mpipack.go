package mpi

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/pack"
)

// Explicit pack/unpack, the MPI_Pack/MPI_Unpack user API — what applications
// resorted to before datatype communication was fast (the paper's Section 1:
// "a programmer often prefers packing and unpacking noncontiguous data
// manually"). Charged as local computation at pure copy cost.

// PackSize returns the buffer space needed to pack (count, dt), the
// MPI_Pack_size analogue.
func PackSize(count int, dt *datatype.Type) int64 {
	return dt.Size() * int64(count)
}

// Pack copies the (buf, count, dt) message into out starting at position
// pos and returns the new position.
func (p *Proc) Pack(buf mem.Addr, count int, dt *datatype.Type, out []byte, pos int) (int, error) {
	n := PackSize(count, dt)
	if int64(pos)+n > int64(len(out)) {
		return pos, fmt.Errorf("mpi: Pack needs %d bytes at %d, have %d", n, pos, len(out))
	}
	pk := p.newPacker(buf, count, dt)
	got, runs := pk.PackTo(out[pos : int64(pos)+n])
	if got != n {
		return pos, fmt.Errorf("mpi: Pack short: %d of %d", got, n)
	}
	p.Compute(p.w.cfg.Model.CopyTime(n, runs))
	return pos + int(n), nil
}

// newPacker builds the explicit-pack engine, replaying a compiled layout
// program unless the endpoint opted back into the interpreted walk. The
// program is compiled per call — MPI_Pack is a user-level convenience, not
// the transfer hot path.
func (p *Proc) newPacker(buf mem.Addr, count int, dt *datatype.Type) *pack.Packer {
	if p.Endpoint().Config().InterpretedPack {
		return pack.NewPacker(p.Mem(), buf, dt, count)
	}
	return pack.NewProgramPacker(p.Mem(), buf, datatype.Compile(dt, count))
}

// newUnpacker is newPacker's unpack counterpart.
func (p *Proc) newUnpacker(buf mem.Addr, count int, dt *datatype.Type) *pack.Unpacker {
	if p.Endpoint().Config().InterpretedPack {
		return pack.NewUnpacker(p.Mem(), buf, dt, count)
	}
	return pack.NewProgramUnpacker(p.Mem(), buf, datatype.Compile(dt, count))
}

// Unpack copies packed bytes from in starting at pos into the (buf, count,
// dt) message and returns the new position.
func (p *Proc) Unpack(in []byte, pos int, buf mem.Addr, count int, dt *datatype.Type) (int, error) {
	n := PackSize(count, dt)
	if int64(pos)+n > int64(len(in)) {
		return pos, fmt.Errorf("mpi: Unpack needs %d bytes at %d, have %d", n, pos, len(in))
	}
	u := p.newUnpacker(buf, count, dt)
	got, runs := u.UnpackFrom(in[pos : int64(pos)+n])
	if got != n {
		return pos, fmt.Errorf("mpi: Unpack short: %d of %d", got, n)
	}
	p.Compute(p.w.cfg.Model.CopyTime(n, runs))
	return pos + int(n), nil
}
