package mpi

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datatype"
)

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		n, d int
		want []int
	}{
		{8, 2, []int{4, 2}},
		{8, 3, []int{2, 2, 2}},
		{12, 2, []int{4, 3}},
		{7, 2, []int{7, 1}},
		{1, 3, []int{1, 1, 1}},
		{24, 3, []int{4, 3, 2}},
	}
	for _, c := range cases {
		got, err := DimsCreate(c.n, c.d)
		if err != nil {
			t.Fatal(err)
		}
		prod := 1
		for _, v := range got {
			prod *= v
		}
		if prod != c.n {
			t.Fatalf("DimsCreate(%d,%d) = %v: product %d", c.n, c.d, got, prod)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("DimsCreate(%d,%d) = %v, want %v", c.n, c.d, got, c.want)
			}
		}
	}
	if _, err := DimsCreate(0, 2); err == nil {
		t.Fatal("DimsCreate(0,2) accepted")
	}
}

func TestCartCoordsRoundTrip(t *testing.T) {
	w, err := NewWorld(smallConfig(6, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		ct, err := p.World().CartCreate([]int{3, 2}, []bool{false, true})
		if err != nil {
			return err
		}
		for r := 0; r < 6; r++ {
			coords := ct.CoordsOf(r)
			if back := ct.RankOf(coords); back != r {
				return fmt.Errorf("coords round trip: %d -> %v -> %d", r, coords, back)
			}
		}
		// Rank 5 in a 3x2 grid is (2,1).
		c := ct.CoordsOf(5)
		if c[0] != 2 || c[1] != 1 {
			return fmt.Errorf("coords of 5 = %v", c)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartShift(t *testing.T) {
	w, err := NewWorld(smallConfig(6, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		// 3x2, dim 0 non-periodic, dim 1 periodic.
		ct, err := p.World().CartCreate([]int{3, 2}, []bool{false, true})
		if err != nil {
			return err
		}
		coords := ct.Coords()
		// Dim 0 (non-periodic): edges see ProcNull.
		src, dst := ct.Shift(0, 1)
		if coords[0] == 0 && src != ProcNull {
			return fmt.Errorf("top row should have no source, got %d", src)
		}
		if coords[0] == 2 && dst != ProcNull {
			return fmt.Errorf("bottom row should have no dest, got %d", dst)
		}
		if coords[0] == 1 {
			if src != ct.RankOf([]int{0, coords[1]}) || dst != ct.RankOf([]int{2, coords[1]}) {
				return fmt.Errorf("middle row shift wrong: src=%d dst=%d", src, dst)
			}
		}
		// Dim 1 (periodic): always wraps to the other column.
		src1, dst1 := ct.Shift(1, 1)
		other := ct.RankOf([]int{coords[0], coords[1] ^ 1})
		if src1 != other || dst1 != other {
			return fmt.Errorf("periodic shift wrong: src=%d dst=%d want %d", src1, dst1, other)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartErrors(t *testing.T) {
	w, err := NewWorld(smallConfig(4, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		if _, err := p.World().CartCreate([]int{3, 2}, []bool{false, false}); err == nil {
			return fmt.Errorf("grid/size mismatch accepted")
		}
		if _, err := p.World().CartCreate([]int{4}, []bool{false, false}); err == nil {
			return fmt.Errorf("dims/periodic mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A ring exchange along a periodic dimension must deliver each neighbour's
// payload.
func TestCartNeighborExchange(t *testing.T) {
	w, err := NewWorld(smallConfig(4, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		ct, err := p.World().CartCreate([]int{4}, []bool{true})
		if err != nil {
			return err
		}
		src, dst := ct.Shift(0, 1)
		sbuf := p.Mem().MustAlloc(4)
		binary.LittleEndian.PutUint32(p.Mem().Bytes(sbuf, 4), uint32(p.Rank()))
		rbuf := p.Mem().MustAlloc(4)
		if err := ct.Comm().Sendrecv(sbuf, 4, datatype.Byte, dst, 0,
			rbuf, 4, datatype.Byte, src, 0); err != nil {
			return err
		}
		got := int(binary.LittleEndian.Uint32(p.Mem().Bytes(rbuf, 4)))
		if got != src {
			return fmt.Errorf("rank %d got %d, want %d", p.Rank(), got, src)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
