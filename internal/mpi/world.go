// Package mpi layers a miniature MPI on top of the core datatype
// communication engine: a World of simulated ranks, blocking and nonblocking
// point-to-point operations, and the collectives the paper's evaluation
// exercises (Alltoall above all, plus Bcast, Gather, Scatter, Allgather,
// Barrier). Rank programs run as coroutine processes in virtual time, so
// latency and bandwidth are measured exactly as an MPI benchmark would
// measure them — with the simulation clock standing in for the wall clock.
package mpi

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/mem"
	"repro/internal/pack"
	"repro/internal/rtfab"
	"repro/internal/shmfab"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// Backend names for Config.Backend.
const (
	// BackendSim is the deterministic discrete-event simulator (default).
	BackendSim = "sim"
	// BackendRT is the real-time concurrent fabric: one goroutine per rank,
	// wall-clock timing, byte-identical delivery semantics.
	BackendRT = "rt"
	// BackendSHM is the shared-memory intra-node fabric: all ranks partition
	// one arena, RDMA is a CPU copy, and virtual time is deterministic like
	// the simulator's — under a cost model with zero link terms.
	BackendSHM = "shm"
)

// AllBackends lists every verbs backend a World can run on. Conformance and
// soak suites iterate over it, so a new backend cannot silently skip the
// cross-backend contract tests.
var AllBackends = []string{BackendSim, BackendRT, BackendSHM}

// Config assembles a simulated cluster.
type Config struct {
	// Ranks is the number of processes (one per simulated node).
	Ranks int
	// MemBytes is each rank's simulated memory size.
	MemBytes int64
	// Model is the fabric cost model.
	Model ib.Model
	// Core is the datatype-communication configuration.
	Core core.Config
	// Backend selects the verbs substrate: BackendSim ("" or "sim"),
	// BackendRT ("rt"), or BackendSHM ("shm"). On BackendSHM a Config whose
	// Model is still the untouched ib.DefaultModel() gets
	// shmfab.DefaultModel() substituted, so default worlds price each
	// backend with its own profile; an explicitly customized Model is always
	// honored as given.
	Backend string
	// RTTimeout bounds a BackendRT run (watchdog); zero means
	// rtfab.DefaultTimeout. Ignored by the simulator.
	RTTimeout time.Duration

	// Trace, when set, is attached to the fabric (CPU/tx/rx lanes) and to
	// every endpoint (per-message protocol spans on the msg lane). On the
	// real-time backend spans carry wall-clock timestamps; one Recorder may
	// be shared by all ranks (it is concurrency-safe).
	Trace *trace.Recorder

	// Metrics, when set, receives per-scheme latency/bandwidth histograms
	// and pool/registration gauges from every endpoint.
	Metrics *stats.Registry

	// Selector, when set (and Core.Scheme is SchemeAuto), replaces the
	// static threshold heuristic with adaptive per-message scheme selection
	// (internal/tuner). The same selector is shared by every rank's
	// endpoint, so all feedback lands in one tuning table; implementations
	// must be concurrency-safe for BackendRT.
	Selector core.SchemeSelector

	// Fault, when set, is installed as the fabric's fault injector before
	// any endpoint is built, so soak tests can run injection campaigns
	// through the mpi layer on either backend.
	Fault *fault.Injector
}

// DefaultConfig returns an 8-rank cluster with the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Ranks:    8,
		MemBytes: 256 << 20,
		Model:    ib.DefaultModel(),
		Core:     core.DefaultConfig(),
	}
}

// World is a cluster on either backend: a fabric and one endpoint per rank.
// On the simulator all ranks share one engine; on the real-time backend each
// rank's endpoint runs on its node's private engine.
type World struct {
	cfg  Config
	eng  *simtime.Engine // sim and shm (shared engine)
	fab  *ib.Fabric      // simulator only
	rt   *rtfab.Fabric   // real-time only
	shm  *shmfab.Fabric  // shared-memory only
	hcas []verbs.HCA
	eps  []*core.Endpoint
}

// NewWorld builds the cluster on the backend cfg.Backend selects.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Ranks <= 0 {
		return nil, fmt.Errorf("mpi: %d ranks", cfg.Ranks)
	}
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = 256 << 20
	}
	if cfg.Core.UsePools {
		// Fail fast with a sizing hint instead of letting the first pool
		// allocation panic the arena: each endpoint carves two staging pools
		// out of its rank's memory before any user buffer is placed.
		if need := 2*cfg.Core.PoolSize + (1 << 20); cfg.MemBytes < need {
			return nil, fmt.Errorf(
				"mpi: MemBytes %d cannot hold two %d-byte staging pools plus workspace (need >= %d); shrink Core.PoolSize or start from ScaledConfig",
				cfg.MemBytes, cfg.Core.PoolSize, need)
		}
	}
	w := &World{cfg: cfg}
	switch cfg.Backend {
	case "", BackendSim:
		w.eng = simtime.NewEngine()
		w.fab = ib.NewFabric(w.eng, cfg.Model)
		if cfg.Trace != nil {
			w.fab.SetTracer(cfg.Trace)
		}
		if cfg.Fault != nil {
			w.fab.SetInjector(cfg.Fault)
		}
	case BackendRT:
		w.rt = rtfab.New(cfg.Model)
		if cfg.Trace != nil {
			w.rt.SetTracer(cfg.Trace)
		}
		if cfg.Fault != nil {
			w.rt.SetInjector(cfg.Fault)
		}
	case BackendSHM:
		if cfg.Model == ib.DefaultModel() {
			// The default Model is the IB testbed; a shared-memory world
			// with an untouched default gets the zero-link profile instead.
			cfg.Model = shmfab.DefaultModel()
			w.cfg.Model = cfg.Model
		}
		w.eng = simtime.NewEngine()
		w.shm = shmfab.New(w.eng, cfg.Model, cfg.Ranks, cfg.MemBytes)
		if cfg.Trace != nil {
			w.shm.SetTracer(cfg.Trace)
		}
		if cfg.Fault != nil {
			w.shm.SetInjector(cfg.Fault)
		}
	default:
		return nil, fmt.Errorf("mpi: unknown backend %q", cfg.Backend)
	}
	ccfg := cfg.Core
	if cfg.Trace != nil {
		ccfg.Tracer = cfg.Trace
	}
	if cfg.Metrics != nil {
		ccfg.Metrics = cfg.Metrics
	}
	if cfg.Selector != nil {
		ccfg.Selector = cfg.Selector
	}
	if w.rt != nil && ccfg.TraceClock == nil {
		// Real-time backend: spans and histograms measure real elapsed time.
		ccfg.TraceClock = w.rt.WallClock
	}
	if ccfg.PackExecutor == nil {
		if w.rt != nil {
			// Real-time backend: parallel pack shards run on real goroutines.
			ccfg.PackExecutor = pack.GoExec{}
		} else {
			// Simulator: shards are copied serially on the driving goroutine —
			// output stays byte-identical at any worker count — while the cost
			// model prices the fan-out in deterministic virtual time.
			ccfg.PackExecutor = pack.SerialExec{}
		}
	}
	for i := 0; i < cfg.Ranks; i++ {
		name := fmt.Sprintf("rank%d", i)
		var hca verbs.HCA
		switch {
		case w.fab != nil:
			hca = w.fab.AddHCA(name, mem.NewMemory(name, cfg.MemBytes), nil)
		case w.rt != nil:
			hca = w.rt.AddNode(name, mem.NewMemory(name, cfg.MemBytes), nil)
		default:
			// Shared-memory backend: the fabric carves the rank's partition
			// out of the one shared arena.
			hca = w.shm.AddNode(name, nil)
		}
		w.hcas = append(w.hcas, hca)
		ep, err := core.NewEndpoint(i, hca, ccfg)
		if err != nil {
			return nil, err
		}
		w.eps = append(w.eps, ep)
	}
	core.ConnectPeers(w.eps)
	return w, nil
}

// Backend reports which backend the world runs on.
func (w *World) Backend() string {
	switch {
	case w.rt != nil:
		return BackendRT
	case w.shm != nil:
		return BackendSHM
	}
	return BackendSim
}

// Engine returns the shared simulation engine (sim and shm backends), or nil
// on the real-time backend (where each rank owns a private engine).
func (w *World) Engine() *simtime.Engine { return w.eng }

// SHM returns the shared-memory fabric, or nil on the other backends.
func (w *World) SHM() *shmfab.Fabric { return w.shm }

// Fabric returns the simulated interconnect (e.g. to attach a tracer), or
// nil on the real-time backend.
func (w *World) Fabric() *ib.Fabric { return w.fab }

// Endpoint returns rank i's communication engine (for counter inspection).
func (w *World) Endpoint(i int) *core.Endpoint { return w.eps[i] }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.eps) }

// ClockNs returns the cluster clock in nanoseconds: virtual engine time on
// the simulator, wall-clock time since fabric start on the real-time
// backend. Deltas of ClockNs are the same timebase the trace spans and
// latency histograms use, so workload generators can stamp per-message
// latencies that line up with the rest of the instrumentation.
func (w *World) ClockNs() int64 {
	if w.rt != nil {
		return int64(w.rt.WallClock())
	}
	return int64(w.eng.Now())
}

// Run executes body once per rank — concurrently in virtual time on the
// simulator, concurrently on the wall clock on the real-time backend — and
// drives the cluster to completion. It returns the first body error, a
// deadlock/watchdog error, or nil.
func (w *World) Run(body func(p *Proc) error) error {
	errs := make([]error, len(w.eps))
	for i, ep := range w.eps {
		i, ep := i, ep
		w.hcas[i].Engine().Spawn(fmt.Sprintf("rank%d", i), func(sp *simtime.Process) {
			errs[i] = body(&Proc{ep: ep, sp: sp, w: w, nextCtx: 1})
		})
	}
	var err error
	if w.rt != nil {
		err = w.rt.Run(w.cfg.RTTimeout)
	} else {
		err = w.eng.Run()
	}
	if err != nil {
		// A rank failing early often strands its peers: surface both the
		// fabric's deadlock report and the body errors that caused it.
		return errors.Join(append([]error{err}, errs...)...)
	}
	return errors.Join(errs...)
}

// Proc is one rank's view of the world inside Run.
type Proc struct {
	ep *core.Endpoint
	sp *simtime.Process
	w  *World

	worldComm *Comm
	nextCtx   int
}

// Rank returns this process's rank.
func (p *Proc) Rank() int { return p.ep.Rank() }

// Size returns the number of ranks.
func (p *Proc) Size() int { return p.w.Size() }

// Mem returns the rank's simulated memory.
func (p *Proc) Mem() *mem.Memory { return p.ep.Mem() }

// Endpoint exposes the underlying communication engine.
func (p *Proc) Endpoint() *core.Endpoint { return p.ep }

// Now returns the current virtual time.
func (p *Proc) Now() simtime.Time { return p.sp.Now() }

// Compute models local computation for d of virtual time.
func (p *Proc) Compute(d simtime.Duration) { p.sp.Sleep(d) }

// Send sends (buf, count, dt) to dst with tag and blocks until the send
// buffer is reusable.
func (p *Proc) Send(buf mem.Addr, count int, dt *datatype.Type, dst, tag int) error {
	return p.ep.Send(p.sp, buf, count, dt, dst, tag)
}

// Recv blocks until a matching message lands in (buf, count, dt).
func (p *Proc) Recv(buf mem.Addr, count int, dt *datatype.Type, src, tag int) (*core.Request, error) {
	return p.ep.Recv(p.sp, buf, count, dt, src, tag)
}

// Isend starts a nonblocking send.
func (p *Proc) Isend(buf mem.Addr, count int, dt *datatype.Type, dst, tag int) *core.Request {
	return p.ep.Isend(buf, count, dt, dst, tag)
}

// Ssend is the blocking synchronous-mode send: completion implies the
// matching receive was posted (always rendezvous).
func (p *Proc) Ssend(buf mem.Addr, count int, dt *datatype.Type, dst, tag int) error {
	return p.ep.Ssend(p.sp, buf, count, dt, dst, tag)
}

// Irecv starts a nonblocking receive.
func (p *Proc) Irecv(buf mem.Addr, count int, dt *datatype.Type, src, tag int) *core.Request {
	return p.ep.Irecv(buf, count, dt, src, tag)
}

// Wait blocks until every request completes and returns the first error.
func (p *Proc) Wait(reqs ...*core.Request) error {
	core.WaitAll(p.sp, reqs...)
	for _, r := range reqs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// WaitAny blocks until at least one of the requests completes and returns
// its index (the lowest, if several completed together).
func (p *Proc) WaitAny(reqs ...*core.Request) int {
	return core.WaitAny(p.sp, reqs...)
}

// Sendrecv runs a send and a receive concurrently and waits for both.
func (p *Proc) Sendrecv(
	sbuf mem.Addr, scount int, stype *datatype.Type, dst, stag int,
	rbuf mem.Addr, rcount int, rtype *datatype.Type, src, rtag int,
) error {
	rr := p.Irecv(rbuf, rcount, rtype, src, rtag)
	sr := p.Isend(sbuf, scount, stype, dst, stag)
	return p.Wait(rr, sr)
}

// Probe blocks until a message matching (src, tag) arrives, without
// receiving it, and returns its envelope.
func (p *Proc) Probe(src, tag int) core.Status {
	return p.ep.Probe(p.sp, src, tag)
}

// Iprobe checks for a matching message without blocking or receiving.
func (p *Proc) Iprobe(src, tag int) (core.Status, bool) {
	return p.ep.Iprobe(src, tag)
}

// The collective operations on Proc operate over the world communicator;
// use World().Split to build sub-communicators and call the same methods on
// them.

// Barrier synchronizes all ranks.
func (p *Proc) Barrier() error { return p.World().Barrier() }

// Bcast broadcasts from root over the world communicator.
func (p *Proc) Bcast(buf mem.Addr, count int, dt *datatype.Type, root int) error {
	return p.World().Bcast(buf, count, dt, root)
}

// Gather gathers to root over the world communicator.
func (p *Proc) Gather(sbuf mem.Addr, scount int, stype *datatype.Type,
	rbuf mem.Addr, rcount int, rtype *datatype.Type, root int) error {
	return p.World().Gather(sbuf, scount, stype, rbuf, rcount, rtype, root)
}

// Scatter distributes from root over the world communicator.
func (p *Proc) Scatter(sbuf mem.Addr, scount int, stype *datatype.Type,
	rbuf mem.Addr, rcount int, rtype *datatype.Type, root int) error {
	return p.World().Scatter(sbuf, scount, stype, rbuf, rcount, rtype, root)
}

// Allgather gathers everywhere over the world communicator.
func (p *Proc) Allgather(sbuf mem.Addr, scount int, stype *datatype.Type,
	rbuf mem.Addr, rcount int, rtype *datatype.Type) error {
	return p.World().Allgather(sbuf, scount, stype, rbuf, rcount, rtype)
}

// Alltoall exchanges blocks over the world communicator.
func (p *Proc) Alltoall(sbuf mem.Addr, scount int, stype *datatype.Type,
	rbuf mem.Addr, rcount int, rtype *datatype.Type) error {
	return p.World().Alltoall(sbuf, scount, stype, rbuf, rcount, rtype)
}

// Alltoallv is the vector Alltoall over the world communicator.
func (p *Proc) Alltoallv(sbuf mem.Addr, scounts, sdispls []int, stype *datatype.Type,
	rbuf mem.Addr, rcounts, rdispls []int, rtype *datatype.Type) error {
	return p.World().Alltoallv(sbuf, scounts, sdispls, stype, rbuf, rcounts, rdispls, rtype)
}

// Gatherv gathers variable contributions over the world communicator.
func (p *Proc) Gatherv(sbuf mem.Addr, scount int, stype *datatype.Type,
	rbuf mem.Addr, rcounts, rdispls []int, rtype *datatype.Type, root int) error {
	return p.World().Gatherv(sbuf, scount, stype, rbuf, rcounts, rdispls, rtype, root)
}

// Scatterv scatters variable pieces over the world communicator.
func (p *Proc) Scatterv(sbuf mem.Addr, scounts, sdispls []int, stype *datatype.Type,
	rbuf mem.Addr, rcount int, rtype *datatype.Type, root int) error {
	return p.World().Scatterv(sbuf, scounts, sdispls, stype, rbuf, rcount, rtype, root)
}

// Reduce combines to root over the world communicator.
func (p *Proc) Reduce(sbuf, rbuf mem.Addr, count int, op Op, root int) error {
	return p.World().Reduce(sbuf, rbuf, count, op, root)
}

// Allreduce combines everywhere over the world communicator.
func (p *Proc) Allreduce(sbuf, rbuf mem.Addr, count int, op Op) error {
	return p.World().Allreduce(sbuf, rbuf, count, op)
}
