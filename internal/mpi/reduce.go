package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/datatype"
	"repro/internal/mem"
)

// Op is a reduction operator over a base datatype, the MPI_Op analogue.
// Operators combine element-wise: dst[i] = dst[i] ⊕ src[i].
type Op struct {
	Name string
	// Elem is the element size the operator understands.
	Elem int64
	// apply combines one element of src into dst.
	apply func(dst, src []byte)
}

// Built-in reduction operators.
var (
	OpSumInt32 = Op{Name: "MPI_SUM(int32)", Elem: 4, apply: func(dst, src []byte) {
		v := int32(binary.LittleEndian.Uint32(dst)) + int32(binary.LittleEndian.Uint32(src))
		binary.LittleEndian.PutUint32(dst, uint32(v))
	}}
	OpMaxInt32 = Op{Name: "MPI_MAX(int32)", Elem: 4, apply: func(dst, src []byte) {
		a := int32(binary.LittleEndian.Uint32(dst))
		b := int32(binary.LittleEndian.Uint32(src))
		if b > a {
			binary.LittleEndian.PutUint32(dst, uint32(b))
		}
	}}
	OpSumFloat64 = Op{Name: "MPI_SUM(float64)", Elem: 8, apply: func(dst, src []byte) {
		v := math.Float64frombits(binary.LittleEndian.Uint64(dst)) +
			math.Float64frombits(binary.LittleEndian.Uint64(src))
		binary.LittleEndian.PutUint64(dst, math.Float64bits(v))
	}}
	OpMaxFloat64 = Op{Name: "MPI_MAX(float64)", Elem: 8, apply: func(dst, src []byte) {
		a := math.Float64frombits(binary.LittleEndian.Uint64(dst))
		b := math.Float64frombits(binary.LittleEndian.Uint64(src))
		if b > a {
			binary.LittleEndian.PutUint64(dst, math.Float64bits(b))
		}
	}}
)

// combine applies op element-wise over two byte ranges in local memory and
// charges the combine loop as local computation.
func (c *Comm) combine(op Op, dst, src mem.Addr, count int) {
	n := int64(count) * op.Elem
	d := c.p.Mem().Bytes(dst, n)
	s := c.p.Mem().Bytes(src, n)
	for i := int64(0); i < n; i += op.Elem {
		op.apply(d[i:i+op.Elem], s[i:i+op.Elem])
	}
	c.p.Compute(c.p.w.cfg.Model.CopyTime(n, 1)) // combine loop ~ streaming pass
}

func opType(op Op) (*datatype.Type, error) {
	switch op.Elem {
	case 4:
		return datatype.Int32, nil
	case 8:
		return datatype.Float64, nil
	}
	return nil, fmt.Errorf("mpi: operator %s has unsupported element size %d", op.Name, op.Elem)
}

// Reduce combines count elements from every rank's sbuf into root's rbuf
// using a binomial tree. sbuf and rbuf must hold count contiguous elements
// of the operator's base type; rbuf is significant only at root.
func (c *Comm) Reduce(sbuf, rbuf mem.Addr, count int, op Op, root int) error {
	dt, err := opType(op)
	if err != nil {
		return err
	}
	n := c.Size()
	bytes := int64(count) * op.Elem
	// Accumulator: root reduces into rbuf; others into a temporary.
	acc := rbuf
	if c.Rank() != root {
		acc = c.p.Mem().MustAlloc(bytes)
		defer c.p.Mem().Free(acc)
	}
	copy(c.p.Mem().Bytes(acc, bytes), c.p.Mem().Bytes(sbuf, bytes))

	tmp := c.p.Mem().MustAlloc(bytes)
	defer c.p.Mem().Free(tmp)

	rel := (c.Rank() - root + n) % n
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask != 0 {
			parent := ((rel ^ mask) + root) % n
			return c.collSend(acc, count, dt, parent, tagReduce)
		}
		child := rel | mask
		if child < n {
			if _, err := c.collRecv(tmp, count, dt, (child+root)%n, tagReduce); err != nil {
				return err
			}
			c.combine(op, acc, tmp, count)
		}
	}
	return nil
}

// Allreduce is Reduce to rank 0 followed by Bcast, MPICH's large-message
// composition.
func (c *Comm) Allreduce(sbuf, rbuf mem.Addr, count int, op Op) error {
	dt, err := opType(op)
	if err != nil {
		return err
	}
	if err := c.Reduce(sbuf, rbuf, count, op, 0); err != nil {
		return err
	}
	return c.Bcast(rbuf, count, dt, 0)
}
