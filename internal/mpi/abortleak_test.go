package mpi

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/fault"
)

// TestAbortPathPoolBalance soaks the abort path on every backend: a ring of
// rendezvous messages under permanent-heavy fault injection, so a large
// fraction of transfers die mid-protocol through finalizeSendAbort /
// finalizeRecvAbort and the QoS drain. Afterwards every endpoint's pooled
// send/recv ops must all be back on their free lists — an op leaked by an
// abort continuation (a pin never released, a retire skipped) shows up here
// as a nonzero live count. Run under -race this also pins that recycling
// never races the fabric's completion delivery.
func TestAbortPathPoolBalance(t *testing.T) {
	vec := datatype.Must(datatype.TypeVector(256, 64, 128, datatype.Int32)) // 64 KiB sparse: rendezvous
	for _, backend := range AllBackends {
		t.Run(backend, func(t *testing.T) {
			for _, scheme := range []core.Scheme{core.SchemeBCSPUP, core.SchemePRRS, core.SchemeMultiW} {
				t.Run(scheme.String(), func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.Ranks = 4
					cfg.MemBytes = 64 << 20
					cfg.Backend = backend
					cfg.Core.Scheme = scheme
					cfg.Fault = fault.New(fault.Config{
						Seed:          int64(7 + len(backend) + int(scheme)),
						PostFailRate:  0.02,
						CQEErrorRate:  0.05,
						RegFailRate:   0.05,
						PermanentRate: 0.6,
					})
					w, err := NewWorld(cfg)
					if err != nil {
						t.Fatal(err)
					}
					const msgs = 30
					err = w.Run(func(p *Proc) error {
						buf := p.Mem().MustAlloc(vec.Extent() + 64)
						next := (p.Rank() + 1) % p.Size()
						prev := (p.Rank() - 1 + p.Size()) % p.Size()
						for i := 0; i < msgs; i++ {
							sr := p.Isend(buf, 1, vec, next, i)
							rr := p.Irecv(buf, 1, vec, prev, i)
							// Injected faults legitimately fail either side;
							// the assertion is pool balance, not delivery.
							_ = p.Wait(sr, rr)
						}
						return nil
					})
					if err != nil {
						t.Fatalf("world did not quiesce: %v", err)
					}
					injected := cfg.Fault.Stats().Total()
					if injected == 0 {
						t.Fatal("fault injector fired zero faults; soak exercised nothing")
					}
					for i := 0; i < w.Size(); i++ {
						ps := w.Endpoint(i).PoolStats()
						if ps.LiveSendOps != 0 || ps.LiveRecvOps != 0 ||
							ps.ActiveSends != 0 || ps.ActiveRecvs != 0 {
							t.Errorf("rank %d leaked pooled ops after %d injected faults: %+v",
								i, injected, ps)
						}
					}
				})
			}
		})
	}
}
