package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mem"
)

// parallelWorld returns a 2-rank configuration running the parallel segment
// engine flat out: worker-pool packing, doorbell batching, and a size-
// classed staging pool.
func parallelWorld(backend string, scheme core.Scheme, workers int) Config {
	cfg := DefaultConfig()
	cfg.Ranks = 2
	cfg.MemBytes = 128 << 20
	cfg.Backend = backend
	cfg.RTTimeout = 2 * time.Minute
	cfg.Core.Scheme = scheme
	cfg.Core.PackWorkers = workers
	cfg.Core.PostBatch = workers
	cfg.Core.PoolShards = 3
	cfg.Core.ParShardBytes = 8 << 10
	return cfg
}

// TestWorkerCountConformance is the parallel engine's determinism contract
// at the MPI layer: on the simulator, the delivered bytes are identical for
// every worker count — sharding fans out only the copies, never the layout
// walk — and on the real-time fabric every worker count delivers correctly.
func TestWorkerCountConformance(t *testing.T) {
	dt, err := datatype.TypeVector(256, 96, 160, datatype.Int32) // 96 KB, 384 B runs
	if err != nil {
		t.Fatal(err)
	}
	const count = 2
	want := confPattern(dt.Size()*int64(count), 11)
	schemes := []core.Scheme{core.SchemeGeneric, core.SchemeBCSPUP, core.SchemePRRS}
	for _, backend := range AllBackends {
		for _, scheme := range schemes {
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("%s/%s/w%d", backend, scheme, workers), func(t *testing.T) {
					w, err := NewWorld(parallelWorld(backend, scheme, workers))
					if err != nil {
						t.Fatal(err)
					}
					var got []byte
					err = w.Run(func(p *Proc) error {
						buf := confAlloc(p, dt, count)
						if p.Rank() == 0 {
							confFill(p, buf, dt, count, 11)
							return p.Send(buf, count, dt, 1, 3)
						}
						if _, err := p.Recv(buf, count, dt, 0, 3); err != nil {
							return err
						}
						got = confGather(p, buf, dt, count)
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s on %s with %d workers delivered wrong bytes",
							scheme, backend, workers)
					}
				})
			}
		}
	}
}

// TestWorkerCountVirtualTimeSerialInvariant pins the tune-guard safety
// property: with the serial executor and one worker (the default sim
// configuration), enabling pool sharding and batching knobs at their
// defaults changes nothing, and the virtual completion time of a transfer
// is a pure function of the configuration — two identical runs agree to the
// nanosecond.
func TestWorkerCountVirtualTimeSerialInvariant(t *testing.T) {
	dt, err := datatype.TypeVector(128, 64, 128, datatype.Int32) // 32 KB
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (virtual float64, sum []byte) {
		w, err := NewWorld(parallelWorld(BackendSim, core.SchemeBCSPUP, workers))
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(p *Proc) error {
			buf := confAlloc(p, dt, 1)
			if p.Rank() == 0 {
				confFill(p, buf, dt, 1, 9)
				t0 := p.Now()
				if err := p.Send(buf, 1, dt, 1, 0); err != nil {
					return err
				}
				virtual = p.Now().Sub(t0).Micros()
				return nil
			}
			if _, err := p.Recv(buf, 1, dt, 0, 0); err != nil {
				return err
			}
			sum = confGather(p, buf, dt, 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return virtual, sum
	}
	v1, b1 := run(4)
	v2, b2 := run(4)
	if v1 != v2 {
		t.Fatalf("same configuration, different virtual times: %v vs %v", v1, v2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same configuration, different bytes")
	}
}

// TestParallelFaultSoak floods one sender with concurrent messages while
// the parallel engine (workers, batching, sharded pools) runs under fault
// injection, on both backends. Transient faults must heal invisibly: every
// message must land with the right bytes. Run with -race (the repository's
// `make test` does) this is also the data-race soak for the worker pool and
// the batched delivery path.
func TestParallelFaultSoak(t *testing.T) {
	dt, err := datatype.TypeVector(128, 96, 160, datatype.Int32) // 48 KB messages
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 8
	for _, backend := range AllBackends {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", backend, seed), func(t *testing.T) {
				cfg := parallelWorld(backend, core.SchemeBCSPUP, 4)
				cfg.Core.PoolSize = 1 << 20 // small pool: force waiter parking
				cfg.Fault = fault.New(fault.Config{
					Seed:         seed,
					PostFailRate: 0.03,
					CQEErrorRate: 0.03,
					RegFailRate:  0.02,
				})
				w, err := NewWorld(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got := make([][]byte, msgs)
				err = w.Run(func(p *Proc) error {
					if p.Rank() == 0 {
						reqs := make([]*core.Request, msgs)
						for m := 0; m < msgs; m++ {
							buf := confAlloc(p, dt, 1)
							confFill(p, buf, dt, 1, byte(m+1))
							reqs[m] = p.Isend(buf, 1, dt, 1, m)
						}
						return p.Wait(reqs...)
					}
					reqs := make([]*core.Request, msgs)
					bufs := make([]mem.Addr, msgs)
					for m := 0; m < msgs; m++ {
						bufs[m] = confAlloc(p, dt, 1)
						reqs[m] = p.Irecv(bufs[m], 1, dt, 0, m)
					}
					if err := p.Wait(reqs...); err != nil {
						return err
					}
					for m := 0; m < msgs; m++ {
						got[m] = confGather(p, bufs[m], dt, 1)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for m := 0; m < msgs; m++ {
					if !bytes.Equal(got[m], confPattern(dt.Size(), byte(m+1))) {
						t.Fatalf("message %d corrupted under faults", m)
					}
				}
			})
		}
	}
}
