package mpi

// World-size-aware resource budgets. DefaultConfig carries the paper's
// 2-to-8-rank parameters — a 256 MB arena and two 20 MB staging pools per
// rank — which multiply into hundreds of gigabytes of simulated memory at
// 1024 ranks. ScaledConfig keeps per-rank budgets O(1) per peer: pools
// shrink as worlds grow (per-rank staging concurrency does not grow with
// world size — the NIC serializes the wire either way), and arenas shrink to
// what scale workloads actually touch.

// ScaledConfig returns a Config for an n-rank world whose per-rank memory
// and pool budgets scale to large worlds. Small worlds (n <= 16) are exactly
// DefaultConfig with the rank count applied, so existing sweeps and goldens
// are unaffected.
func ScaledConfig(ranks int) Config {
	cfg := DefaultConfig()
	cfg.Ranks = ranks
	switch {
	case ranks <= 16:
		// The paper's regime: keep its parameters bit-for-bit.
	case ranks <= 64:
		cfg.MemBytes = 128 << 20
		cfg.Core.PoolSize = 8 << 20
	case ranks <= 256:
		cfg.MemBytes = 64 << 20
		cfg.Core.PoolSize = 4 << 20
	default:
		cfg.MemBytes = 32 << 20
		cfg.Core.PoolSize = 2 << 20
	}
	return cfg
}
