package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/mem"
	"repro/internal/shmfab"
)

// Shared-memory-backend invariants at the MPI layer: the arena partition
// plumbing, the default-model substitution, byte-identical delivery against
// the simulator oracle, many-rank collectives over one shared mapping, and
// fault-injection campaigns on the shared arena.

// TestSHMModelSubstitution pins the Config.Model contract: a default-model
// config on the shm backend runs the zero-link shared-memory profile, while
// an explicitly customized model is honored as given.
func TestSHMModelSubstitution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ranks = 2
	cfg.MemBytes = 64 << 20
	cfg.Backend = BackendSHM
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := *w.SHM().Model(), shmfab.DefaultModel(); got != want {
		t.Fatalf("default-model shm world runs %+v, want shmfab.DefaultModel", got)
	}

	custom := ib.DefaultModel()
	custom.CopyGBps = 2.5
	cfg.Model = custom
	w, err = NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := *w.SHM().Model(); got != custom {
		t.Fatalf("customized model was substituted: %+v", got)
	}
}

// TestSHMConformanceVsSimOracle runs the same transfer on the simulator and
// on the shared-memory fabric and compares the delivered bytes directly —
// not against a computed pattern but backend against backend, for every
// scheme and shape in the conformance zoo.
func TestSHMConformanceVsSimOracle(t *testing.T) {
	schemes := []core.Scheme{
		core.SchemeGeneric, core.SchemeBCSPUP, core.SchemeRWGUP,
		core.SchemePRRS, core.SchemeMultiW,
	}
	deliver := func(backend string, scheme core.Scheme, dt *datatype.Type, count int) []byte {
		cfg := DefaultConfig()
		cfg.Ranks = 2
		cfg.MemBytes = 96 << 20
		cfg.Backend = backend
		cfg.Core.Scheme = scheme
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []byte
		err = w.Run(func(p *Proc) error {
			buf := confAlloc(p, dt, count)
			if p.Rank() == 0 {
				confFill(p, buf, dt, count, 77)
				return p.Send(buf, count, dt, 1, 1)
			}
			if _, err := p.Recv(buf, count, dt, 0, 1); err != nil {
				return err
			}
			got = confGather(p, buf, dt, count)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	for name, tc := range confTypes(t) {
		for _, scheme := range schemes {
			t.Run(fmt.Sprintf("%s/%s", name, scheme), func(t *testing.T) {
				oracle := deliver(BackendSim, scheme, tc.dt, tc.count)
				got := deliver(BackendSHM, scheme, tc.dt, tc.count)
				if !bytes.Equal(got, oracle) {
					t.Fatalf("shm delivery differs from the sim oracle (%d vs %d bytes)",
						len(got), len(oracle))
				}
			})
		}
	}
}

// TestSHMAlltoallManyRanks exercises every pair of partitions in one shared
// arena at once: an 8-rank derived-datatype alltoall, run under -race by
// `make test`. Every rank checks every received block against the pattern
// its source must have produced.
func TestSHMAlltoallManyRanks(t *testing.T) {
	dt, err := datatype.TypeVector(64, 8, 16, datatype.Int32) // 2 KB per block
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScaledConfig(8)
	cfg.MemBytes = 64 << 20
	cfg.Backend = BackendSHM
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		n := p.Size()
		ext := dt.TrueExtent()
		sbuf := p.Mem().MustAlloc(ext * int64(n))
		rbuf := p.Mem().MustAlloc(ext * int64(n))
		for dst := 0; dst < n; dst++ {
			confFill(p, sbuf+mem.Addr(int64(dst)*ext), dt, 1, byte(p.Rank()*16+dst))
		}
		if err := p.Alltoall(sbuf, 1, dt, rbuf, 1, dt); err != nil {
			return err
		}
		for src := 0; src < n; src++ {
			got := confGather(p, rbuf+mem.Addr(int64(src)*ext), dt, 1)
			want := confPattern(dt.Size(), byte(src*16+p.Rank()))
			if !bytes.Equal(got, want) {
				return fmt.Errorf("rank %d: block from %d corrupted", p.Rank(), src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSHMFaultSoak runs an injection campaign — post failures, error
// completions, registration faults, delayed completions — against the
// shared arena. Transient faults must heal invisibly: every message lands
// with the right bytes.
func TestSHMFaultSoak(t *testing.T) {
	dt, err := datatype.TypeVector(128, 64, 128, datatype.Int32) // 32 KB
	if err != nil {
		t.Fatal(err)
	}
	const msgs = 6
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Ranks = 2
			cfg.MemBytes = 96 << 20
			cfg.Backend = BackendSHM
			cfg.Core.Scheme = core.SchemeBCSPUP
			cfg.Fault = fault.New(fault.Config{
				Seed:         seed,
				PostFailRate: 0.05,
				CQEErrorRate: 0.05,
				RegFailRate:  0.03,
				DelayRate:    0.1,
				MaxDelay:     20000,
			})
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]byte, msgs)
			err = w.Run(func(p *Proc) error {
				if p.Rank() == 0 {
					reqs := make([]*core.Request, msgs)
					for m := 0; m < msgs; m++ {
						buf := confAlloc(p, dt, 1)
						confFill(p, buf, dt, 1, byte(m+1))
						reqs[m] = p.Isend(buf, 1, dt, 1, m)
					}
					return p.Wait(reqs...)
				}
				reqs := make([]*core.Request, msgs)
				bufs := make([]mem.Addr, msgs)
				for m := 0; m < msgs; m++ {
					bufs[m] = confAlloc(p, dt, 1)
					reqs[m] = p.Irecv(bufs[m], 1, dt, 0, m)
				}
				if err := p.Wait(reqs...); err != nil {
					return err
				}
				for m := 0; m < msgs; m++ {
					got[m] = confGather(p, bufs[m], dt, 1)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for m := 0; m < msgs; m++ {
				if !bytes.Equal(got[m], confPattern(dt.Size(), byte(m+1))) {
					t.Fatalf("message %d corrupted under faults", m)
				}
			}
		})
	}
}
