package mpi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/simtime"
)

// Win is an MPI-2 one-sided communication window: a contiguous region of
// each member rank's memory exposed for Put and Get. Access is organized in
// fence epochs (MPI_Win_fence-style active target synchronization).
type Win struct {
	comm *Comm
	base mem.Addr
	size int64

	region *mem.Region
	remote []winRemote // per comm rank

	pending int
	err     error
	sig     simtime.Signal
	freed   bool
}

type winRemote struct {
	base mem.Addr
	size int64
	key  uint32
}

// WinCreate exposes (base, size) on every member of the communicator and
// exchanges the access keys. Collective.
func (c *Comm) WinCreate(base mem.Addr, size int64) (*Win, error) {
	key, region, err := c.p.ep.ExposeWindow(base, size)
	if err != nil {
		return nil, fmt.Errorf("wincreate: %w", err)
	}
	w := &Win{comm: c, base: base, size: size, region: region}

	const recSize = 20
	sbuf := c.p.Mem().MustAlloc(recSize)
	defer c.p.Mem().Free(sbuf)
	rbuf := c.p.Mem().MustAlloc(int64(c.Size()) * recSize)
	defer c.p.Mem().Free(rbuf)
	b := c.p.Mem().Bytes(sbuf, recSize)
	binary.LittleEndian.PutUint64(b[0:], uint64(base))
	binary.LittleEndian.PutUint64(b[8:], uint64(size))
	binary.LittleEndian.PutUint32(b[16:], key)
	if err := c.Allgather(sbuf, recSize, datatype.Byte, rbuf, recSize, datatype.Byte); err != nil {
		return nil, fmt.Errorf("wincreate: %w", err)
	}
	all := c.p.Mem().Bytes(rbuf, int64(c.Size())*recSize)
	w.remote = make([]winRemote, c.Size())
	for i := range w.remote {
		rec := all[i*recSize:]
		w.remote[i] = winRemote{
			base: mem.Addr(binary.LittleEndian.Uint64(rec[0:])),
			size: int64(binary.LittleEndian.Uint64(rec[8:])),
			key:  binary.LittleEndian.Uint32(rec[16:]),
		}
	}
	return w, nil
}

// Base returns the local window's base address.
func (w *Win) Base() mem.Addr { return w.base }

// Size returns the local window's size in bytes.
func (w *Win) Size() int64 { return w.size }

// Put starts a one-sided write of (oBuf, oCount, oType) into target's window
// at byte displacement disp, laid out as (tCount, tType). It returns
// immediately; completion is established by Fence.
func (w *Win) Put(oBuf mem.Addr, oCount int, oType *datatype.Type,
	target int, disp int64, tCount int, tType *datatype.Type) error {
	return w.start(oBuf, oCount, oType, target, disp, tCount, tType, true)
}

// Get starts a one-sided read of target's (tCount, tType) at displacement
// disp into (oBuf, oCount, oType). Completion is established by Fence.
func (w *Win) Get(oBuf mem.Addr, oCount int, oType *datatype.Type,
	target int, disp int64, tCount int, tType *datatype.Type) error {
	return w.start(oBuf, oCount, oType, target, disp, tCount, tType, false)
}

func (w *Win) start(oBuf mem.Addr, oCount int, oType *datatype.Type,
	target int, disp int64, tCount int, tType *datatype.Type, put bool) error {
	if w.freed {
		return fmt.Errorf("rma: window is freed")
	}
	if target < 0 || target >= w.comm.Size() {
		return fmt.Errorf("rma: target %d out of range", target)
	}
	rt := w.remote[target]
	tBase := mem.Addr(int64(rt.base) + disp)
	w.pending++
	done := func(err error) {
		w.pending--
		if err != nil && w.err == nil {
			w.err = err
		}
		w.sig.Broadcast()
	}
	world := w.comm.WorldRank(target)
	if put {
		w.comm.p.ep.Put(world, oBuf, oCount, oType, tBase, rt.key,
			rt.base, rt.base+mem.Addr(rt.size), tCount, tType, done)
	} else {
		w.comm.p.ep.Get(world, oBuf, oCount, oType, tBase, rt.key,
			rt.base, rt.base+mem.Addr(rt.size), tCount, tType, done)
	}
	return nil
}

// Flush waits for all locally-issued Puts and Gets to complete, without
// synchronizing with other ranks (passive-target completion, in the spirit
// of MPI_Win_flush_all). After Flush returns, local Gets have landed and
// remote windows contain local Puts.
func (w *Win) Flush() error {
	for w.pending > 0 {
		w.comm.p.sp.Wait(&w.sig)
	}
	err := w.err
	w.err = nil
	return err
}

// Fence completes the access epoch: it waits for all locally-issued Puts and
// Gets, then synchronizes all members, so after it returns every rank's
// window reflects every Put of the epoch (MPI_Win_fence).
func (w *Win) Fence() error {
	for w.pending > 0 {
		w.comm.p.sp.Wait(&w.sig)
	}
	err := w.err
	w.err = nil
	// Synchronize even on local failure, so peers' fences complete.
	if berr := w.comm.Barrier(); err == nil {
		err = berr
	}
	return err
}

// Free releases the window after a final synchronization. Collective.
func (w *Win) Free() error {
	if err := w.Fence(); err != nil {
		return err
	}
	w.freed = true
	w.comm.p.ep.CloseWindow(w.region)
	return nil
}
