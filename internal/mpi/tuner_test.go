package mpi

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tuner"
)

// Integration tests for adaptive scheme selection at the MPI layer: the
// decision trace instants (static and tuned), the tuner counters, and the
// acceptance criterion that cross-backend conformance stays byte-identical
// under SchemeAuto with a live tuner.

// decisionInstants collects the trace events in the "decision" category.
func decisionInstants(rec *trace.Recorder) []string {
	var out []string
	for _, e := range rec.Events() {
		if e.Cat == "decision" {
			out = append(out, e.Name)
		}
	}
	return out
}

// TestAutoDecisionRationaleBothBackends pins the static heuristic's boundary
// behavior end to end: each shape's rendezvous receive must emit a "decision"
// instant naming the expected scheme, on both backends, including exactly-at-
// threshold shapes (block threshold 4096, gather threshold 256).
func TestAutoDecisionRationaleBothBackends(t *testing.T) {
	shapes := []struct {
		name    string
		dt      *datatype.Type
		count   int
		reuse   bool
		scheme  core.Scheme
		whyFrag string
	}{
		// 4096-byte runs on both sides: exactly at AutoBlockThreshold.
		{"at block threshold", datatype.Must(datatype.TypeVector(4, 1024, 2048, datatype.Int32)), 1,
			true, core.SchemeMultiW, "block threshold"},
		// 256-byte runs: exactly at AutoGatherThreshold.
		{"at gather threshold", datatype.Must(datatype.TypeVector(64, 64, 128, datatype.Int32)), 1,
			true, core.SchemeRWGUP, "gather threshold"},
		// 252-byte runs: just under the gather threshold.
		{"under gather threshold", datatype.Must(datatype.TypeVector(64, 63, 128, datatype.Int32)), 1,
			true, core.SchemeBCSPUP, "below gather threshold"},
		// Both sides contiguous: collapses to one zero-copy write.
		{"both contiguous", datatype.Must(datatype.TypeContiguous(4096, datatype.Int32)), 1,
			true, core.SchemeGeneric, "both sides contiguous"},
		// Buffers not reused: stay on the pipeline regardless of layout.
		{"buffers not reused", datatype.Must(datatype.TypeVector(4, 1024, 2048, datatype.Int32)), 1,
			false, core.SchemeBCSPUP, "not reused"},
	}
	for _, backend := range AllBackends {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%s/%s", sh.name, backend), func(t *testing.T) {
				rec := trace.New()
				cfg := smallConfig(2, core.SchemeAuto)
				cfg.Core.BuffersReused = sh.reuse
				cfg.Backend = backend
				cfg.RTTimeout = time.Minute
				cfg.Trace = rec
				w, err := NewWorld(cfg)
				if err != nil {
					t.Fatal(err)
				}
				err = w.Run(func(p *Proc) error {
					buf := allocFor(p, sh.dt, sh.count)
					if p.Rank() == 0 {
						fill(p, buf, sh.dt, sh.count, 7)
						return p.Send(buf, sh.count, sh.dt, 1, 2)
					}
					_, err := p.Recv(buf, sh.count, sh.dt, 0, 2)
					return err
				})
				if err != nil {
					t.Fatal(err)
				}
				want := "decide " + sh.scheme.String() + ": static"
				found := false
				for _, name := range decisionInstants(rec) {
					if strings.HasPrefix(name, want) {
						found = true
						if !strings.Contains(name, sh.whyFrag) {
							t.Errorf("decision %q lacks rationale fragment %q", name, sh.whyFrag)
						}
					}
				}
				if !found {
					t.Fatalf("no %q instant (decisions: %v)", want, decisionInstants(rec))
				}
			})
		}
	}
}

// TestFixedSchemeDecisionTrace: even a fixed (non-Auto) scheme records why it
// was used, so traces always explain the path taken.
func TestFixedSchemeDecisionTrace(t *testing.T) {
	rec := trace.New()
	cfg := smallConfig(2, core.SchemePRRS)
	cfg.Trace = rec
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vec := datatype.Must(datatype.TypeVector(128, 32, 64, datatype.Int32)) // 16 KB
	err = w.Run(func(p *Proc) error {
		buf := allocFor(p, vec, 1)
		if p.Rank() == 0 {
			fill(p, buf, vec, 1, 9)
			return p.Send(buf, 1, vec, 1, 4)
		}
		_, err := p.Recv(buf, 1, vec, 0, 4)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range decisionInstants(rec) {
		if strings.HasPrefix(name, "decide P-RRS: fixed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no fixed-scheme decision instant (decisions: %v)", decisionInstants(rec))
	}
}

// TestTunerActiveBothBackends drives repeated rendezvous traffic through a
// shared Tuner on each backend and checks the selection loop end to end:
// tuned decision instants appear, the exploration/exploitation counters add
// up to the message count, and the data still arrives intact.
func TestTunerActiveBothBackends(t *testing.T) {
	vec := datatype.Must(datatype.TypeVector(128, 32, 64, datatype.Int32)) // 16 KB, 128-byte runs
	for _, backend := range AllBackends {
		t.Run(backend, func(t *testing.T) {
			rec := trace.New()
			tu := tuner.New(tuner.DefaultConfig())
			cfg := smallConfig(2, core.SchemeAuto)
			cfg.Backend = backend
			cfg.RTTimeout = time.Minute
			cfg.Trace = rec
			cfg.Selector = tu
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const iters = 24
			var mismatch atomic.Int64
			err = w.Run(func(p *Proc) error {
				buf := allocFor(p, vec, 1)
				var want []byte
				if p.Rank() == 0 {
					want = fill(p, buf, vec, 1, 11)
				}
				for i := 0; i < iters; i++ {
					if p.Rank() == 0 {
						if err := p.Send(buf, 1, vec, 1, i); err != nil {
							return err
						}
					} else {
						if _, err := p.Recv(buf, 1, vec, 0, i); err != nil {
							return err
						}
					}
				}
				if p.Rank() == 1 {
					got := read(p, buf, vec, 1)
					ref := fill(p, allocFor(p, vec, 1), vec, 1, 11)
					if !bytes.Equal(got, ref) {
						mismatch.Add(1)
					}
					_ = want
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if mismatch.Load() != 0 {
				t.Fatal("tuned transfer delivered wrong bytes")
			}

			ctr := w.Endpoint(1).Counters().Snapshot()
			if got := ctr.TunerExplorations + ctr.TunerExploitations; got != iters {
				t.Errorf("tuner decisions = %d (explore %d + exploit %d), want %d",
					got, ctr.TunerExplorations, ctr.TunerExploitations, iters)
			}
			tuned := 0
			for _, name := range decisionInstants(rec) {
				if strings.Contains(name, "tuned:") {
					tuned++
					if !strings.Contains(name, "arms") {
						t.Errorf("tuned decision %q lacks arm estimates", name)
					}
				}
			}
			if tuned != iters {
				t.Errorf("tuned decision instants = %d, want %d", tuned, iters)
			}
			if tu.Keys() == 0 {
				t.Error("tuner table stayed empty")
			}
		})
	}
}

// TestCrossBackendConformanceTunerActive is the acceptance criterion: the
// conformance shapes stay byte-identical on both backends under SchemeAuto
// with a live (exploring) tuner choosing schemes.
func TestCrossBackendConformanceTunerActive(t *testing.T) {
	types := confTypes(t)
	for _, backend := range AllBackends {
		for name, tc := range types {
			t.Run(fmt.Sprintf("%s/%s", name, backend), func(t *testing.T) {
				tu := tuner.New(tuner.DefaultConfig())
				cfg := DefaultConfig()
				cfg.Ranks = 2
				cfg.MemBytes = 96 << 20
				cfg.Core.Scheme = core.SchemeAuto
				cfg.Backend = backend
				cfg.RTTimeout = time.Minute
				cfg.Selector = tu
				w, err := NewWorld(cfg)
				if err != nil {
					t.Fatal(err)
				}
				want := confPattern(tc.dt.Size()*int64(tc.count), 5)
				var got []byte
				err = w.Run(func(p *Proc) error {
					buf := confAlloc(p, tc.dt, tc.count)
					// Several iterations so exploration cycles through
					// different schemes for the same shape.
					for i := 0; i < 6; i++ {
						if p.Rank() == 0 {
							confFill(p, buf, tc.dt, tc.count, 5)
							if err := p.Send(buf, tc.count, tc.dt, 1, i); err != nil {
								return err
							}
						} else {
							if _, err := p.Recv(buf, tc.count, tc.dt, 0, i); err != nil {
								return err
							}
							got = confGather(p, buf, tc.dt, tc.count)
							if !bytes.Equal(got, want) {
								return fmt.Errorf("iteration %d delivered wrong bytes", i)
							}
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("tuner-active auto on %s delivered wrong bytes for %s", backend, name)
				}
			})
		}
	}
}

// TestTunerDeterministicOnSim: equal seeds must reproduce the exact decision
// sequence on the deterministic backend (replayability).
func TestTunerDeterministicOnSim(t *testing.T) {
	run := func() ([]string, stats.Counters) {
		rec := trace.New()
		tu := tuner.New(tuner.DefaultConfig())
		cfg := smallConfig(2, core.SchemeAuto)
		cfg.Trace = rec
		cfg.Selector = tu
		w, err := NewWorld(cfg)
		if err != nil {
			t.Fatal(err)
		}
		vec := datatype.Must(datatype.TypeVector(128, 32, 64, datatype.Int32))
		err = w.Run(func(p *Proc) error {
			buf := allocFor(p, vec, 1)
			for i := 0; i < 32; i++ {
				if p.Rank() == 0 {
					fill(p, buf, vec, 1, byte(i))
					if err := p.Send(buf, 1, vec, 1, i); err != nil {
						return err
					}
				} else if _, err := p.Recv(buf, 1, vec, 0, i); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return decisionInstants(rec), w.Endpoint(1).Counters().Snapshot()
	}
	d1, c1 := run()
	d2, c2 := run()
	if len(d1) == 0 {
		t.Fatal("no decisions recorded")
	}
	if len(d1) != len(d2) {
		t.Fatalf("decision counts differ: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d differs:\n  %s\n  %s", i, d1[i], d2[i])
		}
	}
	if c1.TunerExplorations != c2.TunerExplorations {
		t.Fatalf("exploration counts differ: %d vs %d", c1.TunerExplorations, c2.TunerExplorations)
	}
}
