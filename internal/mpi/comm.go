package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
)

// Comm is a communicator: an ordered group of ranks with an isolated
// matching context, the MPI_Comm analogue. Point-to-point operations address
// peers by *communicator rank*; messages sent on one communicator never
// match receives on another, even with identical tags.
type Comm struct {
	p       *Proc
	ctx     int   // point-to-point matching context
	collCtx int   // hidden context for collective traffic (as real MPI uses)
	ranks   []int // comm rank -> world rank
	myRank  int
}

// World returns the communicator containing every rank (MPI_COMM_WORLD).
func (p *Proc) World() *Comm {
	if p.worldComm == nil {
		ranks := make([]int, p.w.Size())
		for i := range ranks {
			ranks[i] = i
		}
		p.worldComm = &Comm{p: p, ctx: 0, collCtx: 1, ranks: ranks, myRank: p.ep.Rank()}
	}
	return p.worldComm
}

// P returns the calling process's Proc.
func (c *Comm) P() *Proc { return c.p }

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// WorldRank translates a communicator rank to its world rank.
func (c *Comm) WorldRank(rank int) int { return c.ranks[rank] }

// CommRank translates a world rank to its rank within the communicator,
// or -1 if the rank is not a member.
func (c *Comm) CommRank(world int) int {
	for i, r := range c.ranks {
		if r == world {
			return i
		}
	}
	return -1
}

func (c *Comm) worldOf(rank int) int {
	if rank == core.AnySource {
		return core.AnySource
	}
	return c.ranks[rank]
}

// Send sends within the communicator (dst is a comm rank).
func (c *Comm) Send(buf mem.Addr, count int, dt *datatype.Type, dst, tag int) error {
	r := c.Isend(buf, count, dt, dst, tag)
	r.Wait(c.p.sp)
	return r.Err
}

// Recv receives within the communicator (src is a comm rank or AnySource).
func (c *Comm) Recv(buf mem.Addr, count int, dt *datatype.Type, src, tag int) (*core.Request, error) {
	r := c.Irecv(buf, count, dt, src, tag)
	r.Wait(c.p.sp)
	return r, r.Err
}

// Isend starts a nonblocking send within the communicator.
func (c *Comm) Isend(buf mem.Addr, count int, dt *datatype.Type, dst, tag int) *core.Request {
	return c.p.ep.IsendCtx(c.ctx, buf, count, dt, c.ranks[dst], tag)
}

// Irecv starts a nonblocking receive within the communicator.
func (c *Comm) Irecv(buf mem.Addr, count int, dt *datatype.Type, src, tag int) *core.Request {
	return c.p.ep.IrecvCtx(c.ctx, buf, count, dt, c.worldOf(src), tag)
}

// Sendrecv runs a send and a receive concurrently within the communicator.
func (c *Comm) Sendrecv(
	sbuf mem.Addr, scount int, stype *datatype.Type, dst, stag int,
	rbuf mem.Addr, rcount int, rtype *datatype.Type, src, rtag int,
) error {
	rr := c.Irecv(rbuf, rcount, rtype, src, rtag)
	sr := c.Isend(sbuf, scount, stype, dst, stag)
	return c.p.Wait(rr, sr)
}

// Probe blocks until a matching message arrives on this communicator.
func (c *Comm) Probe(src, tag int) core.Status {
	return c.p.ep.ProbeCtx(c.p.sp, c.ctx, c.worldOf(src), tag)
}

// Iprobe checks for a matching message on this communicator.
func (c *Comm) Iprobe(src, tag int) (core.Status, bool) {
	return c.p.ep.IprobeCtx(c.ctx, c.worldOf(src), tag)
}

// Collective operations exchange their internal messages in the hidden
// collCtx so that user receives and probes (including wildcards) never see
// them.

func (c *Comm) collIsend(buf mem.Addr, count int, dt *datatype.Type, dst, tag int) *core.Request {
	return c.p.ep.IsendCtx(c.collCtx, buf, count, dt, c.ranks[dst], tag)
}

func (c *Comm) collIrecv(buf mem.Addr, count int, dt *datatype.Type, src, tag int) *core.Request {
	return c.p.ep.IrecvCtx(c.collCtx, buf, count, dt, c.worldOf(src), tag)
}

func (c *Comm) collSend(buf mem.Addr, count int, dt *datatype.Type, dst, tag int) error {
	r := c.collIsend(buf, count, dt, dst, tag)
	r.Wait(c.p.sp)
	return r.Err
}

func (c *Comm) collRecv(buf mem.Addr, count int, dt *datatype.Type, src, tag int) (*core.Request, error) {
	r := c.collIrecv(buf, count, dt, src, tag)
	r.Wait(c.p.sp)
	return r, r.Err
}

func (c *Comm) collSendrecv(
	sbuf mem.Addr, scount int, stype *datatype.Type, dst, stag int,
	rbuf mem.Addr, rcount int, rtype *datatype.Type, src, rtag int,
) error {
	rr := c.collIrecv(rbuf, rcount, rtype, src, rtag)
	sr := c.collIsend(sbuf, scount, stype, dst, stag)
	return c.p.Wait(rr, sr)
}

// Undefined is the MPI_UNDEFINED color: the caller joins no new communicator.
const Undefined = -1

// Split partitions the communicator (MPI_Comm_split): ranks passing the same
// color form a new communicator, ordered by (key, parent rank). A color of
// Undefined returns nil. Split is collective: every member must call it.
func (c *Comm) Split(color, key int) (*Comm, error) {
	n := c.Size()
	// Allgather (color, key, nextCtx) over the parent communicator.
	const recSize = 12
	sbuf := c.p.Mem().MustAlloc(recSize)
	defer c.p.Mem().Free(sbuf)
	rbuf := c.p.Mem().MustAlloc(int64(n) * recSize)
	defer c.p.Mem().Free(rbuf)
	b := c.p.Mem().Bytes(sbuf, recSize)
	binary.LittleEndian.PutUint32(b[0:], uint32(int32(color)))
	binary.LittleEndian.PutUint32(b[4:], uint32(int32(key)))
	binary.LittleEndian.PutUint32(b[8:], uint32(c.p.nextCtx))
	if err := c.Allgather(sbuf, recSize, datatype.Byte, rbuf, recSize, datatype.Byte); err != nil {
		return nil, fmt.Errorf("split: %w", err)
	}

	type member struct {
		key      int
		commRank int
	}
	var members []member
	maxCtx := 0
	all := c.p.Mem().Bytes(rbuf, int64(n)*recSize)
	for i := 0; i < n; i++ {
		rec := all[i*recSize:]
		col := int(int32(binary.LittleEndian.Uint32(rec[0:])))
		k := int(int32(binary.LittleEndian.Uint32(rec[4:])))
		ctr := int(int32(binary.LittleEndian.Uint32(rec[8:])))
		if ctr > maxCtx {
			maxCtx = ctr
		}
		if col == color {
			members = append(members, member{key: k, commRank: i})
		}
	}
	// Everyone advances the context counter identically, whether or not
	// they join a group, so future Splits stay in agreement.
	newCtx := maxCtx
	c.p.nextCtx = newCtx + 1
	if color == Undefined {
		return nil, nil
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].commRank < members[j].commRank
	})
	nc := &Comm{p: c.p, ctx: 2 * newCtx, collCtx: 2*newCtx + 1}
	for i, m := range members {
		nc.ranks = append(nc.ranks, c.ranks[m.commRank])
		if m.commRank == c.myRank {
			nc.myRank = i
		}
	}
	return nc, nil
}

// Dup duplicates the communicator with a fresh context (MPI_Comm_dup):
// same group, isolated matching. Collective.
func (c *Comm) Dup() (*Comm, error) {
	nc, err := c.Split(0, c.myRank)
	if err != nil {
		return nil, err
	}
	return nc, nil
}
