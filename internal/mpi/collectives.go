package mpi

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
)

// Collective operations. All are implemented over point-to-point datatype
// communication (as MPICH's are), so they inherit whatever transfer scheme
// the world is configured with — which is exactly how the paper's
// MPI_Alltoall experiment (Section 8.3) benefits from the new schemes.

// Internal tag space for collectives, outside the user range.
const (
	tagBarrier = 1<<30 + iota
	tagBcast
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagReduce
	tagScan
)

func (c *Comm) offset(buf mem.Addr, dt *datatype.Type, count, i int) mem.Addr {
	return mem.Addr(int64(buf) + int64(i)*int64(count)*dt.Extent())
}

// Barrier synchronizes all ranks (dissemination algorithm).
func (c *Comm) Barrier() error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	tok := c.p.Mem().MustAlloc(8)
	defer c.p.Mem().Free(tok)
	for k := 1; k < n; k <<= 1 {
		dst := (c.Rank() + k) % n
		src := (c.Rank() - k + n) % n
		if err := c.collSendrecv(tok, 1, datatype.Byte, dst, tagBarrier,
			tok, 1, datatype.Byte, src, tagBarrier); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}
	}
	return nil
}

// Bcast broadcasts (buf, count, dt) from root (binomial tree).
func (c *Comm) Bcast(buf mem.Addr, count int, dt *datatype.Type, root int) error {
	n := c.Size()
	if n == 1 {
		return nil
	}
	rel := (c.Rank() - root + n) % n
	// Receive from the parent (the rank differing at my lowest set bit).
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			parent := ((rel ^ mask) + root) % n
			if _, err := c.collRecv(buf, count, dt, parent, tagBcast); err != nil {
				return fmt.Errorf("bcast recv: %w", err)
			}
			break
		}
		mask <<= 1
	}
	// Forward to children at every bit below the receive bit.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if rel+mask < n {
			child := (rel + mask + root) % n
			if err := c.collSend(buf, count, dt, child, tagBcast); err != nil {
				return fmt.Errorf("bcast send: %w", err)
			}
		}
	}
	return nil
}

// Gather collects each rank's (sbuf, scount, stype) into root's rbuf, laid
// out as Size() consecutive (rcount, rtype) messages.
func (c *Comm) Gather(sbuf mem.Addr, scount int, stype *datatype.Type,
	rbuf mem.Addr, rcount int, rtype *datatype.Type, root int) error {
	n := c.Size()
	if c.Rank() != root {
		return c.collSend(sbuf, scount, stype, root, tagGather)
	}
	reqs := make([]*core.Request, 0, n)
	for i := 0; i < n; i++ {
		dst := c.offset(rbuf, rtype, rcount, i)
		if i == root {
			reqs = append(reqs, c.collIrecv(dst, rcount, rtype, root, tagGather))
			reqs = append(reqs, c.collIsend(sbuf, scount, stype, root, tagGather))
			continue
		}
		reqs = append(reqs, c.collIrecv(dst, rcount, rtype, i, tagGather))
	}
	return c.p.Wait(reqs...)
}

// Scatter distributes root's sbuf (Size() consecutive (scount, stype)
// messages) into each rank's (rbuf, rcount, rtype).
func (c *Comm) Scatter(sbuf mem.Addr, scount int, stype *datatype.Type,
	rbuf mem.Addr, rcount int, rtype *datatype.Type, root int) error {
	n := c.Size()
	if c.Rank() != root {
		_, err := c.collRecv(rbuf, rcount, rtype, root, tagScatter)
		return err
	}
	reqs := make([]*core.Request, 0, n+1)
	reqs = append(reqs, c.collIrecv(rbuf, rcount, rtype, root, tagScatter))
	for i := 0; i < n; i++ {
		src := c.offset(sbuf, stype, scount, i)
		reqs = append(reqs, c.collIsend(src, scount, stype, i, tagScatter))
	}
	return c.p.Wait(reqs...)
}

// Allgather gathers every rank's (sbuf, scount, stype) into everyone's rbuf
// (ring algorithm).
func (c *Comm) Allgather(sbuf mem.Addr, scount int, stype *datatype.Type,
	rbuf mem.Addr, rcount int, rtype *datatype.Type) error {
	n := c.Size()
	rank := c.Rank()
	// Place own contribution.
	own := c.offset(rbuf, rtype, rcount, rank)
	if err := c.collSendrecv(sbuf, scount, stype, rank, tagAllgather,
		own, rcount, rtype, rank, tagAllgather); err != nil {
		return fmt.Errorf("allgather self: %w", err)
	}
	left := (rank - 1 + n) % n
	right := (rank + 1) % n
	for step := 0; step < n-1; step++ {
		sendIdx := (rank - step + n) % n
		recvIdx := (rank - step - 1 + n) % n
		if err := c.collSendrecv(
			c.offset(rbuf, rtype, rcount, sendIdx), rcount, rtype, right, tagAllgather,
			c.offset(rbuf, rtype, rcount, recvIdx), rcount, rtype, left, tagAllgather,
		); err != nil {
			return fmt.Errorf("allgather step %d: %w", step, err)
		}
	}
	return nil
}

// Alltoall exchanges block i of sbuf with rank i, receiving into block j of
// rbuf from rank j. All sends and receives are posted at once and completed
// together (MPICH's large-message algorithm).
func (c *Comm) Alltoall(sbuf mem.Addr, scount int, stype *datatype.Type,
	rbuf mem.Addr, rcount int, rtype *datatype.Type) error {
	n := c.Size()
	reqs := make([]*core.Request, 0, 2*n)
	for i := 0; i < n; i++ {
		src := (c.Rank() + i) % n
		reqs = append(reqs, c.collIrecv(c.offset(rbuf, rtype, rcount, src), rcount, rtype, src, tagAlltoall))
	}
	for i := 0; i < n; i++ {
		dst := (c.Rank() + i) % n
		reqs = append(reqs, c.collIsend(c.offset(sbuf, stype, scount, dst), scount, stype, dst, tagAlltoall))
	}
	return c.p.Wait(reqs...)
}

// Alltoallv is the vector form of Alltoall: per-peer counts and displacements
// (in units of the respective type's extent).
func (c *Comm) Alltoallv(sbuf mem.Addr, scounts, sdispls []int, stype *datatype.Type,
	rbuf mem.Addr, rcounts, rdispls []int, rtype *datatype.Type) error {
	n := c.Size()
	if len(scounts) != n || len(sdispls) != n || len(rcounts) != n || len(rdispls) != n {
		return fmt.Errorf("alltoallv: count/displacement arrays must have %d entries", n)
	}
	reqs := make([]*core.Request, 0, 2*n)
	for i := 0; i < n; i++ {
		src := (c.Rank() + i) % n
		addr := mem.Addr(int64(rbuf) + int64(rdispls[src])*rtype.Extent())
		reqs = append(reqs, c.collIrecv(addr, rcounts[src], rtype, src, tagAlltoall))
	}
	for i := 0; i < n; i++ {
		dst := (c.Rank() + i) % n
		addr := mem.Addr(int64(sbuf) + int64(sdispls[dst])*stype.Extent())
		reqs = append(reqs, c.collIsend(addr, scounts[dst], stype, dst, tagAlltoall))
	}
	return c.p.Wait(reqs...)
}

// Gatherv gathers variable-sized contributions to root; counts and displs
// (in rtype extents) are significant only at root.
func (c *Comm) Gatherv(sbuf mem.Addr, scount int, stype *datatype.Type,
	rbuf mem.Addr, rcounts, rdispls []int, rtype *datatype.Type, root int) error {
	n := c.Size()
	if c.Rank() != root {
		return c.collSend(sbuf, scount, stype, root, tagGather)
	}
	if len(rcounts) != n || len(rdispls) != n {
		return fmt.Errorf("gatherv: count/displacement arrays must have %d entries", n)
	}
	reqs := make([]*core.Request, 0, n+1)
	for i := 0; i < n; i++ {
		addr := mem.Addr(int64(rbuf) + int64(rdispls[i])*rtype.Extent())
		reqs = append(reqs, c.collIrecv(addr, rcounts[i], rtype, i, tagGather))
	}
	reqs = append(reqs, c.collIsend(sbuf, scount, stype, root, tagGather))
	return c.p.Wait(reqs...)
}

// Scatterv distributes variable-sized pieces from root; counts and displs
// (in stype extents) are significant only at root.
func (c *Comm) Scatterv(sbuf mem.Addr, scounts, sdispls []int, stype *datatype.Type,
	rbuf mem.Addr, rcount int, rtype *datatype.Type, root int) error {
	n := c.Size()
	if c.Rank() != root {
		_, err := c.collRecv(rbuf, rcount, rtype, root, tagScatter)
		return err
	}
	if len(scounts) != n || len(sdispls) != n {
		return fmt.Errorf("scatterv: count/displacement arrays must have %d entries", n)
	}
	reqs := make([]*core.Request, 0, n+1)
	reqs = append(reqs, c.collIrecv(rbuf, rcount, rtype, root, tagScatter))
	for i := 0; i < n; i++ {
		addr := mem.Addr(int64(sbuf) + int64(sdispls[i])*stype.Extent())
		reqs = append(reqs, c.collIsend(addr, scounts[i], stype, i, tagScatter))
	}
	return c.p.Wait(reqs...)
}
