package mpi

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/stats"
)

// TestTypeIndexReuseAcrossBackends drives the Multi-W datatype cache through
// an index-reuse cycle on both backends: the receiver commits a type, frees
// it, and commits a different layout that reuses the index with a bumped
// version. The sender's cached layout for that index is now stale; the
// version check must force a resend (TypeCacheReplaced), after which the
// refreshed entry serves further transfers from cache (TypeCacheHits) with
// byte-identical data.
func TestTypeIndexReuseAcrossBackends(t *testing.T) {
	t1 := datatype.Must(datatype.TypeVector(64, 512, 1024, datatype.Int32))
	t2 := datatype.Must(datatype.TypeVector(32, 1024, 2048, datatype.Int32)) // same size, new layout
	for _, backend := range AllBackends {
		t.Run(backend, func(t *testing.T) {
			cfg := smallConfig(2, core.SchemeMultiW)
			cfg.MemBytes = 48 << 20
			cfg.Core.PoolSize = 4 << 20
			cfg.Backend = backend
			cfg.RTTimeout = time.Minute
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var sent2, got2, sent3, got3 []byte
			var cSend, cRecv *stats.Counters
			err = w.Run(func(p *Proc) error {
				if p.Rank() == 0 {
					cSend = p.Endpoint().Counters()
					buf := allocFor(p, t1, 1)
					fill(p, buf, t1, 1, 1)
					if err := p.Send(buf, 1, t1, 1, 0); err != nil {
						return err
					}
					buf2 := allocFor(p, t2, 1)
					sent2 = fill(p, buf2, t2, 1, 2)
					if err := p.Send(buf2, 1, t2, 1, 1); err != nil {
						return err
					}
					sent3 = fill(p, buf2, t2, 1, 3)
					return p.Send(buf2, 1, t2, 1, 2)
				}
				cRecv = p.Endpoint().Counters()
				buf := allocFor(p, t1, 1)
				if _, err := p.Recv(buf, 1, t1, 0, 0); err != nil {
					return err
				}
				// Free t1's index; committing t2 reuses it with a version
				// bump that must invalidate the sender's cached layout.
				p.Endpoint().FreeType(t1)
				buf2 := allocFor(p, t2, 1)
				if _, err := p.Recv(buf2, 1, t2, 0, 1); err != nil {
					return err
				}
				got2 = read(p, buf2, t2, 1)
				if _, err := p.Recv(buf2, 1, t2, 0, 2); err != nil {
					return err
				}
				got3 = read(p, buf2, t2, 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sent2, got2) {
				t.Fatal("data mismatch on first transfer after index reuse")
			}
			if !bytes.Equal(sent3, got3) {
				t.Fatal("data mismatch on cached transfer after index reuse")
			}
			// The receiver ships the layout for t1 and again for t2 after the
			// version bump; the third transfer is served from the refreshed
			// cache entry.
			if cRecv.TypeLayoutsSent != 2 {
				t.Fatalf("TypeLayoutsSent = %d, want 2 (resend after version bump)", cRecv.TypeLayoutsSent)
			}
			if cSend.TypeCacheReplaced != 1 {
				t.Fatalf("TypeCacheReplaced = %d, want 1", cSend.TypeCacheReplaced)
			}
			if cSend.TypeCacheHits != 1 {
				t.Fatalf("TypeCacheHits = %d, want 1", cSend.TypeCacheHits)
			}
		})
	}
}
