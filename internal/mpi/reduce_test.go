package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/simtime"
)

func putInt32s(p *Proc, a mem.Addr, vals []int32) {
	b := p.Mem().Bytes(a, int64(len(vals))*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
}

func getInt32s(p *Proc, a mem.Addr, n int) []int32 {
	b := p.Mem().Bytes(a, int64(n)*4)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			const root = 1
			const count = 100
			w, err := NewWorld(smallConfig(n, core.SchemeBCSPUP))
			if err != nil {
				t.Fatal(err)
			}
			var got []int32
			err = w.Run(func(p *Proc) error {
				sbuf := p.Mem().MustAlloc(count * 4)
				vals := make([]int32, count)
				for i := range vals {
					vals[i] = int32(p.Rank()*1000 + i)
				}
				putInt32s(p, sbuf, vals)
				var rbuf mem.Addr
				if p.Rank() == root%p.Size() {
					rbuf = p.Mem().MustAlloc(count * 4)
				}
				if err := p.Reduce(sbuf, rbuf, count, OpSumInt32, root%p.Size()); err != nil {
					return err
				}
				if p.Rank() == root%p.Size() {
					got = getInt32s(p, rbuf, count)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < count; i++ {
				var want int32
				for r := 0; r < n; r++ {
					want += int32(r*1000 + i)
				}
				if got[i] != want {
					t.Fatalf("element %d = %d, want %d", i, got[i], want)
				}
			}
		})
	}
}

func TestReduceMax(t *testing.T) {
	w, err := NewWorld(smallConfig(4, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	var got []int32
	err = w.Run(func(p *Proc) error {
		sbuf := p.Mem().MustAlloc(8)
		putInt32s(p, sbuf, []int32{int32(10 - p.Rank()), int32(p.Rank() * 5)})
		rbuf := p.Mem().MustAlloc(8)
		if err := p.Reduce(sbuf, rbuf, 2, OpMaxInt32, 0); err != nil {
			return err
		}
		if p.Rank() == 0 {
			got = getInt32s(p, rbuf, 2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 15 {
		t.Fatalf("max = %v, want [10 15]", got)
	}
}

func TestAllreduceFloat64(t *testing.T) {
	const n = 5
	w, err := NewWorld(smallConfig(n, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	results := make([]float64, n)
	err = w.Run(func(p *Proc) error {
		sbuf := p.Mem().MustAlloc(8)
		binary.LittleEndian.PutUint64(p.Mem().Bytes(sbuf, 8),
			math.Float64bits(float64(p.Rank()+1)))
		rbuf := p.Mem().MustAlloc(8)
		if err := p.Allreduce(sbuf, rbuf, 1, OpSumFloat64); err != nil {
			return err
		}
		results[p.Rank()] = math.Float64frombits(
			binary.LittleEndian.Uint64(p.Mem().Bytes(rbuf, 8)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range results {
		if v != 15 { // 1+2+3+4+5
			t.Fatalf("rank %d allreduce = %v, want 15", r, v)
		}
	}
}

func TestAlltoallv(t *testing.T) {
	const n = 4
	w, err := NewWorld(smallConfig(n, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	// Rank r sends (d+1) ints to rank d; so rank d receives (d+1) from each.
	err = w.Run(func(p *Proc) error {
		me := p.Rank()
		scounts := make([]int, n)
		sdispls := make([]int, n)
		total := 0
		for d := 0; d < n; d++ {
			scounts[d] = d + 1
			sdispls[d] = total
			total += scounts[d]
		}
		sbuf := p.Mem().MustAlloc(int64(total) * 4)
		for d := 0; d < n; d++ {
			vals := make([]int32, scounts[d])
			for i := range vals {
				vals[i] = int32(me*100 + d*10 + i)
			}
			putInt32s(p, sbuf+mem.Addr(sdispls[d]*4), vals)
		}
		rcounts := make([]int, n)
		rdispls := make([]int, n)
		rtotal := 0
		for s := 0; s < n; s++ {
			rcounts[s] = me + 1
			rdispls[s] = rtotal
			rtotal += rcounts[s]
		}
		rbuf := p.Mem().MustAlloc(int64(rtotal) * 4)
		if err := p.Alltoallv(sbuf, scounts, sdispls, datatype.Int32,
			rbuf, rcounts, rdispls, datatype.Int32); err != nil {
			return err
		}
		for s := 0; s < n; s++ {
			got := getInt32s(p, rbuf+mem.Addr(rdispls[s]*4), rcounts[s])
			for i, v := range got {
				want := int32(s*100 + me*10 + i)
				if v != want {
					return fmt.Errorf("rank %d from %d elem %d: got %d want %d", me, s, i, v, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGathervScatterv(t *testing.T) {
	const n = 4
	const root = 2
	w, err := NewWorld(smallConfig(n, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		me := p.Rank()
		cnt := me + 1
		sbuf := p.Mem().MustAlloc(int64(cnt) * 4)
		vals := make([]int32, cnt)
		for i := range vals {
			vals[i] = int32(me*10 + i)
		}
		putInt32s(p, sbuf, vals)

		counts := make([]int, n)
		displs := make([]int, n)
		total := 0
		for r := 0; r < n; r++ {
			counts[r] = r + 1
			displs[r] = total
			total += counts[r]
		}
		var rbuf mem.Addr
		if me == root {
			rbuf = p.Mem().MustAlloc(int64(total) * 4)
		}
		if err := p.Gatherv(sbuf, cnt, datatype.Int32, rbuf, counts, displs, datatype.Int32, root); err != nil {
			return err
		}
		if me == root {
			for r := 0; r < n; r++ {
				got := getInt32s(p, rbuf+mem.Addr(displs[r]*4), counts[r])
				for i, v := range got {
					if v != int32(r*10+i) {
						return fmt.Errorf("gatherv: rank %d elem %d = %d", r, i, v)
					}
				}
			}
		}
		// Scatter it back; every rank must get its original contribution.
		dbuf := p.Mem().MustAlloc(int64(cnt) * 4)
		if err := p.Scatterv(rbuf, counts, displs, datatype.Int32, dbuf, cnt, datatype.Int32, root); err != nil {
			return err
		}
		if !bytes.Equal(p.Mem().Bytes(dbuf, int64(cnt)*4), p.Mem().Bytes(sbuf, int64(cnt)*4)) {
			return fmt.Errorf("scatterv: rank %d round trip mismatch", me)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			buf := p.Mem().MustAlloc(300)
			return p.Send(buf, 300, datatype.Byte, 1, 42)
		}
		// Nothing arrived yet at time zero for a wildcard Iprobe? It may
		// have; just exercise both paths.
		st := p.Probe(core.AnySource, core.AnyTag)
		if st.Source != 0 || st.Tag != 42 || st.Bytes != 300 {
			return fmt.Errorf("probe status = %+v", st)
		}
		// Probing must not consume: a matching receive still succeeds.
		buf := p.Mem().MustAlloc(300)
		req, err := p.Recv(buf, 300, datatype.Byte, st.Source, st.Tag)
		if err != nil {
			return err
		}
		if req.Bytes != 300 {
			return fmt.Errorf("recv after probe got %d bytes", req.Bytes)
		}
		if _, ok := p.Iprobe(core.AnySource, core.AnyTag); ok {
			return fmt.Errorf("message still probable after receive")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeRendezvous(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeMultiW))
	if err != nil {
		t.Fatal(err)
	}
	big := datatype.Must(datatype.TypeContiguous(64<<10, datatype.Int32)) // 256 KB
	err = w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			buf := allocFor(p, big, 1)
			return p.Send(buf, 1, big, 1, 7)
		}
		st := p.Probe(0, 7)
		if st.Bytes != big.Size() {
			return fmt.Errorf("probed %d bytes, want %d", st.Bytes, big.Size())
		}
		buf := allocFor(p, big, 1)
		_, err := p.Recv(buf, 1, big, 0, 7)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScan(t *testing.T) {
	const n = 5
	w, err := NewWorld(smallConfig(n, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]int32, n)
	err = w.Run(func(p *Proc) error {
		sbuf := p.Mem().MustAlloc(8)
		putInt32s(p, sbuf, []int32{int32(p.Rank() + 1), int32(10 * (p.Rank() + 1))})
		rbuf := p.Mem().MustAlloc(8)
		if err := p.Scan(sbuf, rbuf, 2, OpSumInt32); err != nil {
			return err
		}
		results[p.Rank()] = getInt32s(p, rbuf, 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		var w1, w2 int32
		for i := 0; i <= r; i++ {
			w1 += int32(i + 1)
			w2 += int32(10 * (i + 1))
		}
		if results[r][0] != w1 || results[r][1] != w2 {
			t.Fatalf("rank %d scan = %v, want [%d %d]", r, results[r], w1, w2)
		}
	}
}

func TestSsendForcesRendezvous(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		buf := p.Mem().MustAlloc(64)
		if p.Rank() == 0 {
			return p.Ssend(buf, 64, datatype.Byte, 1, 0) // tiny, but synchronous
		}
		p.Compute(simtime.Millisecond) // the send must wait for this recv
		_, err := p.Recv(buf, 64, datatype.Byte, 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	c := w.Endpoint(0).Counters()
	if c.RendezvousSends != 1 || c.EagerSends != 0 {
		t.Fatalf("Ssend used eager: rndv=%d eager=%d", c.RendezvousSends, c.EagerSends)
	}
}

func TestPackUnpack(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	vec := datatype.Must(datatype.TypeVector(8, 2, 4, datatype.Int32))
	err = w.Run(func(p *Proc) error {
		if p.Rank() != 0 {
			return nil
		}
		src := allocFor(p, vec, 2)
		want := fill(p, src, vec, 2, 0x21)
		buf := make([]byte, PackSize(2, vec)+8)
		pos, err := p.Pack(src, 2, vec, buf, 4) // pack at an offset
		if err != nil {
			return err
		}
		if pos != 4+len(want) {
			return fmt.Errorf("pos = %d", pos)
		}
		if !bytes.Equal(buf[4:pos], want) {
			return fmt.Errorf("packed bytes mismatch")
		}
		dst := allocFor(p, vec, 2)
		pos2, err := p.Unpack(buf, 4, dst, 2, vec)
		if err != nil {
			return err
		}
		if pos2 != pos {
			return fmt.Errorf("unpack pos = %d, want %d", pos2, pos)
		}
		if !bytes.Equal(read(p, dst, vec, 2), want) {
			return fmt.Errorf("unpacked data mismatch")
		}
		// Overflow errors.
		if _, err := p.Pack(src, 2, vec, make([]byte, 8), 0); err == nil {
			return fmt.Errorf("overflowing pack accepted")
		}
		if _, err := p.Unpack(make([]byte, 8), 0, dst, 2, vec); err == nil {
			return fmt.Errorf("underflowing unpack accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
