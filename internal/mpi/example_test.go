package mpi_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
)

// A two-rank world exchanging a derived-datatype message, with virtual-time
// measurement. The simulation is deterministic, so the printed latency is
// reproducible bit for bit.
func ExampleWorld() {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = 2
	cfg.MemBytes = 32 << 20
	cfg.Core.PoolSize = 2 << 20
	cfg.Core.Scheme = core.SchemeMultiW

	world, _ := mpi.NewWorld(cfg)
	vec := datatype.Must(datatype.TypeVector(64, 16, 64, datatype.Int32))

	err := world.Run(func(p *mpi.Proc) error {
		buf := p.Mem().MustAlloc(vec.TrueExtent())
		if p.Rank() == 0 {
			return p.Send(buf, 1, vec, 1, 0)
		}
		req, err := p.Recv(buf, 1, vec, 0, 0)
		if err != nil {
			return err
		}
		fmt.Printf("received %d bytes from rank %d\n", req.Bytes, req.Source)
		return nil
	})
	fmt.Println("err:", err)
	// Output:
	// received 4096 bytes from rank 0
	// err: <nil>
}

// Splitting the world into row communicators and reducing within each.
func ExampleComm_Split() {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = 4
	cfg.MemBytes = 32 << 20
	cfg.Core.PoolSize = 2 << 20

	world, _ := mpi.NewWorld(cfg)
	sums := make([]int32, 4)
	err := world.Run(func(p *mpi.Proc) error {
		row, err := p.World().Split(p.Rank()/2, p.Rank())
		if err != nil {
			return err
		}
		sbuf := p.Mem().MustAlloc(4)
		p.Mem().Bytes(sbuf, 4)[0] = byte(p.Rank() + 1)
		rbuf := p.Mem().MustAlloc(4)
		if err := row.Allreduce(sbuf, rbuf, 1, mpi.OpSumInt32); err != nil {
			return err
		}
		sums[p.Rank()] = int32(p.Mem().Bytes(rbuf, 4)[0])
		return nil
	})
	fmt.Println("err:", err)
	fmt.Println("row sums:", sums)
	// Output:
	// err: <nil>
	// row sums: [3 3 7 7]
}

// One-sided communication: rank 0 puts a block into rank 1's window.
func ExampleWin() {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = 2
	cfg.MemBytes = 32 << 20
	cfg.Core.PoolSize = 2 << 20

	world, _ := mpi.NewWorld(cfg)
	ct := datatype.Must(datatype.TypeContiguous(1024, datatype.Byte))
	err := world.Run(func(p *mpi.Proc) error {
		winBuf := p.Mem().MustAlloc(1024)
		win, err := p.World().WinCreate(winBuf, 1024)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Mem().MustAlloc(1024)
			p.Mem().Bytes(src, 1024)[42] = 0x7F
			if err := win.Put(src, 1, ct, 1, 0, 1, ct); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			fmt.Println("window byte 42:", p.Mem().Bytes(winBuf, 1024)[42])
		}
		return win.Free()
	})
	fmt.Println("err:", err)
	// Output:
	// window byte 42: 127
	// err: <nil>
}
