package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/simtime"
)

// Scale-out conformance: collectives at 64–256 ranks on the simulator,
// checked against a naive per-peer oracle every rank computes locally from
// the deterministic fill pattern. These worlds are where the indexed
// matching, credit scaling, and ScaledConfig budgets earn their keep — a
// 256-rank Alltoall posts 65k messages through one endpoint set.

// scaleShapes is the shape matrix for the scale runs: one truly
// non-contiguous vector, one irregular indexed layout, and one contiguous
// control, all with equal type sizes irrelevant (each test derives block
// sizes from the type it uses).
func scaleShapes() []struct {
	name string
	dt   *datatype.Type
} {
	vec := datatype.Must(datatype.TypeVector(32, 8, 24, datatype.Int32))                                 // 1 KB / count, sparse
	idx := datatype.Must(datatype.TypeIndexed([]int{5, 3, 11, 13}, []int{0, 9, 14, 40}, datatype.Int32)) // 128 B / count
	ctg := datatype.Must(datatype.TypeContiguous(256, datatype.Int32))                                   // 1 KB / count
	return []struct {
		name string
		dt   *datatype.Type
	}{{"vector", vec}, {"indexed", idx}, {"contig", ctg}}
}

// scaleConfig builds an n-rank sim world from the scaled budgets, with the
// eager threshold lowered so the per-block payloads of these tests travel
// through the rendezvous schemes rather than all fitting in eager.
func scaleConfig(n int, scheme core.Scheme) Config {
	cfg := ScaledConfig(n)
	cfg.Core.Scheme = scheme
	cfg.Core.EagerThreshold = 1 << 10
	return cfg
}

// expectedStream reproduces rank r's packed send stream of totalBytes bytes
// (the fill() pattern), so any receiver can derive any sender's payload
// without communication.
func expectedStream(r int, totalBytes int64) []byte {
	data := make([]byte, totalBytes)
	seed := byte(r)
	for i := range data {
		data[i] = seed ^ byte(i*29+3)
	}
	return data
}

func TestAlltoallAtScaleMatchesOracle(t *testing.T) {
	// 64 ranks: the full shape matrix, with the above-threshold shapes
	// routed through rendezvous. The 256-rank end of the range is covered
	// by TestAllgatherAtScaleMatchesOracle's eager run — a 256-rank
	// rendezvous exchange under the race detector costs minutes of shadow
	// bookkeeping for no additional matching coverage (the non-race scale
	// sweep, `make scale-guard`, pins 256-rank rendezvous alltoall rows).
	cases := []struct {
		ranks  int
		scount int
	}{{64, 2}}
	for _, tc := range cases {
		for _, sh := range scaleShapes() {
			t.Run(fmt.Sprintf("n=%d/%s", tc.ranks, sh.name), func(t *testing.T) {
				n, scount := tc.ranks, tc.scount
				blockBytes := sh.dt.Size() * int64(scount)
				w, err := NewWorld(scaleConfig(n, core.SchemeBCSPUP))
				if err != nil {
					t.Fatal(err)
				}
				err = w.Run(func(p *Proc) error {
					sbuf := allocFor(p, sh.dt, n*scount)
					rbuf := allocFor(p, sh.dt, n*scount)
					fill(p, sbuf, sh.dt, n*scount, byte(p.Rank()))
					if err := p.Alltoall(sbuf, scount, sh.dt, rbuf, scount, sh.dt); err != nil {
						return err
					}
					got := read(p, rbuf, sh.dt, n*scount)
					for src := 0; src < n; src++ {
						want := expectedStream(src, blockBytes*int64(n))[int64(p.Rank())*blockBytes : (int64(p.Rank())+1)*blockBytes]
						if !bytes.Equal(got[int64(src)*blockBytes:(int64(src)+1)*blockBytes], want) {
							return fmt.Errorf("rank %d: block from %d corrupt", p.Rank(), src)
						}
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				// Blocks above the eager threshold must all have routed
				// through the rendezvous schemes (the indexed shape's
				// 256 B blocks legitimately stay eager).
				if blockBytes > 1<<10 {
					var rndv int64
					for i := 0; i < n; i++ {
						rndv += w.Endpoint(i).Counters().RendezvousSends
					}
					if want := int64(n) * int64(n-1); rndv < want {
						t.Errorf("rendezvous sends = %d, want >= %d (blocks must not fall back to eager)", rndv, want)
					}
				}
			})
		}
	}
}

func TestAllgatherAtScaleMatchesOracle(t *testing.T) {
	for _, n := range []int{64, 256} {
		sh := scaleShapes()[0] // vector
		t.Run(fmt.Sprintf("n=%d/%s", n, sh.name), func(t *testing.T) {
			// 64 ranks exchange 2 KB rendezvous blocks; the 256-rank world
			// sends single-count (1 KB, eager) blocks through lean arenas,
			// so the race detector's shadow cost tracks the 65k messages
			// rather than gigabytes of mapped-but-idle staging.
			scount := 2
			cfg := scaleConfig(n, core.SchemeBCSPUP)
			if n > 64 {
				scount = 1
				cfg.MemBytes = 24 << 20
				cfg.Core.PoolSize = 2 << 20
			}
			blockBytes := sh.dt.Size() * int64(scount)
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			err = w.Run(func(p *Proc) error {
				sbuf := allocFor(p, sh.dt, scount)
				rbuf := allocFor(p, sh.dt, n*scount)
				fill(p, sbuf, sh.dt, scount, byte(p.Rank()))
				if err := p.Allgather(sbuf, scount, sh.dt, rbuf, scount, sh.dt); err != nil {
					return err
				}
				got := read(p, rbuf, sh.dt, n*scount)
				for src := 0; src < n; src++ {
					want := expectedStream(src, blockBytes)
					if !bytes.Equal(got[int64(src)*blockBytes:(int64(src)+1)*blockBytes], want) {
						return fmt.Errorf("rank %d: contribution of %d corrupt", p.Rank(), src)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoallvAtScaleMatchesOracle(t *testing.T) {
	const n = 64
	sh := scaleShapes()[1] // indexed
	// Variable counts both sides derive from the same symmetric formula:
	// rank s sends 1 + (s+d)%3 counts to rank d.
	cnt := func(a, b int) int { return 1 + (a+b)%3 }
	w, err := NewWorld(scaleConfig(n, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		scounts := make([]int, n)
		sdispls := make([]int, n)
		rcounts := make([]int, n)
		rdispls := make([]int, n)
		stotal, rtotal := 0, 0
		for i := 0; i < n; i++ {
			scounts[i] = cnt(p.Rank(), i)
			sdispls[i] = stotal
			stotal += scounts[i]
			rcounts[i] = cnt(i, p.Rank())
			rdispls[i] = rtotal
			rtotal += rcounts[i]
		}
		sbuf := allocFor(p, sh.dt, stotal)
		rbuf := allocFor(p, sh.dt, rtotal)
		fill(p, sbuf, sh.dt, stotal, byte(p.Rank()))
		if err := p.Alltoallv(sbuf, scounts, sdispls, sh.dt, rbuf, rcounts, rdispls, sh.dt); err != nil {
			return err
		}
		got := read(p, rbuf, sh.dt, rtotal)
		for src := 0; src < n; src++ {
			// Reconstruct sender src's stream and slice out my block.
			srcTotal := 0
			myOff := 0
			for d := 0; d < n; d++ {
				if d == p.Rank() {
					myOff = srcTotal
				}
				srcTotal += cnt(src, d)
			}
			stream := expectedStream(src, sh.dt.Size()*int64(srcTotal))
			want := stream[sh.dt.Size()*int64(myOff) : sh.dt.Size()*int64(myOff+cnt(src, p.Rank()))]
			gotBlock := got[sh.dt.Size()*int64(rdispls[src]) : sh.dt.Size()*int64(rdispls[src]+rcounts[src])]
			if !bytes.Equal(gotBlock, want) {
				return fmt.Errorf("rank %d: alltoallv block from %d corrupt", p.Rank(), src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBcastTreeNonPowerOfTwo checks the binomial broadcast tree delivers
// correct bytes at world sizes that exercise ragged tree shapes, from every
// residue class of roots.
func TestBcastTreeNonPowerOfTwo(t *testing.T) {
	sh := scaleShapes()[0]
	const count = 8 // 8 KB payload: rendezvous under scaleConfig
	for _, n := range []int{3, 5, 7, 33, 63, 100} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for _, root := range []int{0, 1, n / 2, n - 1} {
				w, err := NewWorld(scaleConfig(n, core.SchemeBCSPUP))
				if err != nil {
					t.Fatal(err)
				}
				err = w.Run(func(p *Proc) error {
					buf := allocFor(p, sh.dt, count)
					if p.Rank() == root {
						fill(p, buf, sh.dt, count, byte(root))
					}
					if err := p.Bcast(buf, count, sh.dt, root); err != nil {
						return err
					}
					want := expectedStream(root, sh.dt.Size()*int64(count))
					if !bytes.Equal(read(p, buf, sh.dt, count), want) {
						return fmt.Errorf("rank %d: bcast payload corrupt (root %d)", p.Rank(), root)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestBarrierNonPowerOfTwo checks the dissemination barrier's ordering
// property — nobody exits before the last rank enters — at ragged sizes.
func TestBarrierNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 7, 33, 63, 100} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			w, err := NewWorld(scaleConfig(n, core.SchemeBCSPUP))
			if err != nil {
				t.Fatal(err)
			}
			enter := make([]simtime.Time, n)
			exit := make([]simtime.Time, n)
			err = w.Run(func(p *Proc) error {
				// Stagger arrivals so the property is non-trivial.
				p.Compute(simtime.Duration((p.Rank()*37)%n) * simtime.Millisecond)
				enter[p.Rank()] = p.Now()
				if err := p.Barrier(); err != nil {
					return err
				}
				exit[p.Rank()] = p.Now()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			var lastIn simtime.Time
			for _, e := range enter {
				if e > lastIn {
					lastIn = e
				}
			}
			for r, x := range exit {
				if x < lastIn {
					t.Fatalf("rank %d exited at %v before last entry %v", r, x, lastIn)
				}
			}
		})
	}
}
