package mpi

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestTraceAndMetricsAcrossBackends runs a rendezvous ping-pong with the full
// observability stack attached on both backends and checks the contract end
// to end: per-message spans cover the protocol stages, the Chrome export is
// valid JSON, and the per-scheme latency/bandwidth histograms fill in. On the
// rt backend this also exercises the Recorder from concurrent driver
// goroutines, which is what the -race run in `make race` is for.
func TestTraceAndMetricsAcrossBackends(t *testing.T) {
	vec := datatype.Must(datatype.TypeVector(128, 64, 128, datatype.Int32)) // 32 KB, rendezvous
	for _, backend := range AllBackends {
		t.Run(backend, func(t *testing.T) {
			rec := trace.New()
			reg := stats.NewRegistry()
			cfg := smallConfig(2, core.SchemeBCSPUP)
			cfg.Backend = backend
			cfg.RTTimeout = time.Minute
			cfg.Trace = rec
			cfg.Metrics = reg
			rec.SetPrefix(backend + "/")
			w, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			const iters = 4
			err = w.Run(func(p *Proc) error {
				buf := allocFor(p, vec, 1)
				peer := 1 - p.Rank()
				if p.Rank() == 0 {
					fill(p, buf, vec, 1, 1)
				}
				for i := 0; i < iters; i++ {
					if p.Rank() == 0 {
						if err := p.Send(buf, 1, vec, peer, i); err != nil {
							return err
						}
						if _, err := p.Recv(buf, 1, vec, peer, i); err != nil {
							return err
						}
					} else {
						if _, err := p.Recv(buf, 1, vec, peer, i); err != nil {
							return err
						}
						if err := p.Send(buf, 1, vec, peer, i); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}

			if rec.Len() == 0 {
				t.Fatal("recorder captured no events")
			}
			cats := map[string]bool{}
			prefixed := 0
			for _, e := range rec.Events() {
				if e.Cat != "" {
					cats[e.Cat] = true
				}
				if strings.HasPrefix(e.Node, backend+"/") {
					prefixed++
				}
			}
			for _, want := range []string{"rts", "handshake", "data", "segment", "decision"} {
				if !cats[want] {
					t.Errorf("no %q spans recorded (cats: %v)", want, cats)
				}
			}
			if prefixed == 0 {
				t.Error("SetPrefix was not applied to recorded nodes")
			}

			var events []map[string]any
			if err := json.Unmarshal(rec.ChromeTrace(), &events); err != nil {
				t.Fatalf("ChromeTrace is not valid JSON: %v", err)
			}
			if len(events) != rec.Len() {
				t.Fatalf("ChromeTrace has %d events, recorder has %d", len(events), rec.Len())
			}

			latName := "lat_ns/BC-SPUP/" + stats.SizeClass(vec.Size())
			if n := reg.Histogram(latName).Count(); n != 2*iters {
				t.Errorf("%s count = %d, want %d", latName, n, 2*iters)
			}
			mbpsName := "mbps/BC-SPUP/" + stats.SizeClass(vec.Size())
			if reg.Histogram(mbpsName).Count() == 0 {
				t.Errorf("%s is empty", mbpsName)
			}
			if reg.Gauge("pool_used/pack").High() == 0 {
				t.Error("pack pool occupancy gauge never rose")
			}
		})
	}
}
