package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/pack"
	"repro/internal/simtime"
)

func smallConfig(n int, scheme core.Scheme) Config {
	cfg := DefaultConfig()
	cfg.Ranks = n
	cfg.MemBytes = 24 << 20
	cfg.Core.Scheme = scheme
	cfg.Core.PoolSize = 2 << 20
	return cfg
}

func fill(p *Proc, base mem.Addr, dt *datatype.Type, count int, seed byte) []byte {
	data := make([]byte, dt.Size()*int64(count))
	for i := range data {
		data[i] = seed ^ byte(i*29+3)
	}
	u := pack.NewUnpacker(p.Mem(), base, dt, count)
	if n, _ := u.UnpackFrom(data); n != int64(len(data)) {
		panic("fill short")
	}
	return data
}

func read(p *Proc, base mem.Addr, dt *datatype.Type, count int) []byte {
	out := make([]byte, dt.Size()*int64(count))
	pk := pack.NewPacker(p.Mem(), base, dt, count)
	if n, _ := pk.PackTo(out); n != int64(len(out)) {
		panic("read short")
	}
	return out
}

func allocFor(p *Proc, dt *datatype.Type, count int) mem.Addr {
	span := dt.TrueExtent() + int64(count-1)*dt.Extent()
	a := p.Mem().MustAlloc(span)
	return mem.Addr(int64(a) - dt.TrueLB())
}

func TestPingPong(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	vec := datatype.Must(datatype.TypeVector(32, 8, 16, datatype.Int32))
	var rtt simtime.Duration
	err = w.Run(func(p *Proc) error {
		buf := allocFor(p, vec, 20)
		if p.Rank() == 0 {
			fill(p, buf, vec, 20, 1)
			start := p.Now()
			if err := p.Send(buf, 20, vec, 1, 0); err != nil {
				return err
			}
			if _, err := p.Recv(buf, 20, vec, 1, 1); err != nil {
				return err
			}
			rtt = p.Now().Sub(start)
		} else {
			if _, err := p.Recv(buf, 20, vec, 0, 0); err != nil {
				return err
			}
			if err := p.Send(buf, 20, vec, 0, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rtt <= 0 {
		t.Fatalf("rtt = %v", rtt)
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			w, err := NewWorld(smallConfig(n, core.SchemeBCSPUP))
			if err != nil {
				t.Fatal(err)
			}
			after := make([]simtime.Time, n)
			before := make([]simtime.Time, n)
			err = w.Run(func(p *Proc) error {
				// Stagger arrival.
				p.Compute(simtime.Duration(p.Rank()) * simtime.Millisecond)
				before[p.Rank()] = p.Now()
				if err := p.Barrier(); err != nil {
					return err
				}
				after[p.Rank()] = p.Now()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// Nobody may leave the barrier before the last rank entered.
			var lastIn simtime.Time
			for _, b := range before {
				if b > lastIn {
					lastIn = b
				}
			}
			for r, a := range after {
				if a < lastIn {
					t.Fatalf("rank %d left barrier at %v before last entry %v", r, a, lastIn)
				}
			}
		})
	}
}

func TestBcast(t *testing.T) {
	vec := datatype.Must(datatype.TypeVector(64, 16, 32, datatype.Int32)) // 4 KB
	for _, n := range []int{2, 3, 5, 8} {
		for root := 0; root < n; root += 3 {
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				w, err := NewWorld(smallConfig(n, core.SchemeBCSPUP))
				if err != nil {
					t.Fatal(err)
				}
				var want []byte
				got := make([][]byte, n)
				err = w.Run(func(p *Proc) error {
					buf := allocFor(p, vec, 4)
					if p.Rank() == root {
						want = fill(p, buf, vec, 4, 0x3C)
					}
					if err := p.Bcast(buf, 4, vec, root); err != nil {
						return err
					}
					got[p.Rank()] = read(p, buf, vec, 4)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < n; r++ {
					if !bytes.Equal(got[r], want) {
						t.Fatalf("rank %d bcast data mismatch", r)
					}
				}
			})
		}
	}
}

func TestGatherScatter(t *testing.T) {
	w, err := NewWorld(smallConfig(4, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	const root = 1
	ct := datatype.Must(datatype.TypeContiguous(64, datatype.Int32)) // 256 B
	sent := make([][]byte, 4)
	var gathered []byte
	scattered := make([][]byte, 4)
	var scatterSrc []byte
	err = w.Run(func(p *Proc) error {
		n := p.Size()
		sbuf := allocFor(p, ct, 1)
		sent[p.Rank()] = fill(p, sbuf, ct, 1, byte(p.Rank()+1))
		var rbuf mem.Addr
		if p.Rank() == root {
			rbuf = allocFor(p, ct, n)
		}
		if err := p.Gather(sbuf, 1, ct, rbuf, 1, ct, root); err != nil {
			return err
		}
		if p.Rank() == root {
			gathered = read(p, rbuf, ct, n)
		}
		// Scatter it back out.
		dbuf := allocFor(p, ct, 1)
		if err := p.Scatter(rbuf, 1, ct, dbuf, 1, ct, root); err != nil {
			return err
		}
		scattered[p.Rank()] = read(p, dbuf, ct, 1)
		if p.Rank() == root {
			scatterSrc = gathered
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for r := 0; r < 4; r++ {
		want = append(want, sent[r]...)
	}
	if !bytes.Equal(gathered, want) {
		t.Fatal("gather result mismatch")
	}
	_ = scatterSrc
	for r := 0; r < 4; r++ {
		if !bytes.Equal(scattered[r], sent[r]) {
			t.Fatalf("scatter result mismatch at rank %d", r)
		}
	}
}

func TestAllgather(t *testing.T) {
	w, err := NewWorld(smallConfig(5, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	ct := datatype.Must(datatype.TypeContiguous(128, datatype.Int32))
	sent := make([][]byte, 5)
	got := make([][]byte, 5)
	err = w.Run(func(p *Proc) error {
		sbuf := allocFor(p, ct, 1)
		sent[p.Rank()] = fill(p, sbuf, ct, 1, byte(0x10+p.Rank()))
		rbuf := allocFor(p, ct, p.Size())
		if err := p.Allgather(sbuf, 1, ct, rbuf, 1, ct); err != nil {
			return err
		}
		got[p.Rank()] = read(p, rbuf, ct, p.Size())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for r := 0; r < 5; r++ {
		want = append(want, sent[r]...)
	}
	for r := 0; r < 5; r++ {
		if !bytes.Equal(got[r], want) {
			t.Fatalf("allgather mismatch at rank %d", r)
		}
	}
}

// Alltoall with a derived struct datatype across schemes — the paper's
// Section 8.3 workload in miniature.
func TestAlltoallStruct(t *testing.T) {
	st := datatype.Must(datatype.TypeStruct(
		[]int{1, 4, 16, 64},
		[]int64{0, 8, 40, 136},
		[]*datatype.Type{datatype.Int32, datatype.Int32, datatype.Int32, datatype.Int32},
	)) // 340 data bytes over 392-byte extent
	for _, scheme := range []core.Scheme{core.SchemeGeneric, core.SchemeBCSPUP,
		core.SchemeRWGUP, core.SchemePRRS, core.SchemeMultiW, core.SchemeAuto} {
		t.Run(scheme.String(), func(t *testing.T) {
			const n = 4
			const count = 40 // 13.6 KB per pair: rendezvous
			w, err := NewWorld(smallConfig(n, scheme))
			if err != nil {
				t.Fatal(err)
			}
			sent := make([][]byte, n) // rank r's full send payload
			got := make([][]byte, n)
			err = w.Run(func(p *Proc) error {
				sbuf := allocFor(p, st, count*n)
				sent[p.Rank()] = fill(p, sbuf, st, count*n, byte(p.Rank()*3+1))
				rbuf := allocFor(p, st, count*n)
				if err := p.Alltoall(sbuf, count, st, rbuf, count, st); err != nil {
					return err
				}
				got[p.Rank()] = read(p, rbuf, st, count*n)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			blockBytes := int(st.Size()) * count
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					want := sent[s][r*blockBytes : (r+1)*blockBytes]
					have := got[r][s*blockBytes : (s+1)*blockBytes]
					if !bytes.Equal(want, have) {
						t.Fatalf("alltoall mismatch: block from %d at %d", s, r)
					}
				}
			}
		})
	}
}

func TestWorldErrors(t *testing.T) {
	if _, err := NewWorld(Config{Ranks: 0}); err == nil {
		t.Fatal("zero-rank world accepted")
	}
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("boom")
	err = w.Run(func(p *Proc) error {
		if p.Rank() == 1 {
			return wantErr
		}
		return nil
	})
	if err == nil {
		t.Fatal("rank error not propagated")
	}
}

func TestDeadlockSurfaces(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		if p.Rank() == 0 {
			buf := p.Mem().MustAlloc(64)
			_, err := p.Recv(buf, 64, datatype.Byte, 1, 0) // never sent
			return err
		}
		return nil
	})
	var de *simtime.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}
