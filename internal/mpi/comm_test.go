package mpi

import (
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datatype"
)

func TestCommWorld(t *testing.T) {
	w, err := NewWorld(smallConfig(4, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		c := p.World()
		if c.Rank() != p.Rank() || c.Size() != p.Size() {
			return fmt.Errorf("world comm identity broken: %d/%d vs %d/%d",
				c.Rank(), c.Size(), p.Rank(), p.Size())
		}
		if c.WorldRank(2) != 2 || c.CommRank(3) != 3 {
			return fmt.Errorf("world rank mapping broken")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplitEvenOdd(t *testing.T) {
	const n = 6
	w, err := NewWorld(smallConfig(n, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		color := p.Rank() % 2
		sub, err := p.World().Split(color, p.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != n/2 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		if sub.WorldRank(sub.Rank()) != p.Rank() {
			return fmt.Errorf("rank mapping inconsistent")
		}
		// Ring send within the sub-communicator.
		buf := p.Mem().MustAlloc(8)
		binary.LittleEndian.PutUint32(p.Mem().Bytes(buf, 8), uint32(p.Rank()))
		right := (sub.Rank() + 1) % sub.Size()
		left := (sub.Rank() - 1 + sub.Size()) % sub.Size()
		rbuf := p.Mem().MustAlloc(8)
		if err := sub.Sendrecv(buf, 8, datatype.Byte, right, 1,
			rbuf, 8, datatype.Byte, left, 1); err != nil {
			return err
		}
		got := int(binary.LittleEndian.Uint32(p.Mem().Bytes(rbuf, 8)))
		want := sub.WorldRank(left)
		if got != want {
			return fmt.Errorf("ring recv = %d, want %d", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplitKeyOrdering(t *testing.T) {
	const n = 4
	w, err := NewWorld(smallConfig(n, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		// Reverse the ordering with descending keys.
		sub, err := p.World().Split(0, n-p.Rank())
		if err != nil {
			return err
		}
		if want := n - 1 - p.Rank(); sub.Rank() != want {
			return fmt.Errorf("key-ordered rank = %d, want %d", sub.Rank(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplitUndefined(t *testing.T) {
	w, err := NewWorld(smallConfig(3, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		color := 0
		if p.Rank() == 1 {
			color = Undefined
		}
		sub, err := p.World().Split(color, 0)
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			if sub != nil {
				return fmt.Errorf("undefined color got a communicator")
			}
			return nil
		}
		if sub.Size() != 2 {
			return fmt.Errorf("sub size = %d", sub.Size())
		}
		return sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Messages with identical tags on different communicators must not cross.
func TestCommContextIsolation(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		dup, err := p.World().Dup()
		if err != nil {
			return err
		}
		const tag = 5
		buf := p.Mem().MustAlloc(4)
		if p.Rank() == 0 {
			p.Mem().Bytes(buf, 4)[0] = 0xAA // world message
			if err := p.World().Send(buf, 4, datatype.Byte, 1, tag); err != nil {
				return err
			}
			buf2 := p.Mem().MustAlloc(4)
			p.Mem().Bytes(buf2, 4)[0] = 0xBB // dup message
			return dup.Send(buf2, 4, datatype.Byte, 1, tag)
		}
		// Receive the dup-context message FIRST even though the world
		// message arrived first: contexts must not cross-match.
		if _, err := dup.Recv(buf, 4, datatype.Byte, 0, tag); err != nil {
			return err
		}
		if got := p.Mem().Bytes(buf, 4)[0]; got != 0xBB {
			return fmt.Errorf("dup recv got %#x, want 0xBB", got)
		}
		if _, err := p.World().Recv(buf, 4, datatype.Byte, 0, tag); err != nil {
			return err
		}
		if got := p.Mem().Bytes(buf, 4)[0]; got != 0xAA {
			return fmt.Errorf("world recv got %#x, want 0xAA", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Collectives must work within a sub-communicator, concurrently in both
// halves.
func TestSubCommCollectives(t *testing.T) {
	const n = 8
	w, err := NewWorld(smallConfig(n, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		half := p.Rank() / (n / 2) // 0 or 1
		sub, err := p.World().Split(half, p.Rank())
		if err != nil {
			return err
		}
		// Allreduce of world ranks within each half.
		sbuf := p.Mem().MustAlloc(4)
		binary.LittleEndian.PutUint32(p.Mem().Bytes(sbuf, 4), uint32(p.Rank()))
		rbuf := p.Mem().MustAlloc(4)
		if err := sub.Allreduce(sbuf, rbuf, 1, OpSumInt32); err != nil {
			return err
		}
		got := int(int32(binary.LittleEndian.Uint32(p.Mem().Bytes(rbuf, 4))))
		want := 0
		for r := half * (n / 2); r < (half+1)*(n/2); r++ {
			want += r
		}
		if got != want {
			return fmt.Errorf("rank %d half %d: allreduce = %d, want %d", p.Rank(), half, got, want)
		}
		// Bcast of the half leader's value within the sub-communicator.
		bbuf := p.Mem().MustAlloc(4)
		if sub.Rank() == 0 {
			binary.LittleEndian.PutUint32(p.Mem().Bytes(bbuf, 4), uint32(100+half))
		}
		if err := sub.Bcast(bbuf, 4, datatype.Byte, 0); err != nil {
			return err
		}
		if v := binary.LittleEndian.Uint32(p.Mem().Bytes(bbuf, 4)); v != uint32(100+half) {
			return fmt.Errorf("sub bcast = %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Successive Splits must agree on fresh contexts across ranks.
func TestRepeatedSplitsStayIsolated(t *testing.T) {
	w, err := NewWorld(smallConfig(4, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		var comms []*Comm
		for i := 0; i < 3; i++ {
			sub, err := p.World().Split(0, p.Rank())
			if err != nil {
				return err
			}
			comms = append(comms, sub)
		}
		// A barrier on each must complete (mismatched contexts would
		// deadlock, which the engine reports).
		for _, c := range comms {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
