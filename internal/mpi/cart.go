package mpi

import "fmt"

// Cart is a Cartesian process topology over a communicator
// (MPI_Cart_create). Ranks are laid out row-major over dims (dimension 0
// slowest), with optional wraparound per dimension.
type Cart struct {
	comm     *Comm
	dims     []int
	periodic []bool
	coords   []int // this process's coordinates
}

// CartCreate builds a Cartesian topology over the communicator. The product
// of dims must equal the communicator size. periodic selects wraparound per
// dimension. Collective only in the trivial sense (no communication needed —
// the embedding is deterministic, as MPICH's is with reorder=false).
func (c *Comm) CartCreate(dims []int, periodic []bool) (*Cart, error) {
	if len(dims) == 0 || len(periodic) != len(dims) {
		return nil, fmt.Errorf("cart: dims/periodic disagree: %d/%d", len(dims), len(periodic))
	}
	total := 1
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("cart: dims[%d]=%d", i, d)
		}
		total *= d
	}
	if total != c.Size() {
		return nil, fmt.Errorf("cart: grid %d != comm size %d", total, c.Size())
	}
	ct := &Cart{
		comm:     c,
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
	}
	ct.coords = ct.CoordsOf(c.Rank())
	return ct, nil
}

// DimsCreate factors nnodes into ndims balanced dimensions, largest first
// (MPI_Dims_create with all entries zero).
func DimsCreate(nnodes, ndims int) ([]int, error) {
	if nnodes <= 0 || ndims <= 0 {
		return nil, fmt.Errorf("cart: DimsCreate(%d, %d)", nnodes, ndims)
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Factorize, then assign factors largest-first onto the currently
	// smallest dimension — the balanced decomposition MPI specifies.
	var factors []int
	n := nnodes
	for f := 2; f*f <= n; {
		if n%f == 0 {
			factors = append(factors, f)
			n /= f
		} else {
			f++
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	for i := len(factors) - 1; i >= 0; i-- {
		smallest := 0
		for j := 1; j < ndims; j++ {
			if dims[j] < dims[smallest] {
				smallest = j
			}
		}
		dims[smallest] *= factors[i]
	}
	// Sort descending so dimension 0 is largest, as MPI requires.
	for i := 0; i < ndims; i++ {
		for j := i + 1; j < ndims; j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims, nil
}

// Comm returns the underlying communicator.
func (ct *Cart) Comm() *Comm { return ct.comm }

// Dims returns the grid shape.
func (ct *Cart) Dims() []int { return append([]int(nil), ct.dims...) }

// Coords returns this process's coordinates.
func (ct *Cart) Coords() []int { return append([]int(nil), ct.coords...) }

// CoordsOf converts a comm rank to grid coordinates (MPI_Cart_coords).
func (ct *Cart) CoordsOf(rank int) []int {
	n := len(ct.dims)
	out := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = rank % ct.dims[i]
		rank /= ct.dims[i]
	}
	return out
}

// RankOf converts grid coordinates to a comm rank (MPI_Cart_rank). Periodic
// dimensions wrap; out-of-range coordinates on non-periodic dimensions
// return ProcNull.
func (ct *Cart) RankOf(coords []int) int {
	rank := 0
	for i, c := range coords {
		if ct.periodic[i] {
			c = ((c % ct.dims[i]) + ct.dims[i]) % ct.dims[i]
		} else if c < 0 || c >= ct.dims[i] {
			return ProcNull
		}
		rank = rank*ct.dims[i] + c
	}
	return rank
}

// ProcNull is the null rank for off-grid neighbours (MPI_PROC_NULL).
const ProcNull = -2

// Shift returns the source and destination ranks for a displacement along a
// dimension (MPI_Cart_shift): recv from source, send to dest.
func (ct *Cart) Shift(dim, disp int) (source, dest int) {
	up := append([]int(nil), ct.coords...)
	down := append([]int(nil), ct.coords...)
	up[dim] += disp
	down[dim] -= disp
	return ct.RankOf(down), ct.RankOf(up)
}
