package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/pack"
)

// The cross-backend conformance suite: every transfer scheme must deliver
// byte-identical data for every derived-datatype shape on both the
// deterministic simulator and the real-time concurrent fabric. This is the
// contract that makes the two backends interchangeable substrates for the
// protocol layers.

// confAlloc reserves a buffer sized for (dt, count) and returns the base
// address adjusted for a negative true lower bound.
func confAlloc(p *Proc, dt *datatype.Type, count int) mem.Addr {
	span := dt.TrueExtent() + int64(count-1)*dt.Extent()
	a := p.Mem().MustAlloc(span)
	return mem.Addr(int64(a) - dt.TrueLB())
}

// confPattern is the deterministic payload both sides derive independently.
func confPattern(n int64, seed byte) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = seed ^ byte(i*131+29)
	}
	return data
}

// confFill scatters the pattern into the datatype's layout at base.
func confFill(p *Proc, base mem.Addr, dt *datatype.Type, count int, seed byte) {
	data := confPattern(dt.Size()*int64(count), seed)
	u := pack.NewUnpacker(p.Mem(), base, dt, count)
	if n, _ := u.UnpackFrom(data); n != int64(len(data)) {
		panic("confFill short")
	}
}

// confGather packs the datatype's layout at base back into a flat buffer.
func confGather(p *Proc, base mem.Addr, dt *datatype.Type, count int) []byte {
	out := make([]byte, dt.Size()*int64(count))
	pk := pack.NewPacker(p.Mem(), base, dt, count)
	if n, _ := pk.PackTo(out); n != int64(len(out)) {
		panic("confGather short")
	}
	return out
}

func confTypes(t *testing.T) map[string]struct {
	dt    *datatype.Type
	count int
} {
	t.Helper()
	vector, err := datatype.TypeVector(128, 16, 64, datatype.Int32)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := datatype.TypeIndexed(
		[]int{3, 1, 7, 5, 16, 2, 30},
		[]int{0, 5, 8, 17, 24, 42, 46},
		datatype.Int32)
	if err != nil {
		t.Fatal(err)
	}
	var sLens []int
	var sDispls []int64
	var sTypes []*datatype.Type
	pos := int64(0)
	for b := 1; b <= 256; b *= 2 {
		sLens = append(sLens, b)
		sDispls = append(sDispls, pos)
		sTypes = append(sTypes, datatype.Int32)
		pos += int64(b)*4 + 4
	}
	strct, err := datatype.TypeStruct(sLens, sDispls, sTypes)
	if err != nil {
		t.Fatal(err)
	}
	subarray, err := datatype.TypeSubarray(
		[]int{64, 64}, []int{32, 32}, []int{8, 16},
		datatype.OrderC, datatype.Int32)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]struct {
		dt    *datatype.Type
		count int
	}{
		// Sizes chosen to exceed the 8 KB eager threshold so every scheme's
		// rendezvous path runs.
		"vector":   {vector, 2},   // 2 x 8192 B
		"indexed":  {indexed, 40}, // 40 x 256 B
		"struct":   {strct, 6},    // 6 x 2044 B
		"subarray": {subarray, 3}, // 3 x 4096 B
	}
}

func TestCrossBackendConformance(t *testing.T) {
	schemes := []core.Scheme{
		core.SchemeGeneric, core.SchemeBCSPUP, core.SchemeRWGUP,
		core.SchemePRRS, core.SchemeMultiW,
	}
	backends := AllBackends
	types := confTypes(t)

	for name, tc := range types {
		for _, scheme := range schemes {
			// The expected flat payload is the same for every backend; any
			// divergence between backends also fails against this oracle.
			want := confPattern(tc.dt.Size()*int64(tc.count), 3)
			for _, backend := range backends {
				t.Run(fmt.Sprintf("%s/%s/%s", name, scheme, backend), func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.Ranks = 2
					cfg.MemBytes = 96 << 20
					cfg.Core.Scheme = scheme
					cfg.Backend = backend
					cfg.RTTimeout = time.Minute
					w, err := NewWorld(cfg)
					if err != nil {
						t.Fatal(err)
					}
					var got []byte
					err = w.Run(func(p *Proc) error {
						buf := confAlloc(p, tc.dt, tc.count)
						if p.Rank() == 0 {
							confFill(p, buf, tc.dt, tc.count, 3)
							return p.Send(buf, tc.count, tc.dt, 1, 7)
						}
						if _, err := p.Recv(buf, tc.count, tc.dt, 0, 7); err != nil {
							return err
						}
						got = confGather(p, buf, tc.dt, tc.count)
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s over %s on %s: delivered bytes differ from source",
							name, scheme, backend)
					}
				})
			}
		}
	}
}

// The Auto scheme must also deliver correctly on both backends (it picks a
// different underlying scheme per message shape).
func TestCrossBackendConformanceAuto(t *testing.T) {
	types := confTypes(t)
	for _, backend := range AllBackends {
		for name, tc := range types {
			t.Run(fmt.Sprintf("%s/%s", name, backend), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Ranks = 2
				cfg.MemBytes = 96 << 20
				cfg.Core.Scheme = core.SchemeAuto
				cfg.Backend = backend
				cfg.RTTimeout = time.Minute
				w, err := NewWorld(cfg)
				if err != nil {
					t.Fatal(err)
				}
				want := confPattern(tc.dt.Size()*int64(tc.count), 5)
				var got []byte
				err = w.Run(func(p *Proc) error {
					buf := confAlloc(p, tc.dt, tc.count)
					if p.Rank() == 0 {
						confFill(p, buf, tc.dt, tc.count, 5)
						return p.Send(buf, tc.count, tc.dt, 1, 9)
					}
					if _, err := p.Recv(buf, tc.count, tc.dt, 0, 9); err != nil {
						return err
					}
					got = confGather(p, buf, tc.dt, tc.count)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("auto on %s delivered wrong bytes for %s", backend, name)
				}
			})
		}
	}
}

// TestCrossBackendConformanceInterpreted re-runs the full shape x scheme x
// backend matrix with Config.InterpretedPack set, checking the interpreted
// cursor walk against the same oracle the default compiled-program runs use
// (TestCrossBackendConformance): any byte divergence between the compiled
// and interpreted pack paths fails one of the two suites.
func TestCrossBackendConformanceInterpreted(t *testing.T) {
	schemes := []core.Scheme{
		core.SchemeGeneric, core.SchemeBCSPUP, core.SchemeRWGUP,
		core.SchemePRRS, core.SchemeMultiW,
	}
	backends := AllBackends
	types := confTypes(t)

	for name, tc := range types {
		for _, scheme := range schemes {
			want := confPattern(tc.dt.Size()*int64(tc.count), 3)
			for _, backend := range backends {
				t.Run(fmt.Sprintf("%s/%s/%s", name, scheme, backend), func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.Ranks = 2
					cfg.MemBytes = 96 << 20
					cfg.Core.Scheme = scheme
					cfg.Core.InterpretedPack = true
					cfg.Backend = backend
					cfg.RTTimeout = time.Minute
					w, err := NewWorld(cfg)
					if err != nil {
						t.Fatal(err)
					}
					var got []byte
					err = w.Run(func(p *Proc) error {
						buf := confAlloc(p, tc.dt, tc.count)
						if p.Rank() == 0 {
							confFill(p, buf, tc.dt, tc.count, 3)
							return p.Send(buf, tc.count, tc.dt, 1, 7)
						}
						if _, err := p.Recv(buf, tc.count, tc.dt, 0, 7); err != nil {
							return err
						}
						got = confGather(p, buf, tc.dt, tc.count)
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("interpreted %s over %s on %s: delivered bytes differ from the compiled-path oracle",
							name, scheme, backend)
					}
				})
			}
		}
	}
}
