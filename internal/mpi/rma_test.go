package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/pack"
)

func fillBytes(p *Proc, a mem.Addr, n int64, seed byte) []byte {
	b := p.Mem().Bytes(a, n)
	for i := range b {
		b[i] = seed ^ byte(i*13+1)
	}
	return append([]byte(nil), b...)
}

func TestPutContiguous(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	const n = 64 << 10
	err = w.Run(func(p *Proc) error {
		winBuf := p.Mem().MustAlloc(n)
		win, err := p.World().WinCreate(winBuf, n)
		if err != nil {
			return err
		}
		var want []byte
		if p.Rank() == 0 {
			src := p.Mem().MustAlloc(n)
			want = fillBytes(p, src, n, 0x61)
			ct := datatype.Must(datatype.TypeContiguous(n, datatype.Byte))
			if err := win.Put(src, 1, ct, 1, 0, 1, ct); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			got := p.Mem().Bytes(winBuf, n)
			for i := range got {
				if got[i] != 0x61^byte(i*13+1) {
					return fmt.Errorf("put data corrupt at %d", i)
				}
			}
		}
		_ = want
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutNoncontiguousBothSides(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeMultiW))
	if err != nil {
		t.Fatal(err)
	}
	oType := datatype.Must(datatype.TypeVector(64, 8, 32, datatype.Int32))  // 2 KB data
	tType := datatype.Must(datatype.TypeVector(128, 4, 16, datatype.Int32)) // 2 KB data
	err = w.Run(func(p *Proc) error {
		winSpan := tType.TrueExtent()
		winBuf := p.Mem().MustAlloc(winSpan)
		win, err := p.World().WinCreate(winBuf, winSpan)
		if err != nil {
			return err
		}
		var sent []byte
		if p.Rank() == 0 {
			src := p.Mem().MustAlloc(oType.TrueExtent())
			data := make([]byte, oType.Size())
			for i := range data {
				data[i] = byte(i*7 + 3)
			}
			u := pack.NewUnpacker(p.Mem(), src, oType, 1)
			u.UnpackFrom(data)
			sent = data
			if err := win.Put(src, 1, oType, 1, 0, 1, tType); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 1 {
			got := make([]byte, tType.Size())
			pk := pack.NewPacker(p.Mem(), winBuf, tType, 1)
			pk.PackTo(got)
			for i := range got {
				if got[i] != byte(i*7+3) {
					return fmt.Errorf("noncontig put corrupt at %d", i)
				}
			}
			// Zero copies on the passive target.
			if c := p.Endpoint().Counters(); c.BytesUnpacked != 0 {
				return fmt.Errorf("target unpacked %d bytes; RMA must be zero copy", c.BytesUnpacked)
			}
		}
		_ = sent
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetRoundTrip(t *testing.T) {
	w, err := NewWorld(smallConfig(3, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16 << 10
	ct := datatype.Must(datatype.TypeContiguous(n, datatype.Byte))
	err = w.Run(func(p *Proc) error {
		winBuf := p.Mem().MustAlloc(n)
		fillBytes(p, winBuf, n, byte(0x10+p.Rank()))
		win, err := p.World().WinCreate(winBuf, n)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil { // expose epoch
			return err
		}
		// Everyone reads its right neighbour's window.
		right := (p.Rank() + 1) % p.Size()
		dst := p.Mem().MustAlloc(n)
		if err := win.Get(dst, 1, ct, right, 0, 1, ct); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		want := byte(0x10 + right)
		got := p.Mem().Bytes(dst, n)
		for i := range got {
			if got[i] != want^byte(i*13+1) {
				return fmt.Errorf("get corrupt at %d", i)
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutToSelf(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		const n = 4096
		winBuf := p.Mem().MustAlloc(n)
		win, err := p.World().WinCreate(winBuf, n)
		if err != nil {
			return err
		}
		src := p.Mem().MustAlloc(n)
		fillBytes(p, src, n, 0x33)
		ct := datatype.Must(datatype.TypeContiguous(n, datatype.Byte))
		if err := win.Put(src, 1, ct, p.Rank(), 0, 1, ct); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if !bytes.Equal(p.Mem().Bytes(winBuf, n), p.Mem().Bytes(src, n)) {
			return fmt.Errorf("self put mismatch")
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutOutOfBoundsRejected(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		winBuf := p.Mem().MustAlloc(4096)
		win, err := p.World().WinCreate(winBuf, 4096)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Mem().MustAlloc(4096)
			ct := datatype.Must(datatype.TypeContiguous(4096, datatype.Byte))
			// Displacement pushes the access past the window end.
			if err := win.Put(src, 1, ct, 1, 100, 1, ct); err != nil {
				return err
			}
			if err := win.Fence(); err == nil {
				return fmt.Errorf("out-of-window put not rejected")
			}
		} else {
			win.Fence()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutSizeMismatchRejected(t *testing.T) {
	w, err := NewWorld(smallConfig(2, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(p *Proc) error {
		winBuf := p.Mem().MustAlloc(4096)
		win, err := p.World().WinCreate(winBuf, 4096)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			src := p.Mem().MustAlloc(4096)
			big := datatype.Must(datatype.TypeContiguous(2048, datatype.Byte))
			small := datatype.Must(datatype.TypeContiguous(1024, datatype.Byte))
			if err := win.Put(src, 1, big, 1, 0, 1, small); err != nil {
				return err
			}
			if err := win.Fence(); err == nil {
				return fmt.Errorf("size mismatch not rejected")
			}
		} else {
			win.Fence()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Multiple epochs: Put in epoch 1 must be visible before epoch 2's Get reads
// it back through a third rank.
func TestFenceEpochOrdering(t *testing.T) {
	w, err := NewWorld(smallConfig(3, core.SchemeBCSPUP))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	ct := datatype.Must(datatype.TypeContiguous(n, datatype.Byte))
	err = w.Run(func(p *Proc) error {
		winBuf := p.Mem().MustAlloc(n)
		win, err := p.World().WinCreate(winBuf, n)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		// Epoch 1: rank 0 writes into rank 1's window.
		if p.Rank() == 0 {
			src := p.Mem().MustAlloc(n)
			fillBytes(p, src, n, 0x5E)
			if err := win.Put(src, 1, ct, 1, 0, 1, ct); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		// Epoch 2: rank 2 reads rank 1's window and checks rank 0's data.
		if p.Rank() == 2 {
			dst := p.Mem().MustAlloc(n)
			if err := win.Get(dst, 1, ct, 1, 0, 1, ct); err != nil {
				return err
			}
			if err := win.Fence(); err != nil {
				return err
			}
			got := p.Mem().Bytes(dst, n)
			for i := range got {
				if got[i] != 0x5E^byte(i*13+1) {
					return fmt.Errorf("epoch-2 get corrupt at %d", i)
				}
			}
		} else {
			if err := win.Fence(); err != nil {
				return err
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}
