// Package simtime provides a deterministic discrete-event simulation engine
// with coroutine-style processes.
//
// The engine advances a virtual clock by executing events in (time, sequence)
// order. Rank programs (MPI processes, in this repository) run as Process
// coroutines: goroutines that execute in strict alternation with the engine,
// so the whole simulation is logically single-threaded and bit-for-bit
// reproducible. A process blocks by sleeping for a virtual duration or by
// waiting on a Signal; protocol state machines run as plain scheduled events.
package simtime

import (
	"fmt"
	"sort"
	"strings"
)

// Time is an absolute virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package for readability.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Micros reports d as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }

func (d Duration) String() string { return fmt.Sprintf("%.3fus", d.Micros()) }

type event struct {
	at  Time
	seq int64
	fn  func()
}

// eventHeap is a 4-ary min-heap of events stored by value, ordered by
// (at, seq). seq is unique per event, so the ordering is total and the
// extraction sequence is independent of heap shape — determinism does not
// depend on the arity or the sift implementation. Values (24 bytes) beat a
// heap of pointers here: a million-event Alltoall at 1024 ranks spends most
// of its host CPU in this structure, and the pointer version paid an
// allocation per event plus a cache miss per comparison.
type eventHeap []event

func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.before(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release fn for GC
	s = s[:n]
	*h = s
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		small := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.before(c, small) {
				small = c
			}
		}
		if !s.before(small, i) {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
	live   []*Process // spawned processes that have not finished
	yield  chan struct{}
	inRun  bool
}

// NewEngine returns an engine with an empty event queue at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule arranges for fn to run in engine (event) context after d elapses.
// A non-positive d schedules fn at the current time, after already-pending
// events at that time. Schedule may be called from event context or from a
// running Process; both are serialized with engine execution.
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	e.events.push(event{at: e.now.Add(d), seq: e.seq, fn: fn})
}

// At arranges for fn to run at absolute time t (or now, if t is in the past).
func (e *Engine) At(t Time, fn func()) {
	e.Schedule(t.Sub(e.now), fn)
}

// DeadlockError is returned by Run when the event queue drains while spawned
// processes are still blocked.
type DeadlockError struct {
	// Blocked lists the names of the processes that can never resume.
	Blocked []string
	// At is the virtual time at which the simulation stalled.
	At Time
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("simtime: deadlock at %v: blocked processes: %s",
		e.At, strings.Join(e.Blocked, ", "))
}

// Run executes events until the queue is empty. It returns a *DeadlockError
// if any spawned process is still blocked when no event can wake it.
func (e *Engine) Run() error {
	if e.inRun {
		panic("simtime: Run called re-entrantly")
	}
	e.inRun = true
	defer func() { e.inRun = false }()
	for len(e.events) > 0 {
		ev := e.events.pop()
		if ev.at < e.now {
			panic("simtime: event scheduled in the past")
		}
		e.now = ev.at
		ev.fn()
	}
	if n := len(e.live); n > 0 {
		names := make([]string, 0, n)
		for _, p := range e.live {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return &DeadlockError{Blocked: names, At: e.now}
	}
	return nil
}

// RunUntil executes events with timestamps not exceeding t, then returns.
// It does not check for deadlock.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		ev := e.events.pop()
		e.now = ev.at
		ev.fn()
	}
	if e.now < t {
		e.now = t
	}
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp, and reports whether an event ran. It lets an external
// driver (the real-time fabric's per-node goroutine) interleave engine
// events with work arriving from outside the engine, which Run cannot do.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := e.events.pop()
	if ev.at > e.now {
		e.now = ev.at
	}
	ev.fn()
	return true
}

// Blocked returns the names of spawned processes that have not finished,
// sorted. A driver that has drained all events can use it to report which
// processes are stuck.
func (e *Engine) Blocked() []string {
	names := make([]string, 0, len(e.live))
	for _, p := range e.live {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

func (e *Engine) removeLive(p *Process) {
	for i, q := range e.live {
		if q == p {
			e.live = append(e.live[:i], e.live[i+1:]...)
			return
		}
	}
}
