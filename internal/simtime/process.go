package simtime

import "fmt"

// Process is a coroutine executing inside the simulation. Exactly one of the
// engine or a single process runs at any instant; control transfers are
// explicit (Sleep, Wait, process completion), which makes process code
// race-free by construction and keeps the simulation deterministic.
type Process struct {
	eng    *Engine
	name   string
	resume chan struct{}
	// blocked is true while the process is parked waiting for a wake event.
	blocked bool
	done    bool
}

// Spawn creates a process named name executing fn. The process body starts at
// the current virtual time, after already-pending events. Spawn may be called
// before Run, from event context, or from another process.
func (e *Engine) Spawn(name string, fn func(p *Process)) *Process {
	p := &Process{eng: e, name: name, resume: make(chan struct{})}
	e.live = append(e.live, p)
	e.Schedule(0, func() { p.start(fn) })
	return p
}

// start launches the process goroutine and transfers control to it.
// Runs in engine event context.
func (p *Process) start(fn func(p *Process)) {
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		p.eng.removeLive(p)
		p.eng.yield <- struct{}{}
	}()
	p.transfer()
}

// transfer hands control to the process and blocks the engine until the
// process yields (blocks or finishes). Runs in engine event context.
func (p *Process) transfer() {
	p.resume <- struct{}{}
	<-p.eng.yield
}

// park yields control back to the engine and blocks until woken.
// Runs in process context.
func (p *Process) park() {
	p.blocked = true
	p.eng.yield <- struct{}{}
	<-p.resume
}

// wake schedules the process to resume at the current virtual time.
// Runs in engine or process context.
func (p *Process) wake() {
	if p.done {
		panic(fmt.Sprintf("simtime: wake of finished process %q", p.name))
	}
	if !p.blocked {
		panic(fmt.Sprintf("simtime: wake of running process %q", p.name))
	}
	p.blocked = false
	p.eng.Schedule(0, p.transfer)
}

// Name returns the name given at Spawn.
func (p *Process) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Process) Now() Time { return p.eng.now }

// Sleep suspends the process for virtual duration d. A non-positive d yields
// to other events at the current time and resumes.
func (p *Process) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.Schedule(d, func() {
		p.blocked = false
		p.transfer()
	})
	p.blocked = true
	p.eng.yield <- struct{}{}
	<-p.resume
}

// WaitUntil suspends the process until absolute virtual time t. If t is not
// after the current time, it behaves like Sleep(0).
func (p *Process) WaitUntil(t Time) {
	p.Sleep(t.Sub(p.eng.now))
}

// Signal is a broadcast wake-up point for processes, analogous to a condition
// variable. The zero value is ready to use. Signals are not goroutine-safe in
// the general sense; they rely on the engine's strict alternation.
type Signal struct {
	waiters []*Process
}

// Wait parks the process until the signal is next broadcast. As with
// condition variables, callers re-check their predicate in a loop:
//
//	for !ready() {
//		p.Wait(&sig)
//	}
func (p *Process) Wait(s *Signal) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// Broadcast wakes every process currently waiting on s. Each wakes via its
// own event at the current virtual time, in Wait order. Safe to call from
// event or process context; calling with no waiters is a no-op.
func (s *Signal) Broadcast() {
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		w.wake()
	}
}

// Waiters reports how many processes are parked on s.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Resource models a serially-reusable facility (a CPU, a NIC port) by
// tracking the time at which it next becomes free. Acquire reserves the
// resource for a duration and reports the reservation window; it never
// blocks — callers schedule follow-up work at the returned end time.
type Resource struct {
	name   string
	freeAt Time
	// Busy accumulates total reserved time, for utilization reporting.
	Busy Duration
}

// NewResource returns a named resource that is free at time zero.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

// FreeAt returns the earliest time the resource is available.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Acquire reserves the resource for duration d starting no earlier than now,
// returning the start and end of the reservation. Negative d is treated as 0.
func (r *Resource) Acquire(now Time, d Duration) (start, end Time) {
	if d < 0 {
		d = 0
	}
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start.Add(d)
	r.freeAt = end
	r.Busy += d
	return start, end
}

// AcquireAt reserves the resource like Acquire but with an explicit earliest
// start time, which may be later than now (e.g. data not yet available).
func (r *Resource) AcquireAt(earliest Time, d Duration) (start, end Time) {
	return r.Acquire(earliest, d)
}

// Reset makes the resource free immediately and clears accounting.
func (r *Resource) Reset() { r.freeAt = 0; r.Busy = 0 }
