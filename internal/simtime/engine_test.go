package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestScheduleFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: got[%d] = %d", i, got[i])
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		e.Schedule(-5, func() {
			if e.Now() != 10 {
				t.Errorf("negative delay ran at %v, want 10", e.Now())
			}
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedSchedule(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 10 {
			e.Schedule(1, rec)
		}
	}
	e.Schedule(0, rec)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 10 {
		t.Fatalf("depth = %d, want 10", depth)
	}
	if e.Now() != 9 {
		t.Fatalf("Now = %v, want 9", e.Now())
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var wakes []Time
	e.Spawn("sleeper", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Sleep(100)
			wakes = append(wakes, p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{100, 200, 300}
	for i := range want {
		if wakes[i] != want[i] {
			t.Fatalf("wakes = %v, want %v", wakes, want)
		}
	}
}

func TestProcessZeroSleepYields(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Spawn("a", func(p *Process) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Process) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEngine()
	var sig Signal
	ready := false
	var woke []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		e.Spawn(name, func(p *Process) {
			for !ready {
				p.Wait(&sig)
			}
			woke = append(woke, name)
		})
	}
	e.Spawn("setter", func(p *Process) {
		p.Sleep(50)
		ready = true
		sig.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke = %v, want 3 waiters", woke)
	}
	// Waiters wake in Wait order.
	want := []string{"w1", "w2", "w3"}
	for i := range want {
		if woke[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", woke, want)
		}
	}
}

func TestSignalSpuriousBroadcast(t *testing.T) {
	e := NewEngine()
	var sig Signal
	n := 0
	e.Spawn("w", func(p *Process) {
		for n < 2 {
			p.Wait(&sig)
		}
	})
	e.Spawn("b", func(p *Process) {
		for i := 0; i < 2; i++ {
			p.Sleep(10)
			n++
			sig.Broadcast()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	var sig Signal
	e.Spawn("stuck", func(p *Process) {
		p.Wait(&sig) // nobody broadcasts
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Fatalf("Blocked = %v, want [stuck]", de.Blocked)
	}
}

func TestNoDeadlockWhenAllFinish(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Spawn("p", func(p *Process) { p.Sleep(10) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEngine()
	var childRan bool
	e.Spawn("parent", func(p *Process) {
		p.Sleep(10)
		e.Spawn("child", func(c *Process) {
			c.Sleep(5)
			childRan = true
			if c.Now() != 15 {
				t.Errorf("child Now = %v, want 15", c.Now())
			}
		})
		p.Sleep(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Duration{10, 20, 30} {
		d := d
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want 2 events", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestResourceSerialization(t *testing.T) {
	r := NewResource("cpu")
	s1, e1 := r.Acquire(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first acquire = [%v,%v], want [0,100]", s1, e1)
	}
	// Second request at t=50 must queue behind the first.
	s2, e2 := r.Acquire(50, 30)
	if s2 != 100 || e2 != 130 {
		t.Fatalf("second acquire = [%v,%v], want [100,130]", s2, e2)
	}
	// A request after the resource is idle starts immediately.
	s3, e3 := r.Acquire(500, 10)
	if s3 != 500 || e3 != 510 {
		t.Fatalf("third acquire = [%v,%v], want [500,510]", s3, e3)
	}
	if r.Busy != 140 {
		t.Fatalf("Busy = %v, want 140", r.Busy)
	}
}

func TestResourceNegativeDuration(t *testing.T) {
	r := NewResource("x")
	s, e := r.Acquire(10, -5)
	if s != 10 || e != 10 {
		t.Fatalf("acquire = [%v,%v], want [10,10]", s, e)
	}
}

// Property: events fire in nondecreasing time order regardless of insertion
// order, and every scheduled event fires exactly once.
func TestEventOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		delays := make([]Duration, count)
		for i := range delays {
			delays[i] = Duration(rng.Intn(1000))
		}
		var fired []Time
		for _, d := range delays {
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != count {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		sorted := make([]Duration, count)
		copy(sorted, delays)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, ft := range fired {
			if ft != Time(sorted[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved sleeping processes always observe the correct clock.
func TestProcessClockProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		ok := true
		for i := 0; i < 8; i++ {
			steps := make([]Duration, rng.Intn(10)+1)
			for j := range steps {
				steps[j] = Duration(rng.Intn(100))
			}
			e.Spawn("p", func(p *Process) {
				var elapsed Time
				for _, d := range steps {
					p.Sleep(d)
					elapsed = elapsed.Add(d)
					if p.Now() < elapsed {
						ok = false
					}
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeFormatting(t *testing.T) {
	if got := Time(1500).Micros(); got != 1.5 {
		t.Fatalf("Micros = %v, want 1.5", got)
	}
	if got := (2 * Microsecond).Micros(); got != 2.0 {
		t.Fatalf("Duration.Micros = %v, want 2", got)
	}
	if got := (3 * Second).Seconds(); got != 3.0 {
		t.Fatalf("Seconds = %v, want 3", got)
	}
}

func TestAtAbsoluteTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func() {
		e.At(50, func() { at = e.Now() }) // already past: runs now
	})
	e.At(200, func() {
		if e.Now() != 200 {
			t.Errorf("At(200) ran at %v", e.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 100 {
		t.Fatalf("past At ran at %v, want 100 (clamped to now)", at)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x")
	r.Acquire(0, 100)
	r.Reset()
	if r.FreeAt() != 0 || r.Busy != 0 {
		t.Fatalf("reset incomplete: freeAt=%v busy=%v", r.FreeAt(), r.Busy)
	}
	if r.Name() != "x" {
		t.Fatalf("name = %q", r.Name())
	}
}

// Step is the incremental drain used by the real-time backend's driver
// loops: one event per call, in order, advancing the clock, interleavable
// with externally injected work.
func TestStepIncrementalDrain(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(20, func() { order = append(order, 2) })
	e.Schedule(10, func() { order = append(order, 1) })
	if !e.Step() {
		t.Fatal("Step returned false with events pending")
	}
	if e.Now() != 10 || len(order) != 1 || order[0] != 1 {
		t.Fatalf("after first Step: now=%v order=%v", e.Now(), order)
	}
	// Work injected between steps lands in the same queue.
	e.Schedule(5, func() { order = append(order, 3) })
	for e.Step() {
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v, want 20", e.Now())
	}
	if want := []int{1, 3, 2}; len(order) != 3 || order[0] != want[0] ||
		order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if e.Step() {
		t.Fatal("Step returned true on an empty queue")
	}
}

// Blocked reports still-parked processes without consuming them — the
// real-time backend's post-quiescence deadlock check.
func TestBlockedReportsParkedProcesses(t *testing.T) {
	e := NewEngine()
	var sig Signal
	e.Spawn("zeta", func(p *Process) { p.Wait(&sig) })
	e.Spawn("alpha", func(p *Process) { p.Wait(&sig) })
	e.Spawn("done", func(p *Process) { p.Sleep(5) })
	for e.Step() {
	}
	got := e.Blocked()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Blocked = %v, want [alpha zeta] (sorted)", got)
	}
	// Waking them empties the report.
	sig.Broadcast()
	for e.Step() {
	}
	if got := e.Blocked(); len(got) != 0 {
		t.Fatalf("Blocked after wake = %v, want empty", got)
	}
}
