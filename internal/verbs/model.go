package verbs

import (
	"repro/internal/mem"
	"repro/internal/simtime"
)

// Model holds every hardware cost parameter of the fabric. The simulator
// backend prices all activity with it; the real-time backend uses it only
// for structural limits (MaxSGE) and for host-side accounting, since its
// timing is the wall clock. Bandwidths are in decimal GB/s, which
// conveniently equals bytes per nanosecond. Defaults approximate the paper's
// testbed: 2003-era InfiniBand 4x (Mellanox InfiniHost MT23108) behind a
// 133 MHz PCI-X bus on dual 2.4 GHz Xeon nodes.
type Model struct {
	// Wire and link.
	WireLatency simtime.Duration // one-way first-bit latency through the switch
	LinkGBps    float64          // per-port serialization bandwidth (PCI-X bound)

	// Host memory copies (pack/unpack).
	CopyGBps         float64          // memory copy bandwidth
	CopyBlockStartup simtime.Duration // per contiguous block copy overhead

	// Descriptor posting (host CPU).
	PostCost      simtime.Duration // CPU cost to post one descriptor
	ListPostEntry simtime.Duration // CPU cost per descriptor after the first in a list post
	SGEPost       simtime.Duration // CPU cost per scatter/gather entry built

	// NIC processing (occupies the send port alongside wire serialization).
	NICDescCost simtime.Duration // per-descriptor NIC processing
	NICSGECost  simtime.Duration // per-SGE NIC processing

	// Completion handling (host CPU per CQ entry).
	CompletionCost simtime.Duration

	// RDMA Read responder turnaround (why read is slower than write).
	ReadTurnaround simtime.Duration

	// Memory registration (page pinning) and deregistration.
	RegBase      simtime.Duration
	RegPerPage   simtime.Duration
	DeregBase    simtime.Duration
	DeregPerPage simtime.Duration

	// Dynamic staging-buffer allocation (malloc + page touch).
	MallocBase    simtime.Duration
	MallocPerPage simtime.Duration
	FreeCost      simtime.Duration

	// MaxSGE is the gather/scatter limit per descriptor (Mellanox SDK: 64).
	MaxSGE int

	// MaxPostBatch is the descriptor limit per list post (one doorbell).
	// It is a distinct limit from MaxSGE — SGEs bound one descriptor's
	// gather list, MaxPostBatch bounds how many descriptors one
	// PostSendList call may carry. 0 means unlimited.
	MaxPostBatch int

	// ParallelFanOut is the host CPU cost of dispatching one pack/unpack
	// worker shard (scheduling plus cache-line handoff). The parallel
	// segment engine charges shards*ParallelFanOut on top of the slowest
	// shard's copy time.
	ParallelFanOut simtime.Duration
}

// DefaultModel returns the calibrated testbed parameters. See DESIGN.md §5.
func DefaultModel() Model {
	return Model{
		WireLatency:      1300 * simtime.Nanosecond,
		LinkGBps:         0.86,
		CopyGBps:         0.75,
		CopyBlockStartup: 60 * simtime.Nanosecond,
		PostCost:         1200 * simtime.Nanosecond,
		ListPostEntry:    400 * simtime.Nanosecond,
		SGEPost:          120 * simtime.Nanosecond,
		NICDescCost:      500 * simtime.Nanosecond,
		NICSGECost:       80 * simtime.Nanosecond,
		CompletionCost:   400 * simtime.Nanosecond,
		ReadTurnaround:   2500 * simtime.Nanosecond,
		RegBase:          30 * simtime.Microsecond,
		RegPerPage:       350 * simtime.Nanosecond,
		DeregBase:        10 * simtime.Microsecond,
		DeregPerPage:     100 * simtime.Nanosecond,
		MallocBase:       2 * simtime.Microsecond,
		MallocPerPage:    1 * simtime.Microsecond,
		FreeCost:         800 * simtime.Nanosecond,
		MaxSGE:           64,
		MaxPostBatch:     64,
		ParallelFanOut:   500 * simtime.Nanosecond,
	}
}

func gbpsTime(bytes int64, gbps float64) simtime.Duration {
	if bytes <= 0 || gbps <= 0 {
		return 0
	}
	return simtime.Duration(float64(bytes) / gbps)
}

// WireTime returns the serialization time of a payload on the link.
func (m *Model) WireTime(bytes int64) simtime.Duration {
	return gbpsTime(bytes, m.LinkGBps)
}

// CopyTime returns the host cost of copying bytes spread over the given
// number of contiguous blocks.
func (m *Model) CopyTime(bytes int64, blocks int) simtime.Duration {
	return gbpsTime(bytes, m.CopyGBps) + simtime.Duration(blocks)*m.CopyBlockStartup
}

// RegTime returns the cost of registering a region spanning pages.
func (m *Model) RegTime(pages int64) simtime.Duration {
	return m.RegBase + simtime.Duration(pages)*m.RegPerPage
}

// DeregTime returns the cost of deregistering a region spanning pages.
func (m *Model) DeregTime(pages int64) simtime.Duration {
	return m.DeregBase + simtime.Duration(pages)*m.DeregPerPage
}

// RegOpsTime prices a batch of real registration work reported by the
// pin-down cache.
func (m *Model) RegOpsTime(ops mem.RegOps) simtime.Duration {
	var d simtime.Duration
	if ops.Registrations > 0 {
		d += simtime.Duration(ops.Registrations) * m.RegBase
		d += simtime.Duration(ops.RegisteredPages) * m.RegPerPage
	}
	if ops.Dereg > 0 {
		d += simtime.Duration(ops.Dereg) * m.DeregBase
		d += simtime.Duration(ops.DeregPages) * m.DeregPerPage
	}
	return d
}

// MallocTime returns the cost of a dynamic staging-buffer allocation,
// including first-touch page faults (Ezolt's malloc minor-fault effect).
func (m *Model) MallocTime(bytes int64) simtime.Duration {
	pages := (bytes + mem.PageSize - 1) / mem.PageSize
	return m.MallocBase + simtime.Duration(pages)*m.MallocPerPage
}

// PostTime returns the CPU cost of posting descriptor i (0-based) of a batch
// with the given SGE count; list selects list-post amortization.
func (m *Model) PostTime(i int, sges int, list bool) simtime.Duration {
	per := m.PostCost
	if list && i > 0 {
		per = m.ListPostEntry
	}
	return per + simtime.Duration(sges)*m.SGEPost
}
