// Package verbs defines the backend-neutral Verbs contract the protocol
// layers program against: work-request and completion types (send/receive
// channel semantics, RDMA read/write memory semantics with gather/scatter
// and immediate data), the QP/CQ/HCA interfaces, and the hardware cost
// model.
//
// Two backends implement the contract:
//
//   - internal/ib: the deterministic discrete-event simulator. One engine
//     drives every node; virtual time comes from the calibrated cost model,
//     and runs are bit-for-bit reproducible.
//   - internal/rtfab: the real-time concurrent fabric. Each rank's node is
//     driven by its own goroutine, queue pairs and completion paths are
//     bounded channels, and RDMA operations are actual copies into the peer
//     node's memory arena under the same per-region registration checks.
//
// Protocol code (internal/core, internal/mpi) holds only these interface
// types, so the same scheme implementations run — and are tested — on both
// substrates.
package verbs

import (
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// Opcode identifies the operation a work request or completion refers to.
type Opcode int

// Work-request opcodes.
const (
	OpSend Opcode = iota
	OpRDMAWrite
	OpRDMAWriteImm
	OpRDMARead
	OpRecv // completion-side only
)

// String returns the opcode's conventional verbs-API spelling.
func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRDMAWrite:
		return "RDMA_WRITE"
	case OpRDMAWriteImm:
		return "RDMA_WRITE_IMM"
	case OpRDMARead:
		return "RDMA_READ"
	case OpRecv:
		return "RECV"
	}
	return "UNKNOWN"
}

// SGE is a scatter/gather element naming registered local memory.
type SGE struct {
	Addr mem.Addr
	Len  int64
	Key  uint32 // lkey of a covering registered region
}

// SendWR is a send-queue work request.
//
// Channel semantics (OpSend) carry an Inline payload: the bytes are captured
// at post time, modeling MVAPICH's pre-registered internal send buffers, and
// are handed to the receiver in the completion entry. Memory semantics
// (RDMA write/read) use SGL/RemoteAddr/RKey and require registration on both
// ends, exactly as on hardware.
type SendWR struct {
	WRID uint64
	Op   Opcode

	// Inline is the payload for OpSend.
	Inline []byte

	// SGL is the local gather list (write) or scatter list (read).
	SGL []SGE

	// RemoteAddr/RKey name the remote contiguous region for RDMA operations.
	RemoteAddr mem.Addr
	RKey       uint32

	// Imm is delivered to the remote CQ for OpSend and OpRDMAWriteImm.
	Imm uint32

	// Lane is an advisory traffic class (internal/qos.Lane), mirroring an
	// InfiniBand service level: 0 latency-sensitive, 1 bulk. Scheduling
	// happens above the verbs boundary — the fabric only accounts it.
	Lane uint8
}

// RecvWR is a receive-queue work request: a pure credit. Channel-semantics
// payloads arrive in CQE.Data, and RDMA-write-with-immediate consumes a
// credit to generate the remote completion, as the paper's segment-arrival
// notification scheme requires.
type RecvWR struct {
	WRID uint64
}

// CQE is a completion queue entry.
type CQE struct {
	QP     QP     // the queue pair the completion belongs to
	WRID   uint64 // the work request's ID
	Op     Opcode
	Bytes  int64 // payload length
	Imm    uint32
	HasImm bool
	Err    error // nil on success

	// Data carries the payload of a channel-semantics (OpSend) message on
	// the receive side, modeling the pre-registered internal receive buffer
	// it would land in on hardware. Nil for RDMA completions.
	Data []byte
}

// QP is one end of a reliable connection. A QP belongs to one HCA; all
// methods must be called from that node's execution context (the shared
// engine in the simulator, the node's driver goroutine or a process it runs
// in the real-time fabric).
type QP interface {
	// PostSend posts one work request.
	PostSend(SendWR) error
	// PostSendList posts a list of work requests in one operation;
	// descriptors after the first are cheaper to post (the extended
	// interface the paper's Multi-W scheme evaluates in Figure 13). The
	// list must not exceed Model.MaxPostBatch descriptors (when nonzero);
	// callers chunk longer lists.
	PostSendList([]SendWR) error
	// PostRecv posts a receive credit.
	PostRecv(RecvWR)
	// RecvCredits reports the number of posted, unconsumed receive credits.
	RecvCredits() int
	// Num returns the QP number (unique per HCA).
	Num() int
	// UserData returns the value stored with SetUserData (the owning
	// protocol layer's tag, e.g. the peer rank).
	UserData() int
	// SetUserData stores an integer tag on the QP.
	SetUserData(v int)
}

// CQ is a completion queue. A CQ either queues entries for polling
// (Poll/WaitPoll) or dispatches them to a handler; protocol engines use the
// handler form so completion processing charges the host CPU and serializes
// with other host work on the owning node.
type CQ interface {
	// SetHandler switches the CQ to handler dispatch. Must be set before any
	// completion arrives.
	SetHandler(fn func(CQE))
	// Poll removes and returns the oldest completion, if any.
	Poll() (CQE, bool)
	// WaitPoll blocks the process until a completion is available, then
	// returns it, charging the completion-handling CPU cost.
	WaitPoll(p *simtime.Process) CQE
	// Len reports the number of queued completions (always 0 in handler
	// mode).
	Len() int
}

// HCA is one node's host channel adapter together with the node-side
// resources the backend accounts for. In the simulator every HCA shares one
// engine; in the real-time fabric each HCA owns a private engine that its
// driver goroutine drains, so Engine() is always the serialized execution
// context protocol code for this node runs in.
type HCA interface {
	// Name returns the node name.
	Name() string
	// Index returns the HCA's position in the fabric.
	Index() int
	// Mem returns the node's memory arena.
	Mem() *mem.Memory
	// Counters returns the node's statistics counters.
	Counters() *stats.Counters
	// Model returns the fabric cost model.
	Model() *Model
	// Injector returns the fabric's fault injector, or nil when fault
	// injection is off.
	Injector() *fault.Injector
	// Engine returns the node's execution engine. Protocol layers use it to
	// schedule continuations; they must not call Run on it.
	Engine() *simtime.Engine
	// WRID returns a fresh work-request ID, unique per HCA.
	WRID() uint64
	// ChargeCPU reserves the host CPU for d starting no earlier than now and
	// returns the time the work finishes.
	ChargeCPU(d simtime.Duration) simtime.Time
	// ChargeCPUNamed is ChargeCPU with an activity label for tracing.
	ChargeCPUNamed(d simtime.Duration, name string) simtime.Time
	// NewCQ creates a completion queue on this HCA.
	NewCQ() CQ
	// Connect creates a connected (RC) queue pair between this HCA and peer,
	// which must belong to the same backend fabric. Each side gets its own
	// QP whose send and receive completions are delivered to the given CQs.
	// A CQ may be shared among QPs.
	Connect(peer HCA, sendCQ, recvCQ, peerSendCQ, peerRecvCQ CQ) (QP, QP)
}
