package pario

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/mem"
)

// File views: datatype-described noncontiguity on the *file* side, the
// MPI-IO pattern (and Ching et al.'s insight the paper cites: shipping the
// datatype instead of a block list shrinks request messages). A view is a
// filetype tiled from a displacement; a rank reads and writes only the
// view's data bytes, which the canonical striped-file pattern uses to
// interleave ranks' stripes.
//
// In ModeRDMA the client drives the transfer directly: the RMA machinery
// walks the memory layout and the view's file layout together, so a strided
// view costs one gathered/scattered descriptor batch. In ModePack the
// *encoded filetype travels with the request* and the server packs/unpacks
// through the view — one small request regardless of how many file blocks
// the view touches.

// Pack-mode view request tags.
const (
	tagViewWriteReq = 1<<20 + 5
	tagViewWriteDat = 1<<20 + 6
	tagViewReadReq  = 1<<20 + 7
	tagViewReadDat  = 1<<20 + 8
)

// viewArgs validates a view access and returns the payload size.
func viewArgs(f *File, disp int64, ftCount int, filetype *datatype.Type,
	count int, memtype *datatype.Type) (int64, error) {
	n := memtype.Size() * int64(count)
	if fn := filetype.Size() * int64(ftCount); fn != n {
		return 0, fmt.Errorf("pario: view size %d != memory size %d", fn, n)
	}
	lo := disp + filetype.TrueLB()
	hi := disp + filetype.TrueLB() + filetype.TrueExtent() + int64(ftCount-1)*filetype.Extent()
	if lo < 0 || hi > f.size {
		return 0, fmt.Errorf("pario: view [%d,%d) outside file of %d bytes", lo, hi, f.size)
	}
	return n, nil
}

// WriteView writes the (buf, count, memtype) message into the file through
// ftCount instances of filetype tiled from byte displacement disp.
func (f *File) WriteView(disp int64, ftCount int, filetype *datatype.Type,
	buf mem.Addr, count int, memtype *datatype.Type) error {
	n, err := viewArgs(f, disp, ftCount, filetype, count, memtype)
	if err != nil {
		return err
	}
	if f.mode == ModeRDMA {
		if err := f.win.Put(buf, count, memtype, f.server, disp, ftCount, filetype); err != nil {
			return err
		}
		return f.win.Flush()
	}
	if err := f.sendViewReq(tagViewWriteReq, disp, ftCount, filetype, n); err != nil {
		return err
	}
	if err := f.comm.Send(buf, count, memtype, f.server, tagViewWriteDat); err != nil {
		return err
	}
	ack := f.comm.P().Mem().MustAlloc(8)
	defer f.comm.P().Mem().Free(ack)
	_, err = f.comm.Recv(ack, 1, datatype.Byte, f.server, tagViewWriteReq)
	return err
}

// ReadView reads ftCount instances of filetype tiled from disp into the
// (buf, count, memtype) message.
func (f *File) ReadView(disp int64, ftCount int, filetype *datatype.Type,
	buf mem.Addr, count int, memtype *datatype.Type) error {
	_, err := viewArgs(f, disp, ftCount, filetype, count, memtype)
	if err != nil {
		return err
	}
	if f.mode == ModeRDMA {
		if err := f.win.Get(buf, count, memtype, f.server, disp, ftCount, filetype); err != nil {
			return err
		}
		return f.win.Flush()
	}
	if err := f.sendViewReq(tagViewReadReq, disp, ftCount, filetype, 0); err != nil {
		return err
	}
	_, err = f.comm.Recv(buf, count, memtype, f.server, tagViewReadDat)
	return err
}

// sendViewReq ships {disp, ftCount, payload bytes, encoded filetype}.
func (f *File) sendViewReq(tag int, disp int64, ftCount int, filetype *datatype.Type, n int64) error {
	enc := datatype.Encode(filetype)
	req := make([]byte, 24+len(enc))
	le64(req[0:], uint64(disp))
	le64(req[8:], uint64(ftCount))
	le64(req[16:], uint64(n))
	copy(req[24:], enc)
	p := f.comm.P()
	buf := p.Mem().MustAlloc(int64(len(req)))
	defer p.Mem().Free(buf)
	copy(p.Mem().Bytes(buf, int64(len(req))), req)
	return f.comm.Send(buf, len(req), datatype.Byte, f.server, tag)
}

// serveViewWrite handles a pack-mode view write at the server: the payload
// is unpacked into the file *through the shipped filetype*.
func (f *File) serveViewWrite(src int, reqBytes int64) error {
	p := f.comm.P()
	buf := p.Mem().MustAlloc(reqBytes)
	defer p.Mem().Free(buf)
	if _, err := f.comm.Recv(buf, int(reqBytes), datatype.Byte, src, tagViewWriteReq); err != nil {
		return err
	}
	disp, ftCount, n, filetype, err := f.parseViewReq(buf, reqBytes)
	if err != nil {
		return err
	}
	// Receive the packed payload straight into the view: the receive's
	// datatype is the filetype positioned at the view displacement.
	if _, err := f.comm.Recv(f.base+mem.Addr(disp), ftCount, filetype, src, tagViewWriteDat); err != nil {
		return err
	}
	_ = n
	ack := p.Mem().MustAlloc(8)
	defer p.Mem().Free(ack)
	return f.comm.Send(ack, 1, datatype.Byte, src, tagViewWriteReq)
}

// serveViewRead handles a pack-mode view read: the server sends the view's
// data bytes, packed through the filetype.
func (f *File) serveViewRead(src int, reqBytes int64) error {
	p := f.comm.P()
	buf := p.Mem().MustAlloc(reqBytes)
	defer p.Mem().Free(buf)
	if _, err := f.comm.Recv(buf, int(reqBytes), datatype.Byte, src, tagViewReadReq); err != nil {
		return err
	}
	disp, ftCount, _, filetype, err := f.parseViewReq(buf, reqBytes)
	if err != nil {
		return err
	}
	return f.comm.Send(f.base+mem.Addr(disp), ftCount, filetype, src, tagViewReadDat)
}

func (f *File) parseViewReq(buf mem.Addr, reqBytes int64) (int64, int, int64, *datatype.Type, error) {
	b := f.comm.P().Mem().Bytes(buf, reqBytes)
	if len(b) < 24 {
		return 0, 0, 0, nil, fmt.Errorf("pario: short view request")
	}
	disp := int64(ld64(b[0:]))
	ftCount := int(ld64(b[8:]))
	n := int64(ld64(b[16:]))
	filetype, err := datatype.Decode(b[24:])
	if err != nil {
		return 0, 0, 0, nil, fmt.Errorf("pario: bad view filetype: %w", err)
	}
	if _, err := viewArgs(f, disp, ftCount, filetype, int(filetype.Size())*ftCount, datatype.Byte); err != nil {
		return 0, 0, 0, nil, err
	}
	return disp, ftCount, n, filetype, nil
}

func le64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func ld64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
