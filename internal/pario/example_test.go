package pario_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/pario"
)

// A client checkpoints a strided view of its memory into a server-hosted
// file with zero-copy RDMA gather writes, then restores it with scatter
// reads.
func Example() {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = 2
	cfg.MemBytes = 32 << 20
	cfg.Core.PoolSize = 2 << 20
	cfg.Core.Scheme = core.SchemeBCSPUP

	world, _ := mpi.NewWorld(cfg)
	// 64 blocks of 4 int32s, one block every 16 elements.
	view := datatype.Must(datatype.TypeVector(64, 4, 16, datatype.Int32))

	err := world.Run(func(p *mpi.Proc) error {
		f, err := pario.Open(p.World(), 0, 64<<10, pario.ModeRDMA)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			return f.Serve()
		}
		buf := p.Mem().MustAlloc(view.TrueExtent())
		p.Mem().Bytes(buf, 4)[0] = 0x5A
		if err := f.WriteAt(0, buf, 1, view); err != nil {
			return err
		}
		p.Mem().Bytes(buf, 4)[0] = 0 // lose the state...
		if err := f.ReadAt(0, buf, 1, view); err != nil {
			return err
		}
		fmt.Printf("restored first byte: %#x\n", p.Mem().Bytes(buf, 4)[0])
		return f.Close()
	})
	fmt.Println("err:", err)
	// Output:
	// restored first byte: 0x5a
	// err: <nil>
}
