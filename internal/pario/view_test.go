package pario

import (
	"fmt"
	"testing"

	"repro/internal/datatype"
	"repro/internal/mpi"
)

// The canonical striped-file pattern: each of two clients writes its
// interleaved stripes through a resized-vector file view; the whole file
// then alternates client stripes. Both modes.
func TestStripedFileView(t *testing.T) {
	for _, mode := range []Mode{ModePack, ModeRDMA} {
		t.Run(mode.String(), func(t *testing.T) {
			const (
				server    = 0
				stripe    = 1024 // bytes per stripe
				nStripes  = 8    // stripes per client
				nClients  = 2
				fileBytes = stripe * nStripes * nClients
			)
			// Client view: nStripes stripes, each a contiguous `stripe`
			// bytes, spaced nClients*stripe apart.
			base := datatype.Must(datatype.TypeVector(nStripes, stripe, nClients*stripe, datatype.Byte))
			view := datatype.Must(datatype.TypeResized(base, 0, int64(nClients*stripe*nStripes)))
			memType := datatype.Must(datatype.TypeContiguous(stripe*nStripes, datatype.Byte))

			w := testWorld(t, nClients+1)
			err := w.Run(func(p *mpi.Proc) error {
				f, err := Open(p.World(), server, fileBytes, mode)
				if err != nil {
					return err
				}
				if p.Rank() == server {
					return f.Serve()
				}
				client := p.Rank() - 1
				// Each client's stripes start client*stripe into the file.
				disp := int64(client) * stripe

				src := p.Mem().MustAlloc(stripe * nStripes)
				data := p.Mem().Bytes(src, stripe*nStripes)
				for i := range data {
					data[i] = byte(client*101 + i)
				}
				if err := f.WriteView(disp, 1, view, src, 1, memType); err != nil {
					return err
				}
				// Read the own view back.
				dst := p.Mem().MustAlloc(stripe * nStripes)
				if err := f.ReadView(disp, 1, view, dst, 1, memType); err != nil {
					return err
				}
				got := p.Mem().Bytes(dst, stripe*nStripes)
				for i := range got {
					if got[i] != byte(client*101+i) {
						return fmt.Errorf("client %d: view read corrupt at %d", client, i)
					}
				}
				// Client 0 additionally reads the WHOLE file contiguously
				// after client 1 signals its write finished (the server rank
				// is busy serving, so a world barrier would hang).
				tok := p.Mem().MustAlloc(8)
				if client == 1 {
					if err := p.World().Send(tok, 1, datatype.Byte, 1, 99); err != nil {
						return err
					}
				}
				if client == 0 {
					if _, err := p.World().Recv(tok, 1, datatype.Byte, 2, 99); err != nil {
						return err
					}
					whole := p.Mem().MustAlloc(fileBytes)
					all := datatype.Must(datatype.TypeContiguous(fileBytes, datatype.Byte))
					if err := f.ReadAt(0, whole, 1, all); err != nil {
						return err
					}
					fb := p.Mem().Bytes(whole, fileBytes)
					for s := 0; s < nStripes*nClients; s++ {
						owner := s % nClients
						idx := (s / nClients) * stripe // offset within owner's data
						for i := 0; i < stripe; i++ {
							want := byte(owner*101 + idx + i)
							if fb[s*stripe+i] != want {
								return fmt.Errorf("stripe %d byte %d: got %d want %d",
									s, i, fb[s*stripe+i], want)
							}
						}
					}
				}
				return f.Close()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestViewErrors(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(p *mpi.Proc) error {
		f, err := Open(p.World(), 0, 8192, ModeRDMA)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			return f.Serve()
		}
		buf := p.Mem().MustAlloc(4096)
		ct := datatype.Must(datatype.TypeContiguous(4096, datatype.Byte))
		half := datatype.Must(datatype.TypeContiguous(2048, datatype.Byte))
		// Size mismatch between view and memory.
		if err := f.WriteView(0, 1, half, buf, 1, ct); err == nil {
			return fmt.Errorf("size mismatch accepted")
		}
		// View spilling past the file end.
		if err := f.WriteView(8000, 1, ct, buf, 1, ct); err == nil {
			return fmt.Errorf("overflowing view accepted")
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// In pack mode the filetype must reach the server intact through the wire
// codec even for nested layouts.
func TestViewNestedFiletypePackMode(t *testing.T) {
	inner := datatype.Must(datatype.TypeVector(4, 2, 4, datatype.Int32))
	view := datatype.Must(datatype.TypeHvector(3, 1, 128, inner))
	n := view.Size() // 96 bytes
	memType := datatype.Must(datatype.TypeContiguous(int(n), datatype.Byte))
	w := testWorld(t, 2)
	err := w.Run(func(p *mpi.Proc) error {
		f, err := Open(p.World(), 0, 4096, ModePack)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			return f.Serve()
		}
		src := p.Mem().MustAlloc(n)
		data := p.Mem().Bytes(src, n)
		for i := range data {
			data[i] = byte(i + 7)
		}
		if err := f.WriteView(64, 1, view, src, 1, memType); err != nil {
			return err
		}
		dst := p.Mem().MustAlloc(n)
		if err := f.ReadView(64, 1, view, dst, 1, memType); err != nil {
			return err
		}
		got := p.Mem().Bytes(dst, n)
		for i := range got {
			if got[i] != byte(i+7) {
				return fmt.Errorf("nested view corrupt at %d", i)
			}
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
