// Package pario is a miniature parallel-I/O system over the simulated
// fabric: one rank serves a file held in its memory, and clients perform
// noncontiguous reads and writes described by MPI derived datatypes — the
// application domain the paper closes with ("techniques discussed in this
// paper can be applied to file and storage systems to support efficient
// noncontiguous I/O access") and the setting of its PVFS-over-InfiniBand
// companion work [31–33].
//
// Two access modes mirror the paper's comparison:
//
//   - ModePack: the client packs its noncontiguous buffer and ships
//     contiguous bytes through send/receive; the server copies them into the
//     file. Two copies per operation, like the Generic scheme.
//   - ModeRDMA: the file is exposed as an RMA window. Writes are RDMA
//     writes gathered straight from the client's registered user blocks into
//     the contiguous file region (RWG applied to I/O); reads are RDMA reads
//     scattered from the file into the client's blocks (the read-scatter
//     case of the paper's PVFS work). Zero copies on both ends.
package pario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/mpi"
)

// Mode selects the transfer strategy.
type Mode int

// Access modes.
const (
	ModePack Mode = iota
	ModeRDMA
)

func (m Mode) String() string {
	if m == ModePack {
		return "pack"
	}
	return "rdma"
}

// Message tags used by the pack-mode server protocol.
const (
	tagWriteReq = 1 << 20
	tagWriteDat = 1<<20 + 1
	tagReadReq  = 1<<20 + 2
	tagReadDat  = 1<<20 + 3
	tagShutdown = 1<<20 + 4
)

// File is a handle to a server-hosted file. Every rank of the communicator
// must call Open collectively; the rank equal to server hosts the bytes.
type File struct {
	comm   *mpi.Comm
	server int
	size   int64
	mode   Mode

	// The file storage, exposed as an RMA window (meaningful on the server;
	// other ranks expose a minimal dummy region as required by the
	// collective window creation).
	win  *mpi.Win
	base mem.Addr // server-local file base (server rank only)
}

// Open creates a file of size bytes hosted by rank server. Collective over
// the communicator.
func Open(c *mpi.Comm, server int, size int64, mode Mode) (*File, error) {
	if server < 0 || server >= c.Size() {
		return nil, fmt.Errorf("pario: server rank %d out of range", server)
	}
	if size <= 0 {
		return nil, fmt.Errorf("pario: file size %d", size)
	}
	f := &File{comm: c, server: server, size: size, mode: mode}
	span := int64(8)
	if c.Rank() == server {
		span = size
	}
	buf := c.P().Mem().MustAlloc(span)
	if c.Rank() == server {
		f.base = buf
	}
	win, err := c.WinCreate(buf, span)
	if err != nil {
		return nil, fmt.Errorf("pario: %w", err)
	}
	f.win = win
	return f, nil
}

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// Mode returns the access mode.
func (f *File) Mode() Mode { return f.mode }

func (f *File) checkRange(off, n int64) error {
	if off < 0 || off+n > f.size {
		return fmt.Errorf("pario: access [%d,+%d) outside file of %d bytes", off, n, f.size)
	}
	return nil
}

// WriteAt writes the (buf, count, dt) message to the contiguous file range
// starting at off. In ModeRDMA the data moves by gathered RDMA writes with
// no staging copies; in ModePack it is packed and shipped to the server.
func (f *File) WriteAt(off int64, buf mem.Addr, count int, dt *datatype.Type) error {
	n := dt.Size() * int64(count)
	if err := f.checkRange(off, n); err != nil {
		return err
	}
	if f.mode == ModeRDMA {
		ct := datatype.Must(datatype.TypeContiguous(int(n), datatype.Byte))
		if err := f.win.Put(buf, count, dt, f.server, off, 1, ct); err != nil {
			return err
		}
		return f.win.Flush()
	}
	// Pack mode: header then packed payload; wait for the ack.
	hdr := f.comm.P().Mem().MustAlloc(16)
	defer f.comm.P().Mem().Free(hdr)
	putU64(f.comm.P(), hdr, 0, uint64(off))
	putU64(f.comm.P(), hdr, 8, uint64(n))
	if err := f.comm.Send(hdr, 16, datatype.Byte, f.server, tagWriteReq); err != nil {
		return err
	}
	if err := f.comm.Send(buf, count, dt, f.server, tagWriteDat); err != nil {
		return err
	}
	ack := f.comm.P().Mem().MustAlloc(8)
	defer f.comm.P().Mem().Free(ack)
	_, err := f.comm.Recv(ack, 1, datatype.Byte, f.server, tagWriteReq)
	return err
}

// ReadAt reads the contiguous file range starting at off into the
// (buf, count, dt) message. In ModeRDMA the data moves by scattered RDMA
// reads straight into the user blocks.
func (f *File) ReadAt(off int64, buf mem.Addr, count int, dt *datatype.Type) error {
	n := dt.Size() * int64(count)
	if err := f.checkRange(off, n); err != nil {
		return err
	}
	if f.mode == ModeRDMA {
		ct := datatype.Must(datatype.TypeContiguous(int(n), datatype.Byte))
		if err := f.win.Get(buf, count, dt, f.server, off, 1, ct); err != nil {
			return err
		}
		return f.win.Flush()
	}
	hdr := f.comm.P().Mem().MustAlloc(16)
	defer f.comm.P().Mem().Free(hdr)
	putU64(f.comm.P(), hdr, 0, uint64(off))
	putU64(f.comm.P(), hdr, 8, uint64(n))
	if err := f.comm.Send(hdr, 16, datatype.Byte, f.server, tagReadReq); err != nil {
		return err
	}
	_, err := f.comm.Recv(buf, count, dt, f.server, tagReadDat)
	return err
}

// Serve runs the server loop on the hosting rank, answering pack-mode
// requests until every other rank has sent its shutdown notice (Close), and
// then tears down the server's side of the window. In ModeRDMA there is
// nothing to serve — clients access the window directly — but Serve still
// waits for the shutdown notices, so every rank runs exactly one of Serve
// (the host) or Close (the clients).
func (f *File) Serve() error {
	if f.comm.Rank() != f.server {
		return fmt.Errorf("pario: Serve on non-server rank %d", f.comm.Rank())
	}
	p := f.comm.P()
	hdr := p.Mem().MustAlloc(16)
	defer p.Mem().Free(hdr)
	remaining := f.comm.Size() - 1
	for remaining > 0 {
		st := f.comm.Probe(core.AnySource, core.AnyTag)
		// Status sources are world ranks; translate to this communicator.
		src := f.comm.CommRank(st.Source)
		switch st.Tag {
		case tagShutdown:
			if _, err := f.comm.Recv(hdr, 0, datatype.Byte, src, tagShutdown); err != nil {
				return err
			}
			remaining--
		case tagWriteReq:
			if _, err := f.comm.Recv(hdr, 16, datatype.Byte, src, tagWriteReq); err != nil {
				return err
			}
			off := int64(getU64(p, hdr, 0))
			n := int64(getU64(p, hdr, 8))
			if err := f.checkRange(off, n); err != nil {
				return err
			}
			dst := f.base + mem.Addr(off)
			ct := datatype.Must(datatype.TypeContiguous(int(n), datatype.Byte))
			if _, err := f.comm.Recv(dst, 1, ct, src, tagWriteDat); err != nil {
				return err
			}
			if err := f.comm.Send(hdr, 1, datatype.Byte, src, tagWriteReq); err != nil {
				return err
			}
		case tagReadReq:
			if _, err := f.comm.Recv(hdr, 16, datatype.Byte, src, tagReadReq); err != nil {
				return err
			}
			off := int64(getU64(p, hdr, 0))
			n := int64(getU64(p, hdr, 8))
			if err := f.checkRange(off, n); err != nil {
				return err
			}
			fsrc := f.base + mem.Addr(off)
			ct := datatype.Must(datatype.TypeContiguous(int(n), datatype.Byte))
			if err := f.comm.Send(fsrc, 1, ct, src, tagReadDat); err != nil {
				return err
			}
		case tagViewWriteReq:
			if err := f.serveViewWrite(src, st.Bytes); err != nil {
				return err
			}
		case tagViewReadReq:
			if err := f.serveViewRead(src, st.Bytes); err != nil {
				return err
			}
		default:
			return fmt.Errorf("pario: unexpected tag %d from %d", st.Tag, src)
		}
	}
	return f.win.Free()
}

// Close releases a client's handle, notifying the server; all ranks then
// synchronize through the window teardown. The server rank must not call
// Close — its Serve call performs the server-side teardown.
func (f *File) Close() error {
	if f.comm.Rank() == f.server {
		return fmt.Errorf("pario: Close on the server rank (Serve tears down the host side)")
	}
	tok := f.comm.P().Mem().MustAlloc(8)
	defer f.comm.P().Mem().Free(tok)
	if err := f.comm.Send(tok, 0, datatype.Byte, f.server, tagShutdown); err != nil {
		return err
	}
	return f.win.Free()
}

func putU64(p *mpi.Proc, a mem.Addr, off int, v uint64) {
	b := p.Mem().Bytes(a+mem.Addr(off), 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(p *mpi.Proc, a mem.Addr, off int) uint64 {
	b := p.Mem().Bytes(a+mem.Addr(off), 8)
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
