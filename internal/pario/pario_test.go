package pario

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/pack"
)

func testWorld(t *testing.T, n int) *mpi.World {
	t.Helper()
	cfg := mpi.DefaultConfig()
	cfg.Ranks = n
	cfg.MemBytes = 64 << 20
	cfg.Core.Scheme = core.SchemeBCSPUP
	cfg.Core.PoolSize = 2 << 20
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func allocFor(p *mpi.Proc, dt *datatype.Type, count int) mem.Addr {
	span := dt.TrueExtent() + int64(count-1)*dt.Extent()
	a := p.Mem().MustAlloc(span)
	return mem.Addr(int64(a) - dt.TrueLB())
}

func fillMsg(p *mpi.Proc, base mem.Addr, dt *datatype.Type, count int, seed byte) []byte {
	data := make([]byte, dt.Size()*int64(count))
	for i := range data {
		data[i] = seed ^ byte(i*11+2)
	}
	u := pack.NewUnpacker(p.Mem(), base, dt, count)
	if n, _ := u.UnpackFrom(data); n != int64(len(data)) {
		panic("short fill")
	}
	return data
}

func readMsg(p *mpi.Proc, base mem.Addr, dt *datatype.Type, count int) []byte {
	out := make([]byte, dt.Size()*int64(count))
	pk := pack.NewPacker(p.Mem(), base, dt, count)
	if n, _ := pk.PackTo(out); n != int64(len(out)) {
		panic("short read")
	}
	return out
}

// Every client writes a noncontiguous view to its own file region, then
// reads it back through a different noncontiguous layout; both modes.
func TestWriteReadRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModePack, ModeRDMA} {
		t.Run(mode.String(), func(t *testing.T) {
			const n = 4
			const server = 0
			wr := datatype.Must(datatype.TypeVector(64, 8, 16, datatype.Int32)) // 2 KB
			rd := datatype.Must(datatype.TypeVector(128, 4, 8, datatype.Int32)) // 2 KB
			w := testWorld(t, n)
			err := w.Run(func(p *mpi.Proc) error {
				f, err := Open(p.World(), server, 1<<20, mode)
				if err != nil {
					return err
				}
				if p.Rank() == server {
					return f.Serve()
				}
				off := int64(p.Rank()) * 4096
				src := allocFor(p, wr, 1)
				want := fillMsg(p, src, wr, 1, byte(p.Rank()*3+1))
				if err := f.WriteAt(off, src, 1, wr); err != nil {
					return err
				}
				dst := allocFor(p, rd, 1)
				if err := f.ReadAt(off, dst, 1, rd); err != nil {
					return err
				}
				got := readMsg(p, dst, rd, 1)
				for i := range want {
					if got[i] != want[i] {
						return fmt.Errorf("rank %d byte %d: got %d want %d",
							p.Rank(), i, got[i], want[i])
					}
				}
				return f.Close()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// RDMA mode must move data with zero copies on the server.
func TestRDMAModeZeroServerCopies(t *testing.T) {
	const server = 0
	dt := datatype.Must(datatype.TypeVector(256, 16, 32, datatype.Int32)) // 16 KB
	w := testWorld(t, 2)
	err := w.Run(func(p *mpi.Proc) error {
		f, err := Open(p.World(), server, 1<<20, ModeRDMA)
		if err != nil {
			return err
		}
		// Window setup's internal collectives involve tiny self-copies;
		// measure only the I/O itself.
		p.Endpoint().Counters().Reset()
		if p.Rank() == server {
			return f.Serve()
		}
		buf := allocFor(p, dt, 1)
		fillMsg(p, buf, dt, 1, 7)
		if err := f.WriteAt(0, buf, 1, dt); err != nil {
			return err
		}
		if err := f.ReadAt(0, buf, 1, dt); err != nil {
			return err
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := w.Endpoint(server).Counters()
	if sc.BytesPacked != 0 || sc.BytesUnpacked != 0 {
		t.Fatalf("server copied bytes in RDMA mode: packed=%d unpacked=%d",
			sc.BytesPacked, sc.BytesUnpacked)
	}
	cc := w.Endpoint(1).Counters()
	if cc.BytesPacked != 0 || cc.BytesUnpacked != 0 {
		t.Fatalf("client copied bytes in RDMA mode: packed=%d unpacked=%d",
			cc.BytesPacked, cc.BytesUnpacked)
	}
}

func TestBoundsChecked(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(p *mpi.Proc) error {
		f, err := Open(p.World(), 0, 4096, ModeRDMA)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			return f.Serve()
		}
		buf := p.Mem().MustAlloc(8192)
		ct := datatype.Must(datatype.TypeContiguous(8192, datatype.Byte))
		if err := f.WriteAt(0, buf, 1, ct); err == nil {
			return fmt.Errorf("oversized write accepted")
		}
		if err := f.ReadAt(-1, buf, 1, datatype.Byte); err == nil {
			return fmt.Errorf("negative offset accepted")
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	w := testWorld(t, 2)
	err := w.Run(func(p *mpi.Proc) error {
		if _, err := Open(p.World(), 5, 4096, ModePack); err == nil {
			return fmt.Errorf("bad server rank accepted")
		}
		if _, err := Open(p.World(), 0, 0, ModePack); err == nil {
			return fmt.Errorf("zero size accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Concurrent clients interleave pack-mode requests at the server.
func TestConcurrentClientsPackMode(t *testing.T) {
	const n = 5
	const server = 2
	w := testWorld(t, n)
	dt := datatype.Must(datatype.TypeContiguous(1024, datatype.Int32)) // 4 KB
	err := w.Run(func(p *mpi.Proc) error {
		f, err := Open(p.World(), server, 1<<20, ModePack)
		if err != nil {
			return err
		}
		if p.Rank() == server {
			return f.Serve()
		}
		for iter := 0; iter < 3; iter++ {
			off := int64(p.Rank())*8192 + int64(iter)*(1<<17)
			buf := allocFor(p, dt, 1)
			want := fillMsg(p, buf, dt, 1, byte(p.Rank()+iter))
			if err := f.WriteAt(off, buf, 1, dt); err != nil {
				return err
			}
			back := allocFor(p, dt, 1)
			if err := f.ReadAt(off, back, 1, dt); err != nil {
				return err
			}
			got := readMsg(p, back, dt, 1)
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("rank %d iter %d corrupt at %d", p.Rank(), iter, i)
				}
			}
		}
		return f.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
