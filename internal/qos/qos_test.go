package qos

import "testing"

func TestClassOf(t *testing.T) {
	p := DefaultPolicy()
	if got := p.ClassOf(1024); got != LaneLatency {
		t.Fatalf("1KiB class = %v, want latency", got)
	}
	if got := p.ClassOf(p.BulkThreshold); got != LaneBulk {
		t.Fatalf("threshold class = %v, want bulk", got)
	}
	var zero Policy
	if got := zero.ClassOf(1 << 30); got != LaneLatency {
		t.Fatalf("zero policy classified %v, want latency", got)
	}
}

func TestArbiterWindowAndFIFO(t *testing.T) {
	pol := Policy{DescWindow: 4, ByteWindow: 1 << 20}
	a := NewArbiter(pol)
	var order []int
	grant := func(id int) func() { return func() { order = append(order, id) } }

	// First bulk unit fills the window exactly.
	if deferred := a.Submit(1, LaneBulk, 4, 100, grant(0)); deferred {
		t.Fatal("first unit deferred with an empty window")
	}
	// Second and third bulk units must queue.
	if deferred := a.Submit(1, LaneBulk, 4, 100, grant(1)); !deferred {
		t.Fatal("second unit granted beyond the window")
	}
	if deferred := a.Submit(1, LaneBulk, 2, 100, grant(2)); !deferred {
		t.Fatal("third unit granted beyond the window")
	}
	// Latency bypasses the full window entirely.
	if deferred := a.Submit(1, LaneLatency, 1, 10, grant(3)); deferred {
		t.Fatal("latency unit deferred")
	}
	if got, _ := a.Outstanding(1); got != 5 {
		t.Fatalf("outstanding descs = %d, want 5 (bulk 4 + latency 1)", got)
	}
	if a.Queued(1) != 2 {
		t.Fatalf("queued = %d, want 2", a.Queued(1))
	}

	// Returning the latency credit alone leaves no room for unit 1.
	a.Release(1, 1, 10)
	if len(order) != 2 {
		t.Fatalf("granted %v before bulk credits returned", order)
	}
	// Returning the first bulk unit's credits admits unit 1 (FIFO), and
	// unit 2 stays queued: 4 in flight again.
	a.Release(1, 4, 100)
	if len(order) != 3 || order[2] != 1 {
		t.Fatalf("grant order = %v, want [0 3 1]", order)
	}
	a.Release(1, 4, 100)
	if len(order) != 4 || order[3] != 2 {
		t.Fatalf("grant order = %v, want [0 3 1 2]", order)
	}
	a.Release(1, 2, 100)
	if d, b := a.Outstanding(1); d != 0 || b != 0 {
		t.Fatalf("outstanding = (%d,%d) after full release", d, b)
	}
}

func TestArbiterOversizeUnitAdmitsWhenIdle(t *testing.T) {
	a := NewArbiter(Policy{DescWindow: 2, ByteWindow: 64})
	ran := false
	if deferred := a.Submit(0, LaneBulk, 10, 1<<20, func() { ran = true }); deferred || !ran {
		t.Fatal("oversize unit must be admitted into an empty window")
	}
	// While it is in flight, everything else queues.
	if deferred := a.Submit(0, LaneBulk, 1, 1, func() {}); !deferred {
		t.Fatal("unit granted while an oversize unit holds the window")
	}
}

func TestArbiterPerPeerIsolation(t *testing.T) {
	a := NewArbiter(Policy{DescWindow: 1})
	a.Submit(0, LaneBulk, 1, 0, func() {})
	granted := false
	if deferred := a.Submit(1, LaneBulk, 1, 0, func() { granted = true }); deferred || !granted {
		t.Fatal("peer 1 blocked by peer 0's window")
	}
	if a.QueuedTotal() != 0 {
		t.Fatalf("queued total = %d, want 0", a.QueuedTotal())
	}
}

func TestGateParkResumeFIFO(t *testing.T) {
	g := NewGate(Policy{MinFreeSlots: 2})
	free, active := 4, 1
	pr := func() Pressure { return Pressure{FreeSlots: free, ActiveOps: active} }

	var order []int
	run := func(id int) func() { return func() { order = append(order, id) } }

	if d := g.Admit(LaneBulk, pr, run(0)); d != Admit {
		t.Fatalf("healthy admit = %v", d)
	}
	free = 1 // pool tight now
	if d := g.Admit(LaneBulk, pr, run(1)); d != Park {
		t.Fatalf("tight admit = %v, want park", d)
	}
	if d := g.Admit(LaneBulk, pr, run(2)); d != Park {
		t.Fatalf("tight admit = %v, want park", d)
	}
	// Latency is never parked, even under pressure.
	if d := g.Admit(LaneLatency, pr, run(3)); d != Admit {
		t.Fatalf("latency admit = %v", d)
	}
	if g.Parked() != 2 {
		t.Fatalf("parked = %d, want 2", g.Parked())
	}
	g.Drain() // still tight: nothing moves
	if len(order) != 2 {
		t.Fatalf("drain resumed under pressure: %v", order)
	}
	free = 4
	g.Drain()
	if g.Parked() != 0 || len(order) != 4 || order[2] != 1 || order[3] != 2 {
		t.Fatalf("resume order = %v, want [0 3 1 2]", order)
	}
}

func TestGateProgressGuarantee(t *testing.T) {
	g := NewGate(Policy{MinFreeSlots: 8})
	// Pool permanently tight, but nothing active: the transfer must be
	// admitted anyway, or the endpoint deadlocks.
	ran := false
	d := g.Admit(LaneBulk, func() Pressure { return Pressure{FreeSlots: 0, ActiveOps: 0} }, func() { ran = true })
	if d != Admit || !ran {
		t.Fatalf("idle endpoint parked a transfer (decision %v)", d)
	}

	// Same via Drain: parked while others were active, drained when the
	// last active op finished without releasing pool slots.
	active := 1
	pr := func() Pressure { return Pressure{FreeSlots: 0, ActiveOps: active} }
	ran = false
	if d := g.Admit(LaneBulk, pr, func() { ran = true }); d != Park {
		t.Fatalf("admit = %v, want park", d)
	}
	active = 0
	g.Drain()
	if !ran {
		t.Fatal("drain left the only remaining transfer parked")
	}
}

func TestGateReject(t *testing.T) {
	g := NewGate(Policy{MinFreeSlots: 1, MaxParked: 1})
	pr := func() Pressure { return Pressure{FreeSlots: 0, ActiveOps: 1} }
	if d := g.Admit(LaneBulk, pr, func() {}); d != Park {
		t.Fatalf("first = %v, want park", d)
	}
	if d := g.Admit(LaneBulk, pr, func() {}); d != Reject {
		t.Fatalf("second = %v, want reject", d)
	}
}

func TestGateRegistrationPressure(t *testing.T) {
	g := NewGate(Policy{MaxRegisteredPages: 100})
	pages := int64(200)
	pr := func() Pressure { return Pressure{FreeSlots: 1 << 20, RegPages: pages, ActiveOps: 1} }
	if d := g.Admit(LaneBulk, pr, func() {}); d != Park {
		t.Fatalf("over reg budget = %v, want park", d)
	}
	pages = 50
	g.Drain()
	if g.Parked() != 0 {
		t.Fatal("drain ignored released registration pressure")
	}
}
