// Package qos is the service-mode layer of the stack: traffic classes,
// priority lanes with per-peer flow-control windows at the descriptor
// boundary, and admission control for whole transfers.
//
// The paper tunes each rendezvous scheme for one message at a time; under a
// service-shaped load — thousands of concurrent messages, mixed small
// latency-sensitive and bulk traffic — the bulk schemes become a starvation
// hazard: one Multi-W transfer can legally occupy the send queue with
// hundreds of RDMA descriptors posted in a single doorbell, and every eager
// send behind it waits. This package provides the two mechanisms that
// prevent that, both modeled on InfiniBand's own service levels and
// virtual-lane arbitration:
//
//   - Arbiter: per-peer flow-control windows over bulk data descriptors.
//     Latency-lane work (eager payloads, control messages, small rendezvous
//     data) always posts immediately; bulk-lane descriptor batches are
//     admitted only while the peer's in-flight window has room, and queue
//     FIFO otherwise. Credits return as completions arrive, draining the
//     queue. Splitting a bulk message's doorbells at the window bound means
//     an eager message never waits behind more than one window's worth of
//     bulk bytes.
//
//   - Gate: admission control over whole transfers. When staging-pool or
//     registration budgets are tight, new bulk transfers park (FIFO) until
//     pressure releases, or are rejected outright once the parking lot is
//     full. Latency-class transfers are never parked; a parked transfer is
//     force-admitted when nothing else is active, so admission can never
//     deadlock the endpoint.
//
// Both structures are deliberately single-threaded: every call happens in
// the owning endpoint's simulation context (its engine goroutine), exactly
// like the rest of the protocol state, so they need no locks and stay
// deterministic on the simulator backend.
package qos

import "errors"

// Lane classifies traffic for the priority scheduler, mirroring an
// InfiniBand service level: the latency lane is forwarded immediately, the
// bulk lane is credit-gated.
type Lane uint8

// The two lanes.
const (
	// LaneLatency carries latency-sensitive work: eager payloads, protocol
	// control messages, and rendezvous transfers below Policy.BulkThreshold.
	LaneLatency Lane = iota
	// LaneBulk carries bulk data movement: rendezvous transfers at or above
	// Policy.BulkThreshold.
	LaneBulk
)

// String names the lane for traces and metrics keys.
func (l Lane) String() string {
	if l == LaneBulk {
		return "bulk"
	}
	return "latency"
}

// ErrRejected reports that admission control refused a transfer because the
// parking lot was already full (Policy.MaxParked).
var ErrRejected = errors.New("qos: transfer rejected by admission control")

// Policy holds the service-mode knobs. The zero value disables every
// mechanism it configures; DefaultPolicy returns working service defaults.
type Policy struct {
	// BulkThreshold is the smallest message size (bytes) classified as bulk
	// traffic. Messages below it ride the latency lane.
	BulkThreshold int64

	// DescWindow bounds the in-flight bulk data descriptors per peer. Bulk
	// doorbells are split at this bound, so a latency-lane post never waits
	// behind more than DescWindow bulk descriptors. <= 0 disables the
	// descriptor window.
	DescWindow int

	// ByteWindow bounds the in-flight bulk payload bytes per peer.
	// <= 0 disables the byte window.
	ByteWindow int64

	// MinFreeSlots parks new bulk transfers while the relevant staging pool
	// has fewer free slots than this (and other transfers are active to
	// release them). <= 0 disables the free-slot pressure test.
	MinFreeSlots int

	// MaxRegisteredPages parks new bulk transfers while the endpoint's
	// currently registered page count exceeds this budget. <= 0 disables
	// the registration pressure test.
	MaxRegisteredPages int64

	// MaxParked bounds the admission parking lot: a bulk transfer arriving
	// with MaxParked transfers already waiting is rejected (ErrRejected)
	// instead of parked. <= 0 means park without bound (never reject).
	MaxParked int
}

// DefaultPolicy returns service-mode defaults: 64 KiB bulk threshold, a
// 4-descriptor / 256 KiB per-peer window, pool- and registration-pressure
// parking enabled, and an unbounded parking lot.
func DefaultPolicy() Policy {
	return Policy{
		BulkThreshold:      64 << 10,
		DescWindow:         4,
		ByteWindow:         256 << 10,
		MinFreeSlots:       1,
		MaxRegisteredPages: 0,
		MaxParked:          0,
	}
}

// ClassOf maps a message size to its lane.
func (p Policy) ClassOf(bytes int64) Lane {
	if p.BulkThreshold > 0 && bytes >= p.BulkThreshold {
		return LaneBulk
	}
	return LaneLatency
}

// unit is one queued bulk post: a descriptor batch waiting for window room.
type unit struct {
	descs int
	bytes int64
	grant func()
}

// unitQueue is a FIFO of queued bulk units with an amortized-O(1) pop:
// the head index advances on pop and the backing array compacts lazily, so
// a warm queue cycles through retained capacity without allocating (the
// `w.q = w.q[1:]` idiom it replaces leaked capacity on every pop).
type unitQueue struct {
	s    []unit
	head int
}

func (q *unitQueue) len() int { return len(q.s) - q.head }

func (q *unitQueue) push(u unit) { q.s = append(q.s, u) }

func (q *unitQueue) peek() *unit { return &q.s[q.head] }

func (q *unitQueue) pop() unit {
	u := q.s[q.head]
	q.s[q.head] = unit{}
	q.head++
	if q.head == len(q.s) {
		q.s = q.s[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 >= len(q.s) {
		n := copy(q.s, q.s[q.head:])
		q.s = q.s[:n]
		q.head = 0
	}
	return u
}

// peerWindow tracks one peer's in-flight charge and its FIFO bulk queue.
type peerWindow struct {
	descs int   // charged in-flight descriptors
	bytes int64 // charged in-flight payload bytes
	q     unitQueue
}

// Arbiter schedules data-descriptor posting across the two lanes with
// per-peer flow-control windows. Latency submissions are charged and
// granted immediately; bulk submissions wait for window room, FIFO per
// peer. Single-threaded: all calls must come from the owning endpoint's
// simulation context.
type Arbiter struct {
	pol      Policy
	peers    []*peerWindow // indexed by peer rank, grown on demand
	draining bool
}

// NewArbiter returns an arbiter enforcing p's windows.
func NewArbiter(p Policy) *Arbiter {
	return &Arbiter{pol: p}
}

func (a *Arbiter) peer(id int) *peerWindow {
	for id >= len(a.peers) {
		a.peers = append(a.peers, nil)
	}
	w := a.peers[id]
	if w == nil {
		w = &peerWindow{}
		a.peers[id] = w
	}
	return w
}

// fits reports whether a unit of (descs, bytes) may be charged against w
// now. An empty window always admits, so an oversize unit cannot wedge.
func (a *Arbiter) fits(w *peerWindow, descs int, bytes int64) bool {
	if w.descs == 0 && w.bytes == 0 {
		return true
	}
	if a.pol.DescWindow > 0 && w.descs+descs > a.pol.DescWindow {
		return false
	}
	if a.pol.ByteWindow > 0 && w.bytes+bytes > a.pol.ByteWindow {
		return false
	}
	return true
}

// Submit offers one post unit (a descriptor batch of descs descriptors
// carrying bytes payload bytes) for peer. The unit is charged against the
// peer's window and grant runs — immediately for the latency lane and for
// bulk units that fit, later (FIFO, as credits return) otherwise. Submit
// reports whether the unit was deferred. The caller must return the unit's
// charge with Release as its descriptors resolve.
func (a *Arbiter) Submit(peer int, lane Lane, descs int, bytes int64, grant func()) bool {
	w := a.peer(peer)
	if lane == LaneLatency || (w.q.len() == 0 && a.fits(w, descs, bytes)) {
		w.descs += descs
		w.bytes += bytes
		grant()
		return false
	}
	w.q.push(unit{descs: descs, bytes: bytes, grant: grant})
	return true
}

// Release returns charge for descs descriptors and bytes payload bytes of
// peer's window (credit return), then drains the peer's bulk queue while
// the head unit fits.
func (a *Arbiter) Release(peer int, descs int, bytes int64) {
	w := a.peer(peer)
	w.descs -= descs
	w.bytes -= bytes
	if w.descs < 0 || w.bytes < 0 {
		panic("qos: window release without matching charge")
	}
	a.drain(w)
}

// drain grants queued units in FIFO order while the window admits them.
// A grant may recursively submit or release; the draining guard keeps one
// outer loop in charge so FIFO order holds.
func (a *Arbiter) drain(w *peerWindow) {
	if a.draining {
		return
	}
	a.draining = true
	defer func() { a.draining = false }()
	for w.q.len() > 0 && a.fits(w, w.q.peek().descs, w.q.peek().bytes) {
		u := w.q.pop()
		w.descs += u.descs
		w.bytes += u.bytes
		u.grant()
	}
}

// Outstanding reports the peer's charged in-flight descriptors and bytes.
func (a *Arbiter) Outstanding(peer int) (descs int, bytes int64) {
	if peer < 0 || peer >= len(a.peers) || a.peers[peer] == nil {
		return 0, 0
	}
	w := a.peers[peer]
	return w.descs, w.bytes
}

// Queued reports the peer's deferred bulk units.
func (a *Arbiter) Queued(peer int) int {
	if peer < 0 || peer >= len(a.peers) || a.peers[peer] == nil {
		return 0
	}
	return a.peers[peer].q.len()
}

// QueuedTotal reports deferred bulk units across all peers.
func (a *Arbiter) QueuedTotal() int {
	n := 0
	for _, w := range a.peers {
		if w != nil {
			n += w.q.len()
		}
	}
	return n
}
