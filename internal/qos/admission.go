package qos

// Pressure is the resource snapshot an admission decision reads. The owning
// endpoint supplies it through a closure so parked transfers re-evaluate
// live state when credits return.
type Pressure struct {
	// FreeSlots is the free slot count of the staging pool the transfer
	// would draw from.
	FreeSlots int
	// PoolWaiters counts transfers already parked inside that pool waiting
	// for slots.
	PoolWaiters int
	// RegPages is the endpoint's currently registered page count.
	RegPages int64
	// ActiveOps counts unfinished rendezvous operations on the endpoint,
	// excluding parked ones. When it reaches zero nothing can ever release
	// pressure, so the gate force-admits (the progress guarantee).
	ActiveOps int
}

// Decision is the outcome of an admission request.
type Decision int

// The admission outcomes.
const (
	// Admit: the transfer proceeds now (run was called).
	Admit Decision = iota
	// Park: the transfer waits FIFO; run fires from Drain once pressure
	// releases.
	Park
	// Reject: the parking lot is full; run will never fire and the caller
	// must fail the transfer (ErrRejected).
	Reject
)

// String names the decision for traces and errors.
func (d Decision) String() string {
	switch d {
	case Park:
		return "park"
	case Reject:
		return "reject"
	}
	return "admit"
}

// parked is one waiting transfer: its live pressure source and its
// continuation.
type parked struct {
	pr  func() Pressure
	run func()
}

// Gate is the admission controller: transfers whose class is bulk park
// (FIFO) while resource budgets are tight and resume as pressure releases.
// Single-threaded, like Arbiter. The parking lot is a head-indexed FIFO
// with lazy compaction (like Arbiter's unitQueue), so a warm park/drain
// cycle reuses retained capacity instead of allocating per transfer.
type Gate struct {
	pol      Policy
	q        []parked
	head     int
	draining bool
}

// NewGate returns a gate enforcing p's budgets.
func NewGate(p Policy) *Gate {
	return &Gate{pol: p}
}

// pressured reports whether pr's budgets are tight enough to park new bulk
// work.
func (g *Gate) pressured(pr Pressure) bool {
	if g.pol.MinFreeSlots > 0 && pr.FreeSlots < g.pol.MinFreeSlots {
		return true
	}
	if g.pol.MaxRegisteredPages > 0 && pr.RegPages > g.pol.MaxRegisteredPages {
		return true
	}
	return pr.PoolWaiters > 0
}

// Admit asks to start a transfer of the given lane. Latency-lane transfers
// always run immediately. A bulk transfer runs immediately when budgets are
// healthy (or nothing else is active to ever release them — the progress
// guarantee), parks FIFO when they are tight, and is rejected when
// MaxParked transfers are already waiting. run is called at most once:
// synchronously on Admit, from a later Drain on Park, never on Reject.
func (g *Gate) Admit(lane Lane, pr func() Pressure, run func()) Decision {
	if lane == LaneLatency {
		run()
		return Admit
	}
	p := pr()
	if g.Parked() == 0 && (!g.pressured(p) || p.ActiveOps <= 0) {
		run()
		return Admit
	}
	if g.pol.MaxParked > 0 && g.Parked() >= g.pol.MaxParked {
		return Reject
	}
	g.q = append(g.q, parked{pr: pr, run: run})
	return Park
}

// Drain resumes parked transfers in FIFO order while their budgets allow
// (or nothing else is active). Call it wherever pressure releases — pool
// slot returns, deregistrations, transfer completion. Reentrant calls
// (a resumed transfer releasing more pressure) fold into the outer loop.
func (g *Gate) Drain() {
	if g.draining {
		return
	}
	g.draining = true
	defer func() { g.draining = false }()
	for g.Parked() > 0 {
		p := g.q[g.head].pr()
		if g.pressured(p) && p.ActiveOps > 0 {
			return
		}
		e := g.q[g.head]
		g.q[g.head] = parked{}
		g.head++
		if g.head == len(g.q) {
			g.q = g.q[:0]
			g.head = 0
		} else if g.head > 32 && g.head*2 >= len(g.q) {
			n := copy(g.q, g.q[g.head:])
			g.q = g.q[:n]
			g.head = 0
		}
		e.run()
	}
}

// Parked reports the number of transfers currently waiting for admission.
func (g *Gate) Parked() int { return len(g.q) - g.head }
