package core

import (
	"testing"

	"repro/internal/datatype"
)

// TestProgramCacheReuse checks the compiled-program memoization: the second
// programFor call for the same (type, count) must return the identical
// cached object, and a different count must compile separately.
func TestProgramCacheReuse(t *testing.T) {
	w := newTestWorld(t, 1, DefaultConfig(), 48<<20)
	ep := w.eps[0]
	v := datatype.Must(datatype.TypeVector(16, 2, 8, datatype.Int32))

	p1 := ep.programFor(v, 4)
	if p1 == nil {
		t.Fatal("programFor returned nil with the compiled path enabled")
	}
	if p2 := ep.programFor(v, 4); p2 != p1 {
		t.Fatal("second programFor call did not hit the cache")
	}
	if p3 := ep.programFor(v, 5); p3 == p1 {
		t.Fatal("different count returned the same program")
	}
}

// TestProgramCacheVersionInvalidation checks the index-reuse hazard the
// (idx, version) key exists for: after FreeType, a new type that reuses the
// freed index must not resurrect the old type's cached program.
func TestProgramCacheVersionInvalidation(t *testing.T) {
	w := newTestWorld(t, 1, DefaultConfig(), 48<<20)
	ep := w.eps[0]

	a := datatype.Must(datatype.TypeVector(16, 2, 8, datatype.Int32))
	idxA := ep.CommitType(a)
	pa := ep.programFor(a, 2)
	ep.FreeType(a)

	b := datatype.Must(datatype.TypeVector(8, 4, 16, datatype.Int32))
	idxB := ep.CommitType(b)
	if idxB != idxA {
		t.Fatalf("expected index reuse, got %d then %d", idxA, idxB)
	}
	pb := ep.programFor(b, 2)
	if pb == pa {
		t.Fatal("freed index resurrected the stale program")
	}
	if pb.Type() != b || pb.Bytes() != b.Size()*2 {
		t.Fatalf("program after reuse compiled for the wrong type: %s", pb)
	}
}

// TestProgramForInterpreted checks the escape hatch: with InterpretedPack
// set, programFor yields nil and walkerFor falls back to the cursor.
func TestProgramForInterpreted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.InterpretedPack = true
	w := newTestWorld(t, 1, cfg, 48<<20)
	ep := w.eps[0]
	v := datatype.Must(datatype.TypeVector(16, 2, 8, datatype.Int32))
	if p := ep.programFor(v, 1); p != nil {
		t.Fatalf("InterpretedPack still compiled: %s", p)
	}
	if _, ok := ep.walkerFor(v, 1).(*datatype.Cursor); !ok {
		t.Fatal("walkerFor did not fall back to the interpreted cursor")
	}
}

// TestLayoutSummaryPaths checks both summary paths: canonical programs
// answer exactly; generic shapes get an explicitly extrapolated sample that
// matches the true run count for a self-similar layout.
func TestLayoutSummaryPaths(t *testing.T) {
	w := newTestWorld(t, 1, DefaultConfig(), 48<<20)
	ep := w.eps[0]

	v := datatype.Must(datatype.TypeVector(64, 2, 8, datatype.Int32))
	runs, avg := ep.layoutSummary(v, 1)
	if runs != 64 || avg != 8 {
		t.Fatalf("canonical summary = (%d, %d), want (64, 8)", runs, avg)
	}

	// A shape past the materialization cap: uniform 4-byte runs, so the
	// extrapolated estimate must land exactly on the true count.
	idx := datatype.Must(datatype.TypeIndexed([]int{1, 1, 1}, []int{0, 3, 7}, datatype.Int32))
	big := datatype.Must(datatype.TypeVector(128, 1, 2, idx))
	prog := ep.programFor(big, 200)
	if prog.Kind() != datatype.ProgGeneric {
		t.Fatalf("expected generic program, got %s", prog)
	}
	stats := datatype.LayoutStats(big, 200, 0)
	runs, avg = ep.layoutSummary(big, 200)
	// A handful of runs coalesce at instance seams, so the sampled estimate
	// is not exact — but it must be within 1% of the true count (the old
	// code reported the truncated sample, 4096, as if it were the layout).
	if diff := runs - stats.Runs; diff < -stats.Runs/100 || diff > stats.Runs/100 {
		t.Fatalf("extrapolated summary runs = %d, true %d", runs, stats.Runs)
	}
	if avg < int64(stats.AvgRun)-1 || avg > int64(stats.AvgRun)+1 {
		t.Fatalf("extrapolated avg = %d, true %.1f", avg, stats.AvgRun)
	}
}
