package core

import (
	"fmt"

	"repro/internal/datatype"
	"repro/internal/ib"
	"repro/internal/mem"
	"repro/internal/pack"
)

// chunkWRs consumes want bytes from a message cursor and builds RDMA
// descriptors (writes or reads) against consecutive remote memory starting
// at rAddr. The local side is the scatter/gather list (keys resolved from
// localRefs); descriptors split at the adapter's SGE limit.
func (ep *Endpoint) chunkWRs(op ib.Opcode, cur *datatype.Cursor, base mem.Addr,
	localRefs []regRef, want int64, rAddr mem.Addr, rKey uint32) []ib.SendWR {

	maxSGE := ep.model.MaxSGE
	var wrs []ib.SendWR
	var sgl []ib.SGE
	var sglBytes int64
	flush := func() {
		if len(sgl) == 0 {
			return
		}
		wrs = append(wrs, ib.SendWR{Op: op, SGL: sgl, RemoteAddr: rAddr, RKey: rKey})
		rAddr += mem.Addr(sglBytes)
		sgl = nil
		sglBytes = 0
	}
	for want > 0 {
		off, n, ok := cur.Next(want)
		if !ok {
			break
		}
		addr := mem.Addr(int64(base) + off)
		i := findRegion(localRefs, addr, n)
		if i < 0 {
			panic(fmt.Sprintf("core rank %d: no region covers [%#x,+%d)", ep.rank, addr, n))
		}
		sgl = append(sgl, ib.SGE{Addr: addr, Len: n, Key: localRefs[i].key})
		sglBytes += n
		want -= n
		if len(sgl) == maxSGE {
			flush()
		}
	}
	flush()
	return wrs
}

// postWRs assigns WRIDs, installs a completion callback counting down
// op.wrsLeft (finishing the send on zero), and posts the descriptors —
// as one list post or individually.
func (ep *Endpoint) postWRs(op *sendOp, dst int, wrs []ib.SendWR, list bool, onAll func()) {
	op.wrsLeft += len(wrs)
	for i := range wrs {
		wrs[i].WRID = ep.hca.WRID()
		ep.onSendCQE[wrs[i].WRID] = func(e ib.CQE) {
			if e.Err != nil {
				panic(fmt.Sprintf("core rank %d: RDMA error: %v", ep.rank, e.Err))
			}
			op.wrsLeft--
			if op.wrsLeft == 0 && onAll != nil {
				onAll()
			}
		}
	}
	var err error
	if list && len(wrs) > 1 {
		err = ep.qps[dst].PostSendList(wrs)
	} else {
		for i := range wrs {
			if err = ep.qps[dst].PostSend(wrs[i]); err != nil {
				break
			}
		}
	}
	if err != nil {
		panic(fmt.Sprintf("core rank %d: post failed: %v", ep.rank, err))
	}
}

// sendStagedData moves the message into the receiver's staged destinations
// (whole-message staging for Generic, pipelined segments for BC-SPUP, gather
// descriptors for RWG-UP — and gather for any scheme when the send side is
// contiguous, since MVAPICH never stages contiguous data).
func (ep *Endpoint) sendStagedData(op *sendOp, scheme Scheme, segSize int64, refs []segRef) {
	if segSize <= 0 || segSize > op.eff {
		segSize = op.eff
	}
	nSegs := int((op.eff + segSize - 1) / segSize)
	if nSegs != len(refs) {
		panic("core: CTS segment count mismatch")
	}

	gather := scheme == SchemeRWGUP || op.sContig
	if gather && !op.registered {
		var err error
		op.regions, op.refs, err = ep.registerUserMessage(op.buf, op.dt, op.count)
		if err != nil {
			op.req.complete(err)
			delete(ep.sendOps, op.id)
			return
		}
		op.registered = true
	}

	switch {
	case gather:
		// RWG-UP: RDMA-write-with-gather straight from the user blocks into
		// each unpack segment; the last descriptor of each segment carries
		// the immediate that drives the receiver's segment unpack.
		cur := datatype.NewCursor(op.dt, op.count)
		left := op.eff
		for k := 0; k < nSegs; k++ {
			n := segSize
			if n > left {
				n = left
			}
			left -= n
			wrs := ep.chunkWRs(ib.OpRDMAWrite, cur, op.buf, op.refs, n, refs[k].addr, refs[k].key)
			last := len(wrs) - 1
			wrs[last].Op = ib.OpRDMAWriteImm
			wrs[last].Imm = op.id
			ep.ctr.SegmentsPipelined++
			ep.postWRs(op, op.dst, wrs, false, func() { ep.finishSend(op) })
		}

	case scheme == SchemeGeneric:
		// Basic pack/unpack: allocate the pack buffer, pack the whole
		// message, one RDMA write, unpack on the far side — fully serialized.
		s, err := ep.acquireStaging(op.eff)
		if err != nil {
			op.req.complete(err)
			delete(ep.sendOps, op.id)
			return
		}
		op.staging = segRes{seg: s, bytes: op.eff}
		packer := pack.NewPacker(ep.memory, op.buf, op.dt, op.count)
		dst := ep.memory.Bytes(s.addr, op.eff)
		n, runs := packer.PackTo(dst)
		if n != op.eff {
			panic("core: generic pack shortfall")
		}
		ep.ctr.BytesPacked += n
		ep.hca.ChargeCPUNamed(ep.cfg.packCost(ep.model, n, runs), "pack")
		wr := ib.SendWR{
			Op:         ib.OpRDMAWriteImm,
			SGL:        []ib.SGE{{Addr: s.addr, Len: op.eff, Key: s.key}},
			RemoteAddr: refs[0].addr, RKey: refs[0].key, Imm: op.id,
		}
		ep.postWRs(op, op.dst, []ib.SendWR{wr}, false, func() {
			ep.releaseSeg(ep.packPool, op.staging.seg)
			ep.finishSend(op)
		})

	default: // SchemeBCSPUP
		// Buffer-centric segment pack: pack each segment into a
		// pre-registered pool slot and write it out; the NIC drains segment
		// k while the CPU packs segment k+1. When the pack pool runs dry the
		// sender stalls until a slot's send completes (Section 4.3.3).
		packer := pack.NewPacker(ep.memory, op.buf, op.dt, op.count)
		op.wrsLeft = nSegs
		if !ep.packPool.enabled {
			// Worst case (Figure 14): one on-the-fly pack buffer of the real
			// data size — the same registration cost Generic pays — carved
			// into segments so the pipeline still runs.
			ep.ctr.PoolExhausted++
			s, err := ep.acquireStaging(op.eff)
			if err != nil {
				op.req.complete(err)
				delete(ep.sendOps, op.id)
				return
			}
			op.staging = segRes{seg: s, bytes: op.eff}
			left := op.eff
			for k := 0; k < nSegs; k++ {
				n := segSize
				if n > left {
					n = left
				}
				left -= n
				addr := s.addr + mem.Addr(int64(k)*segSize)
				got, runs := packer.PackTo(ep.memory.Bytes(addr, n))
				if got != n {
					panic("core: segment pack shortfall")
				}
				ep.ctr.BytesPacked += n
				ep.ctr.SegmentsPipelined++
				ep.hca.ChargeCPUNamed(ep.cfg.packCost(ep.model, n, runs), "pack")
				wr := ib.SendWR{
					Op:         ib.OpRDMAWriteImm,
					SGL:        []ib.SGE{{Addr: addr, Len: n, Key: s.key}},
					RemoteAddr: refs[k].addr, RKey: refs[k].key, Imm: op.id,
				}
				wr.WRID = ep.hca.WRID()
				ep.onSendCQE[wr.WRID] = func(e ib.CQE) {
					if e.Err != nil {
						panic(e.Err)
					}
					op.wrsLeft--
					if op.wrsLeft == 0 {
						ep.releaseSeg(ep.packPool, op.staging.seg)
						ep.finishSend(op)
					}
				}
				if err := ep.qps[op.dst].PostSend(wr); err != nil {
					panic(err)
				}
			}
			return
		}
		left := op.eff
		k := 0
		var step func()
		step = func() {
			if k == nSegs {
				return
			}
			idx := k
			k++
			n := segSize
			if n > left {
				n = left
			}
			left -= n
			ep.withSeg(ep.packPool, func(s seg) {
				dst := ep.memory.Bytes(s.addr, n)
				got, runs := packer.PackTo(dst)
				if got != n {
					panic("core: segment pack shortfall")
				}
				ep.ctr.BytesPacked += n
				ep.ctr.SegmentsPipelined++
				ep.hca.ChargeCPUNamed(ep.cfg.packCost(ep.model, n, runs), "pack")
				wr := ib.SendWR{
					Op:         ib.OpRDMAWriteImm,
					SGL:        []ib.SGE{{Addr: s.addr, Len: n, Key: s.key}},
					RemoteAddr: refs[idx].addr, RKey: refs[idx].key, Imm: op.id,
				}
				wr.WRID = ep.hca.WRID()
				ep.onSendCQE[wr.WRID] = func(e ib.CQE) {
					if e.Err != nil {
						panic(e.Err)
					}
					ep.releaseSeg(ep.packPool, s)
					op.wrsLeft--
					if op.wrsLeft == 0 {
						ep.finishSend(op)
					}
				}
				if err := ep.qps[op.dst].PostSend(wr); err != nil {
					panic(err)
				}
				step()
			})
		}
		step()
	}
}

// sendMultiWData implements the Multi-W zero-copy transfer: walk the local
// and remote layouts together, emitting one RDMA write per remote contiguous
// run (gathering across local runs), immediate data on the final descriptor.
func (ep *Endpoint) sendMultiWData(op *sendOp, rBase mem.Addr, rType *datatype.Type, rCount int, rRefs []regRef) {
	if !op.registered {
		var err error
		op.regions, op.refs, err = ep.registerUserMessage(op.buf, op.dt, op.count)
		if err != nil {
			op.req.complete(err)
			delete(ep.sendOps, op.id)
			return
		}
		op.registered = true
	}
	sc := datatype.NewCursor(op.dt, op.count)
	rc := datatype.NewCursor(rType, rCount)
	remaining := op.eff
	var wrs []ib.SendWR
	for remaining > 0 {
		rOff, rLen, ok := rc.Next(remaining)
		if !ok {
			panic("core: receiver layout smaller than effective size")
		}
		rAddr := mem.Addr(int64(rBase) + rOff)
		i := findRegion(rRefs, rAddr, rLen)
		if i < 0 {
			panic(fmt.Sprintf("core rank %d: no remote region covers [%#x,+%d)", ep.rank, rAddr, rLen))
		}
		wrs = append(wrs, ep.chunkWRs(ib.OpRDMAWrite, sc, op.buf, op.refs, rLen, rAddr, rRefs[i].key)...)
		remaining -= rLen
	}
	last := len(wrs) - 1
	wrs[last].Op = ib.OpRDMAWriteImm
	wrs[last].Imm = op.id
	ep.chargeTypeProc(len(wrs))
	ep.postWRs(op, op.dst, wrs, ep.cfg.ListPost, func() { ep.finishSend(op) })
}

// sendPRRSData implements the sender half of Pack with RDMA Read Scatter:
// pack each segment into a pool slot (or, for a contiguous sender, expose
// user-buffer ranges directly) and announce it; the receiver pulls the data
// with scatter reads and finally acknowledges with Done.
func (ep *Endpoint) sendPRRSData(op *sendOp, segSize int64) {
	if segSize <= 0 || segSize > op.eff {
		segSize = op.eff
	}
	nSegs := int((op.eff + segSize - 1) / segSize)

	announce := func(k int, addr mem.Addr, key uint32, n int64) {
		var w ctrlWriter
		w.u8(kindSegReady)
		w.u32(op.id)
		w.u64(uint64(addr))
		w.u32(key)
		w.i64(n)
		ep.sendCtrl(op.dst, w.buf, nil)
	}

	if op.sContig {
		// Zero-copy P-RRS: the receiver reads straight from the user buffer.
		if !op.registered {
			var err error
			op.regions, op.refs, err = ep.registerUserMessage(op.buf, op.dt, op.count)
			if err != nil {
				op.req.complete(err)
				delete(ep.sendOps, op.id)
				return
			}
			op.registered = true
		}
		base := mem.Addr(int64(op.buf) + op.dt.TrueLB())
		left := op.eff
		for k := 0; k < nSegs; k++ {
			n := segSize
			if n > left {
				n = left
			}
			left -= n
			announce(k, base+mem.Addr(int64(k)*segSize), op.refs[0].key, n)
		}
		return
	}

	// P-RRS pack segments stay occupied until the receiver's Done.
	packer := pack.NewPacker(ep.memory, op.buf, op.dt, op.count)
	packSeg := func(k int, s seg) {
		n := segSize
		if rest := op.eff - int64(k)*segSize; n > rest {
			n = rest
		}
		dst := ep.memory.Bytes(s.addr, n)
		got, runs := packer.PackTo(dst)
		if got != n {
			panic("core: P-RRS pack shortfall")
		}
		ep.ctr.BytesPacked += n
		ep.ctr.SegmentsPipelined++
		ep.hca.ChargeCPUNamed(ep.cfg.packCost(ep.model, n, runs), "pack")
		announce(k, s.addr, s.key, n)
	}
	if !ep.packPool.enabled || nSegs > ep.packPool.slots {
		// Worst case or message larger than the pool: one on-the-fly pack
		// buffer of the real data size, carved into segment views.
		ep.ctr.PoolExhausted++
		s, err := ep.acquireStaging(op.eff)
		if err != nil {
			op.req.complete(err)
			delete(ep.sendOps, op.id)
			return
		}
		op.staging = segRes{seg: s, bytes: op.eff}
		for k := 0; k < nSegs; k++ {
			packSeg(k, seg{addr: s.addr + mem.Addr(int64(k)*segSize), key: s.key})
		}
		return
	}
	// The slots stay held until the receiver's Done, so take the whole
	// message's worth atomically: partial grants across concurrent ops
	// would deadlock with every op stuck one slot short.
	ep.packPool.whenAvailable(nSegs, func() {
		for k := 0; k < nSegs; k++ {
			s, ok := ep.packPool.tryAcquire()
			if !ok {
				panic("core: pack pool promised slots it does not have")
			}
			op.segs = append(op.segs, segRes{seg: s, bytes: 0})
			packSeg(k, s)
		}
	})
}

// handleSegReady is the receiver half of P-RRS: scatter-read the announced
// segment into the user blocks.
func (ep *Endpoint) handleSegReady(src int, r *ctrlReader) {
	id := r.u32()
	addr := mem.Addr(r.u64())
	key := r.u32()
	n := r.i64()
	if r.err != nil {
		panic(r.err)
	}
	op, ok := ep.recvOps[opKey{src: src, op: id}]
	if !ok {
		panic(fmt.Sprintf("core rank %d: SegReady for unknown op %d", ep.rank, id))
	}
	wrs := ep.chunkWRs(ib.OpRDMARead, op.readCur, op.req.buf, op.refs, n, addr, key)
	ep.ctr.SegmentsPipelined++
	for i := range wrs {
		wrs[i].WRID = ep.hca.WRID()
		bytes := int64(0)
		for _, s := range wrs[i].SGL {
			bytes += s.Len
		}
		b := bytes
		ep.onSendCQE[wrs[i].WRID] = func(e ib.CQE) {
			if e.Err != nil {
				panic(e.Err)
			}
			op.bytesRead += b
			if op.bytesRead == op.eff {
				var w ctrlWriter
				w.u8(kindDone)
				w.u32(id)
				ep.sendCtrl(src, w.buf, nil)
				ep.finishRecv(op)
			}
		}
		if err := ep.qps[src].PostSend(wrs[i]); err != nil {
			panic(err)
		}
	}
}

// handleDone is the sender half of P-RRS teardown: the receiver has read
// everything, so staging slots (or user registrations) can be released.
func (ep *Endpoint) handleDone(src int, r *ctrlReader) {
	id := r.u32()
	if r.err != nil {
		panic(r.err)
	}
	op, ok := ep.sendOps[id]
	if !ok {
		panic(fmt.Sprintf("core rank %d: Done for unknown op %d", ep.rank, id))
	}
	for _, sr := range op.segs {
		ep.releaseSeg(ep.packPool, sr.seg)
	}
	op.segs = nil
	if op.staging.seg.addr != 0 {
		ep.releaseSeg(ep.packPool, op.staging.seg)
		op.staging = segRes{}
	}
	ep.finishSend(op)
}
