package core

import (
	"sync/atomic"

	"fmt"

	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/pack"
	"repro/internal/verbs"
)

// chunkWRs consumes want bytes from a message cursor and builds RDMA
// descriptors (writes or reads) against consecutive remote memory starting
// at rAddr, appending them into the op-owned arena set and returning the
// window of descriptors this call added. The local side is the
// scatter/gather list (keys resolved from localRefs); descriptors split at
// the adapter's SGE limit, each sealed as a three-index sub-slice of the
// arena's SGE store so later appends can never grow into it. When the arena
// backing grows, earlier windows keep pointing at the old backing array —
// those values are never mutated again, so in-flight descriptors stay
// valid. A cursor that runs out before want bytes are consumed is a
// layout/size mismatch and is reported as an error rather than silently
// truncating the transfer.
func (ep *Endpoint) chunkWRs(set *wrSet, opc verbs.Opcode, cur datatype.RunWalker, base mem.Addr,
	localRefs []regRef, want int64, rAddr mem.Addr, rKey uint32) ([]verbs.SendWR, error) {

	maxSGE := ep.model.MaxSGE
	wrStart := len(set.wrs)
	sgeStart := len(set.sge)
	var sglBytes int64
	flush := func() {
		if len(set.sge) == sgeStart {
			return
		}
		sgl := set.sge[sgeStart:len(set.sge):len(set.sge)]
		set.wrs = append(set.wrs, verbs.SendWR{Op: opc, SGL: sgl, RemoteAddr: rAddr, RKey: rKey})
		rAddr += mem.Addr(sglBytes)
		sgeStart = len(set.sge)
		sglBytes = 0
	}
	for want > 0 {
		off, n, ok := cur.Next(want)
		if !ok {
			return nil, fmt.Errorf("core rank %d: layout exhausted with %d bytes unconsumed (layout/size mismatch)",
				ep.rank, want)
		}
		addr := mem.Addr(int64(base) + off)
		i := findRegion(localRefs, addr, n)
		if i < 0 {
			panic(fmt.Sprintf("core rank %d: no region covers [%#x,+%d)", ep.rank, addr, n))
		}
		set.sge = append(set.sge, verbs.SGE{Addr: addr, Len: n, Key: localRefs[i].key})
		sglBytes += n
		want -= n
		if len(set.sge)-sgeStart == maxSGE {
			flush()
		}
	}
	flush()
	return set.wrs[wrStart:], nil
}

// chunkBatches splits a descriptor list at the adapter's per-doorbell batch
// limit, appending the batch windows to out (reusing its capacity). The
// limit is distinct from MaxSGE — MaxSGE bounds one descriptor's gather
// list, the batch limit bounds how many descriptors one PostSendList call
// (one doorbell) may carry. limit <= 0 means unlimited.
func chunkBatches(wrs []verbs.SendWR, limit int, out [][]verbs.SendWR) [][]verbs.SendWR {
	if limit <= 0 || len(wrs) <= limit {
		return append(out, wrs)
	}
	for len(wrs) > limit {
		out = append(out, wrs[:limit])
		wrs = wrs[limit:]
	}
	return append(out, wrs)
}

// postWRs posts descriptors for op, counting them in op.wrsLeft and running
// onAll once the op's whole descriptor population has drained. onAll only
// fires after donePosting(op) sets the allPosted guard, so a fast segment's
// completions can never finish the op while later segments are still being
// posted. Post failures and error completions abort the op instead of
// panicking; transient faults are retried.
func (ep *Endpoint) postWRs(op *sendOp, dst int, wrs []verbs.SendWR, list bool, onAll func()) {
	if onAll != nil {
		op.onWRsDone = onAll
	}
	advance := func() {
		if op.allPosted && op.wrsLeft == 0 && op.onWRsDone != nil {
			fn := op.onWRsDone
			op.onWRsDone = nil
			fn()
		}
	}
	lane := ep.laneFor(op.eff)
	if list && len(wrs) > 1 && !ep.faultMode() {
		op.wrsLeft += len(wrs)
		for i := range wrs {
			wrs[i].WRID = ep.hca.WRID()
			wrs[i].Lane = uint8(lane)
			n := wrPayload(&wrs[i])
			ep.onSendCQE[wrs[i].WRID] = func(e verbs.CQE) {
				ep.laneRelease(dst, 1, n)
				ep.sendWRResolved(op, e.Err, advance)
			}
		}
		// Bulk doorbells split at the lane window, not just the adapter
		// limit, so each batch is one window-sized unit for the arbiter.
		// The batch scratch is swapped out for the loop: submitLane grants
		// can run synchronously and an abort inside one can reenter
		// postWRs (abortSend → qosDrain → a parked transfer), which would
		// otherwise clobber the shared backing mid-iteration.
		scratch := ep.batchScratch
		ep.batchScratch = nil
		batches := chunkBatches(wrs, ep.laneChunkLimit(lane), scratch[:0])
		for _, batch := range batches {
			batch := batch
			var batchBytes int64
			for i := range batch {
				batchBytes += wrPayload(&batch[i])
			}
			ep.submitLane(dst, lane, len(batch), batchBytes, func() {
				if op.failed {
					// Aborted while the batch waited for window room: the
					// descriptors never reach the NIC, but their charge and
					// wrsLeft accounting must still resolve.
					for i := range batch {
						delete(ep.onSendCQE, batch[i].WRID)
					}
					ep.laneRelease(dst, len(batch), batchBytes)
					for range batch {
						ep.sendWRResolved(op, errOpAborted, advance)
					}
					return
				}
				if err := ep.qps[dst].PostSendList(batch); err != nil {
					// This batch never reached the NIC. Later batches clean
					// themselves up through the op.failed path above when
					// their grants fire.
					for i := range batch {
						delete(ep.onSendCQE, batch[i].WRID)
					}
					ep.laneRelease(dst, len(batch), batchBytes)
					op.wrsLeft -= len(batch)
					ep.abortSend(op, err)
					return
				}
				ep.observeBatch(len(batch))
			})
		}
		for i := range batches {
			batches[i] = nil
		}
		ep.batchScratch = batches[:0]
		return
	}
	cancelled := func() bool { return op.failed }
	for i := range wrs {
		wr := wrs[i]
		wr.Lane = uint8(lane)
		n := wrPayload(&wr)
		op.wrsLeft++
		ep.submitLane(dst, lane, 1, n, func() {
			if op.failed {
				ep.laneRelease(dst, 1, n)
				ep.sendWRResolved(op, errOpAborted, advance)
				return
			}
			ep.postRetry(dst, wr, cancelled, func(err error) {
				ep.laneRelease(dst, 1, n)
				ep.sendWRResolved(op, err, advance)
			})
		})
	}
}

// postGroupsChained posts descriptor groups strictly sequentially: group k+1
// starts only after every descriptor of group k — including its immediate —
// has completed. The fault-mode replacement for pipelined group posting:
// retries would otherwise let a later segment's immediate overtake an
// earlier segment's data, breaking the receiver's arrival-order unpack
// indexing. The cost is the pipelining the fault-free path enjoys.
func (ep *Endpoint) postGroupsChained(op *sendOp, groups [][]verbs.SendWR, onAll func()) {
	k := 0
	var next func()
	next = func() {
		if op.failed {
			return
		}
		if k == len(groups) {
			onAll()
			return
		}
		wrs := groups[k]
		k++
		atomic.AddInt64(&ep.ctr.SegmentsPipelined, 1)
		ep.postGroupFenced(op, wrs, next)
	}
	next()
}

// postGroupFenced posts one group's descriptors with retries. When a group
// carries its immediate across several descriptors, the immediate moves to a
// zero-length fence write posted only after every data descriptor completes,
// so a retried descriptor can never let the immediate announce data that has
// not landed. then runs after the whole group (fence included) completes.
func (ep *Endpoint) postGroupFenced(op *sendOp, wrs []verbs.SendWR, then func()) {
	cancelled := func() bool { return op.failed }
	last := len(wrs) - 1
	var fence *verbs.SendWR
	if last > 0 && wrs[last].Op == verbs.OpRDMAWriteImm {
		f := verbs.SendWR{Op: verbs.OpRDMAWriteImm, RemoteAddr: wrs[last].RemoteAddr,
			RKey: wrs[last].RKey, Imm: wrs[last].Imm}
		fence = &f
		wrs[last].Op = verbs.OpRDMAWrite
	}
	dataDone := func() {
		if fence == nil {
			then()
			return
		}
		op.wrsLeft++
		ep.postRetry(op.dst, *fence, cancelled, func(err error) {
			ep.sendWRResolved(op, err, then)
		})
	}
	pending := len(wrs)
	op.wrsLeft += len(wrs)
	for i := range wrs {
		wr := wrs[i]
		ep.postRetry(op.dst, wr, cancelled, func(err error) {
			ep.sendWRResolved(op, err, func() {
				pending--
				if pending == 0 {
					dataDone()
				}
			})
		})
	}
}

// withUserRegistration ensures the op's user buffer is registered, then runs
// fn. Registration failures abort the op; an op failed during registration
// backoff (a peer abort notice can arrive in the gap) releases the fresh
// registrations instead of leaking them. The op is pinned across the
// registration callback so an abort in the gap cannot recycle it while the
// callback still references its buffers.
func (ep *Endpoint) withUserRegistration(op *sendOp, fn func()) {
	if op.registered {
		fn()
		return
	}
	ep.pinSend(op)
	ep.registerUserMessage(op.buf, op.dt, op.count, op.regions[:0], op.refs[:0],
		func(regions []*mem.Region, refs []regRef, err error) {
			defer ep.unpinSend(op)
			if err != nil {
				ep.abortSend(op, err)
				return
			}
			if op.failed {
				ep.releaseUserRegions(regions)
				return
			}
			op.regions, op.refs = regions, refs
			op.registered = true
			fn()
		})
}

// sendStagedData moves the message into the receiver's staged destinations
// (whole-message staging for Generic, pipelined segments for BC-SPUP, gather
// descriptors for RWG-UP — and gather for any scheme when the send side is
// contiguous, since MVAPICH never stages contiguous data).
func (ep *Endpoint) sendStagedData(op *sendOp, scheme Scheme, segSize int64, refs []segRef) {
	if segSize <= 0 || segSize > op.eff {
		segSize = op.eff
	}
	nSegs := int((op.eff + segSize - 1) / segSize)
	if nSegs != len(refs) {
		panic("core: CTS segment count mismatch")
	}

	if scheme == SchemeRWGUP || op.sContig {
		ep.withUserRegistration(op, func() { ep.sendGatherData(op, segSize, nSegs, refs) })
		return
	}
	if scheme == SchemeGeneric {
		ep.sendGenericData(op, refs)
		return
	}
	ep.sendBCSPUPData(op, segSize, nSegs, refs)
}

// sendGatherData is the RWG-UP data movement: RDMA-write-with-gather straight
// from the user blocks into each unpack segment, the last descriptor of each
// segment carrying the immediate that drives the receiver's segment unpack.
// Descriptor groups for every segment are built before any is posted, so the
// shared completion countdown can never transiently hit zero between
// segments.
func (ep *Endpoint) sendGatherData(op *sendOp, segSize int64, nSegs int, refs []segRef) {
	cur := ep.walkerFor(op.dt, op.count)
	left := op.eff
	groups := op.groups[:0]
	for k := 0; k < nSegs; k++ {
		n := segSize
		if n > left {
			n = left
		}
		left -= n
		wrs, err := ep.chunkWRs(&op.wrs, verbs.OpRDMAWrite, cur, op.buf, op.refs, n, refs[k].addr, refs[k].key)
		if err != nil {
			ep.abortSend(op, err)
			return
		}
		last := len(wrs) - 1
		wrs[last].Op = verbs.OpRDMAWriteImm
		wrs[last].Imm = op.id
		groups = append(groups, wrs)
	}
	op.groups = groups
	if ep.faultMode() {
		ep.postGroupsChained(op, groups, func() { ep.finishSend(op) })
		return
	}
	for _, wrs := range groups {
		atomic.AddInt64(&ep.ctr.SegmentsPipelined, 1)
		ep.postWRs(op, op.dst, wrs, false, func() { ep.finishSend(op) })
	}
	ep.donePosting(op)
}

// sendGenericData is the basic pack/unpack path: allocate the pack buffer,
// pack the whole message, one RDMA write, unpack on the far side — fully
// serialized.
func (ep *Endpoint) sendGenericData(op *sendOp, refs []segRef) {
	ep.pinSend(op)
	ep.acquireStaging(op.eff, func(s seg, err error) {
		defer ep.unpinSend(op)
		if err != nil {
			ep.abortSend(op, err)
			return
		}
		if op.failed {
			ep.releaseSeg(ep.packPool, s)
			return
		}
		op.staging = segRes{seg: s, bytes: op.eff, held: true}
		packer := ep.newParallelPacker(op.buf, op.dt, op.count)
		dst := ep.memory.Bytes(s.addr, op.eff)
		st := packer.Pack(dst)
		if st.Bytes != op.eff {
			panic("core: generic pack shortfall")
		}
		atomic.AddInt64(&ep.ctr.BytesPacked, st.Bytes)
		ep.chargeParPack(st, "pack")
		wrs := op.wrs.one(verbs.OpRDMAWriteImm,
			verbs.SGE{Addr: s.addr, Len: op.eff, Key: s.key},
			refs[0].addr, refs[0].key, op.id)
		ep.postWRs(op, op.dst, wrs, false, func() {
			ep.releaseSeg(ep.packPool, op.staging.seg)
			op.staging = segRes{}
			ep.finishSend(op)
		})
		ep.donePosting(op)
	})
}

// sendBCSPUPData is the buffer-centric segment pack: pack each segment into
// a pre-registered pool slot and write it out; the NIC drains segment k
// while the CPU packs segment k+1. When the pack pool runs dry the sender
// stalls until a slot's send completes (Section 4.3.3). In fault mode,
// segments go out one at a time so retries cannot reorder arrivals.
func (ep *Endpoint) sendBCSPUPData(op *sendOp, segSize int64, nSegs int, refs []segRef) {
	packer := ep.newParallelPacker(op.buf, op.dt, op.count)
	segBytes := func(k int) int64 {
		n := segSize
		if rest := op.eff - int64(k)*segSize; n > rest {
			n = rest
		}
		return n
	}

	if !ep.packPool.enabled {
		// Worst case (Figure 14): one on-the-fly pack buffer of the real data
		// size — the same registration cost Generic pays — carved into
		// segments so the pipeline still runs.
		atomic.AddInt64(&ep.ctr.PoolDisabled, 1)
		ep.pinSend(op)
		ep.acquireStaging(op.eff, func(s seg, err error) {
			defer ep.unpinSend(op)
			if err != nil {
				ep.abortSend(op, err)
				return
			}
			if op.failed {
				ep.releaseSeg(ep.packPool, s)
				return
			}
			op.staging = segRes{seg: s, bytes: op.eff, held: true}
			buildSeg := func(k int) []verbs.SendWR {
				n := segBytes(k)
				addr := s.addr + mem.Addr(int64(k)*segSize)
				st := packer.Pack(ep.memory.Bytes(addr, n))
				if st.Bytes != n {
					panic("core: segment pack shortfall")
				}
				atomic.AddInt64(&ep.ctr.BytesPacked, n)
				atomic.AddInt64(&ep.ctr.SegmentsPipelined, 1)
				ep.chargeParPack(st, "pack")
				return op.wrs.one(verbs.OpRDMAWriteImm,
					verbs.SGE{Addr: addr, Len: n, Key: s.key},
					refs[k].addr, refs[k].key, op.id)
			}
			onAll := func() {
				ep.releaseSeg(ep.packPool, op.staging.seg)
				op.staging = segRes{}
				ep.finishSend(op)
			}
			if ep.faultMode() {
				k := 0
				var next func()
				next = func() {
					if op.failed {
						return
					}
					if k == nSegs {
						onAll()
						return
					}
					w := buildSeg(k)
					k++
					op.wrsLeft++
					ep.postRetry(op.dst, w[0], func() bool { return op.failed }, func(err error) {
						ep.sendWRResolved(op, err, next)
					})
				}
				next()
				return
			}
			for k := 0; k < nSegs; k++ {
				ep.postWRs(op, op.dst, buildSeg(k), false, onAll)
			}
			ep.donePosting(op)
		})
		return
	}

	if !ep.faultMode() && ep.cfg.postBatchLimit(ep.model) > 1 {
		ep.sendBCSPUPBatched(op, packer, segSize, nSegs, refs)
		return
	}

	k := 0
	var step func()
	step = func() {
		if op.failed || k == nSegs {
			return
		}
		idx := k
		k++
		n := segBytes(idx)
		ep.pinSend(op)
		ep.withSeg(ep.packPool, segSize, func(s seg, err error) {
			defer ep.unpinSend(op)
			if err != nil {
				ep.abortSend(op, err)
				return
			}
			if op.failed {
				ep.releaseSeg(ep.packPool, s)
				return
			}
			dst := ep.memory.Bytes(s.addr, n)
			st := packer.Pack(dst)
			if st.Bytes != n {
				panic("core: segment pack shortfall")
			}
			atomic.AddInt64(&ep.ctr.BytesPacked, n)
			atomic.AddInt64(&ep.ctr.SegmentsPipelined, 1)
			ep.chargeParPack(st, "pack")
			lane := ep.laneFor(op.eff)
			wr := verbs.SendWR{
				Op:         verbs.OpRDMAWriteImm,
				SGL:        op.wrs.sgl1(verbs.SGE{Addr: s.addr, Len: n, Key: s.key}),
				RemoteAddr: refs[idx].addr, RKey: refs[idx].key, Imm: op.id,
				Lane: uint8(lane),
			}
			op.wrsLeft++
			ep.mark("seg-post", "segment", op.id)
			resolve := func(err error) {
				// The slot is released at final resolution either way: on
				// success the data has left it, on abort the descriptor no
				// longer references it.
				ep.releaseSeg(ep.packPool, s)
				ep.mark("seg-complete", "segment", op.id)
				ep.sendWRResolved(op, err, func() {
					if ep.faultMode() {
						step()
					}
					if op.allPosted && op.wrsLeft == 0 {
						ep.finishSend(op)
					}
				})
			}
			ep.submitLane(op.dst, lane, 1, n, func() {
				if op.failed {
					ep.laneRelease(op.dst, 1, n)
					resolve(errOpAborted)
					return
				}
				ep.postRetry(op.dst, wr, func() bool { return op.failed }, func(err error) {
					ep.laneRelease(op.dst, 1, n)
					resolve(err)
				})
			})
			if idx == nSegs-1 {
				op.allPosted = true
			}
			if !ep.faultMode() {
				step()
			}
		})
	}
	step()
}

// sendBCSPUPBatched is the doorbell-batched BC-SPUP pipeline: acquire up to
// PostBatch pool slots at once, pack them (each segment one parallel pack
// step), and ring a single doorbell — one PostSendList — for the whole
// batch. The NIC drains batch k while the CPU packs batch k+1, and each
// completion returns its own slot, so a dry pool wakes in slot units rather
// than batch units. Fault mode never reaches this path: retries must not
// reorder segment arrivals, so the serial chained pipeline handles injection
// runs.
func (ep *Endpoint) sendBCSPUPBatched(op *sendOp, packer *pack.ParallelPacker, segSize int64, nSegs int, refs []segRef) {
	c := ep.packPool.classFor(segSize)
	batch := ep.cfg.postBatchLimit(ep.model)
	if max := ep.packPool.slotsFor(c); batch > max {
		batch = max
	}
	if batch < 1 {
		batch = 1
	}
	segBytes := func(k int) int64 {
		n := segSize
		if rest := op.eff - int64(k)*segSize; n > rest {
			n = rest
		}
		return n
	}
	k := 0
	var step func()
	step = func() {
		if op.failed || k == nSegs {
			return
		}
		b := batch
		if rest := nSegs - k; b > rest {
			b = rest
		}
		ep.pinSend(op)
		ep.packPool.whenAvailable(b, c, func() {
			defer ep.unpinSend(op)
			if op.failed {
				return
			}
			start := k
			k += b
			// Descriptors build into the op arena; the seg scratch is safe to
			// reuse per batch because each completion closure captures its
			// slot by value before the next batch is built.
			wrStart := len(op.wrs.wrs)
			segs := op.segScratch[:0]
			for i := 0; i < b; i++ {
				s, ok := ep.packPool.tryAcquire(c)
				if !ok {
					panic("core: pack pool promised slots it does not have")
				}
				segs = append(segs, s)
				idx := start + i
				n := segBytes(idx)
				st := packer.Pack(ep.memory.Bytes(s.addr, n))
				if st.Bytes != n {
					panic("core: segment pack shortfall")
				}
				atomic.AddInt64(&ep.ctr.BytesPacked, n)
				atomic.AddInt64(&ep.ctr.SegmentsPipelined, 1)
				ep.chargeParPack(st, "pack")
				op.wrs.wrs = append(op.wrs.wrs, verbs.SendWR{
					Op:         verbs.OpRDMAWriteImm,
					SGL:        op.wrs.sgl1(verbs.SGE{Addr: s.addr, Len: n, Key: s.key}),
					RemoteAddr: refs[idx].addr, RKey: refs[idx].key, Imm: op.id,
				})
				ep.mark("seg-post", "segment", op.id)
			}
			op.segScratch = segs
			wrs := op.wrs.wrs[wrStart:]
			op.wrsLeft += b
			lane := ep.laneFor(op.eff)
			var batchBytes int64
			for i := range wrs {
				wrs[i].WRID = ep.hca.WRID()
				wrs[i].Lane = uint8(lane)
				n := wrs[i].SGL[0].Len
				batchBytes += n
				s := segs[i]
				ep.onSendCQE[wrs[i].WRID] = func(e verbs.CQE) {
					// The slot is released at resolution either way: on
					// success the data has left it, on abort the descriptor
					// no longer references it.
					ep.releaseSeg(ep.packPool, s)
					ep.laneRelease(op.dst, 1, n)
					ep.mark("seg-complete", "segment", op.id)
					ep.sendWRResolved(op, e.Err, func() {
						if op.allPosted && op.wrsLeft == 0 {
							ep.finishSend(op)
						}
					})
				}
			}
			// The doorbell itself is one lane unit: bulk batches wait for
			// window room while the packed slots stay charged to this op.
			ep.submitLane(op.dst, lane, b, batchBytes, func() {
				if op.failed {
					// Aborted while waiting for window room: slots and
					// charge return, the descriptors never post.
					for i := range wrs {
						delete(ep.onSendCQE, wrs[i].WRID)
						ep.releaseSeg(ep.packPool, segs[i])
					}
					ep.laneRelease(op.dst, b, batchBytes)
					op.wrsLeft -= b
					if op.wrsLeft == 0 {
						ep.finalizeSendAbort(op)
					}
					return
				}
				if err := ep.qps[op.dst].PostSendList(wrs); err != nil {
					// The whole doorbell was rejected: nothing reached the
					// NIC, so the batch's slots go straight back.
					for i := range wrs {
						delete(ep.onSendCQE, wrs[i].WRID)
						ep.releaseSeg(ep.packPool, segs[i])
					}
					ep.laneRelease(op.dst, b, batchBytes)
					op.wrsLeft -= b
					ep.abortSend(op, err)
					return
				}
				ep.observeBatch(len(wrs))
				if k == nSegs {
					op.allPosted = true
				}
				step()
			})
		})
	}
	step()
}

// sendMultiWData implements the Multi-W zero-copy transfer: walk the local
// and remote layouts together, emitting one RDMA write per remote contiguous
// run (gathering across local runs), immediate data on the final descriptor.
func (ep *Endpoint) sendMultiWData(op *sendOp, rBase mem.Addr, rType *datatype.Type, rCount int, rRefs []regRef) {
	ep.withUserRegistration(op, func() {
		sc := ep.walkerFor(op.dt, op.count)
		rc := ep.walkerFor(rType, rCount)
		remaining := op.eff
		// Successive chunkWRs calls append into the same arena, so the flat
		// window over everything built here is just the arena tail.
		wrStart := len(op.wrs.wrs)
		for remaining > 0 {
			rOff, rLen, ok := rc.Next(remaining)
			if !ok {
				ep.abortSend(op, fmt.Errorf("core rank %d: receiver layout smaller than effective size (%d bytes unconsumed)",
					ep.rank, remaining))
				return
			}
			rAddr := mem.Addr(int64(rBase) + rOff)
			i := findRegion(rRefs, rAddr, rLen)
			if i < 0 {
				panic(fmt.Sprintf("core rank %d: no remote region covers [%#x,+%d)", ep.rank, rAddr, rLen))
			}
			if _, err := ep.chunkWRs(&op.wrs, verbs.OpRDMAWrite, sc, op.buf, op.refs, rLen, rAddr, rRefs[i].key); err != nil {
				ep.abortSend(op, err)
				return
			}
			remaining -= rLen
		}
		wrs := op.wrs.wrs[wrStart:]
		last := len(wrs) - 1
		wrs[last].Op = verbs.OpRDMAWriteImm
		wrs[last].Imm = op.id
		ep.chargeTypeProc(len(wrs))
		if ep.faultMode() {
			op.groups = append(op.groups[:0], wrs)
			ep.postGroupsChained(op, op.groups, func() { ep.finishSend(op) })
			return
		}
		ep.postWRs(op, op.dst, wrs, ep.cfg.ListPost, func() { ep.finishSend(op) })
		ep.donePosting(op)
	})
}

// sendPRRSData implements the sender half of Pack with RDMA Read Scatter:
// pack each segment into a pool slot (or, for a contiguous sender, expose
// user-buffer ranges directly) and announce it; the receiver pulls the data
// with scatter reads and finally acknowledges with Done.
func (ep *Endpoint) sendPRRSData(op *sendOp, segSize int64) {
	if segSize <= 0 || segSize > op.eff {
		segSize = op.eff
	}
	nSegs := int((op.eff + segSize - 1) / segSize)

	announce := func(k int, addr mem.Addr, key uint32, n int64) {
		w := ep.ctrlW()
		w.u8(kindSegReady)
		w.u32(op.id)
		w.u64(uint64(addr))
		w.u32(key)
		w.i64(n)
		ep.sendCtrl(op.dst, w.buf, nil)
	}

	if op.sContig {
		// Zero-copy P-RRS: the receiver reads straight from the user buffer.
		ep.withUserRegistration(op, func() {
			base := mem.Addr(int64(op.buf) + op.dt.TrueLB())
			left := op.eff
			for k := 0; k < nSegs; k++ {
				n := segSize
				if n > left {
					n = left
				}
				left -= n
				announce(k, base+mem.Addr(int64(k)*segSize), op.refs[0].key, n)
			}
		})
		return
	}

	// P-RRS pack segments stay occupied until the receiver's Done.
	packer := ep.newParallelPacker(op.buf, op.dt, op.count)
	packSeg := func(k int, s seg) {
		n := segSize
		if rest := op.eff - int64(k)*segSize; n > rest {
			n = rest
		}
		dst := ep.memory.Bytes(s.addr, n)
		st := packer.Pack(dst)
		if st.Bytes != n {
			panic("core: P-RRS pack shortfall")
		}
		atomic.AddInt64(&ep.ctr.BytesPacked, n)
		atomic.AddInt64(&ep.ctr.SegmentsPipelined, 1)
		ep.chargeParPack(st, "pack")
		announce(k, s.addr, s.key, n)
	}
	segC := ep.packPool.classFor(segSize)
	if !ep.packPool.enabled || nSegs > ep.packPool.slotsFor(segC) {
		// Worst case or message larger than the pool: one on-the-fly pack
		// buffer of the real data size, carved into segment views.
		if !ep.packPool.enabled {
			atomic.AddInt64(&ep.ctr.PoolDisabled, 1)
		} else {
			atomic.AddInt64(&ep.ctr.PoolOverflow, 1)
		}
		ep.pinSend(op)
		ep.acquireStaging(op.eff, func(s seg, err error) {
			defer ep.unpinSend(op)
			if err != nil {
				ep.abortSend(op, err)
				return
			}
			if op.failed {
				ep.releaseSeg(ep.packPool, s)
				return
			}
			op.staging = segRes{seg: s, bytes: op.eff, held: true}
			for k := 0; k < nSegs; k++ {
				packSeg(k, seg{addr: s.addr + mem.Addr(int64(k)*segSize), key: s.key})
			}
		})
		return
	}
	// The slots stay held until the receiver's Done, so take the whole
	// message's worth atomically: partial grants across concurrent ops
	// would deadlock with every op stuck one slot short.
	ep.pinSend(op)
	ep.packPool.whenAvailable(nSegs, segC, func() {
		defer ep.unpinSend(op)
		if op.failed {
			return
		}
		for k := 0; k < nSegs; k++ {
			s, ok := ep.packPool.tryAcquire(segC)
			if !ok {
				panic("core: pack pool promised slots it does not have")
			}
			op.segs = append(op.segs, segRes{seg: s, held: true})
			packSeg(k, s)
		}
	})
}

// handleSegReady is the receiver half of P-RRS: scatter-read the announced
// segment into the user blocks. Reads retry independently — each scatters to
// a fixed address range, so completion order does not matter.
func (ep *Endpoint) handleSegReady(src int, r *ctrlReader) {
	id := r.u32()
	addr := mem.Addr(r.u64())
	key := r.u32()
	n := r.i64()
	if r.err != nil {
		panic(r.err)
	}
	op := ep.lookupRecvOp(src, id)
	if op == nil {
		if ep.faultMode() {
			return // announcement raced an abort
		}
		panic(fmt.Sprintf("core rank %d: SegReady for unknown op %d", ep.rank, id))
	}
	if op.failed {
		return
	}
	wrs, err := ep.chunkWRs(&op.wrs, verbs.OpRDMARead, op.readCur, op.req.buf, op.refs, n, addr, key)
	if err != nil {
		ep.abortRecv(op, err, true)
		return
	}
	atomic.AddInt64(&ep.ctr.SegmentsPipelined, 1)
	cancelled := func() bool { return op.failed }
	lane := ep.laneFor(op.eff)
	for i := range wrs {
		wr := wrs[i]
		wr.Lane = uint8(lane)
		bytes := wrPayload(&wr)
		op.wrsLeft++
		ep.submitLane(src, lane, 1, bytes, func() {
			if op.failed {
				ep.laneRelease(src, 1, bytes)
				ep.recvWRResolved(op, errOpAborted, nil)
				return
			}
			ep.postRetry(src, wr, cancelled, func(err error) {
				ep.laneRelease(src, 1, bytes)
				ep.recvWRResolved(op, err, func() {
					op.bytesRead += bytes
					if op.bytesRead == op.eff {
						w := ep.ctrlW()
						w.u8(kindDone)
						w.u32(id)
						ep.sendCtrl(src, w.buf, nil)
						ep.finishRecv(op)
					}
				})
			})
		})
	}
}

// handleDone is the sender half of P-RRS teardown: the receiver has read
// everything, so staging slots (or user registrations) can be released.
func (ep *Endpoint) handleDone(src int, r *ctrlReader) {
	id := r.u32()
	if r.err != nil {
		panic(r.err)
	}
	op := ep.lookupSendOp(src, id)
	if op == nil {
		if ep.faultMode() {
			return // Done raced an abort
		}
		panic(fmt.Sprintf("core rank %d: Done for unknown op %d", ep.rank, id))
	}
	if op.failed {
		return
	}
	for i := range op.segs {
		if op.segs[i].held {
			ep.releaseSeg(ep.packPool, op.segs[i].seg)
			op.segs[i].held = false
		}
	}
	op.segs = op.segs[:0]
	if op.staging.held {
		ep.releaseSeg(ep.packPool, op.staging.seg)
		op.staging = segRes{}
	}
	ep.finishSend(op)
}
