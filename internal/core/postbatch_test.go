package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/datatype"
	"repro/internal/ib"
	"repro/internal/mem"
	"repro/internal/rtfab"
	"repro/internal/simtime"
	"repro/internal/verbs"
)

// newTestWorldModel is newTestWorld with a custom cost model — the boundary
// tests shrink MaxPostBatch and MaxSGE independently.
func newTestWorldModel(t *testing.T, n int, cfg Config, memSize int64, model ib.Model) *testWorld {
	t.Helper()
	eng := simtime.NewEngine()
	fab := ib.NewFabric(eng, model)
	eps := make([]*Endpoint, n)
	for i := range eps {
		m := mem.NewMemory(fmt.Sprintf("n%d", i), memSize)
		hca := fab.AddHCA(fmt.Sprintf("n%d", i), m, nil)
		ep, err := NewEndpoint(i, hca, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	ConnectPeers(eps)
	return &testWorld{eng: eng, eps: eps}
}

// postBatchHarness is one backend's raw QP pair plus registered source and
// destination buffers for hand-built list posts.
type postBatchHarness struct {
	qp       verbs.QP
	src, dst mem.Addr
	lkey     uint32
	rkey     uint32
}

// TestMaxPostBatchDistinctFromMaxSGE pins the fix for the limit the callers
// used to conflate: MaxPostBatch bounds descriptors per doorbell and MaxSGE
// bounds one descriptor's gather list. With MaxSGE = 4 and MaxPostBatch = 8
// on both backends, a full batch of full-gather descriptors (32 SGEs in
// total) must be accepted — the batch limit counts descriptors, not SGEs —
// while one descriptor too many is rejected at the verbs boundary.
func TestMaxPostBatchDistinctFromMaxSGE(t *testing.T) {
	model := verbs.DefaultModel()
	model.MaxSGE = 4
	model.MaxPostBatch = 8

	build := map[string]func(t *testing.T) postBatchHarness{
		"sim": func(t *testing.T) postBatchHarness {
			eng := simtime.NewEngine()
			fab := ib.NewFabric(eng, model)
			ma := mem.NewMemory("a", 1<<20)
			mb := mem.NewMemory("b", 1<<20)
			ha := fab.AddHCA("a", ma, nil)
			hb := fab.AddHCA("b", mb, nil)
			qa, _ := ha.Connect(hb, ha.NewCQ(), ha.NewCQ(), hb.NewCQ(), hb.NewCQ())
			return newPostBatchBufs(t, qa, ma, mb)
		},
		"rt": func(t *testing.T) postBatchHarness {
			fab := rtfab.New(model)
			ma := mem.NewMemory("a", 1<<20)
			mb := mem.NewMemory("b", 1<<20)
			na := fab.AddNode("a", ma, nil)
			nb := fab.AddNode("b", mb, nil)
			qa, _ := na.Connect(nb, na.NewCQ(), na.NewCQ(), nb.NewCQ(), nb.NewCQ())
			return newPostBatchBufs(t, qa, ma, mb)
		},
	}

	for backend, mk := range build {
		t.Run(backend, func(t *testing.T) {
			h := mk(t)
			wr := func(nSGE int) verbs.SendWR {
				w := verbs.SendWR{Op: verbs.OpRDMAWrite, RemoteAddr: h.dst, RKey: h.rkey}
				for s := 0; s < nSGE; s++ {
					w.SGL = append(w.SGL, verbs.SGE{
						Addr: h.src + mem.Addr(64*s), Len: 64, Key: h.lkey})
				}
				return w
			}
			list := func(nWR, nSGE int) []verbs.SendWR {
				wrs := make([]verbs.SendWR, nWR)
				for i := range wrs {
					wrs[i] = wr(nSGE)
				}
				return wrs
			}

			// MaxPostBatch descriptors, each with a full MaxSGE gather list:
			// 32 SGEs in one doorbell, and it must be accepted.
			if err := h.qp.PostSendList(list(model.MaxPostBatch, model.MaxSGE)); err != nil {
				t.Fatalf("full batch of full-gather descriptors rejected: %v", err)
			}
			// One descriptor past the batch limit: rejected, naming the limit.
			err := h.qp.PostSendList(list(model.MaxPostBatch+1, 1))
			if err == nil {
				t.Fatalf("list of %d descriptors accepted past MaxPostBatch %d",
					model.MaxPostBatch+1, model.MaxPostBatch)
			}
			if !strings.Contains(err.Error(), "MaxPostBatch") {
				t.Fatalf("rejection does not name MaxPostBatch: %v", err)
			}
			// Singleton posts are not doorbell batches: they bypass the limit
			// even when a list of the same size would not.
			if err := h.qp.PostSend(wr(model.MaxSGE)); err != nil {
				t.Fatalf("single post rejected: %v", err)
			}
		})
	}
}

func newPostBatchBufs(t *testing.T, qp verbs.QP, ma, mb *mem.Memory) postBatchHarness {
	t.Helper()
	src := ma.MustAlloc(64 << 10)
	dst := mb.MustAlloc(64 << 10)
	srcReg, err := ma.Reg().Register(src, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	dstReg, err := mb.Reg().Register(dst, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	return postBatchHarness{qp: qp, src: src, dst: dst, lkey: srcReg.LKey, rkey: dstReg.RKey}
}

// TestPostBatchChunkingEndToEnd shrinks MaxPostBatch to 3 and sends a
// Multi-W message needing far more descriptors: the endpoint must chunk the
// doorbells (several list posts), deliver the bytes intact, and count the
// batched descriptors.
func TestPostBatchChunkingEndToEnd(t *testing.T) {
	model := ib.DefaultModel()
	model.MaxPostBatch = 3
	cfg := DefaultConfig()
	cfg.Scheme = SchemeMultiW
	cfg.PoolSize = 4 << 20
	vec := datatype.Must(datatype.TypeVector(64, 64, 128, datatype.Int32)) // 64 runs, 16 KB
	w := newTestWorldModel(t, 2, cfg, 48<<20, model)
	var sent, got []byte
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		buf := allocFor(ep, vec, 1)
		if ep.Rank() == 0 {
			sent = fillMsg(ep, buf, vec, 1, 0x7D)
			if err := ep.Send(p, buf, 1, vec, 1, 0); err != nil {
				t.Error(err)
			}
			return
		}
		if _, err := ep.Recv(p, buf, 1, vec, 0, 0); err != nil {
			t.Error(err)
		}
		got = readMsg(ep, buf, vec, 1)
	})
	if string(sent) != string(got) {
		t.Fatal("chunked Multi-W delivered wrong bytes")
	}
	c := w.eps[0].Counters()
	// 64 descriptors at 3 per doorbell: at least 22 list posts, and every
	// descriptor flows through the batch counter.
	if c.ListPosts < 22 {
		t.Fatalf("ListPosts = %d, want >= 22 (chunked doorbells)", c.ListPosts)
	}
	if c.BatchedWRs < 64 {
		t.Fatalf("BatchedWRs = %d, want >= 64", c.BatchedWRs)
	}
}

// TestChunkBatches pins the chunker itself: exact division, remainders, a
// non-positive limit (unlimited), and lists already within the limit.
func TestChunkBatches(t *testing.T) {
	mk := func(n int) []verbs.SendWR { return make([]verbs.SendWR, n) }
	for _, tc := range []struct {
		n, limit int
		want     []int
	}{
		{9, 3, []int{3, 3, 3}},
		{10, 3, []int{3, 3, 3, 1}},
		{2, 3, []int{2}},
		{5, 0, []int{5}},
		{5, -1, []int{5}},
		{1, 1, []int{1}},
	} {
		got := chunkBatches(mk(tc.n), tc.limit, nil)
		if len(got) != len(tc.want) {
			t.Fatalf("chunkBatches(%d, %d): %d batches, want %d", tc.n, tc.limit, len(got), len(tc.want))
		}
		total := 0
		for i, b := range got {
			if len(b) != tc.want[i] {
				t.Fatalf("chunkBatches(%d, %d): batch %d has %d, want %d", tc.n, tc.limit, i, len(b), tc.want[i])
			}
			total += len(b)
		}
		if total != tc.n {
			t.Fatalf("chunkBatches(%d, %d) dropped descriptors: %d", tc.n, tc.limit, total)
		}
	}
}
