package core

import (
	"bytes"

	"testing"

	"repro/internal/datatype"
	"repro/internal/simtime"
)

func TestWaitAny(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolSize = 4 << 20
	w := newTestWorld(t, 2, cfg, 48<<20)
	big := datatype.Must(datatype.TypeContiguous(512<<10, datatype.Int32)) // slow
	small := datatype.Must(datatype.TypeContiguous(64, datatype.Int32))    // fast
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		if ep.Rank() == 0 {
			b1 := allocFor(ep, big, 1)
			b2 := allocFor(ep, small, 1)
			fillMsg(ep, b1, big, 1, 1)
			fillMsg(ep, b2, small, 1, 2)
			r1 := ep.Isend(b1, 1, big, 1, 1)
			r2 := ep.Isend(b2, 1, small, 1, 2)
			WaitAll(p, r1, r2)
		} else {
			b1 := allocFor(ep, big, 1)
			b2 := allocFor(ep, small, 1)
			r1 := ep.Irecv(b1, 1, big, 0, 1)
			r2 := ep.Irecv(b2, 1, small, 0, 2)
			// The small eager message must complete first.
			idx := WaitAny(p, r1, r2)
			if idx != 1 {
				t.Errorf("WaitAny returned %d, want 1 (the small message)", idx)
			}
			WaitAll(p, r1, r2)
		}
	})
}

func TestZeroSizeMessage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolSize = 4 << 20
	w := newTestWorld(t, 2, cfg, 32<<20)
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		buf := ep.Mem().MustAlloc(16)
		if ep.Rank() == 0 {
			if err := ep.Send(p, buf, 0, datatype.Byte, 1, 0); err != nil {
				t.Errorf("zero-size send: %v", err)
			}
		} else {
			req, err := ep.Recv(p, buf, 0, datatype.Byte, 0, 0)
			if err != nil {
				t.Errorf("zero-size recv: %v", err)
			}
			if req.Bytes != 0 {
				t.Errorf("zero-size recv bytes = %d", req.Bytes)
			}
		}
	})
}

// Exactly the eager threshold must take the rendezvous path; one byte less
// stays eager.
func TestEagerThresholdBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolSize = 4 << 20
	for _, tc := range []struct {
		bytes     int64
		wantEager bool
	}{
		{cfg.EagerThreshold - 1, true},
		{cfg.EagerThreshold, false},
	} {
		w := newTestWorld(t, 2, cfg, 32<<20)
		dt := datatype.Must(datatype.TypeContiguous(int(tc.bytes), datatype.Byte))
		w.run(t, func(p *simtime.Process, ep *Endpoint) {
			buf := allocFor(ep, dt, 1)
			if ep.Rank() == 0 {
				fillMsg(ep, buf, dt, 1, 9)
				ep.Send(p, buf, 1, dt, 1, 0)
			} else {
				ep.Recv(p, buf, 1, dt, 0, 0)
			}
		})
		c := w.eps[0].Counters()
		if tc.wantEager && (c.EagerSends != 1 || c.RendezvousSends != 0) {
			t.Errorf("%d bytes: eager=%d rndv=%d, want eager", tc.bytes, c.EagerSends, c.RendezvousSends)
		}
		if !tc.wantEager && (c.EagerSends != 0 || c.RendezvousSends != 1) {
			t.Errorf("%d bytes: eager=%d rndv=%d, want rendezvous", tc.bytes, c.EagerSends, c.RendezvousSends)
		}
	}
}

// The Multi-W layout cache must be maintained independently per peer.
func TestMultiWLayoutCachePerPeer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeMultiW
	cfg.PoolSize = 4 << 20
	vec := datatype.Must(datatype.TypeVector(64, 512, 1024, datatype.Int32)) // 128 KB
	w := newTestWorld(t, 3, cfg, 48<<20)
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		switch ep.Rank() {
		case 0:
			buf := allocFor(ep, vec, 1)
			fillMsg(ep, buf, vec, 1, 1)
			// Two sends to each receiver.
			for i := 0; i < 2; i++ {
				ep.Send(p, buf, 1, vec, 1, i)
				ep.Send(p, buf, 1, vec, 2, i)
			}
		default:
			buf := allocFor(ep, vec, 1)
			for i := 0; i < 2; i++ {
				ep.Recv(p, buf, 1, vec, 0, i)
			}
		}
	})
	// Each receiver ships its layout once; the sender hits its cache once
	// per receiver.
	for _, r := range []int{1, 2} {
		if got := w.eps[r].Counters().TypeLayoutsSent; got != 1 {
			t.Errorf("rank %d TypeLayoutsSent = %d, want 1", r, got)
		}
	}
	if got := w.eps[0].Counters().TypeCacheHits; got != 2 {
		t.Errorf("sender TypeCacheHits = %d, want 2", got)
	}
}

// Bidirectional simultaneous rendezvous traffic on one pair must not
// deadlock or corrupt.
func TestBidirectionalRendezvous(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBCSPUP, SchemeMultiW, SchemePRRS} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.PoolSize = 4 << 20
			vec := datatype.Must(datatype.TypeVector(256, 64, 128, datatype.Int32)) // 64 KB
			w := newTestWorld(t, 2, cfg, 48<<20)
			sent := make([][]byte, 2)
			got := make([][]byte, 2)
			w.run(t, func(p *simtime.Process, ep *Endpoint) {
				me := ep.Rank()
				peer := 1 - me
				out := allocFor(ep, vec, 1)
				in := allocFor(ep, vec, 1)
				sent[me] = fillMsg(ep, out, vec, 1, byte(0x40+me))
				rr := ep.Irecv(in, 1, vec, peer, 0)
				sr := ep.Isend(out, 1, vec, peer, 0)
				WaitAll(p, rr, sr)
				got[me] = readMsg(ep, in, vec, 1)
			})
			for me := 0; me < 2; me++ {
				if !bytes.Equal(got[me], sent[1-me]) {
					t.Fatalf("rank %d received corrupt data", me)
				}
			}
		})
	}
}

// Iprobe must distinguish communicator contexts at the core level.
func TestIprobeCtxIsolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolSize = 4 << 20
	w := newTestWorld(t, 2, cfg, 32<<20)
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		if ep.Rank() == 0 {
			buf := ep.Mem().MustAlloc(64)
			r := ep.IsendCtx(7, buf, 64, datatype.Byte, 1, 3)
			r.Wait(p)
			return
		}
		p.Sleep(simtime.Millisecond)
		if _, ok := ep.IprobeCtx(0, AnySource, AnyTag); ok {
			t.Error("ctx-7 message visible in ctx 0")
		}
		st, ok := ep.IprobeCtx(7, AnySource, AnyTag)
		if !ok || st.Tag != 3 || st.Bytes != 64 {
			t.Errorf("ctx-7 probe = %+v ok=%v", st, ok)
		}
		buf := ep.Mem().MustAlloc(64)
		r := ep.IrecvCtx(7, buf, 64, datatype.Byte, 0, 3)
		r.Wait(p)
	})
}

// Every scheme must keep its pools balanced: after a burst of traffic all
// slots are back and nothing leaks.
func TestPoolBalanceAfterBurst(t *testing.T) {
	for _, scheme := range []Scheme{SchemeBCSPUP, SchemeRWGUP, SchemePRRS} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.PoolSize = 1 << 20                                                   // 8 slots: force recycling
			vec := datatype.Must(datatype.TypeVector(512, 128, 256, datatype.Int32)) // 256 KB
			w := newTestWorld(t, 2, cfg, 64<<20)
			w.run(t, func(p *simtime.Process, ep *Endpoint) {
				buf := allocFor(ep, vec, 1)
				if ep.Rank() == 0 {
					fillMsg(ep, buf, vec, 1, 5)
					for i := 0; i < 10; i++ {
						ep.Send(p, buf, 1, vec, 1, 0)
					}
				} else {
					for i := 0; i < 10; i++ {
						ep.Recv(p, buf, 1, vec, 0, 0)
					}
				}
			})
			for _, ep := range w.eps {
				if got := ep.packPool.available(); got != ep.packPool.totalSlots() {
					t.Fatalf("rank %d pack pool leaked: %d/%d", ep.Rank(), got, ep.packPool.totalSlots())
				}
				if got := ep.unpackPool.available(); got != ep.unpackPool.totalSlots() {
					t.Fatalf("rank %d unpack pool leaked: %d/%d", ep.Rank(), got, ep.unpackPool.totalSlots())
				}
				if ep.activeSends != 0 || ep.activeRecvs != 0 {
					t.Fatalf("rank %d leaked ops: %s", ep.Rank(), ep.DebugState())
				}
				if ps := ep.PoolStats(); ps.LiveSendOps != 0 || ps.LiveRecvOps != 0 {
					t.Fatalf("rank %d leaked pooled ops: %+v", ep.Rank(), ps)
				}
				if len(ep.onSendCQE) != 0 {
					t.Fatalf("rank %d leaked %d CQE callbacks", ep.Rank(), len(ep.onSendCQE))
				}
			}
		})
	}
}

// User-buffer registrations must balance after traffic with the cache off.
func TestRegistrationBalance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeMultiW
	cfg.RegCache = false
	cfg.PoolSize = 4 << 20
	vec := datatype.Must(datatype.TypeVector(128, 512, 1024, datatype.Int32))
	w := newTestWorld(t, 2, cfg, 48<<20)
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		buf := allocFor(ep, vec, 1)
		if ep.Rank() == 0 {
			fillMsg(ep, buf, vec, 1, 1)
			for i := 0; i < 5; i++ {
				ep.Send(p, buf, 1, vec, 1, 0)
			}
		} else {
			for i := 0; i < 5; i++ {
				ep.Recv(p, buf, 1, vec, 0, 0)
			}
		}
	})
	for _, ep := range w.eps {
		c := ep.Counters()
		if c.Registrations == 0 {
			t.Fatalf("rank %d registered nothing", ep.Rank())
		}
		if c.Registrations != c.Deregistrations {
			t.Fatalf("rank %d: %d registrations vs %d deregistrations",
				ep.Rank(), c.Registrations, c.Deregistrations)
		}
	}
}
