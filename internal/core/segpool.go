package core

import (
	"sync/atomic"

	"fmt"

	"repro/internal/mem"
	"repro/internal/stats"
)

// seg is one staging segment: either a slot of a pre-registered pool or a
// dynamically allocated, on-the-fly registered buffer (the fallback of
// Section 4.3.3).
type seg struct {
	addr   mem.Addr
	key    uint32
	pooled bool
	region *mem.Region // dynamic segments only
}

// segPool is a pre-registered, page-aligned staging pool carved into
// fixed-size slots, allocated once at endpoint construction (the paper's
// 20 MB pack and unpack buffers of Section 7.2).
type segPool struct {
	memory  *mem.Memory
	base    mem.Addr
	region  *mem.Region
	slot    int64
	slots   int // total slots carved at construction
	free    []mem.Addr
	enabled bool

	// waiters are continuations parked until slots free up (the paper's
	// "stall the communication until buffers are available" policy,
	// Section 4.3.3). Each waiter names the slot count it needs; waiters
	// are served FIFO so no transfer starves.
	waiters []poolWaiter

	// Observability, wired by NewEndpoint: ctr.PoolExhausted counts waiters
	// that actually park (the pool genuinely ran dry); gauge tracks slot
	// occupancy. Both may be nil (gauge methods are nil-safe).
	ctr   *stats.Counters
	gauge *stats.Gauge
}

type poolWaiter struct {
	need int
	fn   func()
}

// newSegPool carves a pool of total bytes into slot-sized pieces. With
// enabled false the pool allocates nothing and every acquire falls back.
func newSegPool(m *mem.Memory, total, slot int64, enabled bool) (*segPool, error) {
	p := &segPool{memory: m, slot: slot, enabled: enabled}
	if !enabled {
		return p, nil
	}
	base, err := m.AllocPage(total)
	if err != nil {
		return nil, fmt.Errorf("segpool: %w", err)
	}
	region, err := m.Reg().Register(base, total)
	if err != nil {
		return nil, fmt.Errorf("segpool: %w", err)
	}
	p.base = base
	p.region = region
	for off := int64(0); off+slot <= total; off += slot {
		p.free = append(p.free, base+mem.Addr(off))
	}
	p.slots = len(p.free)
	return p, nil
}

// tryAcquire returns a pooled segment, or ok=false when the pool is dry
// (or disabled).
func (p *segPool) tryAcquire() (seg, bool) {
	if !p.enabled || len(p.free) == 0 {
		return seg{}, false
	}
	a := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.gauge.Add(1)
	return seg{addr: a, key: p.region.LKey, pooled: true}, true
}

// release returns a pooled segment to the pool and resumes waiters whose
// demands can now be met, in FIFO order.
func (p *segPool) release(s seg) {
	if !s.pooled {
		panic("segpool: release of non-pooled segment")
	}
	p.free = append(p.free, s.addr)
	p.gauge.Add(-1)
	for len(p.waiters) > 0 && len(p.free) >= p.waiters[0].need {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		w.fn()
	}
}

// whenAvailable runs fn as soon as need slots are free (immediately if they
// already are). fn must take its slots synchronously via tryAcquire.
func (p *segPool) whenAvailable(need int, fn func()) {
	if len(p.waiters) == 0 && len(p.free) >= need {
		fn()
		return
	}
	// The pool genuinely ran dry: this transfer parks until slots free up.
	if p.ctr != nil {
		atomic.AddInt64(&p.ctr.PoolExhausted, 1)
	}
	p.waiters = append(p.waiters, poolWaiter{need: need, fn: fn})
}

// available reports free slots.
func (p *segPool) available() int { return len(p.free) }

// withSeg runs fn with one staging segment, as soon as one is available.
// With the pool disabled (the worst-case configuration) the segment is
// allocated and registered dynamically instead of waiting; a pooled segment
// never fails, so fn's error is non-nil only on that dynamic path.
func (ep *Endpoint) withSeg(pool *segPool, fn func(seg, error)) {
	if !pool.enabled {
		atomic.AddInt64(&ep.ctr.PoolDisabled, 1)
		ep.acquireStaging(pool.slot, fn)
		return
	}
	pool.whenAvailable(1, func() {
		s, ok := pool.tryAcquire()
		if !ok {
			panic("core: pool promised a slot it does not have")
		}
		fn(s, nil)
	})
}

// releaseSeg returns a segment to its pool or releases its dynamic
// resources, charging deregistration/free time when real work happens.
func (ep *Endpoint) releaseSeg(pool *segPool, s seg) {
	if s.pooled {
		pool.release(s)
		return
	}
	ops, err := ep.stagingReg.Release(s.region)
	if err != nil {
		panic(err)
	}
	ep.accountReg(ops)
	atomic.AddInt64(&ep.ctr.DynamicFrees, 1)
	if err := ep.memory.Free(s.addr); err != nil {
		panic(err)
	}
	ep.hca.ChargeCPUNamed(ep.model.RegOpsTime(ops)+ep.model.FreeCost, "reg")
}
