package core

import (
	"sync/atomic"

	"fmt"

	"repro/internal/mem"
	"repro/internal/stats"
)

// minShardSlot is the smallest slot size a pool shard is carved into.
const minShardSlot = 4 << 10

// seg is one staging segment: either a slot of a pre-registered pool or a
// dynamically allocated, on-the-fly registered buffer (the fallback of
// Section 4.3.3).
type seg struct {
	addr   mem.Addr
	key    uint32
	pooled bool
	shard  int         // pooled only: the size-class shard the slot came from
	region *mem.Region // dynamic segments only
}

// poolShard is one size class of a segPool: a run of equally sized slots
// with its own free list and FIFO waiter queue. Each message draws every
// slot it needs from a single shard (the class its segment size maps to),
// so two messages with different segment sizes never contend — and never
// hold-and-wait across classes, which keeps the pool deadlock-free.
type poolShard struct {
	slot  int64
	slots int // total slots carved at construction
	free  []mem.Addr

	// waiters are continuations parked until slots of this class free up
	// (the paper's "stall the communication until buffers are available"
	// policy, Section 4.3.3). Each waiter names the slot count it needs;
	// waiters are served FIFO so no transfer starves. The queue is
	// head-indexed (whead) with lazy compaction so a warm stall/resume
	// cycle reuses retained capacity instead of reallocating per pop.
	waiters []poolWaiter
	whead   int
}

// pending reports the shard's parked waiter count.
func (sh *poolShard) pending() int { return len(sh.waiters) - sh.whead }

// segPool is a pre-registered, page-aligned staging pool carved into
// fixed-size slots, allocated once at endpoint construction (the paper's
// 20 MB pack and unpack buffers of Section 7.2). With PoolShards > 1 the
// pool is split into size-class shards: shard 0 holds full SegmentSize
// slots and each further shard halves the slot size, so small-segment
// messages draw from their own class instead of wasting large slots.
type segPool struct {
	memory  *mem.Memory
	base    mem.Addr
	region  *mem.Region
	slot    int64 // class-0 (largest) slot size
	shards  []poolShard
	enabled bool

	// Observability, wired by NewEndpoint: ctr.PoolExhausted counts waiters
	// that actually park (the pool genuinely ran dry); gauge tracks slot
	// occupancy across all shards. Both may be nil (gauge methods are
	// nil-safe).
	ctr   *stats.Counters
	gauge *stats.Gauge
}

type poolWaiter struct {
	need int
	fn   func()
}

// newSegPool carves a pool of total bytes into nShards size classes of
// slot-sized (halving per class) pieces. With enabled false the pool
// allocates nothing and every acquire falls back. nShards <= 1 yields the
// single-class pool of the original design.
func newSegPool(m *mem.Memory, total, slot int64, nShards int, enabled bool) (*segPool, error) {
	if nShards < 1 {
		nShards = 1
	}
	p := &segPool{memory: m, slot: slot, enabled: enabled}
	if !enabled {
		p.shards = []poolShard{{slot: slot}}
		return p, nil
	}
	base, err := m.AllocPage(total)
	if err != nil {
		return nil, fmt.Errorf("segpool: %w", err)
	}
	region, err := m.Reg().Register(base, total)
	if err != nil {
		return nil, fmt.Errorf("segpool: %w", err)
	}
	p.base = base
	p.region = region
	span := total / int64(nShards)
	off := int64(0)
	sz := slot
	for i := 0; i < nShards; i++ {
		sh := poolShard{slot: sz}
		end := off + span
		if i == nShards-1 {
			end = total // the last shard absorbs the rounding remainder
		}
		for ; off+sz <= end; off += sz {
			sh.free = append(sh.free, base+mem.Addr(off))
		}
		sh.slots = len(sh.free)
		p.shards = append(p.shards, sh)
		if sz/2 >= minShardSlot {
			sz /= 2
		}
	}
	return p, nil
}

// classFor maps a segment size to the shard it draws from: the smallest
// slot class that still fits the segment (falling back to class 0 for
// oversize requests, which the segment-size rule never produces).
func (p *segPool) classFor(size int64) int {
	for i := len(p.shards) - 1; i > 0; i-- {
		if p.shards[i].slots > 0 && p.shards[i].slot >= size {
			return i
		}
	}
	return 0
}

// tryAcquire returns a pooled segment of class c, or ok=false when that
// shard is dry (or the pool is disabled).
func (p *segPool) tryAcquire(c int) (seg, bool) {
	if !p.enabled {
		return seg{}, false
	}
	sh := &p.shards[c]
	if len(sh.free) == 0 {
		return seg{}, false
	}
	a := sh.free[len(sh.free)-1]
	sh.free = sh.free[:len(sh.free)-1]
	p.gauge.Add(1)
	return seg{addr: a, key: p.region.LKey, pooled: true, shard: c}, true
}

// release returns a pooled segment to its shard and resumes that shard's
// waiters whose demands can now be met, in FIFO order.
func (p *segPool) release(s seg) {
	if !s.pooled {
		panic("segpool: release of non-pooled segment")
	}
	sh := &p.shards[s.shard]
	sh.free = append(sh.free, s.addr)
	p.gauge.Add(-1)
	for sh.pending() > 0 && len(sh.free) >= sh.waiters[sh.whead].need {
		w := sh.waiters[sh.whead]
		sh.waiters[sh.whead] = poolWaiter{}
		sh.whead++
		if sh.whead == len(sh.waiters) {
			sh.waiters = sh.waiters[:0]
			sh.whead = 0
		} else if sh.whead > 32 && sh.whead*2 >= len(sh.waiters) {
			n := copy(sh.waiters, sh.waiters[sh.whead:])
			sh.waiters = sh.waiters[:n]
			sh.whead = 0
		}
		w.fn()
	}
}

// whenAvailable runs fn as soon as need slots of class c are free
// (immediately if they already are). fn must take its slots synchronously
// via tryAcquire.
func (p *segPool) whenAvailable(need, c int, fn func()) {
	sh := &p.shards[c]
	if sh.pending() == 0 && len(sh.free) >= need {
		fn()
		return
	}
	// The shard genuinely ran dry: this transfer parks until slots free up.
	if p.ctr != nil {
		atomic.AddInt64(&p.ctr.PoolExhausted, 1)
	}
	sh.waiters = append(sh.waiters, poolWaiter{need: need, fn: fn})
}

// availableFor reports free slots of class c.
func (p *segPool) availableFor(c int) int { return len(p.shards[c].free) }

// available reports free slots across all shards.
func (p *segPool) available() int {
	n := 0
	for i := range p.shards {
		n += len(p.shards[i].free)
	}
	return n
}

// slotsFor reports the total slot count of class c.
func (p *segPool) slotsFor(c int) int { return p.shards[c].slots }

// totalSlots reports the slot count across all shards.
func (p *segPool) totalSlots() int {
	n := 0
	for i := range p.shards {
		n += p.shards[i].slots
	}
	return n
}

// slotFor reports the slot size of class c.
func (p *segPool) slotFor(c int) int64 { return p.shards[c].slot }

// pendingWaiters reports parked waiters across all shards.
func (p *segPool) pendingWaiters() int {
	n := 0
	for i := range p.shards {
		n += p.shards[i].pending()
	}
	return n
}

// withSeg runs fn with one staging segment of the class fitting size, as
// soon as one is available. With the pool disabled (the worst-case
// configuration) the segment is allocated and registered dynamically instead
// of waiting; a pooled segment never fails, so fn's error is non-nil only on
// that dynamic path.
func (ep *Endpoint) withSeg(pool *segPool, size int64, fn func(seg, error)) {
	if !pool.enabled {
		atomic.AddInt64(&ep.ctr.PoolDisabled, 1)
		ep.acquireStaging(pool.slot, fn)
		return
	}
	c := pool.classFor(size)
	pool.whenAvailable(1, c, func() {
		s, ok := pool.tryAcquire(c)
		if !ok {
			panic("core: pool promised a slot it does not have")
		}
		fn(s, nil)
	})
}

// releaseSeg returns a segment to its pool or releases its dynamic
// resources, charging deregistration/free time when real work happens.
func (ep *Endpoint) releaseSeg(pool *segPool, s seg) {
	if s.pooled {
		pool.release(s)
		ep.qosDrain() // pool pressure just dropped
		return
	}
	ops, err := ep.stagingReg.Release(s.region)
	if err != nil {
		panic(err)
	}
	ep.accountReg(ops)
	atomic.AddInt64(&ep.ctr.DynamicFrees, 1)
	if err := ep.memory.Free(s.addr); err != nil {
		panic(err)
	}
	ep.hca.ChargeCPUNamed(ep.model.RegOpsTime(ops)+ep.model.FreeCost, "reg")
	ep.qosDrain() // registration pressure just dropped
}
