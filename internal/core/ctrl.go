package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
)

// Control-message kinds exchanged between endpoints. All control traffic and
// eager payloads travel as channel-semantics sends on the per-peer QP, so
// MPI's pairwise ordering guarantee falls out of the transport's RC ordering.
const (
	kindEager    = uint8(iota + 1) // eager message: header + packed payload
	kindRTS                        // rendezvous start
	kindCTS                        // rendezvous reply (scheme-specific payload)
	kindSegReady                   // P-RRS: a packed segment is readable
	kindDone                       // P-RRS: receiver finished reading
	kindSendFail                   // sender aborted the op; receiver must clean up
	kindRecvFail                   // receiver aborted the op; sender must clean up
)

// ctrlWriter builds control messages.
type ctrlWriter struct{ buf []byte }

func (w *ctrlWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *ctrlWriter) u32(v uint32) { w.buf = binary.AppendUvarint(w.buf, uint64(v)) }
func (w *ctrlWriter) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *ctrlWriter) i64(v int64)  { w.buf = binary.AppendVarint(w.buf, v) }
func (w *ctrlWriter) bytes(b []byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// ctrlReader parses control messages.
type ctrlReader struct {
	buf []byte
	pos int
	err error
}

func (r *ctrlReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("core: truncated control message at %s (pos %d)", what, r.pos)
	}
}

func (r *ctrlReader) u8() uint8 {
	if r.err != nil || r.pos >= len(r.buf) {
		r.fail("u8")
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *ctrlReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("u64")
		return 0
	}
	r.pos += n
	return v
}

func (r *ctrlReader) u32() uint32 { return uint32(r.u64()) }

func (r *ctrlReader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("i64")
		return 0
	}
	r.pos += n
	return v
}

func (r *ctrlReader) bytes() []byte {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if r.pos+int(n) > len(r.buf) {
		r.fail("bytes")
		return nil
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

// segRef names one remote unpack segment (or pack segment, for P-RRS).
type segRef struct {
	addr mem.Addr
	key  uint32
}

// regRef names one registered remote region for Multi-W targeting.
type regRef struct {
	addr mem.Addr
	len  int64
	key  uint32
}

func (w *ctrlWriter) segRefs(refs []segRef) {
	w.u64(uint64(len(refs)))
	for _, s := range refs {
		w.u64(uint64(s.addr))
		w.u32(s.key)
	}
}

func (r *ctrlReader) segRefs() []segRef {
	return r.segRefsInto(nil)
}

// segRefsInto parses a segment-reference list into buf (reusing its
// capacity), so warm-path callers can feed an op-owned scratch slice instead
// of allocating per message.
func (r *ctrlReader) segRefsInto(buf []segRef) []segRef {
	n := r.u64()
	if r.err != nil || n > 1<<20 {
		r.fail("segRefs")
		return nil
	}
	refs := buf[:0]
	for i := uint64(0); i < n; i++ {
		refs = append(refs, segRef{addr: mem.Addr(r.u64()), key: r.u32()})
	}
	return refs
}

func (w *ctrlWriter) regRefs(refs []regRef) {
	w.u64(uint64(len(refs)))
	for _, s := range refs {
		w.u64(uint64(s.addr))
		w.i64(s.len)
		w.u32(s.key)
	}
}

func (r *ctrlReader) regRefs() []regRef {
	return r.regRefsInto(nil)
}

// regRefsInto is segRefsInto for region-reference lists.
func (r *ctrlReader) regRefsInto(buf []regRef) []regRef {
	n := r.u64()
	if r.err != nil || n > 1<<20 {
		r.fail("regRefs")
		return nil
	}
	refs := buf[:0]
	for i := uint64(0); i < n; i++ {
		refs = append(refs, regRef{addr: mem.Addr(r.u64()), len: r.i64(), key: r.u32()})
	}
	return refs
}

// findRegion returns the index of the region covering [a, a+n), or -1.
// Regions arrive sorted by address (OGR emits them sorted).
func findRegion(refs []regRef, a mem.Addr, n int64) int {
	lo, hi := 0, len(refs)
	for lo < hi {
		mid := (lo + hi) / 2
		if refs[mid].addr+mem.Addr(refs[mid].len) <= a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(refs) && a >= refs[lo].addr && int64(a)+n <= int64(refs[lo].addr)+refs[lo].len {
		return lo
	}
	return -1
}
