// Package core implements the paper's contribution: MPI derived-datatype
// communication over (simulated) InfiniBand, with the five transfer schemes
// the paper studies —
//
//   - Generic: the MPICH-derived pack/unpack baseline (Figure 1),
//   - BC-SPUP: buffer-centric segment pack/unpack with pre-registered pools
//     and a pack/transfer/unpack pipeline (Section 4),
//   - RWG-UP: RDMA write gather from the sender's registered user blocks
//     into the receiver's unpack segments (Section 5.1),
//   - P-RRS: sender-side pack with receiver-initiated RDMA read scatter
//     (Section 5.2; designed but not implemented in the paper — built here),
//   - Multi-W: zero-copy multiple RDMA writes driven by the receiver's
//     shipped datatype layout (Section 5.3),
//
// plus the dynamic scheme selection of Section 6 (SchemeAuto), the
// version-numbered datatype cache of Section 5.4.2, Optimistic Group
// Registration for user buffers, pre-registered segment pools with dynamic
// fallback, and the improved small-message Eager path of Section 7.1.
//
// Endpoint is one rank's communication engine; the mpi package layers
// communicators and collectives on top.
package core

import (
	"repro/internal/pack"
	"repro/internal/qos"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// Scheme selects how rendezvous-size datatype messages are transferred.
type Scheme int

// The transfer schemes.
const (
	SchemeGeneric Scheme = iota // MPICH-derived pack/unpack baseline
	SchemeBCSPUP                // buffer-centric segment pack/unpack
	SchemeRWGUP                 // RDMA write gather with unpack
	SchemePRRS                  // pack with RDMA read scatter
	SchemeMultiW                // multiple RDMA writes (zero copy)
	SchemeAuto                  // per-message dynamic selection (Section 6)
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeGeneric:
		return "Generic"
	case SchemeBCSPUP:
		return "BC-SPUP"
	case SchemeRWGUP:
		return "RWG-UP"
	case SchemePRRS:
		return "P-RRS"
	case SchemeMultiW:
		return "Multi-W"
	case SchemeAuto:
		return "Auto"
	}
	return "unknown"
}

// Config holds the protocol-level knobs of one endpoint. DefaultConfig
// matches the paper's implementation choices (Section 7).
type Config struct {
	Scheme Scheme

	// EagerThreshold is the largest message (in bytes) sent eagerly.
	EagerThreshold int64

	// SegmentSize is the pool slot size for BC-SPUP/RWG-UP/P-RRS segments.
	SegmentSize int64

	// MinSegmented is the smallest rendezvous message split into at least
	// two segments (the paper's 16 KB rule).
	MinSegmented int64

	// PoolSize is the per-endpoint size of each pre-registered staging pool
	// (one pack pool, one unpack pool; the paper uses 20 MB each).
	PoolSize int64

	// UsePools enables the pre-registered pools. Off, every segment is
	// allocated and registered on the fly (the Figure 14 worst case).
	UsePools bool

	// SegmentUnpack drives the receiver to unpack each segment as it
	// arrives (Figure 12). Off, unpacking happens after the whole message.
	SegmentUnpack bool

	// ListPost posts Multi-W descriptor batches with one list operation
	// (Figure 13). Off, each descriptor is posted individually.
	ListPost bool

	// RegCache enables the pin-down caches for user and staging buffers.
	// Off, every registration is paid on every operation (Figure 14).
	RegCache bool

	// RegCacheCapacity is each pin-down cache's idle-pinned-bytes limit.
	RegCacheCapacity int64

	// TypeProcBase and TypeProcPerRun model datatype-processing overhead on
	// top of raw copy cost — the reason Manual packing slightly beats the
	// Datatype scheme in the paper's Figure 2.
	TypeProcBase   simtime.Duration
	TypeProcPerRun simtime.Duration

	// AutoBlockThreshold: with SchemeAuto, if both sides' average contiguous
	// run reaches this many bytes, Multi-W is chosen (the "several KBytes"
	// rule of Section 6).
	AutoBlockThreshold int64

	// AutoGatherThreshold: with SchemeAuto, the smallest sender-side average
	// run for which RDMA gather (RWG-UP) still beats packing.
	AutoGatherThreshold int64

	// BuffersReused hints that applications reuse communication buffers, so
	// user-buffer registration amortizes (the MPI_Info hint of Section 6).
	// When false, SchemeAuto avoids the copy-reduced schemes.
	BuffersReused bool

	// Selector, when set and Scheme is SchemeAuto, replaces the static
	// threshold heuristic with measurement-driven per-message selection
	// (internal/tuner). The selector chooses among the eligible schemes for
	// each message shape and receives the measured completion latency of
	// every transfer it decided. Implementations must be concurrency-safe on
	// the real-time backend.
	Selector SchemeSelector

	// FaultRetryLimit bounds how many times a transient injected fault
	// (descriptor post failure, error CQE, registration failure) is retried
	// before the operation is treated as permanently failed.
	FaultRetryLimit int

	// FaultRetryBase is the first retry backoff; each further retry doubles
	// it (bounded exponential backoff in virtual time).
	FaultRetryBase simtime.Duration

	// Tracer, when set, receives per-message protocol spans (RTS → CTS →
	// segments → done) on the msg lane. Nil disables span recording at zero
	// cost. The Recorder is concurrency-safe, so one may be shared by every
	// rank of the real-time backend.
	Tracer *trace.Recorder

	// Metrics, when set, receives latency/bandwidth histograms per
	// scheme × message-size class and pool/registration occupancy gauges.
	Metrics *stats.Registry

	// TraceClock overrides the timestamp source for spans and histograms.
	// The sim backend leaves it nil (virtual engine time); the real-time
	// backend supplies wall-clock nanoseconds so spans measure real elapsed
	// time rather than the per-node virtual cost model.
	TraceClock func() simtime.Time

	// PackWorkers is the parallel segment engine's worker count: each
	// pack/unpack step splits its copies across up to this many shards.
	// <= 1 keeps the serial engine (the pre-parallel behavior, bit for
	// bit).
	PackWorkers int

	// PackExecutor runs the worker shards. Nil (or pack.SerialExec on the
	// simulator) keeps execution single-threaded and deterministic while
	// the cost model still prices the fan-out; the real-time backend
	// installs pack.GoExec for real goroutine workers.
	PackExecutor pack.Executor

	// ParShardBytes is the minimum bytes per worker shard
	// (0 = pack.DefaultMinShard). Steps smaller than twice this never
	// fan out.
	ParShardBytes int64

	// PostBatch is the doorbell batch for segmented schemes: BC-SPUP
	// acquires up to this many pool slots, packs them as one parallel
	// step, and posts their descriptors with a single list post. <= 1
	// keeps per-segment posting. The effective batch is clamped to the
	// fabric's Model.MaxPostBatch.
	PostBatch int

	// PoolShards shards each staging pool by slot size class: shard 0
	// holds SegmentSize slots, each further shard halves the slot size.
	// 1 keeps the single-class pool. Sharding cuts contention when
	// concurrent messages want different segment sizes.
	PoolShards int

	// InterpretedPack disables the compiled layout programs: every pack,
	// unpack and layout walk goes through the interpreted datatype.Cursor,
	// as before the datatype compiler existed. The compiled and interpreted
	// paths emit identical run sequences — identical staging bytes and
	// identical virtual cost — so this switch exists for conformance A/B
	// comparison and as an escape hatch, not as a semantic knob.
	InterpretedPack bool

	// QoS enables service mode: traffic-class lanes with per-peer
	// flow-control windows over bulk descriptor posting, and admission
	// control that parks or rejects new bulk transfers while segment-pool or
	// registration budgets are tight (internal/qos). Nil disables the whole
	// layer — posting and admission behave exactly as without it.
	QoS *qos.Policy
}

// DefaultConfig returns the paper's implementation parameters.
func DefaultConfig() Config {
	return Config{
		Scheme:              SchemeBCSPUP,
		EagerThreshold:      8 << 10,
		SegmentSize:         128 << 10,
		MinSegmented:        16 << 10,
		PoolSize:            20 << 20,
		UsePools:            true,
		SegmentUnpack:       true,
		ListPost:            true,
		RegCache:            true,
		RegCacheCapacity:    64 << 20,
		TypeProcBase:        300 * simtime.Nanosecond,
		TypeProcPerRun:      25 * simtime.Nanosecond,
		AutoBlockThreshold:  4 << 10,
		AutoGatherThreshold: 256,
		BuffersReused:       true,
		FaultRetryLimit:     6,
		FaultRetryBase:      5 * simtime.Microsecond,
		PackWorkers:         1,
		PostBatch:           1,
		PoolShards:          1,
	}
}

// retryBackoff returns the backoff before retry number attempt (1-based):
// FaultRetryBase doubled per retry, capped at one millisecond.
func (c *Config) retryBackoff(attempt int) simtime.Duration {
	d := c.FaultRetryBase
	if d <= 0 {
		d = 5 * simtime.Microsecond
	}
	for i := 1; i < attempt && d < simtime.Millisecond; i++ {
		d *= 2
	}
	return d
}

// segSizeFor picks the segment size for a message: at least two segments
// once the message reaches MinSegmented, capped at SegmentSize (Section 7.2).
func (c *Config) segSizeFor(size int64) int64 {
	if size < c.MinSegmented {
		return size
	}
	seg := c.SegmentSize
	for seg > 8<<10 && size < 2*seg {
		seg /= 2
	}
	return seg
}

// packCost prices a pack or unpack of the given bytes spread over runs,
// including datatype-processing overhead.
func (c *Config) packCost(m *verbs.Model, bytes int64, runs int) simtime.Duration {
	return m.CopyTime(bytes, runs) + c.TypeProcBase + simtime.Duration(runs)*c.TypeProcPerRun
}

// parPackCost prices a parallel pack/unpack step: the slowest shard's copy
// time (workers run concurrently), full datatype-processing overhead (the
// cursor walk stays sequential), and a per-shard fan-out charge. With one
// shard it equals packCost exactly, so worker count never perturbs the
// serial schemes' virtual timing.
func (c *Config) parPackCost(m *verbs.Model, st pack.ParStats) simtime.Duration {
	if len(st.Shards) <= 1 {
		return c.packCost(m, st.Bytes, st.Runs)
	}
	var slowest simtime.Duration
	for _, sh := range st.Shards {
		if d := m.CopyTime(sh.Bytes, sh.Runs); d > slowest {
			slowest = d
		}
	}
	return slowest + c.TypeProcBase + simtime.Duration(st.Runs)*c.TypeProcPerRun +
		simtime.Duration(len(st.Shards))*m.ParallelFanOut
}

// par returns the pack engine configuration for this endpoint.
func (c *Config) par() pack.Par {
	return pack.Par{Workers: c.PackWorkers, Exec: c.PackExecutor, MinShard: c.ParShardBytes}
}

// postBatchLimit returns the effective descriptors-per-doorbell batch,
// clamping PostBatch to the fabric's list-post limit.
func (c *Config) postBatchLimit(m *verbs.Model) int {
	b := c.PostBatch
	if b < 1 {
		b = 1
	}
	if m.MaxPostBatch > 0 && b > m.MaxPostBatch {
		b = m.MaxPostBatch
	}
	return b
}
