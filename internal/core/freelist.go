package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/verbs"
)

// Allocation discipline for the warm rendezvous path (DESIGN.md §16).
//
// Every per-message object the protocol needs — the send/recv state machines,
// their RDMA descriptor and scatter/gather arenas, announce slots, eager frame
// buffers — is drawn from an endpoint-owned free-list and returned when the
// message retires, so a warm endpoint moves messages without allocating.
// The lists are plain slices, not sync.Pools: a GC cycle must not be able to
// empty them, or allocs/op would become nondeterministic and the perf gate
// (cmd/perfgate) could not pin it.
//
// Ownership protocol:
//
//   - An op is LIVE from getSendOp/getRecvOp until recycle. It is ACTIVE
//     while linked into its peer's table (addSendOp .. removeSendOp).
//   - finishSend/finishRecv and finalizeSendAbort/finalizeRecvAbort unlink
//     the op and call retireSend/retireRecv exactly once.
//   - Continuations that can fire after the op retires (announce closures,
//     admission parking, pool waiters, registration callbacks, deferred
//     unpack completions) PIN the op before capture and unpin when they run;
//     descriptor completions need no pin because op.wrsLeft > 0 already
//     blocks finalization. A retired op recycles when its last pin drops.
//   - recycle resets every field but keeps slice and arena capacity, so the
//     next message on this endpoint reuses the same backing memory.

// peerState shards the endpoint's per-peer protocol state: the active send
// and receive ops for that peer (small slices — linear scan and swap-delete
// stay allocation-free where map inserts do not) and the announce order.
type peerState struct {
	sends []*sendOp
	recvs []*recvOp
	ann   annQueue
}

// peer returns (lazily creating) the state shard for peer id. Shards are
// pointer-stable once created.
func (ep *Endpoint) peer(id int) *peerState {
	for id >= len(ep.peers) {
		ep.peers = append(ep.peers, nil)
	}
	p := ep.peers[id]
	if p == nil {
		p = &peerState{}
		ep.peers[id] = p
	}
	return p
}

// --- Active-op tables ---------------------------------------------------------

func (ep *Endpoint) addSendOp(op *sendOp) {
	p := ep.peer(op.dst)
	p.sends = append(p.sends, op)
	ep.activeSends++
}

func (ep *Endpoint) lookupSendOp(dst int, id uint32) *sendOp {
	if dst < 0 || dst >= len(ep.peers) || ep.peers[dst] == nil {
		return nil
	}
	for _, op := range ep.peers[dst].sends {
		if op.id == id {
			return op
		}
	}
	return nil
}

// removeSendOp unlinks op from its peer table; it reports false when the op
// was already unlinked, making finalization idempotent.
func (ep *Endpoint) removeSendOp(op *sendOp) bool {
	if op.dst < 0 || op.dst >= len(ep.peers) || ep.peers[op.dst] == nil {
		return false
	}
	s := ep.peers[op.dst].sends
	for i, o := range s {
		if o == op {
			last := len(s) - 1
			s[i] = s[last]
			s[last] = nil
			ep.peers[op.dst].sends = s[:last]
			ep.activeSends--
			return true
		}
	}
	return false
}

func (ep *Endpoint) addRecvOp(op *recvOp) {
	p := ep.peer(op.key.src)
	p.recvs = append(p.recvs, op)
	ep.activeRecvs++
}

func (ep *Endpoint) lookupRecvOp(src int, id uint32) *recvOp {
	if src < 0 || src >= len(ep.peers) || ep.peers[src] == nil {
		return nil
	}
	for _, op := range ep.peers[src].recvs {
		if op.key.op == id {
			return op
		}
	}
	return nil
}

// removeRecvOp unlinks op from its peer table; it reports false when the op
// was already unlinked.
func (ep *Endpoint) removeRecvOp(op *recvOp) bool {
	src := op.key.src
	if src < 0 || src >= len(ep.peers) || ep.peers[src] == nil {
		return false
	}
	s := ep.peers[src].recvs
	for i, o := range s {
		if o == op {
			last := len(s) - 1
			s[i] = s[last]
			s[last] = nil
			ep.peers[src].recvs = s[:last]
			ep.activeRecvs--
			return true
		}
	}
	return false
}

// --- Op free-lists and pinning ------------------------------------------------

func (ep *Endpoint) getSendOp() *sendOp {
	ep.liveSend++
	if n := len(ep.sendFree); n > 0 {
		op := ep.sendFree[n-1]
		ep.sendFree[n-1] = nil
		ep.sendFree = ep.sendFree[:n-1]
		return op
	}
	return &sendOp{}
}

func (ep *Endpoint) getRecvOp() *recvOp {
	ep.liveRecv++
	if n := len(ep.recvFree); n > 0 {
		op := ep.recvFree[n-1]
		ep.recvFree[n-1] = nil
		ep.recvFree = ep.recvFree[:n-1]
		return op
	}
	return &recvOp{}
}

// pinSend keeps op's state alive for a continuation that may fire after the
// op retires. Every pin must be balanced by exactly one unpinSend.
func (ep *Endpoint) pinSend(op *sendOp) { op.pins++ }

// unpinSend drops one pin; the last pin off a retired op recycles it.
func (ep *Endpoint) unpinSend(op *sendOp) {
	op.pins--
	if op.pins < 0 {
		panic("core: sendOp unpin without pin")
	}
	if op.pins == 0 && op.retired {
		ep.recycleSend(op)
	}
}

// pinRecv is pinSend for receiver-side ops.
func (ep *Endpoint) pinRecv(op *recvOp) { op.pins++ }

// unpinRecv drops one pin; the last pin off a retired op recycles it.
func (ep *Endpoint) unpinRecv(op *recvOp) {
	op.pins--
	if op.pins < 0 {
		panic("core: recvOp unpin without pin")
	}
	if op.pins == 0 && op.retired {
		ep.recycleRecv(op)
	}
}

// retireSend marks an unlinked op done with the protocol; it recycles now or
// when the last outstanding pin drops.
func (ep *Endpoint) retireSend(op *sendOp) {
	if op.retired {
		panic("core: sendOp retired twice")
	}
	op.retired = true
	if op.pins == 0 {
		ep.recycleSend(op)
	}
}

// retireRecv is retireSend for receiver-side ops.
func (ep *Endpoint) retireRecv(op *recvOp) {
	if op.retired {
		panic("core: recvOp retired twice")
	}
	op.retired = true
	if op.pins == 0 {
		ep.recycleRecv(op)
	}
}

func (ep *Endpoint) recycleSend(op *sendOp) {
	ep.liveSend--
	op.wrs.reset()
	for i := range op.groups {
		op.groups[i] = nil
	}
	for i := range op.regions {
		op.regions[i] = nil
	}
	for i := range op.segs {
		op.segs[i] = segRes{}
	}
	for i := range op.segScratch {
		op.segScratch[i] = seg{}
	}
	*op = sendOp{
		wrs:        op.wrs,
		groups:     op.groups[:0],
		regions:    op.regions[:0],
		refs:       op.refs[:0],
		segs:       op.segs[:0],
		segScratch: op.segScratch[:0],
		ctsSegs:    op.ctsSegs[:0],
		ctsRegs:    op.ctsRegs[:0],
	}
	ep.sendFree = append(ep.sendFree, op)
}

func (ep *Endpoint) recycleRecv(op *recvOp) {
	ep.liveRecv--
	op.wrs.reset()
	for i := range op.regions {
		op.regions[i] = nil
	}
	for i := range op.segs {
		op.segs[i] = segRes{}
	}
	*op = recvOp{
		wrs:     op.wrs,
		regions: op.regions[:0],
		refs:    op.refs[:0],
		segs:    op.segs[:0],
		ctsRefs: op.ctsRefs[:0],
	}
	ep.recvFree = append(ep.recvFree, op)
}

// PoolStats reports the endpoint's warm-path free-list accounting. At world
// quiescence — every request completed or aborted, all fabric events drained —
// the live counts must be zero and every op must have returned to its
// free-list; the abort-path soak tests assert exactly that.
type PoolStats struct {
	// LiveSendOps / LiveRecvOps count ops handed out and not yet recycled
	// (active, or retired but still pinned by an outstanding continuation).
	LiveSendOps int
	LiveRecvOps int
	// FreeSendOps / FreeRecvOps count ops parked on the free-lists.
	FreeSendOps int
	FreeRecvOps int
	// ActiveSends / ActiveRecvs count ops currently linked in the per-peer
	// tables (the admission gate's notion of "active").
	ActiveSends int
	ActiveRecvs int
}

// PoolStats returns the current free-list accounting snapshot.
func (ep *Endpoint) PoolStats() PoolStats {
	return PoolStats{
		LiveSendOps: ep.liveSend,
		LiveRecvOps: ep.liveRecv,
		FreeSendOps: len(ep.sendFree),
		FreeRecvOps: len(ep.recvFree),
		ActiveSends: ep.activeSends,
		ActiveRecvs: ep.activeRecvs,
	}
}

// --- Descriptor arena ---------------------------------------------------------

// wrSet is an op-owned descriptor arena: chunkWRs and the single-descriptor
// builders append into it and hand out windows, so the warm path builds WR
// and SGE lists without allocating. The arena only resets at op recycle —
// posted descriptors (and, on the real-time fabric, the responder goroutine
// reading them) may reference its backing arrays until the op's last
// completion, which finalization already waits for (wrsLeft == 0).
type wrSet struct {
	wrs []verbs.SendWR
	sge []verbs.SGE
}

func (s *wrSet) reset() {
	for i := range s.wrs {
		s.wrs[i] = verbs.SendWR{}
	}
	s.wrs = s.wrs[:0]
	s.sge = s.sge[:0]
}

// sgl1 appends a single SGE and returns its sealed one-element gather list.
func (s *wrSet) sgl1(e verbs.SGE) []verbs.SGE {
	start := len(s.sge)
	s.sge = append(s.sge, e)
	return s.sge[start:len(s.sge):len(s.sge)]
}

// one appends a single-SGE write-with-immediate descriptor and returns its
// one-element window (the shape postWRs consumes).
func (s *wrSet) one(opc verbs.Opcode, e verbs.SGE, rAddr mem.Addr, rKey, imm uint32) []verbs.SendWR {
	sgl := s.sgl1(e)
	w := len(s.wrs)
	s.wrs = append(s.wrs, verbs.SendWR{Op: opc, SGL: sgl, RemoteAddr: rAddr, RKey: rKey, Imm: imm})
	return s.wrs[w : w+1 : w+1]
}

// --- Eager frame buffers ------------------------------------------------------

// maxBufFree bounds the eager frame free-list so a burst of huge eager
// messages does not pin their buffers forever.
const maxBufFree = 32

// getBuf returns a length-n byte buffer, reusing free-list capacity when a
// large enough buffer is parked there.
func (ep *Endpoint) getBuf(n int64) []byte {
	for i := len(ep.bufFree) - 1; i >= 0; i-- {
		b := ep.bufFree[i]
		if int64(cap(b)) >= n {
			last := len(ep.bufFree) - 1
			ep.bufFree[i] = ep.bufFree[last]
			ep.bufFree[last] = nil
			ep.bufFree = ep.bufFree[:last]
			return b[:n]
		}
	}
	return make([]byte, n)
}

// putBuf parks a buffer for reuse once the fabric no longer references it
// (the Inline payload is copied synchronously by every backend's PostSend).
func (ep *Endpoint) putBuf(b []byte) {
	if cap(b) == 0 || len(ep.bufFree) >= maxBufFree {
		return
	}
	ep.bufFree = append(ep.bufFree, b)
}

// --- Announce slots -----------------------------------------------------------

func (ep *Endpoint) getAnnSlot() *annSlot {
	if n := len(ep.annFree); n > 0 {
		s := ep.annFree[n-1]
		ep.annFree[n-1] = nil
		ep.annFree = ep.annFree[:n-1]
		return s
	}
	return &annSlot{}
}

func (ep *Endpoint) putAnnSlot(s *annSlot) {
	s.ready, s.fn = false, nil
	ep.annFree = append(ep.annFree, s)
}

// --- Control scratch ----------------------------------------------------------

// ctrlW hands out the endpoint's reusable control-frame writer. Safe for any
// build-then-sendCtrl sequence that completes synchronously (every backend
// copies Inline before PostSend returns); frames that are built now but
// posted later (eager payloads riding the announce queue) must use getBuf
// instead.
func (ep *Endpoint) ctrlW() *ctrlWriter {
	ep.ctrlw.buf = ep.ctrlw.buf[:0]
	return &ep.ctrlw
}

// poolStatsString formats the free-list accounting for DebugState's stall
// diagnosis output.
func (ep *Endpoint) poolStatsString() string {
	return fmt.Sprintf("liveOps(send=%d recv=%d) freeOps(send=%d recv=%d)",
		ep.liveSend, ep.liveRecv, len(ep.sendFree), len(ep.recvFree))
}
