package core

import (
	"sync/atomic"

	"repro/internal/qos"
	"repro/internal/verbs"
)

// Service-mode glue: how the endpoint drives internal/qos.
//
// Lanes gate individual data-descriptor posts (the Arbiter's per-peer
// windows); admission gates whole transfers (the Gate's pressure tests).
// Both sit above the verbs boundary and below the protocol handshake, so
// control traffic — eager payloads, RTS/CTS, failure notices — is never
// delayed and announce order (MPI's non-overtaking guarantee) is never
// perturbed: admission applies only to the data phase, after the RTS has
// been matched, where stalling is exactly the paper's Section 4.3.3
// "stall until buffers are available" policy.
//
// Fault mode bypasses the lane arbiter: postRetry needs synchronous post
// errors to drive its retry loop, and injection runs already serialize
// posting for order safety. faultMode() is fixed per run, so charge and
// release stay paired. The admission gate stays active under faults — it
// defers whole transfers before any descriptor exists, which retries never
// see.

// laneFor maps a transfer's effective size to its traffic class.
func (ep *Endpoint) laneFor(bytes int64) qos.Lane {
	if ep.lanes == nil {
		return qos.LaneLatency
	}
	return ep.qosPol.ClassOf(bytes)
}

// wrPayload sums a descriptor's gather-list bytes (its window charge).
func wrPayload(wr *verbs.SendWR) int64 {
	var n int64
	for _, s := range wr.SGL {
		n += s.Len
	}
	return n
}

// submitLane offers one post unit (descs descriptors, bytes payload) for dst
// to the lane arbiter; grant runs when the unit is admitted — immediately
// with QoS off or fault injection on. Every grant must eventually return its
// charge through laneRelease.
func (ep *Endpoint) submitLane(dst int, lane qos.Lane, descs int, bytes int64, grant func()) {
	if ep.lanes == nil || ep.faultMode() {
		grant()
		return
	}
	busy := ep.lanes.Queued(dst) > 0
	if ep.lanes.Submit(dst, lane, descs, bytes, grant) {
		atomic.AddInt64(&ep.ctr.QoSLaneDeferrals, 1)
	} else if lane == qos.LaneLatency && busy {
		atomic.AddInt64(&ep.ctr.QoSLaneBypass, 1)
	}
}

// laneRelease returns a granted unit's window charge (credit return),
// draining dst's deferred bulk queue. Mirrors submitLane's bypass
// conditions exactly so charges stay balanced.
func (ep *Endpoint) laneRelease(dst int, descs int, bytes int64) {
	if ep.lanes == nil || ep.faultMode() {
		return
	}
	ep.lanes.Release(dst, descs, bytes)
}

// laneChunkLimit bounds a bulk doorbell batch at the descriptor window, so
// one bulk list post never occupies more of the send queue than a window's
// worth — the mechanism that keeps eager sends from waiting behind a whole
// Multi-W flood on the real-time backend.
func (ep *Endpoint) laneChunkLimit(lane qos.Lane) int {
	limit := ep.model.MaxPostBatch
	if ep.lanes == nil || ep.faultMode() || lane != qos.LaneBulk {
		return limit
	}
	if w := ep.qosPol.DescWindow; w > 0 && (limit <= 0 || w < limit) {
		return w
	}
	return limit
}

// qosPressure builds the live resource snapshot admission reads: the given
// staging pool's occupancy, the endpoint's pinned pages, and how many
// transfers are still active to release them. The self flag excludes the op
// currently asking for admission until it actually parks (after which
// Parked() accounts for it), so a lone transfer on an idle endpoint is
// force-admitted rather than parked forever.
func (ep *Endpoint) qosPressure(pool *segPool, parkedSelf *bool) func() qos.Pressure {
	return func() qos.Pressure {
		active := ep.activeSends + ep.activeRecvs - ep.gate.Parked()
		if !*parkedSelf {
			active--
		}
		return qos.Pressure{
			FreeSlots:   pool.available(),
			PoolWaiters: pool.pendingWaiters(),
			RegPages:    atomic.LoadInt64(&ep.ctr.RegisteredPages) - atomic.LoadInt64(&ep.ctr.DeregisteredPages),
			ActiveOps:   active,
		}
	}
}

// qosAdmit runs the shared admission state machine for one transfer's data
// phase: run immediately on admit, park with trace instants and a resume
// span otherwise, fail the op with qos.ErrRejected when the parking lot is
// full. done runs exactly once when the admission decision has fully played
// out (the parked closure ran or was abandoned, or the transfer was
// rejected) — admitSend/admitRecv pass the op unpin there, since a parked
// closure can outlive an abort and must not touch a recycled op.
func (ep *Endpoint) qosAdmit(lane qos.Lane, opID uint32, bytes int64, pool *segPool,
	dead func() bool, run func(), fail func(error), done func()) {

	parked := false
	t0 := ep.tnow()
	wrapped := func() {
		defer done()
		if dead() {
			return // aborted while parked; teardown owns the op now
		}
		if parked {
			ep.mark("qos-resume", "qos", opID)
			ep.span("qos parked", "qos", opID, bytes, t0)
			ep.qosParkHist().Observe(int64(ep.tnow().Sub(t0)))
		}
		run()
	}
	switch ep.gate.Admit(lane, ep.qosPressure(pool, &parked), wrapped) {
	case qos.Admit:
		if lane == qos.LaneBulk {
			atomic.AddInt64(&ep.ctr.QoSAdmitted, 1)
		}
	case qos.Park:
		parked = true
		atomic.AddInt64(&ep.ctr.QoSParked, 1)
		ep.mark("qos-park", "qos", opID)
	case qos.Reject:
		atomic.AddInt64(&ep.ctr.QoSRejected, 1)
		ep.mark("qos-reject", "qos", opID)
		done()
		fail(qos.ErrRejected)
	}
}

// admitRecv gates the receiver's scheme setup (segment allocation, user
// registration, the CTS) behind admission control. Parking here delays only
// the CTS; the sender's RTS is already matched, so MPI ordering is intact.
// The op is pinned until the admission decision resolves.
func (ep *Endpoint) admitRecv(op *recvOp, run func()) {
	if ep.gate == nil {
		run()
		return
	}
	ep.pinRecv(op)
	ep.qosAdmit(ep.laneFor(op.eff), op.key.op, op.eff, ep.unpackPool,
		func() bool { return op.failed }, run,
		func(err error) { ep.abortRecv(op, err, true) },
		func() { ep.unpinRecv(op) })
}

// admitSend gates the sender's data movement (pack, registration, descriptor
// posting) behind admission control once the CTS has arrived. The op is
// pinned until the admission decision resolves.
func (ep *Endpoint) admitSend(op *sendOp, run func()) {
	if ep.gate == nil {
		run()
		return
	}
	ep.pinSend(op)
	ep.qosAdmit(ep.laneFor(op.eff), op.id, op.eff, ep.packPool,
		func() bool { return op.failed }, run,
		func(err error) { ep.abortSend(op, err) },
		func() { ep.unpinSend(op) })
}

// qosDrain re-evaluates parked transfers. Called wherever admission pressure
// releases: staging slots returning, registrations dropping, transfers
// finishing or aborting.
func (ep *Endpoint) qosDrain() {
	if ep.gate != nil {
		ep.gate.Drain()
	}
}
