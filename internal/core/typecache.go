package core

import (
	"repro/internal/datatype"
)

// typeRegistry assigns rank-local indices to committed datatypes. Indices
// are reused after FreeType, with a version bump so remote layout caches can
// detect staleness (Section 5.4.2).
type typeRegistry struct {
	idxOf   map[*datatype.Type]int
	types   []*datatype.Type // by index; nil when freed
	vers    []uint32         // by index
	freeIdx []int
}

func newTypeRegistry() *typeRegistry {
	return &typeRegistry{idxOf: make(map[*datatype.Type]int)}
}

// commit returns the type's index, assigning one on first use.
func (tr *typeRegistry) commit(t *datatype.Type) int {
	if idx, ok := tr.idxOf[t]; ok {
		return idx
	}
	var idx int
	if n := len(tr.freeIdx); n > 0 {
		idx = tr.freeIdx[n-1]
		tr.freeIdx = tr.freeIdx[:n-1]
		tr.vers[idx]++ // index reuse: bump version
		tr.types[idx] = t
	} else {
		idx = len(tr.types)
		tr.types = append(tr.types, t)
		tr.vers = append(tr.vers, 0)
	}
	tr.idxOf[t] = idx
	return idx
}

// version returns the current version of an index.
func (tr *typeRegistry) version(idx int) uint32 { return tr.vers[idx] }

// free releases a type's index for reuse. Freeing an uncommitted type is a
// no-op, matching MPI_Type_free's tolerance of any committed handle.
func (tr *typeRegistry) free(t *datatype.Type) {
	idx, ok := tr.idxOf[t]
	if !ok {
		return
	}
	delete(tr.idxOf, t)
	tr.types[idx] = nil
	tr.freeIdx = append(tr.freeIdx, idx)
}

// progKey identifies a compiled layout program: the rank-local type index,
// the index's version (so index reuse after FreeType can never resurrect a
// stale program), and the instance count. Counts are cached exactly — the
// count-classes of interest (1 and the application's steady-state counts)
// are few, and an exact key keeps programs byte-exact replays.
type progKey struct {
	idx   int
	ver   uint32
	count int
}

// progCacheCap bounds the per-endpoint program cache; on overflow the whole
// epoch is dropped (programs recompile on demand, off the per-pack hot
// path).
const progCacheCap = 1024

// programCache memoizes datatype.Compile per endpoint so recompilation
// never sits on the pack hot path. Entries are invalidated implicitly by
// the (idx, version) key when a type index is reused.
type programCache struct {
	m map[progKey]*datatype.Program
}

func newProgramCache() *programCache {
	return &programCache{m: make(map[progKey]*datatype.Program)}
}

// get returns the cached program for (idx, ver, count), or nil.
func (pc *programCache) get(k progKey) *datatype.Program { return pc.m[k] }

// put caches a program, clearing the epoch first when at capacity.
func (pc *programCache) put(k progKey, p *datatype.Program) {
	if len(pc.m) >= progCacheCap {
		pc.m = make(map[progKey]*datatype.Program)
	}
	pc.m[k] = p
}

// layoutKey identifies a peer's datatype in the layout caches.
type layoutKey struct {
	peer int
	idx  int
}

// cachedLayout is a sender-side cache entry: a peer's datatype layout as
// received in a rendezvous reply.
type cachedLayout struct {
	version uint32
	t       *datatype.Type
}

// layoutCache holds both directions of the Multi-W datatype exchange:
//
//   - sent: receiver side — the version of each (peer, index) layout this
//     rank has already shipped, so each layout travels once (Träff's cache),
//   - got: sender side — decoded layouts received from peers, replaced when
//     a version bump reveals index reuse.
type layoutCache struct {
	sent map[layoutKey]uint32
	got  map[layoutKey]*cachedLayout
}

func newLayoutCache() *layoutCache {
	return &layoutCache{
		sent: make(map[layoutKey]uint32),
		got:  make(map[layoutKey]*cachedLayout),
	}
}

// needSend reports whether this rank must include the full layout when
// replying to peer with (idx, version), and records it as sent.
func (lc *layoutCache) needSend(peer, idx int, version uint32) bool {
	k := layoutKey{peer, idx}
	v, ok := lc.sent[k]
	if ok && v == version {
		return false
	}
	lc.sent[k] = version
	return true
}

// lookup returns the cached layout for (peer, idx) if its version matches.
func (lc *layoutCache) lookup(peer, idx int, version uint32) (*datatype.Type, bool) {
	e, ok := lc.got[layoutKey{peer, idx}]
	if !ok || e.version != version {
		return nil, false
	}
	return e.t, true
}

// store records (replacing any stale version) a layout received from peer.
func (lc *layoutCache) store(peer, idx int, version uint32, t *datatype.Type) {
	lc.got[layoutKey{peer, idx}] = &cachedLayout{version: version, t: t}
}
