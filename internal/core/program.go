package core

import (
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/pack"
)

// This file wires the datatype compiler into the endpoint: every layout walk
// the schemes perform — serial pack/unpack, parallel segment collection,
// WR chunking, OGR block enumeration, scheme-selection layout summaries —
// goes through a compiled program cached per (type index, version, count).
// Config.InterpretedPack reverts every helper to the interpreted cursor.

// regFlattenLimit caps the run enumeration a user-buffer registration pays.
// A message with more maximal runs than this registers its whole covering
// span instead (explicit truncation handling: one conservative region,
// never a silently incomplete region set).
const regFlattenLimit = 1 << 20

// summaryFlattenLimit caps the layout walk behind scheme selection and RTS
// metadata, matching the historical LayoutStats(…, 4096) sample; truncated
// samples are now extrapolated explicitly instead of passing as exact.
const summaryFlattenLimit = 4096

// programFor returns the cached compiled layout program for (t, count),
// compiling and caching on first use. It returns nil when the compiled path
// is disabled by Config.InterpretedPack.
func (ep *Endpoint) programFor(t *datatype.Type, count int) *datatype.Program {
	if ep.cfg.InterpretedPack {
		return nil
	}
	idx := ep.types.commit(t)
	k := progKey{idx: idx, ver: ep.types.version(idx), count: count}
	if p := ep.progs.get(k); p != nil {
		return p
	}
	p := datatype.Compile(t, count)
	ep.progs.put(k, p)
	return p
}

// walkerFor returns a run walker over (t, count): a compiled program cursor,
// or the interpreted cursor when compilation is disabled.
func (ep *Endpoint) walkerFor(t *datatype.Type, count int) datatype.RunWalker {
	if p := ep.programFor(t, count); p != nil {
		return p.Cursor()
	}
	return datatype.NewCursor(t, count)
}

// newPacker builds a serial packer over a message in this rank's memory,
// compiled when possible.
func (ep *Endpoint) newPacker(base mem.Addr, t *datatype.Type, count int) *pack.Packer {
	if p := ep.programFor(t, count); p != nil {
		return pack.NewProgramPacker(ep.memory, base, p)
	}
	return pack.NewPacker(ep.memory, base, t, count)
}

// newUnpacker builds a serial unpacker over a message in this rank's memory,
// compiled when possible.
func (ep *Endpoint) newUnpacker(base mem.Addr, t *datatype.Type, count int) *pack.Unpacker {
	if p := ep.programFor(t, count); p != nil {
		return pack.NewProgramUnpacker(ep.memory, base, p)
	}
	return pack.NewUnpacker(ep.memory, base, t, count)
}

// newParallelPacker builds a parallel packer over a message, compiled when
// possible, configured from the endpoint's parallel-engine settings.
func (ep *Endpoint) newParallelPacker(base mem.Addr, t *datatype.Type, count int) *pack.ParallelPacker {
	if p := ep.programFor(t, count); p != nil {
		return pack.NewParallelProgramPacker(ep.memory, base, p, ep.cfg.par())
	}
	return pack.NewParallelPacker(ep.memory, base, t, count, ep.cfg.par())
}

// newParallelUnpacker builds a parallel unpacker over a message, compiled
// when possible, configured from the endpoint's parallel-engine settings.
func (ep *Endpoint) newParallelUnpacker(base mem.Addr, t *datatype.Type, count int) *pack.ParallelUnpacker {
	if p := ep.programFor(t, count); p != nil {
		return pack.NewParallelProgramUnpacker(ep.memory, base, p, ep.cfg.par())
	}
	return pack.NewParallelUnpacker(ep.memory, base, t, count, ep.cfg.par())
}

// messageBlocks enumerates the contiguous blocks of a message for
// registration, from the compiled program when available. The second result
// reports whether the program already guarantees non-decreasing address
// order (the sort in GroupRegions can be skipped). A message with more than
// regFlattenLimit runs degrades explicitly to its single covering span.
func (ep *Endpoint) messageBlocks(buf mem.Addr, t *datatype.Type, count int) ([]mem.Block, bool) {
	var blocks []mem.Block
	var trunc bool
	sorted := false
	if p := ep.programFor(t, count); p != nil {
		blocks, trunc = pack.ProgramBlocks(buf, p, regFlattenLimit)
		sorted = p.Ascending() && !trunc
	} else {
		blocks, trunc = pack.MessageBlocks(buf, t, count, regFlattenLimit)
	}
	if trunc {
		// Truncated flatten: never hand an incomplete block set to OGR.
		// Cover the whole true span of the message in one region instead.
		span := t.TrueExtent() + int64(count-1)*t.Extent()
		lo := int64(buf) + t.TrueLB()
		return []mem.Block{{Addr: mem.Addr(lo), Len: span}}, false
	}
	return blocks, sorted
}

// layoutSummary returns the maximal-run count and average run length of a
// message, the numbers scheme selection and RTS metadata carry. Canonical
// programs answer exactly with no walk; generic shapes pay a bounded sample
// walk, explicitly extrapolated when truncated rather than silently passed
// off as the full layout.
func (ep *Endpoint) layoutSummary(t *datatype.Type, count int) (runs int64, avg int64) {
	if p := ep.programFor(t, count); p != nil && p.Kind() != datatype.ProgGeneric {
		runs = p.Runs()
		if runs > 0 {
			avg = int64(float64(p.Bytes()) / float64(runs))
		}
		return runs, avg
	}
	stats := datatype.LayoutStats(t, count, summaryFlattenLimit)
	stats = stats.Extrapolate(t.Size() * int64(count))
	return stats.Runs, int64(stats.AvgRun)
}
