package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/datatype"
	"repro/internal/ib"
	"repro/internal/mem"
	"repro/internal/pack"
	"repro/internal/simtime"
)

type testWorld struct {
	eng *simtime.Engine
	eps []*Endpoint
}

func newTestWorld(t *testing.T, n int, cfg Config, memSize int64) *testWorld {
	t.Helper()
	eng := simtime.NewEngine()
	fab := ib.NewFabric(eng, ib.DefaultModel())
	eps := make([]*Endpoint, n)
	for i := range eps {
		m := mem.NewMemory(fmt.Sprintf("n%d", i), memSize)
		hca := fab.AddHCA(fmt.Sprintf("n%d", i), m, nil)
		ep, err := NewEndpoint(i, hca, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	ConnectPeers(eps)
	return &testWorld{eng: eng, eps: eps}
}

// run spawns one process per rank and runs the simulation to completion.
func (w *testWorld) run(t *testing.T, body func(p *simtime.Process, ep *Endpoint)) {
	t.Helper()
	for _, ep := range w.eps {
		ep := ep
		w.eng.Spawn(fmt.Sprintf("rank%d", ep.Rank()), func(p *simtime.Process) {
			body(p, ep)
		})
	}
	if err := w.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// pattern returns n deterministic bytes.
func pattern(n int64, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*31+7)
	}
	return b
}

// fillMsg writes a pattern into the datatype-covered bytes of a buffer.
func fillMsg(ep *Endpoint, base mem.Addr, dt *datatype.Type, count int, seed byte) []byte {
	data := pattern(dt.Size()*int64(count), seed)
	u := pack.NewUnpacker(ep.Mem(), base, dt, count)
	if n, _ := u.UnpackFrom(data); n != int64(len(data)) {
		panic("fillMsg short")
	}
	return data
}

// readMsg extracts the datatype-covered bytes of a buffer.
func readMsg(ep *Endpoint, base mem.Addr, dt *datatype.Type, count int) []byte {
	out := make([]byte, dt.Size()*int64(count))
	p := pack.NewPacker(ep.Mem(), base, dt, count)
	if n, _ := p.PackTo(out); n != int64(len(out)) {
		panic("readMsg short")
	}
	return out
}

// allocFor allocates a buffer able to hold a (dt, count) message and returns
// the buffer pointer (adjusted so that offset trueLB maps into the
// allocation).
func allocFor(ep *Endpoint, dt *datatype.Type, count int) mem.Addr {
	span := dt.TrueExtent() + int64(count-1)*dt.Extent()
	a := ep.Mem().MustAlloc(span)
	return mem.Addr(int64(a) - dt.TrueLB())
}

var allSchemes = []Scheme{SchemeGeneric, SchemeBCSPUP, SchemeRWGUP, SchemePRRS, SchemeMultiW, SchemeAuto}

// shapes used across the correctness matrix. Sizes are scaled by a count so
// that every shape is exercised in the eager, single-segment rendezvous and
// multi-segment rendezvous regimes.
type shape struct {
	name string
	dt   *datatype.Type
}

func testShapes() []shape {
	vec := datatype.Must(datatype.TypeVector(128, 16, 64, datatype.Int32)) // 8 KB per count
	str := datatype.Must(datatype.TypeStruct(
		[]int{1, 2, 4, 8, 16},
		[]int64{0, 8, 24, 56, 120},
		[]*datatype.Type{datatype.Int32, datatype.Int32, datatype.Int32, datatype.Int32, datatype.Int32},
	)) // 124 B per count with gaps
	idx := datatype.Must(datatype.TypeIndexed(
		[]int{3, 1, 5, 2}, []int{0, 7, 11, 20}, datatype.Float64)) // 88 B per count
	ctg := datatype.Must(datatype.TypeContiguous(256, datatype.Int32)) // 1 KB per count
	return []shape{{"vector", vec}, {"struct", str}, {"indexed", idx}, {"contig", ctg}}
}

func TestSchemesDeliverCorrectData(t *testing.T) {
	counts := []int{1, 40, 160} // spans eager, 1-segment rndv, multi-segment rndv
	for _, scheme := range allSchemes {
		for _, sh := range testShapes() {
			for _, count := range counts {
				name := fmt.Sprintf("%v/%s/count=%d", scheme, sh.name, count)
				t.Run(name, func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.Scheme = scheme
					cfg.PoolSize = 4 << 20
					w := newTestWorld(t, 2, cfg, 48<<20)
					var sent, got []byte
					w.run(t, func(p *simtime.Process, ep *Endpoint) {
						if ep.Rank() == 0 {
							buf := allocFor(ep, sh.dt, count)
							sent = fillMsg(ep, buf, sh.dt, count, 0x5A)
							if err := ep.Send(p, buf, count, sh.dt, 1, 7); err != nil {
								t.Errorf("send: %v", err)
							}
						} else {
							buf := allocFor(ep, sh.dt, count)
							req, err := ep.Recv(p, buf, count, sh.dt, 0, 7)
							if err != nil {
								t.Errorf("recv: %v", err)
							}
							if req.Bytes != sh.dt.Size()*int64(count) {
								t.Errorf("bytes = %d, want %d", req.Bytes, sh.dt.Size()*int64(count))
							}
							got = readMsg(ep, buf, sh.dt, count)
						}
					})
					if !bytes.Equal(sent, got) {
						t.Fatalf("data mismatch: sent %d bytes, got %d bytes equal=%v",
							len(sent), len(got), bytes.Equal(sent, got))
					}
				})
			}
		}
	}
}

// Different layouts on the two sides: sender vector, receiver contiguous and
// vice versa, plus vector-to-struct. Data (in datatype order) must match.
func TestSchemesMixedLayouts(t *testing.T) {
	vec := datatype.Must(datatype.TypeVector(64, 8, 32, datatype.Int32)) // 2 KB
	ctg := datatype.Must(datatype.TypeContiguous(512, datatype.Int32))   // 2 KB
	str := datatype.Must(datatype.TypeStruct(
		[]int{64, 192, 256}, []int64{0, 512, 2048},
		[]*datatype.Type{datatype.Int32, datatype.Int32, datatype.Int32})) // 2 KB
	pairs := []struct {
		name   string
		s, r   *datatype.Type
		sc, rc int
	}{
		{"vec->contig", vec, ctg, 32, 32},
		{"contig->vec", ctg, vec, 32, 32},
		{"vec->struct", vec, str, 32, 32},
		{"struct->vec", str, vec, 32, 32},
	}
	for _, scheme := range allSchemes {
		for _, pr := range pairs {
			t.Run(fmt.Sprintf("%v/%s", scheme, pr.name), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Scheme = scheme
				cfg.PoolSize = 4 << 20
				w := newTestWorld(t, 2, cfg, 48<<20)
				var sent, got []byte
				w.run(t, func(p *simtime.Process, ep *Endpoint) {
					if ep.Rank() == 0 {
						buf := allocFor(ep, pr.s, pr.sc)
						sent = fillMsg(ep, buf, pr.s, pr.sc, 0xC3)
						if err := ep.Send(p, buf, pr.sc, pr.s, 1, 0); err != nil {
							t.Errorf("send: %v", err)
						}
					} else {
						buf := allocFor(ep, pr.r, pr.rc)
						if _, err := ep.Recv(p, buf, pr.rc, pr.r, 0, 0); err != nil {
							t.Errorf("recv: %v", err)
						}
						got = readMsg(ep, buf, pr.r, pr.rc)
					}
				})
				if !bytes.Equal(sent, got) {
					t.Fatal("mixed-layout data mismatch")
				}
			})
		}
	}
}

// Scheme contracts, verified through the copy counters:
// Multi-W moves rendezvous payloads with zero copies; RWG-UP copies only on
// the receiver; Generic and BC-SPUP copy on both sides.
func TestSchemeCopyContracts(t *testing.T) {
	vec := datatype.Must(datatype.TypeVector(128, 512, 1024, datatype.Int32)) // 256 KB, 2 KB blocks
	size := vec.Size()
	type expect struct {
		scheme     Scheme
		sendPacked bool
		recvUnpack bool
	}
	for _, e := range []expect{
		{SchemeGeneric, true, true},
		{SchemeBCSPUP, true, true},
		{SchemeRWGUP, false, true},
		{SchemePRRS, true, false},
		{SchemeMultiW, false, false},
	} {
		t.Run(e.scheme.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Scheme = e.scheme
			cfg.PoolSize = 4 << 20
			w := newTestWorld(t, 2, cfg, 48<<20)
			w.run(t, func(p *simtime.Process, ep *Endpoint) {
				if ep.Rank() == 0 {
					buf := allocFor(ep, vec, 1)
					fillMsg(ep, buf, vec, 1, 1)
					ep.Send(p, buf, 1, vec, 1, 0)
				} else {
					buf := allocFor(ep, vec, 1)
					ep.Recv(p, buf, 1, vec, 0, 0)
				}
			})
			s, r := w.eps[0].Counters(), w.eps[1].Counters()
			if e.sendPacked && s.BytesPacked != size {
				t.Errorf("sender BytesPacked = %d, want %d", s.BytesPacked, size)
			}
			if !e.sendPacked && s.BytesPacked != 0 {
				t.Errorf("sender BytesPacked = %d, want 0", s.BytesPacked)
			}
			if e.recvUnpack && r.BytesUnpacked != size {
				t.Errorf("receiver BytesUnpacked = %d, want %d", r.BytesUnpacked, size)
			}
			if !e.recvUnpack && r.BytesUnpacked != 0 {
				t.Errorf("receiver BytesUnpacked = %d, want 0", r.BytesUnpacked)
			}
			if e.scheme == SchemeMultiW {
				if s.BytesCopied()+r.BytesCopied() != 0 {
					t.Errorf("Multi-W copied bytes: s=%d r=%d", s.BytesCopied(), r.BytesCopied())
				}
				if s.RDMAWritesPosted == 0 {
					t.Error("Multi-W posted no RDMA writes")
				}
			}
			if e.scheme == SchemePRRS && r.RDMAReadsPosted == 0 {
				t.Error("P-RRS posted no RDMA reads")
			}
		})
	}
}

func TestUnexpectedMessages(t *testing.T) {
	for _, scheme := range []Scheme{SchemeGeneric, SchemeBCSPUP, SchemeMultiW} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.PoolSize = 4 << 20
			vec := datatype.Must(datatype.TypeVector(64, 64, 128, datatype.Int32)) // 16 KB
			w := newTestWorld(t, 2, cfg, 48<<20)
			var sent, gotRndv, gotEager []byte
			w.run(t, func(p *simtime.Process, ep *Endpoint) {
				if ep.Rank() == 0 {
					buf := allocFor(ep, vec, 1)
					sent = fillMsg(ep, buf, vec, 1, 0x11)
					// Send both an eager and a rendezvous message before any
					// receive is posted.
					e := ep.Isend(buf, 1, vec, 1, 1) // 16 KB -> rendezvous
					small := ep.Mem().MustAlloc(256)
					copy(ep.Mem().Bytes(small, 256), pattern(256, 9))
					f := ep.Isend(small, 256, datatype.Byte, 1, 2) // eager
					WaitAll(p, e, f)
				} else {
					// Delay posting receives until the messages are certainly
					// unexpected.
					p.Sleep(5 * simtime.Millisecond)
					bufE := ep.Mem().MustAlloc(256)
					reqE := ep.Irecv(bufE, 256, datatype.Byte, 0, 2)
					bufR := allocFor(ep, vec, 1)
					reqR := ep.Irecv(bufR, 1, vec, 0, 1)
					WaitAll(p, reqE, reqR)
					gotRndv = readMsg(ep, bufR, vec, 1)
					gotEager = append([]byte(nil), ep.Mem().Bytes(bufE, 256)...)
				}
			})
			if !bytes.Equal(sent, gotRndv) {
				t.Fatal("unexpected rendezvous data mismatch")
			}
			if !bytes.Equal(gotEager, pattern(256, 9)) {
				t.Fatal("unexpected eager data mismatch")
			}
		})
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolSize = 4 << 20
	w := newTestWorld(t, 3, cfg, 32<<20)
	got := make([]int, 0, 2)
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		switch ep.Rank() {
		case 0:
			buf := ep.Mem().MustAlloc(64)
			copy(ep.Mem().Bytes(buf, 64), pattern(64, 1))
			ep.Send(p, buf, 64, datatype.Byte, 2, 5)
		case 1:
			p.Sleep(simtime.Millisecond)
			buf := ep.Mem().MustAlloc(64)
			copy(ep.Mem().Bytes(buf, 64), pattern(64, 2))
			ep.Send(p, buf, 64, datatype.Byte, 2, 6)
		case 2:
			buf := ep.Mem().MustAlloc(64)
			for i := 0; i < 2; i++ {
				req, err := ep.Recv(p, buf, 64, datatype.Byte, AnySource, AnyTag)
				if err != nil {
					t.Errorf("recv: %v", err)
				}
				got = append(got, req.Source)
			}
		}
	})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("sources = %v, want [0 1]", got)
	}
}

func TestTruncationError(t *testing.T) {
	for _, scheme := range []Scheme{SchemeGeneric, SchemeBCSPUP, SchemeMultiW} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.PoolSize = 4 << 20
			w := newTestWorld(t, 2, cfg, 48<<20)
			big := datatype.Must(datatype.TypeContiguous(64<<10, datatype.Int32))   // 256 KB
			small := datatype.Must(datatype.TypeContiguous(16<<10, datatype.Int32)) // 64 KB
			w.run(t, func(p *simtime.Process, ep *Endpoint) {
				if ep.Rank() == 0 {
					buf := allocFor(ep, big, 1)
					fillMsg(ep, buf, big, 1, 3)
					ep.Send(p, buf, 1, big, 1, 0)
				} else {
					buf := allocFor(ep, small, 1)
					req, err := ep.Recv(p, buf, 1, small, 0, 0)
					if err != ErrTruncate {
						t.Errorf("err = %v, want ErrTruncate", err)
					}
					if req.Bytes != small.Size() {
						t.Errorf("bytes = %d, want %d", req.Bytes, small.Size())
					}
				}
			})
		})
	}
}

func TestPoolExhaustionFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeBCSPUP
	cfg.PoolSize = 256 << 10                                                  // only two 128 KB slots
	vec := datatype.Must(datatype.TypeVector(512, 512, 1024, datatype.Int32)) // 1 MB
	w := newTestWorld(t, 2, cfg, 48<<20)
	var sent, got []byte
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		if ep.Rank() == 0 {
			buf := allocFor(ep, vec, 1)
			sent = fillMsg(ep, buf, vec, 1, 0x77)
			ep.Send(p, buf, 1, vec, 1, 0)
		} else {
			buf := allocFor(ep, vec, 1)
			ep.Recv(p, buf, 1, vec, 0, 0)
			got = readMsg(ep, buf, vec, 1)
		}
	})
	if !bytes.Equal(sent, got) {
		t.Fatal("data mismatch under pool exhaustion")
	}
	// The 1 MB message needs 8 segments against 2-slot pools: the receiver
	// overflows the whole unpack pool (dynamic fallback), while the sender's
	// one-segment-at-a-time pack pipeline genuinely parks on the pack pool.
	if w.eps[1].Counters().PoolOverflow == 0 {
		t.Fatalf("expected receiver PoolOverflow, counters:\n%s", w.eps[1].Counters())
	}
	if w.eps[0].Counters().PoolExhausted == 0 {
		t.Fatalf("expected sender PoolExhausted (parked waiter), counters:\n%s", w.eps[0].Counters())
	}
	if w.eps[0].Counters().PoolDisabled != 0 || w.eps[1].Counters().PoolDisabled != 0 {
		t.Fatal("PoolDisabled must stay zero while pools are enabled")
	}
}

func TestNoPoolsWorstCase(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeBCSPUP
	cfg.UsePools = false
	cfg.RegCache = false
	vec := datatype.Must(datatype.TypeVector(256, 256, 512, datatype.Int32)) // 256 KB
	w := newTestWorld(t, 2, cfg, 48<<20)
	var sent, got []byte
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		if ep.Rank() == 0 {
			buf := allocFor(ep, vec, 1)
			sent = fillMsg(ep, buf, vec, 1, 0x2F)
			ep.Send(p, buf, 1, vec, 1, 0)
		} else {
			buf := allocFor(ep, vec, 1)
			ep.Recv(p, buf, 1, vec, 0, 0)
			got = readMsg(ep, buf, vec, 1)
		}
	})
	if !bytes.Equal(sent, got) {
		t.Fatal("data mismatch in worst case")
	}
	// Every dynamic registration must be paid for and then given back.
	for _, ep := range w.eps {
		c := ep.Counters()
		if c.Registrations == 0 || c.Registrations != c.Deregistrations {
			t.Fatalf("rank %d: reg=%d dereg=%d", ep.Rank(), c.Registrations, c.Deregistrations)
		}
	}
}

// Multi-W's datatype cache: the layout travels once per (peer, type index),
// is reused afterwards, and is resent after index reuse bumps the version.
func TestMultiWTypeCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeMultiW
	cfg.PoolSize = 4 << 20
	vec := datatype.Must(datatype.TypeVector(64, 512, 1024, datatype.Int32)) // 128 KB
	w := newTestWorld(t, 2, cfg, 48<<20)
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		if ep.Rank() == 0 {
			buf := allocFor(ep, vec, 1)
			fillMsg(ep, buf, vec, 1, 1)
			for i := 0; i < 3; i++ {
				ep.Send(p, buf, 1, vec, 1, i)
			}
		} else {
			buf := allocFor(ep, vec, 1)
			for i := 0; i < 3; i++ {
				ep.Recv(p, buf, 1, vec, 0, i)
			}
		}
	})
	r := w.eps[1].Counters() // receiver ships layouts
	s := w.eps[0].Counters() // sender caches them
	if r.TypeLayoutsSent != 1 {
		t.Fatalf("TypeLayoutsSent = %d, want 1", r.TypeLayoutsSent)
	}
	if s.TypeCacheHits != 2 {
		t.Fatalf("TypeCacheHits = %d, want 2", s.TypeCacheHits)
	}
}

func TestMultiWTypeIndexReuse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeMultiW
	cfg.PoolSize = 4 << 20
	t1 := datatype.Must(datatype.TypeVector(64, 512, 1024, datatype.Int32))
	t2 := datatype.Must(datatype.TypeVector(32, 1024, 2048, datatype.Int32)) // same size, new layout
	w := newTestWorld(t, 2, cfg, 48<<20)
	var sent2, got2 []byte
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		if ep.Rank() == 0 {
			buf := allocFor(ep, t1, 1)
			fillMsg(ep, buf, t1, 1, 1)
			ep.Send(p, buf, 1, t1, 1, 0)
			buf2 := allocFor(ep, t2, 1)
			sent2 = fillMsg(ep, buf2, t2, 1, 2)
			ep.Send(p, buf2, 1, t2, 1, 1)
		} else {
			buf := allocFor(ep, t1, 1)
			ep.Recv(p, buf, 1, t1, 0, 0)
			// Free t1's index and commit t2, which reuses it with a bumped
			// version; the sender's cache must be refreshed.
			ep.FreeType(t1)
			buf2 := allocFor(ep, t2, 1)
			ep.Recv(p, buf2, 1, t2, 0, 1)
			got2 = readMsg(ep, buf2, t2, 1)
		}
	})
	if !bytes.Equal(sent2, got2) {
		t.Fatal("data mismatch after type index reuse")
	}
	r := w.eps[1].Counters()
	if r.TypeLayoutsSent != 2 {
		t.Fatalf("TypeLayoutsSent = %d, want 2 (resend after version bump)", r.TypeLayoutsSent)
	}
	if w.eps[0].Counters().TypeCacheReplaced != 1 {
		t.Fatalf("TypeCacheReplaced = %d, want 1", w.eps[0].Counters().TypeCacheReplaced)
	}
}

// Auto must pick a zero-copy path for large-block layouts and a pack-based
// path for byte-grain layouts.
func TestAutoSelection(t *testing.T) {
	bigBlocks := datatype.Must(datatype.TypeVector(32, 2048, 4096, datatype.Int32)) // 8 KB blocks
	tinyBlocks := datatype.Must(datatype.TypeVector(16384, 1, 4, datatype.Int32))   // 4 B blocks
	run := func(dt *datatype.Type) (*Endpoint, *Endpoint) {
		cfg := DefaultConfig()
		cfg.Scheme = SchemeAuto
		cfg.PoolSize = 4 << 20
		w := newTestWorld(t, 2, cfg, 48<<20)
		w.run(t, func(p *simtime.Process, ep *Endpoint) {
			if ep.Rank() == 0 {
				buf := allocFor(ep, dt, 1)
				fillMsg(ep, buf, dt, 1, 1)
				ep.Send(p, buf, 1, dt, 1, 0)
			} else {
				buf := allocFor(ep, dt, 1)
				ep.Recv(p, buf, 1, dt, 0, 0)
			}
		})
		return w.eps[0], w.eps[1]
	}
	s, r := run(bigBlocks)
	if s.Counters().BytesPacked != 0 || r.Counters().BytesUnpacked != 0 {
		t.Fatalf("Auto on big blocks copied data (packed=%d unpacked=%d); want Multi-W",
			s.Counters().BytesPacked, r.Counters().BytesUnpacked)
	}
	s, r = run(tinyBlocks)
	if s.Counters().BytesPacked == 0 || r.Counters().BytesUnpacked == 0 {
		t.Fatal("Auto on tiny blocks went copy-reduced; want BC-SPUP")
	}
}

// Self sends must work for every scheme config (collectives need them).
func TestSelfSend(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolSize = 4 << 20
	vec := datatype.Must(datatype.TypeVector(16, 4, 8, datatype.Int32))
	w := newTestWorld(t, 2, cfg, 32<<20)
	var sent, got []byte
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		if ep.Rank() != 0 {
			return
		}
		src := allocFor(ep, vec, 4)
		dst := allocFor(ep, vec, 4)
		sent = fillMsg(ep, src, vec, 4, 0x42)
		r1 := ep.Isend(src, 4, vec, 0, 3)
		r2 := ep.Irecv(dst, 4, vec, 0, 3)
		WaitAll(p, r1, r2)
		got = readMsg(ep, dst, vec, 4)
	})
	if !bytes.Equal(sent, got) {
		t.Fatal("self-send data mismatch")
	}
}

// Messages between the same pair with the same tag must match in send order.
func TestOrderingBetweenPairs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PoolSize = 4 << 20
	w := newTestWorld(t, 2, cfg, 32<<20)
	const n = 10
	var got [n]byte
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		if ep.Rank() == 0 {
			for i := 0; i < n; i++ {
				buf := ep.Mem().MustAlloc(16)
				ep.Mem().Bytes(buf, 16)[0] = byte(i)
				ep.Send(p, buf, 16, datatype.Byte, 1, 0)
			}
		} else {
			buf := ep.Mem().MustAlloc(16)
			for i := 0; i < n; i++ {
				ep.Recv(p, buf, 16, datatype.Byte, 0, 0)
				got[i] = ep.Mem().Bytes(buf, 16)[0]
			}
		}
	})
	for i := 0; i < n; i++ {
		if got[i] != byte(i) {
			t.Fatalf("message %d carried payload %d; order broken", i, got[i])
		}
	}
}
