package core

// Indexed message matching.
//
// The original engine kept posted receives and unexpected arrivals in flat
// slices and matched them with linear scans. That is O(messages × peers)
// during an Alltoall: every arrival walks past every other peer's posted
// receive before finding its own. The structures here index both sides per
// (ctx, src, tag) so the common exact-match path is O(1), while wildcard
// receives (AnySource / AnyTag) keep their original first-posted /
// first-arrived semantics through an ordered side list.
//
// Ordering invariant exploited throughout: every entry sharing one exact
// (ctx, src, tag) key also matches exactly the same set of wildcard
// patterns. So the globally earliest entry that matches any pattern is
// always the HEAD of its exact FIFO queue — removal is pop-front only,
// never mid-queue surgery. Code below panics if that invariant is ever
// violated rather than silently reordering.

// matchKey identifies one exact matching bucket.
type matchKey struct {
	ctx, src, tag int
}

// --- Posted-receive index ---------------------------------------------------

// reqQueue is a head-indexed FIFO of posted receives sharing one exact key.
// Popping advances head; the backing array compacts lazily so a long-lived
// bucket does not pin every request it ever held.
type reqQueue struct {
	s    []*Request
	head int
}

func (q *reqQueue) push(r *Request) { q.s = append(q.s, r) }

func (q *reqQueue) peek() *Request {
	if q.head == len(q.s) {
		return nil
	}
	return q.s[q.head]
}

func (q *reqQueue) pop() *Request {
	r := q.s[q.head]
	q.s[q.head] = nil
	q.head++
	if q.head > 32 && q.head*2 >= len(q.s) {
		q.s = append(q.s[:0], q.s[q.head:]...)
		q.head = 0
	}
	return r
}

func (q *reqQueue) empty() bool { return q.head == len(q.s) }

// recvIndex holds posted receives: exact receives bucketed per
// (ctx, src, tag), wildcard receives (AnySource and/or AnyTag) in a small
// ordered side list. seq stamps give a total post order across both.
type recvIndex struct {
	exact map[matchKey]*reqQueue
	wild  []*Request
	seq   uint64
	n     int
}

func (ri *recvIndex) init() { ri.exact = make(map[matchKey]*reqQueue) }

func (ri *recvIndex) len() int { return ri.n }

// post adds a receive in posting order.
func (ri *recvIndex) post(r *Request) {
	ri.seq++
	r.seq = ri.seq
	ri.n++
	if r.srcWant == AnySource || r.tagWant == AnyTag {
		ri.wild = append(ri.wild, r)
		return
	}
	k := matchKey{ctx: r.ctxWant, src: r.srcWant, tag: r.tagWant}
	q := ri.exact[k]
	if q == nil {
		q = &reqQueue{}
		ri.exact[k] = q
	}
	q.push(r)
}

// match finds and removes the earliest-posted receive matching the arrival
// (ctx, src, tag). The exact bucket gives its candidate in O(1); the
// wildcard list is scanned in post order (wildcard receives are rare on the
// collective hot path, and a flat scan there preserves exact MPI
// first-posted semantics).
func (ri *recvIndex) match(ctx, src, tag int) *Request {
	k := matchKey{ctx: ctx, src: src, tag: tag}
	q := ri.exact[k]
	var exact *Request
	if q != nil {
		exact = q.peek()
	}
	wildIdx := -1
	for i, r := range ri.wild {
		if matchWanted(r.ctxWant, r.srcWant, r.tagWant, ctx, src, tag) {
			wildIdx = i
			break
		}
	}
	switch {
	case exact == nil && wildIdx < 0:
		return nil
	case exact != nil && (wildIdx < 0 || exact.seq < ri.wild[wildIdx].seq):
		r := q.pop()
		if q.empty() {
			delete(ri.exact, k)
		}
		ri.n--
		return r
	default:
		r := ri.wild[wildIdx]
		copy(ri.wild[wildIdx:], ri.wild[wildIdx+1:])
		ri.wild[len(ri.wild)-1] = nil
		ri.wild = ri.wild[:len(ri.wild)-1]
		ri.n--
		return r
	}
}

// --- Unexpected-arrival index -----------------------------------------------

// inbQueue is a head-indexed FIFO of unexpected arrivals sharing one exact
// key.
type inbQueue struct {
	s    []*inbound
	head int
}

func (q *inbQueue) push(inb *inbound) { q.s = append(q.s, inb) }

func (q *inbQueue) peek() *inbound {
	if q.head == len(q.s) {
		return nil
	}
	return q.s[q.head]
}

func (q *inbQueue) pop() *inbound {
	inb := q.s[q.head]
	q.s[q.head] = nil
	q.head++
	if q.head > 32 && q.head*2 >= len(q.s) {
		q.s = append(q.s[:0], q.s[q.head:]...)
		q.head = 0
	}
	return inb
}

func (q *inbQueue) empty() bool { return q.head == len(q.s) }

// unexpIndex holds unexpected arrivals: exact buckets per (ctx, src, tag)
// for O(1) claiming by exact receives, plus a global arrival-order list for
// wildcard receives and probes. A claimed arrival becomes a tombstone in
// the order list and is swept out lazily.
type unexpIndex struct {
	exact   map[matchKey]*inbQueue
	order   []*inbound
	claimed int
}

func (ui *unexpIndex) init() { ui.exact = make(map[matchKey]*inbQueue) }

func (ui *unexpIndex) len() int { return len(ui.order) - ui.claimed }

// add records a new arrival in arrival order.
func (ui *unexpIndex) add(inb *inbound) {
	ui.order = append(ui.order, inb)
	k := matchKey{ctx: inb.ctx, src: inb.src, tag: inb.tag}
	q := ui.exact[k]
	if q == nil {
		q = &inbQueue{}
		ui.exact[k] = q
	}
	q.push(inb)
}

// take finds and removes the earliest arrival matching a receive's wants
// (wildcards allowed). Exact wants claim the bucket head in O(1); wildcard
// wants scan arrival order, skipping tombstones.
func (ui *unexpIndex) take(ctx, src, tag int) *inbound {
	if src != AnySource && tag != AnyTag {
		k := matchKey{ctx: ctx, src: src, tag: tag}
		q := ui.exact[k]
		if q == nil {
			return nil
		}
		inb := q.pop()
		if q.empty() {
			delete(ui.exact, k)
		}
		ui.tombstone(inb)
		return inb
	}
	for _, inb := range ui.order {
		if inb.claimed {
			continue
		}
		if matchWanted(ctx, src, tag, inb.ctx, inb.src, inb.tag) {
			ui.popExact(inb)
			ui.tombstone(inb)
			return inb
		}
	}
	return nil
}

// peek reports the earliest matching arrival without removing it (probe).
func (ui *unexpIndex) peek(ctx, src, tag int) (*inbound, bool) {
	if src != AnySource && tag != AnyTag {
		q := ui.exact[matchKey{ctx: ctx, src: src, tag: tag}]
		if q == nil {
			return nil, false
		}
		if inb := q.peek(); inb != nil {
			return inb, true
		}
		return nil, false
	}
	for _, inb := range ui.order {
		if inb.claimed {
			continue
		}
		if matchWanted(ctx, src, tag, inb.ctx, inb.src, inb.tag) {
			return inb, true
		}
	}
	return nil, false
}

// each visits every unclaimed arrival in arrival order until fn returns
// false (failure-notice path; not performance sensitive).
func (ui *unexpIndex) each(fn func(*inbound) bool) {
	for _, inb := range ui.order {
		if inb.claimed {
			continue
		}
		if !fn(inb) {
			return
		}
	}
}

// popExact removes an arrival claimed through an order scan from its exact
// bucket. By the ordering invariant it must be the bucket head: any earlier
// same-key arrival would have matched the same wildcard first.
func (ui *unexpIndex) popExact(inb *inbound) {
	k := matchKey{ctx: inb.ctx, src: inb.src, tag: inb.tag}
	q := ui.exact[k]
	if q == nil || q.peek() != inb {
		panic("core: matching invariant violated: claimed arrival is not its bucket head")
	}
	q.pop()
	if q.empty() {
		delete(ui.exact, k)
	}
}

// tombstone marks an arrival claimed in the order list and sweeps
// tombstones once they dominate it.
func (ui *unexpIndex) tombstone(inb *inbound) {
	inb.claimed = true
	ui.claimed++
	if ui.claimed > 64 && ui.claimed*2 >= len(ui.order) {
		live := ui.order[:0]
		for _, e := range ui.order {
			if !e.claimed {
				live = append(live, e)
			}
		}
		for i := len(live); i < len(ui.order); i++ {
			ui.order[i] = nil
		}
		ui.order = live
		ui.claimed = 0
	}
}

// --- Announce queue ----------------------------------------------------------

// annQueue is the per-destination announce order. Slots are reserved at
// Isend time and drained strictly FIFO; a drained slot is nilled out
// immediately so its closure (which captures the packed payload) is
// collectable — the queue no longer retains every announce ever posted.
type annQueue struct {
	s    []*annSlot
	head int
}

// creditsFor returns the receive credits pre-posted per QP for an n-rank
// world. Small worlds keep the historical deep credit pool (preserving
// sim-time goldens); large worlds get a per-peer budget so an endpoint's
// total posted receive WRs stay O(n), not O(n · 1024). Exhausted credits
// are safe: arrivals stall in the QP and drain as credits replenish.
func creditsFor(n int) int {
	if n <= 32 {
		return initialCredits
	}
	c := 8192 / n
	if c < 8 {
		c = 8
	}
	return c
}
