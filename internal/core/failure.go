package core

import (
	"sync/atomic"

	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/verbs"
)

// Structured error propagation for the transfer schemes.
//
// Taxonomy: transient faults (injected post failures, error CQEs,
// registration failures classified transient) are retried with bounded
// exponential backoff in virtual time; permanent faults — including retry
// exhaustion — abort the operation. An abort completes the Request with the
// error immediately, but resource teardown waits until every outstanding
// descriptor of the op has drained: a pool slot released while a retried
// RDMA write still references it could be reacquired by another transfer
// and corrupted, since the pool-wide registration stays valid. After the
// drain, the peer is told (kindSendFail/kindRecvFail) so its half of the
// rendezvous fails too instead of waiting forever.

// ErrRemoteAbort reports that the peer rank aborted the transfer after an
// unrecoverable fault on its side.
var ErrRemoteAbort = errors.New("core: peer aborted transfer")

// errOpAborted resolves descriptors that were abandoned (not re-posted)
// because their op had already failed.
var errOpAborted = errors.New("core: descriptor abandoned after op abort")

// faultMode reports whether fault injection is active on this fabric. The
// data paths then trade pipelining for retry-safe, order-preserving posting;
// with injection off, behavior is bit-identical to the fault-free engine.
func (ep *Endpoint) faultMode() bool { return ep.hca.Injector() != nil }

// postRetry posts one descriptor to the peer at dst, retrying transient
// faults (post failures and error completions) with bounded backoff.
// Each attempt gets a fresh WRID. done runs exactly once: with nil after a
// successful completion, or with the final error. cancelled is consulted
// before every attempt so an aborted op stops re-posting into memory that
// is about to be released.
func (ep *Endpoint) postRetry(dst int, wr verbs.SendWR, cancelled func() bool, done func(error)) {
	attempt := 0
	var try func()
	retry := func(err error) bool {
		if !fault.IsTransient(err) || attempt >= ep.cfg.FaultRetryLimit || cancelled() {
			return false
		}
		attempt++
		atomic.AddInt64(&ep.ctr.FaultRetries, 1)
		ep.eng.Schedule(ep.cfg.retryBackoff(attempt), try)
		return true
	}
	try = func() {
		if cancelled() {
			done(errOpAborted)
			return
		}
		wr.WRID = ep.hca.WRID()
		wrid := wr.WRID
		ep.onSendCQE[wrid] = func(e verbs.CQE) {
			if e.Err == nil {
				done(nil)
				return
			}
			if retry(e.Err) {
				return
			}
			done(e.Err)
		}
		if err := ep.qps[dst].PostSend(wr); err != nil {
			delete(ep.onSendCQE, wrid)
			if retry(err) {
				return
			}
			done(err)
		}
	}
	try()
}

// --- Sender-side abort -------------------------------------------------------

// abortSend fails a sender-side op: the request completes with err now, and
// teardown (and peer notification) happens once outstanding descriptors
// drain. Safe to call repeatedly; only the first error sticks.
func (ep *Endpoint) abortSend(op *sendOp, err error) {
	if op.failed {
		return
	}
	op.failed = true
	op.failErr = err
	atomic.AddInt64(&ep.ctr.RequestsFailed, 1)
	ep.mark("abort-send", "abort", op.id)
	op.req.complete(err)
	if op.wrsLeft == 0 {
		ep.finalizeSendAbort(op)
	}
}

// finalizeSendAbort releases everything a failed send op holds, once no
// descriptor references it anymore, and notifies the receiver.
func (ep *Endpoint) finalizeSendAbort(op *sendOp) {
	if !ep.removeSendOp(op) {
		return // already finalized
	}
	if op.staging.held {
		ep.releaseSeg(ep.packPool, op.staging.seg)
		op.staging = segRes{}
	}
	for i := range op.segs {
		if op.segs[i].held {
			ep.releaseSeg(ep.packPool, op.segs[i].seg)
			op.segs[i].held = false
		}
	}
	op.segs = op.segs[:0]
	if len(op.regions) > 0 {
		ep.releaseUserRegions(op.regions)
		op.regions = op.regions[:0]
	}
	if op.notifyPeer {
		w := ep.ctrlW()
		w.u8(kindSendFail)
		w.u32(op.id)
		ep.sendCtrl(op.dst, w.buf, nil)
	}
	ep.qosDrain() // a dead op releases nothing later; re-check parked work
	ep.retireSend(op)
}

// sendWRResolved accounts one finally-resolved descriptor (completed, failed
// past retry, or abandoned) of a send op and advances its state machine:
// rest runs on success, failures start or continue the abort drain.
func (ep *Endpoint) sendWRResolved(op *sendOp, err error, rest func()) {
	op.wrsLeft--
	if err != nil && !op.failed {
		ep.abortSend(op, err)
		return
	}
	if op.failed {
		if op.wrsLeft == 0 {
			ep.finalizeSendAbort(op)
		}
		return
	}
	if rest != nil {
		rest()
	}
}

// donePosting marks that every descriptor of the op has been posted; the
// onWRsDone callback installed by postWRs may only fire after this (the
// allPosted guard), so a fast early segment can never complete the op while
// later segments are still being posted.
func (ep *Endpoint) donePosting(op *sendOp) {
	op.allPosted = true
	if op.failed {
		if op.wrsLeft == 0 {
			ep.finalizeSendAbort(op)
		}
		return
	}
	if op.wrsLeft == 0 && op.onWRsDone != nil {
		fn := op.onWRsDone
		op.onWRsDone = nil
		fn()
	}
}

// --- Receiver-side abort -----------------------------------------------------

// abortRecv fails a receiver-side op; notify says whether the sender should
// be told once the drain finishes (false when the abort was caused by the
// sender's own failure notice).
func (ep *Endpoint) abortRecv(op *recvOp, err error, notify bool) {
	if op.failed {
		return
	}
	op.failed = true
	op.failErr = err
	op.notifyPeer = notify
	atomic.AddInt64(&ep.ctr.RequestsFailed, 1)
	ep.mark("abort-recv", "abort", op.key.op)
	op.req.complete(err)
	if op.wrsLeft == 0 {
		ep.finalizeRecvAbort(op)
	}
}

// finalizeRecvAbort releases everything a failed receive op holds and
// notifies the sender if requested.
func (ep *Endpoint) finalizeRecvAbort(op *recvOp) {
	if !ep.removeRecvOp(op) {
		return // already finalized
	}
	if op.wholeSeg != nil {
		ep.releaseSeg(ep.unpackPool, *op.wholeSeg)
		op.wholeSeg = nil
	}
	for i := range op.segs {
		if op.segs[i].held {
			ep.releaseSeg(ep.unpackPool, op.segs[i].seg)
			op.segs[i].held = false
		}
	}
	op.segs = op.segs[:0]
	if len(op.regions) > 0 {
		ep.releaseUserRegions(op.regions)
		op.regions = op.regions[:0]
	}
	if op.notifyPeer {
		w := ep.ctrlW()
		w.u8(kindRecvFail)
		w.u32(op.key.op)
		ep.sendCtrl(op.key.src, w.buf, nil)
	}
	ep.qosDrain() // a dead op releases nothing later; re-check parked work
	ep.retireRecv(op)
}

// recvWRResolved is sendWRResolved for receiver-initiated descriptors
// (P-RRS scatter reads).
func (ep *Endpoint) recvWRResolved(op *recvOp, err error, rest func()) {
	op.wrsLeft--
	if err != nil && !op.failed {
		ep.abortRecv(op, err, true)
		return
	}
	if op.failed {
		if op.wrsLeft == 0 {
			ep.finalizeRecvAbort(op)
		}
		return
	}
	if rest != nil {
		rest()
	}
}

// --- Cross-rank failure notices ----------------------------------------------

// handleSendFail processes a sender's abort notice: fail the matched receive,
// or drop the queued RTS so no future receive matches a dead transfer.
func (ep *Endpoint) handleSendFail(src int, r *ctrlReader) {
	id := r.u32()
	if r.err != nil {
		panic(r.err)
	}
	atomic.AddInt64(&ep.ctr.PeerAborts, 1)
	if op := ep.lookupRecvOp(src, id); op != nil {
		ep.abortRecv(op, fmt.Errorf("%w (sender rank %d)", ErrRemoteAbort, src), false)
		return
	}
	// Not matched yet: mark the queued RTS dead. It stays matchable so a
	// receive posted later fails promptly instead of waiting forever.
	ep.unexp.each(func(inb *inbound) bool {
		if inb.kind == kindRTS && inb.src == src && inb.opID == id {
			inb.failed = true
			return false
		}
		return true
	})
}

// handleRecvFail processes a receiver's abort notice: fail the sender-side
// op without notifying back.
func (ep *Endpoint) handleRecvFail(src int, r *ctrlReader) {
	id := r.u32()
	if r.err != nil {
		panic(r.err)
	}
	atomic.AddInt64(&ep.ctr.PeerAborts, 1)
	if op := ep.lookupSendOp(src, id); op != nil {
		op.notifyPeer = false
		ep.abortSend(op, fmt.Errorf("%w (receiver rank %d)", ErrRemoteAbort, src))
	}
}
