package core

import (
	"testing"

	"repro/internal/datatype"
)

// The descriptor builder is the per-message inner loop of every RDMA scheme:
// warm calls must not allocate. These assertions are the unit-level twin of
// the perfgate rows (chunkwrs/*, chunkbatches/*) pinned in BENCH_perf.json.

func TestChunkWRsZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		dt   *datatype.Type
		wrs  int
	}{
		// 16384 4-byte runs at MaxSGE 64 → 256 descriptors.
		{"vec4Bx16k", datatype.Must(datatype.TypeVector(16384, 1, 4, datatype.Int32)), 256},
		// 256 256-byte runs → 4 descriptors.
		{"vec256Bx256", datatype.Must(datatype.TypeVector(256, 64, 128, datatype.Int32)), 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			probe := NewPerfProbe(tc.dt, 1)
			if got := probe.ChunkWRs(); got != tc.wrs {
				t.Fatalf("chunkWRs built %d descriptors, want %d", got, tc.wrs)
			}
			if allocs := testing.AllocsPerRun(50, func() { probe.ChunkWRs() }); allocs != 0 {
				t.Fatalf("warm chunkWRs allocates %.1f/op, want 0", allocs)
			}
		})
	}
}

func TestChunkBatchesZeroAlloc(t *testing.T) {
	probe := NewPerfProbe(datatype.Int32, 1)
	if got := probe.ChunkBatches(1024, 64); got != 16 {
		t.Fatalf("chunkBatches split 1024/64 into %d batches, want 16", got)
	}
	if allocs := testing.AllocsPerRun(50, func() { probe.ChunkBatches(1024, 64) }); allocs != 0 {
		t.Fatalf("warm chunkBatches allocates %.1f/op, want 0", allocs)
	}
	// Ragged tail and limit larger than the list.
	if got := probe.ChunkBatches(130, 64); got != 3 {
		t.Fatalf("chunkBatches split 130/64 into %d batches, want 3", got)
	}
	if got := probe.ChunkBatches(5, 64); got != 1 {
		t.Fatalf("chunkBatches split 5/64 into %d batches, want 1", got)
	}
}
