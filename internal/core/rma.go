package core

import (
	"sync/atomic"

	"fmt"

	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/verbs"
)

// One-sided (RMA) operations. The paper's datatype-layout machinery came out
// of MPI-2 one-sided communication (Träff et al.'s cache, Section 5.4.2);
// this is the natural extension: Put and Get move derived-datatype data
// directly between an origin buffer and a remote window with the same
// zero-copy dual-cursor walk the Multi-W scheme uses — no rendezvous, since
// in MPI RMA the *origin* holds both layouts.

// ErrWindowBounds reports an RMA access outside the target window.
var ErrWindowBounds = fmt.Errorf("core: RMA access outside window")

// ExposeWindow registers a contiguous window of local memory for remote
// access and returns the key peers need to address it. The registration
// goes through the user pin-down cache and its cost is charged.
func (ep *Endpoint) ExposeWindow(base mem.Addr, size int64) (uint32, *mem.Region, error) {
	region, ops, err := ep.userReg.Acquire(base, size)
	if err != nil {
		return 0, nil, err
	}
	ep.accountReg(ops)
	ep.hca.ChargeCPUNamed(ep.model.RegOpsTime(ops), "reg")
	return region.RKey, region, nil
}

// CloseWindow releases a window registration.
func (ep *Endpoint) CloseWindow(region *mem.Region) {
	ep.releaseUserRegions([]*mem.Region{region})
}

// rmaArgs bundles one Put/Get request.
type rmaArgs struct {
	dst    int
	oBuf   mem.Addr
	oCount int
	oType  *datatype.Type
	tBase  mem.Addr // absolute address of the target layout's origin
	tKey   uint32
	tWinLo mem.Addr // window bounds for validation
	tWinHi mem.Addr
	tCount int
	tType  *datatype.Type
}

func (a *rmaArgs) validate() error {
	oBytes := a.oType.Size() * int64(a.oCount)
	tBytes := a.tType.Size() * int64(a.tCount)
	if oBytes != tBytes {
		return fmt.Errorf("core: RMA size mismatch: origin %d bytes, target %d", oBytes, tBytes)
	}
	lo := int64(a.tBase) + a.tType.TrueLB()
	hi := int64(a.tBase) + a.tType.TrueLB() + a.tType.TrueExtent() + int64(a.tCount-1)*a.tType.Extent()
	if lo < int64(a.tWinLo) || hi > int64(a.tWinHi) {
		return ErrWindowBounds
	}
	return nil
}

// Put writes (oBuf, oCount, oType) into the target window at dst, laid out
// as (tCount, tType) at tBase. done runs when every write has completed
// remotely. Zero-copy: data moves by RDMA writes straight from the origin's
// registered user blocks into the target layout's runs.
func (ep *Endpoint) Put(dst int, oBuf mem.Addr, oCount int, oType *datatype.Type,
	tBase mem.Addr, tKey uint32, tWinLo, tWinHi mem.Addr, tCount int, tType *datatype.Type,
	done func(error)) {
	a := &rmaArgs{dst: dst, oBuf: oBuf, oCount: oCount, oType: oType,
		tBase: tBase, tKey: tKey, tWinLo: tWinLo, tWinHi: tWinHi, tCount: tCount, tType: tType}
	if err := a.validate(); err != nil {
		done(err)
		return
	}
	if dst == ep.rank {
		ep.rmaLocal(a, true, done)
		return
	}
	ep.registerUserMessage(oBuf, oType, oCount, nil, nil, func(regions []*mem.Region, refs []regRef, err error) {
		if err != nil {
			done(err)
			return
		}
		oc := ep.walkerFor(oType, oCount)
		tc := ep.walkerFor(tType, tCount)
		remaining := oType.Size() * int64(oCount)
		var set wrSet // one-shot: RMA ops have no pooled op to own an arena
		for remaining > 0 {
			tOff, tLen, ok := tc.Next(remaining)
			if !ok {
				ep.releaseUserRegions(regions)
				done(fmt.Errorf("core rank %d: RMA target layout exhausted with %d bytes unconsumed",
					ep.rank, remaining))
				return
			}
			if _, cerr := ep.chunkWRs(&set, verbs.OpRDMAWrite, oc, oBuf, refs, tLen,
				mem.Addr(int64(tBase)+tOff), tKey); cerr != nil {
				ep.releaseUserRegions(regions)
				done(cerr)
				return
			}
			remaining -= tLen
		}
		wrs := set.wrs
		ep.chargeTypeProc(len(wrs))
		ep.postRMAWRs(dst, wrs, regions, done)
	})
}

// Get reads the target layout (tCount, tType at tBase) in dst's window into
// (oBuf, oCount, oType). done runs when every read has landed locally.
func (ep *Endpoint) Get(dst int, oBuf mem.Addr, oCount int, oType *datatype.Type,
	tBase mem.Addr, tKey uint32, tWinLo, tWinHi mem.Addr, tCount int, tType *datatype.Type,
	done func(error)) {
	a := &rmaArgs{dst: dst, oBuf: oBuf, oCount: oCount, oType: oType,
		tBase: tBase, tKey: tKey, tWinLo: tWinLo, tWinHi: tWinHi, tCount: tCount, tType: tType}
	if err := a.validate(); err != nil {
		done(err)
		return
	}
	if dst == ep.rank {
		ep.rmaLocal(a, false, done)
		return
	}
	ep.registerUserMessage(oBuf, oType, oCount, nil, nil, func(regions []*mem.Region, refs []regRef, err error) {
		if err != nil {
			done(err)
			return
		}
		oc := ep.walkerFor(oType, oCount)
		tc := ep.walkerFor(tType, tCount)
		remaining := oType.Size() * int64(oCount)
		var set wrSet // one-shot: RMA ops have no pooled op to own an arena
		for remaining > 0 {
			// Each remote contiguous run becomes one (or more) scatter reads.
			tOff, tLen, ok := tc.Next(remaining)
			if !ok {
				ep.releaseUserRegions(regions)
				done(fmt.Errorf("core rank %d: RMA target layout exhausted with %d bytes unconsumed",
					ep.rank, remaining))
				return
			}
			if _, cerr := ep.chunkWRs(&set, verbs.OpRDMARead, oc, oBuf, refs, tLen,
				mem.Addr(int64(tBase)+tOff), tKey); cerr != nil {
				ep.releaseUserRegions(regions)
				done(cerr)
				return
			}
			remaining -= tLen
		}
		wrs := set.wrs
		ep.chargeTypeProc(len(wrs))
		ep.postRMAWRs(dst, wrs, regions, done)
	})
}

// postRMAWRs posts the descriptor batch and runs done when every descriptor
// has finally resolved, releasing the origin registrations. The first error
// wins but the drain still waits for the rest, so regions are never released
// while a descriptor might still read or write through them. Transient
// injected faults are retried per descriptor (which forces individual posts
// in fault mode).
func (ep *Endpoint) postRMAWRs(dst int, wrs []verbs.SendWR, regions []*mem.Region, done func(error)) {
	left := len(wrs)
	if left == 0 {
		ep.releaseUserRegions(regions)
		done(nil)
		return
	}
	var failed error
	resolve := func(err error) {
		if err != nil && failed == nil {
			failed = err
		}
		left--
		if left == 0 {
			ep.releaseUserRegions(regions)
			done(failed)
		}
	}
	if ep.cfg.ListPost && len(wrs) > 1 && !ep.faultMode() {
		for i := range wrs {
			wrs[i].WRID = ep.hca.WRID()
			ep.onSendCQE[wrs[i].WRID] = func(e verbs.CQE) { resolve(e.Err) }
		}
		batches := chunkBatches(wrs, ep.model.MaxPostBatch, nil)
		for bi, batch := range batches {
			if err := ep.qps[dst].PostSendList(batch); err != nil {
				// This batch — and everything after it — never reached the
				// NIC; already-posted batches resolve through their CQEs.
				for _, b := range batches[bi:] {
					for i := range b {
						delete(ep.onSendCQE, b[i].WRID)
						resolve(err)
					}
				}
				return
			}
			ep.observeBatch(len(batch))
		}
		return
	}
	for i := range wrs {
		ep.postRetry(dst, wrs[i], func() bool { return false }, resolve)
	}
}

// rmaLocal implements Put/Get where origin and target are the same rank:
// a straight local repack between the two layouts.
func (ep *Endpoint) rmaLocal(a *rmaArgs, put bool, done func(error)) {
	bytes := a.oType.Size() * int64(a.oCount)
	tmp := make([]byte, bytes)
	var runs int
	if put {
		pk := ep.newPacker(a.oBuf, a.oType, a.oCount)
		_, r1 := pk.PackTo(tmp)
		up := ep.newUnpacker(a.tBase, a.tType, a.tCount)
		_, r2 := up.UnpackFrom(tmp)
		runs = r1 + r2
	} else {
		pk := ep.newPacker(a.tBase, a.tType, a.tCount)
		_, r1 := pk.PackTo(tmp)
		up := ep.newUnpacker(a.oBuf, a.oType, a.oCount)
		_, r2 := up.UnpackFrom(tmp)
		runs = r1 + r2
	}
	atomic.AddInt64(&ep.ctr.BytesPacked, bytes)
	atomic.AddInt64(&ep.ctr.BytesUnpacked, bytes)
	ep.afterNamed(ep.cfg.packCost(ep.model, 2*bytes, runs), "pack", func() { done(nil) })
}
