package core

import (
	"sync/atomic"

	"errors"
	"fmt"

	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/qos"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/verbs"
)

// Wildcards for receive matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrTruncate reports that an incoming message was larger than the posted
// receive buffer; the receive completes with the truncated byte count.
var ErrTruncate = errors.New("core: message truncated")

// initialCredits is the number of receive credits pre-posted per QP;
// each consumed credit is immediately replenished.
const initialCredits = 1024

// Request is a communication request (the MPI_Request analogue). It
// completes through the simulation's event machinery; processes block on it
// with Wait.
type Request struct {
	ep     *Endpoint
	isRecv bool
	done   bool
	sig    simtime.Signal

	// Err is nil on success; ErrTruncate on a truncated receive.
	Err error
	// Source and Tag identify the matched message on a completed receive.
	Source int
	Tag    int
	// Bytes is the payload size transferred.
	Bytes int64

	// Receive-side posting information.
	buf     mem.Addr
	count   int
	dt      *datatype.Type
	ctxWant int
	srcWant int
	tagWant int
	seq     uint64 // post-order stamp within the matching index
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// Wait blocks the process until the request completes.
func (r *Request) Wait(p *simtime.Process) {
	for !r.done {
		p.Wait(&r.sig)
	}
}

func (r *Request) complete(err error) {
	if r.done {
		panic("core: double completion of request")
	}
	r.done = true
	if err != nil && r.Err == nil {
		r.Err = err
	}
	r.sig.Broadcast()
	if r.ep != nil {
		r.ep.reqSig.Broadcast()
	}
}

// WaitAll blocks until every request completes.
func WaitAll(p *simtime.Process, reqs ...*Request) {
	for _, r := range reqs {
		r.Wait(p)
	}
}

// WaitAny blocks until at least one request completes and returns its index
// (the lowest, if several completed together). All requests must belong to
// the same endpoint.
func WaitAny(p *simtime.Process, reqs ...*Request) int {
	if len(reqs) == 0 {
		panic("core: WaitAny with no requests")
	}
	ep := reqs[0].ep
	for {
		for i, r := range reqs {
			if r.ep != ep {
				panic("core: WaitAny across endpoints")
			}
			if r.done {
				return i
			}
		}
		p.Wait(&ep.reqSig)
	}
}

// inbound is a message that arrived before a matching receive was posted:
// an eager payload or a rendezvous start.
type inbound struct {
	kind    uint8 // kindEager or kindRTS
	ctx     int   // communicator context
	src     int
	tag     int
	opID    uint32
	size    int64
	data    []byte // packed eager payload
	sAvg    int64  // sender's average run length (RTS, for Auto)
	sContig bool   // sender layout contiguous (RTS)
	failed  bool   // sender aborted this RTS before it was matched
	claimed bool   // matched and removed; tombstone in the arrival-order list
}

// Endpoint is one rank's datatype communication engine. All methods must be
// called from simulation context (a Process body or an event handler).
type Endpoint struct {
	rank   int
	node   string // tracer process name ("rank3")
	eng    *simtime.Engine
	hca    verbs.HCA
	model  *verbs.Model
	memory *mem.Memory
	cfg    Config
	ctr    *stats.Counters

	// regGauge tracks currently pinned pages (nil-safe no-op without a
	// metrics registry).
	regGauge *stats.Gauge

	qps    []verbs.QP // indexed by peer rank; nil for self
	sendCQ verbs.CQ
	recvCQ verbs.CQ

	packPool   *segPool
	unpackPool *segPool
	userReg    *mem.RegCache
	stagingReg *mem.RegCache

	recvQ      recvIndex      // posted receives, indexed per (ctx, src, tag)
	unexp      unexpIndex     // unexpected arrivals, indexed per (ctx, src, tag)
	arrivalSig simtime.Signal // broadcast when an unexpected message queues
	reqSig     simtime.Signal // broadcast whenever any request completes

	nextOp uint32

	// peers shards per-peer protocol state — the active send/recv ops and
	// the announce order (see peerState in freelist.go). The announce queue
	// serializes message announces (kindEager / kindRTS) per destination: a
	// slot is reserved at Isend time and the queue drains strictly FIFO, so
	// a registration retry that delays one message's RTS cannot let a later
	// message's announce overtake it on the wire — the receiver matches
	// announces in arrival order, so announce order IS MPI's non-overtaking
	// guarantee.
	peers       []*peerState
	activeSends int // ops linked across all peers[i].sends
	activeRecvs int // ops linked across all peers[i].recvs

	// Warm-path free-lists and scratch (freelist.go): per-message protocol
	// objects recycle through the endpoint instead of the allocator.
	sendFree      []*sendOp
	recvFree      []*recvOp
	liveSend      int
	liveRecv      int
	annFree       []*annSlot
	bufFree       [][]byte
	ctrlw         ctrlWriter       // synchronous build→send control frames
	batchScratch  [][]verbs.SendWR // postWRs doorbell-split scratch
	ctsSegScratch []segRef         // dead-CTS parse scratch
	ctsRegScratch []regRef         // dead-CTS parse scratch
	mc            metricCache      // lazily bound metric handles (observe.go)

	// Service mode (cfg.QoS != nil): lanes arbitrates bulk descriptor
	// posting per peer, gate parks whole bulk transfers under resource
	// pressure. Both are nil when QoS is disabled.
	lanes  *qos.Arbiter
	gate   *qos.Gate
	qosPol qos.Policy

	onSendCQE map[uint64]func(verbs.CQE)

	types   *typeRegistry
	layouts *layoutCache
	progs   *programCache
}

type opKey struct {
	src int
	op  uint32
}

// NewEndpoint creates the engine for one rank on the given HCA. Peers are
// wired afterwards with ConnectPeers.
func NewEndpoint(rank int, hca verbs.HCA, cfg Config) (*Endpoint, error) {
	ep := &Endpoint{
		rank:      rank,
		node:      fmt.Sprintf("rank%d", rank),
		eng:       hca.Engine(),
		hca:       hca,
		model:     hca.Model(),
		memory:    hca.Mem(),
		cfg:       cfg,
		ctr:       hca.Counters(),
		onSendCQE: make(map[uint64]func(verbs.CQE)),
		types:     newTypeRegistry(),
		layouts:   newLayoutCache(),
		progs:     newProgramCache(),
	}
	ep.recvQ.init()
	ep.unexp.init()
	ep.sendCQ = hca.NewCQ()
	ep.recvCQ = hca.NewCQ()
	ep.sendCQ.SetHandler(ep.handleSendCQE)
	ep.recvCQ.SetHandler(ep.handleRecvCQE)

	var err error
	ep.packPool, err = newSegPool(ep.memory, cfg.PoolSize, cfg.SegmentSize, cfg.PoolShards, cfg.UsePools)
	if err != nil {
		return nil, err
	}
	ep.unpackPool, err = newSegPool(ep.memory, cfg.PoolSize, cfg.SegmentSize, cfg.PoolShards, cfg.UsePools)
	if err != nil {
		return nil, err
	}
	// Observability: pool park counting and occupancy/registration gauges.
	// A nil Metrics registry hands out nil gauges, which are no-op sinks.
	ep.packPool.ctr = ep.ctr
	ep.unpackPool.ctr = ep.ctr
	ep.packPool.gauge = cfg.Metrics.Gauge("pool_used/pack")
	ep.unpackPool.gauge = cfg.Metrics.Gauge("pool_used/unpack")
	ep.regGauge = cfg.Metrics.Gauge("registered_pages")
	ep.userReg = mem.NewRegCache(ep.memory.Reg(), cfg.RegCacheCapacity, cfg.RegCache)
	ep.stagingReg = mem.NewRegCache(ep.memory.Reg(), cfg.RegCacheCapacity, cfg.RegCache)
	if inj := hca.Injector(); inj != nil {
		ep.userReg.SetFaultFn(inj.RegFault)
		ep.stagingReg.SetFaultFn(inj.RegFault)
	}
	if cfg.QoS != nil {
		ep.qosPol = *cfg.QoS
		ep.lanes = qos.NewArbiter(ep.qosPol)
		ep.gate = qos.NewGate(ep.qosPol)
	}
	return ep, nil
}

// ConnectPeers wires RC queue pairs between every pair of endpoints and
// pre-posts receive credits.
func ConnectPeers(eps []*Endpoint) {
	n := len(eps)
	for _, ep := range eps {
		if ep.qps == nil {
			ep.qps = make([]verbs.QP, n)
		}
	}
	credits := creditsFor(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := eps[i], eps[j]
			qa, qb := a.hca.Connect(b.hca, a.sendCQ, a.recvCQ, b.sendCQ, b.recvCQ)
			qa.SetUserData(j)
			qb.SetUserData(i)
			a.qps[j] = qa
			b.qps[i] = qb
			for k := 0; k < credits; k++ {
				qa.PostRecv(verbs.RecvWR{})
				qb.PostRecv(verbs.RecvWR{})
			}
		}
	}
}

// Rank returns this endpoint's rank.
func (ep *Endpoint) Rank() int { return ep.rank }

// Size returns the number of connected ranks (including self).
func (ep *Endpoint) Size() int { return len(ep.qps) }

// Mem returns the rank's simulated memory.
func (ep *Endpoint) Mem() *mem.Memory { return ep.memory }

// Counters returns the rank's statistics counters.
func (ep *Endpoint) Counters() *stats.Counters { return ep.ctr }

// Config returns the endpoint configuration.
func (ep *Endpoint) Config() Config { return ep.cfg }

// Engine returns the simulation engine.
func (ep *Endpoint) Engine() *simtime.Engine { return ep.eng }

// CommitType assigns (or returns) the rank-local index of a datatype, the
// identity shipped in Multi-W layout exchanges.
func (ep *Endpoint) CommitType(t *datatype.Type) int { return ep.types.commit(t) }

// FreeType releases a datatype's index for reuse; the next type committed to
// the same index gets a bumped version so peers' caches detect staleness.
func (ep *Endpoint) FreeType(t *datatype.Type) { ep.types.free(t) }

func (ep *Endpoint) accountReg(ops mem.RegOps) {
	atomic.AddInt64(&ep.ctr.Registrations, ops.Registrations)
	atomic.AddInt64(&ep.ctr.RegisteredBytes, ops.RegisteredBytes)
	atomic.AddInt64(&ep.ctr.RegisteredPages, ops.RegisteredPages)
	atomic.AddInt64(&ep.ctr.Deregistrations, ops.Dereg)
	atomic.AddInt64(&ep.ctr.DeregisteredPages, ops.DeregPages)
	atomic.AddInt64(&ep.ctr.RegCacheHits, ops.Hits)
	atomic.AddInt64(&ep.ctr.RegCacheMisses, ops.Misses)
	atomic.AddInt64(&ep.ctr.RegCacheEvictions, ops.Evictions)
	ep.regGauge.Add(ops.RegisteredPages - ops.DeregPages)
}

// after charges the endpoint CPU for d and runs fn when the work finishes.
func (ep *Endpoint) after(d simtime.Duration, fn func()) {
	ep.afterNamed(d, "host", fn)
}

// afterNamed is after with an activity label for the tracer.
func (ep *Endpoint) afterNamed(d simtime.Duration, name string, fn func()) {
	end := ep.hca.ChargeCPUNamed(d, name)
	ep.eng.At(end, fn)
}

// annSlot is one reserved position in a peer's announce order.
type annSlot struct {
	ready bool
	fn    func()
}

// reserveAnnounce claims the next announce position for dst. Must be called
// synchronously at Isend time, before any virtual-time deferral, so the
// slot order equals the MPI posting order.
func (ep *Endpoint) reserveAnnounce(dst int) *annSlot {
	s := ep.getAnnSlot()
	q := &ep.peer(dst).ann
	q.s = append(q.s, s)
	return s
}

// announceReady supplies the slot's post closure (which may be a no-op for
// an op that died before announcing) and drains the queue head while it is
// ready. An announce delayed by registration backoff thus blocks every
// later announce to the same peer instead of being overtaken by one.
// Drained slots are nilled out immediately — their post closures capture
// packed payloads — then recycled to the slot free-list (safe because post
// closures only build and send control frames; they never reenter the
// announce machinery), and the backing array is released once fully drained,
// so the queue retains nothing for completed announces.
func (ep *Endpoint) announceReady(dst int, s *annSlot, fn func()) {
	s.ready, s.fn = true, fn
	q := &ep.peer(dst).ann
	for q.head < len(q.s) && q.s[q.head].ready {
		slot := q.s[q.head]
		q.s[q.head] = nil
		q.head++
		slot.fn()
		ep.putAnnSlot(slot)
	}
	if q.head == len(q.s) {
		if cap(q.s) > 256 {
			q.s = nil
		} else {
			q.s = q.s[:0]
		}
		q.head = 0
	}
}

// sendCtrl posts a control message to a peer.
func (ep *Endpoint) sendCtrl(dst int, payload []byte, onCQE func(verbs.CQE)) {
	atomic.AddInt64(&ep.ctr.CtrlMessages, 1)
	wrid := ep.hca.WRID()
	if onCQE != nil {
		ep.onSendCQE[wrid] = onCQE
	}
	if err := ep.qps[dst].PostSend(verbs.SendWR{WRID: wrid, Op: verbs.OpSend, Inline: payload}); err != nil {
		panic(fmt.Sprintf("core: ctrl send failed: %v", err))
	}
}

func (ep *Endpoint) handleSendCQE(e verbs.CQE) {
	if cb, ok := ep.onSendCQE[e.WRID]; ok {
		delete(ep.onSendCQE, e.WRID)
		cb(e)
		return
	}
	if e.Err != nil {
		panic(fmt.Sprintf("core rank %d: unhandled send error: %v", ep.rank, e.Err))
	}
}

func (ep *Endpoint) handleRecvCQE(e verbs.CQE) {
	// Replenish the consumed credit.
	e.QP.PostRecv(verbs.RecvWR{})
	src := e.QP.UserData()
	if e.Data != nil {
		ep.handleCtrl(src, e.Data)
		return
	}
	if !e.HasImm {
		panic("core: receive completion with neither data nor immediate")
	}
	ep.handleImm(src, e.Imm, e.Bytes)
}

// --- Send / receive entry points ------------------------------------------

// Isend starts a nonblocking send of (buf, count, dt) to rank dst with tag
// in the default (world) communicator context.
func (ep *Endpoint) Isend(buf mem.Addr, count int, dt *datatype.Type, dst, tag int) *Request {
	return ep.IsendCtx(0, buf, count, dt, dst, tag)
}

// IsendCtx is Isend within an explicit communicator context: messages match
// receives only within the same context.
func (ep *Endpoint) IsendCtx(ctx int, buf mem.Addr, count int, dt *datatype.Type, dst, tag int) *Request {
	req := &Request{ep: ep, Source: ep.rank, Tag: tag}
	size := dt.Size() * int64(count)
	req.Bytes = size
	switch {
	case dst == ep.rank:
		ep.selfSend(req, ctx, buf, count, dt, tag)
	case size < ep.cfg.EagerThreshold:
		ep.eagerSend(req, ctx, buf, count, dt, dst, tag)
	default:
		ep.rndvSend(req, ctx, buf, count, dt, dst, tag)
	}
	return req
}

// IssendCtx starts a synchronous-mode send: it always uses the rendezvous
// protocol, so completion implies the receive has been matched
// (MPI_Issend). Self sends fall back to standard semantics.
func (ep *Endpoint) IssendCtx(ctx int, buf mem.Addr, count int, dt *datatype.Type, dst, tag int) *Request {
	req := &Request{ep: ep, Source: ep.rank, Tag: tag}
	req.Bytes = dt.Size() * int64(count)
	if dst == ep.rank {
		ep.selfSend(req, ctx, buf, count, dt, tag)
		return req
	}
	ep.rndvSend(req, ctx, buf, count, dt, dst, tag)
	return req
}

// Ssend is the blocking synchronous-mode send in the world context.
func (ep *Endpoint) Ssend(p *simtime.Process, buf mem.Addr, count int, dt *datatype.Type, dst, tag int) error {
	r := ep.IssendCtx(0, buf, count, dt, dst, tag)
	r.Wait(p)
	return r.Err
}

// Irecv posts a nonblocking receive into (buf, count, dt) from rank src
// (or AnySource) with tag (or AnyTag) in the default (world) context.
func (ep *Endpoint) Irecv(buf mem.Addr, count int, dt *datatype.Type, src, tag int) *Request {
	return ep.IrecvCtx(0, buf, count, dt, src, tag)
}

// IrecvCtx is Irecv within an explicit communicator context.
func (ep *Endpoint) IrecvCtx(ctx int, buf mem.Addr, count int, dt *datatype.Type, src, tag int) *Request {
	req := &Request{
		ep: ep, isRecv: true,
		buf: buf, count: count, dt: dt, ctxWant: ctx, srcWant: src, tagWant: tag,
	}
	if inb := ep.unexp.take(ctx, src, tag); inb != nil {
		ep.deliver(inb, req)
		return req
	}
	ep.recvQ.post(req)
	return req
}

// Send is the blocking form of Isend.
func (ep *Endpoint) Send(p *simtime.Process, buf mem.Addr, count int, dt *datatype.Type, dst, tag int) error {
	r := ep.Isend(buf, count, dt, dst, tag)
	r.Wait(p)
	return r.Err
}

// Recv is the blocking form of Irecv; it returns the completed request for
// its status fields.
func (ep *Endpoint) Recv(p *simtime.Process, buf mem.Addr, count int, dt *datatype.Type, src, tag int) (*Request, error) {
	r := ep.Irecv(buf, count, dt, src, tag)
	r.Wait(p)
	return r, r.Err
}

func matchWanted(wantCtx, wantSrc, wantTag, ctx, src, tag int) bool {
	return wantCtx == ctx &&
		(wantSrc == AnySource || wantSrc == src) &&
		(wantTag == AnyTag || wantTag == tag)
}

// matchPosted finds and removes the first posted receive matching
// (ctx, src, tag).
func (ep *Endpoint) matchPosted(ctx, src, tag int) *Request {
	return ep.recvQ.match(ctx, src, tag)
}

// deliver routes a matched inbound message to its receive request.
func (ep *Endpoint) deliver(inb *inbound, req *Request) {
	switch inb.kind {
	case kindEager:
		ep.eagerDeliver(inb, req)
	case kindRTS:
		if inb.failed {
			// The sender aborted this transfer before we matched it; fail
			// the receive promptly instead of waiting for data forever.
			req.Source = inb.src
			req.Tag = inb.tag
			atomic.AddInt64(&ep.ctr.RequestsFailed, 1)
			req.complete(fmt.Errorf("%w (sender rank %d)", ErrRemoteAbort, inb.src))
			return
		}
		ep.rndvMatched(inb, req)
	default:
		panic("core: bad inbound kind")
	}
}

// --- Eager protocol ---------------------------------------------------------

// eagerSend transfers small messages through the Eager protocol. With the
// Generic scheme, data is packed into a temporary buffer and then copied to
// the protocol's internal buffer (Figure 1); every other scheme packs
// directly into the internal buffer (the improved path of Figure 7).
func (ep *Endpoint) eagerSend(req *Request, ctx int, buf mem.Addr, count int, dt *datatype.Type, dst, tag int) {
	slot := ep.reserveAnnounce(dst)
	size := dt.Size() * int64(count)
	payload := ep.getBuf(size)
	p := ep.newPacker(buf, dt, count)
	n, runs := p.PackTo(payload)
	if n != size {
		panic("core: short pack")
	}
	var cost simtime.Duration
	if dt.Contig() {
		// Contiguous data: one copy into the internal buffer either way.
		cost = ep.model.CopyTime(size, 1)
		atomic.AddInt64(&ep.ctr.BytesStaged, size)
	} else if ep.cfg.Scheme == SchemeGeneric {
		// Pack to temp buffer, then copy temp into the internal buffer.
		cost = ep.model.MallocTime(size) +
			ep.cfg.packCost(ep.model, size, runs) +
			ep.model.CopyTime(size, 1)
		atomic.AddInt64(&ep.ctr.BytesPacked, size)
		atomic.AddInt64(&ep.ctr.BytesStaged, size)
	} else {
		cost = ep.cfg.packCost(ep.model, size, runs)
		atomic.AddInt64(&ep.ctr.BytesPacked, size)
	}
	atomic.AddInt64(&ep.ctr.EagerSends, 1)

	// The frame buffer is pooled, not the endpoint's synchronous ctrl
	// scratch: the announce may be queued behind an earlier message's
	// delayed RTS and posted later, so it needs its own storage. The packed
	// payload is copied into the frame here, so both buffers return to the
	// free-list as soon as their last reader is done — the payload now, the
	// frame once the fabric has copied it inline (PostSend does that
	// synchronously inside sendCtrl).
	w := ctrlWriter{buf: ep.getBuf(0)}
	w.u8(kindEager)
	w.u32(uint32(ctx))
	w.u32(uint32(tag))
	w.i64(size)
	w.bytes(payload)
	ep.putBuf(payload)

	// Charge the pack, then post through the announce queue: the CPU
	// resource already orders the wire message after the pack work, and the
	// queue keeps wire order equal to Isend call order — MPI's
	// non-overtaking guarantee — even when an earlier rendezvous send's RTS
	// is sitting in a registration-retry backoff.
	t0 := ep.tnow()
	end := ep.hca.ChargeCPUNamed(cost, "pack")
	ep.announceReady(dst, slot, func() {
		ep.sendCtrl(dst, w.buf, nil)
		ep.putBuf(w.buf)
	})
	// The eager send completes once the data has left the user buffer.
	ep.eng.At(end, func() {
		ep.span("eager send", "data", 0, size, t0)
		req.complete(nil)
	})
}

// handleCtrl dispatches an arrived control message.
func (ep *Endpoint) handleCtrl(src int, data []byte) {
	r := &ctrlReader{buf: data}
	kind := r.u8()
	switch kind {
	case kindEager:
		ctx := int(int32(r.u32()))
		tag := int(int32(r.u32()))
		size := r.i64()
		payload := r.bytes()
		if r.err != nil {
			panic(r.err)
		}
		inb := &inbound{kind: kindEager, ctx: ctx, src: src, tag: tag, size: size, data: payload}
		if req := ep.matchPosted(ctx, src, tag); req != nil {
			ep.eagerDeliver(inb, req)
			return
		}
		// Unexpected: MPICH copies the payload aside into an unexpected-
		// message buffer; charge that staging copy.
		atomic.AddInt64(&ep.ctr.BytesStaged, size)
		ep.hca.ChargeCPU(ep.model.CopyTime(size, 1))
		ep.unexp.add(inb)
		ep.arrivalSig.Broadcast()
	case kindRTS:
		inb := &inbound{kind: kindRTS, src: src}
		inb.opID = r.u32()
		inb.ctx = int(int32(r.u32()))
		inb.tag = int(int32(r.u32()))
		inb.size = r.i64()
		inb.sAvg = r.i64()
		inb.sContig = r.u8() != 0
		if r.err != nil {
			panic(r.err)
		}
		if req := ep.matchPosted(inb.ctx, src, inb.tag); req != nil {
			ep.rndvMatched(inb, req)
			return
		}
		ep.unexp.add(inb)
		ep.arrivalSig.Broadcast()
	case kindCTS:
		ep.handleCTS(src, r)
	case kindSegReady:
		ep.handleSegReady(src, r)
	case kindDone:
		ep.handleDone(src, r)
	case kindSendFail:
		ep.handleSendFail(src, r)
	case kindRecvFail:
		ep.handleRecvFail(src, r)
	default:
		panic(fmt.Sprintf("core: bad control kind %d", kind))
	}
}

// eagerDeliver unpacks a matched eager payload into the receive buffer.
func (ep *Endpoint) eagerDeliver(inb *inbound, req *Request) {
	capacity := req.dt.Size() * int64(req.count)
	n := inb.size
	var err error
	if n > capacity {
		n = capacity
		err = ErrTruncate
	}
	u := ep.newUnpacker(req.buf, req.dt, req.count)
	got, runs := u.UnpackFrom(inb.data[:n])
	if got != n {
		panic("core: short unpack")
	}
	var cost simtime.Duration
	if req.dt.Contig() {
		cost = ep.model.CopyTime(n, 1)
		atomic.AddInt64(&ep.ctr.BytesStaged, n)
	} else if ep.cfg.Scheme == SchemeGeneric {
		cost = ep.model.CopyTime(n, 1) +
			ep.model.MallocTime(n) +
			ep.cfg.packCost(ep.model, n, runs)
		atomic.AddInt64(&ep.ctr.BytesStaged, n)
		atomic.AddInt64(&ep.ctr.BytesUnpacked, n)
	} else {
		cost = ep.cfg.packCost(ep.model, n, runs)
		atomic.AddInt64(&ep.ctr.BytesUnpacked, n)
	}
	req.Source = inb.src
	req.Tag = inb.tag
	req.Bytes = n
	t0 := ep.tnow()
	ep.afterNamed(cost, "unpack", func() {
		ep.span("eager recv", "data", 0, n, t0)
		req.complete(err)
	})
}

// --- Self sends -------------------------------------------------------------

// selfSend handles rank-to-rank-self transfers with a local pack/unpack.
func (ep *Endpoint) selfSend(req *Request, ctx int, buf mem.Addr, count int, dt *datatype.Type, tag int) {
	size := dt.Size() * int64(count)
	payload := make([]byte, size)
	p := ep.newPacker(buf, dt, count)
	_, runs := p.PackTo(payload)
	atomic.AddInt64(&ep.ctr.BytesPacked, size)
	cost := ep.cfg.packCost(ep.model, size, runs)
	inb := &inbound{kind: kindEager, ctx: ctx, src: ep.rank, tag: tag, size: size, data: payload}
	ep.afterNamed(cost, "pack", func() {
		req.complete(nil)
		if r := ep.matchPosted(ctx, ep.rank, tag); r != nil {
			ep.eagerDeliver(inb, r)
			return
		}
		ep.unexp.add(inb)
		ep.arrivalSig.Broadcast()
	})
}

// DebugState summarizes in-flight protocol state for diagnosing stalls.
func (ep *Endpoint) DebugState() string {
	return fmt.Sprintf(
		"rank %d: sendOps=%d recvOps=%d posted=%d unexpected=%d packPool(free=%d/%d waiters=%d) unpackPool(free=%d/%d waiters=%d) cqCallbacks=%d %s",
		ep.rank, ep.activeSends, ep.activeRecvs, ep.recvQ.len(), ep.unexp.len(),
		ep.packPool.available(), ep.packPool.totalSlots(), ep.packPool.pendingWaiters(),
		ep.unpackPool.available(), ep.unpackPool.totalSlots(), ep.unpackPool.pendingWaiters(),
		len(ep.onSendCQE), ep.poolStatsString())
}

// DebugOps lists in-flight operation details (diagnostics only).
func (ep *Endpoint) DebugOps() string {
	s := ""
	for _, p := range ep.peers {
		if p == nil {
			continue
		}
		for _, op := range p.sends {
			s += fmt.Sprintf("send op %d: dst=%d eff=%d wrsLeft=%d segsHeld=%d\n",
				op.id, op.dst, op.eff, op.wrsLeft, len(op.segs))
		}
		for _, op := range p.recvs {
			s += fmt.Sprintf("recv op %d from %d: scheme=%v eff=%d arrived=%d/%d finished=%d bytesRead=%d\n",
				op.key.op, op.key.src, op.scheme, op.eff, op.arrived, op.nSegs, op.finished, op.bytesRead)
		}
	}
	return s
}

// Status describes a matched (or probed) message.
type Status struct {
	Source int
	Tag    int
	Bytes  int64
}

// Iprobe checks, without receiving, whether a message matching (src, tag) —
// wildcards allowed — has arrived in the world context. It reports the
// message's envelope.
func (ep *Endpoint) Iprobe(src, tag int) (Status, bool) {
	return ep.IprobeCtx(0, src, tag)
}

// IprobeCtx is Iprobe within an explicit communicator context.
func (ep *Endpoint) IprobeCtx(ctx, src, tag int) (Status, bool) {
	if inb, ok := ep.unexp.peek(ctx, src, tag); ok {
		return Status{Source: inb.src, Tag: inb.tag, Bytes: inb.size}, true
	}
	return Status{}, false
}

// Probe blocks until a message matching (src, tag) arrives in the world
// context and returns its envelope without receiving it.
func (ep *Endpoint) Probe(p *simtime.Process, src, tag int) Status {
	return ep.ProbeCtx(p, 0, src, tag)
}

// ProbeCtx is Probe within an explicit communicator context.
func (ep *Endpoint) ProbeCtx(p *simtime.Process, ctx, src, tag int) Status {
	for {
		if st, ok := ep.IprobeCtx(ctx, src, tag); ok {
			return st
		}
		p.Wait(&ep.arrivalSig)
	}
}
