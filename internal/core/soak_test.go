package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/simtime"
)

// The soak test: random traffic — mixed schemes per world, random datatypes,
// random sizes spanning eager and rendezvous, random posting order (receives
// before or after sends), multiple concurrent messages per pair — must
// always deliver exactly the sent bytes, in order per (source, tag), with
// balanced resources afterwards.
func TestRandomTrafficSoak(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schemes := []Scheme{SchemeGeneric, SchemeBCSPUP, SchemeRWGUP,
			SchemePRRS, SchemeMultiW, SchemeAuto}
		cfg := DefaultConfig()
		cfg.Scheme = schemes[rng.Intn(len(schemes))]
		cfg.PoolSize = int64(rng.Intn(3)+1) << 20
		if rng.Intn(4) == 0 {
			cfg.RegCache = false
		}
		nRanks := rng.Intn(2) + 2 // 2..3
		w := newTestWorld(t, nRanks, cfg, 64<<20)

		// Plan: a set of messages (src, dst, tag, type, count) known to all.
		type msg struct {
			src, dst, tag int
			dt            *datatype.Type
			count         int
			payload       []byte
		}
		types := []*datatype.Type{
			datatype.Must(datatype.TypeVector(32, 4, 16, datatype.Int32)),
			datatype.Must(datatype.TypeContiguous(512, datatype.Int32)),
			datatype.Must(datatype.TypeStruct(
				[]int{1, 5, 9}, []int64{0, 8, 40},
				[]*datatype.Type{datatype.Int32, datatype.Int32, datatype.Int32})),
		}
		nMsgs := rng.Intn(8) + 3
		var plan []msg
		for i := 0; i < nMsgs; i++ {
			src := rng.Intn(nRanks)
			dst := rng.Intn(nRanks)
			if dst == src {
				dst = (dst + 1) % nRanks
			}
			plan = append(plan, msg{
				src: src, dst: dst, tag: rng.Intn(3),
				dt:    types[rng.Intn(len(types))],
				count: rng.Intn(40) + 1,
			})
		}
		received := make([][]byte, len(plan))
		recvBufs := make([]mem.Addr, len(plan))
		jitter := make([]simtime.Duration, nRanks)
		for i := range jitter {
			jitter[i] = simtime.Duration(rng.Int63n(1000))
		}
		ok := true

		w.run(t, func(p *simtime.Process, ep *Endpoint) {
			p.Sleep(jitter[ep.Rank()])
			var reqs []*Request
			var recvIdx []int
			for i, m := range plan {
				if m.dst == ep.Rank() {
					buf := allocFor(ep, m.dt, m.count)
					recvBufs[i] = buf
					reqs = append(reqs, ep.Irecv(buf, m.count, m.dt, m.src, m.tag))
					recvIdx = append(recvIdx, i)
				}
			}
			for i, m := range plan {
				if m.src == ep.Rank() {
					buf := allocFor(ep, m.dt, m.count)
					plan[i].payload = fillMsg(ep, buf, m.dt, m.count, byte(i+1))
					reqs = append(reqs, ep.Isend(buf, m.count, m.dt, m.dst, m.tag))
				}
			}
			WaitAll(p, reqs...)
			for _, i := range recvIdx {
				received[i] = readMsg(ep, recvBufs[i], plan[i].dt, plan[i].count)
			}
		})

		for i, m := range plan {
			if m.payload == nil || received[i] == nil {
				return false
			}
			if !bytes.Equal(m.payload, received[i]) {
				ok = false
			}
		}
		// Resource balance.
		for _, ep := range w.eps {
			if ep.activeSends != 0 || ep.activeRecvs != 0 || len(ep.onSendCQE) != 0 {
				return false
			}
			if ep.packPool.enabled && ep.packPool.available() != ep.packPool.totalSlots() {
				return false
			}
			if ep.unpackPool.enabled && ep.unpackPool.available() != ep.unpackPool.totalSlots() {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The fault soak: one short pass of random traffic under transient fault
// injection runs by default with every `go test`. The retry machinery must
// keep delivery byte-identical and resources balanced no matter where the
// injector lands its faults.
func TestRandomTrafficFaultSoak(t *testing.T) {
	f := func(seed int64) bool { return randomTrafficFaultSoak(t, seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSoakRegressionSeeds replays soak inputs that once exposed real bugs.
// 7015782731170911169: P-RRS plan where a transient registration fault put
// one message's RTS into retry backoff and a later same-tag eager send
// overtook it, matching the wrong (smaller) receive — "message truncated".
// Fixed by the per-destination announce queue in endpoint.go.
func TestSoakRegressionSeeds(t *testing.T) {
	for _, seed := range []int64{7015782731170911169} {
		if !randomTrafficFaultSoak(t, seed) {
			t.Errorf("regression seed %d failed", seed)
		}
	}
}

// randomTrafficFaultSoak is the soak property for one seed, named so a
// failing input reported by testing/quick can be replayed directly.
func randomTrafficFaultSoak(t *testing.T, seed int64) bool {
	{
		rng := rand.New(rand.NewSource(seed))
		schemes := []Scheme{SchemeGeneric, SchemeBCSPUP, SchemeRWGUP,
			SchemePRRS, SchemeMultiW, SchemeAuto}
		cfg := DefaultConfig()
		cfg.Scheme = schemes[rng.Intn(len(schemes))]
		cfg.PoolSize = int64(rng.Intn(3)+1) << 20
		fc := fault.Config{
			Seed:         rng.Int63(),
			PostFailRate: 0.04,
			CQEErrorRate: 0.06,
			RegFailRate:  0.04,
			DelayRate:    0.08,
			MaxDelay:     15 * simtime.Microsecond,
		}
		w, _ := newFaultWorld(t, 2, cfg, 64<<20, fc)

		types := []*datatype.Type{
			datatype.Must(datatype.TypeVector(32, 4, 16, datatype.Int32)),
			datatype.Must(datatype.TypeContiguous(512, datatype.Int32)),
		}
		type msg struct {
			src, dst, tag int
			dt            *datatype.Type
			count         int
			payload       []byte
		}
		nMsgs := rng.Intn(4) + 2
		var plan []msg
		for i := 0; i < nMsgs; i++ {
			src := rng.Intn(2)
			plan = append(plan, msg{
				src: src, dst: 1 - src, tag: rng.Intn(3),
				dt:    types[rng.Intn(len(types))],
				count: rng.Intn(40) + 1,
			})
		}
		received := make([][]byte, len(plan))
		recvBufs := make([]mem.Addr, len(plan))
		w.run(t, func(p *simtime.Process, ep *Endpoint) {
			var reqs []*Request
			var recvIdx []int
			for i, m := range plan {
				if m.dst == ep.Rank() {
					buf := allocFor(ep, m.dt, m.count)
					recvBufs[i] = buf
					reqs = append(reqs, ep.Irecv(buf, m.count, m.dt, m.src, m.tag))
					recvIdx = append(recvIdx, i)
				}
			}
			for i, m := range plan {
				if m.src == ep.Rank() {
					buf := allocFor(ep, m.dt, m.count)
					plan[i].payload = fillMsg(ep, buf, m.dt, m.count, byte(i+1))
					reqs = append(reqs, ep.Isend(buf, m.count, m.dt, m.dst, m.tag))
				}
			}
			WaitAll(p, reqs...)
			for _, r := range reqs {
				if r.Err != nil {
					t.Errorf("transient-fault soak request failed: %v", r.Err)
				}
			}
			for _, i := range recvIdx {
				received[i] = readMsg(ep, recvBufs[i], plan[i].dt, plan[i].count)
			}
		})

		for i, m := range plan {
			if m.payload == nil || received[i] == nil || !bytes.Equal(m.payload, received[i]) {
				return false
			}
		}
		for _, ep := range w.eps {
			if ep.activeSends != 0 || ep.activeRecvs != 0 || len(ep.onSendCQE) != 0 {
				return false
			}
			if ep.packPool.enabled && ep.packPool.available() != ep.packPool.totalSlots() {
				return false
			}
			if ep.unpackPool.enabled && ep.unpackPool.available() != ep.unpackPool.totalSlots() {
				return false
			}
		}
		return true
	}
}

// Determinism: the same plan run twice produces identical virtual end times.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() simtime.Time {
		cfg := DefaultConfig()
		cfg.Scheme = SchemeBCSPUP
		cfg.PoolSize = 2 << 20
		w := newTestWorld(t, 2, cfg, 48<<20)
		vec := datatype.Must(datatype.TypeVector(128, 32, 64, datatype.Int32))
		w.run(t, func(p *simtime.Process, ep *Endpoint) {
			buf := allocFor(ep, vec, 4)
			if ep.Rank() == 0 {
				fillMsg(ep, buf, vec, 4, 1)
				for i := 0; i < 5; i++ {
					ep.Send(p, buf, 4, vec, 1, i)
				}
			} else {
				for i := 0; i < 5; i++ {
					ep.Recv(p, buf, 4, vec, 0, i)
				}
			}
		})
		return w.eng.Now()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic end times: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("no time elapsed")
	}
}
