package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/ib"
	"repro/internal/mem"
	"repro/internal/simtime"
)

// newFaultWorld is newTestWorld with a fault injector wired into the fabric
// before the endpoints are built (NewEndpoint hooks the registration caches
// only when the injector is already present).
func newFaultWorld(t *testing.T, n int, cfg Config, memSize int64, fc fault.Config) (*testWorld, *fault.Injector) {
	t.Helper()
	eng := simtime.NewEngine()
	fab := ib.NewFabric(eng, ib.DefaultModel())
	inj := fault.New(fc)
	fab.SetInjector(inj)
	eps := make([]*Endpoint, n)
	for i := range eps {
		m := mem.NewMemory(fmt.Sprintf("n%d", i), memSize)
		hca := fab.AddHCA(fmt.Sprintf("n%d", i), m, nil)
		ep, err := NewEndpoint(i, hca, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	ConnectPeers(eps)
	return &testWorld{eng: eng, eps: eps}, inj
}

// checkNoLeaks asserts that after the run every endpoint has returned to its
// quiescent state: no in-flight ops, no dangling completion callbacks, and
// both staging pools back to full capacity.
func checkNoLeaks(t *testing.T, w *testWorld) {
	t.Helper()
	for _, ep := range w.eps {
		if ep.activeSends != 0 || ep.activeRecvs != 0 {
			t.Errorf("rank %d: leaked ops: %s", ep.Rank(), ep.DebugOps())
		}
		if ps := ep.PoolStats(); ps.LiveSendOps != 0 || ps.LiveRecvOps != 0 {
			t.Errorf("rank %d: pooled ops not recycled at quiescence: %+v", ep.Rank(), ps)
		}
		if len(ep.onSendCQE) != 0 {
			t.Errorf("rank %d: %d leaked CQE callbacks", ep.Rank(), len(ep.onSendCQE))
		}
		for _, pl := range []struct {
			name string
			pool *segPool
		}{{"pack", ep.packPool}, {"unpack", ep.unpackPool}} {
			if pl.pool.enabled && pl.pool.available() != pl.pool.totalSlots() {
				t.Errorf("rank %d: %s pool leaked slots: %d/%d free",
					ep.Rank(), pl.name, pl.pool.available(), pl.pool.totalSlots())
			}
			if pl.pool.pendingWaiters() != 0 {
				t.Errorf("rank %d: %s pool has %d stuck waiters", ep.Rank(), pl.name, pl.pool.pendingWaiters())
			}
		}
	}
}

var faultSchemes = []Scheme{SchemeGeneric, SchemeBCSPUP, SchemeRWGUP, SchemePRRS, SchemeMultiW}

// TestTransientFaultsByteIdentical runs every scheme under a moderate
// transient fault load (post failures, error CQEs, registration failures,
// delayed completions) and requires byte-identical delivery with no leaked
// resources — the retry machinery must fully mask the faults.
func TestTransientFaultsByteIdentical(t *testing.T) {
	fc := fault.Config{
		Seed:         42,
		PostFailRate: 0.05,
		CQEErrorRate: 0.08,
		RegFailRate:  0.05,
		DelayRate:    0.10,
		MaxDelay:     20 * simtime.Microsecond,
	}
	const msgs = 3
	var totalInjected int64
	for _, scheme := range faultSchemes {
		for _, sh := range testShapes() {
			t.Run(fmt.Sprintf("%v/%s", scheme, sh.name), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Scheme = scheme
				cfg.PoolSize = 4 << 20
				w, inj := newFaultWorld(t, 2, cfg, 48<<20, fc)
				count := 160 // multi-segment rendezvous for every shape
				sent := make([][]byte, msgs)
				got := make([][]byte, msgs)
				w.run(t, func(p *simtime.Process, ep *Endpoint) {
					if ep.Rank() == 0 {
						reqs := make([]*Request, msgs)
						for m := 0; m < msgs; m++ {
							buf := allocFor(ep, sh.dt, count)
							sent[m] = fillMsg(ep, buf, sh.dt, count, byte(0x11*m+3))
							reqs[m] = ep.Isend(buf, count, sh.dt, 1, m)
						}
						for m, r := range reqs {
							r.Wait(p)
							if r.Err != nil {
								t.Errorf("send %d: %v", m, r.Err)
							}
						}
					} else {
						for m := 0; m < msgs; m++ {
							buf := allocFor(ep, sh.dt, count)
							req, err := ep.Recv(p, buf, count, sh.dt, 0, m)
							if err != nil {
								t.Errorf("recv %d: %v", m, err)
							}
							_ = req
							got[m] = readMsg(ep, buf, sh.dt, count)
						}
					}
				})
				for m := 0; m < msgs; m++ {
					if !bytes.Equal(sent[m], got[m]) {
						t.Errorf("message %d corrupted under transient faults", m)
					}
				}
				checkNoLeaks(t, w)
				totalInjected += inj.Stats().Total()
			})
		}
	}
	// Low-descriptor-count schemes (Generic posts one write per message) may
	// individually draw no fault, but across the matrix plenty must fire.
	if totalInjected == 0 {
		t.Error("injector never fired; test exercised nothing")
	}
}

// TestPermanentFaultAbortsCleanly forces every RDMA completion to fail
// permanently: both sides' requests must complete with an error (no rank may
// panic or hang), and no pool slots, registrations, or op state may leak.
func TestPermanentFaultAbortsCleanly(t *testing.T) {
	fc := fault.Config{
		Seed:          7,
		CQEErrorRate:  1.0,
		PermanentRate: 1.0,
	}
	for _, scheme := range faultSchemes {
		for _, sh := range testShapes() {
			t.Run(fmt.Sprintf("%v/%s", scheme, sh.name), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Scheme = scheme
				cfg.PoolSize = 4 << 20
				w, _ := newFaultWorld(t, 2, cfg, 48<<20, fc)
				count := 160
				w.run(t, func(p *simtime.Process, ep *Endpoint) {
					if ep.Rank() == 0 {
						buf := allocFor(ep, sh.dt, count)
						fillMsg(ep, buf, sh.dt, count, 0x5A)
						if err := ep.Send(p, buf, count, sh.dt, 1, 7); err == nil {
							t.Error("send succeeded despite permanent faults")
						}
					} else {
						buf := allocFor(ep, sh.dt, count)
						if _, err := ep.Recv(p, buf, count, sh.dt, 0, 7); err == nil {
							t.Error("recv succeeded despite permanent faults")
						}
					}
				})
				checkNoLeaks(t, w)
				for _, ep := range w.eps {
					if ep.Counters().RequestsFailed == 0 {
						t.Errorf("rank %d: RequestsFailed not counted", ep.Rank())
					}
				}
			})
		}
	}
}

// TestPermanentRegistrationFaultAborts fails every registration permanently:
// the rendezvous must still resolve with errors on both sides (the sender
// announces the op before aborting so the receiver is not left waiting).
func TestPermanentRegistrationFaultAborts(t *testing.T) {
	fc := fault.Config{
		Seed:          11,
		RegFailRate:   1.0,
		PermanentRate: 1.0,
	}
	for _, scheme := range []Scheme{SchemeRWGUP, SchemePRRS, SchemeMultiW} {
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.PoolSize = 4 << 20
			sh := testShapes()[0] // vector
			w, _ := newFaultWorld(t, 2, cfg, 48<<20, fc)
			count := 160
			w.run(t, func(p *simtime.Process, ep *Endpoint) {
				if ep.Rank() == 0 {
					buf := allocFor(ep, sh.dt, count)
					fillMsg(ep, buf, sh.dt, count, 0x5A)
					if err := ep.Send(p, buf, count, sh.dt, 1, 7); err == nil {
						t.Error("send succeeded despite permanent registration faults")
					}
				} else {
					buf := allocFor(ep, sh.dt, count)
					if _, err := ep.Recv(p, buf, count, sh.dt, 0, 7); err == nil {
						t.Error("recv succeeded despite permanent registration faults")
					}
				}
			})
			checkNoLeaks(t, w)
		})
	}
}

// TestPermanentFaultLayoutCacheStaysCoherent replays several sequential
// Multi-W transfers under mixed permanent faults. When the sender aborts
// before the CTS arrives (pre-RTS registration failure), the receiver has
// already marked the layout as delivered to that peer — the CTS for the
// dead op must still be absorbed into the sender's layout cache, or the
// next transfer's layout-less CTS panics with a cache miss. The seed sweep
// covers the abort-then-reuse interleavings.
func TestPermanentFaultLayoutCacheStaysCoherent(t *testing.T) {
	sh := testShapes()[0]
	const count = 160
	const msgs = 3
	for seed := int64(1); seed <= 25; seed++ {
		fc := fault.Config{
			Seed:          seed,
			RegFailRate:   0.5,
			CQEErrorRate:  0.2,
			PermanentRate: 1.0,
		}
		cfg := DefaultConfig()
		cfg.Scheme = SchemeMultiW
		cfg.PoolSize = 4 << 20
		w, _ := newFaultWorld(t, 2, cfg, 48<<20, fc)
		sent := make([][]byte, msgs)
		got := make([][]byte, msgs)
		sendOK := make([]bool, msgs)
		recvOK := make([]bool, msgs)
		w.run(t, func(p *simtime.Process, ep *Endpoint) {
			for m := 0; m < msgs; m++ {
				buf := allocFor(ep, sh.dt, count)
				if ep.Rank() == 0 {
					sent[m] = fillMsg(ep, buf, sh.dt, count, byte(0x21*m+5))
					if err := ep.Send(p, buf, count, sh.dt, 1, m); err == nil {
						sendOK[m] = true
					}
				} else {
					if _, err := ep.Recv(p, buf, count, sh.dt, 0, m); err == nil {
						recvOK[m] = true
						got[m] = readMsg(ep, buf, sh.dt, count)
					}
				}
			}
		})
		for m := 0; m < msgs; m++ {
			if sendOK[m] != recvOK[m] {
				t.Errorf("seed %d msg %d: send ok=%v recv ok=%v (outcomes must agree)",
					seed, m, sendOK[m], recvOK[m])
			}
			if sendOK[m] && recvOK[m] && !bytes.Equal(sent[m], got[m]) {
				t.Errorf("seed %d: message %d corrupted", seed, m)
			}
		}
		checkNoLeaks(t, w)
	}
}

// TestLateReceiveAfterSenderAbort posts the receive only after the sender has
// already aborted (pre-RTS registration failure). The dead RTS must stay
// matchable so the late receive fails promptly with ErrRemoteAbort rather
// than deadlocking the simulation.
func TestLateReceiveAfterSenderAbort(t *testing.T) {
	fc := fault.Config{
		Seed:          3,
		RegFailRate:   1.0,
		PermanentRate: 1.0,
	}
	cfg := DefaultConfig()
	cfg.Scheme = SchemeMultiW // registers the user buffer before the RTS
	cfg.PoolSize = 4 << 20
	sh := testShapes()[0]
	w, _ := newFaultWorld(t, 2, cfg, 48<<20, fc)
	count := 160
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		if ep.Rank() == 0 {
			buf := allocFor(ep, sh.dt, count)
			fillMsg(ep, buf, sh.dt, count, 0x5A)
			if err := ep.Send(p, buf, count, sh.dt, 1, 7); err == nil {
				t.Error("send succeeded despite permanent registration faults")
			}
		} else {
			// Give the sender time to abort and for the RTS plus the failure
			// notice to arrive unmatched.
			p.Sleep(10 * simtime.Millisecond)
			buf := allocFor(ep, sh.dt, count)
			_, err := ep.Recv(p, buf, count, sh.dt, 0, 7)
			if !errors.Is(err, ErrRemoteAbort) {
				t.Errorf("late recv err = %v, want ErrRemoteAbort", err)
			}
		}
	})
	checkNoLeaks(t, w)
}

// TestTransientFaultsDeterministic repeats one fault-injected run with the
// same seed and requires identical virtual end times and retry counts: the
// injector must be the only source of randomness and fully reproducible.
func TestTransientFaultsDeterministic(t *testing.T) {
	fc := fault.Config{
		Seed:         99,
		PostFailRate: 0.05,
		CQEErrorRate: 0.08,
		DelayRate:    0.10,
		MaxDelay:     20 * simtime.Microsecond,
	}
	run := func() (simtime.Time, int64) {
		cfg := DefaultConfig()
		cfg.Scheme = SchemeBCSPUP
		cfg.PoolSize = 4 << 20
		sh := testShapes()[0]
		w, _ := newFaultWorld(t, 2, cfg, 48<<20, fc)
		count := 160
		w.run(t, func(p *simtime.Process, ep *Endpoint) {
			if ep.Rank() == 0 {
				buf := allocFor(ep, sh.dt, count)
				fillMsg(ep, buf, sh.dt, count, 0x5A)
				if err := ep.Send(p, buf, count, sh.dt, 1, 7); err != nil {
					t.Errorf("send: %v", err)
				}
			} else {
				buf := allocFor(ep, sh.dt, count)
				if _, err := ep.Recv(p, buf, count, sh.dt, 0, 7); err != nil {
					t.Errorf("recv: %v", err)
				}
			}
		})
		var retries int64
		for _, ep := range w.eps {
			retries += ep.Counters().FaultRetries
		}
		return w.eng.Now(), retries
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Errorf("fault runs diverged: end=(%v,%v) retries=(%d,%d)", t1, t2, r1, r2)
	}
}
