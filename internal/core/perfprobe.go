package core

import (
	"repro/internal/datatype"
	"repro/internal/verbs"
)

// PerfProbe drives the descriptor-builder hot path — chunkWRs over a
// compiled layout and chunkBatches over its output — in isolation, for the
// perf gate (cmd/perfgate) and the zero-allocation regression tests. It
// holds the same op-owned state a live transfer would (a wrSet arena, a
// reusable program cursor, a batch-window scratch), so a measured call is
// exactly one warm rebuild of the descriptor list with no endpoint, fabric,
// or rendezvous machinery around it. The single local reference synthesizes
// a registration covering the whole address space, so region resolution
// always hits the binary search's first probe pattern rather than failing.
type PerfProbe struct {
	ep    Endpoint // only model/rank are consulted by chunkWRs
	set   wrSet
	prog  *datatype.Program
	cur   *datatype.ProgCursor
	refs  []regRef
	wrBuf []verbs.SendWR
	out   [][]verbs.SendWR
	bytes int64
}

// NewPerfProbe builds a probe over count instances of dt using the default
// adapter model (MaxSGE 64, MaxPostBatch 64).
func NewPerfProbe(dt *datatype.Type, count int) *PerfProbe {
	m := verbs.DefaultModel()
	p := &PerfProbe{
		prog:  datatype.Compile(dt, count),
		refs:  []regRef{{addr: 0, len: 1 << 40, key: 1}},
		bytes: dt.Size() * int64(count),
	}
	p.ep.model = &m
	p.cur = p.prog.Cursor()
	return p
}

// ChunkWRs rebuilds the full descriptor list for the probe's message into
// the arena and reports how many descriptors it produced. Warm calls (after
// the first) must not allocate — the perf gate pins that.
func (p *PerfProbe) ChunkWRs() int {
	p.set.reset()
	p.cur.Reset(p.prog)
	wrs, err := p.ep.chunkWRs(&p.set, verbs.OpRDMAWrite, p.cur, 0, p.refs, p.bytes, 0, 1)
	if err != nil {
		panic(err)
	}
	return len(wrs)
}

// ChunkBatches splits n blank descriptors at the per-doorbell limit and
// reports the batch count. Warm calls must not allocate.
func (p *PerfProbe) ChunkBatches(n, limit int) int {
	if cap(p.wrBuf) < n {
		p.wrBuf = make([]verbs.SendWR, n)
	}
	for i := range p.out {
		p.out[i] = nil
	}
	p.out = chunkBatches(p.wrBuf[:n], limit, p.out[:0])
	return len(p.out)
}
