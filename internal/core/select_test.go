package core

import (
	"strings"
	"testing"
)

// Boundary tests for the static Section 6 heuristic: AutoChoice is the pure
// function behind SchemeAuto, so the exact threshold behavior the tuner falls
// back to is pinned here, input by input.

func autoCfg() Config {
	cfg := DefaultConfig()
	cfg.Scheme = SchemeAuto
	return cfg
}

func TestAutoChoiceBoundaries(t *testing.T) {
	cfg := autoCfg() // AutoBlockThreshold=4096, AutoGatherThreshold=256
	cases := []struct {
		name string
		in   SelectorInput
		want Scheme
	}{
		{"both contiguous", SelectorInput{SContig: true, RContig: true, SAvg: 1 << 20, RAvg: 1 << 20}, SchemeGeneric},
		{"both at block threshold", SelectorInput{SAvg: 4096, RAvg: 4096}, SchemeMultiW},
		{"sender one under block threshold", SelectorInput{SAvg: 4095, RAvg: 4096}, SchemeRWGUP},
		{"receiver one under block threshold", SelectorInput{SAvg: 4096, RAvg: 4095}, SchemeRWGUP},
		{"contig sender at gather threshold", SelectorInput{SContig: true, SAvg: 1 << 20, RAvg: 256}, SchemePRRS},
		// A contiguous sender's SAvg is the whole message, so one under the
		// gather threshold on the receiver falls through to the sender-run
		// rule and picks the gather path, not the pipeline.
		{"contig sender one under gather threshold", SelectorInput{SContig: true, SAvg: 1 << 20, RAvg: 255}, SchemeRWGUP},
		{"sender at gather threshold", SelectorInput{SAvg: 256, RAvg: 64}, SchemeRWGUP},
		{"sender one under gather threshold", SelectorInput{SAvg: 255, RAvg: 64}, SchemeBCSPUP},
		{"contig receiver large runs", SelectorInput{RContig: true, SAvg: 4096, RAvg: 1 << 20}, SchemeMultiW},
		{"contig receiver small sender runs", SelectorInput{RContig: true, SAvg: 255, RAvg: 1 << 20}, SchemeBCSPUP},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, why := AutoChoice(&cfg, c.in)
			if got != c.want {
				t.Fatalf("AutoChoice(%+v) = %v (%s), want %v", c.in, got, why, c.want)
			}
			if why == "" {
				t.Fatal("empty rationale")
			}
		})
	}
}

func TestAutoChoiceBuffersNotReused(t *testing.T) {
	cfg := autoCfg()
	cfg.BuffersReused = false
	// Even a shape that would pick Multi-W stays on the pipeline when user
	// buffers are not reused (registration will not amortize) ...
	in := SelectorInput{SAvg: 1 << 20, RAvg: 1 << 20}
	got, why := AutoChoice(&cfg, in)
	if got != SchemeBCSPUP {
		t.Fatalf("BuffersReused=false chose %v (%s), want BC-SPUP", got, why)
	}
	if !strings.Contains(why, "not reused") {
		t.Fatalf("rationale %q does not mention buffer reuse", why)
	}
	// ... except both-sides-contiguous, which needs no unpack at all.
	in = SelectorInput{SContig: true, RContig: true, SAvg: 1 << 20, RAvg: 1 << 20}
	if got, _ := AutoChoice(&cfg, in); got != SchemeGeneric {
		t.Fatalf("both-contig with BuffersReused=false chose %v, want Generic", got)
	}
}

func TestEligibleSchemes(t *testing.T) {
	cfg := autoCfg()
	if got := eligibleSchemes(&cfg, true, true); len(got) != 1 || got[0] != SchemeGeneric {
		t.Fatalf("both-contig eligibility = %v", got)
	}
	if got := eligibleSchemes(&cfg, false, false); len(got) != 5 {
		t.Fatalf("full eligibility = %v", got)
	}
	cfg.BuffersReused = false
	got := eligibleSchemes(&cfg, false, false)
	if len(got) != 2 || got[0] != SchemeGeneric || got[1] != SchemeBCSPUP {
		t.Fatalf("no-reuse eligibility = %v", got)
	}
}

// recordingSelector pins the decideScheme contract: inputs passed through,
// ineligible verdicts rejected, counters incremented.
type recordingSelector struct {
	last     SelectorInput
	ret      SchemeDecision
	observed []Scheme
	lats     []int64
	regret   int64
}

func (r *recordingSelector) Choose(in SelectorInput) SchemeDecision {
	r.last = in
	return r.ret
}

func (r *recordingSelector) Observe(in SelectorInput, chosen Scheme, lat int64) int64 {
	r.observed = append(r.observed, chosen)
	r.lats = append(r.lats, lat)
	return r.regret
}

func TestSelectorIneligibleFallsBackToStatic(t *testing.T) {
	cfg := autoCfg()
	sel := &recordingSelector{ret: SchemeDecision{Scheme: SchemeMultiW, Rationale: "forced"}}
	cfg.Selector = sel
	cfg.BuffersReused = false // Multi-W not eligible
	ep := &Endpoint{cfg: cfg, ctr: nil}
	_ = ep
	// Exercise the eligibility guard directly: the decision path lives on a
	// full endpoint, so here we just pin the pure pieces it composes.
	in := SelectorInput{SAvg: 1 << 20, RAvg: 1 << 20}
	in.Eligible = eligibleSchemes(&cfg, false, false)
	static, _ := AutoChoice(&cfg, in)
	if schemeIn(in.Eligible, sel.ret.Scheme) {
		t.Fatal("test shape should make Multi-W ineligible")
	}
	if static != SchemeBCSPUP {
		t.Fatalf("static fallback = %v", static)
	}
}
