package core

import (
	"testing"

	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// TestSegPoolWaiterFIFO pins the pool's waiter contract directly: waiters are
// served strictly FIFO (a later small demand never jumps an earlier larger
// one), PoolExhausted counts only waiters that actually park, and an aborted
// waiter — which takes its slot and immediately gives it back, exactly what
// the schemes' op.failed paths do — still unblocks everyone behind it.
func TestSegPoolWaiterFIFO(t *testing.T) {
	m := mem.NewMemory("t", 8<<20)
	p, err := newSegPool(m, 256<<10, 128<<10, 1, true) // two slots
	if err != nil {
		t.Fatal(err)
	}
	ctr := &stats.Counters{}
	p.ctr = ctr
	if p.totalSlots() != 2 || p.available() != 2 {
		t.Fatalf("pool carved %d slots (%d free), want 2", p.totalSlots(), p.available())
	}

	s1, ok1 := p.tryAcquire(0)
	s2, ok2 := p.tryAcquire(0)
	if !ok1 || !ok2 || p.available() != 0 {
		t.Fatal("could not drain the pool")
	}

	var order []string
	take := func(n int) []seg {
		out := make([]seg, n)
		for i := range out {
			s, ok := p.tryAcquire(0)
			if !ok {
				t.Fatalf("waiter served with %d free slots, needed %d", p.available(), n)
			}
			out[i] = s
		}
		return out
	}
	// A needs both slots; B simulates an aborted transfer (take one slot,
	// release it untouched); C is an ordinary one-slot waiter.
	p.whenAvailable(2, 0, func() {
		order = append(order, "A")
		for _, s := range take(2) {
			p.release(s)
		}
	})
	p.whenAvailable(1, 0, func() {
		order = append(order, "B")
		p.release(take(1)[0])
	})
	p.whenAvailable(1, 0, func() {
		order = append(order, "C")
		p.release(take(1)[0])
	})
	if ctr.PoolExhausted != 3 {
		t.Fatalf("PoolExhausted = %d, want 3 (every waiter parked)", ctr.PoolExhausted)
	}

	// One free slot could serve B or C, but A is first in line: FIFO means
	// nobody runs yet.
	p.release(s1)
	if len(order) != 0 {
		t.Fatalf("waiters ran out of order with one slot free: %v", order)
	}
	// The second slot satisfies A, whose releases cascade through B and C.
	p.release(s2)
	if got := len(order); got != 3 || order[0] != "A" || order[1] != "B" || order[2] != "C" {
		t.Fatalf("waiter order = %v, want [A B C]", order)
	}
	if p.available() != p.totalSlots() {
		t.Fatalf("pool leaked: %d/%d free after drain", p.available(), p.totalSlots())
	}
	if p.pendingWaiters() != 0 {
		t.Fatalf("%d waiters stuck after drain", p.pendingWaiters())
	}
	// A fresh waiter with slots free runs immediately and does not count as
	// an exhaustion.
	ran := false
	p.whenAvailable(1, 0, func() {
		ran = true
		p.release(take(1)[0])
	})
	if !ran || ctr.PoolExhausted != 3 {
		t.Fatalf("immediate waiter: ran=%v PoolExhausted=%d, want true/3", ran, ctr.PoolExhausted)
	}
}

// TestAbortWithParkedPoolWaiters is the end-to-end regression for an op that
// aborts while segment-pipeline waiters are parked on a dry pool: every
// parked continuation must still be served (taking and immediately releasing
// its slot), surviving transfers must complete, and the pool must return to
// full capacity with no stuck waiters. Three concurrent 1 MB sends (8
// segments each) against a two-slot pack pool guarantee parked waiters
// whatever the completion ordering; permanent CQE errors then abort some of
// the in-flight ops across seeds.
func TestAbortWithParkedPoolWaiters(t *testing.T) {
	vec := datatype.Must(datatype.TypeVector(512, 512, 1024, datatype.Int32)) // 1 MB
	sawParkedAbort := false
	for seed := int64(1); seed <= 10; seed++ {
		fc := fault.Config{
			Seed:          seed,
			CQEErrorRate:  0.05,
			PermanentRate: 1.0,
		}
		cfg := DefaultConfig()
		cfg.Scheme = SchemeBCSPUP
		cfg.PoolSize = 256 << 10 // two 128 KB slots
		w, _ := newFaultWorld(t, 2, cfg, 64<<20, fc)
		const msgs = 3
		w.run(t, func(p *simtime.Process, ep *Endpoint) {
			reqs := make([]*Request, msgs)
			for m := 0; m < msgs; m++ {
				buf := allocFor(ep, vec, 1)
				if ep.Rank() == 0 {
					fillMsg(ep, buf, vec, 1, byte(m+1))
					reqs[m] = ep.Isend(buf, 1, vec, 1, m)
				} else {
					reqs[m] = ep.Irecv(buf, 1, vec, 0, m)
				}
			}
			WaitAll(p, reqs...) // per-request errors expected under faults
		})
		checkNoLeaks(t, w)
		c0, c1 := w.eps[0].Counters(), w.eps[1].Counters()
		// An early abort (e.g. a failed RTS) can thin the pipelines before
		// they ever contend, so parking is asserted across the seed sweep,
		// not per seed — what must hold every time is checkNoLeaks above.
		if c0.PoolExhausted > 0 && c0.RequestsFailed+c1.RequestsFailed > 0 {
			sawParkedAbort = true
		}
	}
	if !sawParkedAbort {
		t.Fatal("no seed produced an abort in a world with parked pool waiters; regression not exercised")
	}
}

// TestSegPoolShardedClasses pins the size-classed pool's carving and routing:
// shard 0 keeps full slots, each further shard halves the slot size down to
// the floor, classFor picks the smallest fitting class, and each class has
// its own free list and FIFO waiter queue (no cross-class contention).
func TestSegPoolShardedClasses(t *testing.T) {
	m := mem.NewMemory("t", 16<<20)
	p, err := newSegPool(m, 3<<20, 128<<10, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.shards) != 3 {
		t.Fatalf("%d shards, want 3", len(p.shards))
	}
	wantSlot := []int64{128 << 10, 64 << 10, 32 << 10}
	wantSlots := []int{8, 16, 32} // 1 MB span each
	for i := range p.shards {
		if p.slotFor(i) != wantSlot[i] || p.slotsFor(i) != wantSlots[i] {
			t.Fatalf("shard %d: slot %d x %d, want %d x %d",
				i, p.slotFor(i), p.slotsFor(i), wantSlot[i], wantSlots[i])
		}
	}

	// classFor routes to the smallest class that fits.
	for _, tc := range []struct {
		size int64
		want int
	}{
		{8 << 10, 2}, {32 << 10, 2}, {32<<10 + 1, 1}, {64 << 10, 1},
		{64<<10 + 1, 0}, {128 << 10, 0}, {1 << 20, 0}, // oversize falls back to 0
	} {
		if c := p.classFor(tc.size); c != tc.want {
			t.Fatalf("classFor(%d) = %d, want %d", tc.size, c, tc.want)
		}
	}

	// Draining one class leaves the others untouched, and a waiter parked on
	// the drained class is not resumed by releases into another class.
	var held []seg
	for {
		s, ok := p.tryAcquire(2)
		if !ok {
			break
		}
		if s.shard != 2 {
			t.Fatalf("class-2 acquire returned shard %d", s.shard)
		}
		held = append(held, s)
	}
	if len(held) != wantSlots[2] || p.availableFor(2) != 0 {
		t.Fatalf("drained %d class-2 slots, want %d", len(held), wantSlots[2])
	}
	if p.availableFor(0) != wantSlots[0] || p.availableFor(1) != wantSlots[1] {
		t.Fatal("draining class 2 disturbed other classes")
	}
	ran := false
	p.whenAvailable(1, 2, func() { ran = true })
	s0, ok := p.tryAcquire(0)
	if !ok {
		t.Fatal("class 0 dry")
	}
	p.release(s0)
	if ran {
		t.Fatal("class-0 release resumed a class-2 waiter")
	}
	p.release(held[0])
	if !ran {
		t.Fatal("class-2 release did not resume its waiter")
	}
	for _, s := range held[1:] {
		p.release(s)
	}
	if p.available() != p.totalSlots() || p.pendingWaiters() != 0 {
		t.Fatalf("pool leaked: %d/%d free, %d waiters",
			p.available(), p.totalSlots(), p.pendingWaiters())
	}
}

// TestSegPoolShardFloor verifies the slot-size floor: shards stop halving at
// minShardSlot, and classes that would end up with zero slots are skipped by
// classFor rather than parking requests forever.
func TestSegPoolShardFloor(t *testing.T) {
	m := mem.NewMemory("t", 8<<20)
	// 8 KB initial slot: the halving floor (4 KB) is hit after one step, so
	// shards 2.. keep the 4 KB slot size.
	p, err := newSegPool(m, 96<<10, 8<<10, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := []int64{p.slotFor(0), p.slotFor(1), p.slotFor(2), p.slotFor(3)}; got[0] != 8<<10 ||
		got[1] != 4<<10 || got[2] != 4<<10 || got[3] != 4<<10 {
		t.Fatalf("slot sizes %v, want [8K 4K 4K 4K]", got)
	}
	// A tiny pool whose later shards carved zero slots must still route
	// requests somewhere with capacity.
	tiny, err := newSegPool(m, 16<<10, 16<<10, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	c := tiny.classFor(1 << 10)
	if tiny.slotsFor(c) == 0 {
		t.Fatalf("classFor routed to an empty shard %d", c)
	}
}
