package core

import (
	"testing"

	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// TestSegPoolWaiterFIFO pins the pool's waiter contract directly: waiters are
// served strictly FIFO (a later small demand never jumps an earlier larger
// one), PoolExhausted counts only waiters that actually park, and an aborted
// waiter — which takes its slot and immediately gives it back, exactly what
// the schemes' op.failed paths do — still unblocks everyone behind it.
func TestSegPoolWaiterFIFO(t *testing.T) {
	m := mem.NewMemory("t", 8<<20)
	p, err := newSegPool(m, 256<<10, 128<<10, true) // two slots
	if err != nil {
		t.Fatal(err)
	}
	ctr := &stats.Counters{}
	p.ctr = ctr
	if p.slots != 2 || p.available() != 2 {
		t.Fatalf("pool carved %d slots (%d free), want 2", p.slots, p.available())
	}

	s1, ok1 := p.tryAcquire()
	s2, ok2 := p.tryAcquire()
	if !ok1 || !ok2 || p.available() != 0 {
		t.Fatal("could not drain the pool")
	}

	var order []string
	take := func(n int) []seg {
		out := make([]seg, n)
		for i := range out {
			s, ok := p.tryAcquire()
			if !ok {
				t.Fatalf("waiter served with %d free slots, needed %d", p.available(), n)
			}
			out[i] = s
		}
		return out
	}
	// A needs both slots; B simulates an aborted transfer (take one slot,
	// release it untouched); C is an ordinary one-slot waiter.
	p.whenAvailable(2, func() {
		order = append(order, "A")
		for _, s := range take(2) {
			p.release(s)
		}
	})
	p.whenAvailable(1, func() {
		order = append(order, "B")
		p.release(take(1)[0])
	})
	p.whenAvailable(1, func() {
		order = append(order, "C")
		p.release(take(1)[0])
	})
	if ctr.PoolExhausted != 3 {
		t.Fatalf("PoolExhausted = %d, want 3 (every waiter parked)", ctr.PoolExhausted)
	}

	// One free slot could serve B or C, but A is first in line: FIFO means
	// nobody runs yet.
	p.release(s1)
	if len(order) != 0 {
		t.Fatalf("waiters ran out of order with one slot free: %v", order)
	}
	// The second slot satisfies A, whose releases cascade through B and C.
	p.release(s2)
	if got := len(order); got != 3 || order[0] != "A" || order[1] != "B" || order[2] != "C" {
		t.Fatalf("waiter order = %v, want [A B C]", order)
	}
	if p.available() != p.slots {
		t.Fatalf("pool leaked: %d/%d free after drain", p.available(), p.slots)
	}
	if len(p.waiters) != 0 {
		t.Fatalf("%d waiters stuck after drain", len(p.waiters))
	}
	// A fresh waiter with slots free runs immediately and does not count as
	// an exhaustion.
	ran := false
	p.whenAvailable(1, func() {
		ran = true
		p.release(take(1)[0])
	})
	if !ran || ctr.PoolExhausted != 3 {
		t.Fatalf("immediate waiter: ran=%v PoolExhausted=%d, want true/3", ran, ctr.PoolExhausted)
	}
}

// TestAbortWithParkedPoolWaiters is the end-to-end regression for an op that
// aborts while segment-pipeline waiters are parked on a dry pool: every
// parked continuation must still be served (taking and immediately releasing
// its slot), surviving transfers must complete, and the pool must return to
// full capacity with no stuck waiters. Three concurrent 1 MB sends (8
// segments each) against a two-slot pack pool guarantee parked waiters
// whatever the completion ordering; permanent CQE errors then abort some of
// the in-flight ops across seeds.
func TestAbortWithParkedPoolWaiters(t *testing.T) {
	vec := datatype.Must(datatype.TypeVector(512, 512, 1024, datatype.Int32)) // 1 MB
	sawParkedAbort := false
	for seed := int64(1); seed <= 10; seed++ {
		fc := fault.Config{
			Seed:          seed,
			CQEErrorRate:  0.05,
			PermanentRate: 1.0,
		}
		cfg := DefaultConfig()
		cfg.Scheme = SchemeBCSPUP
		cfg.PoolSize = 256 << 10 // two 128 KB slots
		w, _ := newFaultWorld(t, 2, cfg, 64<<20, fc)
		const msgs = 3
		w.run(t, func(p *simtime.Process, ep *Endpoint) {
			reqs := make([]*Request, msgs)
			for m := 0; m < msgs; m++ {
				buf := allocFor(ep, vec, 1)
				if ep.Rank() == 0 {
					fillMsg(ep, buf, vec, 1, byte(m+1))
					reqs[m] = ep.Isend(buf, 1, vec, 1, m)
				} else {
					reqs[m] = ep.Irecv(buf, 1, vec, 0, m)
				}
			}
			WaitAll(p, reqs...) // per-request errors expected under faults
		})
		checkNoLeaks(t, w)
		c0, c1 := w.eps[0].Counters(), w.eps[1].Counters()
		// An early abort (e.g. a failed RTS) can thin the pipelines before
		// they ever contend, so parking is asserted across the seed sweep,
		// not per seed — what must hold every time is checkNoLeaks above.
		if c0.PoolExhausted > 0 && c0.RequestsFailed+c1.RequestsFailed > 0 {
			sawParkedAbort = true
		}
	}
	if !sawParkedAbort {
		t.Fatal("no seed produced an abort in a world with parked pool waiters; regression not exercised")
	}
}
