package core

import (
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Observability hooks (DESIGN.md §9): per-message protocol spans on the
// tracer's msg lane and latency/bandwidth histograms in the metrics
// registry. Everything here is a no-op when Config.Tracer / Config.Metrics
// are nil, so the hot path pays only a nil check.

// tnow returns the observability timestamp: wall-clock when the backend
// supplies a TraceClock (rt), virtual engine time otherwise (sim).
func (ep *Endpoint) tnow() simtime.Time {
	if ep.cfg.TraceClock != nil {
		return ep.cfg.TraceClock()
	}
	return ep.eng.Now()
}

// mark records an instant protocol event ("rts", "seg-arrive") for op opID.
func (ep *Endpoint) mark(name, cat string, opID uint32) {
	if ep.cfg.Tracer == nil {
		return
	}
	ep.cfg.Tracer.Mark(ep.node, trace.LaneMsg, name, cat, uint64(opID), ep.tnow())
}

// span records a protocol phase interval from start to now for op opID.
func (ep *Endpoint) span(name, cat string, opID uint32, bytes int64, start simtime.Time) {
	if ep.cfg.Tracer == nil {
		return
	}
	ep.cfg.Tracer.AddSpan(ep.node, trace.LaneMsg, name, cat, uint64(opID), bytes, start, ep.tnow())
}

// observeTransfer feeds one completed transfer into the per-scheme latency
// and bandwidth histograms, bucketed by message-size class.
func (ep *Endpoint) observeTransfer(scheme Scheme, bytes int64, start simtime.Time) {
	m := ep.cfg.Metrics
	if m == nil {
		return
	}
	lat := int64(ep.tnow().Sub(start))
	cls := stats.SizeClass(bytes)
	m.Histogram("lat_ns/" + scheme.String() + "/" + cls).Observe(lat)
	if lat > 0 {
		// bytes/ns * 1000 = MB/s.
		m.Histogram("mbps/" + scheme.String() + "/" + cls).Observe(bytes * 1000 / lat)
	}
}
