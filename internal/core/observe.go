package core

import (
	"sync/atomic"

	"repro/internal/pack"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Observability hooks (DESIGN.md §9): per-message protocol spans on the
// tracer's msg lane and latency/bandwidth histograms in the metrics
// registry. Everything here is a no-op when Config.Tracer / Config.Metrics
// are nil, so the hot path pays only a nil check.

// numSchemes bounds the per-scheme lookup tables below. SchemeAuto is the
// highest-valued scheme, so every Scheme indexes inside the tables.
const numSchemes = int(SchemeAuto) + 1

// Pre-built span and mark names for each scheme. Building "recv " +
// scheme.String() per message would allocate on every transfer; these
// tables make scheme-tagged trace names a plain array load.
var (
	recvSpanName      [numSchemes]string
	sendSpanName      [numSchemes]string
	ctsSpanName       [numSchemes]string
	matchMarkName     [numSchemes]string
	handshakeSpanName [numSchemes]string
)

func init() {
	for i := 0; i < numSchemes; i++ {
		s := Scheme(i).String()
		recvSpanName[i] = "recv " + s
		sendSpanName[i] = "send " + s
		ctsSpanName[i] = "cts " + s
		matchMarkName[i] = "match " + s
		handshakeSpanName[i] = "handshake " + s
	}
}

// schemeName looks up a scheme's pre-built trace name, falling back to the
// Generic slot for out-of-range values (a corrupted wire scheme is caught
// by validation before it gets here; the fallback just keeps tracing total).
func schemeName(tbl *[numSchemes]string, s Scheme) string {
	if s < 0 || int(s) >= numSchemes {
		s = SchemeGeneric
	}
	return tbl[s]
}

// metricCache holds resolved histogram handles so the warm path skips the
// registry's map-plus-mutex lookup and the name concatenation that lookup
// would need. Cells bind lazily on first observation; a nil cell means
// "not bound yet" (the cache is only consulted when Config.Metrics is
// non-nil). Endpoint methods run single-threaded in their engine context,
// so the cache needs no locking.
type metricCache struct {
	lat        [numSchemes][stats.NumSizeClasses]*stats.Histogram
	mbps       [numSchemes][stats.NumSizeClasses]*stats.Histogram
	packShards *stats.Histogram
	packUtil   *stats.Histogram
	batchWRs   *stats.Histogram
	qosPark    *stats.Histogram
}

// qosParkHist returns the cached qos_park_ns histogram (nil, a valid no-op
// sink, when metrics are off).
func (ep *Endpoint) qosParkHist() *stats.Histogram {
	if ep.cfg.Metrics == nil {
		return nil
	}
	if ep.mc.qosPark == nil {
		ep.mc.qosPark = ep.cfg.Metrics.Histogram("qos_park_ns")
	}
	return ep.mc.qosPark
}

// tnow returns the observability timestamp: wall-clock when the backend
// supplies a TraceClock (rt), virtual engine time otherwise (sim).
func (ep *Endpoint) tnow() simtime.Time {
	if ep.cfg.TraceClock != nil {
		return ep.cfg.TraceClock()
	}
	return ep.eng.Now()
}

// mark records an instant protocol event ("rts", "seg-arrive") for op opID.
func (ep *Endpoint) mark(name, cat string, opID uint32) {
	if ep.cfg.Tracer == nil {
		return
	}
	ep.cfg.Tracer.Mark(ep.node, trace.LaneMsg, name, cat, uint64(opID), ep.tnow())
}

// span records a protocol phase interval from start to now for op opID.
func (ep *Endpoint) span(name, cat string, opID uint32, bytes int64, start simtime.Time) {
	if ep.cfg.Tracer == nil {
		return
	}
	ep.cfg.Tracer.AddSpan(ep.node, trace.LaneMsg, name, cat, uint64(opID), bytes, start, ep.tnow())
}

// chargeParPack charges one parallel pack step's CPU cost (slowest shard
// plus fan-out) and records its worker fan-out.
func (ep *Endpoint) chargeParPack(st pack.ParStats, name string) {
	if len(st.Shards) > 1 {
		atomic.AddInt64(&ep.ctr.ParallelPacks, 1)
	}
	ep.observeShards(st)
	ep.hca.ChargeCPUNamed(ep.cfg.parPackCost(ep.model, st), name)
}

// observeShards feeds one parallel pack/unpack step into the worker
// utilization histograms: shards per step, and how evenly the bytes split
// (mean shard bytes over the largest shard, in percent — 100 is a perfect
// split, lower means one worker straggles).
func (ep *Endpoint) observeShards(st pack.ParStats) {
	m := ep.cfg.Metrics
	if m == nil || len(st.Shards) <= 1 {
		return
	}
	if ep.mc.packShards == nil {
		ep.mc.packShards = m.Histogram("pack_shards")
		ep.mc.packUtil = m.Histogram("pack_shard_util_pct")
	}
	ep.mc.packShards.Observe(int64(len(st.Shards)))
	var biggest int64
	for _, sh := range st.Shards {
		if sh.Bytes > biggest {
			biggest = sh.Bytes
		}
	}
	if biggest > 0 {
		mean := st.Bytes / int64(len(st.Shards))
		ep.mc.packUtil.Observe(mean * 100 / biggest)
	}
}

// observeBatch counts one doorbell batch of n descriptors and feeds the
// batch-size histogram.
func (ep *Endpoint) observeBatch(n int) {
	atomic.AddInt64(&ep.ctr.BatchedWRs, int64(n))
	if m := ep.cfg.Metrics; m != nil {
		if ep.mc.batchWRs == nil {
			ep.mc.batchWRs = m.Histogram("batch_wrs")
		}
		ep.mc.batchWRs.Observe(int64(n))
	}
}

// observeTransfer feeds one completed transfer into the per-scheme latency
// and bandwidth histograms, bucketed by message-size class. Handles bind
// lazily per (scheme, size-class) cell so the warm path performs no name
// concatenation and no registry lookup.
func (ep *Endpoint) observeTransfer(scheme Scheme, bytes int64, start simtime.Time) {
	m := ep.cfg.Metrics
	if m == nil {
		return
	}
	s := scheme
	if s < 0 || int(s) >= numSchemes {
		s = SchemeGeneric
	}
	lat := int64(ep.tnow().Sub(start))
	i := stats.SizeClassIndex(bytes)
	if ep.mc.lat[s][i] == nil {
		cls := stats.SizeClassLabel(i)
		ep.mc.lat[s][i] = m.Histogram("lat_ns/" + scheme.String() + "/" + cls)
		ep.mc.mbps[s][i] = m.Histogram("mbps/" + scheme.String() + "/" + cls)
	}
	ep.mc.lat[s][i].Observe(lat)
	if lat > 0 {
		// bytes/ns * 1000 = MB/s.
		ep.mc.mbps[s][i].Observe(bytes * 1000 / lat)
	}
}
