package core

import (
	"sync/atomic"

	"repro/internal/pack"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Observability hooks (DESIGN.md §9): per-message protocol spans on the
// tracer's msg lane and latency/bandwidth histograms in the metrics
// registry. Everything here is a no-op when Config.Tracer / Config.Metrics
// are nil, so the hot path pays only a nil check.

// tnow returns the observability timestamp: wall-clock when the backend
// supplies a TraceClock (rt), virtual engine time otherwise (sim).
func (ep *Endpoint) tnow() simtime.Time {
	if ep.cfg.TraceClock != nil {
		return ep.cfg.TraceClock()
	}
	return ep.eng.Now()
}

// mark records an instant protocol event ("rts", "seg-arrive") for op opID.
func (ep *Endpoint) mark(name, cat string, opID uint32) {
	if ep.cfg.Tracer == nil {
		return
	}
	ep.cfg.Tracer.Mark(ep.node, trace.LaneMsg, name, cat, uint64(opID), ep.tnow())
}

// span records a protocol phase interval from start to now for op opID.
func (ep *Endpoint) span(name, cat string, opID uint32, bytes int64, start simtime.Time) {
	if ep.cfg.Tracer == nil {
		return
	}
	ep.cfg.Tracer.AddSpan(ep.node, trace.LaneMsg, name, cat, uint64(opID), bytes, start, ep.tnow())
}

// chargeParPack charges one parallel pack step's CPU cost (slowest shard
// plus fan-out) and records its worker fan-out.
func (ep *Endpoint) chargeParPack(st pack.ParStats, name string) {
	if len(st.Shards) > 1 {
		atomic.AddInt64(&ep.ctr.ParallelPacks, 1)
	}
	ep.observeShards(st)
	ep.hca.ChargeCPUNamed(ep.cfg.parPackCost(ep.model, st), name)
}

// observeShards feeds one parallel pack/unpack step into the worker
// utilization histograms: shards per step, and how evenly the bytes split
// (mean shard bytes over the largest shard, in percent — 100 is a perfect
// split, lower means one worker straggles).
func (ep *Endpoint) observeShards(st pack.ParStats) {
	m := ep.cfg.Metrics
	if m == nil || len(st.Shards) <= 1 {
		return
	}
	m.Histogram("pack_shards").Observe(int64(len(st.Shards)))
	var biggest int64
	for _, sh := range st.Shards {
		if sh.Bytes > biggest {
			biggest = sh.Bytes
		}
	}
	if biggest > 0 {
		mean := st.Bytes / int64(len(st.Shards))
		m.Histogram("pack_shard_util_pct").Observe(mean * 100 / biggest)
	}
}

// observeBatch counts one doorbell batch of n descriptors and feeds the
// batch-size histogram.
func (ep *Endpoint) observeBatch(n int) {
	atomic.AddInt64(&ep.ctr.BatchedWRs, int64(n))
	if ep.cfg.Metrics != nil {
		ep.cfg.Metrics.Histogram("batch_wrs").Observe(int64(n))
	}
}

// observeTransfer feeds one completed transfer into the per-scheme latency
// and bandwidth histograms, bucketed by message-size class.
func (ep *Endpoint) observeTransfer(scheme Scheme, bytes int64, start simtime.Time) {
	m := ep.cfg.Metrics
	if m == nil {
		return
	}
	lat := int64(ep.tnow().Sub(start))
	cls := stats.SizeClass(bytes)
	m.Histogram("lat_ns/" + scheme.String() + "/" + cls).Observe(lat)
	if lat > 0 {
		// bytes/ns * 1000 = MB/s.
		m.Histogram("mbps/" + scheme.String() + "/" + cls).Observe(bytes * 1000 / lat)
	}
}
