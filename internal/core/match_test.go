package core

import (
	"math/rand"
	"testing"

	"repro/internal/datatype"
	"repro/internal/simtime"
)

// --- Differential test: indexed matching vs the original linear scans -------

// refRecvQ is the pre-index posted-receive store: a flat slice scanned
// front-to-back, exactly the code the recvIndex replaced. The differential
// test drives both with identical operation streams and demands identical
// match choices.
type refRecvQ struct {
	s []*Request
}

func (rq *refRecvQ) post(r *Request) { rq.s = append(rq.s, r) }

func (rq *refRecvQ) match(ctx, src, tag int) *Request {
	for i, r := range rq.s {
		if matchWanted(r.ctxWant, r.srcWant, r.tagWant, ctx, src, tag) {
			rq.s = append(rq.s[:i], rq.s[i+1:]...)
			return r
		}
	}
	return nil
}

// refUnexpQ is the pre-index unexpected-arrival store.
type refUnexpQ struct {
	s []*inbound
}

func (uq *refUnexpQ) add(inb *inbound) { uq.s = append(uq.s, inb) }

func (uq *refUnexpQ) take(ctx, src, tag int) *inbound {
	for i, inb := range uq.s {
		if matchWanted(ctx, src, tag, inb.ctx, inb.src, inb.tag) {
			uq.s = append(uq.s[:i], uq.s[i+1:]...)
			return inb
		}
	}
	return nil
}

func (uq *refUnexpQ) peek(ctx, src, tag int) *inbound {
	for _, inb := range uq.s {
		if matchWanted(ctx, src, tag, inb.ctx, inb.src, inb.tag) {
			return inb
		}
	}
	return nil
}

// randWant draws a (src, tag) pattern, wildcards included.
func randWant(rng *rand.Rand, peers, tags int) (src, tag int) {
	src = rng.Intn(peers + 1)
	if src == peers {
		src = AnySource
	}
	tag = rng.Intn(tags + 1)
	if tag == tags {
		tag = AnyTag
	}
	return src, tag
}

func TestRecvIndexMatchesLinearReference(t *testing.T) {
	const peers, tags, ctxs, ops = 5, 4, 2, 20000
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var ref refRecvQ
		var idx recvIndex
		idx.init()
		nextID := 0
		for op := 0; op < ops; op++ {
			if rng.Intn(2) == 0 {
				src, tag := randWant(rng, peers, tags)
				r := &Request{ctxWant: rng.Intn(ctxs), srcWant: src, tagWant: tag, count: nextID}
				nextID++
				ref.post(r)
				idx.post(r)
			} else {
				ctx, src, tag := rng.Intn(ctxs), rng.Intn(peers), rng.Intn(tags)
				want := ref.match(ctx, src, tag)
				got := idx.match(ctx, src, tag)
				if want != got {
					t.Fatalf("seed %d op %d: match(%d,%d,%d) diverged: ref=%v idx=%v",
						seed, op, ctx, src, tag, reqID(want), reqID(got))
				}
			}
			if idx.len() != len(ref.s) {
				t.Fatalf("seed %d op %d: posted count diverged: ref=%d idx=%d",
					seed, op, len(ref.s), idx.len())
			}
		}
	}
}

func reqID(r *Request) interface{} {
	if r == nil {
		return nil
	}
	return r.count
}

func TestUnexpIndexMatchesLinearReference(t *testing.T) {
	const peers, tags, ctxs, ops = 5, 4, 2, 20000
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var ref refUnexpQ
		var idx unexpIndex
		idx.init()
		nextOp := uint32(0)
		for op := 0; op < ops; op++ {
			switch rng.Intn(3) {
			case 0:
				inb := &inbound{
					kind: kindEager,
					ctx:  rng.Intn(ctxs), src: rng.Intn(peers), tag: rng.Intn(tags),
					opID: nextOp,
				}
				nextOp++
				// The reference shares pointers with the index: claims must
				// stay consistent or the shared tombstone would corrupt the
				// reference, which is exactly what the test would then catch.
				ref.add(inb)
				idx.add(inb)
			case 1:
				src, tag := randWant(rng, peers, tags)
				ctx := rng.Intn(ctxs)
				want := ref.take(ctx, src, tag)
				got := idx.take(ctx, src, tag)
				if want != got {
					t.Fatalf("seed %d op %d: take(%d,%d,%d) diverged: ref=%v idx=%v",
						seed, op, ctx, src, tag, inbID(want), inbID(got))
				}
			case 2:
				src, tag := randWant(rng, peers, tags)
				ctx := rng.Intn(ctxs)
				want := ref.peek(ctx, src, tag)
				got, ok := idx.peek(ctx, src, tag)
				if !ok {
					got = nil
				}
				if want != got {
					t.Fatalf("seed %d op %d: peek(%d,%d,%d) diverged: ref=%v idx=%v",
						seed, op, ctx, src, tag, inbID(want), inbID(got))
				}
			}
			if idx.len() != len(ref.s) {
				t.Fatalf("seed %d op %d: arrival count diverged: ref=%d idx=%d",
					seed, op, len(ref.s), idx.len())
			}
		}
	}
}

func inbID(inb *inbound) interface{} {
	if inb == nil {
		return nil
	}
	return inb.opID
}

// --- annQ prune --------------------------------------------------------------

// TestAnnounceQueuePrune drives many messages through one endpoint and
// asserts the per-destination announce queues retain nothing afterwards:
// drained slots must be nilled (they capture packed payloads), and a fully
// drained queue must not keep an unbounded backing array.
func TestAnnounceQueuePrune(t *testing.T) {
	const msgs = 2000
	cfg := DefaultConfig()
	w := newTestWorld(t, 2, cfg, 64<<20)
	eager := datatype.Must(datatype.TypeContiguous(64, datatype.Int32))    // 256 B: eager
	rndv := datatype.Must(datatype.TypeVector(64, 64, 128, datatype.Byte)) // 4 KB sparse: used ×4 → rendezvous
	w.run(t, func(p *simtime.Process, ep *Endpoint) {
		peer := 1 - ep.Rank()
		ebuf := allocFor(ep, eager, 1)
		rbuf := allocFor(ep, rndv, 4)
		if ep.Rank() == 0 {
			// Bursts of nonblocking sends so announce slots pile up before
			// the queue drains, mixing eager and rendezvous traffic.
			for base := 0; base < msgs; base += 100 {
				reqs := make([]*Request, 0, 100)
				for i := 0; i < 100; i++ {
					if i%10 == 9 {
						reqs = append(reqs, ep.Isend(rbuf, 4, rndv, peer, base+i))
					} else {
						reqs = append(reqs, ep.Isend(ebuf, 1, eager, peer, base+i))
					}
				}
				WaitAll(p, reqs...)
			}
		} else {
			for i := 0; i < msgs; i++ {
				var err error
				if i%10 == 9 {
					_, err = ep.Recv(p, rbuf, 4, rndv, peer, i)
				} else {
					_, err = ep.Recv(p, ebuf, 1, eager, peer, i)
				}
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
			}
		}
	})
	for _, ep := range w.eps {
		for dst, p := range ep.peers {
			if p == nil {
				continue
			}
			q := &p.ann
			if live := len(q.s) - q.head; live != 0 {
				t.Errorf("rank %d -> %d: %d undrained announce slots", ep.Rank(), dst, live)
			}
			for i := 0; i < q.head; i++ {
				if q.s[i] != nil {
					t.Errorf("rank %d -> %d: drained slot %d still retained", ep.Rank(), dst, i)
				}
			}
			if cap(q.s) > 256 {
				t.Errorf("rank %d -> %d: drained queue kept cap=%d backing array", ep.Rank(), dst, cap(q.s))
			}
		}
	}
}

// --- Credit scaling -----------------------------------------------------------

func TestCreditsForScale(t *testing.T) {
	cases := []struct{ n, want int }{
		{2, initialCredits}, {16, initialCredits}, {32, initialCredits},
		{64, 128}, {256, 32}, {1024, 8}, {4096, 8},
	}
	for _, c := range cases {
		if got := creditsFor(c.n); got != c.want {
			t.Errorf("creditsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Per-endpoint posted WRs must stay O(1) per peer as worlds grow: a
	// shared 8K budget, plus the 8-credit floor per peer.
	for _, n := range []int{64, 256, 1024, 4096} {
		total := creditsFor(n) * (n - 1)
		if limit := 8192 + 8*n; total > limit {
			t.Errorf("n=%d: %d credits posted per endpoint, want <= %d", n, total, limit)
		}
	}
}
