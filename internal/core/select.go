package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/trace"
)

// Scheme selection (Section 6, grown adaptive). The receiver makes the
// CTS-authoritative choice for every rendezvous message. With
// Config.Scheme != SchemeAuto the configured scheme is used unconditionally;
// under SchemeAuto the static threshold heuristic of Section 6 decides —
// unless a SchemeSelector is plugged into Config.Selector, in which case the
// selector (internal/tuner's measurement-driven Tuner) chooses among the
// eligible schemes and is fed the completion latency of every transfer it
// decided, closing the measure-select loop the static constants cannot.

// SelectorInput describes one rendezvous message at scheme-choice time, as
// the receiver sees it: the sender's layout summary from the RTS and the
// receiver's from its posted datatype. Averages are normalized the way the
// static heuristic reads them — a contiguous side reports the whole message
// as one run.
type SelectorInput struct {
	Peer    int   // sender rank
	Bytes   int64 // effective payload bytes
	SAvg    int64 // sender average contiguous run length
	SContig bool  // sender layout contiguous
	RRuns   int64 // receiver flattened run count
	RAvg    int64 // receiver average contiguous run length
	RContig bool  // receiver layout contiguous

	// Eligible lists the schemes a selector may pick for this shape; every
	// member delivers byte-identical data (the cross-backend conformance
	// suite pins that), so eligibility encodes policy, not correctness.
	Eligible []Scheme

	// Static is what the Section 6 threshold heuristic picks — the
	// selector's fallback and its regret baseline.
	Static Scheme
}

// SchemeDecision is a selector's verdict for one message.
type SchemeDecision struct {
	Scheme    Scheme
	Explored  bool   // chosen to gather data rather than because it looks best
	Rationale string // human-readable why, carried into the decision trace instant
}

// SchemeSelector replaces the static Auto heuristic with external
// per-message selection. Choose runs on the receiver at CTS time; Observe is
// called once per completed transfer with the measured receive latency and
// returns a regret proxy in nanoseconds (0 when the choice matched the best
// current estimate). Implementations must be safe for concurrent use: on the
// real-time backend every rank calls in from its own goroutine.
type SchemeSelector interface {
	Choose(in SelectorInput) SchemeDecision
	Observe(in SelectorInput, chosen Scheme, latencyNs int64) (regretNs int64)
}

// The eligible-scheme sets are fixed per shape class, so they are built
// once; callers treat them as read-only.
var (
	eligibleContig  = []Scheme{SchemeGeneric}
	eligibleNoReuse = []Scheme{SchemeGeneric, SchemeBCSPUP}
	eligibleAll     = []Scheme{SchemeGeneric, SchemeBCSPUP, SchemeRWGUP, SchemePRRS, SchemeMultiW}
)

// eligibleSchemes lists the schemes a selector may choose for this shape.
// Both sides contiguous collapses to the single zero-copy write; without the
// buffer-reuse hint the copy-reduced schemes are excluded because user-buffer
// registration will not amortize (the MPI_Info rule of Section 6).
func eligibleSchemes(cfg *Config, sContig, rContig bool) []Scheme {
	if sContig && rContig {
		return eligibleContig
	}
	if !cfg.BuffersReused {
		return eligibleNoReuse
	}
	return eligibleAll
}

// autoScheme is the decision half of AutoChoice: the Section 6 thresholds
// with no rationale formatting, so the untraced warm path pays no Sprintf.
func autoScheme(cfg *Config, in SelectorInput) Scheme {
	if in.SContig && in.RContig {
		return SchemeGeneric
	}
	if !cfg.BuffersReused {
		return SchemeBCSPUP
	}
	switch {
	case in.SAvg >= cfg.AutoBlockThreshold && in.RAvg >= cfg.AutoBlockThreshold:
		return SchemeMultiW
	case in.SContig && in.RAvg >= cfg.AutoGatherThreshold:
		return SchemePRRS
	case in.SAvg >= cfg.AutoGatherThreshold:
		return SchemeRWGUP
	default:
		return SchemeBCSPUP
	}
}

// AutoChoice is the static Section 6 heuristic as a pure function of the
// message shape: fixed layout thresholds decide, and the rationale string
// records which rule fired. It is the behavior SchemeAuto has always had and
// the fallback (and regret baseline) when a selector is plugged in.
func AutoChoice(cfg *Config, in SelectorInput) (Scheme, string) {
	s := autoScheme(cfg, in)
	if in.SContig && in.RContig {
		return s, "both sides contiguous: one zero-copy write"
	}
	if !cfg.BuffersReused {
		return s, "buffers not reused: registration will not amortize"
	}
	switch s {
	case SchemeMultiW:
		return s, fmt.Sprintf("savg %d and ravg %d reach block threshold %d",
			in.SAvg, in.RAvg, cfg.AutoBlockThreshold)
	case SchemePRRS:
		return s, fmt.Sprintf("contiguous sender, ravg %d reaches gather threshold %d",
			in.RAvg, cfg.AutoGatherThreshold)
	case SchemeRWGUP:
		return s, fmt.Sprintf("savg %d reaches gather threshold %d",
			in.SAvg, cfg.AutoGatherThreshold)
	default:
		return s, fmt.Sprintf("savg %d below gather threshold %d: staged pipeline",
			in.SAvg, cfg.AutoGatherThreshold)
	}
}

// selectorInput assembles the per-message shape summary for scheme choice.
// Only the Auto path pays the receiver-side LayoutStats walk.
func (ep *Endpoint) selectorInput(inb *inbound, req *Request, eff int64) SelectorInput {
	in := SelectorInput{
		Peer:    inb.src,
		Bytes:   eff,
		SAvg:    inb.sAvg,
		SContig: inb.sContig,
		RContig: req.dt.Contig(),
	}
	if in.SContig {
		in.SAvg = inb.size
	}
	if in.RContig {
		in.RAvg = req.dt.Size() * int64(req.count)
		in.RRuns = 1
	} else {
		in.RRuns, in.RAvg = ep.layoutSummary(req.dt, req.count)
	}
	in.Eligible = eligibleSchemes(&ep.cfg, in.SContig, in.RContig)
	return in
}

// decideScheme picks the transfer scheme for a matched rendezvous message
// and emits the decision trace instant (chosen scheme + rationale). Under
// SchemeAuto with a Selector it returns the SelectorInput so completion can
// feed the measured latency back; otherwise the second result is nil.
func (ep *Endpoint) decideScheme(inb *inbound, req *Request, eff int64) (Scheme, *SelectorInput) {
	if ep.cfg.Scheme != SchemeAuto {
		ep.markDecision(inb.opID, ep.cfg.Scheme, "fixed: ", "configured scheme")
		return ep.cfg.Scheme, nil
	}
	in := ep.selectorInput(inb, req, eff)
	static := autoScheme(&ep.cfg, in)
	in.Static = static
	if ep.cfg.Selector == nil {
		if ep.cfg.Tracer != nil {
			// Rationale strings are only formatted when a tracer consumes
			// them — the untraced warm path decides without allocating.
			_, why := AutoChoice(&ep.cfg, in)
			ep.markDecision(inb.opID, static, "static: ", why)
		}
		return static, nil
	}
	d := ep.cfg.Selector.Choose(in)
	scheme := d.Scheme
	if !schemeIn(in.Eligible, scheme) {
		// A selector must never force an ineligible scheme onto the wire;
		// fall back to the static rule and say so in the trace.
		scheme = static
		d.Explored = false
		if ep.cfg.Tracer != nil {
			_, why := AutoChoice(&ep.cfg, in)
			d.Rationale = fmt.Sprintf("selector returned ineligible %v, falling back: %s", d.Scheme, why)
		}
	}
	if d.Explored {
		atomic.AddInt64(&ep.ctr.TunerExplorations, 1)
	} else {
		atomic.AddInt64(&ep.ctr.TunerExploitations, 1)
	}
	ep.markDecision(inb.opID, scheme, "tuned: ", d.Rationale)
	return scheme, &in
}

// markDecision records the scheme-decision instant on the msg lane: which
// scheme this receiver's CTS will carry, and why. The prefix/why split keeps
// the concatenation off the untraced path.
func (ep *Endpoint) markDecision(opID uint32, s Scheme, prefix, why string) {
	if ep.cfg.Tracer == nil {
		return
	}
	ep.cfg.Tracer.Mark(ep.node, trace.LaneMsg, "decide "+s.String()+": "+prefix+why, "decision", uint64(opID), ep.tnow())
}

func schemeIn(list []Scheme, s Scheme) bool {
	for _, e := range list {
		if e == s {
			return true
		}
	}
	return false
}
