package core

import (
	"sync/atomic"

	"fmt"

	"repro/internal/datatype"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/pack"
	"repro/internal/simtime"
	"repro/internal/verbs"
)

// sendOp is the sender-side state of one rendezvous transfer.
type sendOp struct {
	id    uint32
	req   *Request
	dst   int
	tag   int
	buf   mem.Addr
	count int
	dt    *datatype.Type
	size  int64 // full message size
	eff   int64 // effective (possibly truncated) size, set by the CTS

	sContig    bool
	registered bool
	regions    []*mem.Region
	refs       []regRef // local regions with lkeys, sorted by address

	// Observability: when the RTS went out, and the scheme the receiver's
	// CTS selected (authoritative even under SchemeAuto).
	tStart simtime.Time
	scheme Scheme

	staging segRes   // Generic whole-message pack buffer
	segs    []segRes // P-RRS pack segments, held until Done
	wrsLeft int      // descriptors not yet finally resolved

	// allPosted guards completion: wrsLeft may transiently hit zero between
	// segment posts, so onWRsDone only fires once every descriptor of the op
	// has been posted.
	allPosted bool
	onWRsDone func()

	// Failure state (see failure.go).
	failed     bool
	failErr    error
	notifyPeer bool

	// Free-list state (freelist.go): outstanding continuation pins and the
	// retired flag that arms recycle-on-last-unpin.
	pins    int
	retired bool

	// Op-owned arenas and scratch, reused across the op's whole life and
	// reset only at recycle: the descriptor arena chunkWRs fills, the
	// descriptor groups sendGatherData accumulates, the per-batch segment
	// scratch of the batched BC-SPUP pipeline, and the parsed CTS segment /
	// region refs (op-owned because admission may park the data phase while
	// another CTS arrives and parses).
	wrs        wrSet
	groups     [][]verbs.SendWR
	segScratch []seg
	ctsSegs    []segRef
	ctsRegs    []regRef
}

// segRes couples a staging segment with the byte count it carries. held
// records whether this op still owns the segment (rather than inferring
// ownership from a sentinel address), so abort teardown releases exactly the
// resources the op holds.
type segRes struct {
	seg   seg
	bytes int64
	held  bool
}

// recvOp is the receiver-side state of one rendezvous transfer.
type recvOp struct {
	key       opKey
	req       *Request
	eff       int64
	truncated bool
	scheme    Scheme
	sel       *SelectorInput // non-nil when an adaptive selector made the choice
	tStart    simtime.Time   // when the RTS met the posted receive

	// Staged path (Generic / BC-SPUP / RWG-UP).
	direct   bool // receiver side contiguous: data lands in the user buffer
	segSize  int64
	nSegs    int
	segs     []segRes
	unpacker *pack.ParallelUnpacker
	arrived  int
	finished int

	// User-buffer registrations (direct, Multi-W, P-RRS).
	regions []*mem.Region
	refs    []regRef

	// wholeSeg backs all segments when staging was allocated as one
	// on-the-fly buffer (pool disabled or message larger than the pool);
	// it is released once, at completion.
	wholeSeg *seg

	// P-RRS read state.
	readCur   datatype.RunWalker
	bytesRead int64
	wrsLeft   int // outstanding receiver-initiated descriptors (scatter reads)

	// Failure state (see failure.go).
	failed     bool
	failErr    error
	notifyPeer bool

	// Free-list state (freelist.go), mirroring sendOp.
	pins    int
	retired bool

	// Op-owned arenas: the scatter-read descriptor arena (P-RRS) and the
	// segment refs assembled for the CTS reply.
	wrs     wrSet
	ctsRefs []segRef
}

func (ep *Endpoint) newOpID() uint32 {
	ep.nextOp++
	return ep.nextOp
}

// chargeTypeProc charges datatype-processing CPU for handling runs runs.
func (ep *Endpoint) chargeTypeProc(runs int) {
	ep.hca.ChargeCPUNamed(ep.cfg.TypeProcBase+simtime.Duration(runs)*ep.cfg.TypeProcPerRun, "typeproc")
}

// registerUserMessage registers the contiguous blocks of a message buffer
// using Optimistic Group Registration through the user pin-down cache,
// charging the real registration work, and hands the regions to done.
// Transient registration faults are retried with backoff (so done may run
// after a virtual-time delay); without faults done runs synchronously.
// On error any partially acquired groups are released first.
//
// regions and refs are caller-supplied append buffers (callers pass the
// owning op's retained slices so a warm registration allocates nothing);
// because the append happens across retry backoffs, the caller must pin the
// owning op until done runs.
func (ep *Endpoint) registerUserMessage(buf mem.Addr, dt *datatype.Type, count int,
	regions []*mem.Region, refs []regRef,
	done func([]*mem.Region, []regRef, error)) {

	blocks, sorted := ep.messageBlocks(buf, dt, count)
	ep.chargeTypeProc(len(blocks))
	cost := mem.RegCost{Base: int64(ep.model.RegBase), PerPage: int64(ep.model.RegPerPage)}
	var groups []mem.Block
	if sorted {
		// Compiled programs that emit in address order skip the sort.
		groups = mem.GroupRegionsSorted(blocks, cost)
	} else {
		groups = mem.GroupRegions(blocks, cost)
	}
	regions = regions[:0]
	refs = refs[:0]
	var total mem.RegOps
	i, attempt := 0, 0
	var step func()
	step = func() {
		for i < len(groups) {
			g := groups[i]
			r, ops, err := ep.userReg.Acquire(g.Addr, g.Len)
			total.Add(ops)
			if err != nil {
				if fault.IsTransient(err) && attempt < ep.cfg.FaultRetryLimit {
					attempt++
					atomic.AddInt64(&ep.ctr.FaultRetries, 1)
					ep.eng.Schedule(ep.cfg.retryBackoff(attempt), step)
					return
				}
				ep.releaseUserRegions(regions)
				done(nil, nil, err)
				return
			}
			attempt = 0
			regions = append(regions, r)
			refs = append(refs, regRef{addr: g.Addr, len: g.Len, key: r.LKey})
			i++
		}
		ep.accountReg(total)
		ep.hca.ChargeCPUNamed(ep.model.RegOpsTime(total), "reg")
		done(regions, refs, nil)
	}
	step()
}

// releaseUserRegions drops user-buffer registrations, charging any real
// deregistration work (cache off or eviction).
func (ep *Endpoint) releaseUserRegions(regions []*mem.Region) {
	var total mem.RegOps
	for _, r := range regions {
		ops, err := ep.userReg.Release(r)
		if err != nil {
			panic(err)
		}
		total.Add(ops)
	}
	ep.accountReg(total)
	if d := ep.model.RegOpsTime(total); d > 0 {
		ep.hca.ChargeCPUNamed(d, "reg")
	}
	ep.qosDrain() // registration pressure just dropped
}

// acquireStaging allocates and registers a dynamic staging buffer of exactly
// n bytes (the Generic scheme's pack/unpack buffers), charging malloc and
// registration work, and hands the segment to done. Transient registration
// faults are retried with backoff; the allocation is freed if registration
// ultimately fails. Without faults done runs synchronously.
func (ep *Endpoint) acquireStaging(n int64, done func(seg, error)) {
	atomic.AddInt64(&ep.ctr.DynamicAllocs, 1)
	addr, err := ep.memory.AllocPage(n)
	if err != nil {
		done(seg{}, err)
		return
	}
	attempt := 0
	var try func()
	try = func() {
		region, ops, err := ep.stagingReg.Acquire(addr, n)
		if err != nil {
			if fault.IsTransient(err) && attempt < ep.cfg.FaultRetryLimit {
				attempt++
				atomic.AddInt64(&ep.ctr.FaultRetries, 1)
				ep.eng.Schedule(ep.cfg.retryBackoff(attempt), try)
				return
			}
			if ferr := ep.memory.Free(addr); ferr != nil {
				panic(ferr)
			}
			done(seg{}, err)
			return
		}
		ep.accountReg(ops)
		ep.hca.ChargeCPUNamed(ep.model.MallocTime(n)+ep.model.RegOpsTime(ops), "malloc+reg")
		done(seg{addr: addr, key: region.LKey, region: region}, nil)
	}
	try()
}

// --- Sender: initiation ------------------------------------------------------

// rndvSend starts the rendezvous protocol for a large message.
func (ep *Endpoint) rndvSend(req *Request, ctx int, buf mem.Addr, count int, dt *datatype.Type, dst, tag int) {
	op := ep.getSendOp()
	op.id, op.req, op.dst, op.tag = ep.newOpID(), req, dst, tag
	op.buf, op.count, op.dt = buf, count, dt
	op.size = dt.Size() * int64(count)
	op.sContig = dt.Contig()
	op.notifyPeer = true
	op.tStart = ep.tnow()
	ep.addSendOp(op)
	atomic.AddInt64(&ep.ctr.RendezvousSends, 1)

	_, sAvg := ep.layoutSummary(dt, count)
	slot := ep.reserveAnnounce(dst)
	sendRTS := func() {
		// The announce closure can sit queued behind an earlier message's
		// delayed RTS; pin so an op aborted in that window is not recycled
		// out from under the closure.
		ep.pinSend(op)
		ep.announceReady(dst, slot, func() {
			defer ep.unpinSend(op)
			ep.mark("rts", "rts", op.id)
			w := ep.ctrlW()
			w.u8(kindRTS)
			w.u32(op.id)
			w.u32(uint32(ctx))
			w.u32(uint32(tag))
			w.i64(op.size)
			w.i64(sAvg)
			if op.sContig {
				w.u8(1)
			} else {
				w.u8(0)
			}
			ep.sendCtrl(dst, w.buf, nil)
		})
	}

	// Copy-reduced fixed schemes register the user buffer now, overlapping
	// registration with the handshake (Section 7.4). Under Auto the choice
	// is the receiver's, so registration waits for the CTS.
	if ep.cfg.Scheme == SchemeRWGUP || ep.cfg.Scheme == SchemeMultiW ||
		(ep.cfg.Scheme == SchemePRRS && op.sContig) || op.sContig {
		ep.pinSend(op)
		ep.registerUserMessage(buf, dt, count, op.regions[:0], op.refs[:0],
			func(regions []*mem.Region, refs []regRef, err error) {
				defer ep.unpinSend(op)
				if err != nil {
					// Still announce the op so the receiver has something to
					// match; the abort's failure notice then unblocks it.
					sendRTS()
					ep.abortSend(op, err)
					return
				}
				if op.failed {
					// The op died before announcing; release the slot with a
					// no-op so later announces to this peer are not stuck.
					ep.announceReady(dst, slot, func() {})
					ep.releaseUserRegions(regions)
					return
				}
				op.regions, op.refs = regions, refs
				op.registered = true
				sendRTS()
			})
		return
	}
	sendRTS()
}

// --- Receiver: match and scheme choice ---------------------------------------

// rndvMatched runs when an RTS meets its posted receive; it allocates
// receiver resources for the chosen scheme and sends the CTS. The scheme
// decision itself (static Section 6 heuristic, or an adaptive selector) lives
// in select.go.
func (ep *Endpoint) rndvMatched(inb *inbound, req *Request) {
	capacity := req.dt.Size() * int64(req.count)
	eff := inb.size
	if eff > capacity {
		eff = capacity
	}
	scheme, sel := ep.decideScheme(inb, req, eff)
	op := ep.getRecvOp()
	op.key = opKey{src: inb.src, op: inb.opID}
	op.req, op.eff = req, eff
	op.truncated = inb.size > capacity
	op.scheme = scheme
	op.sel = sel
	op.direct = req.dt.Contig()
	op.tStart = ep.tnow()
	req.Source = inb.src
	req.Tag = inb.tag
	req.Bytes = eff
	ep.addRecvOp(op)
	ep.mark(schemeName(&matchMarkName, op.scheme), "rts", op.key.op)

	// Service mode gates the whole data phase here: parking before the
	// scheme setup delays only the CTS (the sanctioned Section 4.3.3 stall),
	// never the already-sent announce.
	ep.admitRecv(op, func() {
		switch op.scheme {
		case SchemeGeneric:
			ep.recvStagedSetup(op, eff) // one whole-message segment
		case SchemeBCSPUP, SchemeRWGUP:
			ep.recvStagedSetup(op, ep.cfg.segSizeFor(eff))
		case SchemeMultiW:
			ep.recvMultiWSetup(op)
		case SchemePRRS:
			ep.recvPRRSSetup(op)
		default:
			panic("core: bad scheme at match")
		}
	})
}

// recvStagedSetup assigns unpack destinations — the receiver's user buffer
// directly when it is contiguous, staging segments otherwise — and replies
// with the CTS carrying their addresses and keys. When the unpack pool is
// dry, the reply is delayed until segments free up, stalling the sender
// exactly as Section 4.3.3 prescribes; only a message too large for the
// whole pool falls back to dynamic allocation.
func (ep *Endpoint) recvStagedSetup(op *recvOp, segSize int64) {
	if segSize <= 0 || segSize > op.eff {
		segSize = op.eff
	}
	op.segSize = segSize
	op.nSegs = int((op.eff + segSize - 1) / segSize)

	sendCTS := func(refs []segRef) {
		w := ep.ctrlW()
		w.u8(kindCTS)
		w.u32(op.key.op)
		w.u8(uint8(op.scheme))
		w.i64(op.eff)
		w.i64(segSize)
		w.segRefs(refs)
		ep.sendCtrl(op.key.src, w.buf, nil)
		ep.span(schemeName(&ctsSpanName, op.scheme), "handshake", op.key.op, op.eff, op.tStart)
	}

	if op.direct {
		// Contiguous receiver: segments map straight onto the user buffer.
		ep.pinRecv(op)
		ep.registerUserMessage(op.req.buf, op.req.dt, op.req.count, op.regions[:0], op.refs[:0],
			func(regions []*mem.Region, rrefs []regRef, err error) {
				defer ep.unpinRecv(op)
				if err != nil {
					ep.abortRecv(op, err, true)
					return
				}
				if op.failed {
					ep.releaseUserRegions(regions)
					return
				}
				op.regions = regions
				base := mem.Addr(int64(op.req.buf) + op.req.dt.TrueLB())
				refs := op.ctsRefs[:0]
				for k := 0; k < op.nSegs; k++ {
					refs = append(refs, segRef{addr: base + mem.Addr(int64(k)*segSize), key: rrefs[0].key})
				}
				op.ctsRefs = refs
				sendCTS(refs)
			})
		return
	}

	op.unpacker = ep.newParallelUnpacker(op.req.buf, op.req.dt, op.req.count)

	if op.scheme == SchemeGeneric {
		// The basic scheme's dynamically allocated whole-message unpack
		// buffer (Figure 1).
		ep.pinRecv(op)
		ep.acquireStaging(op.eff, func(s seg, err error) {
			defer ep.unpinRecv(op)
			if err != nil {
				ep.abortRecv(op, err, true)
				return
			}
			if op.failed {
				ep.releaseSeg(ep.unpackPool, s)
				return
			}
			op.segs = append(op.segs[:0], segRes{seg: s, bytes: op.eff, held: true})
			op.ctsRefs = append(op.ctsRefs[:0], segRef{addr: s.addr, key: s.key})
			sendCTS(op.ctsRefs)
		})
		return
	}

	segBytes := func(k int) int64 {
		n := segSize
		if rest := op.eff - int64(k)*segSize; n > rest {
			n = rest
		}
		return n
	}
	pool := ep.unpackPool
	segC := pool.classFor(segSize)
	if !pool.enabled || op.nSegs > pool.slotsFor(segC) {
		// No pool (the worst case of Figure 14) or message larger than the
		// whole pool: allocate one on-the-fly unpack buffer of the real data
		// size — the same registration cost the Generic scheme pays — and
		// carve the segments out of it.
		if !pool.enabled {
			atomic.AddInt64(&ep.ctr.PoolDisabled, 1)
		} else {
			atomic.AddInt64(&ep.ctr.PoolOverflow, 1)
		}
		ep.pinRecv(op)
		ep.acquireStaging(op.eff, func(s seg, err error) {
			defer ep.unpinRecv(op)
			if err != nil {
				ep.abortRecv(op, err, true)
				return
			}
			if op.failed {
				ep.releaseSeg(ep.unpackPool, s)
				return
			}
			op.wholeSeg = &s
			refs := op.ctsRefs[:0]
			for k := 0; k < op.nSegs; k++ {
				addr := s.addr + mem.Addr(int64(k)*segSize)
				// Views onto wholeSeg: not individually held, the backing
				// buffer is released once.
				op.segs = append(op.segs, segRes{
					seg:   seg{addr: addr, key: s.key},
					bytes: segBytes(k),
				})
				refs = append(refs, segRef{addr: addr, key: s.key})
			}
			op.ctsRefs = refs
			sendCTS(refs)
		})
		return
	}
	ep.pinRecv(op)
	pool.whenAvailable(op.nSegs, segC, func() {
		defer ep.unpinRecv(op)
		if op.failed {
			return // aborted while parked; slots stay with the pool
		}
		refs := op.ctsRefs[:0]
		for k := 0; k < op.nSegs; k++ {
			s, ok := pool.tryAcquire(segC)
			if !ok {
				panic("core: unpack pool promised slots it does not have")
			}
			op.segs = append(op.segs, segRes{seg: s, bytes: segBytes(k), held: true})
			refs = append(refs, segRef{addr: s.addr, key: s.key})
		}
		op.ctsRefs = refs
		sendCTS(refs)
	})
}

// recvMultiWSetup registers the receiver's user blocks and ships its layout
// (or its cached identity) plus region keys in the CTS.
func (ep *Endpoint) recvMultiWSetup(op *recvOp) {
	ep.pinRecv(op)
	ep.registerUserMessage(op.req.buf, op.req.dt, op.req.count, op.regions[:0], op.refs[:0],
		func(regions []*mem.Region, refs []regRef, err error) {
			defer ep.unpinRecv(op)
			if err != nil {
				ep.abortRecv(op, err, true)
				return
			}
			if op.failed {
				ep.releaseUserRegions(regions)
				return
			}
			op.regions = regions
			op.refs = refs

			idx := ep.types.commit(op.req.dt)
			version := ep.types.version(idx)
			var layout []byte
			if ep.layouts.needSend(op.key.src, idx, version) {
				layout = datatype.Encode(op.req.dt)
				atomic.AddInt64(&ep.ctr.TypeLayoutsSent, 1)
			}

			w := ep.ctrlW()
			w.u8(kindCTS)
			w.u32(op.key.op)
			w.u8(uint8(SchemeMultiW))
			w.i64(op.eff)
			w.u64(uint64(op.req.buf))
			w.u64(uint64(op.req.count))
			w.u32(uint32(idx))
			w.u32(version)
			if layout != nil {
				w.u8(1)
				w.bytes(layout)
			} else {
				w.u8(0)
			}
			w.regRefs(refs)
			ep.sendCtrl(op.key.src, w.buf, nil)
			ep.span("cts Multi-W", "handshake", op.key.op, op.eff, op.tStart)
		})
}

// recvPRRSSetup registers the receiver's user blocks for scatter reads and
// tells the sender to start producing segments.
func (ep *Endpoint) recvPRRSSetup(op *recvOp) {
	ep.pinRecv(op)
	ep.registerUserMessage(op.req.buf, op.req.dt, op.req.count, op.regions[:0], op.refs[:0],
		func(regions []*mem.Region, refs []regRef, err error) {
			defer ep.unpinRecv(op)
			if err != nil {
				ep.abortRecv(op, err, true)
				return
			}
			if op.failed {
				ep.releaseUserRegions(regions)
				return
			}
			op.regions = regions
			op.refs = refs
			op.segSize = ep.cfg.segSizeFor(op.eff)
			op.nSegs = int((op.eff + op.segSize - 1) / op.segSize)
			op.readCur = ep.walkerFor(op.req.dt, op.req.count)

			w := ep.ctrlW()
			w.u8(kindCTS)
			w.u32(op.key.op)
			w.u8(uint8(SchemePRRS))
			w.i64(op.eff)
			w.i64(op.segSize)
			ep.sendCtrl(op.key.src, w.buf, nil)
			ep.span("cts P-RRS", "handshake", op.key.op, op.eff, op.tStart)
		})
}

// finishRecv completes the receive request and releases receiver resources;
// the op retires to the free-list once the last pinned continuation drops.
func (ep *Endpoint) finishRecv(op *recvOp) {
	if op.failed {
		return // abort teardown owns the resources now
	}
	if !ep.removeRecvOp(op) {
		return // already finalized
	}
	ep.span(schemeName(&recvSpanName, op.scheme), "data", op.key.op, op.eff, op.tStart)
	ep.observeTransfer(op.scheme, op.eff, op.tStart)
	if op.sel != nil && ep.cfg.Selector != nil {
		// Close the adaptive loop: feed the measured receive latency back to
		// the selector that chose this scheme, and account its regret proxy.
		lat := int64(ep.tnow().Sub(op.tStart))
		if regret := ep.cfg.Selector.Observe(*op.sel, op.scheme, lat); regret > 0 {
			atomic.AddInt64(&ep.ctr.TunerRegretNs, regret)
		}
	}
	if op.wholeSeg != nil {
		ep.releaseSeg(ep.unpackPool, *op.wholeSeg)
		op.wholeSeg = nil
	}
	if len(op.regions) > 0 {
		ep.releaseUserRegions(op.regions)
		op.regions = op.regions[:0]
	}
	var err error
	if op.truncated {
		err = ErrTruncate
	}
	op.req.complete(err)
	ep.qosDrain() // one fewer active op; parked transfers may now be admissible
	ep.retireRecv(op)
}

// --- Sender: CTS dispatch ----------------------------------------------------

func (ep *Endpoint) handleCTS(src int, r *ctrlReader) {
	id := r.u32()
	scheme := Scheme(r.u8())
	eff := r.i64()
	op := ep.lookupSendOp(src, id)
	if op == nil && !ep.faultMode() {
		panic(fmt.Sprintf("core rank %d: CTS for unknown op %d", ep.rank, id))
	}
	// A CTS can still arrive for an op this side already aborted (the
	// receiver replied before our failure notice reached it). The data
	// movement is skipped, but per-peer cache state carried by the CTS —
	// the Multi-W layout below — must still be absorbed: the receiver has
	// marked it delivered and will never ship it again. Refs for a dead op
	// parse into endpoint scratch just to advance the reader; a live op
	// parses into its own retained buffers, which must be op-owned because
	// admission may park the data phase while another CTS arrives.
	dead := op == nil || op.failed
	if !dead {
		op.eff = eff
		op.scheme = scheme
		ep.span(schemeName(&handshakeSpanName, scheme), "handshake", op.id, eff, op.tStart)
	}
	switch scheme {
	case SchemeGeneric, SchemeBCSPUP, SchemeRWGUP:
		segSize := r.i64()
		var refs []segRef
		if dead {
			ep.ctsSegScratch = r.segRefsInto(ep.ctsSegScratch[:0])
		} else {
			op.ctsSegs = r.segRefsInto(op.ctsSegs[:0])
			refs = op.ctsSegs
		}
		if r.err != nil {
			panic(r.err)
		}
		if dead {
			return
		}
		ep.admitSend(op, func() { ep.sendStagedData(op, scheme, segSize, refs) })
	case SchemeMultiW:
		rBase := mem.Addr(r.u64())
		rCount := int(r.u64())
		idx := int(r.u32())
		version := r.u32()
		hasLayout := r.u8() != 0
		var rType *datatype.Type
		if hasLayout {
			enc := r.bytes()
			if r.err != nil {
				panic(r.err)
			}
			t, err := datatype.Decode(enc)
			if err != nil {
				panic(err)
			}
			if _, had := ep.layouts.got[layoutKey{src, idx}]; had {
				atomic.AddInt64(&ep.ctr.TypeCacheReplaced, 1)
			}
			ep.layouts.store(src, idx, version, t)
			rType = t
		}
		var rRefs []regRef
		if dead {
			ep.ctsRegScratch = r.regRefsInto(ep.ctsRegScratch[:0])
		} else {
			op.ctsRegs = r.regRefsInto(op.ctsRegs[:0])
			rRefs = op.ctsRegs
		}
		if r.err != nil {
			panic(r.err)
		}
		if dead {
			return
		}
		if rType == nil {
			t, ok := ep.layouts.lookup(src, idx, version)
			if !ok {
				panic(fmt.Sprintf("core rank %d: missing cached layout (%d,%d,v%d)",
					ep.rank, src, idx, version))
			}
			atomic.AddInt64(&ep.ctr.TypeCacheHits, 1)
			rType = t
		}
		ep.admitSend(op, func() { ep.sendMultiWData(op, rBase, rType, rCount, rRefs) })
	case SchemePRRS:
		segSize := r.i64()
		if r.err != nil {
			panic(r.err)
		}
		if dead {
			return
		}
		ep.admitSend(op, func() { ep.sendPRRSData(op, segSize) })
	default:
		panic(fmt.Sprintf("core: CTS with bad scheme %d", scheme))
	}
}

// finishSend completes the send request and releases sender resources; the
// op retires to the free-list once the last pinned continuation drops.
func (ep *Endpoint) finishSend(op *sendOp) {
	if op.failed {
		return // abort teardown owns the resources now
	}
	if !ep.removeSendOp(op) {
		return // already finalized
	}
	ep.span(schemeName(&sendSpanName, op.scheme), "data", op.id, op.eff, op.tStart)
	if len(op.regions) > 0 {
		ep.releaseUserRegions(op.regions)
		op.regions = op.regions[:0]
	}
	op.req.complete(nil)
	ep.qosDrain() // one fewer active op; parked transfers may now be admissible
	ep.retireSend(op)
}

// --- Receiver: segment arrival (RDMA write with immediate) -------------------

func (ep *Endpoint) handleImm(src int, imm uint32, bytes int64) {
	op := ep.lookupRecvOp(src, imm)
	if op == nil {
		if ep.faultMode() {
			return // data landed for an op we already aborted
		}
		panic(fmt.Sprintf("core rank %d: immediate for unknown op %d from %d", ep.rank, imm, src))
	}
	if op.failed {
		return
	}
	op.arrived++
	ep.mark("seg-arrive", "segment", imm)
	switch op.scheme {
	case SchemeMultiW:
		// Single immediate marks the whole zero-copy message landed.
		ep.finishRecv(op)
	case SchemeGeneric, SchemeBCSPUP, SchemeRWGUP:
		ep.stagedArrival(op)
	default:
		panic("core: immediate on unexpected scheme")
	}
}

// stagedArrival advances the staged receive path by one segment.
func (ep *Endpoint) stagedArrival(op *recvOp) {
	if op.direct {
		// Data landed straight in the user buffer; just count.
		if op.arrived == op.nSegs {
			ep.finishRecv(op)
		}
		return
	}
	segmentUnpack := ep.cfg.SegmentUnpack || op.nSegs == 1
	if segmentUnpack {
		k := op.arrived - 1
		ep.unpackSegment(op, k)
		return
	}
	// Segment unpack disabled (Figure 12's comparison case): wait for the
	// whole message, then unpack everything.
	if op.arrived == op.nSegs {
		for k := 0; k < op.nSegs; k++ {
			ep.unpackSegment(op, k)
		}
	}
}

// unpackSegment copies staging segment k into the user buffer, charging copy
// cost, then releases the segment; the last segment completes the receive.
func (ep *Endpoint) unpackSegment(op *recvOp, k int) {
	sr := op.segs[k]
	src := ep.memory.Bytes(sr.seg.addr, sr.bytes)
	st := op.unpacker.Unpack(src)
	n := st.Bytes
	if n != sr.bytes {
		panic("core: segment unpack shortfall")
	}
	atomic.AddInt64(&ep.ctr.BytesUnpacked, n)
	atomic.AddInt64(&ep.ctr.SegmentsPipelined, 1)
	if len(st.Shards) > 1 {
		atomic.AddInt64(&ep.ctr.ParallelUnpacks, 1)
	}
	ep.observeShards(st)
	cost := ep.cfg.parPackCost(ep.model, st)
	t0 := ep.tnow()
	// Pin across the deferred completion: the op can abort (and finalize,
	// with no descriptors outstanding) while this unpack charge is in
	// flight, and the closure must still read this op's state, not a
	// recycled successor's.
	ep.pinRecv(op)
	ep.afterNamed(cost, "unpack", func() {
		defer ep.unpinRecv(op)
		ep.span("unpack", "segment", op.key.op, n, t0)
		if op.failed {
			return // abort teardown released (or will release) the segments
		}
		// Pool slots return to the pool; Generic's dynamic staging buffer is
		// deregistered and freed (releaseSeg dispatches on the segment
		// kind). Segments carved from a whole on-the-fly buffer are views:
		// the backing buffer is released once, at completion.
		if op.wholeSeg == nil {
			ep.releaseSeg(ep.unpackPool, op.segs[k].seg)
			op.segs[k].held = false
		}
		op.finished++
		if op.finished == op.nSegs {
			ep.finishRecv(op)
		}
	})
}
