package perfgate

import (
	"path/filepath"
	"strings"
	"testing"
)

func row(name, kind string, ns, allocs float64, zero bool) Row {
	return Row{Name: name, Kind: kind, NsPerOp: ns, AllocsPerOp: allocs, ZeroAlloc: zero}
}

func findProblem(t *testing.T, ps []Problem, rowName string) Problem {
	t.Helper()
	for _, p := range ps {
		if p.Row == rowName {
			return p
		}
	}
	t.Fatalf("no problem reported for row %q in %v", rowName, ps)
	return Problem{}
}

// The tentpole invariant: a pinned zero-alloc row that allocates anything at
// all is a fatal regression, no tolerance applies.
func TestCompareZeroAllocViolationIsFatal(t *testing.T) {
	base := Report{Rows: []Row{row("chunkwrs/v", KindWall, 100, 0, true)}}
	cur := Report{Rows: []Row{row("chunkwrs/v", KindWall, 100, 0.005, true)}}
	ps := Compare(base, cur)
	p := findProblem(t, ps, "chunkwrs/v")
	if !p.Fatal || !strings.Contains(p.Msg, "zero-alloc") {
		t.Fatalf("zero-alloc violation not fatal: %+v", p)
	}
	if !Fatal(ps) {
		t.Fatal("Fatal() = false with a zero-alloc violation present")
	}
}

func TestCompareAllocTolerance(t *testing.T) {
	base := Report{Rows: []Row{row("rndv/sim/X", KindVirtual, 1000, 100, false)}}
	// Inside tolerance: 100*1.10 + 8 = 118.
	cur := Report{Rows: []Row{row("rndv/sim/X", KindVirtual, 1000, 118, false)}}
	if ps := Compare(base, cur); len(ps) != 0 {
		t.Fatalf("in-tolerance alloc growth flagged: %v", ps)
	}
	cur.Rows[0].AllocsPerOp = 119
	ps := Compare(base, cur)
	if p := findProblem(t, ps, "rndv/sim/X"); !p.Fatal {
		t.Fatalf("out-of-tolerance alloc growth not fatal: %+v", p)
	}
	// The absolute headroom keeps tiny baselines from failing on one rehash.
	base.Rows[0].AllocsPerOp = 1
	cur.Rows[0].AllocsPerOp = 9
	if ps := Compare(base, cur); len(ps) != 0 {
		t.Fatalf("small-baseline jitter flagged: %v", ps)
	}
}

// Injected regression: virtual-time latency past NsSlack fails the gate.
// This is the `make perf-guard` failure mode demonstrated in the PR.
func TestCompareVirtualNsRegressionIsFatal(t *testing.T) {
	base := Report{Rows: []Row{row("rndv/sim/X", KindVirtual, 1000, 10, false)}}
	cur := Report{Rows: []Row{row("rndv/sim/X", KindVirtual, 1099, 10, false)}}
	if ps := Compare(base, cur); len(ps) != 0 {
		t.Fatalf("in-tolerance virtual drift flagged: %v", ps)
	}
	cur.Rows[0].NsPerOp = 1101
	ps := Compare(base, cur)
	p := findProblem(t, ps, "rndv/sim/X")
	if !p.Fatal || !strings.Contains(p.Msg, "virtual") {
		t.Fatalf("virtual regression not fatal: %+v", p)
	}
	if !Fatal(ps) {
		t.Fatal("Fatal() = false with a virtual regression present")
	}
}

// Wall-clock drift never fails the gate — machines differ — but large drift
// is surfaced as an advisory note.
func TestCompareWallDriftIsAdvisory(t *testing.T) {
	base := Report{Rows: []Row{row("pack/v", KindWall, 100, 0, true)}}
	cur := Report{Rows: []Row{row("pack/v", KindWall, 500, 0, true)}}
	ps := Compare(base, cur)
	p := findProblem(t, ps, "pack/v")
	if p.Fatal {
		t.Fatalf("wall drift reported fatal: %+v", p)
	}
	if Fatal(ps) {
		t.Fatal("Fatal() = true on advisory-only problems")
	}
	if got := p.String(); !strings.HasPrefix(got, "note ") {
		t.Fatalf("advisory problem renders as %q", got)
	}
}

func TestCompareMissingAndNewRows(t *testing.T) {
	base := Report{Rows: []Row{row("gone", KindWall, 1, 0, false)}}
	cur := Report{Rows: []Row{row("fresh", KindWall, 1, 0, false)}}
	ps := Compare(base, cur)
	if p := findProblem(t, ps, "gone"); !p.Fatal {
		t.Fatalf("missing row not fatal: %+v", p)
	}
	if p := findProblem(t, ps, "fresh"); p.Fatal {
		t.Fatalf("new row reported fatal: %+v", p)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "perf.json")
	r := Report{Rows: []Row{
		row("b", KindWall, 2, 1, false),
		row("a", KindVirtual, 1, 0, true),
	}}
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Rows[0].Name != "a" || got.Rows[1].Name != "b" {
		t.Fatalf("round trip lost sorting or rows: %+v", got.Rows)
	}
	if got.Rows[0].Kind != KindVirtual || !got.Rows[0].ZeroAlloc {
		t.Fatalf("round trip lost fields: %+v", got.Rows[0])
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading a missing baseline succeeded")
	}
}

// The committed baseline must stay in sync with the suite's row set: every
// baseline comparison assumes names match. This does not run the full suite
// (worlds are exercised by cmd/perfgate); it pins the static half.
func TestWallRowMeasuresZeroAllocClosure(t *testing.T) {
	n := 0
	r := wallRow("probe", true, func() { n++ })
	if r.AllocsPerOp != 0 || !r.ZeroAlloc || r.Kind != KindWall {
		t.Fatalf("wallRow on a pure closure: %+v", r)
	}
	if n != wallRuns+1 {
		t.Fatalf("wallRow ran closure %d times, want %d", n, wallRuns+1)
	}
}
