package perfgate

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/tuner"
)

// The micro-suite has two halves, mirroring how the paper measures (Figures
// 7–9): wall-clock rows exercise the software path below the fabric —
// pack/unpack replay of compiled layouts, descriptor building, doorbell
// batching, scheme decisions — where the zero-allocation invariant is pinned;
// virtual-time rows run whole two-rank worlds per scheme on the deterministic
// backends, where end-to-end latency regressions are enforced.

// Wall-row iteration counts: enough to average out timer granularity while
// keeping the whole suite under a couple of seconds.
const (
	wallRuns  = 200
	rndvWarm  = 2
	rndvIters = 8
)

// mallocCount reads the process-global cumulative allocation counter.
func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// wallRow measures f on the wall clock: one warmup call, then runs timed
// iterations with GOMAXPROCS pinned to 1 so background goroutines do not
// pollute the allocation counter. zero declares the row's pinned intent; the
// measured allocs/op is recorded either way so a violation is visible in the
// artifact itself, not just in the gate.
func wallRow(name string, zero bool, f func()) Row {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm: first call may grow arenas and lazily bind state
	m0 := mallocCount()
	start := time.Now()
	for i := 0; i < wallRuns; i++ {
		f()
	}
	elapsed := time.Since(start).Nanoseconds()
	allocs := float64(mallocCount()-m0) / wallRuns
	return Row{
		Name:        name,
		Kind:        KindWall,
		NsPerOp:     float64(elapsed) / wallRuns,
		AllocsPerOp: allocs,
		ZeroAlloc:   zero,
	}
}

// shape is one pinned datatype layout for the pack/descriptor rows. All
// three compile to canonical programs, so cursor Reset is allocation-free.
type shape struct {
	name  string
	dt    *datatype.Type
	count int
}

// suiteShapes returns the pinned layouts: fine-grained 4 B runs (the paper's
// worst case for per-run overhead), medium 256 B runs, and a contiguous
// control. Each carries 64 KiB of payload.
func suiteShapes() []shape {
	return []shape{
		{"vec4Bx16k", datatype.Must(datatype.TypeVector(16384, 1, 4, datatype.Int32)), 1},
		{"vec256Bx256", datatype.Must(datatype.TypeVector(256, 64, 128, datatype.Int32)), 1},
		{"contig64k", datatype.Must(datatype.TypeContiguous(16384, datatype.Int32)), 1},
	}
}

// packRows measures one warm pack and one warm unpack of each shape through
// the compiled-program replay path, the same code a BC-SPUP or P-RRS
// transfer runs per segment.
func packRows() []Row {
	var rows []Row
	for _, sh := range suiteShapes() {
		prog := datatype.Compile(sh.dt, sh.count)
		total := sh.dt.Size() * int64(sh.count)
		extent := sh.dt.Extent()*int64(sh.count) + 64
		m := mem.NewMemory("perfgate", extent+total+(4<<10))
		base := m.MustAlloc(extent)
		stage := make([]byte, total)

		p := pack.NewProgramPacker(m, base, prog)
		name := sh.name
		rows = append(rows, wallRow("pack/"+name, true, func() {
			p.Reset()
			if n, _ := p.PackTo(stage); n != total {
				panic(fmt.Sprintf("pack/%s: packed %d of %d bytes", name, n, total))
			}
		}))

		u := pack.NewProgramUnpacker(m, base, prog)
		rows = append(rows, wallRow("unpack/"+name, true, func() {
			u.Reset()
			if n, _ := u.UnpackFrom(stage); n != total {
				panic(fmt.Sprintf("unpack/%s: unpacked %d of %d bytes", name, n, total))
			}
		}))
	}
	return rows
}

// descriptorRows measures the warm descriptor-builder path: chunkWRs over
// the noncontiguous shapes and chunkBatches at the doorbell limit.
func descriptorRows() []Row {
	var rows []Row
	for _, sh := range suiteShapes() {
		if sh.name == "contig64k" {
			continue // one-WR degenerate case; the vector rows carry signal
		}
		probe := core.NewPerfProbe(sh.dt, sh.count)
		rows = append(rows, wallRow("chunkwrs/"+sh.name, true, func() {
			if probe.ChunkWRs() == 0 {
				panic("chunkwrs produced no descriptors")
			}
		}))
	}
	probe := core.NewPerfProbe(datatype.Int32, 1)
	rows = append(rows, wallRow("chunkbatches/1024x64", true, func() {
		if probe.ChunkBatches(1024, 64) != 16 {
			panic("chunkbatches split drifted")
		}
	}))
	return rows
}

// tunerRow measures one warm exploitation decision of the adaptive selector
// (Quiet, no exploration: the deterministic production configuration).
func tunerRow() Row {
	cfg := tuner.DefaultConfig()
	cfg.Quiet = true
	cfg.Explore = false
	t := tuner.New(cfg)
	in := core.SelectorInput{
		Peer:     1,
		Bytes:    256 << 10,
		SAvg:     256,
		RAvg:     256,
		RRuns:    1024,
		Eligible: []core.Scheme{core.SchemeBCSPUP, core.SchemeRWGUP, core.SchemePRRS, core.SchemeMultiW},
		Static:   core.SchemeBCSPUP,
	}
	return wallRow("tuner/decide", true, func() {
		t.Choose(in)
	})
}

// worldRow runs a pinned two-rank workload on a virtual-time backend and
// measures per-message virtual latency and whole-process allocations between
// barriers. The allocation column on these rows is whole-world (both ranks,
// fabric, matching), so it is tolerance-compared, not pinned to zero.
func worldRow(name, backend string, scheme core.Scheme, dt *datatype.Type, count int) (Row, error) {
	cfg := mpi.DefaultConfig()
	cfg.Ranks = 2
	cfg.MemBytes = 64 << 20
	cfg.Backend = backend
	cfg.Core.Scheme = scheme
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return Row{}, fmt.Errorf("%s: %w", name, err)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var nsOp, allocsOp float64
	err = w.Run(func(p *mpi.Proc) error {
		buf := p.Mem().MustAlloc(dt.Extent()*int64(count) + 64)
		xfer := func() error {
			if p.Rank() == 0 {
				return p.Send(buf, count, dt, 1, 0)
			}
			_, err := p.Recv(buf, count, dt, 0, 0)
			return err
		}
		for i := 0; i < rndvWarm; i++ {
			if err := xfer(); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		t0, m0 := w.ClockNs(), mallocCount()
		for i := 0; i < rndvIters; i++ {
			if err := xfer(); err != nil {
				return err
			}
		}
		if err := p.Barrier(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			nsOp = float64(w.ClockNs()-t0) / rndvIters
			allocsOp = float64(mallocCount()-m0) / rndvIters
		}
		return nil
	})
	if err != nil {
		return Row{}, fmt.Errorf("%s: %w", name, err)
	}
	return Row{
		Name:        name,
		Kind:        KindVirtual,
		Backend:     backend,
		NsPerOp:     nsOp,
		AllocsPerOp: allocsOp,
	}, nil
}

// Suite runs the full pinned micro-suite and returns the report.
func Suite() (Report, error) {
	var r Report
	r.Rows = append(r.Rows, packRows()...)
	r.Rows = append(r.Rows, descriptorRows()...)
	r.Rows = append(r.Rows, tunerRow())

	// A 256 KiB sparse vector (512 runs of 512 B) is the pinned rendezvous
	// payload: large enough that every scheme takes its real data path,
	// sparse enough that pack/descriptor costs dominate.
	rndvVec := datatype.Must(datatype.TypeVector(512, 128, 256, datatype.Int32))
	schemes := []core.Scheme{
		core.SchemeGeneric, core.SchemeBCSPUP, core.SchemeRWGUP,
		core.SchemePRRS, core.SchemeMultiW,
	}
	for _, s := range schemes {
		row, err := worldRow("rndv/sim/"+s.String(), mpi.BackendSim, s, rndvVec, 1)
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, row)
	}
	// The intra-node fabric prices the same protocol differently; a subset
	// of schemes pins its cost model too.
	for _, s := range []core.Scheme{core.SchemeGeneric, core.SchemeBCSPUP, core.SchemeMultiW} {
		row, err := worldRow("rndv/shm/"+s.String(), mpi.BackendSHM, s, rndvVec, 1)
		if err != nil {
			return r, err
		}
		r.Rows = append(r.Rows, row)
	}
	// Small-message control: the eager path end to end.
	eager := datatype.Must(datatype.TypeContiguous(256, datatype.Int32))
	row, err := worldRow("eager/sim/1k", mpi.BackendSim, core.SchemeAuto, eager, 1)
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows, row)

	r.sortRows()
	return r, nil
}
