// Package perfgate is the repository's performance floor: a pinned
// micro-suite over the warm communication hot path (descriptor building,
// pack/unpack, scheme round-trips, tuner decisions) whose results are
// committed as BENCH_perf.json and compared on every `make check`.
//
// The comparison is benchstat-flavored but deliberately asymmetric in what
// it treats as signal:
//
//   - allocs/op on a zero-alloc row must be exactly zero. These rows pin
//     the tentpole invariant — the warm rndv/scheme path does not allocate —
//     and any nonzero value is a regression regardless of magnitude.
//   - allocs/op on other rows fails only past a tolerance (AllocSlack
//     fractional plus AllocSlackAbs absolute), since whole-world runs
//     include setup noise such as map growth.
//   - ns/op on a virtual-time row (sim/shm backends) fails past NsSlack:
//     virtual clocks are deterministic, so drift there is a real cost-model
//     or scheduling change.
//   - ns/op on a wall-clock row never fails the gate — it is recorded and
//     reported for humans, because CI machines are not comparable.
//
// EXPERIMENTS.md §perf maps the suite's rows onto the paper's Figures 7–9.
package perfgate

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Row kinds: how the ns/op column was measured, which decides whether it
// can fail the gate.
const (
	// KindVirtual marks deterministic virtual-time measurements (sim and
	// shm backends); ns/op regressions are enforced.
	KindVirtual = "virtual"
	// KindWall marks wall-clock measurements; ns/op is advisory only.
	KindWall = "wall"
)

// Comparison tolerances. Exported so the gate's policy is inspectable and
// testable rather than buried in the comparator.
const (
	// NsSlack is the fractional ns/op headroom on virtual rows.
	NsSlack = 0.10
	// AllocSlack is the fractional allocs/op headroom on non-zero-alloc
	// rows.
	AllocSlack = 0.10
	// AllocSlackAbs is the absolute allocs/op headroom on non-zero-alloc
	// rows, so tiny baselines are not failed by one map rehash.
	AllocSlackAbs = 8.0
)

// Row is one pinned measurement of the micro-suite.
type Row struct {
	// Name identifies the measurement ("chunkwrs/vector-4x1024", ...).
	// Comparison matches rows by name.
	Name string `json:"name"`
	// Kind is KindVirtual or KindWall.
	Kind string `json:"kind"`
	// Backend is the mpi backend the row ran on ("sim", "shm"), empty for
	// rows that run below the fabric.
	Backend string `json:"backend,omitempty"`
	// NsPerOp is the per-operation latency in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the average heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// ZeroAlloc pins AllocsPerOp to exactly zero.
	ZeroAlloc bool `json:"zero_alloc,omitempty"`
}

// Report is the committed artifact: the full suite, sorted by row name.
type Report struct {
	Rows []Row `json:"rows"`
}

// sortRows orders the report deterministically for a stable on-disk diff.
func (r *Report) sortRows() {
	sort.Slice(r.Rows, func(i, j int) bool { return r.Rows[i].Name < r.Rows[j].Name })
}

// Load reads a report from path.
func Load(path string) (Report, error) {
	var r Report
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("perfgate: parsing %s: %w", path, err)
	}
	return r, nil
}

// Save writes the report to path, sorted, with a trailing newline.
func (r Report) Save(path string) error {
	r.sortRows()
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Problem is one comparison finding. Fatal problems fail the gate;
// non-fatal ones are advisory (wall-clock drift, new rows).
type Problem struct {
	Row   string
	Fatal bool
	Msg   string
}

// String renders the problem as one gate-output line.
func (p Problem) String() string {
	tag := "note"
	if p.Fatal {
		tag = "FAIL"
	}
	return fmt.Sprintf("%s %s: %s", tag, p.Row, p.Msg)
}

// Compare checks cur against the committed baseline and returns every
// finding, fatal first within the row order. An empty result is a clean
// pass.
func Compare(base, cur Report) []Problem {
	var out []Problem
	baseBy := make(map[string]Row, len(base.Rows))
	for _, r := range base.Rows {
		baseBy[r.Name] = r
	}
	curBy := make(map[string]Row, len(cur.Rows))
	for _, r := range cur.Rows {
		curBy[r.Name] = r
	}
	for _, b := range base.Rows {
		c, ok := curBy[b.Name]
		if !ok {
			out = append(out, Problem{Row: b.Name, Fatal: true,
				Msg: "row missing from current run (suite shrank; run perfgate -update deliberately)"})
			continue
		}
		if b.ZeroAlloc {
			if c.AllocsPerOp != 0 {
				out = append(out, Problem{Row: b.Name, Fatal: true,
					Msg: fmt.Sprintf("zero-alloc row allocates: %.2f allocs/op", c.AllocsPerOp)})
			}
		} else if limit := b.AllocsPerOp*(1+AllocSlack) + AllocSlackAbs; c.AllocsPerOp > limit {
			out = append(out, Problem{Row: b.Name, Fatal: true,
				Msg: fmt.Sprintf("allocs/op %.1f exceeds baseline %.1f (+%d%% +%.0f)",
					c.AllocsPerOp, b.AllocsPerOp, int(AllocSlack*100), AllocSlackAbs)})
		}
		switch b.Kind {
		case KindVirtual:
			if limit := b.NsPerOp * (1 + NsSlack); b.NsPerOp > 0 && c.NsPerOp > limit {
				out = append(out, Problem{Row: b.Name, Fatal: true,
					Msg: fmt.Sprintf("virtual ns/op %.0f exceeds baseline %.0f (+%d%%)",
						c.NsPerOp, b.NsPerOp, int(NsSlack*100))})
			}
		case KindWall:
			if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*2 {
				out = append(out, Problem{Row: b.Name, Fatal: false,
					Msg: fmt.Sprintf("wall ns/op %.0f vs baseline %.0f (advisory; wall clocks are machine-dependent)",
						c.NsPerOp, b.NsPerOp)})
			}
		}
	}
	for _, c := range cur.Rows {
		if _, ok := baseBy[c.Name]; !ok {
			out = append(out, Problem{Row: c.Name, Fatal: false,
				Msg: "new row not in baseline; run perfgate -update to pin it"})
		}
	}
	return out
}

// Fatal reports whether any problem in ps fails the gate.
func Fatal(ps []Problem) bool {
	for _, p := range ps {
		if p.Fatal {
			return true
		}
	}
	return false
}
