// Package fault provides seeded, deterministic fault injection for the
// simulated fabric and registration layers.
//
// An Injector draws from its own rand source under a mutex. On the
// single-threaded simulator backend draws happen in event order, so the same
// seed always produces the same fault pattern — fault runs are as
// reproducible as fault-free ones. On the real-time backend the draw order
// depends on goroutine interleaving, so a seed fixes the marginal rates but
// not which operation receives which fault. Injected faults are classified transient (the operation
// may be retried) or permanent (the operation has failed for good), matching
// the taxonomy hardware verbs expose as retry-exceeded vs. fatal work
// completions.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/simtime"
)

// Config sets per-operation fault probabilities. All rates are in [0, 1];
// the zero value injects nothing.
type Config struct {
	// Seed initializes the injector's random source.
	Seed int64

	// PostFailRate is the probability that posting an RDMA descriptor fails
	// at the verbs boundary (ibv_post_send returning an error).
	PostFailRate float64

	// CQEErrorRate is the probability that a posted RDMA operation completes
	// with an error CQE instead of transferring any data.
	CQEErrorRate float64

	// RegFailRate is the probability that a real memory registration (a
	// pin-down cache miss) fails.
	RegFailRate float64

	// DelayRate is the probability that a successful RDMA completion is
	// delivered late, by a uniform extra delay up to MaxDelay.
	DelayRate float64
	MaxDelay  simtime.Duration

	// PermanentRate is, given an injected fault, the probability that the
	// fault is permanent rather than transient.
	PermanentRate float64
}

// Error is an injected fault. Transient errors may be retried; permanent
// ones must fail the operation.
type Error struct {
	Op        string // "post", "cqe", or "reg"
	Transient bool
}

func (e *Error) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("injected %s %s fault", kind, e.Op)
}

// IsTransient reports whether err is (or wraps) a transient injected fault.
func IsTransient(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Transient
}

// IsInjected reports whether err is (or wraps) any injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Stats counts what the injector has done.
type Stats struct {
	PostFaults int64
	CQEFaults  int64
	RegFaults  int64
	Delays     int64
	Permanent  int64
}

// Total returns the number of injected faults (delays excluded).
func (s Stats) Total() int64 { return s.PostFaults + s.CQEFaults + s.RegFaults }

// Injector draws faults from a seeded source. It is safe for concurrent use
// by the real-time fabric's node goroutines.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// New creates an injector for the given configuration.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns a snapshot of the injection counts.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

func (in *Injector) draw(rate float64, op string, count func(*Stats) *int64) error {
	if rate <= 0 {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= rate {
		return nil
	}
	*count(&in.stats)++
	transient := true
	if in.cfg.PermanentRate > 0 && in.rng.Float64() < in.cfg.PermanentRate {
		transient = false
		in.stats.Permanent++
	}
	return &Error{Op: op, Transient: transient}
}

// PostFault samples a descriptor-post failure; nil means the post proceeds.
func (in *Injector) PostFault() error {
	return in.draw(in.cfg.PostFailRate, "post", func(s *Stats) *int64 { return &s.PostFaults })
}

// CQEFault samples an error completion for a launched RDMA operation; nil
// means the operation transfers normally.
func (in *Injector) CQEFault() error {
	return in.draw(in.cfg.CQEErrorRate, "cqe", func(s *Stats) *int64 { return &s.CQEFaults })
}

// RegFault samples a registration failure; nil means the registration
// proceeds.
func (in *Injector) RegFault() error {
	return in.draw(in.cfg.RegFailRate, "reg", func(s *Stats) *int64 { return &s.RegFaults })
}

// Delay samples extra completion latency (zero most of the time).
func (in *Injector) Delay() simtime.Duration {
	if in.cfg.DelayRate <= 0 || in.cfg.MaxDelay <= 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() >= in.cfg.DelayRate {
		return 0
	}
	in.stats.Delays++
	return simtime.Duration(in.rng.Int63n(int64(in.cfg.MaxDelay)) + 1)
}
