package fault

import (
	"sync"
	"testing"

	"repro/internal/simtime"
)

// The injector is shared by every node goroutine on the real-time backend;
// concurrent draws must be safe and the stats must account every fault
// exactly once. Run with -race.
func TestInjectorConcurrent(t *testing.T) {
	in := New(Config{
		Seed:          7,
		PostFailRate:  0.5,
		CQEErrorRate:  0.5,
		RegFailRate:   0.5,
		DelayRate:     0.5,
		MaxDelay:      100 * simtime.Nanosecond,
		PermanentRate: 0.25,
	})

	const workers = 8
	const perWorker = 1000
	faults := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := in.PostFault(); err != nil {
					faults[w]++
				}
				if err := in.CQEFault(); err != nil {
					faults[w]++
				}
				if err := in.RegFault(); err != nil {
					faults[w]++
				}
				_ = in.Delay()
				_ = in.Stats()
			}
		}(w)
	}
	wg.Wait()

	var seen int64
	for _, n := range faults {
		seen += n
	}
	st := in.Stats()
	if st.Total() != seen {
		t.Fatalf("stats count %d faults, callers saw %d", st.Total(), seen)
	}
	if st.PostFaults == 0 || st.CQEFaults == 0 || st.RegFaults == 0 || st.Delays == 0 {
		t.Fatalf("expected every fault kind at 50%% rates, got %+v", st)
	}
	if st.Permanent == 0 {
		t.Fatalf("expected some permanent faults at 25%% rate, got %+v", st)
	}
}
