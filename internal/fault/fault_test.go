package fault

import (
	"fmt"
	"testing"

	"repro/internal/simtime"
)

// Same seed, same draw sequence: fault runs must be as reproducible as
// fault-free ones.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{
		Seed:         42,
		PostFailRate: 0.3, CQEErrorRate: 0.3, RegFailRate: 0.3,
		DelayRate: 0.5, MaxDelay: 10 * simtime.Microsecond,
		PermanentRate: 0.2,
	}
	trace := func() string {
		in := New(cfg)
		s := ""
		for i := 0; i < 200; i++ {
			s += fmt.Sprintf("%v|%v|%v|%v;", in.PostFault(), in.CQEFault(), in.RegFault(), in.Delay())
		}
		return s
	}
	if a, b := trace(), trace(); a != b {
		t.Fatal("same seed produced different fault sequences")
	}
}

func TestClassification(t *testing.T) {
	tr := &Error{Op: "cqe", Transient: true}
	pe := &Error{Op: "post", Transient: false}
	if !IsTransient(tr) || IsTransient(pe) {
		t.Fatal("transient classification wrong")
	}
	wrapped := fmt.Errorf("qp3: %w", tr)
	if !IsTransient(wrapped) || !IsInjected(wrapped) {
		t.Fatal("classification must survive wrapping")
	}
	if IsInjected(fmt.Errorf("ordinary error")) {
		t.Fatal("ordinary error reported as injected")
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	in := New(Config{Seed: 7, CQEErrorRate: 1, PermanentRate: 1})
	for i := 0; i < 10; i++ {
		err := in.CQEFault()
		if err == nil || IsTransient(err) {
			t.Fatal("rate-1 permanent CQE fault not injected")
		}
	}
	if in.Stats().CQEFaults != 10 || in.Stats().Permanent != 10 {
		t.Fatalf("stats mismatch: %+v", in.Stats())
	}
	quiet := New(Config{Seed: 7})
	if quiet.PostFault() != nil || quiet.CQEFault() != nil || quiet.RegFault() != nil || quiet.Delay() != 0 {
		t.Fatal("zero config injected a fault")
	}
}
