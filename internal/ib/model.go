// Package ib is a software InfiniBand: a Verbs-style interface (queue pairs,
// completion queues, send/receive channel semantics, RDMA read/write memory
// semantics with gather/scatter and immediate data) over a deterministic
// discrete-event fabric. It is the simulator implementation of the
// backend-neutral contract in internal/verbs; internal/rtfab is the
// real-time concurrent implementation.
//
// Payload bytes are really copied between the simulated nodes' memories, so
// protocol bugs corrupt data and fail tests; timing comes from a calibrated
// cost model (Model) so benchmarks reproduce the *shape* of results measured
// on the paper's Mellanox InfiniHost testbed. Each node has one host CPU
// resource (the MPI library's processing) and one send and one receive port
// on its HCA; contention on those three resources is what creates — or
// destroys — the overlap the paper's schemes exploit.
package ib

import "repro/internal/verbs"

// Model aliases the backend-neutral cost model in internal/verbs; the
// parameter set and the cost functions live there so both backends (and the
// protocol layers) share one definition.
type Model = verbs.Model

// DefaultModel returns the calibrated testbed parameters. See DESIGN.md §5.
func DefaultModel() Model { return verbs.DefaultModel() }
