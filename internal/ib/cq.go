package ib

import "repro/internal/simtime"

// Opcode identifies the operation a work request or completion refers to.
type Opcode int

// Work-request opcodes.
const (
	OpSend Opcode = iota
	OpRDMAWrite
	OpRDMAWriteImm
	OpRDMARead
	OpRecv // completion-side only
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRDMAWrite:
		return "RDMA_WRITE"
	case OpRDMAWriteImm:
		return "RDMA_WRITE_IMM"
	case OpRDMARead:
		return "RDMA_READ"
	case OpRecv:
		return "RECV"
	}
	return "UNKNOWN"
}

// CQE is a completion queue entry.
type CQE struct {
	QP     *QP    // the queue pair the completion belongss to
	WRID   uint64 // the work request's ID
	Op     Opcode
	Bytes  int64 // payload length
	Imm    uint32
	HasImm bool
	Err    error // nil on success

	// Data carries the payload of a channel-semantics (OpSend) message on
	// the receive side, modeling the pre-registered internal receive buffer
	// it would land in on hardware. Nil for RDMA completions.
	Data []byte
}

// CQ is a completion queue. A CQ either queues entries for polling
// (Poll/WaitPoll) or dispatches them to a handler; protocol engines use the
// handler form so completion processing charges the host CPU and serializes
// with other host work.
type CQ struct {
	hca     *HCA
	queue   []CQE
	handler func(CQE)
	sig     simtime.Signal
}

// NewCQ creates a completion queue on an HCA.
func NewCQ(h *HCA) *CQ { return &CQ{hca: h} }

// SetHandler switches the CQ to handler dispatch. Each entry is delivered in
// its own event after reserving CompletionCost on the node's CPU. Must be set
// before any completion arrives.
func (cq *CQ) SetHandler(fn func(CQE)) {
	if len(cq.queue) > 0 {
		panic("ib: SetHandler on non-empty CQ")
	}
	cq.handler = fn
}

// push delivers a completion at the current virtual time.
func (cq *CQ) push(e CQE) {
	cq.hca.counters.Completions++
	if cq.handler != nil {
		eng := cq.hca.Engine()
		end := cq.hca.ChargeCPUNamed(cq.hca.Model().CompletionCost, "cqe")
		eng.At(end, func() { cq.handler(e) })
		return
	}
	cq.queue = append(cq.queue, e)
	cq.sig.Broadcast()
}

// Poll removes and returns the oldest completion, if any.
func (cq *CQ) Poll() (CQE, bool) {
	if len(cq.queue) == 0 {
		return CQE{}, false
	}
	e := cq.queue[0]
	cq.queue = cq.queue[1:]
	return e, true
}

// WaitPoll blocks the process until a completion is available, then returns
// it, charging the completion-handling CPU cost.
func (cq *CQ) WaitPoll(p *simtime.Process) CQE {
	for len(cq.queue) == 0 {
		p.Wait(&cq.sig)
	}
	e := cq.queue[0]
	cq.queue = cq.queue[1:]
	end := cq.hca.ChargeCPU(cq.hca.Model().CompletionCost)
	p.WaitUntil(end)
	return e
}

// Len reports the number of queued completions (always 0 in handler mode).
func (cq *CQ) Len() int { return len(cq.queue) }
