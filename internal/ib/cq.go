package ib

import (
	"sync/atomic"

	"repro/internal/simtime"
	"repro/internal/verbs"
)

// Opcode, the opcode constants, and CQE alias the backend-neutral
// definitions in internal/verbs.
type Opcode = verbs.Opcode

// Work-request opcodes.
const (
	OpSend         = verbs.OpSend
	OpRDMAWrite    = verbs.OpRDMAWrite
	OpRDMAWriteImm = verbs.OpRDMAWriteImm
	OpRDMARead     = verbs.OpRDMARead
	OpRecv         = verbs.OpRecv // completion-side only
)

// CQE is a completion queue entry.
type CQE = verbs.CQE

// CQ is a completion queue. A CQ either queues entries for polling
// (Poll/WaitPoll) or dispatches them to a handler; protocol engines use the
// handler form so completion processing charges the host CPU and serializes
// with other host work.
type CQ struct {
	hca     *HCA
	queue   []CQE
	handler func(CQE)
	sig     simtime.Signal
}

// NewCQ creates a completion queue on an HCA.
func NewCQ(h *HCA) *CQ { return &CQ{hca: h} }

// SetHandler switches the CQ to handler dispatch. Each entry is delivered in
// its own event after reserving CompletionCost on the node's CPU. Must be set
// before any completion arrives.
func (cq *CQ) SetHandler(fn func(CQE)) {
	if len(cq.queue) > 0 {
		panic("ib: SetHandler on non-empty CQ")
	}
	cq.handler = fn
}

// push delivers a completion at the current virtual time.
func (cq *CQ) push(e CQE) {
	atomic.AddInt64(&cq.hca.counters.Completions, 1)
	if cq.handler != nil {
		eng := cq.hca.Engine()
		end := cq.hca.ChargeCPUNamed(cq.hca.Model().CompletionCost, "cqe")
		eng.At(end, func() { cq.handler(e) })
		return
	}
	cq.queue = append(cq.queue, e)
	cq.sig.Broadcast()
}

// Poll removes and returns the oldest completion, if any.
func (cq *CQ) Poll() (CQE, bool) {
	if len(cq.queue) == 0 {
		return CQE{}, false
	}
	e := cq.queue[0]
	cq.queue = cq.queue[1:]
	return e, true
}

// WaitPoll blocks the process until a completion is available, then returns
// it, charging the completion-handling CPU cost.
func (cq *CQ) WaitPoll(p *simtime.Process) CQE {
	for len(cq.queue) == 0 {
		p.Wait(&cq.sig)
	}
	e := cq.queue[0]
	cq.queue = cq.queue[1:]
	end := cq.hca.ChargeCPU(cq.hca.Model().CompletionCost)
	p.WaitUntil(end)
	return e
}

// Len reports the number of queued completions (always 0 in handler mode).
func (cq *CQ) Len() int { return len(cq.queue) }
