package ib

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/simtime"
	"repro/internal/stats"
)

type pair struct {
	eng    *simtime.Engine
	fab    *Fabric
	a, b   *HCA
	qa, qb *QP
	aSend  *CQ
	aRecv  *CQ
	bSend  *CQ
	bRecv  *CQ
	ca, cb *stats.Counters
	memA   *mem.Memory
	memB   *mem.Memory
}

func newPair(t *testing.T, model Model) *pair {
	t.Helper()
	eng := simtime.NewEngine()
	fab := NewFabric(eng, model)
	ca, cb := &stats.Counters{}, &stats.Counters{}
	memA := mem.NewMemory("a", 1<<22)
	memB := mem.NewMemory("b", 1<<22)
	a := fab.AddHCA("a", memA, ca)
	b := fab.AddHCA("b", memB, cb)
	p := &pair{
		eng: eng, fab: fab, a: a, b: b,
		aSend: NewCQ(a), aRecv: NewCQ(a),
		bSend: NewCQ(b), bRecv: NewCQ(b),
		ca: ca, cb: cb, memA: memA, memB: memB,
	}
	p.qa, p.qb = Connect(a, b, p.aSend, p.aRecv, p.bSend, p.bRecv)
	return p
}

func TestChannelSend(t *testing.T) {
	p := newPair(t, DefaultModel())
	payload := []byte("hello derived datatypes")
	p.qb.PostRecv(RecvWR{WRID: 7})
	if err := p.qa.PostSend(SendWR{WRID: 1, Op: OpSend, Inline: payload, Imm: 42}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	se, ok := p.aSend.Poll()
	if !ok || se.WRID != 1 || se.Err != nil {
		t.Fatalf("send completion = %+v ok=%v", se, ok)
	}
	re, ok := p.bRecv.Poll()
	if !ok || re.WRID != 7 || re.Err != nil {
		t.Fatalf("recv completion = %+v ok=%v", re, ok)
	}
	if !bytes.Equal(re.Data, payload) {
		t.Fatalf("payload = %q, want %q", re.Data, payload)
	}
	if re.Imm != 42 || !re.HasImm {
		t.Fatalf("imm = %d hasImm=%v", re.Imm, re.HasImm)
	}
	if re.Bytes != int64(len(payload)) {
		t.Fatalf("bytes = %d", re.Bytes)
	}
}

func TestSendStallsWithoutRecvCredit(t *testing.T) {
	p := newPair(t, DefaultModel())
	if err := p.qa.PostSend(SendWR{WRID: 1, Op: OpSend, Inline: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.bRecv.Poll(); ok {
		t.Fatal("completion generated without a receive credit")
	}
	// Posting the credit later releases the stalled arrival.
	p.qb.PostRecv(RecvWR{WRID: 9})
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	re, ok := p.bRecv.Poll()
	if !ok || re.WRID != 9 {
		t.Fatalf("stalled arrival not delivered: %+v ok=%v", re, ok)
	}
}

func TestRDMAWrite(t *testing.T) {
	p := newPair(t, DefaultModel())
	src := p.memA.MustAlloc(4096)
	dst := p.memB.MustAlloc(4096)
	srcReg, err := p.memA.Reg().Register(src, 4096)
	if err != nil {
		t.Fatal(err)
	}
	dstReg, err := p.memB.Reg().Register(dst, 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := p.memA.Bytes(src, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	err = p.qa.PostSend(SendWR{
		WRID: 3, Op: OpRDMAWrite,
		SGL:        []SGE{{Addr: src, Len: 4096, Key: srcReg.LKey}},
		RemoteAddr: dst, RKey: dstReg.RKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	se, ok := p.aSend.Poll()
	if !ok || se.Err != nil {
		t.Fatalf("send completion: %+v ok=%v", se, ok)
	}
	if !bytes.Equal(p.memB.Bytes(dst, 4096), data) {
		t.Fatal("RDMA write data mismatch")
	}
	// Plain RDMA write must not generate a receive-side completion.
	if _, ok := p.bRecv.Poll(); ok {
		t.Fatal("plain RDMA write consumed a receive credit")
	}
}

func TestRDMAWriteGather(t *testing.T) {
	p := newPair(t, DefaultModel())
	// Three disjoint source blocks gathered into one contiguous remote write.
	blocks := make([]SGE, 3)
	var want []byte
	for i := range blocks {
		a := p.memA.MustAlloc(256)
		r, err := p.memA.Reg().Register(a, 256)
		if err != nil {
			t.Fatal(err)
		}
		bs := p.memA.Bytes(a, 256)
		for j := range bs {
			bs[j] = byte(i*100 + j)
		}
		want = append(want, bs...)
		blocks[i] = SGE{Addr: a, Len: 256, Key: r.LKey}
	}
	dst := p.memB.MustAlloc(768)
	dstReg, _ := p.memB.Reg().Register(dst, 768)
	p.qb.PostRecv(RecvWR{WRID: 11})
	err := p.qa.PostSend(SendWR{
		WRID: 4, Op: OpRDMAWriteImm, SGL: blocks,
		RemoteAddr: dst, RKey: dstReg.RKey, Imm: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.memB.Bytes(dst, 768), want) {
		t.Fatal("gathered write mismatch")
	}
	re, ok := p.bRecv.Poll()
	if !ok || re.Imm != 99 || !re.HasImm || re.Bytes != 768 {
		t.Fatalf("immediate completion = %+v ok=%v", re, ok)
	}
}

func TestRDMAWriteUnregisteredTargetFails(t *testing.T) {
	p := newPair(t, DefaultModel())
	src := p.memA.MustAlloc(128)
	srcReg, _ := p.memA.Reg().Register(src, 128)
	dst := p.memB.MustAlloc(128) // never registered
	err := p.qa.PostSend(SendWR{
		WRID: 5, Op: OpRDMAWrite,
		SGL:        []SGE{{Addr: src, Len: 128, Key: srcReg.LKey}},
		RemoteAddr: dst, RKey: 12345,
	})
	if err != nil {
		t.Fatal(err) // post succeeds; the failure is remote
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	se, ok := p.aSend.Poll()
	if !ok || se.Err == nil {
		t.Fatalf("expected remote access error, got %+v ok=%v", se, ok)
	}
}

func TestRDMAWriteUnregisteredSourceRejectedAtPost(t *testing.T) {
	p := newPair(t, DefaultModel())
	src := p.memA.MustAlloc(128) // not registered
	dst := p.memB.MustAlloc(128)
	dstReg, _ := p.memB.Reg().Register(dst, 128)
	err := p.qa.PostSend(SendWR{
		Op:         OpRDMAWrite,
		SGL:        []SGE{{Addr: src, Len: 128, Key: 777}},
		RemoteAddr: dst, RKey: dstReg.RKey,
	})
	if err == nil {
		t.Fatal("post with bad lkey accepted")
	}
}

func TestRDMAReadScatter(t *testing.T) {
	p := newPair(t, DefaultModel())
	// Remote contiguous source on b, scattered into three local blocks on a.
	src := p.memB.MustAlloc(768)
	srcReg, _ := p.memB.Reg().Register(src, 768)
	want := p.memB.Bytes(src, 768)
	for i := range want {
		want[i] = byte(255 - i%251)
	}
	sgl := make([]SGE, 3)
	for i := range sgl {
		a := p.memA.MustAlloc(256)
		r, _ := p.memA.Reg().Register(a, 256)
		sgl[i] = SGE{Addr: a, Len: 256, Key: r.LKey}
	}
	err := p.qa.PostSend(SendWR{
		WRID: 6, Op: OpRDMARead, SGL: sgl,
		RemoteAddr: src, RKey: srcReg.RKey,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	se, ok := p.aSend.Poll()
	if !ok || se.Err != nil || se.Bytes != 768 {
		t.Fatalf("read completion = %+v ok=%v", se, ok)
	}
	var got []byte
	for _, s := range sgl {
		got = append(got, p.memA.Bytes(s.Addr, s.Len)...)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("scattered read mismatch")
	}
}

func TestReadSlowerThanWrite(t *testing.T) {
	model := DefaultModel()
	measure := func(op Opcode) simtime.Time {
		p := newPair(t, model)
		src := p.memA.MustAlloc(8192)
		srcReg, _ := p.memA.Reg().Register(src, 8192)
		dst := p.memB.MustAlloc(8192)
		dstReg, _ := p.memB.Reg().Register(dst, 8192)
		var done simtime.Time
		p.aSend.SetHandler(func(e CQE) { done = p.eng.Now() })
		wr := SendWR{Op: op, SGL: []SGE{{Addr: src, Len: 8192, Key: srcReg.LKey}},
			RemoteAddr: dst, RKey: dstReg.RKey}
		if err := p.qa.PostSend(wr); err != nil {
			t.Fatal(err)
		}
		if err := p.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	w := measure(OpRDMAWrite)
	r := measure(OpRDMARead)
	if r <= w {
		t.Fatalf("RDMA read (%v) should be slower than write (%v)", r, w)
	}
}

func TestListPostCheaperThanSinglePosts(t *testing.T) {
	model := DefaultModel()
	run := func(list bool) simtime.Duration {
		p := newPair(t, model)
		// Small blocks: descriptor-post CPU cost dominates wire time, which
		// is the regime where the paper's list post matters (Fig. 13).
		n := 32
		wrs := make([]SendWR, n)
		for i := range wrs {
			src := p.memA.MustAlloc(128)
			srcReg, _ := p.memA.Reg().Register(src, 128)
			dst := p.memB.MustAlloc(128)
			dstReg, _ := p.memB.Reg().Register(dst, 128)
			wrs[i] = SendWR{WRID: uint64(i), Op: OpRDMAWrite,
				SGL:        []SGE{{Addr: src, Len: 128, Key: srcReg.LKey}},
				RemoteAddr: dst, RKey: dstReg.RKey}
		}
		var last simtime.Time
		p.aSend.SetHandler(func(e CQE) {
			if e.Err != nil {
				t.Fatal(e.Err)
			}
			last = p.eng.Now()
		})
		var err error
		if list {
			err = p.qa.PostSendList(wrs)
		} else {
			for _, wr := range wrs {
				if e := p.qa.PostSend(wr); e != nil {
					err = e
					break
				}
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := p.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return last.Sub(0)
	}
	single := run(false)
	listed := run(true)
	if listed >= single {
		t.Fatalf("list post (%v) should beat single posts (%v)", listed, single)
	}
}

func TestInOrderDelivery(t *testing.T) {
	p := newPair(t, DefaultModel())
	const n = 20
	for i := 0; i < n; i++ {
		p.qb.PostRecv(RecvWR{WRID: uint64(i)})
	}
	for i := 0; i < n; i++ {
		if err := p.qa.PostSend(SendWR{WRID: uint64(i), Op: OpSend,
			Inline: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		e, ok := p.bRecv.Poll()
		if !ok {
			t.Fatalf("missing completion %d", i)
		}
		if e.WRID != uint64(i) || e.Data[0] != byte(i) {
			t.Fatalf("out of order: completion %d got WRID %d data %d", i, e.WRID, e.Data[0])
		}
	}
}

func TestBandwidthScalesWithModel(t *testing.T) {
	// Halving the link bandwidth should roughly double large-transfer time.
	run := func(gbps float64) simtime.Duration {
		model := DefaultModel()
		model.LinkGBps = gbps
		p := newPair(t, model)
		size := int64(1 << 20)
		src := p.memA.MustAlloc(size)
		srcReg, _ := p.memA.Reg().Register(src, size)
		dst := p.memB.MustAlloc(size)
		dstReg, _ := p.memB.Reg().Register(dst, size)
		var done simtime.Time
		p.aSend.SetHandler(func(e CQE) { done = p.eng.Now() })
		p.qa.PostSend(SendWR{Op: OpRDMAWrite,
			SGL:        []SGE{{Addr: src, Len: size, Key: srcReg.LKey}},
			RemoteAddr: dst, RKey: dstReg.RKey})
		p.eng.Run()
		return done.Sub(0)
	}
	fast := run(1.0)
	slow := run(0.5)
	ratio := float64(slow) / float64(fast)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("bandwidth scaling ratio = %.2f, want ~2.0", ratio)
	}
}

func TestCountersTrackPosts(t *testing.T) {
	p := newPair(t, DefaultModel())
	p.qb.PostRecv(RecvWR{})
	p.qa.PostSend(SendWR{Op: OpSend, Inline: []byte("hi")})
	src := p.memA.MustAlloc(64)
	srcReg, _ := p.memA.Reg().Register(src, 64)
	dst := p.memB.MustAlloc(64)
	dstReg, _ := p.memB.Reg().Register(dst, 64)
	p.qa.PostSend(SendWR{Op: OpRDMAWrite,
		SGL:        []SGE{{Addr: src, Len: 64, Key: srcReg.LKey}},
		RemoteAddr: dst, RKey: dstReg.RKey})
	p.eng.Run()
	if p.ca.SendsPosted != 1 || p.ca.RDMAWritesPosted != 1 || p.ca.DescriptorsPosted != 2 {
		t.Fatalf("counters = %+v", p.ca)
	}
	if p.cb.RecvsPosted != 1 {
		t.Fatalf("recv counters = %+v", p.cb)
	}
}

func TestCQHandlerSerializesOnCPU(t *testing.T) {
	// Two completions arriving near-simultaneously must be handled
	// back-to-back on the CPU, not at the same instant.
	model := DefaultModel()
	p := newPair(t, model)
	var times []simtime.Time
	p.bRecv.SetHandler(func(e CQE) { times = append(times, p.eng.Now()) })
	p.qb.PostRecv(RecvWR{})
	p.qb.PostRecv(RecvWR{})
	p.qa.PostSend(SendWR{Op: OpSend, Inline: []byte("a")})
	p.qa.PostSend(SendWR{Op: OpSend, Inline: []byte("b")})
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("handled %d completions, want 2", len(times))
	}
	if times[1].Sub(times[0]) < model.CompletionCost {
		t.Fatalf("handlers not CPU-serialized: %v then %v", times[0], times[1])
	}
}

func TestWaitPoll(t *testing.T) {
	p := newPair(t, DefaultModel())
	got := make(chan CQE, 1)
	p.eng.Spawn("receiver", func(proc *simtime.Process) {
		e := p.bRecv.WaitPoll(proc)
		got <- e
	})
	p.eng.Spawn("sender", func(proc *simtime.Process) {
		proc.Sleep(10 * simtime.Microsecond)
		p.qb.PostRecv(RecvWR{WRID: 1})
		p.qa.PostSend(SendWR{Op: OpSend, Inline: []byte("later")})
	})
	if err := p.eng.Run(); err != nil {
		t.Fatal(err)
	}
	e := <-got
	if string(e.Data) != "later" {
		t.Fatalf("data = %q", e.Data)
	}
}

func TestModelCostFunctions(t *testing.T) {
	m := DefaultModel()
	if m.WireTime(0) != 0 || m.WireTime(-5) != 0 {
		t.Fatal("empty wire time not zero")
	}
	// 860 bytes at 0.86 GB/s = 1000 ns.
	if got := m.WireTime(860); got != 1000*simtime.Nanosecond {
		t.Fatalf("WireTime(860) = %v", got)
	}
	if m.CopyTime(750, 1) != simtime.Duration(1000)+m.CopyBlockStartup {
		t.Fatalf("CopyTime = %v", m.CopyTime(750, 1))
	}
	// Per-run startup accumulates.
	if m.CopyTime(750, 10)-m.CopyTime(750, 1) != 9*m.CopyBlockStartup {
		t.Fatal("per-run startup wrong")
	}
	// List post: first descriptor full price, later ones cheaper.
	if m.PostTime(0, 0, true) != m.PostCost {
		t.Fatal("first list entry should cost PostCost")
	}
	if m.PostTime(3, 0, true) != m.ListPostEntry {
		t.Fatal("later list entries should cost ListPostEntry")
	}
	if m.PostTime(3, 0, false) != m.PostCost {
		t.Fatal("single posts always cost PostCost")
	}
	if m.PostTime(0, 4, false) != m.PostCost+4*m.SGEPost {
		t.Fatal("per-SGE post cost wrong")
	}
	// Registration and malloc scale with pages.
	if m.RegTime(10)-m.RegTime(0) != 10*m.RegPerPage {
		t.Fatal("RegTime per-page wrong")
	}
	if m.MallocTime(mem.PageSize+1)-m.MallocTime(1) != m.MallocPerPage {
		t.Fatal("MallocTime page rounding wrong")
	}
	var ops mem.RegOps
	ops.Registrations = 2
	ops.RegisteredPages = 10
	ops.Dereg = 1
	ops.DeregPages = 5
	want := 2*m.RegBase + 10*m.RegPerPage + m.DeregBase + 5*m.DeregPerPage
	if m.RegOpsTime(ops) != want {
		t.Fatalf("RegOpsTime = %v, want %v", m.RegOpsTime(ops), want)
	}
}
