package ib

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// Fabric is the switched interconnect: a full crossbar (like the paper's
// InfiniScale switch) where the only contention points are each HCA's send
// and receive ports.
type Fabric struct {
	eng      *simtime.Engine
	model    Model
	hcas     []*HCA
	tracer   *trace.Recorder
	injector *fault.Injector
}

// SetTracer attaches an activity recorder; all nodes' CPU and port intervals
// are recorded into it. Pass nil to disable (the default).
func (f *Fabric) SetTracer(r *trace.Recorder) { f.tracer = r }

// SetInjector attaches a fault injector to the fabric. Injection covers RDMA
// descriptors (post failures, error completions, delayed completions) on
// every HCA; channel-semantics sends are exempt so control traffic keeps the
// transport's reliable ordering. Pass nil to disable (the default).
func (f *Fabric) SetInjector(in *fault.Injector) { f.injector = in }

// Injector returns the attached fault injector, or nil.
func (f *Fabric) Injector() *fault.Injector { return f.injector }

// NewFabric creates a fabric on the given engine with the given cost model.
func NewFabric(eng *simtime.Engine, model Model) *Fabric {
	if model.MaxSGE <= 0 {
		model.MaxSGE = 1
	}
	return &Fabric{eng: eng, model: model}
}

// Engine returns the simulation engine.
func (f *Fabric) Engine() *simtime.Engine { return f.eng }

// Model returns the fabric's cost model.
func (f *Fabric) Model() *Model { return &f.model }

// HCA is one node's host channel adapter together with the node-side
// resources the simulation accounts for: the host CPU that runs the MPI
// library, and the adapter's send and receive ports.
type HCA struct {
	fab      *Fabric
	idx      int
	name     string
	mem      *mem.Memory
	cpu      *simtime.Resource
	sendPort *simtime.Resource
	recvPort *simtime.Resource
	counters *stats.Counters
	nextQP   int
	nextWRID uint64
}

// AddHCA attaches a node to the fabric. counters may be nil.
func (f *Fabric) AddHCA(name string, memory *mem.Memory, counters *stats.Counters) *HCA {
	if counters == nil {
		counters = &stats.Counters{}
	}
	h := &HCA{
		fab:      f,
		idx:      len(f.hcas),
		name:     name,
		mem:      memory,
		cpu:      simtime.NewResource(name + ".cpu"),
		sendPort: simtime.NewResource(name + ".tx"),
		recvPort: simtime.NewResource(name + ".rx"),
		counters: counters,
	}
	f.hcas = append(f.hcas, h)
	return h
}

// Name returns the node name.
func (h *HCA) Name() string { return h.name }

// Index returns the HCA's position in the fabric.
func (h *HCA) Index() int { return h.idx }

// Mem returns the node's memory.
func (h *HCA) Mem() *mem.Memory { return h.mem }

// CPU returns the node's host CPU resource. Protocol layers reserve it for
// packing, unpacking, registration and posting work.
func (h *HCA) CPU() *simtime.Resource { return h.cpu }

// Counters returns the node's statistics counters.
func (h *HCA) Counters() *stats.Counters { return h.counters }

// Model returns the fabric cost model.
func (h *HCA) Model() *Model { return &h.fab.model }

// Injector returns the fabric's fault injector, or nil when fault injection
// is off.
func (h *HCA) Injector() *fault.Injector { return h.fab.injector }

// Engine returns the simulation engine.
func (h *HCA) Engine() *simtime.Engine { return h.fab.eng }

// WRID returns a fresh work-request ID, unique per HCA.
func (h *HCA) WRID() uint64 {
	h.nextWRID++
	return h.nextWRID
}

// ChargeCPU reserves the host CPU for d starting no earlier than now and
// returns the time the work finishes. Use it for host-side protocol costs
// (packing, registration) that must serialize with posting and completion
// handling.
func (h *HCA) ChargeCPU(d simtime.Duration) simtime.Time {
	return h.ChargeCPUNamed(d, "host")
}

// ChargeCPUNamed is ChargeCPU with an activity label for the tracer.
func (h *HCA) ChargeCPUNamed(d simtime.Duration, name string) simtime.Time {
	start, end := h.cpu.Acquire(h.fab.eng.Now(), d)
	h.fab.tracer.Add(h.name, trace.LaneCPU, name, start, end)
	return end
}

// traceLane records a port interval when tracing is enabled.
func (h *HCA) traceLane(lane trace.Lane, name string, start, end simtime.Time) {
	h.fab.tracer.Add(h.name, lane, name, start, end)
}

// NewCQ creates a completion queue on this HCA (verbs.HCA).
func (h *HCA) NewCQ() verbs.CQ { return NewCQ(h) }

// Connect implements verbs.HCA: it creates a connected (RC) queue pair
// between this HCA and peer, which must be an ib.HCA on the same fabric.
func (h *HCA) Connect(peer verbs.HCA, sendCQ, recvCQ, peerSendCQ, peerRecvCQ verbs.CQ) (verbs.QP, verbs.QP) {
	p, ok := peer.(*HCA)
	if !ok {
		panic("ib: Connect to a non-simulator HCA")
	}
	return Connect(h, p, sendCQ.(*CQ), recvCQ.(*CQ), peerSendCQ.(*CQ), peerRecvCQ.(*CQ))
}

// Compile-time checks that the simulator satisfies the verbs contract.
var (
	_ verbs.HCA = (*HCA)(nil)
	_ verbs.QP  = (*QP)(nil)
	_ verbs.CQ  = (*CQ)(nil)
)

// Connect creates a connected (RC) queue pair between two HCAs. Each side
// gets its own QP whose send and receive completions are delivered to the
// given CQs. A CQ may be shared among QPs.
func Connect(a, b *HCA, aSendCQ, aRecvCQ, bSendCQ, bRecvCQ *CQ) (*QP, *QP) {
	if a.fab != b.fab {
		panic("ib: Connect across fabrics")
	}
	qa := &QP{hca: a, num: a.nextQP, sendCQ: aSendCQ, recvCQ: aRecvCQ}
	a.nextQP++
	qb := &QP{hca: b, num: b.nextQP, sendCQ: bSendCQ, recvCQ: bRecvCQ}
	b.nextQP++
	qa.peer, qb.peer = qb, qa
	return qa, qb
}

// validateSGL checks every SGE against the local registration table and
// returns the total byte length.
func validateSGL(h *HCA, sgl []SGE) (int64, error) {
	var total int64
	for _, s := range sgl {
		if s.Len < 0 {
			return 0, fmt.Errorf("ib %s: negative SGE length", h.name)
		}
		if s.Len == 0 {
			continue
		}
		if err := h.mem.Reg().CheckAccess(s.Key, s.Addr, s.Len); err != nil {
			return 0, err
		}
		total += s.Len
	}
	return total, nil
}
