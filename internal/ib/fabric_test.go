package ib

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Two senders targeting one receiver must serialize on its receive port:
// the combined completion time is ~the sum of both transfers' wire times,
// not their max.
func TestReceivePortContention(t *testing.T) {
	model := DefaultModel()
	eng := simtime.NewEngine()
	fab := NewFabric(eng, model)
	var hcas []*HCA
	var mems []*mem.Memory
	for i := 0; i < 3; i++ {
		m := mem.NewMemory("n", 16<<20)
		mems = append(mems, m)
		hcas = append(hcas, fab.AddHCA("n", m, &stats.Counters{}))
	}
	size := int64(1 << 20)
	var done []simtime.Time
	post := func(src int) {
		sCQ, rCQ := NewCQ(hcas[src]), NewCQ(hcas[src])
		dCQ, drCQ := NewCQ(hcas[2]), NewCQ(hcas[2])
		q, _ := Connect(hcas[src], hcas[2], sCQ, rCQ, dCQ, drCQ)
		a := mems[src].MustAlloc(size)
		ra, _ := mems[src].Reg().Register(a, size)
		b := mems[2].MustAlloc(size)
		rb, _ := mems[2].Reg().Register(b, size)
		sCQ.SetHandler(func(e CQE) {
			if e.Err != nil {
				t.Error(e.Err)
			}
			done = append(done, eng.Now())
		})
		if err := q.PostSend(SendWR{Op: OpRDMAWrite,
			SGL:        []SGE{{Addr: a, Len: size, Key: ra.LKey}},
			RemoteAddr: b, RKey: rb.RKey}); err != nil {
			t.Fatal(err)
		}
	}
	post(0)
	post(1)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("completions = %d", len(done))
	}
	wire := model.WireTime(size)
	last := done[1]
	if done[0] > last {
		last = done[0]
	}
	if last < simtime.Time(2*wire) {
		t.Fatalf("receive port did not serialize: last completion %v < 2 wire times %v",
			last, 2*wire)
	}
}

// The same workload must produce bit-identical virtual timings on repeated
// runs: the simulation is deterministic.
func TestDeterministicReplay(t *testing.T) {
	run := func() []simtime.Time {
		eng := simtime.NewEngine()
		fab := NewFabric(eng, DefaultModel())
		ma := mem.NewMemory("a", 8<<20)
		mb := mem.NewMemory("b", 8<<20)
		ha := fab.AddHCA("a", ma, &stats.Counters{})
		hb := fab.AddHCA("b", mb, &stats.Counters{})
		as, ar := NewCQ(ha), NewCQ(ha)
		bs, br := NewCQ(hb), NewCQ(hb)
		qa, qb := Connect(ha, hb, as, ar, bs, br)
		var times []simtime.Time
		br.SetHandler(func(e CQE) {
			times = append(times, eng.Now())
			qb.PostRecv(RecvWR{})
		})
		as.SetHandler(func(e CQE) { times = append(times, eng.Now()) })
		for i := 0; i < 16; i++ {
			qb.PostRecv(RecvWR{})
		}
		for i := 0; i < 16; i++ {
			if err := qa.PostSend(SendWR{Op: OpSend, Inline: make([]byte, 100*(i+1))}); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// A shared CQ must dispatch completions from multiple QPs to one handler
// with correct QP attribution.
func TestSharedCQAcrossQPs(t *testing.T) {
	eng := simtime.NewEngine()
	fab := NewFabric(eng, DefaultModel())
	var hcas []*HCA
	var mems []*mem.Memory
	for i := 0; i < 3; i++ {
		m := mem.NewMemory("n", 4<<20)
		mems = append(mems, m)
		hcas = append(hcas, fab.AddHCA("n", m, &stats.Counters{}))
	}
	shared := NewCQ(hcas[0])
	srcs := map[int]int{}
	shared.SetHandler(func(e CQE) { srcs[e.QP.UserData()]++ })
	sendDummy := NewCQ(hcas[0])
	for _, peer := range []int{1, 2} {
		ps, pr := NewCQ(hcas[peer]), NewCQ(hcas[peer])
		q0, qp := Connect(hcas[0], hcas[peer], sendDummy, shared, ps, pr)
		q0.SetUserData(peer)
		qp.SetUserData(0)
		q0.PostRecv(RecvWR{})
		if err := qp.PostSend(SendWR{Op: OpSend, Inline: []byte{byte(peer)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if srcs[1] != 1 || srcs[2] != 1 {
		t.Fatalf("attribution = %v", srcs)
	}
}

// A bad descriptor anywhere in a list post must reject the whole list with
// no partial side effects.
func TestListPostAtomicValidation(t *testing.T) {
	eng := simtime.NewEngine()
	fab := NewFabric(eng, DefaultModel())
	ma := mem.NewMemory("a", 4<<20)
	mb := mem.NewMemory("b", 4<<20)
	ca := &stats.Counters{}
	ha := fab.AddHCA("a", ma, ca)
	hb := fab.AddHCA("b", mb, &stats.Counters{})
	as, ar := NewCQ(ha), NewCQ(ha)
	bs, br := NewCQ(hb), NewCQ(hb)
	qa, _ := Connect(ha, hb, as, ar, bs, br)

	good := ma.MustAlloc(64)
	gr, _ := ma.Reg().Register(good, 64)
	dst := mb.MustAlloc(64)
	dr, _ := mb.Reg().Register(dst, 64)
	bad := ma.MustAlloc(64) // unregistered

	err := qa.PostSendList([]SendWR{
		{Op: OpRDMAWrite, SGL: []SGE{{Addr: good, Len: 64, Key: gr.LKey}}, RemoteAddr: dst, RKey: dr.RKey},
		{Op: OpRDMAWrite, SGL: []SGE{{Addr: bad, Len: 64, Key: 9999}}, RemoteAddr: dst, RKey: dr.RKey},
	})
	if err == nil {
		t.Fatal("list with bad lkey accepted")
	}
	if ca.DescriptorsPosted != 0 {
		t.Fatalf("partial side effects: %d descriptors counted", ca.DescriptorsPosted)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := mb.Bytes(dst, 8)[0]; got != 0 {
		t.Fatal("data moved despite rejected post")
	}
}

// Tracing must capture CPU and both port lanes with sane utilization.
func TestFabricTracing(t *testing.T) {
	eng := simtime.NewEngine()
	fab := NewFabric(eng, DefaultModel())
	rec := trace.New()
	fab.SetTracer(rec)
	ma := mem.NewMemory("a", 4<<20)
	mb := mem.NewMemory("b", 4<<20)
	ha := fab.AddHCA("a", ma, &stats.Counters{})
	hb := fab.AddHCA("b", mb, &stats.Counters{})
	as, ar := NewCQ(ha), NewCQ(ha)
	bs, br := NewCQ(hb), NewCQ(hb)
	qa, _ := Connect(ha, hb, as, ar, bs, br)
	src := ma.MustAlloc(4096)
	sr, _ := ma.Reg().Register(src, 4096)
	dst := mb.MustAlloc(4096)
	dr, _ := mb.Reg().Register(dst, 4096)
	if err := qa.PostSend(SendWR{Op: OpRDMAWrite,
		SGL:        []SGE{{Addr: src, Len: 4096, Key: sr.LKey}},
		RemoteAddr: dst, RKey: dr.RKey}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	lanes := map[trace.Lane]bool{}
	for _, e := range rec.Events() {
		lanes[e.Lane] = true
	}
	if !lanes[trace.LaneCPU] || !lanes[trace.LaneTx] || !lanes[trace.LaneRx] {
		t.Fatalf("missing lanes in trace: %v", lanes)
	}
}
