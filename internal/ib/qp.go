package ib

import (
	"fmt"
	"sync/atomic"

	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// SGE, SendWR and RecvWR alias the backend-neutral work-request types in
// internal/verbs.
type (
	SGE    = verbs.SGE
	SendWR = verbs.SendWR
	RecvWR = verbs.RecvWR
)

// arrival is payload/notification waiting for a receive credit (the
// simulation's receiver-not-ready stall).
type arrival struct {
	op     Opcode
	data   []byte
	bytes  int64
	imm    uint32
	hasImm bool
}

// QP is one end of a reliable connection.
type QP struct {
	hca     *HCA
	num     int
	peer    *QP
	sendCQ  *CQ
	recvCQ  *CQ
	recvQ   []RecvWR
	stalled []arrival

	// userData is free for the owning protocol layer (e.g. peer rank).
	userData int
}

// HCA returns the owning adapter.
func (qp *QP) HCA() *HCA { return qp.hca }

// Peer returns the connected remote QP.
func (qp *QP) Peer() *QP { return qp.peer }

// Num returns the QP number (unique per HCA).
func (qp *QP) Num() int { return qp.num }

// UserData returns the tag stored with SetUserData.
func (qp *QP) UserData() int { return qp.userData }

// SetUserData stores an integer tag on the QP for the owning protocol layer.
func (qp *QP) SetUserData(v int) { qp.userData = v }

// PostRecv posts a receive credit. If arrivals were stalled waiting for
// credits they are delivered now, in arrival order.
func (qp *QP) PostRecv(wr RecvWR) {
	atomic.AddInt64(&qp.hca.counters.RecvsPosted, 1)
	qp.recvQ = append(qp.recvQ, wr)
	for len(qp.stalled) > 0 && len(qp.recvQ) > 0 {
		a := qp.stalled[0]
		qp.stalled = qp.stalled[1:]
		qp.completeArrival(a)
	}
}

// RecvCredits reports the number of posted, unconsumed receive credits.
func (qp *QP) RecvCredits() int { return len(qp.recvQ) }

// PostSend posts one work request.
func (qp *QP) PostSend(wr SendWR) error {
	return qp.post([]SendWR{wr}, false)
}

// PostSendList posts a list of work requests in one operation; descriptors
// after the first are cheaper to post (the extended interface the paper's
// Multi-W scheme evaluates in Figure 13).
func (qp *QP) PostSendList(wrs []SendWR) error {
	return qp.post(wrs, true)
}

func (qp *QP) post(wrs []SendWR, list bool) error {
	if len(wrs) == 0 {
		return nil
	}
	h := qp.hca
	m := h.Model()
	eng := h.Engine()

	// MaxPostBatch bounds descriptors per doorbell; it is distinct from
	// MaxSGE, which bounds one descriptor's gather list.
	if list && m.MaxPostBatch > 0 && len(wrs) > m.MaxPostBatch {
		return fmt.Errorf("ib %s qp%d: list post of %d descriptors exceeds MaxPostBatch %d",
			h.name, qp.num, len(wrs), m.MaxPostBatch)
	}

	// Validate everything before charging any time, so a bad descriptor in a
	// list fails the whole post (as ibv_post_send does).
	for i := range wrs {
		if err := qp.validate(&wrs[i]); err != nil {
			return fmt.Errorf("ib %s qp%d: %w", h.name, qp.num, err)
		}
	}

	// Injected post failures model ibv_post_send rejecting the descriptor
	// (transiently: queue full; permanently: QP moved to error state).
	// Channel-semantics sends are exempt — control traffic must keep the
	// transport's reliable ordering for the protocol layer's matching rules.
	if inj := h.fab.injector; inj != nil && wrs[0].Op != OpSend {
		if err := inj.PostFault(); err != nil {
			return fmt.Errorf("ib %s qp%d: post: %w", h.name, qp.num, err)
		}
	}

	c := h.counters
	if list {
		atomic.AddInt64(&c.ListPosts, 1)
	}
	for i := range wrs {
		wr := &wrs[i]
		atomic.AddInt64(&c.DescriptorsPosted, 1)
		atomic.AddInt64(&c.SGEsPosted, int64(len(wr.SGL)))
		if wr.Lane != 0 {
			atomic.AddInt64(&c.LaneBulkDescs, 1)
		}
		switch wr.Op {
		case OpSend:
			atomic.AddInt64(&c.SendsPosted, 1)
		case OpRDMAWrite, OpRDMAWriteImm:
			atomic.AddInt64(&c.RDMAWritesPosted, 1)
			if wr.Op == OpRDMAWriteImm {
				atomic.AddInt64(&c.ImmediatesSent, 1)
			}
		case OpRDMARead:
			atomic.AddInt64(&c.RDMAReadsPosted, 1)
		}
		if !list {
			atomic.AddInt64(&c.ListPosts, 1) // each single post is its own post operation
		}
		cpuStart, cpuEnd := h.cpu.Acquire(eng.Now(), m.PostTime(i, len(wr.SGL), list))
		h.fab.tracer.Add(h.name, trace.LaneCPU, "doorbell", cpuStart, cpuEnd)
		qp.launch(*wr, cpuEnd)
	}
	return nil
}

func (qp *QP) validate(wr *SendWR) error {
	h := qp.hca
	switch wr.Op {
	case OpSend:
		if len(wr.SGL) != 0 {
			return fmt.Errorf("OpSend carries inline payloads only")
		}
		return nil
	case OpRDMAWrite, OpRDMAWriteImm:
		n, err := validateSGL(h, wr.SGL)
		if err != nil {
			return err
		}
		// Remote access rights are checked at delivery (the responder side),
		// but the target range must at least be a plausible address.
		if err := qp.peer.hca.mem.CheckRange(wr.RemoteAddr, n); err != nil {
			return err
		}
		return nil
	case OpRDMARead:
		if _, err := validateSGL(h, wr.SGL); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("bad opcode %v", wr.Op)
	}
}

// launch models NIC processing and wire transfer of one descriptor that
// becomes eligible at time ready (when the host finished posting it).
func (qp *QP) launch(wr SendWR, ready simtime.Time) {
	h := qp.hca
	m := h.Model()
	eng := h.Engine()

	// Injected CQE errors: the NIC consumes the descriptor but the transfer
	// fails before any payload moves, and the initiator sees an error
	// completion after the round trip. Channel-semantics sends are exempt
	// (see post).
	if inj := h.fab.injector; inj != nil && wr.Op != OpSend {
		if ferr := inj.CQEFault(); ferr != nil {
			qp.failLaunch(wr, ready, ferr)
			return
		}
	}

	switch wr.Op {
	case OpSend:
		payload := append([]byte(nil), wr.Inline...)
		size := int64(len(payload))
		occ := m.NICDescCost + m.WireTime(size)
		sendStart, sendEnd := h.sendPort.AcquireAt(ready, occ)
		rs, re := qp.peer.hca.recvPort.AcquireAt(sendStart.Add(m.WireLatency), m.WireTime(size))
		h.traceLane(trace.LaneTx, "xmit:ctrl", sendStart, sendEnd)
		qp.peer.hca.traceLane(trace.LaneRx, "xmit:ctrl", rs, re)
		wrid := wr.WRID
		imm, hasImm := wr.Imm, true
		eng.At(re, func() {
			qp.peer.arrive(arrival{op: OpSend, data: payload, bytes: size, imm: imm, hasImm: hasImm})
		})
		eng.At(re.Add(m.WireLatency), func() {
			qp.sendCQ.push(CQE{QP: qp, WRID: wrid, Op: OpSend, Bytes: size})
		})

	case OpRDMAWrite, OpRDMAWriteImm:
		// Snapshot the gather list at launch; hardware requires the source
		// stable until completion and our protocols honor that.
		var size int64
		for _, s := range wr.SGL {
			size += s.Len
		}
		payload := make([]byte, 0, size)
		for _, s := range wr.SGL {
			if s.Len > 0 {
				payload = append(payload, h.mem.Bytes(s.Addr, s.Len)...)
			}
		}
		occ := m.NICDescCost + simtime.Duration(len(wr.SGL))*m.NICSGECost + m.WireTime(size)
		sendStart, sendEnd := h.sendPort.AcquireAt(ready, occ)
		rs, re := qp.peer.hca.recvPort.AcquireAt(sendStart.Add(m.WireLatency), m.WireTime(size))
		h.traceLane(trace.LaneTx, "wire:write", sendStart, sendEnd)
		qp.peer.hca.traceLane(trace.LaneRx, "wire:write", rs, re)
		wrcopy := wr
		eng.At(re, func() { qp.deliverWrite(wrcopy, payload, size, re) })

	case OpRDMARead:
		var size int64
		for _, s := range wr.SGL {
			size += s.Len
		}
		// Request to responder.
		reqOcc := m.NICDescCost + simtime.Duration(len(wr.SGL))*m.NICSGECost
		reqStart, _ := h.sendPort.AcquireAt(ready, reqOcc)
		// Responder streams the data back after its turnaround.
		respReady := reqStart.Add(m.WireLatency + m.ReadTurnaround)
		dataOcc := m.NICDescCost + m.WireTime(size)
		respStart, respEnd := qp.peer.hca.sendPort.AcquireAt(respReady, dataOcc)
		ls, le := h.recvPort.AcquireAt(respStart.Add(m.WireLatency), m.WireTime(size))
		qp.peer.hca.traceLane(trace.LaneTx, "wire:read-resp", respStart, respEnd)
		h.traceLane(trace.LaneRx, "wire:read-resp", ls, le)
		wrcopy := wr
		eng.At(le, func() { qp.completeRead(wrcopy, size) })
	}
}

// failLaunch completes a descriptor with an injected error: the send port
// is occupied for the descriptor-processing attempt, no data crosses the
// wire, and the error CQE arrives after a round trip.
func (qp *QP) failLaunch(wr SendWR, ready simtime.Time, ferr error) {
	h := qp.hca
	m := h.Model()
	occ := m.NICDescCost + simtime.Duration(len(wr.SGL))*m.NICSGECost
	sendStart, sendEnd := h.sendPort.AcquireAt(ready, occ)
	h.traceLane(trace.LaneTx, "wire:fault", sendStart, sendEnd)
	err := fmt.Errorf("ib %s qp%d: %v failed: %w", h.name, qp.num, wr.Op, ferr)
	wrid, op := wr.WRID, wr.Op
	h.Engine().At(sendEnd.Add(2*m.WireLatency), func() {
		qp.sendCQ.push(CQE{QP: qp, WRID: wrid, Op: op, Err: err})
	})
}

// deliverWrite lands an RDMA write at the responder.
func (qp *QP) deliverWrite(wr SendWR, payload []byte, size int64, t simtime.Time) {
	m := qp.hca.Model()
	peer := qp.peer
	// Responder-side protection check.
	if err := peer.hca.mem.Reg().CheckAccess(wr.RKey, wr.RemoteAddr, size); err != nil {
		qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: wr.Op, Bytes: size,
			Err: fmt.Errorf("remote access error: %w", err)})
		return
	}
	copy(peer.hca.mem.Bytes(wr.RemoteAddr, size), payload)
	if wr.Op == OpRDMAWriteImm {
		peer.arrive(arrival{op: OpRDMAWriteImm, bytes: size, imm: wr.Imm, hasImm: true})
	}
	// Initiator completion after the ack returns; injected delays model a
	// congested completion path without reordering the data delivery above.
	var delay simtime.Duration
	if inj := qp.hca.fab.injector; inj != nil {
		delay = inj.Delay()
	}
	eng := qp.hca.Engine()
	eng.At(t.Add(m.WireLatency+delay), func() {
		qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: wr.Op, Bytes: size})
	})
}

// completeRead lands RDMA read data at the initiator.
func (qp *QP) completeRead(wr SendWR, size int64) {
	peer := qp.peer
	if err := peer.hca.mem.Reg().CheckAccess(wr.RKey, wr.RemoteAddr, size); err != nil {
		qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: OpRDMARead, Bytes: size,
			Err: fmt.Errorf("remote access error: %w", err)})
		return
	}
	src := peer.hca.mem.Bytes(wr.RemoteAddr, size)
	var off int64
	for _, s := range wr.SGL {
		if s.Len <= 0 {
			continue
		}
		copy(qp.hca.mem.Bytes(s.Addr, s.Len), src[off:off+s.Len])
		off += s.Len
	}
	if inj := qp.hca.fab.injector; inj != nil {
		if delay := inj.Delay(); delay > 0 {
			qp.hca.Engine().Schedule(delay, func() {
				qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: OpRDMARead, Bytes: size})
			})
			return
		}
	}
	qp.sendCQ.push(CQE{QP: qp, WRID: wr.WRID, Op: OpRDMARead, Bytes: size})
}

// arrive delivers a channel-semantics payload or an immediate notification,
// consuming a receive credit or stalling until one is posted.
func (qp *QP) arrive(a arrival) {
	if len(qp.recvQ) == 0 {
		qp.stalled = append(qp.stalled, a)
		return
	}
	qp.completeArrival(a)
}

func (qp *QP) completeArrival(a arrival) {
	rwr := qp.recvQ[0]
	qp.recvQ = qp.recvQ[1:]
	qp.recvCQ.push(CQE{
		QP:     qp,
		WRID:   rwr.WRID,
		Op:     OpRecv,
		Bytes:  a.bytes,
		Imm:    a.imm,
		HasImm: a.hasImm,
		Data:   a.data,
	})
}
