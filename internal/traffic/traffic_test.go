package traffic

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/qos"
	"repro/internal/stats"
	"repro/internal/trace"
)

func testSpec() Spec {
	return Spec{
		Seed:       7,
		Ranks:      4,
		Comms:      2,
		EagerFlows: 6,
		BulkFlows:  3,
		Msgs:       4,
		EagerBytes: 1 << 10,
		BulkBytes:  128 << 10,
		ClosedFrac: 0.5,
		GapNs:      20_000,
	}
}

func testWorld(t *testing.T, backend string, ranks int, mut func(*mpi.Config)) *mpi.World {
	t.Helper()
	cfg := mpi.DefaultConfig()
	cfg.Ranks = ranks
	cfg.MemBytes = 64 << 20
	cfg.Backend = backend
	cfg.RTTimeout = 2 * time.Minute
	if mut != nil {
		mut(&cfg)
	}
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	return w
}

func TestFlowsDeterministic(t *testing.T) {
	a := testSpec().Flows()
	b := testSpec().Flows()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different flows:\n%v\n%v", a, b)
	}
	s2 := testSpec()
	s2.Seed = 8
	if reflect.DeepEqual(a, s2.Flows()) {
		t.Fatalf("different seeds produced identical flows")
	}
	for _, f := range a {
		if f.Src == f.Dst {
			t.Fatalf("flow %d is a self-message", f.ID)
		}
		if f.Comm < 0 || f.Comm >= 2 {
			t.Fatalf("flow %d comm %d out of range", f.ID, f.Comm)
		}
	}
}

// runSoak executes one mixed soak and returns the aggregate counters plus
// per-class latency dumps.
func runSoak(t *testing.T, backend string, spec Spec, mut func(*mpi.Config)) (stats.Counters, BucketDump, BucketDump, *Runner) {
	t.Helper()
	reg := stats.NewRegistry()
	w := testWorld(t, backend, spec.Ranks, mut)
	r := NewRunner(spec, reg)
	if err := r.Run(w); err != nil {
		t.Fatalf("soak on %s: %v", backend, err)
	}
	return AggregateCounters(w),
		DumpHistogram(reg.Histogram(HistEager)),
		DumpHistogram(reg.Histogram(HistBulk)),
		r
}

func TestSoakRunsOnBothBackends(t *testing.T) {
	for _, backend := range mpi.AllBackends {
		t.Run(backend, func(t *testing.T) {
			qp := qos.DefaultPolicy()
			ctr, eager, bulk, r := runSoak(t, backend, testSpec(), func(c *mpi.Config) {
				c.Core.QoS = &qp
			})
			spec := testSpec()
			wantEager := int64(spec.EagerFlows * spec.Msgs)
			wantBulk := int64(spec.BulkFlows * spec.Msgs)
			if eager.N != wantEager || bulk.N != wantBulk {
				t.Fatalf("latency samples: eager %d (want %d) bulk %d (want %d)",
					eager.N, wantEager, bulk.N, wantBulk)
			}
			if ef, bf := r.Failures(); ef != 0 || bf != 0 {
				t.Fatalf("failures: eager %d bulk %d", ef, bf)
			}
			if ctr.EagerSends == 0 || ctr.RendezvousSends == 0 {
				t.Fatalf("implausible counters: %s", ctr.String())
			}
		})
	}
}

func TestSoakSimDeterministic(t *testing.T) {
	qp := qos.DefaultPolicy()
	mut := func(c *mpi.Config) { c.Core.QoS = &qp }
	ctr1, e1, b1, _ := runSoak(t, mpi.BackendSim, testSpec(), mut)
	ctr2, e2, b2, _ := runSoak(t, mpi.BackendSim, testSpec(), mut)
	if ctr1.String() != ctr2.String() {
		t.Fatalf("counters drifted across identical sim soaks:\n%s\n%s", ctr1.String(), ctr2.String())
	}
	if !reflect.DeepEqual(e1, e2) || !reflect.DeepEqual(b1, b2) {
		t.Fatalf("latency histograms drifted across identical sim soaks")
	}
}

// TestCrippledPoolAdmission is the admission-control fault path: a segpool
// with a single slot forces bulk transfers to park while eager traffic keeps
// flowing. Parks must show up in the counters and as qos-park trace marks,
// and the eager class must see zero failures.
func TestCrippledPoolAdmission(t *testing.T) {
	spec := Spec{
		Ranks: 2,
		Explicit: []Flow{
			{ID: 0, Src: 0, Dst: 1, Comm: 0, Count: 3, Bytes: 256 << 10, Bulk: true, GapNs: 2_000},
			{ID: 1, Src: 0, Dst: 1, Comm: 0, Count: 3, Bytes: 256 << 10, Bulk: true, GapNs: 2_000},
			{ID: 2, Src: 0, Dst: 1, Comm: 0, Count: 3, Bytes: 256 << 10, Bulk: true, GapNs: 2_000},
			{ID: 3, Src: 0, Dst: 1, Comm: 0, Count: 16, Bytes: 512, Closed: true},
			{ID: 4, Src: 1, Dst: 0, Comm: 0, Count: 16, Bytes: 512, Closed: true},
		},
	}
	for _, backend := range mpi.AllBackends {
		t.Run(backend, func(t *testing.T) {
			rec := trace.New()
			reg := stats.NewRegistry()
			w := testWorld(t, backend, 2, func(c *mpi.Config) {
				c.Trace = rec
				// One 128 KiB slot: a second concurrent bulk transfer sees
				// zero free slots and must park at admission.
				c.Core.PoolSize = c.Core.SegmentSize
				c.Core.QoS = &qos.Policy{
					BulkThreshold: 64 << 10,
					DescWindow:    4,
					ByteWindow:    256 << 10,
					MinFreeSlots:  1,
				}
			})
			r := NewRunner(spec, reg)
			if err := r.Run(w); err != nil {
				t.Fatalf("crippled soak on %s: %v", backend, err)
			}
			ctr := AggregateCounters(w)
			if ctr.QoSParked == 0 {
				t.Fatalf("expected bulk parks under a one-slot pool; counters: %s", ctr.String())
			}
			if ef, bf := r.Failures(); ef != 0 || bf != 0 {
				t.Fatalf("failures under admission pressure: eager %d bulk %d", ef, bf)
			}
			var parks int
			for _, ev := range rec.Events() {
				if ev.Name == "qos-park" {
					parks++
				}
			}
			if parks == 0 {
				t.Fatalf("no qos-park trace instants recorded (QoSParked=%d)", ctr.QoSParked)
			}
		})
	}
}

// TestAnnounceOrderManyComms stresses the per-destination announce queue:
// many concurrent flows between one rank pair, spread over several
// communicators and tags, each with multiple same-tag messages in flight.
// Every payload carries (flowID, seq); MPI non-overtaking demands that the
// k-th receive of a flow always observes seq k.
func TestAnnounceOrderManyComms(t *testing.T) {
	const nComms = 4
	var flows []Flow
	for c := 0; c < nComms; c++ {
		for i := 0; i < 3; i++ {
			// Same-pair eager flows with several messages in flight.
			flows = append(flows, Flow{
				ID: len(flows), Src: 0, Dst: 1, Comm: c,
				Count: 10, Bytes: 768, GapNs: 1_500, Stamp: true,
			})
		}
		// One rendezvous-size flow per comm so RTS announces interleave
		// with the eager ones in the same per-destination queue.
		flows = append(flows, Flow{
			ID: len(flows), Src: 0, Dst: 1, Comm: c,
			Count: 4, Bytes: 64 << 10, Bulk: true, GapNs: 3_000, Stamp: true,
		})
	}
	spec := Spec{Ranks: 2, Comms: nComms, Explicit: flows}
	for _, backend := range mpi.AllBackends {
		t.Run(backend, func(t *testing.T) {
			w := testWorld(t, backend, 2, nil)
			r := NewRunner(spec, stats.NewRegistry())
			r.OnSend = func(f Flow, k int, payload []byte) {
				binary.LittleEndian.PutUint32(payload[0:4], uint32(f.ID))
				binary.LittleEndian.PutUint32(payload[4:8], uint32(k))
			}
			r.OnRecv = func(f Flow, k int, payload []byte) error {
				id := binary.LittleEndian.Uint32(payload[0:4])
				seq := binary.LittleEndian.Uint32(payload[4:8])
				if int(id) != f.ID || int(seq) != k {
					return fmt.Errorf("flow %d msg %d: got payload (flow %d, seq %d)", f.ID, k, id, seq)
				}
				return nil
			}
			if err := r.Run(w); err != nil {
				t.Fatalf("announce stress on %s: %v", backend, err)
			}
			if ef, bf := r.Failures(); ef != 0 || bf != 0 {
				t.Fatalf("failures: eager %d bulk %d", ef, bf)
			}
		})
	}
}
