package traffic

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// Runner drives one Spec over an mpi.World: every rank runs the same body,
// sending the flows it sources and receiving the flows it sinks. Construct
// with NewRunner, then call Run (at most once per Runner — the timestamp
// slots are single-use).
type Runner struct {
	// Spec is the workload; its Flows() expansion is computed once in Run.
	Spec Spec

	// Reg receives the per-class latency histograms (HistEager, HistBulk).
	// Nil disables latency recording.
	Reg *stats.Registry

	// OnSend, when set, is called with a message's payload buffer before
	// the send is posted, for flows with Stamp set. The hook runs in the
	// sending rank's execution context.
	OnSend func(f Flow, k int, payload []byte)

	// OnRecv, when set, is called with the receive buffer after each
	// delivery (every flow, not just stamped ones). A non-nil error fails
	// the receiving rank's body. Runs in the receiving rank's context.
	OnRecv func(f Flow, k int, payload []byte) error

	// PollTick paces the progress loop while open-loop injections are
	// pending but no request is outstanding. Defaults to 5µs.
	PollTick simtime.Duration

	flows  []Flow
	stamps [][]int64 // [flowID][msg] injection time, written once, atomically

	eagerFail atomic.Int64
	bulkFail  atomic.Int64
}

// NewRunner builds a Runner for spec, recording latencies into reg.
func NewRunner(spec Spec, reg *stats.Registry) *Runner {
	return &Runner{Spec: spec, Reg: reg, PollTick: 5 * simtime.Microsecond}
}

// Failures reports per-class request failures observed so far (sender and
// receiver sides both count, so one dead transfer may count twice).
func (r *Runner) Failures() (eager, bulk int64) {
	return r.eagerFail.Load(), r.bulkFail.Load()
}

// Flows returns the expanded flow list (valid after Run starts).
func (r *Runner) Flows() []Flow { return r.flows }

// Run expands the spec and executes the workload on w, blocking until every
// flow has fully drained on every rank.
func (r *Runner) Run(w *mpi.World) error {
	r.flows = r.Spec.Flows()
	r.stamps = make([][]int64, len(r.flows))
	for i, f := range r.flows {
		if f.Src == f.Dst {
			return fmt.Errorf("traffic: flow %d is a self-message", f.ID)
		}
		if f.Src >= w.Size() || f.Dst >= w.Size() {
			return fmt.Errorf("traffic: flow %d names rank beyond world size %d", f.ID, w.Size())
		}
		r.stamps[i] = make([]int64, f.Count)
	}
	return w.Run(func(p *mpi.Proc) error { return r.rank(w, p) })
}

// outReq is one in-flight request the progress loop is tracking.
type outReq struct {
	req    *core.Request
	fs     *flowState
	isRecv bool
	k      int
}

type flowState struct {
	f      Flow
	dt     *datatype.Type
	count  int
	extent int64
	buf    mem.Addr   // single reused buffer (receiver, unstamped sender)
	bufs   []mem.Addr // per-message buffers for stamped flows
	next   int        // next message index to post
}

func (fs *flowState) sendBuf(k int) mem.Addr {
	if fs.bufs != nil {
		return fs.bufs[k]
	}
	return fs.buf
}

// rank is the per-rank workload body.
func (r *Runner) rank(w *mpi.World, p *mpi.Proc) error {
	nComms := r.Spec.Comms
	if nComms < 1 {
		nComms = 1
	}
	comms := make([]*mpi.Comm, nComms)
	comms[0] = p.World()
	for i := 1; i < nComms; i++ {
		c, err := comms[0].Dup()
		if err != nil {
			return fmt.Errorf("traffic: dup comm %d: %w", i, err)
		}
		comms[i] = c
	}

	m := p.Mem()
	var sends, recvs []*flowState
	for _, f := range r.flows {
		if f.Src != p.Rank() && f.Dst != p.Rank() {
			continue
		}
		dt, count, extent := shape(f)
		fs := &flowState{f: f, dt: dt, count: count, extent: extent}
		if f.Src == p.Rank() {
			if f.Stamp {
				fs.bufs = make([]mem.Addr, f.Count)
				for k := range fs.bufs {
					a, err := m.Alloc(extent)
					if err != nil {
						return fmt.Errorf("traffic: flow %d send buf %d: %w", f.ID, k, err)
					}
					fill(m, a, extent, f.ID)
					fs.bufs[k] = a
				}
			} else {
				a, err := m.Alloc(extent)
				if err != nil {
					return fmt.Errorf("traffic: flow %d send buf: %w", f.ID, err)
				}
				// Open-loop flows may have several messages of this buffer
				// in flight at once; the payload is written exactly once,
				// here, and only read afterwards.
				fill(m, a, extent, f.ID)
				fs.buf = a
			}
			sends = append(sends, fs)
		} else {
			a, err := m.Alloc(extent)
			if err != nil {
				return fmt.Errorf("traffic: flow %d recv buf: %w", f.ID, err)
			}
			fs.buf = a
			recvs = append(recvs, fs)
		}
	}

	// Everyone finishes communicator setup before traffic starts, so the
	// first open-loop injections race real receivers, not setup.
	if err := p.Barrier(); err != nil {
		return err
	}

	var outs []*outReq
	postSend := func(fs *flowState) {
		k := fs.next
		fs.next++
		buf := fs.sendBuf(k)
		if r.OnSend != nil && fs.f.Stamp {
			r.OnSend(fs.f, k, m.Bytes(buf, fs.extent))
		}
		atomic.StoreInt64(&r.stamps[fs.f.ID][k], w.ClockNs())
		req := comms[fs.f.Comm].Isend(buf, fs.count, fs.dt, fs.f.Dst, fs.f.ID)
		outs = append(outs, &outReq{req: req, fs: fs, k: k})
	}
	postRecv := func(fs *flowState) {
		k := fs.next
		fs.next++
		req := comms[fs.f.Comm].Irecv(fs.buf, fs.count, fs.dt, fs.f.Src, fs.f.ID)
		outs = append(outs, &outReq{req: req, fs: fs, isRecv: true, k: k})
	}

	// Receivers keep exactly one receive posted per inbound flow; senders
	// start closed-loop flows now and put open-loop flows on the injection
	// timer. Injection callbacks run in this node's engine context, which
	// is serialized with this process, so they may touch outs directly.
	for _, fs := range recvs {
		postRecv(fs)
	}
	openLeft := 0
	eng := p.Endpoint().Engine()
	for _, fs := range sends {
		if fs.f.Closed {
			postSend(fs)
			continue
		}
		openLeft += fs.f.Count
		fs := fs
		gap := simtime.Duration(fs.f.GapNs)
		if gap <= 0 {
			gap = simtime.Microsecond
		}
		var inject func()
		inject = func() {
			postSend(fs)
			openLeft--
			if fs.next < fs.f.Count {
				eng.Schedule(gap, inject)
			}
		}
		eng.Schedule(gap, inject)
	}

	classFail := func(f Flow) {
		if f.Bulk {
			r.bulkFail.Add(1)
		} else {
			r.eagerFail.Add(1)
		}
	}

	var reqs []*core.Request
	for {
		if len(outs) == 0 {
			if openLeft == 0 {
				break
			}
			// Open-loop injections still pending: let engine time advance.
			p.Compute(r.pollTick())
			continue
		}
		reqs = reqs[:0]
		for _, o := range outs {
			reqs = append(reqs, o.req)
		}
		i := p.WaitAny(reqs...)
		o := outs[i]
		outs = append(outs[:i], outs[i+1:]...)
		if o.req.Err != nil {
			classFail(o.fs.f)
		}
		if o.isRecv {
			if o.req.Err == nil {
				if o.k >= o.fs.f.Warmup {
					t0 := atomic.LoadInt64(&r.stamps[o.fs.f.ID][o.k])
					lat := w.ClockNs() - t0
					if lat < 0 {
						lat = 0
					}
					r.histFor(o.fs.f).Observe(lat)
				}
				if r.OnRecv != nil {
					if err := r.OnRecv(o.fs.f, o.k, m.Bytes(o.fs.buf, o.fs.extent)); err != nil {
						return err
					}
				}
			}
			if o.fs.next < o.fs.f.Count {
				postRecv(o.fs)
			}
			continue
		}
		if o.fs.f.Closed && o.fs.next < o.fs.f.Count {
			postSend(o.fs)
		}
	}
	return nil
}

func (r *Runner) pollTick() simtime.Duration {
	if r.PollTick > 0 {
		return r.PollTick
	}
	return 5 * simtime.Microsecond
}

func (r *Runner) histFor(f Flow) *stats.Histogram {
	if r.Reg == nil {
		return nil
	}
	if f.Bulk {
		return r.Reg.Histogram(HistBulk)
	}
	return r.Reg.Histogram(HistEager)
}

// AggregateCounters sums every rank's counters into one snapshot.
func AggregateCounters(w *mpi.World) stats.Counters {
	var total stats.Counters
	for i := 0; i < w.Size(); i++ {
		snap := w.Endpoint(i).Counters().Snapshot()
		total.Add(&snap)
	}
	return total
}
