// Package traffic is a deterministic workload generator for service-mode
// soaks: seeded mixes of latency-sensitive (eager) and bulk flows, spread
// over many communicators, with open-loop (timed injection) and closed-loop
// (completion-paced) arrivals. The same Spec replayed on the simulator
// backend produces bit-identical traffic — counter snapshots taken after a
// soak are therefore golden-file material — while on the real-time backend
// it produces the contention the QoS layer exists to manage, with per-class
// end-to-end latency recorded into log2 histograms.
//
// Flows are generated once from the seed and shared read-only by every
// rank's process; per-message send timestamps live in a preallocated atomic
// slot array, so the receiver can compute injection-to-delivery latency on
// either backend (both clocks are fabric-wide: virtual engine time on sim,
// wall clock since fabric start on rt).
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/datatype"
	"repro/internal/mem"
	"repro/internal/stats"
)

// Histogram names the Runner observes per-class latency into.
const (
	// HistEager is the latency-sensitive class's injection-to-delivery
	// latency histogram (nanoseconds).
	HistEager = "traffic/lat_ns/eager"
	// HistBulk is the bulk class's injection-to-delivery latency histogram.
	HistBulk = "traffic/lat_ns/bulk"
)

// Flow is one unidirectional message stream: Count messages of Bytes payload
// from Src to Dst (world ranks) on communicator index Comm, tagged with the
// flow's ID (unique per Spec, so distinct flows between the same pair never
// cross-match).
type Flow struct {
	ID   int // unique; doubles as the MPI tag
	Src  int // sending world rank
	Dst  int // receiving world rank (never == Src)
	Comm int // communicator index: 0 = world, 1.. = duplicates

	Count int   // messages in the flow
	Bytes int64 // payload bytes per message (rounded to the datatype grid)

	// Bulk selects the payload shape and traffic class: bulk flows send a
	// non-contiguous vector datatype sized for the rendezvous path, eager
	// flows a small contiguous buffer under the eager threshold.
	Bulk bool

	// Closed paces the flow by completion: message k+1 is posted only after
	// message k's send request completes. Open-loop flows inject on a timer
	// regardless of completions, which is what builds queue depth.
	Closed bool

	// GapNs is the open-loop inter-injection gap (ignored when Closed).
	GapNs int64

	// Stamp gives every message its own send buffer and invokes the
	// Runner's OnSend hook before posting, so tests can write per-message
	// sequence payloads even with several messages of one flow in flight.
	Stamp bool

	// Warmup excludes the first Warmup messages of the flow from the
	// latency histograms. They still run (and still invoke OnRecv); only
	// the measurement is skipped. Benchmarks use this to discard one-time
	// startup costs — first-touch buffer registration, rendezvous layout
	// flattening — that would otherwise dominate the tail.
	Warmup int
}

// Spec is a seeded workload mix. Flows() expands it deterministically.
type Spec struct {
	Seed  int64
	Ranks int
	Comms int // communicators to spread flows over (min 1)

	EagerFlows int   // latency-sensitive flow count
	BulkFlows  int   // bulk flow count
	Msgs       int   // messages per flow
	EagerBytes int64 // eager payload size (kept under the eager threshold)
	BulkBytes  int64 // bulk payload size (at or above the bulk threshold)

	// ClosedFrac is the fraction of flows paced closed-loop; the rest are
	// open-loop with GapNs spacing.
	ClosedFrac float64
	GapNs      int64

	// Explicit, when non-nil, is used verbatim instead of seeded expansion.
	Explicit []Flow
}

// DefaultSpec is a small mixed soak: 8 ranks, 3 communicators, short eager
// messages under bulk vector traffic.
func DefaultSpec() Spec {
	return Spec{
		Seed:       1,
		Ranks:      8,
		Comms:      3,
		EagerFlows: 12,
		BulkFlows:  6,
		Msgs:       8,
		EagerBytes: 2 << 10,
		BulkBytes:  256 << 10,
		ClosedFrac: 0.5,
		GapNs:      50_000,
	}
}

// Flows expands the spec into its deterministic flow list. The same Spec
// always yields the same flows, independent of backend or host.
func (s Spec) Flows() []Flow {
	if s.Explicit != nil {
		return s.Explicit
	}
	if s.Ranks < 2 {
		panic(fmt.Sprintf("traffic: %d ranks (need at least 2)", s.Ranks))
	}
	comms := s.Comms
	if comms < 1 {
		comms = 1
	}
	rng := rand.New(rand.NewSource(s.Seed))
	flows := make([]Flow, 0, s.EagerFlows+s.BulkFlows)
	add := func(bulk bool, bytes int64) {
		src := rng.Intn(s.Ranks)
		dst := (src + 1 + rng.Intn(s.Ranks-1)) % s.Ranks
		flows = append(flows, Flow{
			ID:     len(flows),
			Src:    src,
			Dst:    dst,
			Comm:   rng.Intn(comms),
			Count:  s.Msgs,
			Bytes:  bytes,
			Bulk:   bulk,
			Closed: rng.Float64() < s.ClosedFrac,
			GapNs:  s.GapNs,
		})
	}
	for i := 0; i < s.EagerFlows; i++ {
		add(false, s.EagerBytes)
	}
	for i := 0; i < s.BulkFlows; i++ {
		add(true, s.BulkBytes)
	}
	return flows
}

// Bulk vector geometry: 16-int32 blocks (64 B) on a 32-int32 stride, the
// half-dense layout the paper's vector benchmarks use.
const (
	vecBlock  = 16
	vecStride = 32
)

// shape resolves a flow's datatype, count, and buffer extent.
func shape(f Flow) (dt *datatype.Type, count int, extent int64) {
	if !f.Bulk {
		n := int(f.Bytes / 4)
		if n < 1 {
			n = 1
		}
		return datatype.Int32, n, int64(n) * 4
	}
	rows := int(f.Bytes / (vecBlock * 4))
	if rows < 1 {
		rows = 1
	}
	dt = datatype.Must(datatype.TypeVector(rows, vecBlock, vecStride, datatype.Int32))
	extent = (int64(rows-1)*vecStride + vecBlock) * 4
	return dt, 1, extent
}

// Payload reports the exact bytes flow f moves per message after rounding
// to its datatype grid.
func (f Flow) Payload() int64 {
	if !f.Bulk {
		_, n, _ := shape(f)
		return int64(n) * 4
	}
	rows := int(f.Bytes / (vecBlock * 4))
	if rows < 1 {
		rows = 1
	}
	return int64(rows) * vecBlock * 4
}

// fill writes a deterministic per-flow byte pattern over a buffer region.
func fill(m *mem.Memory, a mem.Addr, n int64, seed int) {
	b := m.Bytes(a, n)
	for i := range b {
		b[i] = byte(seed + i)
	}
}

// BucketDump is a histogram snapshot in golden-file-friendly form.
type BucketDump struct {
	N      int64   `json:"n"`
	Edges  []int64 `json:"edges,omitempty"`
	Counts []int64 `json:"counts,omitempty"`
}

// DumpHistogram snapshots a histogram's log2 buckets.
func DumpHistogram(h *stats.Histogram) BucketDump {
	edges, counts := h.Buckets()
	return BucketDump{N: h.Count(), Edges: edges, Counts: counts}
}
