// Package rtfab is the real-time concurrent implementation of the verbs
// contract in internal/verbs, the counterpart to the deterministic simulator
// in internal/ib.
//
// Each node (rank) is driven by its own goroutine. A node owns a private
// simtime.Engine used purely as a serialized executor: process coroutines,
// signals and CPU-cost accounting from the protocol layers run against it
// unchanged, but nothing sleeps on the wall clock — the node's virtual clock
// only orders its local events. Real concurrency exists only *between*
// nodes: every cross-node interaction (message arrival, RDMA execution,
// completion acks) is a closure enqueued into the target node's FIFO inbox
// and executed by that node's driver goroutine.
//
// This single-writer discipline is the backend's memory model: all writes to
// a node's arena, registration table and queue-pair state happen on that
// node's driver goroutine, so the schemes' actual payload copies are
// race-free by construction while still overlapping in real time across
// nodes. RDMA operations really move bytes: a write gathers from the
// initiator's arena on the initiator, and the responder's driver performs
// the registration check and the copy into its own arena; a read is the
// mirror image. Channel FIFO order per sender preserves the transport's
// non-overtaking guarantee, which the protocol layers' matching rules
// require.
//
// Termination uses quiescence detection rather than an event-queue drain:
// the fabric counts in-flight closures and per-node idleness, and Run
// returns once every driver is parked with nothing queued (or errors on a
// watchdog timeout or with blocked processes — the concurrent analogue of
// the simulator's deadlock report).
package rtfab

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// DefaultTimeout is the watchdog budget Run uses when given a zero timeout.
const DefaultTimeout = 30 * time.Second

// inbox is an unbounded FIFO closure queue with a one-slot wake channel.
// It must be unbounded: two drivers streaming RDMA traffic into each other
// ack every delivery back to the initiator, so with bounded queues each
// driver can block enqueueing into the other's full inbox — a distributed
// deadlock that has nothing to do with the protocol under test. Enqueue
// therefore never blocks; backpressure comes from the schemes' own credit
// and completion accounting, and the watchdog bounds true wedges.
type inbox struct {
	mu   sync.Mutex
	q    []func()
	wake chan struct{}
}

func newInbox() *inbox { return &inbox{wake: make(chan struct{}, 1)} }

// put appends fn and nudges the (single) consumer. Per-sender FIFO order is
// what the transport's non-overtaking guarantee rests on.
func (b *inbox) put(fn func()) {
	b.mu.Lock()
	b.q = append(b.q, fn)
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// take pops the oldest closure, or returns false if the queue is empty.
func (b *inbox) take() (func(), bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.q) == 0 {
		return nil, false
	}
	fn := b.q[0]
	b.q[0] = nil
	b.q = b.q[1:]
	return fn, true
}

func (b *inbox) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q)
}

// Fabric is a real-time fabric: a set of nodes exchanging work over
// goroutines and channels. Create nodes and connections first, then Run.
type Fabric struct {
	model    verbs.Model
	injector *fault.Injector
	nodes    []*Node

	// tracer receives host-CPU activity intervals; timestamps are wall-clock
	// nanoseconds since epoch (see WallClock). The Recorder is
	// concurrency-safe, so every driver goroutine records into it directly.
	tracer *trace.Recorder
	epoch  time.Time

	started bool
	quit    chan struct{}
	wg      sync.WaitGroup

	// inflight counts enqueued-but-not-yet-executed cross-node closures;
	// activity counts dequeues. Together with the per-node idle flags they
	// implement the quiescence check in awaitQuiesce.
	inflight atomic.Int64
	activity atomic.Int64
}

// New creates a fabric with the given cost model (used for structural limits
// and host-side accounting; timing is the wall clock).
func New(model verbs.Model) *Fabric {
	if model.MaxSGE <= 0 {
		model.MaxSGE = 1
	}
	return &Fabric{model: model, quit: make(chan struct{}), epoch: time.Now()}
}

// SetTracer attaches an activity recorder. Unlike the simulator's
// virtual-time traces, intervals carry wall-clock start stamps (relative to
// the fabric's construction) with the virtual CPU cost as their length —
// real concurrency across nodes, modeled cost per activity.
func (f *Fabric) SetTracer(t *trace.Recorder) { f.tracer = t }

// WallClock returns nanoseconds of real time since the fabric was created,
// the timestamp base for traces and histograms on this backend. Safe to call
// from any goroutine.
func (f *Fabric) WallClock() simtime.Time {
	return simtime.Time(time.Since(f.epoch))
}

// Model returns the fabric's cost model.
func (f *Fabric) Model() *verbs.Model { return &f.model }

// SetInjector attaches a fault injector shared by every node. The injector
// must be concurrency-safe (fault.Injector is). Pass nil to disable.
func (f *Fabric) SetInjector(in *fault.Injector) { f.injector = in }

// Injector returns the attached fault injector, or nil.
func (f *Fabric) Injector() *fault.Injector { return f.injector }

// Node is one rank's HCA and host: a private engine, a memory arena, and a
// driver goroutine that serializes all of the node's work. It implements
// verbs.HCA.
type Node struct {
	fab      *Fabric
	idx      int
	name     string
	mem      *mem.Memory
	eng      *simtime.Engine
	cpu      *simtime.Resource
	counters *stats.Counters
	inbox    *inbox
	idle     atomic.Bool
	nextQP   int
	nextWRID uint64
}

// AddNode attaches a node to the fabric. counters may be nil. Must be called
// before Run.
func (f *Fabric) AddNode(name string, memory *mem.Memory, counters *stats.Counters) *Node {
	if f.started {
		panic("rtfab: AddNode after Run")
	}
	if counters == nil {
		counters = &stats.Counters{}
	}
	n := &Node{
		fab:      f,
		idx:      len(f.nodes),
		name:     name,
		mem:      memory,
		eng:      simtime.NewEngine(),
		cpu:      simtime.NewResource(name + ".cpu"),
		counters: counters,
		inbox:    newInbox(),
	}
	f.nodes = append(f.nodes, n)
	return n
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// Index returns the node's position in the fabric.
func (n *Node) Index() int { return n.idx }

// Mem returns the node's memory arena.
func (n *Node) Mem() *mem.Memory { return n.mem }

// Counters returns the node's statistics counters.
func (n *Node) Counters() *stats.Counters { return n.counters }

// Model returns the fabric cost model.
func (n *Node) Model() *verbs.Model { return &n.fab.model }

// Injector returns the fabric's fault injector, or nil.
func (n *Node) Injector() *fault.Injector { return n.fab.injector }

// Engine returns the node's private engine — the serialized execution
// context all of this node's protocol work runs in.
func (n *Node) Engine() *simtime.Engine { return n.eng }

// WRID returns a fresh work-request ID, unique per node.
func (n *Node) WRID() uint64 {
	n.nextWRID++
	return n.nextWRID
}

// ChargeCPU reserves the host CPU for d on the node's virtual clock and
// returns the time the work finishes. The reservation orders host-side
// protocol steps exactly as on the simulator; it does not consume wall time.
func (n *Node) ChargeCPU(d simtime.Duration) simtime.Time {
	return n.ChargeCPUNamed(d, "host")
}

// ChargeCPUNamed is ChargeCPU with an activity label for the tracer.
func (n *Node) ChargeCPUNamed(d simtime.Duration, name string) simtime.Time {
	_, end := n.cpu.Acquire(n.eng.Now(), d)
	if t := n.fab.tracer; t != nil && d > 0 {
		at := n.fab.WallClock()
		t.Add(n.name, trace.LaneCPU, name, at, at+simtime.Time(d))
	}
	return end
}

// exec enqueues fn for execution on n's driver goroutine. FIFO per sender;
// never blocks (see inbox).
func (f *Fabric) exec(n *Node, fn func()) {
	f.inflight.Add(1)
	n.inbox.put(fn)
}

// drive is the node's driver loop: drain the private engine and the inbox,
// then block for cross-node work or shutdown.
func (n *Node) drive() {
	defer n.fab.wg.Done()
	for {
		for n.eng.Step() {
		}
		if fn, ok := n.inbox.take(); ok {
			n.fab.activity.Add(1)
			fn()
			n.fab.inflight.Add(-1)
			continue
		}
		n.idle.Store(true)
		// Recheck after publishing idleness: a put between the take above and
		// the Store would otherwise only be noticed via its wake token.
		if fn, ok := n.inbox.take(); ok {
			n.fab.activity.Add(1)
			n.idle.Store(false)
			fn()
			n.fab.inflight.Add(-1)
			continue
		}
		select {
		case <-n.inbox.wake:
			n.fab.activity.Add(1)
			n.idle.Store(false)
		case <-n.fab.quit:
			return
		}
	}
}

// Run starts every node's driver, waits until the fabric quiesces (all
// drivers idle, no closures in flight, no engine events pending), then stops
// the drivers and joins them. A zero timeout means DefaultTimeout. It
// returns an error if the watchdog expires first, or if quiescence is
// reached while spawned processes are still blocked (a distributed
// deadlock). Run may only be called once.
func (f *Fabric) Run(timeout time.Duration) error {
	if f.started {
		panic("rtfab: Run called twice")
	}
	f.started = true
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	for _, n := range f.nodes {
		f.wg.Add(1)
		go n.drive()
	}
	err := f.awaitQuiesce(time.Now().Add(timeout))
	close(f.quit)
	f.wg.Wait()
	if err != nil {
		return err
	}
	var blocked []string
	for _, n := range f.nodes {
		for _, name := range n.eng.Blocked() {
			blocked = append(blocked, n.name+"/"+name)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return fmt.Errorf("rtfab: deadlock: blocked processes: %s",
			strings.Join(blocked, ", "))
	}
	return nil
}

// awaitQuiesce polls until the fabric is quiescent or the deadline passes.
//
// Soundness: a node enqueues work only while running (idle=false), inflight
// is incremented before enqueue and decremented after execution, and every
// dequeue bumps activity before clearing idle. If two consecutive
// observations see inflight==0 and all nodes idle with no dequeue between
// them (activity unchanged), then no closure is queued or executing and no
// driver can create one — the fabric is quiescent.
func (f *Fabric) awaitQuiesce(deadline time.Time) error {
	for {
		a := f.activity.Load()
		if f.inflight.Load() == 0 && f.allIdle() &&
			f.activity.Load() == a && f.inflight.Load() == 0 && f.allIdle() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rtfab: watchdog timeout: %s", f.debugState())
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func (f *Fabric) allIdle() bool {
	for _, n := range f.nodes {
		if !n.idle.Load() {
			return false
		}
	}
	return true
}

// debugState summarizes fabric state for the watchdog error.
func (f *Fabric) debugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "inflight=%d", f.inflight.Load())
	for _, n := range f.nodes {
		fmt.Fprintf(&b, " %s(idle=%v queued=%d)", n.name, n.idle.Load(), n.inbox.len())
	}
	return b.String()
}

// Compile-time checks that the real-time fabric satisfies the verbs contract.
var (
	_ verbs.HCA = (*Node)(nil)
	_ verbs.QP  = (*QP)(nil)
	_ verbs.CQ  = (*CQ)(nil)
)
