package rtfab

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/verbs"
)

// pair builds a two-node fabric with polling CQs and one connected QP pair,
// with credits pre-posted on both sides.
func pair(t *testing.T, credits int) (*Fabric, [2]*Node, [2]verbs.QP, [4]verbs.CQ) {
	t.Helper()
	f := New(verbs.DefaultModel())
	var nodes [2]*Node
	for i := range nodes {
		m := mem.NewMemory(fmt.Sprintf("n%d", i), 4<<20)
		nodes[i] = f.AddNode(fmt.Sprintf("n%d", i), m, &stats.Counters{})
	}
	cqs := [4]verbs.CQ{nodes[0].NewCQ(), nodes[0].NewCQ(), nodes[1].NewCQ(), nodes[1].NewCQ()}
	q0, q1 := nodes[0].Connect(nodes[1], cqs[0], cqs[1], cqs[2], cqs[3])
	for i := 0; i < credits; i++ {
		q0.PostRecv(verbs.RecvWR{})
		q1.PostRecv(verbs.RecvWR{})
	}
	return f, nodes, [2]verbs.QP{q0, q1}, cqs
}

func TestChannelSendDelivers(t *testing.T) {
	f, nodes, qps, cqs := pair(t, 4)
	var got []byte
	nodes[0].Engine().Spawn("sender", func(p *simtime.Process) {
		if err := qps[0].PostSend(verbs.SendWR{WRID: 1, Op: verbs.OpSend, Inline: []byte("hi rt"), Imm: 9}); err != nil {
			t.Error(err)
			return
		}
		e := cqs[0].WaitPoll(p)
		if e.Err != nil || e.WRID != 1 || e.Op != verbs.OpSend {
			t.Errorf("bad send CQE: %+v", e)
		}
	})
	nodes[1].Engine().Spawn("receiver", func(p *simtime.Process) {
		e := cqs[3].WaitPoll(p)
		if e.Err != nil || e.Op != verbs.OpRecv || !e.HasImm || e.Imm != 9 {
			t.Errorf("bad recv CQE: %+v", e)
		}
		got = append([]byte(nil), e.Data...)
	})
	if err := f.Run(0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hi rt" {
		t.Fatalf("delivered %q", got)
	}
	if nodes[1].Counters().Completions == 0 {
		t.Fatal("no completions counted on receiver")
	}
}

func TestRDMAWriteWithImm(t *testing.T) {
	f, nodes, qps, cqs := pair(t, 4)
	src := nodes[0].Mem().MustAlloc(4096)
	dst := nodes[1].Mem().MustAlloc(4096)
	for i, b := range nodes[0].Mem().Bytes(src, 4096) {
		_ = b
		nodes[0].Mem().Bytes(src, 4096)[i] = byte(i * 7)
	}
	lr, err := nodes[0].Mem().Reg().Register(src, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := nodes[1].Mem().Reg().Register(dst, 4096)
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].Engine().Spawn("writer", func(p *simtime.Process) {
		wr := verbs.SendWR{
			WRID: 2, Op: verbs.OpRDMAWriteImm,
			SGL:        []verbs.SGE{{Addr: src, Len: 4096, Key: lr.LKey}},
			RemoteAddr: dst, RKey: rr.RKey, Imm: 77,
		}
		if err := qps[0].PostSend(wr); err != nil {
			t.Error(err)
			return
		}
		e := cqs[0].WaitPoll(p)
		if e.Err != nil || e.Bytes != 4096 {
			t.Errorf("bad write CQE: %+v", e)
		}
	})
	var imm uint32
	nodes[1].Engine().Spawn("watcher", func(p *simtime.Process) {
		e := cqs[3].WaitPoll(p)
		if e.Err != nil || !e.HasImm {
			t.Errorf("bad imm CQE: %+v", e)
		}
		imm = e.Imm
	})
	if err := f.Run(0); err != nil {
		t.Fatal(err)
	}
	if imm != 77 {
		t.Fatalf("imm = %d", imm)
	}
	want := nodes[0].Mem().Bytes(src, 4096)
	if !bytes.Equal(nodes[1].Mem().Bytes(dst, 4096), want) {
		t.Fatal("write did not deliver identical bytes")
	}
}

func TestRDMARead(t *testing.T) {
	f, nodes, qps, cqs := pair(t, 4)
	local := nodes[0].Mem().MustAlloc(2048)
	remote := nodes[1].Mem().MustAlloc(2048)
	rbuf := nodes[1].Mem().Bytes(remote, 2048)
	for i := range rbuf {
		rbuf[i] = byte(255 - i%251)
	}
	lr, _ := nodes[0].Mem().Reg().Register(local, 2048)
	rr, _ := nodes[1].Mem().Reg().Register(remote, 2048)
	nodes[0].Engine().Spawn("reader", func(p *simtime.Process) {
		wr := verbs.SendWR{
			WRID: 3, Op: verbs.OpRDMARead,
			SGL:        []verbs.SGE{{Addr: local, Len: 1024, Key: lr.LKey}, {Addr: local + 1024, Len: 1024, Key: lr.LKey}},
			RemoteAddr: remote, RKey: rr.RKey,
		}
		if err := qps[0].PostSend(wr); err != nil {
			t.Error(err)
			return
		}
		e := cqs[0].WaitPoll(p)
		if e.Err != nil || e.Op != verbs.OpRDMARead || e.Bytes != 2048 {
			t.Errorf("bad read CQE: %+v", e)
		}
	})
	if err := f.Run(0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nodes[0].Mem().Bytes(local, 2048), rbuf) {
		t.Fatal("read did not scatter identical bytes")
	}
}

func TestRemoteAccessErrorCompletes(t *testing.T) {
	f, nodes, qps, cqs := pair(t, 4)
	src := nodes[0].Mem().MustAlloc(512)
	dst := nodes[1].Mem().MustAlloc(512)
	lr, _ := nodes[0].Mem().Reg().Register(src, 512)
	// Deliberately wrong rkey: the responder must reject and the initiator
	// must see an error CQE rather than hang.
	nodes[0].Engine().Spawn("writer", func(p *simtime.Process) {
		wr := verbs.SendWR{
			WRID: 4, Op: verbs.OpRDMAWrite,
			SGL:        []verbs.SGE{{Addr: src, Len: 512, Key: lr.LKey}},
			RemoteAddr: dst, RKey: 9999,
		}
		if err := qps[0].PostSend(wr); err != nil {
			t.Error(err)
			return
		}
		e := cqs[0].WaitPoll(p)
		if e.Err == nil {
			t.Error("expected error CQE for bad rkey")
		}
	})
	if err := f.Run(0); err != nil {
		t.Fatal(err)
	}
}

// Two nodes ping-pong concurrently over channel semantics while a third
// pair of processes hammers RDMA writes; with -race this exercises the
// cross-goroutine delivery paths.
func TestConcurrentTraffic(t *testing.T) {
	f := New(verbs.DefaultModel())
	const n = 4
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = f.AddNode(fmt.Sprintf("n%d", i), mem.NewMemory(fmt.Sprintf("n%d", i), 4<<20), nil)
	}
	// Full mesh of QPs; one shared polling CQ per node carries both send
	// completions and arrivals, so a waiting process wakes on either.
	cq := make([]verbs.CQ, n)
	for i := range nodes {
		cq[i] = nodes[i].NewCQ()
	}
	qps := make([][]verbs.QP, n)
	for i := range qps {
		qps[i] = make([]verbs.QP, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			qa, qb := nodes[i].Connect(nodes[j], cq[i], cq[i], cq[j], cq[j])
			qa.SetUserData(j)
			qb.SetUserData(i)
			qps[i][j], qps[j][i] = qa, qb
			for k := 0; k < 64; k++ {
				qa.PostRecv(verbs.RecvWR{})
				qb.PostRecv(verbs.RecvWR{})
			}
		}
	}
	const rounds = 50
	var delivered atomic.Int64
	for i := 0; i < n; i++ {
		i := i
		nodes[i].Engine().Spawn(fmt.Sprintf("rank%d", i), func(p *simtime.Process) {
			next := (i + 1) % n
			payload := []byte(fmt.Sprintf("from %d", i))
			for r := 0; r < rounds; r++ {
				if err := qps[i][next].PostSend(verbs.SendWR{Op: verbs.OpSend, Inline: payload}); err != nil {
					t.Error(err)
					return
				}
				// One send completion and one arrival per round (in any order,
				// possibly from different rounds).
				for got := 0; got < 2; got++ {
					e := cq[i].WaitPoll(p)
					if e.Err != nil {
						t.Error(e.Err)
					}
					if e.Op == verbs.OpRecv {
						e.QP.PostRecv(verbs.RecvWR{})
						delivered.Add(1)
					}
				}
			}
		})
	}
	if err := f.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if delivered.Load() != int64(n*rounds) {
		t.Fatalf("delivered %d messages, want %d", delivered.Load(), n*rounds)
	}
}

// A process that waits forever must surface as a deadlock error, not a hang.
func TestDeadlockDetection(t *testing.T) {
	f, nodes, _, cqs := pair(t, 1)
	_ = cqs
	nodes[0].Engine().Spawn("stuck", func(p *simtime.Process) {
		var sig simtime.Signal
		p.Wait(&sig) // never broadcast
	})
	err := f.Run(2 * time.Second)
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}
