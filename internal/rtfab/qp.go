package rtfab

import (
	"fmt"
	"sync/atomic"

	"repro/internal/simtime"
	"repro/internal/verbs"
)

// CQ is a completion queue on one node. All methods run on the owning
// node's execution context; completions pushed by remote operations arrive
// as inbox closures, so they too execute on the owner's driver.
type CQ struct {
	node    *Node
	queue   []verbs.CQE
	handler func(verbs.CQE)
	sig     simtime.Signal
}

// NewCQ creates a completion queue on this node (verbs.HCA).
func (n *Node) NewCQ() verbs.CQ { return &CQ{node: n} }

// SetHandler switches the CQ to handler dispatch. Each entry is delivered in
// its own engine event after reserving CompletionCost on the node's virtual
// CPU, exactly like the simulator, so handlers never reenter posting code.
func (cq *CQ) SetHandler(fn func(verbs.CQE)) {
	if len(cq.queue) > 0 {
		panic("rtfab: SetHandler on non-empty CQ")
	}
	cq.handler = fn
}

// push delivers a completion. Must run on the owning node's driver.
func (cq *CQ) push(e verbs.CQE) {
	atomic.AddInt64(&cq.node.counters.Completions, 1)
	if cq.handler != nil {
		end := cq.node.ChargeCPUNamed(cq.node.Model().CompletionCost, "cqe")
		cq.node.eng.At(end, func() { cq.handler(e) })
		return
	}
	cq.queue = append(cq.queue, e)
	cq.sig.Broadcast()
}

// Poll removes and returns the oldest completion, if any.
func (cq *CQ) Poll() (verbs.CQE, bool) {
	if len(cq.queue) == 0 {
		return verbs.CQE{}, false
	}
	e := cq.queue[0]
	cq.queue = cq.queue[1:]
	return e, true
}

// WaitPoll blocks the process until a completion is available, then returns
// it, charging the completion-handling CPU cost.
func (cq *CQ) WaitPoll(p *simtime.Process) verbs.CQE {
	for len(cq.queue) == 0 {
		p.Wait(&cq.sig)
	}
	e := cq.queue[0]
	cq.queue = cq.queue[1:]
	end := cq.node.ChargeCPU(cq.node.Model().CompletionCost)
	p.WaitUntil(end)
	return e
}

// Len reports the number of queued completions (always 0 in handler mode).
func (cq *CQ) Len() int { return len(cq.queue) }

// arrival is a payload or notification waiting for a receive credit.
type arrival struct {
	data   []byte
	bytes  int64
	imm    uint32
	hasImm bool
}

// QP is one end of a reliable connection. Queue state (credits, stalled
// arrivals) is owned by the node's driver goroutine.
type QP struct {
	node     *Node
	num      int
	peer     *QP
	sendCQ   *CQ
	recvCQ   *CQ
	recvQ    []verbs.RecvWR
	stalled  []arrival
	userData int
}

// Connect implements verbs.HCA: it creates a connected (RC) queue pair
// between this node and peer, which must be an rtfab.Node on the same
// fabric. Must be called before Run.
func (n *Node) Connect(peer verbs.HCA, sendCQ, recvCQ, peerSendCQ, peerRecvCQ verbs.CQ) (verbs.QP, verbs.QP) {
	p, ok := peer.(*Node)
	if !ok {
		panic("rtfab: Connect to a non-rtfab node")
	}
	if n.fab != p.fab {
		panic("rtfab: Connect across fabrics")
	}
	if n.fab.started {
		panic("rtfab: Connect after Run")
	}
	qa := &QP{node: n, num: n.nextQP, sendCQ: sendCQ.(*CQ), recvCQ: recvCQ.(*CQ)}
	n.nextQP++
	qb := &QP{node: p, num: p.nextQP, sendCQ: peerSendCQ.(*CQ), recvCQ: peerRecvCQ.(*CQ)}
	p.nextQP++
	qa.peer, qb.peer = qb, qa
	return qa, qb
}

// Num returns the QP number (unique per node).
func (qp *QP) Num() int { return qp.num }

// UserData returns the tag stored with SetUserData.
func (qp *QP) UserData() int { return qp.userData }

// SetUserData stores an integer tag on the QP for the owning protocol layer.
func (qp *QP) SetUserData(v int) { qp.userData = v }

// PostRecv posts a receive credit. If arrivals were stalled waiting for
// credits they are delivered now, in arrival order.
func (qp *QP) PostRecv(wr verbs.RecvWR) {
	atomic.AddInt64(&qp.node.counters.RecvsPosted, 1)
	qp.recvQ = append(qp.recvQ, wr)
	for len(qp.stalled) > 0 && len(qp.recvQ) > 0 {
		a := qp.stalled[0]
		qp.stalled = qp.stalled[1:]
		qp.completeArrival(a)
	}
}

// RecvCredits reports the number of posted, unconsumed receive credits.
func (qp *QP) RecvCredits() int { return len(qp.recvQ) }

// PostSend posts one work request.
func (qp *QP) PostSend(wr verbs.SendWR) error {
	return qp.post([]verbs.SendWR{wr}, false)
}

// PostSendList posts a list of work requests in one operation.
func (qp *QP) PostSendList(wrs []verbs.SendWR) error {
	return qp.post(wrs, true)
}

func (qp *QP) post(wrs []verbs.SendWR, list bool) error {
	if len(wrs) == 0 {
		return nil
	}
	n := qp.node

	// MaxPostBatch bounds descriptors per doorbell; it is distinct from
	// MaxSGE, which bounds one descriptor's gather list.
	if m := n.Model().MaxPostBatch; list && m > 0 && len(wrs) > m {
		return fmt.Errorf("rtfab %s qp%d: list post of %d descriptors exceeds MaxPostBatch %d",
			n.name, qp.num, len(wrs), m)
	}

	// Validate everything before launching anything, so a bad descriptor in
	// a list fails the whole post (as ibv_post_send does).
	for i := range wrs {
		if err := qp.validate(&wrs[i]); err != nil {
			return fmt.Errorf("rtfab %s qp%d: %w", n.name, qp.num, err)
		}
	}

	// Injected post failures; channel-semantics sends are exempt so control
	// traffic keeps the transport's reliable ordering (see internal/ib).
	if inj := n.fab.injector; inj != nil && wrs[0].Op != verbs.OpSend {
		if err := inj.PostFault(); err != nil {
			return fmt.Errorf("rtfab %s qp%d: post: %w", n.name, qp.num, err)
		}
	}

	// Doorbell batching: a fault-free all-write list crosses the node
	// boundary as ONE delivery closure plus ONE ack closure instead of a
	// pair per descriptor — the real-time analogue of the simulator's
	// per-entry list-post discount, and where batching buys its wall-clock
	// win. Fault runs keep per-descriptor launches so every descriptor gets
	// its own injected outcome.
	batch := list && len(wrs) > 1 && n.fab.injector == nil && allWrites(wrs)

	c := n.counters
	if list {
		atomic.AddInt64(&c.ListPosts, 1)
	}
	for i := range wrs {
		wr := &wrs[i]
		atomic.AddInt64(&c.DescriptorsPosted, 1)
		atomic.AddInt64(&c.SGEsPosted, int64(len(wr.SGL)))
		if wr.Lane != 0 {
			atomic.AddInt64(&c.LaneBulkDescs, 1)
		}
		switch wr.Op {
		case verbs.OpSend:
			atomic.AddInt64(&c.SendsPosted, 1)
		case verbs.OpRDMAWrite, verbs.OpRDMAWriteImm:
			atomic.AddInt64(&c.RDMAWritesPosted, 1)
			if wr.Op == verbs.OpRDMAWriteImm {
				atomic.AddInt64(&c.ImmediatesSent, 1)
			}
		case verbs.OpRDMARead:
			atomic.AddInt64(&c.RDMAReadsPosted, 1)
		}
		if !list {
			atomic.AddInt64(&c.ListPosts, 1)
		}
		n.cpu.Acquire(n.eng.Now(), n.Model().PostTime(i, len(wr.SGL), list))
		if !batch {
			qp.launch(*wr)
		}
	}
	if batch {
		qp.launchWriteBatch(wrs)
	}
	return nil
}

// allWrites reports whether every descriptor is an RDMA write (with or
// without immediate), the only shape the batched delivery handles.
func allWrites(wrs []verbs.SendWR) bool {
	for i := range wrs {
		if wrs[i].Op != verbs.OpRDMAWrite && wrs[i].Op != verbs.OpRDMAWriteImm {
			return false
		}
	}
	return true
}

func (qp *QP) validate(wr *verbs.SendWR) error {
	n := qp.node
	switch wr.Op {
	case verbs.OpSend:
		if len(wr.SGL) != 0 {
			return fmt.Errorf("OpSend carries inline payloads only")
		}
		return nil
	case verbs.OpRDMAWrite, verbs.OpRDMAWriteImm:
		total, err := validateSGL(n, wr.SGL)
		if err != nil {
			return err
		}
		// Remote access rights are checked at delivery on the responder's
		// driver; the target range must at least be a plausible address.
		// (Memory bounds are immutable, so this cross-node read is safe.)
		if err := qp.peer.node.mem.CheckRange(wr.RemoteAddr, total); err != nil {
			return err
		}
		return nil
	case verbs.OpRDMARead:
		if _, err := validateSGL(n, wr.SGL); err != nil {
			return err
		}
		return nil
	default:
		return fmt.Errorf("bad opcode %v", wr.Op)
	}
}

// validateSGL checks every SGE against the local registration table and
// returns the total byte length.
func validateSGL(n *Node, sgl []verbs.SGE) (int64, error) {
	var total int64
	for _, s := range sgl {
		if s.Len < 0 {
			return 0, fmt.Errorf("rtfab %s: negative SGE length", n.name)
		}
		if s.Len == 0 {
			continue
		}
		if err := n.mem.Reg().CheckAccess(s.Key, s.Addr, s.Len); err != nil {
			return 0, err
		}
		total += s.Len
	}
	return total, nil
}

// launch executes one validated descriptor. The payload is gathered on the
// initiator's driver (its own arena); delivery, registration checks and the
// landing copy run on the responder's driver; the ack closure returns to the
// initiator's driver to push the send completion. Channel FIFO order per
// sender gives the transport's non-overtaking guarantee.
func (qp *QP) launch(wr verbs.SendWR) {
	n := qp.node
	fab := n.fab
	peer := qp.peer

	// Injected CQE errors: the descriptor is consumed, no data moves, and
	// the initiator sees an error completion asynchronously. Channel-
	// semantics sends are exempt (see post).
	if inj := fab.injector; inj != nil && wr.Op != verbs.OpSend {
		if ferr := inj.CQEFault(); ferr != nil {
			err := fmt.Errorf("rtfab %s qp%d: %v failed: %w", n.name, qp.num, wr.Op, ferr)
			wrid, op := wr.WRID, wr.Op
			n.eng.Schedule(0, func() {
				qp.sendCQ.push(verbs.CQE{QP: qp, WRID: wrid, Op: op, Err: err})
			})
			return
		}
	}

	switch wr.Op {
	case verbs.OpSend:
		payload := append([]byte(nil), wr.Inline...)
		size := int64(len(payload))
		wrid, imm := wr.WRID, wr.Imm
		fab.exec(peer.node, func() {
			peer.arrive(arrival{data: payload, bytes: size, imm: imm, hasImm: true})
			// Ack after delivery: send completion implies the message reached
			// the peer, matching the simulator's timing order.
			fab.exec(n, func() {
				qp.sendCQ.push(verbs.CQE{QP: qp, WRID: wrid, Op: verbs.OpSend, Bytes: size})
			})
		})

	case verbs.OpRDMAWrite, verbs.OpRDMAWriteImm:
		// Snapshot the gather list at launch; hardware requires the source
		// stable until completion and our protocols honor that.
		var size int64
		for _, s := range wr.SGL {
			size += s.Len
		}
		payload := make([]byte, 0, size)
		for _, s := range wr.SGL {
			if s.Len > 0 {
				payload = append(payload, n.mem.Bytes(s.Addr, s.Len)...)
			}
		}
		wrcopy := wr
		fab.exec(peer.node, func() { qp.deliverWrite(wrcopy, payload, size) })

	case verbs.OpRDMARead:
		var size int64
		for _, s := range wr.SGL {
			size += s.Len
		}
		wrcopy := wr
		fab.exec(peer.node, func() { qp.serveRead(wrcopy, size) })
	}
}

// launchWriteBatch executes a validated all-write doorbell batch: the whole
// batch crosses to the responder in one inbox closure (per-descriptor
// protection checks, copies, and immediate arrivals, in posting order), and
// one ack closure returns every send completion. Semantically identical to
// launching each write alone — same checks, same delivery order — but with
// two cross-goroutine hops per batch instead of two per descriptor.
//
// Unlike the single-descriptor launch, the batch carries gather *lists*,
// not materialized payloads: the responder copies straight from the
// initiator's arena (gather DMA), skipping the staging copy. That is safe
// for the same reason real RDMA is: the source must stay stable until the
// send completion, which our protocols honor, and the inbox hand-off
// orders the initiator's writes before the responder's reads.
func (qp *QP) launchWriteBatch(wrs []verbs.SendWR) {
	n := qp.node
	fab := n.fab
	peer := qp.peer
	items := make([]verbs.SendWR, len(wrs))
	copy(items, wrs)
	fab.exec(peer.node, func() {
		acks := make([]verbs.CQE, len(items))
		for i := range items {
			wr := &items[i]
			var size int64
			for _, s := range wr.SGL {
				size += s.Len
			}
			if err := peer.node.mem.Reg().CheckAccess(wr.RKey, wr.RemoteAddr, size); err != nil {
				acks[i] = verbs.CQE{QP: qp, WRID: wr.WRID, Op: wr.Op, Bytes: size,
					Err: fmt.Errorf("remote access error: %w", err)}
				continue
			}
			dst := peer.node.mem.Bytes(wr.RemoteAddr, size)
			for _, s := range wr.SGL {
				if s.Len > 0 {
					dst = dst[copy(dst, n.mem.Bytes(s.Addr, s.Len)):]
				}
			}
			if wr.Op == verbs.OpRDMAWriteImm {
				peer.arrive(arrival{bytes: size, imm: wr.Imm, hasImm: true})
			}
			acks[i] = verbs.CQE{QP: qp, WRID: wr.WRID, Op: wr.Op, Bytes: size}
		}
		fab.exec(n, func() {
			for _, e := range acks {
				qp.sendCQ.push(e)
			}
		})
	})
}

// deliverWrite lands an RDMA write. Runs on the responder's driver.
func (qp *QP) deliverWrite(wr verbs.SendWR, payload []byte, size int64) {
	n := qp.node
	fab := n.fab
	peer := qp.peer
	// Responder-side protection check against the responder's table.
	if err := peer.node.mem.Reg().CheckAccess(wr.RKey, wr.RemoteAddr, size); err != nil {
		werr := fmt.Errorf("remote access error: %w", err)
		fab.exec(n, func() {
			qp.sendCQ.push(verbs.CQE{QP: qp, WRID: wr.WRID, Op: wr.Op, Bytes: size, Err: werr})
		})
		return
	}
	copy(peer.node.mem.Bytes(wr.RemoteAddr, size), payload)
	if wr.Op == verbs.OpRDMAWriteImm {
		peer.arrive(arrival{bytes: size, imm: wr.Imm, hasImm: true})
	}
	// Ack to the initiator; injected delays defer the completion on the
	// initiator's virtual clock without reordering the delivery above.
	var delay simtime.Duration
	if inj := fab.injector; inj != nil {
		delay = inj.Delay()
	}
	fab.exec(n, func() {
		if delay > 0 {
			n.eng.Schedule(delay, func() {
				qp.sendCQ.push(verbs.CQE{QP: qp, WRID: wr.WRID, Op: wr.Op, Bytes: size})
			})
			return
		}
		qp.sendCQ.push(verbs.CQE{QP: qp, WRID: wr.WRID, Op: wr.Op, Bytes: size})
	})
}

// serveRead executes the responder half of an RDMA read (runs on the
// responder's driver), then ships the bytes back to the initiator, whose
// driver scatters them into the local gather list.
func (qp *QP) serveRead(wr verbs.SendWR, size int64) {
	n := qp.node
	fab := n.fab
	peer := qp.peer
	if err := peer.node.mem.Reg().CheckAccess(wr.RKey, wr.RemoteAddr, size); err != nil {
		rerr := fmt.Errorf("remote access error: %w", err)
		fab.exec(n, func() {
			qp.sendCQ.push(verbs.CQE{QP: qp, WRID: wr.WRID, Op: verbs.OpRDMARead, Bytes: size, Err: rerr})
		})
		return
	}
	data := append([]byte(nil), peer.node.mem.Bytes(wr.RemoteAddr, size)...)
	var delay simtime.Duration
	if inj := fab.injector; inj != nil {
		delay = inj.Delay()
	}
	fab.exec(n, func() {
		var off int64
		for _, s := range wr.SGL {
			if s.Len <= 0 {
				continue
			}
			copy(n.mem.Bytes(s.Addr, s.Len), data[off:off+s.Len])
			off += s.Len
		}
		if delay > 0 {
			n.eng.Schedule(delay, func() {
				qp.sendCQ.push(verbs.CQE{QP: qp, WRID: wr.WRID, Op: verbs.OpRDMARead, Bytes: size})
			})
			return
		}
		qp.sendCQ.push(verbs.CQE{QP: qp, WRID: wr.WRID, Op: verbs.OpRDMARead, Bytes: size})
	})
}

// arrive delivers a channel-semantics payload or an immediate notification,
// consuming a receive credit or stalling until one is posted. Runs on the
// owning node's driver.
func (qp *QP) arrive(a arrival) {
	if len(qp.recvQ) == 0 {
		qp.stalled = append(qp.stalled, a)
		return
	}
	qp.completeArrival(a)
}

func (qp *QP) completeArrival(a arrival) {
	rwr := qp.recvQ[0]
	qp.recvQ = qp.recvQ[1:]
	qp.recvCQ.push(verbs.CQE{
		QP:     qp,
		WRID:   rwr.WRID,
		Op:     verbs.OpRecv,
		Bytes:  a.bytes,
		Imm:    a.imm,
		HasImm: a.hasImm,
		Data:   a.data,
	})
}
