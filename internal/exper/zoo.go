package exper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/simtime"
)

// The layout zoo stresses the scheme crossover question — "which transfer
// scheme wins for which memory layout?" — on every backend at once. The
// paper's own evaluation (Sections 8.2-8.3) sticks to regular vectors and
// one struct; Eijkhout's datatype benchmarks argue the interesting regime is
// everything else: irregular block distributions, nested (vector-of-vector)
// types, large-stride single-element columns, and pathological tiny-run
// layouts where per-run overheads dominate per-byte ones. This battery ports
// that zoo and runs it over layout x scheme x backend:
//
//   - sim: the modeled InfiniBand fabric (wire + NIC + copy costs),
//   - shm: the shared-memory fabric (copy costs only, zero link terms),
//   - rt: the real-time fabric (host wall-clock, machine-dependent).
//
// The point of the cross-backend matrix is that the winner is not a property
// of the layout alone: a scheme that pays descriptors to avoid copies wins
// where copies are the only cost (shm) and loses where per-descriptor wire
// latency piles up (sim, rt). BENCH_zoo.json records per-backend winners and
// the layouts where backends disagree ("flips").
//
// Sim and shm rows run on virtual time and are bit-for-bit deterministic;
// `make zoo-guard` pins them byte-for-byte. rt rows are wall-clock
// spot-checks and exempt.
const (
	zooEagerThreshold = 1 << 10   // rendezvous starts at 1 KB: every zoo layout routes through the schemes
	zooMem            = 256 << 20 // per-rank arena: the large-stride column spans ~17 MB per buffer
	zooWarmup         = 1
	zooIters          = 4
)

// zooSchemes is the full scheme axis of the sweep.
var zooSchemes = []core.Scheme{
	core.SchemeGeneric, core.SchemeBCSPUP, core.SchemeRWGUP,
	core.SchemePRRS, core.SchemeMultiW,
}

// zooBackendOrder fixes presentation order: modeled backends first.
var zooBackendOrder = []string{mpi.BackendSim, mpi.BackendSHM, mpi.BackendRT}

// ZooLayout is one memory layout of the zoo battery.
type ZooLayout struct {
	Name string
	Desc string
	DT   *datatype.Type
}

// ZooLayouts returns the battery: Eijkhout's irregular/nested/strided/tiny
// cases plus a contiguous control, all sized past the eager threshold so the
// rendezvous scheme under test carries the payload.
func ZooLayouts() []ZooLayout {
	// Irregular block distribution: 256 blocks whose lengths cycle through
	// 1..61 ints (deterministically, via i*7 mod 61) with a 3-int gap after
	// each — no two adjacent blocks the same size, ~31 KB payload.
	var lens, displs []int
	pos := 0
	for i := 0; i < 256; i++ {
		l := 1 + (i*7)%61
		lens = append(lens, l)
		displs = append(displs, pos)
		pos += l + 3
	}
	irregular := datatype.Must(datatype.TypeIndexed(lens, displs, datatype.Int32))

	// Nested vector: a strided vector of strided vectors (8 runs of 4 ints
	// inside, 64 inner types spaced 512 B outside) — 512 runs, 8 KB payload.
	inner := datatype.Must(datatype.TypeVector(8, 4, 12, datatype.Int32))
	nested := datatype.Must(datatype.TypeHvector(64, 1, 512, inner))

	// Large-stride column: one float64 per 4 KB row over 4096 rows — the
	// worst bytes-per-run ratio a matrix column can produce (32 KB payload
	// scattered over a ~17 MB span).
	column := datatype.Must(datatype.TypeVector(4096, 1, 512, datatype.Float64))

	// Tiny-run pathological case: 8192 single-byte runs on a 4-byte stride.
	// Per-run costs (descriptors, copy startups) dwarf the 8 KB of payload.
	tiny := datatype.Must(datatype.TypeVector(8192, 1, 4, datatype.Byte))

	// Contiguous control: same order of payload, one run.
	contig := datatype.Must(datatype.TypeContiguous(16384, datatype.Int32))

	return []ZooLayout{
		{"irregular-block", "256 indexed int blocks, lengths 1..61, 3-int gaps", irregular},
		{"nested-vector", "hvector(64) of vector(8 x 4 ints), 512 runs", nested},
		{"col-stride", "matrix column: 4096 x 1 float64 on a 4 KB row stride", column},
		{"tiny-run", "8192 x 1-byte runs on a 4-byte stride", tiny},
		{"big-block", "contiguous 64 KB control", contig},
	}
}

// ZooRow is one (backend, layout, scheme) ping-pong measurement. Modeled
// backends (sim, shm) fill VirtualUS; rt fills WallUS.
type ZooRow struct {
	Backend   string  `json:"backend"`
	Layout    string  `json:"layout"`
	Scheme    string  `json:"scheme"`
	Bytes     int64   `json:"bytes"` // payload bytes per message
	Runs      int     `json:"runs"`  // contiguous runs per message
	Iters     int     `json:"iters"`
	VirtualUS float64 `json:"virtual_us,omitempty"` // modeled one-way latency
	WallUS    float64 `json:"wall_us,omitempty"`    // rt: host wall one-way latency
}

// latencyUS is the row's ranking metric: modeled time on the virtual-time
// backends, wall time on rt.
func (r ZooRow) latencyUS() float64 {
	if r.Backend == mpi.BackendRT {
		return r.WallUS
	}
	return r.VirtualUS
}

// ZooWinner records the lowest-latency scheme for one (backend, layout)
// cell of the zoo matrix.
type ZooWinner struct {
	Backend   string  `json:"backend"`
	Layout    string  `json:"layout"`
	Scheme    string  `json:"scheme"`
	LatencyUS float64 `json:"latency_us"`
}

// ZooFlip is a layout where the per-backend winners disagree — the sweep's
// evidence that scheme choice must be backend-aware (the motivation for the
// tuner's per-backend tables).
type ZooFlip struct {
	Layout string `json:"layout"`
	Sim    string `json:"sim,omitempty"`
	SHM    string `json:"shm,omitempty"`
	RT     string `json:"rt,omitempty"`
}

// zooOne times one (backend, layout, scheme) ping-pong.
func zooOne(backend string, scheme core.Scheme, lay ZooLayout) (ZooRow, error) {
	cfg := worldConfig(2, scheme, zooMem, func(c *mpi.Config) {
		c.Backend = backend
		c.RTTimeout = 2 * time.Minute
		c.Core.EagerThreshold = zooEagerThreshold
	})
	w, err := mpi.NewWorld(cfg)
	if err != nil {
		return ZooRow{}, err
	}
	var virtual simtime.Duration
	var wall time.Duration
	err = w.Run(func(p *mpi.Proc) error {
		buf := allocFor(p, lay.DT, 1)
		if p.Rank() == 0 {
			fillBuf(p, buf, lay.DT, 1, 1)
			round := func() error {
				if err := p.Send(buf, 1, lay.DT, 1, 0); err != nil {
					return err
				}
				_, err := p.Recv(buf, 1, lay.DT, 1, 0)
				return err
			}
			for i := 0; i < zooWarmup; i++ {
				if err := round(); err != nil {
					return err
				}
			}
			t0, w0 := p.Now(), time.Now()
			for i := 0; i < zooIters; i++ {
				if err := round(); err != nil {
					return err
				}
			}
			virtual, wall = p.Now().Sub(t0), time.Since(w0)
			return nil
		}
		for i := 0; i < zooWarmup+zooIters; i++ {
			if _, err := p.Recv(buf, 1, lay.DT, 0, 0); err != nil {
				return err
			}
			if err := p.Send(buf, 1, lay.DT, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return ZooRow{}, fmt.Errorf("zoo %s/%s on %s: %w", lay.Name, scheme, backend, err)
	}
	blocks, _ := datatype.Flatten(lay.DT, 1, 0)
	row := ZooRow{
		Backend: backend,
		Layout:  lay.Name,
		Scheme:  scheme.String(),
		Bytes:   lay.DT.Size(),
		Runs:    len(blocks),
		Iters:   zooIters,
	}
	if backend == mpi.BackendRT {
		row.WallUS = float64(wall.Nanoseconds()) / 1e3 / float64(2*zooIters)
	} else {
		row.VirtualUS = virtual.Micros() / float64(2*zooIters)
	}
	return row, nil
}

// ZooSweep runs the layout zoo on the requested backends ("sim", "shm",
// "rt"): every layout under every scheme, 5 x 5 rows per backend.
func ZooSweep(backends []string) ([]ZooRow, error) {
	var rows []ZooRow
	for _, backend := range backends {
		for _, lay := range ZooLayouts() {
			for _, scheme := range zooSchemes {
				row, err := zooOne(backend, scheme, lay)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
				// The column layout's worlds map multi-hundred-MB arenas;
				// collect them before the next world builds (see scale.go).
				runtime.GC()
				runtime.GC()
			}
		}
	}
	return rows, nil
}

// ZooWinners reduces the rows to the lowest-latency scheme per
// (backend, layout) cell.
func ZooWinners(rows []ZooRow) []ZooWinner {
	type cell struct {
		backend string
		layout  string
	}
	best := map[cell]ZooRow{}
	for _, r := range rows {
		c := cell{r.Backend, r.Layout}
		if b, ok := best[c]; !ok || r.latencyUS() < b.latencyUS() {
			best[c] = r
		}
	}
	order := func(s string, axis []string) int {
		for i, v := range axis {
			if v == s {
				return i
			}
		}
		return len(axis)
	}
	var layouts []string
	for _, lay := range ZooLayouts() {
		layouts = append(layouts, lay.Name)
	}
	winners := make([]ZooWinner, 0, len(best))
	for c, r := range best {
		winners = append(winners, ZooWinner{Backend: c.backend, Layout: c.layout, Scheme: r.Scheme, LatencyUS: r.latencyUS()})
	}
	sort.Slice(winners, func(i, j int) bool {
		li, lj := order(winners[i].Layout, layouts), order(winners[j].Layout, layouts)
		if li != lj {
			return li < lj
		}
		return order(winners[i].Backend, zooBackendOrder) < order(winners[j].Backend, zooBackendOrder)
	})
	return winners
}

// ZooFlips lists the layouts whose winning scheme differs between backends.
func ZooFlips(rows []ZooRow) []ZooFlip {
	byLayout := map[string]*ZooFlip{}
	for _, w := range ZooWinners(rows) {
		f := byLayout[w.Layout]
		if f == nil {
			f = &ZooFlip{Layout: w.Layout}
			byLayout[w.Layout] = f
		}
		switch w.Backend {
		case mpi.BackendSim:
			f.Sim = w.Scheme
		case mpi.BackendSHM:
			f.SHM = w.Scheme
		case mpi.BackendRT:
			f.RT = w.Scheme
		}
	}
	var flips []ZooFlip
	for _, lay := range ZooLayouts() {
		f := byLayout[lay.Name]
		if f == nil {
			continue
		}
		var present []string
		for _, s := range []string{f.Sim, f.SHM, f.RT} {
			if s != "" {
				present = append(present, s)
			}
		}
		disagree := false
		for _, s := range present[1:] {
			if s != present[0] {
				disagree = true
			}
		}
		if disagree {
			flips = append(flips, *f)
		}
	}
	return flips
}

// zooModeled filters the deterministic virtual-time rows (sim and shm).
func zooModeled(rows []ZooRow) []ZooRow {
	out := []ZooRow{}
	for _, r := range rows {
		if r.Backend != mpi.BackendRT {
			out = append(out, r)
		}
	}
	return out
}

func zooRT(rows []ZooRow) []ZooRow {
	out := []ZooRow{}
	for _, r := range rows {
		if r.Backend == mpi.BackendRT {
			out = append(out, r)
		}
	}
	return out
}

// ZooJSON renders the rows as the BENCH_zoo.json document, with the
// deterministic modeled rows (sim + shm) separated from the
// machine-dependent rt rows.
func ZooJSON(rows []ZooRow) ([]byte, error) {
	doc := struct {
		Benchmark   string      `json:"benchmark"`
		Workload    string      `json:"workload"`
		Note        string      `json:"note"`
		Winners     []ZooWinner `json:"winners"`
		Flips       []ZooFlip   `json:"flips"`
		ModeledRows []ZooRow    `json:"modeled_rows"`
		RTRows      []ZooRow    `json:"rt_rows"`
	}{
		Benchmark: "layout-zoo",
		Workload:  zooWorkload(),
		Note:      "modeled_rows (sim + shm) are deterministic (guarded by `make zoo-guard`); rt_rows are wall-clock and machine-dependent; flips are layouts whose winning scheme differs across backends",
		Winners:   ZooWinners(rows),
		Flips:     ZooFlips(rows),

		ModeledRows: zooModeled(rows),
		RTRows:      zooRT(rows),
	}
	return json.MarshalIndent(doc, "", "  ")
}

func zooWorkload() string {
	var parts []string
	for _, lay := range ZooLayouts() {
		parts = append(parts, fmt.Sprintf("%s: %s", lay.Name, lay.Desc))
	}
	return strings.Join(parts, "; ")
}

// ZooTable renders the rows as an aligned text table with the winners
// matrix and flips underneath.
func ZooTable(rows []ZooRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# layout zoo: %-8s %-16s %-8s %8s %7s %12s %12s\n",
		"backend", "layout", "scheme", "bytes", "runs", "virtual us", "wall us")
	for _, r := range rows {
		cell := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", v)
		}
		fmt.Fprintf(&b, "%21s %-16s %-8s %8d %7d %12s %12s\n",
			r.Backend, r.Layout, r.Scheme, r.Bytes, r.Runs,
			cell(r.VirtualUS), cell(r.WallUS))
	}
	for _, w := range ZooWinners(rows) {
		fmt.Fprintf(&b, "# winner %-16s on %-4s: %-8s (%.2f us)\n", w.Layout, w.Backend, w.Scheme, w.LatencyUS)
	}
	for _, f := range ZooFlips(rows) {
		fmt.Fprintf(&b, "# flip   %-16s: sim=%s shm=%s rt=%s\n", f.Layout, f.Sim, f.SHM, f.RT)
	}
	return b.String()
}

// ZooGuard regenerates the sweep's modeled rows (sim + shm) and compares
// them byte-for-byte against the modeled_rows of a committed
// BENCH_zoo.json, matching the scale-guard/tune-guard discipline.
func ZooGuard(committed []byte) error {
	var doc struct {
		ModeledRows json.RawMessage `json:"modeled_rows"`
	}
	if err := json.Unmarshal(committed, &doc); err != nil {
		return fmt.Errorf("zoo guard: bad committed document: %w", err)
	}
	rows, err := ZooSweep([]string{mpi.BackendSim, mpi.BackendSHM})
	if err != nil {
		return err
	}
	fresh, err := json.Marshal(zooModeled(rows))
	if err != nil {
		return err
	}
	var want bytes.Buffer
	if err := json.Compact(&want, doc.ModeledRows); err != nil {
		return fmt.Errorf("zoo guard: bad modeled_rows: %w", err)
	}
	if !bytes.Equal(fresh, want.Bytes()) {
		return fmt.Errorf("zoo guard: modeled rows drifted from committed BENCH_zoo.json\ncommitted: %s\nfresh:     %s",
			want.Bytes(), fresh)
	}
	return nil
}
