package exper

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/ib"
	"repro/internal/mem"
	"repro/internal/mpi"
	"repro/internal/pack"
	"repro/internal/pario"
)

// The ablations quantify the design choices DESIGN.md calls out beyond the
// paper's own figures: segment size, the registration grouping strategy,
// the pin-down cache, and the improved Eager path of Section 7.1.

// AblationSegmentSize sweeps the BC-SPUP segment size for a 1 MB vector
// message; the paper notes "tuning on the segment size is quite important"
// (Section 7.2).
func AblationSegmentSize() *Result {
	r := &Result{
		Name:        "ablation-segsize",
		Title:       "BC-SPUP latency vs segment size (1 MB vector message)",
		XLabel:      "segment KB",
		YLabel:      "one-way latency (us)",
		SeriesOrder: []string{"BC-SPUP"},
	}
	dt := VectorType(2048) // 1 MB
	for _, segKB := range []int64{16, 32, 64, 128, 256, 512, 1024} {
		cfg := worldConfig(2, core.SchemeBCSPUP, expMem2, func(c *mpi.Config) {
			c.Core.SegmentSize = segKB << 10
		})
		r.Add(segKB, map[string]float64{
			"BC-SPUP": mustSim(PingPongLatency(cfg, dt, 1, latWarmup, latIters)),
		})
	}
	return r
}

// AblationOGR compares the modeled registration cost of the three strategies
// of Section 5.4.1 — register each block, register the covering region, and
// Optimistic Group Registration — on the vector workload.
func AblationOGR() *Result {
	r := &Result{
		Name:        "ablation-ogr",
		Title:       "Registration strategy cost for the vector message buffer",
		XLabel:      "columns",
		YLabel:      "modeled registration cost (us)",
		SeriesOrder: []string{"per-block", "cover-all", "OGR"},
	}
	model := ib.DefaultModel()
	cost := mem.RegCost{Base: int64(model.RegBase), PerPage: int64(model.RegPerPage)}
	for _, x := range vectorColumns {
		dt := VectorType(x)
		// Lay the message out at a representative base address.
		blocks, _ := pack.MessageBlocks(mem.Addr(1<<20), dt, 1, 0)
		perBlock := mem.TotalCost(mem.GroupRegions(blocks, mem.RegCost{}), cost)
		coverAll := mem.TotalCost(mem.CoverAll(blocks), cost)
		ogr := mem.TotalCost(mem.GroupRegions(blocks, cost), cost)
		r.Add(int64(x), map[string]float64{
			"per-block": float64(perBlock) / 1e3,
			"cover-all": float64(coverAll) / 1e3,
			"OGR":       float64(ogr) / 1e3,
		})
	}
	r.Notes = append(r.Notes,
		"OGR must never exceed the better of the two fixed strategies")
	return r
}

// AblationPindown measures the pin-down cache's effect on a buffer-reusing
// contiguous rendezvous ping-pong.
func AblationPindown() *Result {
	r := &Result{
		Name:        "ablation-pindown",
		Title:       "Pin-down cache effect on contiguous rendezvous latency",
		XLabel:      "KB",
		YLabel:      "one-way latency (us)",
		SeriesOrder: []string{"cache on", "cache off"},
	}
	for _, kb := range []int64{16, 64, 256, 1024} {
		dt := ContigType(kb << 10)
		on := worldConfig(2, core.SchemeGeneric, expMem2, nil)
		off := worldConfig(2, core.SchemeGeneric, expMem2, func(c *mpi.Config) {
			c.Core.RegCache = false
		})
		r.Add(kb, map[string]float64{
			"cache on":  mustSim(PingPongLatency(on, dt, 1, latWarmup, latIters)),
			"cache off": mustSim(PingPongLatency(off, dt, 1, latWarmup, latIters)),
		})
	}
	return r
}

// AblationEagerPath isolates the Section 7.1 improvement: packing directly
// into the Eager protocol's internal buffers versus the generic four-copy
// small-message path (Figure 7 versus Figure 1).
func AblationEagerPath() *Result {
	r := &Result{
		Name:        "ablation-eager",
		Title:       "Small datatype messages: direct pack into eager buffers vs generic path",
		XLabel:      "columns",
		YLabel:      "one-way latency (us)",
		SeriesOrder: []string{"generic 4-copy", "direct 2-copy"},
	}
	for _, x := range []int{1, 2, 4, 8, 15} { // all below the eager threshold
		dt := VectorType(x)
		gen := worldConfig(2, core.SchemeGeneric, expMem2, nil)
		dir := worldConfig(2, core.SchemeBCSPUP, expMem2, nil)
		r.Add(int64(x), map[string]float64{
			"generic 4-copy": mustSim(PingPongLatency(gen, dt, 1, latWarmup, latIters)),
			"direct 2-copy":  mustSim(PingPongLatency(dir, dt, 1, latWarmup, latIters)),
		})
	}
	return r
}

// AblationAuto compares the Auto scheme selector against each fixed scheme
// across heterogeneous workloads, verifying it tracks the best fixed choice.
func AblationAuto() *Result {
	r := &Result{
		Name:        "ablation-auto",
		Title:       "Dynamic scheme selection vs fixed schemes (latency, mixed workloads)",
		XLabel:      "workload#",
		YLabel:      "one-way latency (us)",
		SeriesOrder: []string{"Generic", "BC-SPUP", "RWG-UP", "Multi-W", "Auto"},
	}
	type wl struct {
		name  string
		dt    *datatype.Type
		count int
	}
	cases := []wl{
		{"tiny-blocks", VectorType(8), 1},     // 4 KB eager
		{"small-blocks", VectorType(64), 1},   // 32 KB, 256 B blocks
		{"mid-blocks", VectorType(512), 1},    // 256 KB, 2 KB blocks
		{"large-blocks", VectorType(2048), 1}, // 1 MB, 8 KB blocks
		{"contig", ContigType(512 << 10), 1},  // 512 KB contiguous
		{"struct", StructType(16384), 1},      // mixed block sizes
	}
	for i, c := range cases {
		point := map[string]float64{}
		for _, s := range []struct {
			name   string
			scheme core.Scheme
		}{
			{"Generic", core.SchemeGeneric},
			{"BC-SPUP", core.SchemeBCSPUP},
			{"RWG-UP", core.SchemeRWGUP},
			{"Multi-W", core.SchemeMultiW},
			{"Auto", core.SchemeAuto},
		} {
			cfg := worldConfig(2, s.scheme, expMem2, nil)
			point[s.name] = mustSim(PingPongLatency(cfg, c.dt, c.count, latWarmup, latIters))
		}
		r.Add(int64(i), point)
		r.Notes = append(r.Notes, fmt.Sprintf("workload %d = %s", i, c.name))
	}
	return r
}

// AblationSensitivity sweeps the copy-bandwidth/link-bandwidth ratio — the
// single parameter the paper's conclusions hinge on ("InfiniBand provides
// comparable bandwidth to system memory copy bandwidth") — and reports each
// scheme's large-message latency. The qualitative ordering (Generic worst,
// Multi-W best) must hold across the sweep; only the margins move.
func AblationSensitivity() *Result {
	r := &Result{
		Name:        "ablation-sensitivity",
		Title:       "Scheme latency vs copy bandwidth (1 MB vector, link fixed at 0.86 GB/s)",
		XLabel:      "copy MB/s",
		YLabel:      "one-way latency (us)",
		SeriesOrder: []string{"Generic", "BC-SPUP", "RWG-UP", "Multi-W"},
	}
	dt := VectorType(2048)
	for _, copyGBps := range []float64{0.4, 0.6, 0.86, 1.3, 2.0} {
		point := map[string]float64{}
		for _, s := range newSchemeSeries {
			if s.scheme == core.SchemePRRS {
				continue
			}
			cfg := worldConfig(2, s.scheme, expMem2, func(c *mpi.Config) {
				c.Model.CopyGBps = copyGBps
			})
			point[s.name] = mustSim(PingPongLatency(cfg, dt, 1, latWarmup, latIters))
		}
		r.Add(int64(copyGBps*1000), point)
	}
	r.Notes = append(r.Notes,
		"x-axis is the modeled pack/unpack bandwidth in MB/s (decimal)")
	return r
}

// AblationOneSided compares one-sided Put (this reproduction's RMA
// extension) against two-sided datatype sends: Put needs no rendezvous
// handshake because the origin holds both layouts, so it should undercut
// even Multi-W by roughly the handshake round trip.
func AblationOneSided() *Result {
	r := &Result{
		Name:        "ablation-onesided",
		Title:       "One-sided Put vs two-sided send (vector layouts both ends)",
		XLabel:      "columns",
		YLabel:      "one-way completion (us)",
		SeriesOrder: []string{"Send Generic", "Send Multi-W", "Put"},
	}
	for _, x := range []int{64, 256, 1024, 2048} {
		dt := VectorType(x)
		point := map[string]float64{}
		point["Send Generic"] = mustSim(PingPongLatency(
			worldConfig(2, core.SchemeGeneric, expMem2, nil), dt, 1, latWarmup, latIters))
		point["Send Multi-W"] = mustSim(PingPongLatency(
			worldConfig(2, core.SchemeMultiW, expMem2, nil), dt, 1, latWarmup, latIters))
		point["Put"] = mustSim(PutLatency(
			worldConfig(2, core.SchemeMultiW, expMem2, nil), dt, latWarmup, latIters))
		r.Add(int64(x), point)
	}
	return r
}

// AblationParIO compares the pack-based and RDMA-based noncontiguous I/O
// paths of the pario subsystem (the paper's closing application domain and
// its PVFS-over-InfiniBand companion work): a client writes and reads back
// vector-layout views of a server-hosted file.
func AblationParIO() *Result {
	r := &Result{
		Name:        "ablation-pario",
		Title:       "Noncontiguous file I/O: pack-based vs RDMA gather/scatter",
		XLabel:      "columns",
		YLabel:      "write+read time (us)",
		SeriesOrder: []string{"pack", "rdma"},
	}
	for _, x := range []int{64, 256, 1024, 2048} {
		dt := VectorType(x)
		point := map[string]float64{}
		for _, mode := range []pario.Mode{pario.ModePack, pario.ModeRDMA} {
			cfg := worldConfig(2, core.SchemeBCSPUP, expMem2, nil)
			point[mode.String()] = mustSim(ParIOTime(cfg, dt, mode, latWarmup, latIters))
		}
		r.Add(int64(x), point)
	}
	return r
}
