package exper

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/mpi"
)

// The parallelism sweep measures the parallel segment engine and doorbell
// batching (the paper's pipelining argument of Figures 7-9, extended to a
// worker axis): one large-vector BC-SPUP message is ping-ponged at worker
// counts 1, 2, 4, 8, with the doorbell batch tied to the worker count.
//
// Sim rows carry virtual time only: they are bit-for-bit deterministic (the
// sim executor runs shards sequentially while the cost model prices the
// fan-out), so `dtbench -parallel-guard` can demand a byte-identical
// regeneration. RT rows carry wall time: they measure the real concurrent
// implementation on the host and are machine-dependent, so the guard
// ignores them.
const (
	parCols      = 2048     // 128 x 2048 int32 vector: 1 MB payload, 8 KB runs
	parIters     = 30       // timed ping-pong round trips
	parWarmup    = 2        // untimed round trips before the clock starts
	parSegSize   = 32 << 10 // small segments: many descriptors, batching visible
	parShardMin  = 8 << 10  // one shard per 8 KB run, so a segment splits 4 ways
	parPoolShard = 3        // exercise the size-classed pool under the sweep
)

// ParWorkerAxis is the sweep's worker counts.
var ParWorkerAxis = []int{1, 2, 4, 8}

// ParallelRow is one (backend, workers) measurement. Sim rows fill only the
// virtual fields; rt rows only the wall fields.
type ParallelRow struct {
	Backend     string  `json:"backend"`
	Workers     int     `json:"workers"`
	Batch       int     `json:"batch"` // doorbell batch (= workers in the sweep)
	Bytes       int64   `json:"bytes"`
	Iters       int     `json:"iters"`
	WallMS      float64 `json:"wall_ms,omitempty"`      // rt: timed-loop wall time
	MBps        float64 `json:"mbps,omitempty"`         // rt: wall payload bandwidth
	VirtualUS   float64 `json:"virtual_us,omitempty"`   // sim: one-way latency
	VirtualMBps float64 `json:"virtual_mbps,omitempty"` // sim: modeled bandwidth
}

// parallelConfig builds the sweep's world configuration for one point.
func parallelConfig(backend string, workers int) mpi.Config {
	return worldConfig(2, core.SchemeBCSPUP, 256<<20, func(c *mpi.Config) {
		c.Backend = backend
		c.RTTimeout = 2 * time.Minute
		c.Core.SegmentSize = parSegSize
		c.Core.PackWorkers = workers
		c.Core.PostBatch = workers
		c.Core.PoolShards = parPoolShard
		c.Core.ParShardBytes = parShardMin
	})
}

// ParallelSweep runs the worker sweep on the requested backends ("sim",
// "rt") and returns one row per (backend, workers) point.
func ParallelSweep(backends []string) ([]ParallelRow, error) {
	dt := VectorType(parCols)
	payload := VectorBytes(parCols)
	var rows []ParallelRow
	for _, backend := range backends {
		for _, workers := range ParWorkerAxis {
			cfg := parallelConfig(backend, workers)
			w, err := mpi.NewWorld(cfg)
			if err != nil {
				return nil, err
			}
			var virtual float64
			var wall time.Duration
			err = w.Run(func(p *mpi.Proc) error {
				buf := allocFor(p, dt, 1)
				peer := 1 - p.Rank()
				round := func(lead bool) error {
					if lead {
						if err := p.Send(buf, 1, dt, peer, 0); err != nil {
							return err
						}
						_, err := p.Recv(buf, 1, dt, peer, 0)
						return err
					}
					if _, err := p.Recv(buf, 1, dt, peer, 0); err != nil {
						return err
					}
					return p.Send(buf, 1, dt, peer, 0)
				}
				if p.Rank() == 0 {
					fillBuf(p, buf, dt, 1, 1)
				}
				for i := 0; i < parWarmup; i++ {
					if err := round(p.Rank() == 0); err != nil {
						return err
					}
				}
				t0 := p.Now()
				start := time.Now()
				for i := 0; i < parIters; i++ {
					if err := round(p.Rank() == 0); err != nil {
						return err
					}
				}
				if p.Rank() == 0 {
					wall = time.Since(start)
					virtual = p.Now().Sub(t0).Micros() / float64(2*parIters)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("parallel sweep: %d workers on %s: %w", workers, backend, err)
			}
			row := ParallelRow{
				Backend: backend,
				Workers: workers,
				Batch:   workers,
				Bytes:   payload,
				Iters:   parIters,
			}
			if backend == mpi.BackendSim {
				row.VirtualUS = virtual
				// 1 byte/us = 1 MB/s with the decimal MB the wall rows use.
				row.VirtualMBps = float64(payload) / virtual
			} else {
				row.WallMS = float64(wall.Nanoseconds()) / 1e6
				row.MBps = float64(payload*2*int64(parIters)) / wall.Seconds() / 1e6
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ParallelJSON renders the rows as the BENCH_parallel.json document, with
// the deterministic sim rows separated from the machine-dependent rt rows.
func ParallelJSON(rows []ParallelRow) ([]byte, error) {
	doc := struct {
		Benchmark string        `json:"benchmark"`
		Workload  string        `json:"workload"`
		Note      string        `json:"note"`
		SimRows   []ParallelRow `json:"sim_rows"`
		RTRows    []ParallelRow `json:"rt_rows"`
	}{
		Benchmark: "parallel-segment-engine",
		Workload: fmt.Sprintf("BC-SPUP vector(128 x %d of 4096, MPI_INT), %d KB payload, %d KB segments, batch = workers",
			parCols, VectorBytes(parCols)>>10, parSegSize>>10),
		Note:    "sim_rows are deterministic (guarded by `make par-guard`); rt_rows are wall-clock and machine-dependent",
		SimRows: filterParallel(rows, mpi.BackendSim),
		RTRows:  filterParallel(rows, mpi.BackendRT),
	}
	return json.MarshalIndent(doc, "", "  ")
}

func filterParallel(rows []ParallelRow, backend string) []ParallelRow {
	out := []ParallelRow{}
	for _, r := range rows {
		if r.Backend == backend {
			out = append(out, r)
		}
	}
	return out
}

// ParallelTable renders the rows as an aligned text table.
func ParallelTable(rows []ParallelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# parallel segment engine: %-8s %8s %6s %12s %10s %12s %14s\n",
		"backend", "workers", "batch", "wall ms", "MB/s", "virtual us", "virtual MB/s")
	for _, r := range rows {
		cell := func(v float64, f string) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf(f, v)
		}
		fmt.Fprintf(&b, "%26s %8d %6d %12s %10s %12s %14s\n",
			r.Backend, r.Workers, r.Batch,
			cell(r.WallMS, "%.2f"), cell(r.MBps, "%.1f"),
			cell(r.VirtualUS, "%.2f"), cell(r.VirtualMBps, "%.1f"))
	}
	return b.String()
}

// ParallelGuard regenerates the sweep's sim rows and compares them
// byte-for-byte against the sim_rows of a committed BENCH_parallel.json.
// A mismatch means the parallel engine's virtual timing drifted (or the
// file is stale) — the parallel analogue of the tuner's tune-guard.
func ParallelGuard(committed []byte) error {
	var doc struct {
		SimRows json.RawMessage `json:"sim_rows"`
	}
	if err := json.Unmarshal(committed, &doc); err != nil {
		return fmt.Errorf("parallel guard: bad committed document: %w", err)
	}
	rows, err := ParallelSweep([]string{mpi.BackendSim})
	if err != nil {
		return err
	}
	fresh, err := json.Marshal(filterParallel(rows, mpi.BackendSim))
	if err != nil {
		return err
	}
	var want bytes.Buffer
	if err := json.Compact(&want, doc.SimRows); err != nil {
		return fmt.Errorf("parallel guard: bad sim_rows: %w", err)
	}
	if !bytes.Equal(fresh, want.Bytes()) {
		return fmt.Errorf("parallel guard: sim rows drifted from committed BENCH_parallel.json\ncommitted: %s\nfresh:     %s",
			want.Bytes(), fresh)
	}
	return nil
}
